//! `spatial-dataflow` — command-line driver for the spatial primitives.
//!
//! ```bash
//! cargo run --release -- scan   --n 65536
//! cargo run --release -- sort   --n 4096 --kind reversed
//! cargo run --release -- select --n 65536 --k 100 --seed 7
//! cargo run --release -- spmv   --n 1024 --nnz-per-row 4
//! cargo run --release -- topk   --n 65536 --k 32
//! cargo run --release -- info
//! ```
//!
//! Each subcommand runs the primitive on a generated workload, verifies the
//! output against a host reference, and prints the exact Spatial Computer
//! Model costs next to the paper's Table I bound.

use spatial_dataflow::prelude::*;
use spatial_dataflow::theory::{self, Metric, Shape};
use workloads::ArrayKind;

fn usage() -> ! {
    eprintln!(
        "usage: spatial-dataflow <command> [options]\n\
         \n\
         commands:\n\
           scan    --n <int> [--kind uniform|sorted|reversed|dup-heavy|zigzag] [--seed <int>]\n\
           sort    --n <int> [--kind ...] [--seed <int>]\n\
           select  --n <int> [--k <rank>] [--kind ...] [--seed <int>]\n\
           topk    --n <int> [--k <count>] [--kind ...] [--seed <int>]\n\
           spmv    --n <int> [--nnz-per-row <int>] [--seed <int>]\n\
           info    print the Table I bounds\n"
    );
    std::process::exit(2)
}

struct Args {
    n: usize,
    k: u64,
    nnz_per_row: usize,
    seed: u64,
    kind: ArrayKind,
}

fn parse(mut argv: std::env::Args) -> (String, Args) {
    let cmd = argv.next().unwrap_or_else(|| usage());
    let mut args = Args { n: 4096, k: 0, nnz_per_row: 4, seed: 1, kind: ArrayKind::Uniform };
    let mut it = argv.peekable();
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--n" => args.n = val().parse().unwrap_or_else(|_| usage()),
            "--k" => args.k = val().parse().unwrap_or_else(|_| usage()),
            "--nnz-per-row" => args.nnz_per_row = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--kind" => {
                let v = val();
                args.kind = ArrayKind::ALL
                    .into_iter()
                    .find(|k| k.label() == v)
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    (cmd, args)
}

fn report(name: &str, n: u64, cost: Cost, bound: impl Fn(Metric) -> Shape) {
    println!("\n{name} (n = {n})");
    println!("  measured: {cost}");
    println!(
        "  paper:    energy Θ({}), depth O({}), distance Θ({})",
        bound(Metric::Energy).label(),
        bound(Metric::Depth).label(),
        bound(Metric::Distance).label()
    );
}

fn main() {
    let mut argv = std::env::args();
    let _bin = argv.next();
    let (cmd, a) = parse(argv);
    match cmd.as_str() {
        "scan" => {
            let vals = a.kind.generate(a.n, a.seed);
            let mut expect = vals.clone();
            for i in 1..expect.len() {
                expect[i] = expect[i].wrapping_add(expect[i - 1]);
            }
            let mut m = Machine::new();
            let items = place_z(&mut m, 0, vals);
            let out = spatial_dataflow::collectives::scan::scan_any(&mut m, 0, items, &|x, y| {
                x.wrapping_add(*y)
            });
            assert_eq!(read_values(out), expect, "scan output verified");
            report("parallel scan", a.n as u64, m.report(), theory::scan_bound);
            println!("  verified against the sequential prefix sum.");
        }
        "sort" => {
            let vals = a.kind.generate(a.n, a.seed);
            let mut expect = vals.clone();
            expect.sort_unstable();
            let mut m = Machine::new();
            let items = place_z(&mut m, 0, vals);
            let got = sort_z_values(&mut m, 0, items);
            assert_eq!(got, expect, "sort output verified");
            report("2D mergesort", a.n as u64, m.report(), theory::sorting_bound);
            println!("  verified against std sort ({} input).", a.kind.label());
        }
        "select" => {
            let k = if a.k == 0 { a.n as u64 / 2 } else { a.k };
            let vals = a.kind.generate(a.n, a.seed);
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            let mut m = Machine::new();
            let (got, stats) = select_rank_values(&mut m, 0, vals, k, a.seed);
            assert_eq!(got, sorted[(k - 1) as usize], "selection verified");
            report("rank selection", a.n as u64, m.report(), theory::selection_bound);
            println!(
                "  rank {k} -> {got}; {} iterations, {} fallbacks, active counts {:?}",
                stats.iterations, stats.fallbacks, stats.active_trajectory
            );
        }
        "topk" => {
            let k = if a.k == 0 { 16 } else { a.k };
            let vals = a.kind.generate(a.n, a.seed);
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            let expect: Vec<i64> = sorted[a.n - k as usize..].to_vec();
            let mut m = Machine::new();
            let items = place_z(&mut m, 0, vals);
            let got: Vec<i64> = top_k(&mut m, 0, items, k, a.seed)
                .into_iter()
                .map(|t| t.into_value())
                .collect();
            assert_eq!(got, expect, "top-k verified");
            println!("\ntop-{k} of {} elements: {:?}{}", a.n, &got[..got.len().min(8)], if got.len() > 8 { " …" } else { "" });
            println!("  measured: {}", m.report());
            println!("  composition: Θ(n) selection + Θ(k^1.5) sort (vs Θ(n^1.5) for sorting everything)");
        }
        "spmv" => {
            let mat = workloads::random_uniform(a.n, a.nnz_per_row, a.seed);
            let x: Vec<i64> = (0..a.n as i64).map(|i| (i % 7) - 3).collect();
            let expect = mat.multiply_dense(&x);
            let mut m = Machine::new();
            let out = spmv(&mut m, &mat, &x);
            assert_eq!(out.y, expect, "spmv verified");
            report("sparse matrix-vector multiply", mat.nnz() as u64, out.cost, theory::spmv_bound);
            println!("  verified against the dense reference (m = {} non-zeros).", mat.nnz());
        }
        "info" => {
            println!("Table I — Spatial Computer Model bounds (Gianinazzi et al., IPDPS 2025):");
            for (name, f) in [
                ("parallel scan", theory::scan_bound as fn(Metric) -> Shape),
                ("sorting", theory::sorting_bound),
                ("rank selection", theory::selection_bound),
                ("spmv", theory::spmv_bound),
            ] {
                println!(
                    "  {name:<16} energy Θ({:<10}) depth O({:<8}) distance Θ({})",
                    f(Metric::Energy).label(),
                    f(Metric::Depth).label(),
                    f(Metric::Distance).label()
                );
            }
            println!("\nrun `./run_experiments.sh` to regenerate every table/figure reproduction.");
        }
        _ => usage(),
    }
}
