//! `spatial-dataflow` — command-line driver for the spatial primitives.
//!
//! ```bash
//! cargo run --release -- scan   --n 65536
//! cargo run --release -- sort   --n 4096 --kind reversed
//! cargo run --release -- select --n 65536 --k 100 --seed 7
//! cargo run --release -- spmv   --n 1024 --nnz-per-row 4
//! cargo run --release -- topk   --n 65536 --k 32
//! cargo run --release -- sort   --n 4096 --faults 9:0.1
//! cargo run --release -- scan   --n 4096 --budget 100000
//! cargo run --release -- batch  experiments/jobspecs/smoke.json --jobs 4
//! cargo run --release -- serve  --jobs 4 < experiments/jobspecs/serve_smoke.jsonl
//! cargo run --release -- chaos  --mode spin --timeout 200
//! cargo run --release -- info
//! ```
//!
//! Each subcommand runs the primitive on a generated workload, verifies the
//! output against a host reference, and prints the exact Spatial Computer
//! Model costs next to the paper's Table I bound.
//!
//! `--faults <seed>:<fraction>` injects a seeded hardware-fault plan (dead
//! rows and degraded links over the input extent) and runs the primitive
//! under checksum-verified recovery; `--flaky <p>` adds per-message
//! transient corruption; `--budget <energy>` arms an energy budget guard;
//! `--timeout <ms>` arms a watchdog that cancels the run cooperatively.
//!
//! `batch <jobspec.json>` runs a whole batch of jobs through the supervised
//! runtime (`crates/runner`): bounded worker pool, per-job panic isolation,
//! deadlines, exponential backoff with seeded jitter, and graceful
//! degradation to a host oracle. The JSON report lands under
//! `target/spatial-bench/`.
//!
//! `serve` keeps that runtime alive as a daemon: newline-delimited JSON job
//! submissions on stdin, one result line per job on stdout, with per-tenant
//! budgets, rate limits, deficit-round-robin fair scheduling, and a warm
//! result cache. With `--journal <dir>` (requires `--canonical`) every
//! input and output line is journaled through a checksum-framed write-ahead
//! log so a SIGKILLed daemon can be restarted on the same directory and
//! resume with exactly-once output; `--resume-from <n>` tells the restart
//! how many complete output lines the client already holds. SIGTERM drains
//! gracefully, like the in-stream `{"op": "drain"}` verb. See README
//! "Serving mode" for the protocol.
//!
//! `serve --listen <addr>` serves the same protocol over TCP instead of
//! stdin/stdout: each connection opens with a `hello` handshake carrying
//! the client's resume watermark, heartbeat pings police silent peers, and
//! a bounded output queue disconnects clients that stop reading. `client
//! --connect <addr>` is the matching resumable client: it restreams its
//! stdin across however many reconnects it takes and exits only when the
//! observed result stream is complete and duplicate-free.
//!
//! Violations exit with distinct codes instead of panicking:
//!
//! | code | meaning |
//! |-----:|---------|
//! | 0 | success |
//! | 1 | a batch job panicked (contained; see the report) |
//! | 2 | usage error |
//! | 3 | output failed host verification |
//! | 4 | message targeted a dead PE |
//! | 5 | message left the guard extent |
//! | 6 | per-PE resident-word cap exceeded |
//! | 7 | cost budget exceeded |
//! | 8 | recovery retries exhausted (or batch job degraded) |
//! | 9 | deadline exceeded (run cancelled) |
//! | 10 | job shed: submission queue past saturation threshold |
//! | 12 | tenant over budget (serve admission; per-job `code` field only) |
//! | 13 | predicted over budget (serve admission; per-job `code` field only) |
//! | 14 | extent refused (serve admission; per-job `code` field only) |
//! | 15 | transport disconnect (client retries exhausted / session torn) |

use spatial_dataflow::prelude::*;
use spatial_dataflow::recovery::{run_with_recovery, EXIT_RECOVERY_EXHAUSTED};
use spatial_dataflow::theory::{self, Metric, Shape};
use workloads::ArrayKind;

use spatial_dataflow::verify::EXIT_VERIFY_FAILED;

fn usage() -> ! {
    eprintln!(
        "usage: spatial-dataflow <command> [options]\n\
         \n\
         commands:\n\
           scan    --n <int> [--kind uniform|sorted|reversed|dup-heavy|zigzag] [--seed <int>]\n\
           sort    --n <int> [--kind ...] [--seed <int>]\n\
           select  --n <int> [--k <rank>] [--kind ...] [--seed <int>]\n\
           topk    --n <int> [--k <count>] [--kind ...] [--seed <int>]\n\
           spmv    --n <int> [--nnz-per-row <int>] [--seed <int>]\n\
           batch   <jobspec.json>  run a job batch through the supervised runtime\n\
           serve   persistent daemon: JSON job lines on stdin, result lines on stdout\n\
           client  --connect <addr>  resumable TCP client: stdin jobs to a daemon,\n\
                                     reconnecting + deduping until the stream completes\n\
           chaos   --mode panic|spin|badverify  deliberately misbehaving job\n\
           info    print the Table I bounds\n\
         \n\
         robustness options (any command):\n\
           --faults <seed>:<fraction>  inject seeded dead/degraded rows over the input\n\
                                       extent and run under checksum-verified recovery\n\
           --flaky <p>                 per-message transient corruption probability\n\
           --budget <energy>           arm an energy budget guard (exit 7 on breach)\n\
           --retries <int>             recovery retry cap (default 8)\n\
           --timeout <ms>              watchdog deadline; cancelled runs exit 9\n\
           --profile <name>            cost profile for reported totals: model-exact |\n\
                                       wse-like | systolic-like | simt-like. Adds a pJ\n\
                                       energy breakdown and EDP next to the raw counters\n\
                                       (batch/serve: default for jobs without their own)\n\
         \n\
         batch options:\n\
           --jobs <int>                worker threads (overrides the jobspec config)\n\
           --timeout <ms>              default per-job deadline (overrides the jobspec)\n\
           --best-effort               exit 0 even when jobs fail (report still\n\
                                       records every outcome)\n\
         \n\
         serve options:\n\
           --jobs <int>                worker threads (default: available parallelism)\n\
           --timeout <ms>              default per-job deadline\n\
           --canonical                 omit wall-clock fields: output becomes a pure\n\
                                       function of the input stream\n\
           --quantum <int>             DRR deficit per tenant visit (default 1024)\n\
           --cache-capacity <int>      max warm-cache entries, LRU evicted (default\n\
                                       4096; 0 disables caching)\n\
           --journal <dir>             write-ahead journal + snapshot directory for\n\
                                       crash-safe serving (requires --canonical)\n\
           --resume-from <int>         complete output lines the client already\n\
                                       received; the restart re-emits from there\n\
           --listen <addr>             serve over TCP instead of stdin/stdout; each\n\
                                       connection handshakes with a hello line\n\
           --heartbeat <ms>            ping interval for silent TCP peers (default 2000)\n\
           --idle-misses <int>         unanswered pings before idle disconnect (default 3)\n\
           --send-queue <lines>        bounded per-connection output queue (default 1024)\n\
         \n\
         client options:\n\
           --connect <addr>            daemon address (required)\n\
           --max-reconnects <int>      reconnect attempts after the first (default 8)\n\
           --seed <int>                backoff jitter seed\n\
           --cut-after <bytes>         chaos: tear the connection after this many bytes\n\
           --cut-conns <int>           chaos: apply the cut to the first k connections\n\
                                       (default 1 when --cut-after is given)\n\
         \n\
         exit codes: 0 ok | 1 job panicked | 2 usage | 3 verify failed | 4 dead PE |\n\
                     5 out of extent | 6 memory cap | 7 budget | 8 recovery exhausted /\n\
                     degraded | 9 deadline exceeded | 10 job shed (overload) |\n\
                     12 tenant over budget | 13 predicted over budget |\n\
                     14 extent refused (12-14: serve, per-job code field) |\n\
                     15 transport disconnect (client retries exhausted)\n"
    );
    std::process::exit(2)
}

struct Args {
    n: usize,
    k: u64,
    nnz_per_row: usize,
    seed: u64,
    kind: ArrayKind,
    faults: Option<(u64, f64)>,
    flaky: f64,
    budget: Option<u64>,
    retries: u32,
    timeout_ms: Option<u64>,
    jobs: Option<usize>,
    best_effort: bool,
    canonical: bool,
    quantum: Option<u64>,
    cache_capacity: Option<usize>,
    journal: Option<String>,
    resume_from: u64,
    listen: Option<String>,
    heartbeat_ms: Option<u64>,
    idle_misses: Option<u32>,
    send_queue: Option<usize>,
    connect: Option<String>,
    max_reconnects: Option<u32>,
    cut_after: Option<u64>,
    cut_conns: u32,
    mode: Option<String>,
    /// Validated built-in cost profile name (`--profile`).
    profile: Option<&'static str>,
    /// First positional argument (the jobspec path for `batch`).
    path: Option<String>,
}

fn parse(mut argv: std::env::Args) -> (String, Args) {
    let cmd = argv.next().unwrap_or_else(|| usage());
    let mut args = Args {
        n: 4096,
        k: 0,
        nnz_per_row: 4,
        seed: 1,
        kind: ArrayKind::Uniform,
        faults: None,
        flaky: 0.0,
        budget: None,
        retries: 8,
        timeout_ms: None,
        jobs: None,
        best_effort: false,
        canonical: false,
        quantum: None,
        cache_capacity: None,
        journal: None,
        resume_from: 0,
        listen: None,
        heartbeat_ms: None,
        idle_misses: None,
        send_queue: None,
        connect: None,
        max_reconnects: None,
        cut_after: None,
        cut_conns: 1,
        mode: None,
        profile: None,
        path: None,
    };
    let mut it = argv.peekable();
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--n" => args.n = val().parse().unwrap_or_else(|_| usage()),
            "--k" => args.k = val().parse().unwrap_or_else(|_| usage()),
            "--nnz-per-row" => args.nnz_per_row = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--kind" => {
                let v = val();
                args.kind =
                    ArrayKind::ALL.into_iter().find(|k| k.label() == v).unwrap_or_else(|| usage());
            }
            "--faults" => {
                let v = val();
                let (s, f) = v.split_once(':').unwrap_or_else(|| usage());
                let seed = s.parse().unwrap_or_else(|_| usage());
                let frac: f64 = f.parse().unwrap_or_else(|_| usage());
                if !(0.0..=1.0).contains(&frac) {
                    usage();
                }
                args.faults = Some((seed, frac));
            }
            "--flaky" => {
                args.flaky = val().parse().unwrap_or_else(|_| usage());
                if !(0.0..=1.0).contains(&args.flaky) {
                    usage();
                }
            }
            "--budget" => args.budget = Some(val().parse().unwrap_or_else(|_| usage())),
            "--retries" => args.retries = val().parse().unwrap_or_else(|_| usage()),
            "--timeout" => args.timeout_ms = Some(val().parse().unwrap_or_else(|_| usage())),
            "--jobs" => {
                args.jobs = Some(val().parse().unwrap_or_else(|_| usage()));
                if args.jobs == Some(0) {
                    usage();
                }
            }
            "--best-effort" => args.best_effort = true,
            "--canonical" => args.canonical = true,
            "--quantum" => {
                args.quantum = Some(val().parse().unwrap_or_else(|_| usage()));
                if args.quantum == Some(0) {
                    usage();
                }
            }
            "--cache-capacity" => {
                args.cache_capacity = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--journal" => args.journal = Some(val()),
            "--resume-from" => args.resume_from = val().parse().unwrap_or_else(|_| usage()),
            "--listen" => args.listen = Some(val()),
            "--heartbeat" => args.heartbeat_ms = Some(val().parse().unwrap_or_else(|_| usage())),
            "--idle-misses" => args.idle_misses = Some(val().parse().unwrap_or_else(|_| usage())),
            "--send-queue" => {
                args.send_queue = Some(val().parse().unwrap_or_else(|_| usage()));
                if args.send_queue == Some(0) {
                    usage();
                }
            }
            "--connect" => args.connect = Some(val()),
            "--max-reconnects" => {
                args.max_reconnects = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--cut-after" => args.cut_after = Some(val().parse().unwrap_or_else(|_| usage())),
            "--cut-conns" => args.cut_conns = val().parse().unwrap_or_else(|_| usage()),
            "--mode" => args.mode = Some(val()),
            "--profile" => {
                // Typed usage error: an unknown name reports itself (and the
                // known names) instead of the generic usage dump.
                args.profile = match profile_by_name(&val()) {
                    Ok(p) => Some(p.name()),
                    Err(e) => {
                        eprintln!("error: {e}");
                        std::process::exit(e.exit_code());
                    }
                };
            }
            f if !f.starts_with("--") && args.path.is_none() => args.path = Some(f.to_string()),
            _ => usage(),
        }
    }
    (cmd, args)
}

/// Outcome of [`execute`]: the verified value plus run telemetry.
struct Outcome<T> {
    value: T,
    cost: Cost,
    /// `cost` charged under `--profile`, when one was given.
    profiled: Option<ProfiledCost>,
    attempts: u32,
    detour_energy: u64,
}

/// Arms the wall-clock watchdog for `--timeout`: a detached thread that
/// trips the returned token after the deadline. The simulator checks the
/// token cooperatively on every place/send, so a cancelled run surfaces
/// [`SpatialError::Cancelled`] (exit 9) instead of hanging.
fn arm_watchdog(timeout_ms: Option<u64>) -> Option<CancelToken> {
    timeout_ms.map(|ms| {
        let token = CancelToken::new();
        let t = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            t.cancel();
        });
        token
    })
}

/// Runs `run` under the robustness options in `a` (fault plan, flaky
/// messages, budget guard, recovery retries, watchdog deadline), verifies
/// with `verify`, and exits with the documented code on any failure.
/// `extent_side` is the side of the Z-square the input occupies — the
/// region the fault plan draws dead/degraded rows from.
fn execute<T>(
    a: &Args,
    extent_side: u64,
    mut run: impl FnMut(&mut Machine, u32) -> Result<T, SpatialError>,
    mut verify: impl FnMut(&T) -> bool,
) -> Outcome<T> {
    let guard = a.budget.map(|e| ModelGuard::new().max_energy(e));
    let cancel = arm_watchdog(a.timeout_ms);
    let profile = a.profile.map(|n| profile_by_name(n).expect("validated at parse"));
    let prepare = |m: &mut Machine| {
        if let Some(g) = guard {
            m.enable_guard(g);
        }
        if let Some(t) = &cancel {
            m.set_cancel_token(t.clone());
        }
        if let Some(p) = profile {
            m.set_profile(p);
        }
    };
    // Charging can only saturate on adversarial weights, never on the
    // built-in profiles; keep the typed exit anyway so the invariant is
    // enforced, not assumed.
    let charge = |cost: Cost| -> Option<ProfiledCost> {
        profile.map(|p| match p.charge(cost) {
            Ok(pc) => pc,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(e.exit_code());
            }
        })
    };
    if a.faults.is_none() && a.flaky == 0.0 {
        let mut m = Machine::new();
        prepare(&mut m);
        let value = match run(&mut m, 0) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(e.exit_code());
            }
        };
        if let Some(e) = m.take_violation() {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
        if !verify(&value) {
            eprintln!("error: output failed host verification");
            std::process::exit(EXIT_VERIFY_FAILED);
        }
        let cost = m.report();
        Outcome { value, cost, profiled: charge(cost), attempts: 1, detour_energy: 0 }
    } else {
        let (fseed, frac) = a.faults.unwrap_or((a.seed, 0.0));
        let extent = SubGrid::square(Coord::ORIGIN, extent_side.max(1));
        let plan = spatial_dataflow::model::FaultPlan::builder(fseed)
            .random_dead_rows(extent, frac)
            .random_degraded_rows(extent, frac)
            .flaky(a.flaky)
            .build();
        println!(
            "fault plan (seed {fseed}): dead rows {:?}, degraded rows {:?}, flaky {}",
            plan.dead_rows(),
            plan.degraded_rows(),
            a.flaky
        );
        let result = run_with_recovery(
            &plan,
            a.retries,
            |m, attempt| {
                prepare(m);
                run(m, attempt)
            },
            &mut verify,
        );
        match result {
            Ok(rec) => Outcome {
                value: rec.value,
                cost: rec.cost,
                profiled: charge(rec.cost),
                attempts: rec.attempts,
                detour_energy: rec.detour_energy,
            },
            Err(ex) => {
                eprintln!("error: {ex}");
                let code = match ex.last_error {
                    Some(e) => e.exit_code(),
                    None => EXIT_RECOVERY_EXHAUSTED,
                };
                std::process::exit(code);
            }
        }
    }
}

fn report<T>(name: &str, n: u64, out: &Outcome<T>, bound: impl Fn(Metric) -> Shape) {
    println!("\n{name} (n = {n})");
    println!("  measured: {}", out.cost);
    if let Some(p) = &out.profiled {
        println!("  profile:  {p}");
    }
    println!(
        "  paper:    energy Θ({}), depth O({}), distance Θ({})",
        bound(Metric::Energy).label(),
        bound(Metric::Depth).label(),
        bound(Metric::Distance).label()
    );
    if out.attempts > 1 || out.detour_energy > 0 {
        println!(
            "  faults:   {} attempt(s), detour energy {} ({:.2}% of total)",
            out.attempts,
            out.detour_energy,
            100.0 * out.detour_energy as f64 / (out.cost.energy.max(1)) as f64
        );
    }
}

/// Side of the Z-order square holding `n` elements from index 0.
fn z_side(n: u64) -> u64 {
    let padded = spatial_dataflow::model::zorder::next_power_of_four(n.max(1));
    (padded as f64).sqrt() as u64
}

/// `batch <jobspec.json>` — runs a whole job batch through the supervised
/// runtime and exits with the batch's aggregate code (0 under
/// `--best-effort`).
/// Replaces the default panic hook with a one-liner. Job panics inside the
/// supervised runtime are *contained by design*, so a full backtrace per
/// induced panic is noise (especially with `RUST_BACKTRACE=1` in CI); the
/// panic message still reaches the report and the summary.
fn quiet_contained_panics() {
    std::panic::set_hook(Box::new(|info| {
        eprintln!("[contained] {info}");
    }));
}

fn run_batch_command(a: &Args) -> ! {
    quiet_contained_panics();
    let path = a.path.clone().unwrap_or_else(|| usage());
    let doc = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot read jobspec {path}: {e}");
            std::process::exit(2);
        }
    };
    let mut batch = match runner::Batch::parse(&doc) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: invalid jobspec {path}: {e}");
            std::process::exit(2);
        }
    };
    // CLI flags override the jobspec's config block.
    if let Some(jobs) = a.jobs {
        batch.config.workers = jobs;
    }
    if let Some(ms) = a.timeout_ms {
        batch.config.default_deadline_ms = Some(ms);
    }
    if a.best_effort {
        batch.config.best_effort = true;
    }
    if let Some(p) = a.profile {
        batch.config.profile = Some(p);
    }
    println!(
        "batch {:?}: {} job(s) on {} worker(s){}",
        batch.name,
        batch.jobs.len(),
        batch.config.workers,
        if batch.config.best_effort { ", best-effort" } else { "" }
    );
    let report = runner::run_batch(&batch.name, &batch.config, &batch.jobs);
    for job in &report.jobs {
        let detail = match (&job.cost, &job.error) {
            (Some(c), _) => format!("{} attempt(s), energy {}", job.attempts, c.energy),
            (None, Some(e)) => e.clone(),
            (None, None) => String::new(),
        };
        println!("  {:<16} {:<18} {detail}", job.id, job.outcome.label());
    }
    println!(
        "  => {} ok, {} degraded, {} panicked, {} deadline-exceeded, {} shed in {} ms",
        report.count(runner::Outcome::Ok),
        report.count(runner::Outcome::Degraded),
        report.count(runner::Outcome::Panicked),
        report.count(runner::Outcome::DeadlineExceeded),
        report.count(runner::Outcome::Shed),
        report.wall_ms
    );
    match runner::write_report(&report) {
        Ok(p) => println!("  report: {}", p.display()),
        Err(e) => eprintln!("warning: could not write batch report: {e}"),
    }
    std::process::exit(report.exit_code(batch.config.best_effort));
}

/// Routes SIGTERM into the daemon's graceful drain: a single
/// async-signal-safe atomic store, checked by the reader between lines.
/// Raw `signal(2)` keeps the workspace free of a libc dependency.
#[cfg(unix)]
fn install_sigterm_drain() {
    extern "C" fn on_sigterm(_sig: i32) {
        runner::request_drain();
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm_drain() {}

/// `serve` — the persistent multi-tenant daemon: reads newline-delimited
/// JSON job submissions from stdin, streams one result line per job to
/// stdout, and keeps the supervised pool alive across submissions. Exits 0
/// on clean EOF shutdown — per-job failures (panics, deadlines, exhausted
/// tenants) are reported in-stream, never by killing the daemon.
fn run_serve_command(a: &Args) -> ! {
    quiet_contained_panics();
    install_sigterm_drain();
    let mut cfg = runner::ServeConfig::default();
    if let Some(jobs) = a.jobs {
        cfg.workers = jobs;
    }
    cfg.default_deadline_ms = a.timeout_ms;
    cfg.canonical = a.canonical;
    if let Some(q) = a.quantum {
        cfg.quantum = q;
    }
    if let Some(cap) = a.cache_capacity {
        cfg.cache_capacity = cap;
    }
    if let Some(dir) = &a.journal {
        if !a.canonical {
            eprintln!("error: --journal requires --canonical (journaled output must be a pure function of the input stream)");
            std::process::exit(2);
        }
        cfg.journal = Some(std::path::PathBuf::from(dir));
    }
    cfg.resume_from = a.resume_from;
    cfg.profile = a.profile;
    if let Some(addr) = &a.listen {
        run_serve_listener(a, cfg, addr);
    }
    let stdin = std::io::stdin();
    match runner::serve(stdin.lock(), std::io::stdout(), &cfg) {
        Ok(s) => {
            eprintln!(
                "serve: shut down cleanly after {} line(s): {} job(s), {} error line(s), {} replayed",
                s.lines, s.jobs, s.errors, s.replayed
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: serve I/O: {e}");
            std::process::exit(2);
        }
    }
}

/// `serve --listen <addr>` — the TCP front end. Same protocol, same core
/// loop; each connection handshakes with a hello line binding its resume
/// watermark, and SIGTERM / the in-band drain verb shut the listener down
/// across connections (the nonblocking accept loop polls the drain flag,
/// so a drain with zero connected clients still completes promptly).
fn run_serve_listener(a: &Args, cfg: runner::ServeConfig, addr: &str) -> ! {
    if a.resume_from != 0 {
        // Over TCP the watermark arrives per connection in the hello.
        eprintln!(
            "error: --resume-from is a stdin-mode flag; TCP clients resume via the hello handshake"
        );
        std::process::exit(2);
    }
    let mut net = runner::NetConfig::default();
    if let Some(ms) = a.heartbeat_ms {
        net.heartbeat_ms = ms.max(1);
    }
    if let Some(m) = a.idle_misses {
        net.max_missed = m;
    }
    if let Some(q) = a.send_queue {
        net.send_queue_lines = q;
    }
    let listener = match std::net::TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            std::process::exit(2);
        }
    };
    let bound = listener.local_addr().map(|a| a.to_string()).unwrap_or_else(|_| addr.to_string());
    // Tests and scripts bind port 0 and parse the actual port from here.
    eprintln!("serve: listening on {bound}");
    let stop = std::sync::atomic::AtomicBool::new(false);
    match runner::serve_listener(listener, &cfg, &net, &stop) {
        Ok(s) => {
            let ends: Vec<String> = runner::SessionEnd::ALL
                .into_iter()
                .filter(|&e| s.count(e) > 0)
                .map(|e| format!("{} {}", s.count(e), e.label()))
                .collect();
            eprintln!(
                "serve: listener shut down after {} session(s) ({}): {} line(s), {} job(s)",
                s.sessions,
                if ends.is_empty() { "none".to_string() } else { ends.join(", ") },
                s.lines,
                s.jobs
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: serve listener: {e}");
            std::process::exit(2);
        }
    }
}

/// `client --connect <addr>` — streams stdin to a TCP daemon and prints the
/// observed result lines, reconnecting with the resume watermark until the
/// stream is complete. `--cut-after`/`--cut-conns` wrap the first k
/// connections in a seeded chaos plan, so CI can force a mid-stream
/// disconnect and still demand byte-identical output.
fn run_client_command(a: &Args) -> ! {
    let Some(addr) = a.connect.clone() else {
        eprintln!("error: client needs --connect <addr>");
        std::process::exit(2);
    };
    let mut input = String::new();
    if let Err(e) = std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut input) {
        eprintln!("error: reading stdin: {e}");
        std::process::exit(2);
    }
    let mut cfg = runner::ClientConfig { seed: a.seed, ..Default::default() };
    if let Some(r) = a.max_reconnects {
        cfg.max_reconnects = r;
    }
    let cut_after = a.cut_after;
    let cut_conns = a.cut_conns;
    let seed = a.seed;
    let dial = move |attempt: u32| -> std::io::Result<Box<dyn runner::Conn>> {
        let stream = std::net::TcpStream::connect(&addr)?;
        match cut_after {
            Some(bytes) if attempt < cut_conns => {
                let plan = runner::NetChaosPlan::new(seed ^ u64::from(attempt)).cut_after(bytes);
                Ok(Box::new(runner::ChaosTransport::new(stream, plan)))
            }
            _ => Ok(Box::new(stream)),
        }
    };
    let mut log = std::io::stderr();
    match runner::run_client(&input, dial, &cfg, &mut log) {
        Ok(summary) => {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            for line in &summary.observed {
                use std::io::Write;
                if writeln!(out, "{line}").is_err() {
                    std::process::exit(2);
                }
            }
            eprintln!(
                "client: complete after {} reconnect(s): {} result line(s), {} ping(s) absorbed",
                summary.reconnects,
                summary.observed.len(),
                summary.pings
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: client: {e}");
            std::process::exit(runner::EXIT_TRANSPORT_DISCONNECT);
        }
    }
}

/// `chaos --mode panic|spin|badverify` — one deliberately misbehaving job,
/// for exercising the supervision machinery from the command line.
///
/// `panic` and `spin` run through the supervised runtime (panic isolation
/// and watchdog deadlines live there); `badverify` runs a scan whose host
/// verification is forced to fail, exercising the plain exit-3 path.
fn run_chaos_command(a: &Args) -> ! {
    quiet_contained_panics();
    let mode = a.mode.as_deref().unwrap_or_else(|| usage());
    if mode == "badverify" {
        let vals = a.kind.generate(a.n, a.seed);
        execute(
            a,
            z_side(a.n as u64),
            |m, _| {
                let items = place_z(m, 0, vals.clone());
                spatial_dataflow::collectives::scan::try_scan_any(m, 0, items, &|x, y| {
                    x.wrapping_add(*y)
                })
                .map(read_values)
            },
            |_| false,
        );
        unreachable!("a failed verification always exits");
    }
    let kind = match mode {
        "panic" => runner::JobKind::ChaosPanic,
        "spin" => runner::JobKind::ChaosSpin,
        _ => usage(),
    };
    if kind == runner::JobKind::ChaosSpin && a.timeout_ms.is_none() {
        eprintln!("error: chaos --mode spin never terminates; give it --timeout <ms>");
        std::process::exit(2);
    }
    let mut spec = runner::JobSpec::new(format!("chaos-{mode}"), kind);
    spec.n = a.n as u64;
    spec.seed = a.seed;
    spec.deadline_ms = a.timeout_ms;
    let config = runner::BatchConfig {
        workers: a.jobs.unwrap_or(1),
        best_effort: a.best_effort,
        ..Default::default()
    };
    let report = runner::run_batch("chaos", &config, std::slice::from_ref(&spec));
    let job = &report.jobs[0];
    println!("chaos job {:?}: {}", job.id, job.outcome.label());
    if let Some(e) = &job.error {
        println!("  {e}");
    }
    std::process::exit(report.exit_code(config.best_effort));
}

fn main() {
    let mut argv = std::env::args();
    let _bin = argv.next();
    let (cmd, a) = parse(argv);
    match cmd.as_str() {
        "scan" => {
            let vals = a.kind.generate(a.n, a.seed);
            let mut expect = vals.clone();
            for i in 1..expect.len() {
                expect[i] = expect[i].wrapping_add(expect[i - 1]);
            }
            let out = execute(
                &a,
                z_side(a.n as u64),
                |m, _| {
                    let items = place_z(m, 0, vals.clone());
                    spatial_dataflow::collectives::scan::try_scan_any(m, 0, items, &|x, y| {
                        x.wrapping_add(*y)
                    })
                    .map(read_values)
                },
                |got| *got == expect,
            );
            report("parallel scan", a.n as u64, &out, theory::scan_bound);
            println!("  verified against the sequential prefix sum.");
        }
        "sort" => {
            let vals = a.kind.generate(a.n, a.seed);
            let mut expect = vals.clone();
            expect.sort_unstable();
            let out = execute(
                &a,
                z_side(a.n as u64),
                |m, _| {
                    let items = place_z(m, 0, vals.clone());
                    try_sort_z(m, 0, items)
                        .map(|s| s.into_iter().map(Tracked::into_value).collect::<Vec<i64>>())
                },
                |got| *got == expect,
            );
            report("2D mergesort", a.n as u64, &out, theory::sorting_bound);
            println!("  verified against std sort ({} input).", a.kind.label());
        }
        "select" => {
            let k = if a.k == 0 { a.n as u64 / 2 } else { a.k };
            let vals = a.kind.generate(a.n, a.seed);
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            let expect = sorted[(k - 1) as usize];
            let out = execute(
                &a,
                z_side(a.n as u64),
                |m, attempt| {
                    let items = place_z(m, 0, vals.clone());
                    // Fold the attempt index into the seed so a retry explores
                    // a fresh pivot trajectory.
                    let seed = a.seed ^ (u64::from(attempt) << 48);
                    try_select_rank(m, 0, items, k, seed).map(|(t, stats)| (t.into_value(), stats))
                },
                |(got, _)| *got == expect,
            );
            report("rank selection", a.n as u64, &out, theory::selection_bound);
            let (got, stats) = &out.value;
            println!(
                "  rank {k} -> {got}; {} iterations, {} fallbacks, active counts {:?}",
                stats.iterations, stats.fallbacks, stats.active_trajectory
            );
        }
        "topk" => {
            let k = if a.k == 0 { 16 } else { a.k };
            let vals = a.kind.generate(a.n, a.seed);
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            let expect: Vec<i64> = sorted[a.n - k as usize..].to_vec();
            let out = execute(
                &a,
                z_side(a.n as u64),
                |m, attempt| {
                    let items = place_z(m, 0, vals.clone());
                    let seed = a.seed ^ (u64::from(attempt) << 48);
                    m.guarded(|m| {
                        top_k(m, 0, items, k, seed)
                            .into_iter()
                            .map(Tracked::into_value)
                            .collect::<Vec<i64>>()
                    })
                },
                |got| *got == expect,
            );
            println!(
                "\ntop-{k} of {} elements: {:?}{}",
                a.n,
                &out.value[..out.value.len().min(8)],
                if out.value.len() > 8 { " …" } else { "" }
            );
            println!("  measured: {}", out.cost);
            if let Some(p) = &out.profiled {
                println!("  profile:  {p}");
            }
            if out.attempts > 1 || out.detour_energy > 0 {
                println!(
                    "  faults:   {} attempt(s), detour energy {}",
                    out.attempts, out.detour_energy
                );
            }
            println!("  composition: Θ(n) selection + Θ(k^1.5) sort (vs Θ(n^1.5) for sorting everything)");
        }
        "spmv" => {
            let mat = workloads::random_uniform(a.n, a.nnz_per_row, a.seed);
            let x: Vec<i64> = (0..a.n as i64).map(|i| (i % 7) - 3).collect();
            let expect = mat.multiply_dense(&x);
            let nnz = mat.nnz() as u64;
            let out = execute(
                &a,
                z_side(nnz),
                |m, _| try_spmv(m, &mat, &x).map(|o| o.y),
                |y| *y == expect,
            );
            report("sparse matrix-vector multiply", nnz, &out, theory::spmv_bound);
            println!("  verified against the dense reference (m = {nnz} non-zeros).");
        }
        "batch" => run_batch_command(&a),
        "serve" => run_serve_command(&a),
        "client" => run_client_command(&a),
        "chaos" => run_chaos_command(&a),
        "info" => {
            println!("Table I — Spatial Computer Model bounds (Gianinazzi et al., IPDPS 2025):");
            for (name, f) in [
                ("parallel scan", theory::scan_bound as fn(Metric) -> Shape),
                ("sorting", theory::sorting_bound),
                ("rank selection", theory::selection_bound),
                ("spmv", theory::spmv_bound),
            ] {
                println!(
                    "  {name:<16} energy Θ({:<10}) depth O({:<8}) distance Θ({})",
                    f(Metric::Energy).label(),
                    f(Metric::Depth).label(),
                    f(Metric::Distance).label()
                );
            }
            println!("\nrun `./run_experiments.sh` to regenerate every table/figure reproduction.");
        }
        _ => usage(),
    }
}
