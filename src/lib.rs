//! # spatial-dataflow
//!
//! A from-scratch Rust reproduction of *Energy-Optimal and Low-Depth
//! Algorithmic Primitives for Spatial Dataflow Architectures* (Gianinazzi,
//! Ben-Nun, Besta, Ashkboos, Baumann, Luczynski, Hoefler — IPDPS 2025):
//! the Spatial Computer Model as an exact cost-accounting simulator, plus
//! energy-optimal parallel scans, rank selection, 2D mergesort, PRAM
//! simulation and sparse matrix–vector multiplication built on it.
//!
//! This crate is a thin facade over [`spatial_core`]; see the README for a
//! tour and `examples/` for runnable scenarios:
//!
//! ```bash
//! cargo run --release --example quickstart
//! cargo run --release --example pagerank
//! cargo run --release --example poisson_jacobi
//! cargo run --release --example sort_pooling
//! cargo run --release --example visualize
//! ```

pub use spatial_core::*;

pub use gnn;

/// End-to-end verification helper for examples and drivers: report the
/// failed check on stderr and exit with code 3 (the same code the CLI uses
/// for a failed host-reference verification) instead of panicking, so fault
/// regressions are CI-visible as clean exit statuses.
pub mod verify {
    /// Exit code for a failed end-to-end verification.
    pub const EXIT_VERIFY_FAILED: i32 = 3;

    /// Checks a verification condition; on failure prints `msg` and exits 3.
    pub fn ensure(cond: bool, msg: impl std::fmt::Display) {
        if !cond {
            eprintln!("verification FAILED: {msg}");
            std::process::exit(EXIT_VERIFY_FAILED);
        }
    }
}

/// Convenient single-import surface for applications.
pub mod prelude {
    pub use spatial_core::collectives::{
        all_reduce, broadcast, place_row_major, place_z, read_values, reduce, scan, scan_exclusive,
        segmented_scan, try_broadcast, try_scan, SegItem,
    };
    pub use spatial_core::model::{
        profile_by_name, CancelToken, Coord, Cost, CostProfile, FaultPlan, Machine, ModelGuard,
        Path, ProfileError, ProfiledCost, SpatialError, SubGrid, Tracked,
    };
    pub use spatial_core::recovery::{checksum, checksum_i64, run_with_recovery, Recovered};
    pub use spatial_core::selection::{
        select_median, select_rank, select_rank_values, try_select_rank,
    };
    pub use spatial_core::sorting::{sort_row_major, sort_z, sort_z_values, try_sort_z};
    pub use spatial_core::spmv::{spmv, try_spmv, Coo, Csr};
    pub use spatial_core::theory;
    pub use spatial_core::topk::{bottom_k, top_k};
}

#[cfg(test)]
mod facade_tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_primary_workflow() {
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vec![4i64, 1, 3, 2]);
        let sorted = sort_z_values(&mut m, 0, items);
        assert_eq!(sorted, vec![1, 2, 3, 4]);
    }
}
