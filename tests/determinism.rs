//! Determinism regression tests: running any primitive twice on identical
//! inputs must produce bit-identical results, bit-identical `Cost`
//! snapshots, and an identical message trace. The simulator (and the
//! in-tree RNG behind selection/workloads) has no hidden state, so any
//! divergence here is a bug — typically a `HashMap` iteration order or an
//! uninitialised seed sneaking into an algorithm.

use spatial_dataflow::model::{Cost, CostProfile, Machine, MsgRecord};
use spatial_dataflow::prelude::*;
use spatial_dataflow::topk::top_k;

const TRACE_CAP: usize = 1 << 20;

/// Serialises the tests that override the process-global shard count, so
/// one test's override can't overlap another's baseline run.
static SIM_THREADS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f` on a traced machine; returns its value, the cost snapshot and
/// the full message record.
fn traced<T>(f: impl Fn(&mut Machine) -> T) -> (T, Cost, Vec<MsgRecord>, u64) {
    let mut m = Machine::new();
    m.enable_trace(TRACE_CAP);
    let v = f(&mut m);
    let trace = m.trace().expect("trace enabled");
    (v, m.report(), trace.records().to_vec(), trace.dropped())
}

/// Asserts two runs of `f` agree on everything observable.
fn assert_twice_identical<T: PartialEq + std::fmt::Debug>(
    name: &str,
    f: impl Fn(&mut Machine) -> T,
) {
    let (v1, c1, t1, d1) = traced(&f);
    let (v2, c2, t2, d2) = traced(&f);
    assert_eq!(v1, v2, "{name}: results differ between runs");
    assert_eq!(c1, c2, "{name}: cost snapshots differ between runs");
    assert_eq!(d1, d2, "{name}: trace drop counts differ");
    assert_eq!(t1.len(), t2.len(), "{name}: trace lengths differ");
    for (i, (a, b)) in t1.iter().zip(&t2).enumerate() {
        assert_eq!(a, b, "{name}: trace record {i} differs");
    }
}

fn vals(n: usize, seed: u64) -> Vec<i64> {
    workloads::arrays::uniform(n, seed)
}

#[test]
fn scan_is_deterministic() {
    let v = vals(256, 3); // scan wants a power-of-four length
    assert_twice_identical("scan", |m| {
        let items = place_z(m, 0, v.clone());
        read_values(scan(m, 0, items, &|a, b| a + b))
    });
}

#[test]
fn sort_is_deterministic() {
    let v = vals(512, 4);
    assert_twice_identical("sort_z", |m| {
        let items = place_z(m, 0, v.clone());
        sort_z_values(m, 0, items)
    });
}

#[test]
fn selection_is_deterministic() {
    let v = vals(1024, 5);
    assert_twice_identical("select_rank_values", |m| {
        let (got, stats) = select_rank_values(m, 0, v.clone(), 300, 17);
        (got, stats.iterations, stats.fallbacks, stats.active_trajectory.clone())
    });
}

#[test]
fn spmv_is_deterministic() {
    let a = workloads::random_uniform(64, 4, 6);
    let x: Vec<i64> = (0..64).collect();
    assert_twice_identical("spmv", |m| spmv(m, &a, &x).y);
}

#[test]
fn broadcast_is_deterministic() {
    assert_twice_identical("broadcast", |m| {
        let grid = SubGrid::square(Coord::ORIGIN, 16);
        let root = m.place(grid.origin, 99i64);
        let copies = broadcast(m, root, grid);
        copies.into_iter().map(|t| (t.loc(), t.into_value())).collect::<Vec<_>>()
    });
}

#[test]
fn segmented_scan_is_deterministic() {
    let v = vals(256, 7);
    assert_twice_identical("segmented_scan", |m| {
        let items: Vec<_> =
            v.iter().enumerate().map(|(i, &x)| SegItem { value: x, head: i % 17 == 0 }).collect();
        let placed = place_z(m, 0, items);
        let out = segmented_scan(m, 0, placed, &|a, b| a + b);
        read_values(out)
    });
}

#[test]
fn top_k_is_deterministic() {
    let v = vals(512, 8);
    assert_twice_identical("top_k", |m| {
        let items = place_z(m, 0, v.clone());
        top_k(m, 0, items, 40, 23).into_iter().map(|t| t.into_value()).collect::<Vec<_>>()
    });
}

#[test]
fn workload_generators_are_deterministic() {
    // Generator determinism feeds every other test here.
    for seed in 0..8u64 {
        assert_eq!(workloads::arrays::uniform(100, seed), workloads::arrays::uniform(100, seed));
        assert_eq!(
            workloads::random_uniform(32, 3, seed).entries,
            workloads::random_uniform(32, 3, seed).entries
        );
        assert_eq!(
            workloads::graphs::rmat(4, 40, seed).entries,
            workloads::graphs::rmat(4, 40, seed).entries
        );
    }
}

#[test]
fn faulted_run_is_deterministic() {
    // Same FaultPlan seed → bit-identical results, costs, detour meter,
    // fault hits, and message trace. The fault layer adds two RNG-driven
    // mechanisms (plan sampling at build time, per-message corruption at
    // run time); both must be pure functions of the seed.
    use spatial_dataflow::model::{Coord, FaultPlan, SubGrid};
    let v = vals(256, 9);
    let plan = || {
        FaultPlan::builder(41)
            .random_dead_rows(SubGrid::square(Coord::ORIGIN, 16), 0.15)
            .random_degraded_rows(SubGrid::square(Coord::ORIGIN, 16), 0.1)
            .flaky(0.001)
            .build()
    };
    assert_eq!(plan(), plan(), "plan sampling must be deterministic");
    assert_twice_identical("faulted sort_z", |m| {
        m.enable_faults(plan());
        let items = place_z(m, 0, v.clone());
        let out = sort_z_values(m, 0, items);
        (out, m.fault_hits(), m.detour_energy())
    });
}

#[test]
fn batch_report_is_byte_deterministic() {
    // The committed smoke jobspec exercises every outcome class (clean runs,
    // recovered faults, degradation to the host oracle, a contained panic,
    // a deadline cancellation). Its canonical report — everything except the
    // wall-clock fields — must come back byte-identical across runs and
    // worker counts: job costs, attempt counts, scheduled backoff delays,
    // checksums, and aggregate percentiles are all pure functions of
    // (jobspec, seed), never of scheduling.
    let doc = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/experiments/jobspecs/smoke.json"
    ))
    .expect("read smoke jobspec");
    let go = |workers: usize| {
        let mut batch = runner::Batch::parse(&doc).expect("parse smoke jobspec");
        batch.config.workers = workers; // the CLI's `--jobs` override
        runner::run_batch(&batch.name, &batch.config, &batch.jobs).to_json(false)
    };
    let first = go(4);
    assert_eq!(first, go(4), "same worker count must replay bit-for-bit");
    // Across worker counts only the header's `workers` echo may differ:
    // every job row and aggregate must be schedule-independent.
    let strip =
        |s: &str| s.lines().filter(|l| !l.contains("\"workers\"")).collect::<Vec<_>>().join("\n");
    assert_eq!(strip(&first), strip(&go(1)), "scheduling must not leak into the canonical report");
    assert!(first.contains("\"outcome\": \"degraded\""), "smoke batch must degrade a job");
    assert!(first.contains("\"outcome\": \"deadline-exceeded\""), "smoke batch must cancel a job");
}

#[test]
fn recovery_retry_counts_are_deterministic() {
    // Two invocations of the full recovery harness with the same plan seed
    // must agree on the retry count and every per-attempt cost snapshot.
    use spatial_dataflow::model::FaultPlan;
    use spatial_dataflow::recovery::run_with_recovery;
    let v = vals(64, 10);
    let expect: Vec<i64> = v
        .iter()
        .scan(0i64, |acc, &x| {
            *acc = acc.wrapping_add(x);
            Some(*acc)
        })
        .collect();
    let go = || {
        let plan = FaultPlan::builder(13).flaky(0.01).build();
        run_with_recovery(
            &plan,
            100,
            |m, _| {
                let items = place_z(m, 0, v.clone());
                spatial_dataflow::collectives::scan::try_scan_any(m, 0, items, &|a, b| {
                    a.wrapping_add(*b)
                })
                .map(read_values)
            },
            |got| *got == expect,
        )
        .expect("recoverable")
    };
    let a = go();
    let b = go();
    assert_eq!(a, b, "recovery (value, attempts, costs, detour) must replay bit-for-bit");
}

#[test]
fn sharded_bare_path_is_thread_count_invariant() {
    // The sharded bare path must produce bit-identical Cost tuples at every
    // worker count: shards accumulate privately and merge in fixed order, so
    // SPATIAL_SIM_THREADS is pure throughput, never observable. Exercise a
    // large Uniform-heavy run (scan over 4^9 cells) and a large Irregular
    // batch (pseudo-random destinations), both past the sharding threshold
    // (2^17 items — mid-sized batches stay serial by design).
    use spatial_dataflow::model::{set_sim_threads, zorder};
    let _guard = SIM_THREADS_LOCK.lock().unwrap();
    let v = vals(262144, 11);
    let run = || {
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, v.clone());
        let out = read_values(scan(&mut m, 0, items, &|a, b| a + b));
        let scan_cost = m.report();
        let mut mi = Machine::new();
        let placed =
            mi.place_batch((0..200000u64).collect::<Vec<_>>(), |i| zorder::coord_of(i as u64));
        let sends: Vec<_> = placed
            .into_iter()
            .enumerate()
            .map(|(i, t)| (t, zorder::coord_of((i as u64).wrapping_mul(7919) % 300000)))
            .collect();
        let _ = mi.send_batch(sends);
        (out, scan_cost, mi.report())
    };
    set_sim_threads(1);
    let serial = run();
    for threads in [2usize, 7] {
        set_sim_threads(threads);
        let sharded = run();
        assert_eq!(serial.1, sharded.1, "scan Cost differs at {threads} shards");
        assert_eq!(serial.2, sharded.2, "irregular-batch Cost differs at {threads} shards");
        assert_eq!(serial.0, sharded.0, "scan values differ at {threads} shards");
    }
    set_sim_threads(0);
}

#[test]
fn serve_warm_cache_hit_replays_the_cold_line_bit_for_bit() {
    // Submitting the same job twice to one daemon instance must produce two
    // canonical lines that agree on everything but the sequence number: the
    // second is a warm cache hit, and a hit that differed anywhere (cost,
    // checksum, attempts, backoff schedule) would make cache state
    // observable in the canonical stream.
    let job = r#"{"kind": "sort", "n": 256, "seed": 14, "retries": 2, "id": "dup"}"#;
    let input = format!("{job}\n{job}\n");
    let mut out = Vec::new();
    let cfg = runner::ServeConfig { workers: 2, canonical: true, ..Default::default() };
    runner::serve(std::io::Cursor::new(input), &mut out, &cfg).expect("serve");
    let text = String::from_utf8(out).expect("utf8 canonical stream");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "one result line per submission:\n{text}");
    let unseq =
        |l: &str| l.replacen("\"seq\": 0", "\"seq\": _", 1).replacen("\"seq\": 1", "\"seq\": _", 1);
    assert_eq!(unseq(lines[0]), unseq(lines[1]), "warm hit must be bit-identical");
}

#[test]
fn serve_canonical_stream_is_cold_warm_and_worker_count_invariant() {
    // The committed smoke stream must serve to the same canonical bytes
    // (a) as the committed golden expectation, (b) at any worker count,
    // and (c) on a freshly started (cache-cold) instance as on any replay —
    // the cache can only change latency, never output.
    let stream = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/experiments/jobspecs/serve_smoke.jsonl"
    ))
    .expect("read committed serve smoke stream");
    let go = |workers: usize| {
        let cfg = runner::ServeConfig { workers, canonical: true, ..Default::default() };
        let mut out = Vec::new();
        runner::serve(std::io::Cursor::new(stream.as_str()), &mut out, &cfg).expect("serve");
        String::from_utf8(out).expect("utf8 canonical stream")
    };
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/experiments/golden/serve_smoke.canonical"
    ))
    .expect("read committed golden canonical output");
    let first = go(4);
    assert_eq!(first, golden, "serve output must match the committed golden");
    assert_eq!(first, go(4), "cold instance and replay must agree bit-for-bit");
    assert_eq!(first, go(1), "worker count must not leak into the canonical stream");
}

/// The profiles exercised by the profile-aware suites: all four built-ins
/// by default; `SPATIAL_PROFILE=<name>` narrows to one, which is how the CI
/// profile matrix gives each built-in its own leg.
fn profiles_under_test() -> Vec<&'static dyn CostProfile> {
    match std::env::var("SPATIAL_PROFILE") {
        Ok(name) => {
            vec![profile_by_name(&name).expect("SPATIAL_PROFILE must name a built-in profile")]
        }
        Err(_) => spatial_dataflow::model::builtin_profiles().to_vec(),
    }
}

#[test]
fn profiled_totals_are_invariant_under_sim_thread_count() {
    // A profile charges the final raw counters, and those counters are
    // already thread-count invariant — so the derived pJ/EDP totals must be
    // bit-identical at every worker count too. This test pins the full
    // chain (sharded run -> raw Cost -> ProfiledCost) rather than assuming
    // the composition.
    use spatial_dataflow::model::set_sim_threads;
    let _guard = SIM_THREADS_LOCK.lock().unwrap();
    let v = vals(262144, 23);
    let run = |profile: &'static dyn CostProfile| {
        let mut m = Machine::with_profile(profile);
        let items = place_z(&mut m, 0, v.clone());
        let _ = read_values(scan(&mut m, 0, items, &|a, b| a + b));
        m.profiled_report().expect("built-in profiles cannot saturate")
    };
    for profile in profiles_under_test() {
        set_sim_threads(1);
        let serial = run(profile);
        for threads in [2usize, 7] {
            set_sim_threads(threads);
            assert_eq!(
                serial,
                run(profile),
                "{} profiled totals differ at {threads} shards",
                profile.name()
            );
        }
        set_sim_threads(0);
        assert_eq!(
            serial,
            profile.charge(serial.raw).expect("re-charge"),
            "{} profiled report must equal charging its own raw tuple",
            profile.name()
        );
    }
}

#[test]
fn profiled_batch_report_is_invariant_under_sim_thread_count() {
    // Same invariance for the full canonical batch report with a default
    // profile configured: the profiled blocks ride on deterministic costs,
    // so the report stays a pure function of (jobspec, profile).
    use spatial_dataflow::model::set_sim_threads;
    let _guard = SIM_THREADS_LOCK.lock().unwrap();
    let doc = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/experiments/jobspecs/smoke.json"
    ))
    .expect("read smoke jobspec");
    for profile in profiles_under_test() {
        let go = |threads: usize| {
            set_sim_threads(threads);
            let batch = runner::Batch::parse(&doc).expect("parse smoke jobspec");
            let mut config = batch.config;
            config.profile = Some(profile.name());
            let report = runner::run_batch(&batch.name, &config, &batch.jobs).to_json(false);
            set_sim_threads(0);
            report
        };
        let serial = go(1);
        assert!(
            serial.contains("\"profiled\""),
            "{}: report must carry profiled job blocks",
            profile.name()
        );
        assert!(
            serial.contains(&format!("\"profile\": \"{}\"", profile.name())),
            "{}: report must name its profile",
            profile.name()
        );
        assert_eq!(serial, go(2), "{} profiled report differs at 2 shards", profile.name());
        assert_eq!(serial, go(7), "{} profiled report differs at 7 shards", profile.name());
    }
}

#[test]
fn batch_report_is_invariant_under_sim_thread_count() {
    // The canonical batch report must come back byte-identical whether the
    // inner simulations shard across 1, 2 or 7 workers.
    use spatial_dataflow::model::set_sim_threads;
    let _guard = SIM_THREADS_LOCK.lock().unwrap();
    let doc = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/experiments/jobspecs/smoke.json"
    ))
    .expect("read smoke jobspec");
    let go = |threads: usize| {
        set_sim_threads(threads);
        let batch = runner::Batch::parse(&doc).expect("parse smoke jobspec");
        let report = runner::run_batch(&batch.name, &batch.config, &batch.jobs).to_json(false);
        set_sim_threads(0);
        report
    };
    let serial = go(1);
    assert_eq!(serial, go(2), "canonical report differs at 2 shards");
    assert_eq!(serial, go(7), "canonical report differs at 7 shards");
}
