//! Differential oracle tests: every spatial primitive against a plain
//! sequential reference implementation, swept over many RNG seeds through
//! the in-tree property harness. A sweep of ≥25 seeds per primitive is the
//! hermetic replacement for the old crates.io-powered fuzzing setup.

use spatial_dataflow::check::{check_cfg, Config, Gen};
use spatial_dataflow::collectives::{place_row_major, scan_any};
use spatial_dataflow::prelude::*;
use spatial_dataflow::rng::Rng;
use spatial_dataflow::sorting::{merge_adjacent, shearsort_snake, Keyed};
use spatial_dataflow::{prop_assert, prop_assert_eq};

/// At least 25 seeds per primitive regardless of `SPATIAL_CHECK_CASES`.
fn cfg() -> Config {
    let base = Config::from_env();
    Config { cases: base.cases.max(25), seed: base.seed }
}

/// A fresh input vector drawn from the case's seeded stream.
fn input(g: &mut Gen, max_len: usize) -> Vec<i64> {
    g.vec_i64(1..max_len, -100_000..=100_000)
}

#[test]
fn differential_scan() {
    check_cfg(&cfg(), "differential_scan", |g: &mut Gen| {
        let vals = input(g, 600);
        // Sequential reference: inclusive prefix sum.
        let mut expect = vals.clone();
        for i in 1..expect.len() {
            expect[i] += expect[i - 1];
        }
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vals);
        // `scan_any` handles arbitrary lengths (pads to a power of four).
        let got = read_values(scan_any(&mut m, 0, items, &|a, b| a + b));
        prop_assert_eq!(got, expect);
        Ok(())
    });
}

#[test]
fn differential_sort() {
    check_cfg(&cfg(), "differential_sort", |g: &mut Gen| {
        let vals = input(g, 600);
        let mut expect = vals.clone();
        expect.sort();
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vals);
        prop_assert_eq!(sort_z_values(&mut m, 0, items), expect);
        Ok(())
    });
}

#[test]
fn differential_selection() {
    check_cfg(&cfg(), "differential_selection", |g: &mut Gen| {
        let vals = input(g, 600);
        let n = vals.len() as u64;
        let k = g.int(1u64..=n);
        let algo_seed = g.int(0u64..1 << 32);
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let mut m = Machine::new();
        let (got, _) = select_rank_values(&mut m, 0, vals, k, algo_seed);
        prop_assert_eq!(got, sorted[(k - 1) as usize], "k={k} seed={algo_seed}");
        Ok(())
    });
}

#[test]
fn differential_spmv() {
    check_cfg(&cfg(), "differential_spmv", |g: &mut Gen| {
        let n = g.size(2..48);
        let nnz = g.size(0..4 * n);
        let entries: Vec<(u32, u32, i64)> =
            g.vec(nnz, |g| (g.int(0u32..n as u32), g.int(0u32..n as u32), g.int(-9i64..=9)));
        let a = Coo::new(n, n, entries.clone());
        let x = g.vec_i64(n..n + 1, -9..=9);
        // Sequential reference: accumulate entry-by-entry.
        let mut expect = vec![0i64; n];
        for &(r, c, v) in &entries {
            expect[r as usize] += v * x[c as usize];
        }
        let mut m = Machine::new();
        prop_assert_eq!(spmv(&mut m, &a, &x).y, expect);
        Ok(())
    });
}

#[test]
fn differential_broadcast() {
    check_cfg(&cfg(), "differential_broadcast", |g: &mut Gen| {
        let side = 1u64 << g.int(0u32..6); // 1..=32
        let value = g.int(i64::MIN..=i64::MAX);
        let mut m = Machine::new();
        let grid = SubGrid::square(Coord::ORIGIN, side);
        let root = m.place(grid.origin, value);
        let copies = broadcast(&mut m, root, grid);
        prop_assert_eq!(copies.len() as u64, side * side);
        for t in &copies {
            prop_assert_eq!(*t.value(), value);
            prop_assert!(grid.contains(t.loc()), "{:?} outside {side}x{side}", t.loc());
        }
        Ok(())
    });
}

#[test]
fn differential_merge2d() {
    check_cfg(&cfg(), "differential_merge2d", |g: &mut Gen| {
        // Two independently sorted runs on adjacent Z-segments, arbitrary
        // (possibly zero) lengths, duplicate values allowed — `Keyed` breaks
        // ties so Lemma V.7's distinctness precondition holds.
        let mut a = g.vec_i64(0..300, -500..=500);
        let mut b = g.vec_i64(0..300, -500..=500);
        a.sort_unstable();
        b.sort_unstable();
        let mut expect: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();
        let lo = 4 * g.int(0u64..64); // exercise offset segments too
        let mut m = Machine::new();
        let ka: Vec<Keyed<i64>> =
            a.iter().enumerate().map(|(i, &v)| Keyed::new(v, i as u64)).collect();
        let kb: Vec<Keyed<i64>> =
            b.iter().enumerate().map(|(i, &v)| Keyed::new(v, (a.len() + i) as u64)).collect();
        let ia = place_z(&mut m, lo, ka);
        let ib = place_z(&mut m, lo + a.len() as u64, kb);
        let out = merge_adjacent(&mut m, ia, ib, lo);
        for (i, t) in out.iter().enumerate() {
            prop_assert_eq!(
                t.loc(),
                spatial_dataflow::model::zorder::coord_of(lo + i as u64),
                "output {i} off its Z-cell"
            );
        }
        let got: Vec<i64> = out.iter().map(|t| t.value().key).collect();
        prop_assert_eq!(got, expect);
        Ok(())
    });
}

#[test]
fn differential_shearsort() {
    check_cfg(&cfg(), "differential_shearsort", |g: &mut Gen| {
        let side = g.int(1u64..=12);
        let n = (side * side) as usize;
        let vals = g.vec_i64(n..n + 1, -100_000..=100_000);
        let mut expect = vals.clone();
        expect.sort_unstable();
        let mut m = Machine::new();
        let grid = SubGrid::square(Coord::ORIGIN, side);
        let items = place_row_major(&mut m, grid, vals);
        let out = shearsort_snake(&mut m, grid, items);
        // Un-snake: odd rows are stored right-to-left.
        let w = side as usize;
        let mut got = Vec::with_capacity(n);
        for r in 0..w {
            let row = &out[r * w..(r + 1) * w];
            if r % 2 == 0 {
                got.extend(row.iter().map(|t| *t.value()));
            } else {
                got.extend(row.iter().rev().map(|t| *t.value()));
            }
        }
        prop_assert_eq!(got, expect, "side={side}");
        Ok(())
    });
}

#[test]
fn differential_segmented_scan() {
    check_cfg(&cfg(), "differential_segmented_scan", |g: &mut Gen| {
        let vals = input(g, 400);
        let heads: Vec<bool> = (0..vals.len()).map(|_| g.int(0u32..4) == 0).collect();
        // Sequential reference: restart the running sum at every head.
        let mut expect = Vec::with_capacity(vals.len());
        let mut acc = 0i64;
        for (i, &v) in vals.iter().enumerate() {
            acc = if i == 0 || heads[i] { v } else { acc + v };
            expect.push(acc);
        }
        let mut m = Machine::new();
        let seg: Vec<SegItem<i64>> =
            vals.iter().zip(&heads).map(|(&v, &h)| SegItem::new(h, v)).collect();
        // `segmented_scan` requires a power-of-four length; pad with fresh
        // single-element segments and drop the padding afterwards.
        let n = vals.len();
        let mut padded = 1usize;
        while padded < n {
            padded *= 4;
        }
        let mut seg = seg;
        seg.resize(padded, SegItem::new(true, 0));
        let items = place_z(&mut m, 0, seg);
        let got = read_values(segmented_scan(&mut m, 0, items, &|a, b| a + b));
        prop_assert_eq!(&got[..n], &expect[..]);
        Ok(())
    });
}

#[test]
fn differential_profiled_charge_is_path_independent() {
    // A cost profile is a pure function of the final raw counters, so every
    // execution path that agrees on raw counters must agree on the profiled
    // charge: bare machine (closed-form batch kernels eligible) vs fully
    // instrumented machine (trace forces the materializing per-item path).
    // Swept over seeds and all built-in profiles (or the single profile the
    // CI matrix pins via SPATIAL_PROFILE).
    let profiles: Vec<&'static dyn CostProfile> = match std::env::var("SPATIAL_PROFILE") {
        Ok(name) => {
            vec![profile_by_name(&name).expect("SPATIAL_PROFILE must name a built-in profile")]
        }
        Err(_) => spatial_dataflow::model::builtin_profiles().to_vec(),
    };
    check_cfg(&cfg(), "differential_profiled_charge", |g: &mut Gen| {
        let vals = input(g, 600);
        let run = |m: &mut Machine| {
            let items = place_z(m, 0, vals.clone());
            let _ = sort_z(m, 0, items);
        };
        for &profile in &profiles {
            let mut bare = Machine::with_profile(profile);
            run(&mut bare);
            let mut traced = Machine::with_profile(profile);
            traced.enable_trace(1 << 16);
            run(&mut traced);
            prop_assert_eq!(
                bare.report(),
                traced.report(),
                "{}: raw counters diverge between bare and instrumented paths",
                profile.name()
            );
            let b = bare.profiled_report().expect("built-ins cannot saturate");
            let t = traced.profiled_report().expect("built-ins cannot saturate");
            prop_assert_eq!(b, t, "{}: profiled charge is path-dependent", profile.name());
            prop_assert_eq!(
                b,
                profile.charge(bare.report()).expect("re-charge"),
                "{}: machine charge must equal charging the raw tuple",
                profile.name()
            );
        }
        Ok(())
    });
}

#[test]
fn differential_rng_gen_range_is_in_bounds_and_unbiased_enough() {
    // The RNG itself gets a differential check against its contract: bounds
    // always hold and a long stream hits every bucket of a small range.
    check_cfg(&cfg(), "differential_rng", |g: &mut Gen| {
        let lo = g.int(-1000i64..1000);
        let span = g.int(1i64..100);
        let mut rng = Rng::seed_from_u64(g.case_seed());
        let mut hit = vec![false; span as usize];
        for _ in 0..2048 {
            let v = rng.gen_range(lo..lo + span);
            prop_assert!(v >= lo && v < lo + span, "{v} outside [{lo},{})", lo + span);
            hit[(v - lo) as usize] = true;
        }
        prop_assert!(span > 64 || hit.iter().all(|&h| h), "missed a bucket in span {span}");
        Ok(())
    });
}
