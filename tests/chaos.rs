//! Kill/restart chaos harness for the crash-safe serving daemon.
//!
//! Each scenario runs the real binary with `--journal <dir> --canonical`,
//! SIGKILLs it at seeded points mid-stream, restarts it on the same
//! journal directory with `--resume-from <complete lines received>`, and
//! re-streams the full input — the client-side resume protocol. The
//! acceptance bar is byte-exactness: the concatenation of the complete
//! lines received across every killed and resumed session must equal the
//! output of one uninterrupted run. That single assertion covers no lost
//! lines, no duplicated lines, no reordering, and no drift in tenant
//! ledgers or aggregates across crashes.
//!
//! The stream exercises every admission layer (over-budget, predictive
//! refusal, extent cap), a contained panic, and the stats barrier, so
//! recovery is tested against state it actually has to rebuild.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use spatial_core::recovery::BackoffPolicy;
use spatial_rng::Rng;

/// One consuming line per entry; every output line is canonical, so the
/// full session transcript is a pure function of this stream.
const STREAM: &str = r#"{"op": "tenant", "tenant": "meter", "budget": 700, "predict": true}
{"op": "tenant", "tenant": "boxed", "extent": {"rows": 8, "cols": 8}}
{"kind": "scan", "n": 64, "seed": 1, "id": "j0"}
{"kind": "sort", "n": 256, "seed": 2, "id": "j1"}
{"kind": "scan", "n": 256, "seed": 3, "id": "j2"}
{"kind": "scan", "n": 64, "seed": 4, "tenant": "meter", "id": "m0"}
{"kind": "scan", "n": 64, "seed": 5, "tenant": "meter", "id": "m1"}
{"kind": "sort", "n": 4096, "seed": 6, "tenant": "meter", "id": "m-predicted"}
{"kind": "scan", "n": 64, "seed": 7, "tenant": "meter", "id": "m-burn"}
{"kind": "scan", "n": 16, "seed": 8, "tenant": "meter", "id": "m-refused"}
{"kind": "sort", "n": 256, "seed": 9, "tenant": "boxed", "id": "b-wide"}
{"kind": "scan", "n": 64, "seed": 10, "tenant": "boxed", "id": "b-fits"}
{"kind": "select", "n": 128, "k": 32, "seed": 11, "id": "j3"}
{"kind": "topk", "n": 256, "k": 8, "seed": 12, "id": "j4"}
{"kind": "spmv", "n": 64, "seed": 13, "id": "j5"}
{"kind": "chaos-panic", "id": "j6"}
{"kind": "scan", "n": 64, "seed": 14, "id": "j7"}
{"op": "stats"}
"#;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spatial-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spawn_serve(extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_spatial-dataflow"))
        .args(["serve", "--canonical", "--jobs", "2"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn spatial-dataflow serve")
}

/// The uninterrupted transcript: one journal-free run of the whole stream.
fn golden() -> Vec<String> {
    let mut child = spawn_serve(&[]);
    let mut stdin = child.stdin.take().expect("piped stdin");
    stdin.write_all(STREAM.as_bytes()).expect("write stream");
    drop(stdin);
    let out = child.wait_with_output().expect("wait for daemon");
    assert_eq!(out.status.code(), Some(0), "uninterrupted run must exit 0");
    let stdout = String::from_utf8(out.stdout).expect("utf8 stdout");
    // The stream must exercise every typed admission refusal, or the
    // harness silently stops testing ledger recovery.
    for code in ["\"code\": 12", "\"code\": 13", "\"code\": 14"] {
        assert!(stdout.contains(code), "golden lost its {code} line:\n{stdout}");
    }
    stdout.lines().map(str::to_string).collect()
}

/// Starts a journaled session resuming from `received.len()`, re-streams
/// the full input, reads `take` more complete lines, and SIGKILLs the
/// daemon mid-flight. Only complete (newline-terminated) lines count as
/// received — a line torn by the kill is discarded, exactly as a client
/// truncating its output file to the last newline would.
fn run_and_kill(dir: &Path, received: &mut Vec<String>, take: usize) {
    let resume = received.len().to_string();
    let mut child = spawn_serve(&["--journal", dir.to_str().unwrap(), "--resume-from", &resume]);
    let mut stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    stdin.write_all(STREAM.as_bytes()).expect("write stream");
    stdin.flush().expect("flush stream");
    for _ in 0..take {
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read output line");
        assert!(line.ends_with('\n'), "daemon died before the kill point: {line:?}");
        line.pop();
        received.push(line);
    }
    child.kill().expect("SIGKILL the daemon");
    child.wait().expect("reap the killed daemon");
}

/// Final session: resume, re-stream everything, and run to clean EOF
/// shutdown, appending every remaining line.
fn run_to_completion(dir: &Path, received: &mut Vec<String>) {
    let resume = received.len().to_string();
    let mut child = spawn_serve(&["--journal", dir.to_str().unwrap(), "--resume-from", &resume]);
    let mut stdin = child.stdin.take().expect("piped stdin");
    stdin.write_all(STREAM.as_bytes()).expect("write stream");
    drop(stdin);
    let out = child.wait_with_output().expect("wait for daemon");
    assert_eq!(
        out.status.code(),
        Some(0),
        "resumed run must exit 0\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    received
        .extend(String::from_utf8(out.stdout).expect("utf8 stdout").lines().map(str::to_string));
}

#[test]
fn sigkill_at_seeded_points_resumes_to_a_byte_identical_stream() {
    let golden = golden();
    let dir = fresh_dir("seeded");
    let mut received = Vec::new();
    // Three mid-stream kills at seeded offsets, then one run to completion.
    // The seed pins the kill points so a failure reproduces exactly.
    let mut rng = Rng::seed_from_u64(0xC4A05);
    for round in 0..3 {
        let take = rng.gen_range(1..5usize);
        assert!(received.len() + take < golden.len(), "kill point past the stream");
        run_and_kill(&dir, &mut received, take);
        assert_eq!(received, golden[..received.len()], "prefix diverged after kill round {round}");
    }
    run_to_completion(&dir, &mut received);
    assert_eq!(received, golden, "concatenated output must be byte-identical");
}

#[test]
fn sigkill_before_any_output_replays_from_scratch() {
    let golden = golden();
    let dir = fresh_dir("instant");
    let mut received = Vec::new();
    // Kill with zero lines received: recovery must regenerate everything
    // (and must not be confused by however much input got journaled).
    run_and_kill(&dir, &mut received, 0);
    run_to_completion(&dir, &mut received);
    assert_eq!(received, golden);
}

#[test]
fn corrupt_journal_tail_recovers_without_panic_or_double_emit() {
    let golden = golden();
    let dir = fresh_dir("corrupt");
    let mut received = Vec::new();
    run_and_kill(&dir, &mut received, 5);

    // Tear the journal the way a crashed filesystem would: chop the tail
    // mid-record, then flip a byte in what is now the last line. Recovery
    // must truncate to the last intact record and carry on — the client's
    // full-input re-stream regenerates whatever the corruption destroyed.
    let wal = dir.join("journal.log");
    let mut bytes = std::fs::read(&wal).expect("read journal");
    assert!(bytes.len() > 32, "journal unexpectedly small");
    bytes.truncate(bytes.len() - 9);
    let last = bytes.len() - 3;
    bytes[last] ^= 0x20;
    std::fs::write(&wal, &bytes).expect("rewrite corrupted journal");

    run_to_completion(&dir, &mut received);
    assert_eq!(received, golden, "corruption must cost re-execution, never correctness");
}

#[test]
fn clean_shutdown_snapshot_short_circuits_replay() {
    let golden = golden();
    let dir = fresh_dir("snapshot");
    let mut received = Vec::new();
    run_to_completion(&dir, &mut received);
    assert_eq!(received, golden);
    assert!(dir.join("snapshot.json").exists(), "clean shutdown writes the snapshot");

    // Restart with everything already delivered: the snapshot covers the
    // whole session, so the daemon replays nothing and emits nothing.
    let mut child = spawn_serve(&[
        "--journal",
        dir.to_str().unwrap(),
        "--resume-from",
        &golden.len().to_string(),
    ]);
    let mut stdin = child.stdin.take().expect("piped stdin");
    stdin.write_all(STREAM.as_bytes()).expect("write stream");
    drop(stdin);
    let out = child.wait_with_output().expect("wait for daemon");
    assert_eq!(out.status.code(), Some(0));
    assert!(
        out.stdout.is_empty(),
        "nothing to re-deliver: {:?}",
        String::from_utf8_lossy(&out.stdout)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("0 replayed"), "snapshot must skip replay entirely: {stderr}");
}

#[test]
fn killed_session_keeps_reading_fresh_input_after_the_replayed_prefix() {
    let golden = golden();
    let dir = fresh_dir("extend");
    let mut received = Vec::new();
    run_and_kill(&dir, &mut received, 3);

    // The resumed client re-streams its input with one *new* job appended:
    // the dedupe must skip the journaled prefix and admit only the tail.
    let extended =
        format!("{STREAM}{}\n", r#"{"kind": "scan", "n": 64, "seed": 99, "id": "fresh"}"#);
    let resume = received.len().to_string();
    let mut child = spawn_serve(&["--journal", dir.to_str().unwrap(), "--resume-from", &resume]);
    let mut stdin = child.stdin.take().expect("piped stdin");
    stdin.write_all(extended.as_bytes()).expect("write stream");
    drop(stdin);
    let out = child.wait_with_output().expect("wait for daemon");
    assert_eq!(out.status.code(), Some(0));
    received
        .extend(String::from_utf8(out.stdout).expect("utf8 stdout").lines().map(str::to_string));

    assert_eq!(received.len(), golden.len() + 1, "exactly one new line for the new job");
    assert_eq!(received[..golden.len()], golden[..], "replayed prefix unchanged");
    let fresh = &received[golden.len()];
    assert!(
        fresh.contains("\"id\": \"fresh\"") && fresh.contains("\"outcome\": \"ok\""),
        "{fresh}"
    );
    assert!(
        fresh.contains(&format!("\"seq\": {}", golden.len())),
        "the new job continues the sequence: {fresh}"
    );
}

/// The TCP twin of the SIGKILL scenarios: the real binary serving
/// `--listen` over loopback, driven by the in-process reconnecting client
/// with seeded chaos cuts on its first connections. Because canonical
/// output is a pure function of the input stream, the TCP transcript must
/// equal the *stdin* golden — same bytes through a different transport,
/// across however many torn connections the plan inflicts. SIGTERM at the
/// end must wake the idle accept loop and exit 0 (the drain/accept race).
#[test]
fn tcp_chaos_cuts_resume_to_the_stdin_golden_and_sigterm_drains() {
    let golden = golden();
    let dir = fresh_dir("tcp");
    let mut child = Command::new(env!("CARGO_BIN_EXE_spatial-dataflow"))
        .args(["serve", "--canonical", "--jobs", "2", "--listen", "127.0.0.1:0"])
        .args(["--journal", dir.to_str().unwrap()])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn spatial-dataflow serve --listen");
    // The daemon announces its bound address (port 0 above) on stderr.
    let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let mut line = String::new();
    stderr.read_line(&mut line).expect("read listening line");
    assert!(line.contains("listening on"), "unexpected first stderr line: {line:?}");
    let addr = line.trim().rsplit(' ').next().expect("address token").to_string();

    // Two chaos-cut connections (different seeded tear points), then clean.
    let cfg = runner::ClientConfig {
        backoff: BackoffPolicy { base_ms: 1, factor: 2, max_ms: 8, jitter: 0.0 },
        seed: 21,
        max_reconnects: 6,
    };
    let cuts = [700u64, 2200];
    let dial_addr = addr.clone();
    let mut log = Vec::new();
    let summary = runner::run_client(
        STREAM,
        move |attempt| {
            let stream = std::net::TcpStream::connect(&dial_addr)?;
            match cuts.get(attempt as usize) {
                Some(&bytes) => {
                    let plan =
                        runner::NetChaosPlan::new(0xA11CE + u64::from(attempt)).cut_after(bytes);
                    Ok(Box::new(runner::ChaosTransport::new(stream, plan)) as Box<dyn runner::Conn>)
                }
                None => Ok(Box::new(stream)),
            }
        },
        &cfg,
        &mut log,
    )
    .expect("client must complete across the cuts");
    assert!(summary.reconnects >= 2, "both cuts must fire: {summary:?}");
    assert_eq!(summary.observed, golden, "TCP transcript must equal the stdin golden");

    // SIGTERM with zero connected clients: the nonblocking accept loop
    // must notice the drain flag and exit 0 instead of hanging in accept.
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success(), "kill -TERM failed");
    let mut rest = String::new();
    stderr.read_to_string(&mut rest).expect("drain stderr");
    let status = child.wait().expect("reap the drained daemon");
    assert_eq!(status.code(), Some(0), "SIGTERM must drain cleanly\nstderr: {rest}");
    assert!(rest.contains("listener shut down"), "missing shutdown summary: {rest}");
}
