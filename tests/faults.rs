//! Fault-injection acceptance tests (ISSUE PR 2).
//!
//! Every primitive must stay *correct* when the machine remaps around
//! seeded dead rows — the logical algorithm is untouched; only the charged
//! (physical) distances grow — and the energy overhead of the detours must
//! be (a) exactly what the machine's `detour_energy` meter claims and
//! (b) bounded relative to the fault-free run. Guard violations surface as
//! typed [`SpatialError`] values, never panics, and everything here is
//! bit-deterministic per seed.

use spatial_dataflow::collectives::scan::try_scan_any;
use spatial_dataflow::model::{zorder, FaultPlan, SubGrid};
use spatial_dataflow::prelude::*;
use spatial_dataflow::recovery::run_with_recovery;

/// Three seeded dead-row plans over the given extent (≈10–20% dead rows
/// plus some degraded links), as the acceptance criteria require.
fn plans(extent: SubGrid) -> Vec<FaultPlan> {
    [11u64, 22, 33]
        .into_iter()
        .map(|seed| {
            FaultPlan::builder(seed)
                .random_dead_rows(extent, 0.15)
                .random_degraded_rows(extent, 0.10)
                .build()
        })
        .collect()
}

fn extent_for(n: u64) -> SubGrid {
    let padded = zorder::next_power_of_four(n.max(1));
    let side = (1u64..).find(|s| s * s >= padded).unwrap();
    SubGrid::square(Coord::ORIGIN, side)
}

fn vals(n: usize, seed: u64) -> Vec<i64> {
    workloads::arrays::uniform(n, seed)
}

/// Runs `f` fault-free and under each plan; asserts identical output,
/// exact detour accounting, and a sane overhead ratio.
fn assert_correct_under_faults<T: PartialEq + std::fmt::Debug>(
    name: &str,
    n: u64,
    f: impl Fn(&mut Machine) -> Result<T, SpatialError>,
) {
    let mut base = Machine::new();
    let expect = f(&mut base).expect("fault-free run must succeed");
    let energy_base = base.report().energy;
    assert_eq!(base.detour_energy(), 0, "{name}: fault-free run charged detours");

    for plan in plans(extent_for(n)) {
        let seed = plan.seed();
        let faulted = |plan: FaultPlan| {
            let mut m = Machine::new();
            m.enable_faults(plan);
            let got = f(&mut m).unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            (got, m.report(), m.detour_energy())
        };
        let (got, cost, detour) = faulted(plan.clone());
        assert_eq!(got, expect, "{name} seed {seed}: output corrupted by dead-row remap");
        let energy_fault = cost.energy;
        assert_eq!(
            energy_fault - energy_base,
            detour,
            "{name} seed {seed}: measured overhead must equal the detour meter"
        );
        // Dead rows stretch every crossing path by O(#dead); with ≤20% of
        // rows out the end-to-end energy should stay well under 2x.
        assert!(
            energy_fault < 2 * energy_base,
            "{name} seed {seed}: overhead {energy_fault}/{energy_base} unreasonable"
        );
        // Bit-determinism per fault seed: replay and compare everything.
        let (got2, cost2, detour2) = faulted(plan);
        assert_eq!(got, got2, "{name} seed {seed}: faulted replay diverged");
        assert_eq!(cost, cost2, "{name} seed {seed}: faulted costs diverged");
        assert_eq!(detour, detour2, "{name} seed {seed}: detour meter diverged");
    }
}

#[test]
fn scan_correct_under_dead_rows() {
    let v = vals(256, 3);
    assert_correct_under_faults("scan", 256, |m| {
        let items = place_z(m, 0, v.clone());
        try_scan_any(m, 0, items, &|a, b| a.wrapping_add(*b)).map(read_values)
    });
}

#[test]
fn broadcast_correct_under_dead_rows() {
    let grid = SubGrid::square(Coord::ORIGIN, 16);
    assert_correct_under_faults("broadcast", 256, |m| {
        let root = m.try_place(Coord::ORIGIN, 42i64)?;
        try_broadcast(m, root, grid)
            .map(|copies| copies.into_iter().map(Tracked::into_value).collect::<Vec<_>>())
    });
}

#[test]
fn mergesort_correct_under_dead_rows() {
    let v = vals(512, 4);
    assert_correct_under_faults("mergesort", 512, |m| {
        let items = place_z(m, 0, v.clone());
        try_sort_z(m, 0, items)
            .map(|s| s.into_iter().map(Tracked::into_value).collect::<Vec<i64>>())
    });
}

#[test]
fn selection_correct_under_dead_rows() {
    let v = vals(1024, 5);
    assert_correct_under_faults("selection", 1024, |m| {
        let items = place_z(m, 0, v.clone());
        try_select_rank(m, 0, items, 100, 7).map(|(t, _)| t.into_value())
    });
}

#[test]
fn spmv_correct_under_dead_rows() {
    let mat = workloads::random_uniform(128, 4, 9);
    let x: Vec<i64> = (0..128i64).collect();
    let nnz = mat.nnz() as u64;
    assert_correct_under_faults("spmv", nnz, |m| try_spmv(m, &mat, &x).map(|o| o.y));
}

#[test]
fn retry_runs_are_bit_deterministic_per_seed() {
    let v = vals(64, 6);
    let expect: Vec<i64> = v
        .iter()
        .scan(0i64, |acc, &x| {
            *acc = acc.wrapping_add(x);
            Some(*acc)
        })
        .collect();
    let go = |seed: u64| {
        // ~210 messages at 1% corruption each: a clean attempt has ≈12%
        // probability, so retries are near-certain and recovery within the
        // 100-attempt cap is overwhelmingly likely.
        let plan =
            FaultPlan::builder(seed).random_dead_rows(extent_for(64), 0.1).flaky(0.01).build();
        run_with_recovery(
            &plan,
            100,
            |m, _attempt| {
                let items = place_z(m, 0, v.clone());
                try_scan_any(m, 0, items, &|a, b| a.wrapping_add(*b)).map(read_values)
            },
            |got| *got == expect,
        )
        .expect("recoverable within 100 retries")
    };
    let a = go(77);
    let b = go(77);
    assert_eq!(a, b, "same fault seed must replay bit-for-bit (value, costs, retry count)");
    assert_eq!(a.attempt_costs.len() as u32, a.attempts);
    let summed: u64 = a.attempt_costs.iter().map(|c| c.energy).sum();
    assert_eq!(a.cost.energy, summed, "retry cost accumulates across attempts");
    // A different fault seed is a genuinely different execution.
    let c = go(78);
    assert_ne!(a.cost, c.cost, "distinct fault seeds should differ somewhere");
}

#[test]
fn guard_violations_are_values_not_panics() {
    // Energy budget: typed error, no panic, machine still usable.
    let mut m = Machine::new();
    m.enable_guard(ModelGuard::new().max_energy(10));
    let v = place_z(&mut m, 0, vals(64, 1));
    let err = try_sort_z(&mut m, 0, v).unwrap_err();
    assert!(matches!(err, SpatialError::BudgetExceeded { .. }), "got {err}");
    assert_eq!(err.exit_code(), 7);

    // Dead PE: strict try_send refuses with coordinates attached.
    let mut m = Machine::new();
    m.enable_faults(FaultPlan::builder(1).dead_pe(Coord::new(2, 2)).build());
    let t = m.try_place(Coord::ORIGIN, 1i64).unwrap();
    let err = m.try_send(&t, Coord::new(2, 2)).unwrap_err();
    assert!(matches!(err, SpatialError::DeadPe { .. }), "got {err}");
    assert_eq!(err.exit_code(), 4);

    // Extent guard: out-of-bounds is typed too.
    let mut m = Machine::new();
    m.enable_guard(ModelGuard::new().extent(SubGrid::square(Coord::ORIGIN, 4)));
    let t = m.try_place(Coord::ORIGIN, 1i64).unwrap();
    let err = m.try_send(&t, Coord::new(9, 0)).unwrap_err();
    assert!(matches!(err, SpatialError::OutOfBounds { .. }), "got {err}");
    assert_eq!(err.exit_code(), 5);
}

#[test]
fn primitives_respect_hard_memory_cap() {
    // Satellite audit: the model gives every PE O(1) words. With the guard's
    // hard cap armed at 4 resident words, every primitive must complete
    // without tripping it — at any input size (the up-sweep once leaked
    // O(log n) accumulator words per tree cell; this pins the fix).
    let cap = ModelGuard::new().mem_cap(4);
    for n in [256usize, 1024] {
        let v = vals(n, 2);
        let mut m = Machine::new();
        m.enable_guard(cap);
        let items = place_z(&mut m, 0, v.clone());
        try_scan_any(&mut m, 0, items, &|a, b| a.wrapping_add(*b))
            .unwrap_or_else(|e| panic!("scan n={n}: {e}"));

        let mut m = Machine::new();
        m.enable_guard(cap);
        let items = place_z(&mut m, 0, v.clone());
        try_sort_z(&mut m, 0, items).unwrap_or_else(|e| panic!("sort n={n}: {e}"));

        let mut m = Machine::new();
        m.enable_guard(cap);
        let items = place_z(&mut m, 0, v.clone());
        try_select_rank(&mut m, 0, items, (n / 2) as u64, 7)
            .unwrap_or_else(|e| panic!("select n={n}: {e}"));

        let mut m = Machine::new();
        m.enable_guard(cap);
        let side = (n as f64).sqrt() as u64;
        let root = m.try_place(Coord::ORIGIN, 1i64).unwrap();
        try_broadcast(&mut m, root, SubGrid::square(Coord::ORIGIN, side))
            .unwrap_or_else(|e| panic!("broadcast n={n}: {e}"));
    }
    let mat = workloads::random_uniform(128, 4, 9);
    let x: Vec<i64> = (0..128i64).collect();
    let mut m = Machine::new();
    m.enable_guard(cap);
    try_spmv(&mut m, &mat, &x).unwrap_or_else(|e| panic!("spmv: {e}"));
}

#[test]
fn memory_cap_violation_is_typed() {
    // A cap of 1 is untenable for any gather — it must surface as the typed
    // MemoryExceeded error, not a panic.
    let mut m = Machine::new();
    m.enable_guard(ModelGuard::new().mem_cap(1));
    let items = place_z(&mut m, 0, vals(64, 3));
    let err = try_scan_any(&mut m, 0, items, &|a, b| a.wrapping_add(*b)).unwrap_err();
    assert!(matches!(err, SpatialError::MemoryExceeded { .. }), "got {err}");
    assert_eq!(err.exit_code(), 6);
}
