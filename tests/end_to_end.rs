//! Cross-crate integration tests: full pipelines composed through the
//! public facade, exactly as a downstream user would write them.

use spatial_dataflow::model::{zorder, Machine};
use spatial_dataflow::prelude::*;
use spatial_dataflow::theory::{self, Metric};

fn pseudo(n: usize, seed: i64) -> Vec<i64> {
    (0..n).map(|i| ((i as i64 * 2654435761 + seed) % 1000003) - 500000).collect()
}

#[test]
fn scan_sort_select_compose_on_one_machine() {
    // Run the three primitives back-to-back on a single machine; costs
    // accumulate and every output stays correct.
    let n = 1024usize;
    let vals = pseudo(n, 1);
    let mut m = Machine::new();

    let items = place_z(&mut m, 0, vals.clone());
    let sums = read_values(scan(&mut m, 0, items, &|a, b| a + b));
    assert_eq!(*sums.last().unwrap(), vals.iter().sum::<i64>());

    let items = place_z(&mut m, 0, vals.clone());
    let sorted = sort_z_values(&mut m, 0, items);
    let (median, _) = select_rank_values(&mut m, 0, vals.clone(), n as u64 / 2, 3);
    assert_eq!(median, sorted[n / 2 - 1]);
}

#[test]
fn selection_energy_is_polynomially_below_sorting() {
    // The headline separation of §VI: Θ(n) vs Θ(n^{3/2}).
    let n = 16384usize;
    let vals = pseudo(n, 5);

    let mut ms = Machine::new();
    let items = place_z(&mut ms, 0, vals.clone());
    let _ = sort_z(&mut ms, 0, items);

    let mut mr = Machine::new();
    let (_, stats) = select_rank_values(&mut mr, 0, vals, n as u64 / 2, 11);
    assert_eq!(stats.fallbacks, 0);

    let ratio = ms.energy() as f64 / mr.energy() as f64;
    assert!(ratio > 4.0, "sorting should cost far more energy (ratio {ratio:.1})");
}

#[test]
fn spmv_equals_sort_plus_scan_composition() {
    // SpMV is built from the primitives; verify the composition end to end
    // against the dense oracle on an irregular matrix.
    let a = workloads::zipf_rows(128, 6, 3);
    let x: Vec<i64> = (0..128).map(|i| (i % 11) - 5).collect();
    let mut m = Machine::new();
    let out = spmv(&mut m, &a, &x);
    assert_eq!(out.y, a.multiply_dense(&x));
    // Cost sanity against Table I shapes.
    // Cost sanity against Table I shapes (constants are loose: the model
    // hides them and padding inflates small instances).
    let nnz = a.nnz() as f64;
    assert!((out.cost.energy as f64) < 20_000.0 * nnz.powf(1.5));
    assert!((out.cost.distance as f64) < 200.0 * nnz.sqrt());
}

#[test]
fn table1_shapes_hold_across_a_sweep() {
    // A miniature of the `table1` experiment binary, kept small enough for
    // the test suite: fit the scaling exponents and compare with Table I.
    use spatial_dataflow::report::Sweep;

    let mut scan_sweep = Sweep::new("scan");
    for k in 3..=8u32 {
        let n = 4usize.pow(k);
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, pseudo(n, 7));
        let _ = scan(&mut m, 0, items, &|a, b| a + b);
        scan_sweep.push(n as u64, m.report());
    }
    assert!(scan_sweep.conforms(Metric::Energy, theory::scan_bound(Metric::Energy), 0.1));
    assert!(scan_sweep.conforms(Metric::Distance, theory::scan_bound(Metric::Distance), 0.1));
    assert!(scan_sweep.conforms(Metric::Depth, theory::scan_bound(Metric::Depth), 0.1));

    let mut sort_sweep = Sweep::new("sort");
    for k in 3..=6u32 {
        let n = 4usize.pow(k);
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, pseudo(n, 9));
        let _ = sort_z(&mut m, 0, items);
        sort_sweep.push(n as u64, m.report());
    }
    assert!(sort_sweep.conforms(Metric::Energy, theory::sorting_bound(Metric::Energy), 0.2));
    assert!(sort_sweep.conforms(Metric::Distance, theory::sorting_bound(Metric::Distance), 0.25));
}

#[test]
fn pram_simulation_runs_library_programs() {
    use spatial_dataflow::pram::programs::TreeSum;
    use spatial_dataflow::pram::{simulate_crcw, simulate_erew, PramLayout, PramProgram};

    let prog = TreeSum::new((1..=256).collect());
    let layout = PramLayout::adjacent(prog.processors(), prog.memory_cells());
    let mut m1 = Machine::new();
    let mut m2 = Machine::new();
    assert_eq!(simulate_erew(&mut m1, &prog, layout)[0], simulate_crcw(&mut m2, &prog, layout)[0]);
    // CRCW pays for generality: more energy, more depth.
    assert!(m2.energy() > m1.energy());
    assert!(m2.report().depth > m1.report().depth);
}

#[test]
fn permutation_lower_bound_transfers_to_spmv() {
    // Lemma VIII.1: multiplying by a permutation matrix moves the vector,
    // so SpMV energy must exceed the Lemma V.1 permutation bound shape.
    let n = 256usize;
    let a = workloads::permutation_matrix(n, 3);
    let x: Vec<i64> = (0..n as i64).collect();
    let mut m = Machine::new();
    let out = spmv(&mut m, &a, &x);
    let mut expect = vec![0i64; n];
    for &(r, c, _) in &a.entries {
        expect[r as usize] = x[c as usize];
    }
    assert_eq!(out.y, expect);
    // The measured energy is superlinear in n (n^{3/2} shape): compare per
    // element against √n.
    let per_elem = out.cost.energy as f64 / n as f64;
    assert!(per_elem > (n as f64).sqrt() / 4.0, "per-element energy {per_elem:.1}");
}

#[test]
fn z_layout_and_row_major_layout_agree() {
    let n = 256usize;
    let vals = pseudo(n, 21);
    let grid = spatial_dataflow::model::SubGrid::square(spatial_dataflow::model::Coord::ORIGIN, 16);

    let mut m1 = Machine::new();
    let items = place_z(&mut m1, 0, vals.clone());
    let a = sort_z_values(&mut m1, 0, items);

    let mut m2 = Machine::new();
    let items = place_row_major(&mut m2, grid, vals);
    let out = sort_row_major(&mut m2, grid, items);
    let b: Vec<i64> = out.iter().map(|t| *t.value()).collect();
    assert_eq!(a, b);
    // The row-major version pays two extra permutations but stays Θ(n^{3/2}).
    assert!(m2.energy() >= m1.energy());
    assert!(m2.energy() < 3 * m1.energy());
}

#[test]
fn padded_sizes_work_everywhere() {
    // Non-power-of-four sizes across the whole stack.
    for n in [5usize, 29, 77, 200] {
        let vals = pseudo(n, n as i64);
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vals.clone());
        let sorted = sort_z_values(&mut m, 0, items);
        let mut expect = vals.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect, "sort n={n}");

        let (kth, _) = select_rank_values(&mut m, 0, vals.clone(), (n as u64).div_ceil(2), 2);
        assert_eq!(kth, expect[(n - 1) / 2], "select n={n}");
    }
}

#[test]
fn tracked_values_report_consistent_paths() {
    // The watermark is the max over all value paths — an invariant of the
    // cost accounting, checked across a composite computation.
    let mut m = Machine::new();
    let items = place_z(&mut m, 0, pseudo(64, 2));
    let out = scan(&mut m, 0, items, &|a, b| a + b);
    let report = m.report();
    for t in &out {
        assert!(t.path().depth <= report.depth);
        assert!(t.path().distance <= report.distance);
    }
    assert!(report.energy >= report.distance, "energy sums all chains");
}

#[test]
fn zorder_segment_is_where_the_values_live() {
    // place_z really places on the global curve, and sort keeps the segment.
    let mut m = Machine::new();
    let items = place_z(&mut m, 64, pseudo(64, 4));
    let sorted = sort_z(&mut m, 64, items);
    for (i, t) in sorted.iter().enumerate() {
        assert_eq!(t.loc(), zorder::coord_of(64 + i as u64));
    }
}

/// The documented exit-code taxonomy, checked against the real binary: every
/// failure class the CLI promises a distinct code for actually produces it.
mod cli_exit_codes {
    use std::process::{Command, Output};

    fn run(args: &[&str]) -> Output {
        Command::new(env!("CARGO_BIN_EXE_spatial-dataflow"))
            .args(args)
            .output()
            .expect("spawn spatial-dataflow")
    }

    fn assert_exit(args: &[&str], want: i32) -> Output {
        let out = run(args);
        assert_eq!(
            out.status.code(),
            Some(want),
            "`spatial-dataflow {}` should exit {want}\nstdout:\n{}\nstderr:\n{}",
            args.join(" "),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        out
    }

    #[test]
    fn usage_errors_exit_2() {
        assert_exit(&["frobnicate"], 2);
        assert_exit(&["scan", "--n", "not-a-number"], 2);
        // `chaos --mode spin` without a deadline would never terminate; the
        // CLI must refuse it rather than hang.
        assert_exit(&["chaos", "--mode", "spin"], 2);
        assert_exit(&["batch"], 2);
    }

    #[test]
    fn unknown_profile_is_a_typed_usage_error() {
        // A bad --profile must exit 2 with a message naming the stranger and
        // listing the built-ins — not the generic usage dump, and certainly
        // not a run under some silently-substituted default.
        let out = assert_exit(&["scan", "--n", "64", "--profile", "nope"], 2);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("unknown profile \"nope\""), "stderr: {stderr}");
        for known in ["model-exact", "wse-like", "systolic-like", "simt-like"] {
            assert!(stderr.contains(known), "stderr must list {known}: {stderr}");
        }
    }

    #[test]
    fn profiled_run_reports_energy_breakdown_and_edp() {
        let out = assert_exit(&["scan", "--n", "256", "--profile", "wse-like"], 0);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("profile=wse-like"), "stdout: {stdout}");
        for field in ["total_pj=", "delay_cycles=", "edp="] {
            assert!(stdout.contains(field), "stdout must report {field}: {stdout}");
        }
        // The raw counters stay on their own line, profile or not.
        assert!(stdout.contains("measured: energy="), "stdout: {stdout}");
    }

    #[test]
    fn failed_verification_exits_3() {
        let out = assert_exit(&["chaos", "--mode", "badverify", "--n", "64"], 3);
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("verification"), "stderr: {stderr}");
    }

    #[test]
    fn budget_breach_exits_7() {
        assert_exit(&["scan", "--n", "256", "--budget", "10"], 7);
    }

    #[test]
    fn exhausted_recovery_exits_8() {
        // Corrupting every message makes the checksum verification fail on
        // every attempt; once the retry cap is hit the run exits 8.
        assert_exit(&["scan", "--n", "64", "--flaky", "1.0", "--retries", "1"], 8);
    }

    #[test]
    fn deadline_cancellation_exits_9() {
        let out = assert_exit(&["chaos", "--mode", "spin", "--timeout", "150"], 9);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("deadline-exceeded"), "stdout: {stdout}");
    }

    #[test]
    fn load_shedding_exits_10() {
        // A saturation threshold of 0.5 over a queue of 2 admits a single
        // job; the other three are shed deterministically, and the batch
        // (not best-effort) reports the overload with exit 10.
        let spec = r#"{
            "name": "shed-exit",
            "config": {"workers": 1, "queue_cap": 2, "shed_threshold": 0.5},
            "jobs": [
                {"id": "a", "kind": "scan", "n": 64, "seed": 1},
                {"id": "b", "kind": "scan", "n": 64, "seed": 2},
                {"id": "c", "kind": "scan", "n": 64, "seed": 3},
                {"id": "d", "kind": "scan", "n": 64, "seed": 4}
            ]
        }"#;
        let path = std::env::temp_dir().join(format!("spatial-shed-{}.json", std::process::id()));
        std::fs::write(&path, spec).unwrap();
        let out = assert_exit(&["batch", path.to_str().unwrap()], 10);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("3 shed"), "stdout: {stdout}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn best_effort_batch_contains_every_failure_class() {
        // The acceptance scenario: a batch holding panicking, deadline-
        // exceeding, and unrecoverable jobs still completes with exit 0
        // under --best-effort, classifying each failure correctly.
        let spec = concat!(env!("CARGO_MANIFEST_DIR"), "/experiments/jobspecs/smoke.json");
        let out = assert_exit(&["batch", spec, "--best-effort", "--jobs", "4"], 0);
        let stdout = String::from_utf8_lossy(&out.stdout);
        for needle in [
            "deliberate-panic   panicked",
            "deliberate-timeout deadline-exceeded",
            "scan-unrecoverable degraded",
            "scan-clean       ok",
        ] {
            assert!(
                stdout
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" ")
                    .contains(&needle.split_whitespace().collect::<Vec<_>>().join(" ")),
                "expected {needle:?} in batch summary:\n{stdout}"
            );
        }
        assert!(stdout.contains("1 panicked"), "stdout: {stdout}");
        assert!(stdout.contains("1 deadline-exceeded"), "stdout: {stdout}");
    }
}
