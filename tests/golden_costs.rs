//! Golden-cost corpus: exact `(energy, depth, distance, messages)` tuples
//! for every user-facing primitive at small sizes, pinned against the
//! committed snapshot in `experiments/golden/costs.json`.
//!
//! The Spatial Computer Model simulator reports *exact* model costs, so any
//! change to these numbers is a change to the model itself — a routing
//! tweak, an extra message, a different tree shape — and must be a conscious
//! decision, never a silent side effect of a performance refactor. The
//! fast-path rework of the simulator core (batch sends, flat meters, arena
//! sweeps) was landed under exactly this pin: the corpus passed bit-identical
//! before and after.
//!
//! To regenerate after an *intentional* model change:
//!
//! ```bash
//! SPATIAL_BLESS=1 cargo test --test golden_costs
//! git diff experiments/golden/costs.json   # drift is a reviewable diff
//! ```

use spatial_dataflow::model::{Coord, Cost, Machine, SubGrid};
use spatial_dataflow::prelude::*;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/experiments/golden/costs.json");

/// The corpus sizes. All primitives here accept powers of four, which keeps
/// the layouts canonical (a `√n × √n` square at the origin).
const SIZES: [usize; 3] = [16, 64, 256];

/// Deterministic input data shared by every entry (values are irrelevant to
/// the costs of data-oblivious primitives, but selection's pivot draws and
/// spmv's sparsity pattern make them part of the pin).
fn vals(n: usize) -> Vec<i64> {
    (0..n).map(|i| ((i as i64).wrapping_mul(2654435761) % 1009) - 500).collect()
}

fn measure(f: impl FnOnce(&mut Machine)) -> Cost {
    let mut m = Machine::new();
    f(&mut m);
    m.report()
}

/// Every pinned primitive at one size, in corpus order.
fn entries_for(n: usize) -> Vec<(String, Cost)> {
    let side = (n as f64).sqrt() as u64;
    let grid = SubGrid::square(Coord::ORIGIN, side);
    let mut out = Vec::new();

    out.push((
        format!("scan/{n}"),
        measure(|m| {
            let items = place_z(m, 0, vals(n));
            let _ = scan(m, 0, items, &|a, b| a + b);
        }),
    ));
    out.push((
        format!("broadcast/{n}"),
        measure(|m| {
            let root = m.place(grid.origin, 7i64);
            let _ = broadcast(m, root, grid);
        }),
    ));
    out.push((
        format!("reduce/{n}"),
        measure(|m| {
            let items = place_row_major(m, grid, vals(n));
            let _ = reduce(m, items, grid, &|a, b| a + b);
        }),
    ));
    out.push((
        format!("sort_z_mergesort/{n}"),
        measure(|m| {
            let items = place_z(m, 0, vals(n));
            let _ = sort_z(m, 0, items);
        }),
    ));
    out.push((
        format!("sort_bitonic/{n}"),
        measure(|m| {
            let items = place_row_major(m, grid, vals(n));
            let net = spatial_dataflow::sortnet::bitonic_sort(n);
            let _ = spatial_dataflow::sortnet::run_row_major(m, &net, grid, items);
        }),
    ));
    out.push((
        format!("select_rank/{n}"),
        measure(|m| {
            let _ = select_rank_values(m, 0, vals(n), n as u64 / 2, 42);
        }),
    ));
    out.push((
        format!("spmv/{n}"),
        measure(|m| {
            let a = workloads::random_uniform(n, 3, 9);
            let x = vals(n);
            let _ = spmv(m, &a, &x);
        }),
    ));
    out.push((
        format!("spmv_multi/{n}"),
        measure(|m| {
            let a = workloads::random_uniform(n, 3, 9);
            let xs: Vec<Vec<i64>> =
                (0..3).map(|k| vals(n).into_iter().map(|v| v + k as i64).collect()).collect();
            let _ = spatial_dataflow::spmv::spmv_multi(m, &a, &xs);
        }),
    ));
    out.push((
        format!("segmented_sum/{n}"),
        measure(|m| {
            let items: Vec<SegItem<i64>> =
                vals(n).into_iter().enumerate().map(|(i, v)| SegItem::new(i % 5 == 0, v)).collect();
            let placed = place_z(m, 0, items);
            let _ = segmented_scan(m, 0, placed, &|a, b| a + b);
        }),
    ));
    out.push((
        format!("pram_erew_treesum/{n}"),
        measure(|m| {
            use spatial_dataflow::pram::programs::TreeSum;
            use spatial_dataflow::pram::{simulate_erew, PramLayout, PramProgram};
            let prog = TreeSum::new(vals(n));
            let layout = PramLayout::adjacent(prog.processors(), prog.memory_cells());
            let _ = simulate_erew(m, &prog, layout);
        }),
    ));
    out
}

/// Canonical text form of the corpus: one line per entry so any drift is a
/// one-line diff in review.
fn render(entries: &[(String, Cost)]) -> String {
    let mut s = String::from("{\n  \"format\": \"spatial-golden/v1\",\n  \"entries\": [\n");
    for (i, (id, c)) in entries.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"id\": \"{id}\", \"energy\": {}, \"depth\": {}, \"distance\": {}, \"messages\": {}}}{}\n",
            c.energy,
            c.depth,
            c.distance,
            c.messages,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[test]
fn golden_costs_match_committed_corpus() {
    let mut entries = Vec::new();
    for &n in &SIZES {
        entries.extend(entries_for(n));
    }
    let rendered = render(&entries);

    if std::env::var("SPATIAL_BLESS").map(|v| v == "1").unwrap_or(false) {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap())
            .expect("create experiments/golden");
        std::fs::write(GOLDEN_PATH, &rendered).expect("write golden corpus");
        eprintln!("blessed {} entries into {GOLDEN_PATH}", entries.len());
        return;
    }

    let committed = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "missing golden corpus {GOLDEN_PATH}: {e}\n\
             generate it with SPATIAL_BLESS=1 cargo test --test golden_costs"
        )
    });
    if committed != rendered {
        let diff: Vec<String> = committed
            .lines()
            .zip(rendered.lines())
            .filter(|(a, b)| a != b)
            .map(|(a, b)| format!("  committed: {a}\n  measured:  {b}"))
            .collect();
        panic!(
            "golden costs drifted from {GOLDEN_PATH} ({} line(s)):\n{}\n\
             If this change to the model is intentional, re-bless with \
             SPATIAL_BLESS=1 cargo test --test golden_costs",
            diff.len(),
            diff.join("\n")
        );
    }
}

/// The corpus generator itself must be deterministic, otherwise the pin
/// would flap without any model change.
#[test]
fn golden_corpus_generation_is_deterministic() {
    let a = entries_for(64);
    let b = entries_for(64);
    assert_eq!(a, b);
}

// ---------------------------------------------------------------------------
// Profile-aware golden corpus: the same 30 subjects charged under every
// built-in cost profile, pinned in experiments/golden/profiled_costs.json.
//
// A profile is pure accounting over the raw counters, so this corpus cannot
// drift unless either (a) the raw corpus above drifts, or (b) a profile's
// weights or charging arithmetic change. Both deserve a reviewable diff.
// Re-bless together with the raw corpus:
//
//   SPATIAL_BLESS=1 cargo test --test golden_costs
// ---------------------------------------------------------------------------

const PROFILED_GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/experiments/golden/profiled_costs.json");

/// Canonical text form: one line per (profile, subject) pair, profiles in
/// registry order, subjects in corpus order. The u128 fields are decimal
/// strings for the same 53-bit-mantissa reason the checksums are hex.
fn render_profiled(entries: &[(String, Cost)]) -> String {
    let profiles = spatial_dataflow::model::builtin_profiles();
    let total = profiles.len() * entries.len();
    let mut s = String::from("{\n  \"format\": \"spatial-golden-profiled/v1\",\n  \"entries\": [\n");
    let mut k = 0;
    for profile in profiles {
        for (id, c) in entries {
            let p = profile.charge(*c).expect("built-in profiles cannot saturate on real runs");
            k += 1;
            s.push_str(&format!(
                "    {{\"id\": \"{id}\", \"profile\": \"{}\", \"hop_pj\": \"{}\", \
                 \"op_pj\": \"{}\", \"occupancy_pj\": \"{}\", \"total_pj\": \"{}\", \
                 \"delay_cycles\": \"{}\", \"edp\": \"{}\"}}{}\n",
                p.profile,
                p.hop_pj,
                p.op_pj,
                p.occupancy_pj,
                p.total_pj,
                p.delay_cycles,
                p.edp,
                if k < total { "," } else { "" }
            ));
        }
    }
    s.push_str("  ]\n}\n");
    s
}

#[test]
fn golden_profiled_costs_match_committed_corpus() {
    let mut entries = Vec::new();
    for &n in &SIZES {
        entries.extend(entries_for(n));
    }
    let rendered = render_profiled(&entries);

    if std::env::var("SPATIAL_BLESS").map(|v| v == "1").unwrap_or(false) {
        std::fs::create_dir_all(std::path::Path::new(PROFILED_GOLDEN_PATH).parent().unwrap())
            .expect("create experiments/golden");
        std::fs::write(PROFILED_GOLDEN_PATH, &rendered).expect("write profiled golden corpus");
        eprintln!("blessed profiled corpus into {PROFILED_GOLDEN_PATH}");
        return;
    }

    let committed = std::fs::read_to_string(PROFILED_GOLDEN_PATH).unwrap_or_else(|e| {
        panic!(
            "missing profiled golden corpus {PROFILED_GOLDEN_PATH}: {e}\n\
             generate it with SPATIAL_BLESS=1 cargo test --test golden_costs"
        )
    });
    if committed != rendered {
        let diff: Vec<String> = committed
            .lines()
            .zip(rendered.lines())
            .filter(|(a, b)| a != b)
            .map(|(a, b)| format!("  committed: {a}\n  measured:  {b}"))
            .collect();
        panic!(
            "profiled golden costs drifted from {PROFILED_GOLDEN_PATH} ({} line(s)):\n{}\n\
             If this change is intentional, re-bless with \
             SPATIAL_BLESS=1 cargo test --test golden_costs",
            diff.len(),
            diff.join("\n")
        );
    }
}

/// The model-exact profile is the identity mapping on the corpus: pJ totals
/// equal raw energy, delay equals raw distance, and the embedded raw tuple
/// is the corpus tuple, bit for bit. This is the contract that lets the
/// default profile replace the old unprofiled accounting with zero drift.
#[test]
fn model_exact_reproduces_the_raw_corpus_bit_identically() {
    use spatial_dataflow::model::ModelExact;
    for &n in &SIZES {
        for (id, c) in entries_for(n) {
            let p = ModelExact.charge(c).expect("model-exact never saturates");
            assert_eq!(p.raw, c, "{id}: raw tuple must ride through verbatim");
            assert_eq!(p.total_pj, u128::from(c.energy), "{id}: total_pj == energy");
            assert_eq!(p.hop_pj, u128::from(c.energy), "{id}: hop term carries everything");
            assert_eq!(p.op_pj, 0, "{id}: no per-op energy in the pure model");
            assert_eq!(p.occupancy_pj, 0, "{id}: no occupancy energy in the pure model");
            assert_eq!(p.delay_cycles, u128::from(c.distance), "{id}: delay == distance");
            assert_eq!(p.edp, u128::from(c.energy) * u128::from(c.distance), "{id}: EDP");
        }
    }
}
