//! Cost-accounting invariants that every algorithm must satisfy.
//!
//! These are model-level laws, independent of any particular bound:
//!
//! * `distance ≤ energy` — the critical chain is a subset of all messages;
//! * `depth ≤ messages` — a chain cannot be longer than the message count;
//! * `depth ≤ distance` cannot be asserted (unit hops), but
//!   `distance ≥ depth`·(min hop) holds with min hop ≥ 0 — we check
//!   `distance ≥ 1` whenever `depth ≥ 1` and every hop is ≥ 1 in practice
//!   for the algorithms here (no self-messages are ever charged);
//! * re-running the same algorithm on the same input gives bit-identical
//!   costs (the simulator is deterministic);
//! * costs are monotone under machine reuse (energy only grows).

use spatial_dataflow::model::{Cost, Machine};
use spatial_dataflow::prelude::*;

fn pseudo(n: usize, seed: i64) -> Vec<i64> {
    (0..n).map(|i| ((i as i64 * 2654435761 + seed) % 100003) - 50000).collect()
}

/// Runs every primitive on a fresh machine and returns the cost snapshots.
fn run_all(seed: i64) -> Vec<(&'static str, Cost)> {
    let n = 1024usize;
    let vals = pseudo(n, seed);
    let mut out = Vec::new();

    let mut m = Machine::new();
    let items = place_z(&mut m, 0, vals.clone());
    let _ = scan(&mut m, 0, items, &|a, b| a + b);
    out.push(("scan", m.report()));

    let mut m = Machine::new();
    let items = place_z(&mut m, 0, vals.clone());
    let _ = sort_z(&mut m, 0, items);
    out.push(("sort", m.report()));

    let mut m = Machine::new();
    let (_, _) = select_rank_values(&mut m, 0, vals.clone(), n as u64 / 3, seed as u64);
    out.push(("selection", m.report()));

    let mut m = Machine::new();
    let a = workloads::random_uniform(64, 4, seed as u64);
    let x: Vec<i64> = (0..64).collect();
    let _ = spmv(&mut m, &a, &x);
    out.push(("spmv", m.report()));

    let mut m = Machine::new();
    let grid = spatial_dataflow::model::SubGrid::square(spatial_dataflow::model::Coord::ORIGIN, 32);
    let root = m.place(grid.origin, 1i64);
    let _ = broadcast(&mut m, root, grid);
    out.push(("broadcast", m.report()));

    out
}

#[test]
fn distance_never_exceeds_energy() {
    for (name, c) in run_all(1) {
        assert!(c.distance <= c.energy, "{name}: distance {} > energy {}", c.distance, c.energy);
    }
}

#[test]
fn depth_never_exceeds_message_count() {
    for (name, c) in run_all(2) {
        assert!(c.depth <= c.messages, "{name}: depth {} > messages {}", c.depth, c.messages);
    }
}

#[test]
fn depth_never_exceeds_distance() {
    // Every charged hop in these algorithms has length ≥ 1 (move_to skips
    // self-messages), so a chain of k messages spans distance ≥ k.
    for (name, c) in run_all(3) {
        assert!(c.depth <= c.distance, "{name}: depth {} > distance {}", c.depth, c.distance);
    }
}

#[test]
fn energy_at_least_messages() {
    // Same fact, globally: each charged message travels ≥ 1.
    for (name, c) in run_all(4) {
        assert!(c.energy >= c.messages, "{name}: energy {} < messages {}", c.energy, c.messages);
    }
}

#[test]
fn costs_are_deterministic() {
    assert_eq!(run_all(5), run_all(5));
}

#[test]
fn machine_counters_are_monotone_under_reuse() {
    let mut m = Machine::new();
    let mut last = m.report();
    for round in 0..3 {
        let items = place_z(&mut m, 0, pseudo(256, round));
        let _ = sort_z(&mut m, 0, items);
        let now = m.report();
        assert!(now.energy > last.energy, "energy must accumulate");
        assert!(now.messages > last.messages);
        assert!(now.depth >= last.depth, "watermarks never decrease");
        assert!(now.distance >= last.distance);
        last = now;
    }
}

#[test]
fn cost_delta_isolates_phases() {
    let mut m = Machine::new();
    let items = place_z(&mut m, 0, pseudo(256, 9));
    let before = m.report();
    let sorted = sort_z(&mut m, 0, items);
    let sort_cost = m.report() - before;
    let before2 = m.report();
    let _ = scan(&mut m, 0, sorted, &|a, b| *a.min(b));
    let scan_cost = m.report() - before2;
    assert_eq!(before.energy + sort_cost.energy + scan_cost.energy, m.report().energy);
    assert!(sort_cost.energy > scan_cost.energy, "sorting costs more than scanning");
}
