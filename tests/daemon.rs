//! Spawn-driven protocol tests for the serving daemon: launch the real
//! binary, stream the committed multi-tenant submission file into its
//! stdin, and pin the per-job outcome lines, the ordering guarantee, the
//! byte-determinism of the canonical stream, and clean EOF shutdown.
//!
//! The committed stream (`experiments/jobspecs/serve_smoke.jsonl`) covers
//! every mechanism: clean jobs, a checksum-verified recovery, a rate-limit
//! shed, a budget-exhausted tenant (typed over-budget rejection), a
//! predictive-admission refusal, an extent-cap refusal, a contained chaos
//! panic, a watchdog deadline, a tenant-default fault plan, warm cache
//! hits, a malformed submission, and the stats verb. Its canonical output
//! is pinned byte-for-byte in `experiments/golden/serve_smoke.canonical`
//! (CI diffs it too). Crash recovery itself is exercised by
//! `tests/chaos.rs`; here we pin the graceful-shutdown paths (drain verb,
//! SIGTERM) and the journal flag validation.

use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};

fn smoke_stream() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/experiments/jobspecs/serve_smoke.jsonl"
    ))
    .expect("read committed serve smoke stream")
}

fn golden() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/experiments/golden/serve_smoke.canonical"
    ))
    .expect("read committed golden canonical output")
}

fn spawn_serve(args: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_spatial-dataflow"))
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn spatial-dataflow serve")
}

/// Streams `input` to a daemon spawned with `args`, closes stdin, and
/// returns (stdout, exit code).
fn serve_stream(args: &[&str], input: &str) -> (String, i32) {
    let mut child = spawn_serve(args);
    child.stdin.take().expect("piped stdin").write_all(input.as_bytes()).expect("write stream");
    let out = child.wait_with_output().expect("wait for daemon");
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        out.status.code().expect("daemon exit code"),
    )
}

/// Extracts `"key": <value>` from a single-line JSON record.
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat).unwrap_or_else(|| panic!("no {key:?} in {line}")) + pat.len();
    let rest = &line[start..];
    &rest[..rest.find(", \"").unwrap_or(rest.len() - 1)]
}

#[test]
fn smoke_stream_survives_everything_and_matches_the_golden_output() {
    let (stdout, code) = serve_stream(&["--canonical", "--jobs", "4"], &smoke_stream());
    // Clean EOF shutdown despite the chaos-panic job, the over-budget
    // tenant, and the malformed line: per-job failures never kill the
    // daemon, they become typed outcome lines.
    assert_eq!(code, 0, "daemon must exit 0 on EOF\n{stdout}");
    assert_eq!(stdout, golden(), "canonical stream must match the committed expectation");

    // Pin the semantics behind the bytes, so a careless golden-file
    // regeneration cannot silently change what the stream demonstrates.
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 25);
    for (i, line) in lines.iter().enumerate() {
        assert_eq!(field(line, "seq"), i.to_string(), "output is in input order");
    }
    let outcome_of = |id: &str| -> &str {
        let line = lines
            .iter()
            .find(|l| l.contains(&format!("\"id\": \"{id}\"")))
            .unwrap_or_else(|| panic!("no result line for {id}"));
        field(line, "outcome")
    };
    for (id, want) in [
        ("clean-scan", "\"ok\""),
        ("clean-sort", "\"ok\""),
        ("recovering-flaky", "\"ok\""),
        ("acme-shed", "\"shed\""),
        ("spender-warmup", "\"ok\""),
        ("spender-burn", "\"degraded\""),
        ("spender-refused", "\"over-budget\""),
        ("boom", "\"panicked\""),
        ("hopeless", "\"degraded\""),
        ("leashed", "\"deadline-exceeded\""),
        ("warm-hit", "\"ok\""),
        ("post-chaos", "\"ok\""),
        ("forecast-refused", "\"predicted-over-budget\""),
        ("forecast-fits", "\"ok\""),
        ("boxed-too-wide", "\"extent-refused\""),
        ("boxed-fits", "\"ok\""),
    ] {
        assert_eq!(outcome_of(id), want, "{id}");
    }
    // The recovery was real (multiple attempts), and the warm duplicate
    // returned the identical canonical result.
    let flaky = lines.iter().find(|l| l.contains("recovering-flaky")).unwrap();
    assert!(field(flaky, "attempts").parse::<u32>().unwrap() > 1, "{flaky}");
    let warm = lines.iter().find(|l| l.contains("warm-hit")).unwrap();
    assert_eq!(field(flaky, "cost"), field(warm, "cost"));
    assert_eq!(field(flaky, "checksum"), field(warm, "checksum"));
    assert_eq!(field(flaky, "backoff_ms"), field(warm, "backoff_ms"));
    // Typed exit-code-style outcomes ride along on every line.
    let refused = lines.iter().find(|l| l.contains("spender-refused")).unwrap();
    assert_eq!(field(refused, "code"), "12");
    assert_eq!(field(refused, "cost"), "null", "rejected job never executed");
    // Predictive admission: the closed-form Θ-bound floor (sort: n·√n =
    // 262144 for n = 4096) already exceeds the tenant's 1000-unit budget,
    // so the job is refused before a single message is simulated.
    let predicted = lines.iter().find(|l| l.contains("forecast-refused")).unwrap();
    assert_eq!(field(predicted, "code"), "13");
    assert_eq!(field(predicted, "cost"), "null", "refused before execution");
    assert!(predicted.contains("predicted energy 262144"), "{predicted}");
    // Extent cap: sort n=256 needs a 16x16 Z-square, the cap is 8x8.
    let boxed = lines.iter().find(|l| l.contains("boxed-too-wide")).unwrap();
    assert_eq!(field(boxed, "code"), "14");
    assert_eq!(field(boxed, "cost"), "null", "refused before execution");
    assert!(boxed.contains("needs a 16x16 grid"), "{boxed}");
    // The malformed line became a ctl error, not a crash.
    assert!(lines[16].contains("spatial-serve-ctl/v1") && lines[16].contains("unknown kind"));
    // The stats barrier saw every preceding job.
    assert!(lines[24].contains("spatial-serve-stats/v1"));
    assert_eq!(field(lines[24], "jobs"), "18");
    assert_eq!(field(lines[24], "over-budget"), "1");
    assert_eq!(field(lines[24], "predicted-over-budget"), "1");
    assert_eq!(field(lines[24], "extent-refused"), "1");
}

#[test]
fn canonical_stream_is_byte_identical_across_worker_counts() {
    let input = smoke_stream();
    let (one, code1) = serve_stream(&["--canonical", "--jobs", "1"], &input);
    let (four, code4) = serve_stream(&["--canonical", "--jobs", "4"], &input);
    assert_eq!((code1, code4), (0, 0));
    assert_eq!(one, four, "scheduling must not leak into the canonical stream");
}

#[test]
fn daemon_answers_interactively_across_submissions() {
    // The pool must stay alive between submissions: write one job, read
    // its result *before* sending the next — no EOF-batching allowed.
    let mut child = spawn_serve(&["--jobs", "2"]);
    let mut stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut ask = |line: &str| -> String {
        writeln!(stdin, "{line}").expect("write submission");
        stdin.flush().expect("flush submission");
        let mut reply = String::new();
        stdout.read_line(&mut reply).expect("read result line");
        assert!(reply.ends_with('\n'), "daemon closed stdout early: {reply:?}");
        reply
    };

    let cold = ask(r#"{"kind": "sort", "n": 64, "seed": 5, "id": "first"}"#);
    assert_eq!(field(&cold, "outcome"), "\"ok\"");
    assert_eq!(field(&cold, "cached"), "false");

    let boom = ask(r#"{"kind": "chaos-panic", "id": "mid-boom"}"#);
    assert_eq!(field(&boom, "outcome"), "\"panicked\"", "panic contained mid-session");

    let warm = ask(r#"{"kind": "sort", "n": 64, "seed": 5, "id": "again"}"#);
    assert_eq!(field(&warm, "outcome"), "\"ok\"", "daemon survived the panic");
    assert_eq!(field(&warm, "cached"), "true", "second submission hits the warm cache");
    assert_eq!(field(&cold, "cost"), field(&warm, "cost"), "hit is bit-identical");

    let stats = ask(r#"{"op": "stats"}"#);
    assert!(stats.contains("spatial-serve-stats/v1"));
    assert_eq!(field(&stats, "jobs"), "3");
    assert_eq!(field(&stats, "cache_hits"), "1");

    drop(stdin); // EOF → clean shutdown
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).expect("drain stdout");
    assert!(rest.is_empty(), "no output after the last submission: {rest:?}");
    let status = child.wait().expect("wait for daemon");
    assert_eq!(status.code(), Some(0));
}

#[test]
fn serve_usage_errors_exit_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_spatial-dataflow"))
        .args(["serve", "--jobs", "0"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let out = Command::new(env!("CARGO_BIN_EXE_spatial-dataflow"))
        .args(["serve", "--quantum", "0"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn journal_without_canonical_is_a_usage_error() {
    let dir = std::env::temp_dir().join(format!("spatial-flag-check-{}", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_spatial-dataflow"))
        .args(["serve", "--journal", dir.to_str().unwrap()])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--journal requires --canonical"), "{stderr}");
}

#[test]
fn drain_verb_finishes_in_flight_work_and_exits_0() {
    let mut child = spawn_serve(&["--jobs", "2"]);
    let mut stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));

    writeln!(stdin, r#"{{"kind": "scan", "n": 64, "seed": 9, "id": "pre-drain"}}"#).unwrap();
    writeln!(stdin, r#"{{"op": "drain"}}"#).unwrap();
    stdin.flush().unwrap();

    // The daemon must answer the in-flight job, ack the drain, and exit 0
    // with stdin still open — drain, not EOF, ends the session.
    let mut result = String::new();
    stdout.read_line(&mut result).expect("job result");
    assert_eq!(field(&result, "outcome"), "\"ok\"");
    let mut ack = String::new();
    stdout.read_line(&mut ack).expect("drain ack");
    assert!(ack.contains("\"op\": \"drain\"") && ack.contains("\"ok\": true"), "{ack}");
    let status = child.wait().expect("wait for daemon");
    assert_eq!(status.code(), Some(0), "drain is a clean shutdown");
    drop(stdin);
}

#[cfg(unix)]
#[test]
fn sigterm_drains_gracefully_instead_of_dying() {
    let mut child = spawn_serve(&["--jobs", "2"]);
    let mut stdin = child.stdin.take().expect("piped stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));

    writeln!(stdin, r#"{{"kind": "scan", "n": 64, "seed": 10, "id": "pre-term"}}"#).unwrap();
    stdin.flush().unwrap();
    let mut result = String::new();
    stdout.read_line(&mut result).expect("job result");
    assert_eq!(field(&result, "outcome"), "\"ok\"");

    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    // The drain flag is observed between lines (the handler is a single
    // atomic store; a blocked read restarts under SA_RESTART), so nudge
    // the reader with a line the protocol ignores.
    writeln!(stdin, "# nudge").unwrap();
    stdin.flush().unwrap();

    let status = child.wait().expect("wait for daemon");
    assert_eq!(status.code(), Some(0), "SIGTERM must drain, not kill");
    drop(stdin);
}
