#!/bin/bash
# Regenerates every table/figure reproduction; outputs land in experiments/.
set -u
cd "$(dirname "$0")"
BINS="table1 fig1_scan_trace fig2_bitonic_layout fig_collectives fig_scan_vs_naive fig_bitonic_vs_mergesort fig_permutation_lb fig_allpairs fig_rank2 fig_merge2d fig_selection fig_pram fig_spmv fig_mesh fig_networks fig_selection_c fig_multiselect fig_spmm"
for b in $BINS; do
  echo "=== running $b ==="
  cargo run -p bench --release --bin "$b" > "experiments/$b.txt" 2>&1 || echo "FAILED: $b"
done
echo "all experiments done"
