//! Nonparametric statistics on the Spatial Computer Model (§VI's opening
//! motivation: "selecting an element of a certain rank plays a crucial role
//! in nonparametric statistics").
//!
//! Computes a five-number summary (min, quartiles, median, max) and a
//! trimmed mean of a skewed dataset with rank selection — `O(n)` energy per
//! statistic — and compares the bill against sorting the whole dataset.
//!
//! ```bash
//! cargo run --release --example order_statistics
//! ```

use spatial_dataflow::prelude::*;
use spatial_dataflow::selection::quantiles;
use spatial_dataflow::verify::ensure;

fn main() {
    let n = 16384usize;
    // A heavy-tailed dataset (squared uniforms — right-skewed).
    let data: Vec<i64> = (0..n as i64)
        .map(|i| {
            let u = ((i * 48271) % 65521) as f64 / 65521.0;
            (u * u * 1_000_000.0) as i64
        })
        .collect();

    let mut machine = Machine::new();
    let items = place_z(&mut machine, 0, data.clone());
    let summary = quantiles(&mut machine, 0, &items, &[0.25, 0.5, 0.75, 1.0], 9);
    let (min, _) =
        spatial_dataflow::selection::select_rank_values(&mut machine, 0, data.clone(), 1, 11);
    let select_cost = machine.report();

    println!("five-number summary of {n} skewed samples (selection, Θ(n) energy each):");
    println!("  min  = {min}");
    for (q, v) in &summary {
        println!("  q{:>2.0} = {v}", q * 100.0);
    }

    // Verify against a host sort.
    let mut sorted = data.clone();
    sorted.sort_unstable();
    ensure(min == sorted[0], "minimum differs from host reference");
    for (q, v) in &summary {
        let k = ((q * n as f64).ceil() as usize).clamp(1, n);
        ensure(*v == sorted[k - 1], format_args!("quantile {q} differs from host reference"));
    }

    // The skew shows up as mean >> median.
    let mean = data.iter().sum::<i64>() / n as i64;
    let median = summary[1].1;
    println!(
        "\n  mean = {mean} vs median = {median} (right-skew: mean/median = {:.2})",
        mean as f64 / median as f64
    );
    ensure(mean > median, "skewed input: mean should exceed median");

    // Cost comparison vs the sort-everything alternative.
    let mut m_sort = Machine::new();
    let items = place_z(&mut m_sort, 0, data);
    let _ = sort_z(&mut m_sort, 0, items);
    println!("\nmodel cost (5 selections): {select_cost}");
    println!("model cost (1 full sort):  {}", m_sort.report());
    println!(
        "selection computed the summary with {:.1}x less energy",
        m_sort.energy() as f64 / select_cost.energy as f64
    );
    ensure(select_cost.energy < m_sort.energy(), "selection should beat a full sort on energy");
}
