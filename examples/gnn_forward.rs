//! A complete sort-pooling GNN forward pass on the Spatial Computer Model.
//!
//! Two graph-convolution layers propagate features over a power-law graph
//! (each channel is one low-depth SpMV), then a sort-pooling layer keeps
//! the top-k nodes by readout score — the architecture of the paper's
//! GNN motivation [16], with every message charged to the machine.
//!
//! ```bash
//! cargo run --release --example gnn_forward
//! ```

use spatial_dataflow::gnn::{Features, GraphConv, SortPoolNet, SortPooling};
use spatial_dataflow::prelude::*;
use spatial_dataflow::verify::ensure;
use workloads::powerlaw_graph;

fn main() {
    let n = 256usize;
    let graph = powerlaw_graph(n, 4, 11);
    println!("sort-pooling GNN on a power-law graph: {n} nodes, {} edges", graph.nnz());

    // Input features: degree-flavoured channels.
    let mut indeg = vec![0.0f64; n];
    for &(dst, _, _) in &graph.entries {
        indeg[dst as usize] += 1.0;
    }
    let input: Vec<Vec<f64>> =
        (0..n).map(|i| vec![1.0, indeg[i] / 4.0, ((i % 16) as f64) / 16.0]).collect();

    let net = SortPoolNet {
        layers: vec![
            GraphConv::new(
                vec![vec![0.6, -0.2, 0.1], vec![0.3, 0.8, -0.4], vec![-0.1, 0.2, 0.9]],
                vec![0.05, 0.0, -0.05],
                true,
            ),
            GraphConv::new(
                vec![vec![0.5, 0.5], vec![-0.3, 0.7], vec![0.2, 1.0]],
                vec![0.0, 0.0],
                false,
            ),
        ],
        pooling: SortPooling { k: 12, seed: 2 },
    };

    let mut machine = Machine::new();
    let feats = Features::place(&mut machine, 0, input.clone());
    let pooled = net.forward(&mut machine, &graph, feats);

    // Host cross-check of the whole pipeline. Equal readout scores are
    // broken by node index (the library's deterministic tie rule).
    let h1 = spatial_dataflow::gnn::reference_conv(&graph, &input, &net.layers[0]);
    let h2 = spatial_dataflow::gnn::reference_conv(&graph, &h1, &net.layers[1]);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| h2[a].last().unwrap().total_cmp(h2[b].last().unwrap()).then(a.cmp(&b)));
    let expect: Vec<Vec<f64>> = order[n - 12..].iter().map(|&i| h2[i].clone()).collect();
    // The spatial SpMV sums rows in segmented-scan order, the host in COO
    // order — identical up to floating-point associativity.
    let mut max_err = 0.0f64;
    ensure(pooled.len() == expect.len(), "pooled row count differs from host reference");
    for (a, b) in pooled.iter().zip(&expect) {
        for (x, y) in a.iter().zip(b) {
            max_err = max_err.max((x - y).abs());
        }
    }
    ensure(
        max_err < 1e-9,
        format_args!("spatial forward pass deviates from host reference by {max_err}"),
    );

    println!("\npooled top-{} nodes (readout channel ascending):", pooled.len());
    for row in &pooled {
        println!("  features [{:.4}, {:.4}]", row[0], row[1]);
    }
    println!("\nverified against the host reference.");
    println!("total model cost of the forward pass: {}", machine.report());
}
