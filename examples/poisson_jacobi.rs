//! Jacobi iteration for a 2D Poisson problem via spatial SpMV.
//!
//! The scientific-computing motivation of the paper: solve `A·u = b` where
//! `A` is the 5-point Laplacian, using Jacobi sweeps
//! `u ← u + D⁻¹(b − A·u)` with every `A·u` executed on the Spatial Computer
//! Model. Prints the residual trajectory and the model cost per sweep.
//!
//! ```bash
//! cargo run --release --example poisson_jacobi
//! ```

use spatial_dataflow::prelude::*;
use spatial_dataflow::verify::ensure;
use workloads::poisson_2d;

fn main() {
    let side = 16usize;
    let n = side * side;
    let a = poisson_2d(side);
    println!("Poisson 5-point system: {n} unknowns, {} non-zeros", a.nnz());

    // Right-hand side: a point source in the middle of the domain.
    let mut b = vec![0.0f64; n];
    b[side * side / 2 + side / 2] = 1.0;

    let mut machine = Machine::new();
    let mut u = vec![0.0f64; n];
    let sweeps = 30;
    let mut last_residual = f64::INFINITY;
    for sweep in 0..sweeps {
        let au = spmv(&mut machine, &a, &u);
        let mut residual = 0.0f64;
        for i in 0..n {
            let r = b[i] - au.y[i];
            residual += r * r;
            u[i] += r / 4.0; // D = 4·I for the 5-point stencil
        }
        let residual = residual.sqrt();
        if sweep % 5 == 0 || sweep == sweeps - 1 {
            println!("sweep {sweep:3}: ‖b - Au‖₂ = {residual:.6e}   cost [{}]", au.cost);
        }
        ensure(residual < last_residual * 1.0001, "Jacobi must not diverge on the Laplacian");
        last_residual = residual;
    }

    // Cross-check the final iterate against a host-side Jacobi run.
    let mut u_ref = vec![0.0f64; n];
    for _ in 0..sweeps {
        let au = a.multiply_dense(&u_ref);
        for i in 0..n {
            u_ref[i] += (b[i] - au[i]) / 4.0;
        }
    }
    let max_err = u.iter().zip(&u_ref).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max);
    ensure(max_err < 1e-12, format_args!("spatial Jacobi deviates from host Jacobi by {max_err}"));

    println!("\nsolution peak u[center] = {:.6}", u[side * side / 2 + side / 2]);
    println!("verified against host Jacobi (max |Δ| = {max_err:.2e})");
    println!("total model energy for {sweeps} sweeps: {}", machine.energy());
}
