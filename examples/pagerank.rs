//! PageRank on a power-law graph via spatial SpMV.
//!
//! The paper's introduction motivates the primitives with graph workloads;
//! this example runs PageRank power iterations where every `P·r` product is
//! executed on the Spatial Computer Model (sort by column → segmented
//! broadcast → multiply → sort by row → segmented sum), and reports the
//! accumulated model costs.
//!
//! ```bash
//! cargo run --release --example pagerank
//! ```

use spatial_dataflow::prelude::*;
use spatial_dataflow::verify::ensure;
use workloads::{pagerank_reference, powerlaw_graph};

fn main() {
    let n = 512usize;
    let damping = 0.85;
    let iters = 10;

    let graph = powerlaw_graph(n, 4, 7);
    println!(
        "power-law graph: {n} nodes, {} edges (top row has {} in-links)",
        graph.nnz(),
        graph.entries.iter().filter(|e| e.0 == 0).count()
    );

    let mut machine = Machine::new();
    let mut rank = vec![1.0f64 / n as f64; n];
    let mut total_energy = 0u64;
    for it in 0..iters {
        let out = spmv(&mut machine, &graph, &rank);
        for (r, s) in rank.iter_mut().zip(out.y) {
            *r = (1.0 - damping) / n as f64 + damping * s;
        }
        total_energy += out.cost.energy;
        println!("iter {it:2}: spmv cost [{}]  rank[0] = {:.6}", out.cost, rank[0]);
    }

    // Validate against the host reference.
    let reference = pagerank_reference(&graph, damping, iters);
    let max_err = rank.iter().zip(&reference).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    ensure(max_err < 1e-12, format_args!("spatial PageRank deviates: {max_err}"));

    let mut top: Vec<(usize, f64)> = rank.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop-5 nodes by rank (hubs should dominate):");
    for (node, score) in top.iter().take(5) {
        println!("  node {node:4}  rank {score:.6}");
    }
    println!("\ntotal SpMV energy over {iters} iterations: {total_energy}");
    println!("verified against host PageRank (max |Δ| = {max_err:.2e})");
}
