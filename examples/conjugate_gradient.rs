//! Conjugate gradients on the Spatial Computer Model.
//!
//! The paper cites CG (Hestenes–Stiefel [14]) as the canonical sparse
//! scientific workload. This example runs textbook CG on a 2D Poisson
//! system with **every** numerical operation charged to the machine:
//!
//! * `A·p` via the low-depth SpMV (Theorem VIII.2);
//! * dot products via local multiplies + a Z-segment reduce + re-broadcast
//!   (`O(n)` energy, `O(log n)` depth per product);
//! * vector updates locally (free: operands are co-located).
//!
//! ```bash
//! cargo run --release --example conjugate_gradient
//! ```

use spatial_dataflow::prelude::*;
use spatial_dataflow::spmv::SpatialVector;
use spatial_dataflow::verify::ensure;
use workloads::poisson_2d;

fn main() {
    let side = 12usize;
    let n = side * side;
    let a = poisson_2d(side);
    println!("CG on the {side}x{side} Poisson system ({n} unknowns, {} non-zeros)\n", a.nnz());

    // Point source in the middle of the domain.
    let mut b = vec![0.0f64; n];
    b[side * side / 2 + side / 2] = 1.0;

    let mut machine = Machine::new();
    // x = 0, r = b, p = r.
    let mut x = SpatialVector::place(&mut machine, 0, &vec![0.0; n]);
    let mut r = SpatialVector::place(&mut machine, 0, &b);
    let mut p = SpatialVector::place(&mut machine, 0, &b);
    let mut rs_old = r.norm2(&mut machine);

    let tol = 1e-12;
    let max_iters = 2 * n;
    let mut iters = 0;
    for it in 0..max_iters {
        iters = it + 1;
        // A·p on the machine.
        let ap_host = spmv(&mut machine, &a, &p.values());
        let ap = SpatialVector::place(&mut machine, 0, &ap_host.y);

        let p_ap = p.dot(&ap, &mut machine);
        let alpha = rs_old / p_ap;
        x.axpy(&p, alpha);
        r.axpy(&ap, -alpha);

        let rs_new = r.norm2(&mut machine);
        if it % 10 == 0 {
            println!("iter {it:3}: ‖r‖² = {rs_new:.3e}   (spmv cost [{}])", ap_host.cost);
        }
        if rs_new < tol {
            println!("iter {it:3}: ‖r‖² = {rs_new:.3e}  -> converged");
            break;
        }
        p.xpby(&r, rs_new / rs_old); // p = r + β p
        rs_old = rs_new;
    }

    // Validate: A·x ≈ b via the dense oracle.
    let ax = a.multiply_dense(&x.values());
    let max_err = ax.iter().zip(&b).map(|(u, v)| (u - v).abs()).fold(0.0f64, f64::max);
    println!("\nconverged in {iters} iterations; max |A·x − b| = {max_err:.3e}");
    ensure(max_err < 1e-5, format_args!("CG failed to solve the system (max err {max_err:.3e})"));
    println!("total model cost of the whole solve: {}", machine.report());
}
