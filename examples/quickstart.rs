//! Quickstart: run each headline primitive once and print its measured
//! model costs next to the Table I predictions.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use spatial_dataflow::prelude::*;
use spatial_dataflow::theory::{self, Metric};
use spatial_dataflow::verify::ensure;

fn show(name: &str, n: u64, cost: Cost, bound: impl Fn(Metric) -> theory::Shape) {
    println!("{name} (n = {n})");
    println!("  measured: {cost}");
    println!(
        "  paper:    energy Θ({})  depth O({})  distance Θ({})",
        bound(Metric::Energy).label(),
        bound(Metric::Depth).label(),
        bound(Metric::Distance).label()
    );
    println!();
}

fn main() {
    let n = 4096usize;
    let vals: Vec<i64> = (0..n as i64).map(|i| (i * 2654435761) % 100003).collect();

    // --- Parallel scan (§IV.C) ---------------------------------------------
    let mut m = Machine::new();
    let items = place_z(&mut m, 0, vals.clone());
    let sums = scan(&mut m, 0, items, &|a, b| a + b);
    let expect: i64 = vals.iter().sum();
    ensure(*read_values(sums).last().unwrap() == expect, "scan total differs from host sum");
    show("Parallel scan", n as u64, m.report(), theory::scan_bound);

    // --- 2D Mergesort (§V.C) -----------------------------------------------
    let mut m = Machine::new();
    let items = place_z(&mut m, 0, vals.clone());
    let sorted = sort_z_values(&mut m, 0, items);
    ensure(sorted.windows(2).all(|w| w[0] <= w[1]), "sort output is not ascending");
    show("2D Mergesort", n as u64, m.report(), theory::sorting_bound);

    // --- Rank selection (§VI) ----------------------------------------------
    let mut m = Machine::new();
    let k = n as u64 / 2;
    let (median, stats) = select_rank_values(&mut m, 0, vals.clone(), k, 42);
    ensure(median == sorted[(k - 1) as usize], "selected median differs from host reference");
    show("Rank selection (median)", n as u64, m.report(), theory::selection_bound);
    println!(
        "  selection details: {} sampling iterations, active counts {:?}",
        stats.iterations, stats.active_trajectory
    );
    println!();

    // --- SpMV (§VIII) --------------------------------------------------------
    let side = 32usize; // 1024-unknown Poisson system, ~5 nnz/row
    let a = {
        // 5-point stencil with integer weights for exact comparison.
        let idx = |r: usize, c: usize| (r * side + c) as u32;
        let mut entries = Vec::new();
        for r in 0..side {
            for c in 0..side {
                entries.push((idx(r, c), idx(r, c), 4i64));
                if r > 0 {
                    entries.push((idx(r, c), idx(r - 1, c), -1));
                }
                if r + 1 < side {
                    entries.push((idx(r, c), idx(r + 1, c), -1));
                }
                if c > 0 {
                    entries.push((idx(r, c), idx(r, c - 1), -1));
                }
                if c + 1 < side {
                    entries.push((idx(r, c), idx(r, c + 1), -1));
                }
            }
        }
        Coo::new(side * side, side * side, entries)
    };
    let x: Vec<i64> = (0..a.n_cols as i64).map(|i| i % 13).collect();
    let mut m = Machine::new();
    let out = spmv(&mut m, &a, &x);
    ensure(out.y == a.multiply_dense(&x), "SpMV product differs from the dense reference");
    show("SpMV (Poisson stencil)", a.nnz() as u64, out.cost, theory::spmv_bound);

    println!("All outputs verified against host references.");
}
