//! ASCII visualisations of the paper's figures.
//!
//! * the Z-order traversal of a grid (§III);
//! * Fig. 1 — the scan's up-sweep/down-sweep message pattern, rendered from
//!   an actual machine trace;
//! * Fig. 2 — a Bitonic Merge's wires mapped row-major onto the grid, with
//!   per-stage comparator geometry.
//!
//! ```bash
//! cargo run --release --example visualize
//! ```

use spatial_dataflow::model::{zorder, Coord, Machine, SubGrid};
use spatial_dataflow::prelude::*;
use spatial_dataflow::verify::ensure;

fn main() {
    z_order_curve();
    scan_trace();
    bitonic_layout();
}

/// §III: the Z-order curve on an 8×8 grid.
fn z_order_curve() {
    println!("Z-order curve on an 8x8 grid (cell = visit index):\n");
    let side = 8u64;
    for r in 0..side {
        let row: Vec<String> = (0..side).map(|c| format!("{:3}", zorder::encode(r, c))).collect();
        println!("  {}", row.join(" "));
    }
    println!();
}

/// Fig. 1: the scan's two sweeps, shown as message counts per cell.
fn scan_trace() {
    println!("Fig. 1 — energy-optimal scan on an 8x8 grid.");
    println!("Message endpoints per PE during the whole scan (up + down sweep):\n");
    let n = 64usize;
    let mut m = Machine::new();
    m.enable_trace(1 << 20);
    let items = place_z(&mut m, 0, (1..=n as i64).collect());
    let out = scan(&mut m, 0, items, &|a, b| a + b);
    ensure(
        *read_values(out).last().unwrap() == (n * (n + 1) / 2) as i64,
        "scan total differs from the closed form",
    );

    let trace = match m.require_trace() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(e.exit_code());
        }
    };
    let mut counts = vec![0u32; n];
    for rec in trace.records() {
        for c in [rec.src, rec.dst] {
            let idx = (c.row * 8 + c.col) as usize;
            counts[idx] += 1;
        }
    }
    for r in 0..8 {
        let row: Vec<String> = (0..8).map(|c| format!("{:3}", counts[r * 8 + c])).collect();
        println!("  {}", row.join(" "));
    }
    println!(
        "\n  total: {} (energy {} = Θ(n), depth {} = O(log n), distance {} = Θ(√n))\n",
        m.messages(),
        m.energy(),
        m.report().depth,
        m.report().distance
    );
}

/// Fig. 2: the Bitonic Merge recursion on a 4×4 row-major wire layout.
fn bitonic_layout() {
    println!("Fig. 2 — Bitonic Merge (16 wires) mapped row-major on a 4x4 grid.");
    println!("Each stage shows which partner every cell exchanges with:\n");
    let net = spatial_dataflow::sortnet::bitonic_merge(16);
    let grid = SubGrid::square(Coord::ORIGIN, 4);
    for (s, stage) in net.stages().iter().enumerate() {
        let mut partner = [0usize; 16];
        for c in stage {
            partner[c.low] = c.high;
            partner[c.high] = c.low;
        }
        println!("  stage {s} (wire i <-> i^{}):", 16 >> (s + 1));
        for r in 0..4 {
            let row: Vec<String> = (0..4)
                .map(|c| {
                    let w = r * 4 + c;
                    let p = partner[w];
                    let d = grid.rm_coord(w as u64).manhattan(grid.rm_coord(p as u64));
                    format!("{w:2}<->{p:2}(d{d})")
                })
                .collect();
            println!("    {}", row.join("  "));
        }
    }
    println!("\n  Note the recursion first shrinks rows (4x4 -> 2x4 -> 1x4), then");
    println!("  columns — the 1D tail is why Bitonic Sort pays an extra Θ(log n)");
    println!("  energy factor over the 2D mergesort (Lemma V.4 vs Theorem V.8).");
}
