//! GNN sort-pooling layer (paper intro, citation [16]).
//!
//! Sort pooling keeps the `k` nodes with the largest scores and feeds their
//! features to the next layer in sorted order. On the Spatial Computer
//! Model this composes two primitives from the paper:
//!
//! 1. **rank selection** (§VI) finds the k-th largest score with `O(n)`
//!    energy — far cheaper than sorting everything;
//! 2. **2D mergesort** (§V) then orders only the selected nodes.
//!
//! The example also runs the naive alternative (sort all `n` nodes) and
//! prints both energy bills, demonstrating the polynomial separation the
//! paper proves between selection and sorting.
//!
//! ```bash
//! cargo run --release --example sort_pooling
//! ```

use spatial_dataflow::prelude::*;
use spatial_dataflow::verify::ensure;

fn main() {
    let n = 4096usize;
    let k = 64usize;

    // Node scores (e.g. the last GNN layer's readout channel).
    let scores: Vec<i64> = (0..n as i64).map(|i| (i * 48271) % 65521).collect();

    // --- Fast path: selection + small sort ----------------------------------
    let mut machine = Machine::new();
    // k-th largest = rank n-k+1 smallest.
    let (threshold, stats) =
        select_rank_values(&mut machine, 0, scores.clone(), (n - k + 1) as u64, 7);
    // Keep nodes at or above the threshold (exactly k of them for distinct
    // scores), then sort just those k.
    let selected: Vec<i64> = scores.iter().copied().filter(|&s| s >= threshold).collect();
    ensure(selected.len() == k, "distinct scores select exactly k nodes");
    let items = place_z(&mut machine, 0, selected);
    let pooled = sort_z_values(&mut machine, 0, items);
    let fast_cost = machine.report();

    // --- Naive path: sort all n nodes ---------------------------------------
    let mut machine_naive = Machine::new();
    let items = place_z(&mut machine_naive, 0, scores.clone());
    let all_sorted = sort_z_values(&mut machine_naive, 0, items);
    let naive_pooled: Vec<i64> = all_sorted[n - k..].to_vec();
    let naive_cost = machine_naive.report();

    ensure(pooled == naive_pooled, "both paths must pool the same nodes");

    println!("sort pooling over {n} nodes, keep top k = {k}");
    println!("  threshold score (rank selection, {} iterations): {threshold}", stats.iterations);
    println!("  pooled range: [{} .. {}]", pooled.first().unwrap(), pooled.last().unwrap());
    println!();
    println!("  selection + k-sort: {fast_cost}");
    println!("  full n-sort:        {naive_cost}");
    let saving = naive_cost.energy as f64 / fast_cost.energy as f64;
    println!("  energy saving: {saving:.1}x (paper: Θ(n^{{3/2}}) vs Θ(n) + Θ(k^{{3/2}}))");
    ensure(saving > 2.0, "selection-based pooling should be substantially cheaper");
}
