//! # spatial-rng — deterministic, dependency-free pseudo-randomness
//!
//! Every randomized component of this workspace (workload generators, the
//! §VI randomized rank selection, the property-test harness) draws its
//! randomness from here, so the whole repository builds and tests hermetically
//! with zero external crates and every run is bit-reproducible from a `u64`
//! seed.
//!
//! The generator is **xoshiro256++** (Blackman & Vigna), seeded by expanding
//! a single `u64` through **SplitMix64** — the standard pairing recommended
//! by the xoshiro authors. Both algorithms are public-domain and a dozen
//! lines each; statistical quality is far beyond what seeded simulations and
//! property tests require.
//!
//! ```
//! use spatial_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(7);
//! let die = rng.gen_range(1..=6i64);
//! assert!((1..=6).contains(&die));
//! // Same seed, same sequence — always.
//! assert_eq!(Rng::seed_from_u64(7).next_u64(), Rng::seed_from_u64(7).next_u64());
//! ```

use std::ops::{Range, RangeInclusive};

/// SplitMix64: a tiny, fast generator with a simple 64-bit state.
///
/// Used to expand one `u64` seed into the 256-bit xoshiro state and to derive
/// independent stream seeds; also usable standalone for throwaway jitter.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace PRNG: xoshiro256++ with SplitMix64 seeding.
///
/// All methods are deterministic functions of the seed, independent of
/// platform, word size and build profile — golden-seed tests rely on this.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seeds the full 256-bit state by running SplitMix64 from `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // SplitMix64 is a bijection of a counter, so the state cannot be
        // all-zero (the one state xoshiro must avoid) — but keep the guard
        // explicit rather than rely on that argument.
        debug_assert!(s.iter().any(|&w| w != 0));
        Rng { s }
    }

    /// Derives the `i`-th independent sub-stream of this generator's seed.
    ///
    /// Streams with different indices are seeded through distinct SplitMix64
    /// avalanches, so their outputs are uncorrelated for all practical
    /// purposes; used for per-case property-test seeds and per-quantile
    /// selection seeds.
    pub fn stream(seed: u64, i: u64) -> Self {
        // Mix the index through one SplitMix64 step before combining so
        // (seed, i) and (seed+1, i-1) do not collide.
        let salt = SplitMix64::new(i).next_u64();
        Rng::seed_from_u64(seed ^ salt.rotate_left(17))
    }

    /// The next 64-bit output (xoshiro256++ scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32-bit output (upper bits, which are strongest).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            // Consume one draw regardless, so call sequences keep alignment.
            let _ = self.next_u64();
            return true;
        }
        self.gen_f64() < p.max(0.0)
    }

    /// A uniform integer below `span` (> 0), bias-free.
    ///
    /// Lemire's widening-multiply rejection method: a single 64×64→128
    /// multiply per accepted draw, rejecting only the `2^64 mod span`
    /// lowest fraction of raw outputs.
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform draw from an (half-open or inclusive) integer range.
    ///
    /// ```
    /// # use spatial_rng::Rng;
    /// let mut rng = Rng::seed_from_u64(1);
    /// let x = rng.gen_range(-5i64..=5);
    /// assert!((-5..=5).contains(&x));
    /// let i = rng.gen_range(0usize..10);
    /// assert!(i < 10);
    /// ```
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// `k` distinct indices drawn uniformly from `0..n` (in random order).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from 0..{n}");
        // Partial Fisher–Yates over a lazily-materialized identity map.
        let mut swapped = std::collections::HashMap::new();
        let mut out = Vec::with_capacity(k);
        for i in 0..k {
            let j = i + self.below((n - i) as u64) as usize;
            let vi = *swapped.get(&i).unwrap_or(&i);
            let vj = *swapped.get(&j).unwrap_or(&j);
            out.push(vj);
            swapped.insert(j, vi);
        }
        out
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from `self`.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vector() {
        // First outputs of the public-domain reference for state = 0.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn streams_are_independent_and_deterministic() {
        let a: Vec<u64> = {
            let mut r = Rng::stream(9, 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = Rng::stream(9, 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::stream(9, 1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn gen_range_respects_bounds_and_hits_extremes() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let v = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 5, "all values of a tiny range appear");
        for _ in 0..200 {
            let v = rng.gen_range(10u64..11);
            assert_eq!(v, 10, "singleton half-open range");
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(5);
        let mut counts = [0u32; 8];
        let draws = 80_000;
        for _ in 0..draws {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        let expect = draws as f64 / 8.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {i} deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(8);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02, "mean far from 1/2");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = Rng::seed_from_u64(11);
        let hits = (0..40_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 40_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_deterministic() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = Rng::seed_from_u64(13);
        rng.shuffle(&mut v);
        let mut w: Vec<u32> = (0..100).collect();
        let mut rng2 = Rng::seed_from_u64(13);
        rng2.shuffle(&mut w);
        assert_eq!(v, w);
        assert_ne!(v, (0..100).collect::<Vec<u32>>(), "100 elements virtually never fixed");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut rng = Rng::seed_from_u64(17);
        let idx = rng.sample_indices(50, 20);
        assert_eq!(idx.len(), 20);
        let set: std::collections::HashSet<_> = idx.iter().collect();
        assert_eq!(set.len(), 20);
        assert!(idx.iter().all(|&i| i < 50));
        // Exhaustive draw is a permutation.
        let all = rng.sample_indices(10, 10);
        let mut s = all.clone();
        s.sort_unstable();
        assert_eq!(s, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn signed_full_width_ranges_do_not_overflow() {
        let mut rng = Rng::seed_from_u64(19);
        for _ in 0..100 {
            let v = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = v; // any value is valid; the point is no panic/overflow
            let w = rng.gen_range(-1_000_000_000i64..=1_000_000_000);
            assert!((-1_000_000_000..=1_000_000_000).contains(&w));
        }
    }
}
