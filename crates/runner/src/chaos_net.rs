//! Seed-deterministic transport fault injection, in the spirit of the
//! simulator's `FaultPlan`: wrap any `Read + Write` transport in a
//! [`ChaosTransport`] and a [`NetChaosPlan`] decides — reproducibly — where
//! the connection tears.
//!
//! Faults injected:
//!
//! * **Mid-line disconnects** — after [`NetChaosPlan::cut_after`] total
//!   bytes (both directions combined), I/O fails with `ConnectionReset`.
//!   A write that crosses the boundary is truncated *at* it, so the peer
//!   sees a torn line: exactly the worst case the resume protocol must
//!   absorb.
//! * **Partial writes** — [`NetChaosPlan::partial_writes`] caps each write
//!   at a seeded chunk of 1..=`max_chunk` bytes, exercising every caller's
//!   short-write handling regardless of how the OS happens to coalesce.
//! * **Injected delays** — [`NetChaosPlan::delay_every`] sleeps a fixed
//!   amount every n-th I/O call, widening race windows (heartbeats, queue
//!   stalls) without nondeterminism.
//!
//! The wrapper counts everything it does in [`ChaosStats`], so tests can
//! assert the plan actually fired instead of silently passing on a plan
//! that never reached its trigger.

use std::io::{self, Read, Write};
use std::time::Duration;

use spatial_rng::Rng;

/// Where and how a transport misbehaves. Built once per connection; all
/// randomness comes from the seed, so a failing case replays exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetChaosPlan {
    seed: u64,
    cut_after_bytes: Option<u64>,
    max_write_chunk: Option<usize>,
    delay_every_ops: Option<(u64, u64)>,
}

impl NetChaosPlan {
    /// A plan that does nothing until faults are added.
    pub fn new(seed: u64) -> NetChaosPlan {
        NetChaosPlan { seed, cut_after_bytes: None, max_write_chunk: None, delay_every_ops: None }
    }

    /// Cut the connection (ConnectionReset) once `bytes` total bytes have
    /// crossed it, in either direction. A write spanning the boundary is
    /// truncated at it — a torn line.
    pub fn cut_after(mut self, bytes: u64) -> NetChaosPlan {
        self.cut_after_bytes = Some(bytes);
        self
    }

    /// Split writes into seeded chunks of at most `max_chunk` bytes.
    pub fn partial_writes(mut self, max_chunk: usize) -> NetChaosPlan {
        self.max_write_chunk = Some(max_chunk.max(1));
        self
    }

    /// Sleep `ms` milliseconds on every `ops`-th I/O call.
    pub fn delay_every(mut self, ops: u64, ms: u64) -> NetChaosPlan {
        self.delay_every_ops = Some((ops.max(1), ms));
        self
    }
}

/// What a [`ChaosTransport`] actually did — assert on these so a chaos
/// test that never reached its trigger fails loudly instead of proving
/// nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Bytes that crossed the transport (both directions).
    pub bytes: u64,
    /// I/O calls observed.
    pub ops: u64,
    /// Times the cut fired (first trigger and every call after it).
    pub cuts: u64,
    /// Writes truncated below the caller's buffer by chunking or the cut
    /// boundary.
    pub partials: u64,
    /// Delays injected.
    pub delays: u64,
}

/// A `Read + Write` wrapper that executes a [`NetChaosPlan`]. Wraps the
/// *client* side of a connection in tests: the daemon under test sees real
/// torn lines, real resets, real stalls.
pub struct ChaosTransport<T> {
    inner: T,
    plan: NetChaosPlan,
    rng: Rng,
    stats: ChaosStats,
}

impl<T> ChaosTransport<T> {
    pub fn new(inner: T, plan: NetChaosPlan) -> ChaosTransport<T> {
        ChaosTransport {
            inner,
            plan,
            rng: Rng::stream(plan.seed ^ 0xC4A0_5BA5_DE7E_C7ED, 0),
            stats: ChaosStats::default(),
        }
    }

    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// Whether the cut point has been reached (all further I/O fails).
    pub fn is_cut(&self) -> bool {
        self.plan.cut_after_bytes.is_some_and(|cut| self.stats.bytes >= cut)
    }

    pub fn get_ref(&self) -> &T {
        &self.inner
    }

    pub fn get_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Bookkeeping shared by both directions: op count, injected delay,
    /// and the cut check. `Err` means the connection is (now) dead.
    fn tick(&mut self) -> io::Result<()> {
        self.stats.ops += 1;
        if let Some((every, ms)) = self.plan.delay_every_ops {
            if self.stats.ops.is_multiple_of(every) {
                self.stats.delays += 1;
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
        if self.is_cut() {
            self.stats.cuts += 1;
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                format!("chaos: connection cut after {} bytes", self.stats.bytes),
            ));
        }
        Ok(())
    }

    /// How many bytes of an `n`-byte request may proceed: capped by the
    /// seeded chunk size and truncated at the cut boundary.
    fn allowance(&mut self, n: usize) -> usize {
        let mut allowed = n;
        if let Some(max) = self.plan.max_write_chunk {
            allowed = allowed.min(self.rng.gen_range(1..=max));
        }
        if let Some(cut) = self.plan.cut_after_bytes {
            allowed = allowed.min((cut - self.stats.bytes.min(cut)) as usize);
        }
        allowed
    }
}

impl<T: Read> Read for ChaosTransport<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.tick()?;
        let n = self.inner.read(buf)?;
        self.stats.bytes += n as u64;
        Ok(n)
    }
}

impl<T: Write> Write for ChaosTransport<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tick()?;
        let allowed = self.allowance(buf.len());
        if allowed == 0 && !buf.is_empty() {
            // The cut lands exactly here; the truncation already happened
            // on the previous call, so fail now.
            self.stats.cuts += 1;
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                format!("chaos: connection cut after {} bytes", self.stats.bytes),
            ));
        }
        let n = self.inner.write(&buf[..allowed])?;
        self.stats.bytes += n as u64;
        if n < buf.len() {
            self.stats.partials += 1;
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_truncates_the_crossing_write_then_resets() {
        let mut t = ChaosTransport::new(Vec::new(), NetChaosPlan::new(1).cut_after(10));
        assert_eq!(t.write(b"12345678").unwrap(), 8);
        // This write crosses the boundary: only 2 of 8 bytes land.
        assert_eq!(t.write(b"abcdefgh").unwrap(), 2, "torn at the cut point");
        let err = t.write(b"more").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(t.get_ref().as_slice(), b"12345678ab");
        let s = t.stats();
        assert_eq!((s.bytes, s.partials), (10, 1));
        assert!(s.cuts >= 1);
        assert!(t.is_cut());
    }

    #[test]
    fn reads_count_toward_the_same_cut_budget() {
        let data = b"0123456789abcdef".to_vec();
        let mut t = ChaosTransport::new(io::Cursor::new(data), NetChaosPlan::new(2).cut_after(8));
        let mut buf = [0u8; 8];
        t.read_exact(&mut buf).unwrap();
        let err = t.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn partial_writes_are_seeded_and_deterministic() {
        let run = |seed| {
            let mut t = ChaosTransport::new(Vec::new(), NetChaosPlan::new(seed).partial_writes(3));
            let mut written = Vec::new();
            let payload = b"the quick brown fox jumps over the lazy dog";
            let mut off = 0;
            while off < payload.len() {
                let n = t.write(&payload[off..]).unwrap();
                written.push(n);
                off += n;
            }
            assert_eq!(t.get_ref().as_slice(), payload, "short writes lose nothing");
            assert!(written.iter().all(|&n| (1..=3).contains(&n)));
            assert!(t.stats().partials > 0, "chunking must actually engage");
            written
        };
        assert_eq!(run(7), run(7), "same seed, same chunk schedule");
        assert_ne!(run(7), run(8), "different seed, different schedule");
    }

    #[test]
    fn delays_fire_on_schedule() {
        let mut t = ChaosTransport::new(
            Vec::new(),
            NetChaosPlan::new(3).delay_every(2, 0), // 0 ms: count, don't sleep
        );
        for _ in 0..6 {
            assert_eq!(t.write(b"x").unwrap(), 1);
        }
        assert_eq!(t.stats().delays, 3);
    }
}
