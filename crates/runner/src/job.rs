//! Job specifications and the degradation ladder.
//!
//! A [`JobSpec`] names one simulation to run — which primitive, on how many
//! elements, under which injected fault plan, with which budget, retry cap
//! and deadline. [`execute`] drives it through the full supervision ladder:
//!
//! 1. **Recovery with backoff** — the job runs under
//!    [`spatial_core::recovery::run_with_recovery_policy`]: checksum-verified
//!    re-execution with per-attempt re-salted transients and exponential
//!    backoff with seeded jitter between attempts.
//! 2. **Host-oracle fallback** — if recovery exhausts (and the job was
//!    *not* cancelled), the job degrades gracefully: the result is computed
//!    by the sequential host oracle instead of the spatial machine, the
//!    sunk simulation cost is reported, and the outcome is marked
//!    [`Outcome::Degraded`]. A degraded batch still yields every answer.
//!
//! Cancellation short-circuits the ladder: once a deadline has fired there
//! is no time left to retry or degrade into, so the job reports
//! [`Outcome::DeadlineExceeded`]. Its cost is omitted from the report — how
//! far a cancelled run got depends on wall-clock scheduling, and reporting
//! a timing-dependent number would silently break batch-report determinism.
//!
//! Besides the five paper primitives, three **chaos kinds** exist purely to
//! exercise the supervision machinery in tests and smoke runs: a job that
//! panics, a job that spins until cancelled, and a job whose checksum can
//! never pass.

use spatial_core::model::{
    profile_by_name, zorder, CancelToken, Coord, Cost, FaultPlan, Machine, ModelGuard,
    ProfiledCost, SpatialError, SubGrid,
};
use spatial_core::recovery::{
    checksum_i64, run_with_recovery_policy, BackoffPolicy, RecoveryExhausted,
};
use spatial_core::{collectives, selection, sorting, spmv, topk};
use workloads::arrays::ArrayKind;

use crate::json::Json;

/// Which primitive a job runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// Energy-optimal inclusive scan (§IV) over `+`.
    Scan,
    /// 2D mergesort in Z-order (§V).
    Sort,
    /// Randomized rank selection, `k` 1-based (§VI).
    Select,
    /// Top-k via repeated selection.
    TopK,
    /// Sparse matrix–vector product (§VIII) on a random uniform matrix.
    Spmv,
    /// Chaos: panics immediately (exercises panic isolation).
    ChaosPanic,
    /// Chaos: sends messages forever until cancelled (exercises deadlines;
    /// a spec with this kind and no deadline is rejected at parse time).
    ChaosSpin,
    /// Chaos: runs a scan whose checksum can never pass (exercises the
    /// full ladder down to the host oracle).
    ChaosBadVerify,
}

impl JobKind {
    /// All kinds, for enumeration in docs and tests.
    pub const ALL: [JobKind; 8] = [
        JobKind::Scan,
        JobKind::Sort,
        JobKind::Select,
        JobKind::TopK,
        JobKind::Spmv,
        JobKind::ChaosPanic,
        JobKind::ChaosSpin,
        JobKind::ChaosBadVerify,
    ];

    /// The jobspec spelling of this kind.
    pub fn label(self) -> &'static str {
        match self {
            JobKind::Scan => "scan",
            JobKind::Sort => "sort",
            JobKind::Select => "select",
            JobKind::TopK => "topk",
            JobKind::Spmv => "spmv",
            JobKind::ChaosPanic => "chaos-panic",
            JobKind::ChaosSpin => "chaos-spin",
            JobKind::ChaosBadVerify => "chaos-badverify",
        }
    }

    /// Parses the jobspec spelling back into a kind (the inverse of
    /// [`JobKind::label`]; also used by snapshot recovery).
    pub fn parse(s: &str) -> Option<JobKind> {
        JobKind::ALL.into_iter().find(|k| k.label() == s)
    }
}

/// Declarative fault injection for one job (compiled to a
/// [`FaultPlan`] over the job's input extent).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultCfg {
    /// Fraction of rows permanently dead (remapped with detour energy).
    pub dead_rows: f64,
    /// Fraction of rows with degraded (double-cost) links.
    pub degraded_rows: f64,
    /// Per-message transient corruption probability.
    pub flaky: f64,
}

impl FaultCfg {
    /// Whether any fault dimension is active.
    pub fn any(&self) -> bool {
        self.dead_rows > 0.0 || self.degraded_rows > 0.0 || self.flaky > 0.0
    }

    /// Parses a `{"dead_rows": …, "degraded_rows": …, "flaky": …}` object.
    /// `ctx` prefixes error messages (e.g. `"job 3"` or a tenant name).
    pub fn from_json(f: &Json, ctx: &str) -> Result<FaultCfg, String> {
        let frac = |name: &str| -> Result<f64, String> {
            match f.get(name) {
                None => Ok(0.0),
                Some(j) => j
                    .as_f64()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or_else(|| format!("{ctx}: faults.{name} must be in [0, 1]")),
            }
        };
        Ok(FaultCfg {
            dead_rows: frac("dead_rows")?,
            degraded_rows: frac("degraded_rows")?,
            flaky: frac("flaky")?,
        })
    }

    /// Compiles to a [`FaultPlan`] over `extent` with the given seed.
    pub fn compile(&self, seed: u64, extent: SubGrid) -> FaultPlan {
        FaultPlan::builder(seed)
            .random_dead_rows(extent, self.dead_rows)
            .random_degraded_rows(extent, self.degraded_rows)
            .flaky(self.flaky)
            .build()
    }
}

/// One job in a batch.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Stable identifier, echoed in the report (defaults to `job-<index>`).
    pub id: String,
    /// Which primitive to run.
    pub kind: JobKind,
    /// Input size (elements for arrays, rows for spmv).
    pub n: u64,
    /// Base seed: input generation, selection pivots, backoff jitter and
    /// fault plans all derive from it.
    pub seed: u64,
    /// Input array family (ignored by spmv and chaos kinds).
    pub array: ArrayKind,
    /// Rank for select / size for topk (1-based; defaults to `n/2` max 1).
    pub k: u64,
    /// Injected faults, if any.
    pub faults: FaultCfg,
    /// Optional energy budget enforced by a [`ModelGuard`].
    pub budget: Option<u64>,
    /// Retry cap for recovery (attempts = retries + 1).
    pub retries: u32,
    /// Per-job wall-clock deadline; `None` inherits the batch default.
    pub deadline_ms: Option<u64>,
    /// Cost profile the job's machine reports under (a built-in name,
    /// validated at parse time; see [`spatial_core::model::profile_by_name`]).
    /// `None` inherits the batch/serve default, which defaults to raw
    /// counters only. Pure accounting: never affects execution or the raw
    /// `cost` tuple.
    pub profile: Option<&'static str>,
}

impl JobSpec {
    /// A baseline spec for `kind` (n = 256, seed 1, uniform input, no
    /// faults, 3 retries, no deadline).
    pub fn new(id: impl Into<String>, kind: JobKind) -> JobSpec {
        JobSpec {
            id: id.into(),
            kind,
            n: 256,
            seed: 1,
            array: ArrayKind::Uniform,
            k: 128,
            faults: FaultCfg::default(),
            budget: None,
            retries: 3,
            deadline_ms: None,
            profile: None,
        }
    }

    /// Parses one job object from a jobspec document. `index` supplies the
    /// default id.
    pub fn from_json(v: &Json, index: usize) -> Result<JobSpec, String> {
        let kind_str = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("job {index}: missing string field \"kind\""))?;
        let kind = JobKind::parse(kind_str).ok_or_else(|| {
            let known: Vec<&str> = JobKind::ALL.iter().map(|k| k.label()).collect();
            format!("job {index}: unknown kind {kind_str:?} (known: {})", known.join(", "))
        })?;
        let field_u64 = |name: &str, default: u64| -> Result<u64, String> {
            match v.get(name) {
                None => Ok(default),
                Some(j) => j.as_u64().ok_or_else(|| {
                    format!("job {index}: field {name:?} must be a non-negative integer")
                }),
            }
        };
        let n = field_u64("n", 256)?.max(1);
        let seed = field_u64("seed", 1)?;
        let k = field_u64("k", (n / 2).max(1))?;
        let retries = field_u64("retries", 3)?.min(u64::from(u32::MAX)) as u32;
        let deadline_ms = match v.get("deadline_ms") {
            None => None,
            Some(j) if j.is_null() => None,
            Some(j) => Some(j.as_u64().ok_or_else(|| {
                format!("job {index}: field \"deadline_ms\" must be an integer or null")
            })?),
        };
        let budget = match v.get("budget") {
            None => None,
            Some(j) if j.is_null() => None,
            Some(j) => Some(j.as_u64().ok_or_else(|| {
                format!("job {index}: field \"budget\" must be an integer or null")
            })?),
        };
        let array = match v.get("array").and_then(Json::as_str) {
            None => ArrayKind::Uniform,
            Some(s) => ArrayKind::ALL
                .into_iter()
                .find(|a| a.label() == s)
                .ok_or_else(|| format!("job {index}: unknown array kind {s:?}"))?,
        };
        let faults = match v.get("faults") {
            None => FaultCfg::default(),
            Some(f) => FaultCfg::from_json(f, &format!("job {index}"))?,
        };
        let id = match v.get("id") {
            None => format!("job-{index}"),
            Some(j) => j
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("job {index}: field \"id\" must be a string"))?,
        };
        let profile = match v.get("profile") {
            None => None,
            Some(j) if j.is_null() => None,
            Some(j) => {
                let name = j.as_str().ok_or_else(|| {
                    format!("job {index}: field \"profile\" must be a string or null")
                })?;
                // Resolve to the registry's `&'static` name; an unknown name
                // surfaces the typed usage error verbatim.
                Some(profile_by_name(name).map_err(|e| format!("job {index}: {e}"))?.name())
            }
        };
        // chaos-spin needing a deadline is checked by `Batch::parse`, which
        // also knows the batch-wide default deadline.
        if matches!(kind, JobKind::Select | JobKind::TopK) && (k < 1 || k > n) {
            return Err(format!("job {index} ({id}): k = {k} out of range 1..={n}"));
        }
        Ok(JobSpec { id, kind, n, seed, array, k, faults, budget, retries, deadline_ms, profile })
    }

    /// The grid extent the job's input occupies (used to scope random fault
    /// plans so injected dead rows actually intersect the computation).
    pub fn extent(&self) -> SubGrid {
        SubGrid::input_square(zorder::next_power_of_four(self.n))
    }

    /// Side of the square grid the job's input occupies — what a tenant's
    /// [`crate::tenant::ExtentCap`] is checked against at dispatch.
    pub fn extent_side(&self) -> u64 {
        self.extent().h
    }

    /// The closed-form **energy floor** of this job: the paper's Table I Θ
    /// bound for the primitive, evaluated with unit constants in exact
    /// integer arithmetic ([`spatial_core::theory::Shape::eval_u64`]). The
    /// model's real constants
    /// are all ≥ 1, so the measured energy of any execution is at least
    /// this value — which is what makes refusing a job whose floor already
    /// exceeds a tenant's remaining budget safe: it could never have fit.
    ///
    /// Chaos kinds predict 0 (they exercise supervision, not the model).
    pub fn predicted_energy(&self) -> u64 {
        use spatial_core::theory::{
            scan_bound, selection_bound, sorting_bound, spmv_bound, Metric,
        };
        match self.kind {
            JobKind::Scan => scan_bound(Metric::Energy).eval_u64(self.n),
            JobKind::Sort => sorting_bound(Metric::Energy).eval_u64(self.n),
            // Top-k runs a selection phase first; its Θ(n) floor holds.
            JobKind::Select | JobKind::TopK => selection_bound(Metric::Energy).eval_u64(self.n),
            // The spmv workload has m ≥ n non-zeros; bound with m = n.
            JobKind::Spmv => spmv_bound(Metric::Energy).eval_u64(self.n),
            JobKind::ChaosPanic | JobKind::ChaosSpin | JobKind::ChaosBadVerify => 0,
        }
    }
}

/// Final classification of one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Verified result from the spatial machine (possibly after retries).
    Ok,
    /// Recovery exhausted; the answer came from the sequential host oracle.
    Degraded,
    /// The job panicked (contained by the pool).
    Panicked,
    /// The job's deadline fired and the run was cancelled.
    DeadlineExceeded,
    /// The job was rejected at admission (pool saturated).
    Shed,
    /// The job was rejected at admission because its tenant's cumulative
    /// energy budget is exhausted. It never executed (serve daemon only).
    OverBudget,
    /// The job was rejected *before execution* because its closed-form
    /// predicted energy ([`JobSpec::predicted_energy`]) already exceeds the
    /// tenant's remaining budget (serve daemon, predictive admission).
    PredictedOverBudget,
    /// The job was rejected at dispatch because its input grid exceeds the
    /// tenant's registered extent cap (serve daemon only).
    ExtentRefused,
}

impl Outcome {
    /// Every outcome, in report/aggregate order.
    pub const ALL: [Outcome; 8] = [
        Outcome::Ok,
        Outcome::Degraded,
        Outcome::Panicked,
        Outcome::DeadlineExceeded,
        Outcome::Shed,
        Outcome::OverBudget,
        Outcome::PredictedOverBudget,
        Outcome::ExtentRefused,
    ];

    /// Report spelling.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Degraded => "degraded",
            Outcome::Panicked => "panicked",
            Outcome::DeadlineExceeded => "deadline-exceeded",
            Outcome::Shed => "shed",
            Outcome::OverBudget => "over-budget",
            Outcome::PredictedOverBudget => "predicted-over-budget",
            Outcome::ExtentRefused => "extent-refused",
        }
    }

    /// Parses the report spelling back into an outcome (snapshot recovery).
    pub fn parse(s: &str) -> Option<Outcome> {
        Outcome::ALL.into_iter().find(|o| o.label() == s)
    }

    /// Index of this outcome in [`Outcome::ALL`] (stats buckets). Total by
    /// construction — a match, not a searched `position().expect()` — so
    /// adding a variant without extending `ALL` is a compile error here,
    /// not a panic in the daemon's emission path.
    pub fn index(self) -> usize {
        match self {
            Outcome::Ok => 0,
            Outcome::Degraded => 1,
            Outcome::Panicked => 2,
            Outcome::DeadlineExceeded => 3,
            Outcome::Shed => 4,
            Outcome::OverBudget => 5,
            Outcome::PredictedOverBudget => 6,
            Outcome::ExtentRefused => 7,
        }
    }

    /// The exit-code-style classification of this outcome, extending the
    /// [`SpatialError`] taxonomy (codes 2–11): 0 ok, 1 panicked, 8 degraded
    /// (recovery exhausted), 9 deadline exceeded, 10 shed, 12 over budget,
    /// 13 predicted over budget (refused pre-execution), 14 extent refused.
    pub fn exit_code(self) -> i32 {
        match self {
            Outcome::Ok => 0,
            Outcome::Panicked => 1,
            Outcome::Degraded => spatial_core::recovery::EXIT_RECOVERY_EXHAUSTED,
            Outcome::DeadlineExceeded => 9,
            Outcome::Shed => 10,
            Outcome::OverBudget => 12,
            Outcome::PredictedOverBudget => 13,
            Outcome::ExtentRefused => 14,
        }
    }
}

/// The result of executing (or failing to execute) one job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobResult {
    /// Echoed job id.
    pub id: String,
    /// Echoed kind.
    pub kind: JobKind,
    /// Final classification.
    pub outcome: Outcome,
    /// Attempts executed on the spatial machine (0 for panicked/shed).
    pub attempts: u32,
    /// Ladder level: 0 = clean first attempt, 1 = recovered via retries,
    /// 2 = host-oracle fallback.
    pub escalation: u8,
    /// Accumulated model cost across attempts. `None` when no
    /// deterministic cost exists (panicked, shed, deadline-exceeded).
    pub cost: Option<Cost>,
    /// `cost` charged under the job's [`JobSpec::profile`]. `None` when no
    /// profile was requested, when there is no cost, or if the profile's
    /// arithmetic saturated (impossible for built-ins on real runs). Derived
    /// from `cost` alone, so exactly as deterministic.
    pub profiled: Option<ProfiledCost>,
    /// Fault-detour energy of the final attempt.
    pub detour_energy: u64,
    /// Total scheduled backoff between attempts (deterministic).
    pub backoff_ms: u64,
    /// FNV checksum of the job's output (host-oracle checksum when
    /// degraded; `None` when there is no output).
    pub checksum: Option<u64>,
    /// Human-readable failure detail, if any.
    pub error: Option<String>,
    /// Wall time of the job closure, milliseconds. Excluded from
    /// deterministic report comparisons.
    pub wall_ms: u64,
}

impl JobResult {
    fn skeleton(spec: &JobSpec, outcome: Outcome) -> JobResult {
        JobResult {
            id: spec.id.clone(),
            kind: spec.kind,
            outcome,
            attempts: 0,
            escalation: 0,
            cost: None,
            profiled: None,
            detour_energy: 0,
            backoff_ms: 0,
            checksum: None,
            error: None,
            wall_ms: 0,
        }
    }

    /// Result for a job the pool refused to run.
    pub fn shed(spec: &JobSpec) -> JobResult {
        JobResult {
            error: Some("shed: submission queue past saturation threshold".into()),
            ..JobResult::skeleton(spec, Outcome::Shed)
        }
    }

    /// Result for a job that panicked (message captured by the pool).
    pub fn panicked(spec: &JobSpec, message: String) -> JobResult {
        JobResult {
            error: Some(format!("panicked: {message}")),
            ..JobResult::skeleton(spec, Outcome::Panicked)
        }
    }

    /// Result for a job rejected at admission because its tenant's energy
    /// budget is exhausted (`charged` of `budget` units already spent).
    pub fn over_budget(spec: &JobSpec, tenant: &str, charged: u64, budget: u64) -> JobResult {
        JobResult {
            error: Some(format!(
                "over budget: tenant \"{tenant}\" has charged {charged} of {budget} energy units"
            )),
            ..JobResult::skeleton(spec, Outcome::OverBudget)
        }
    }

    /// Result for a job refused *before execution* by predictive admission:
    /// its closed-form energy floor already exceeds the tenant's remaining
    /// budget, so running it could only have ended over budget.
    pub fn predicted_over_budget(
        spec: &JobSpec,
        tenant: &str,
        predicted: u64,
        remaining: u64,
    ) -> JobResult {
        JobResult {
            error: Some(format!(
                "predicted over budget: job \"{}\" predicted energy {predicted} exceeds \
                 tenant \"{tenant}\" remaining budget {remaining}",
                spec.id
            )),
            ..JobResult::skeleton(spec, Outcome::PredictedOverBudget)
        }
    }

    /// Result for a job refused at dispatch because its input grid exceeds
    /// the tenant's registered extent cap.
    pub fn extent_refused(
        spec: &JobSpec,
        tenant: &str,
        side: u64,
        rows: u64,
        cols: u64,
    ) -> JobResult {
        JobResult {
            error: Some(format!(
                "extent refused: job \"{}\" needs a {side}x{side} grid, \
                 tenant \"{tenant}\" extent cap is {rows}x{cols}",
                spec.id
            )),
            ..JobResult::skeleton(spec, Outcome::ExtentRefused)
        }
    }
}

/// The sequential host oracle: the reference answer a degraded job falls
/// back to, and the checksum source every spatial run is verified against.
///
/// Returns the output as an `i64` stream to be checksummed.
pub fn host_oracle(spec: &JobSpec) -> Vec<i64> {
    let n = spec.n as usize;
    match spec.kind {
        JobKind::Scan | JobKind::ChaosBadVerify => {
            let data = spec.array.generate(n, spec.seed);
            data.iter()
                .scan(0i64, |acc, &x| {
                    *acc = acc.wrapping_add(x);
                    Some(*acc)
                })
                .collect()
        }
        JobKind::Sort => {
            let mut data = spec.array.generate(n, spec.seed);
            data.sort_unstable();
            data
        }
        JobKind::Select => {
            let mut data = spec.array.generate(n, spec.seed);
            data.sort_unstable();
            vec![data[(spec.k - 1) as usize]]
        }
        JobKind::TopK => {
            let mut data = spec.array.generate(n, spec.seed);
            data.sort_unstable();
            data.split_off(n - spec.k as usize)
        }
        JobKind::Spmv => {
            let mat = workloads::matrices::random_uniform(n, 4, spec.seed);
            let x = spec.array.generate(n, spec.seed ^ 0x5EED);
            mat.multiply_dense(&x)
        }
        JobKind::ChaosPanic | JobKind::ChaosSpin => Vec::new(),
    }
}

/// One attempt of `spec` on a fault-enabled machine. The attempt index
/// re-salts randomized primitives so a retry explores a fresh execution.
fn attempt(
    spec: &JobSpec,
    token: &CancelToken,
    m: &mut Machine,
    attempt: u32,
) -> Result<Vec<i64>, SpatialError> {
    m.set_cancel_token(token.clone());
    if let Some(b) = spec.budget {
        m.enable_guard(ModelGuard::new().max_energy(b));
    }
    if let Some(name) = spec.profile {
        // Validated at parse time; carried on the machine through the whole
        // attempt (accounting only — the bare fast path is unaffected).
        m.set_profile(profile_by_name(name).expect("spec profiles are validated at parse"));
    }
    let n = spec.n as usize;
    let salt = spec.seed ^ (u64::from(attempt) << 32);
    match spec.kind {
        JobKind::Scan | JobKind::ChaosBadVerify => {
            let items = collectives::place_z(m, 0, spec.array.generate(n, spec.seed));
            let out =
                collectives::try_scan_any(m, 0, items, &|a: &i64, b: &i64| a.wrapping_add(*b))?;
            Ok(collectives::read_values(out))
        }
        JobKind::Sort => {
            let items = collectives::place_z(m, 0, spec.array.generate(n, spec.seed));
            let out = sorting::try_sort_z(m, 0, items)?;
            Ok(collectives::read_values(out))
        }
        JobKind::Select => {
            let items = collectives::place_z(m, 0, spec.array.generate(n, spec.seed));
            let (t, _stats) = selection::try_select_rank(m, 0, items, spec.k, salt)?;
            Ok(vec![t.into_value()])
        }
        JobKind::TopK => {
            let items = collectives::place_z(m, 0, spec.array.generate(n, spec.seed));
            let out = m.guarded(|m| topk::top_k(m, 0, items, spec.k, salt))?;
            Ok(out.into_iter().map(|t| t.into_value()).collect())
        }
        JobKind::Spmv => {
            let mat = workloads::matrices::random_uniform(n, 4, spec.seed);
            let x = spec.array.generate(n, spec.seed ^ 0x5EED);
            Ok(spmv::try_spmv(m, &mat, &x)?.y)
        }
        JobKind::ChaosPanic => panic!("chaos-panic: deliberate job panic ({})", spec.id),
        JobKind::ChaosSpin => {
            // Bounce a value between two corners until the watchdog trips
            // the cancel token (the strict send then returns Cancelled).
            let mut v = m.try_place(Coord::ORIGIN, 0i64)?;
            loop {
                v = m.try_send_owned(v, Coord::new(7, 7))?;
                v = m.try_send_owned(v, Coord::ORIGIN)?;
            }
        }
    }
}

/// Executes one job through the degradation ladder (see the module docs).
///
/// `default_deadline` and `policy` come from the batch config; `wall_ms` is
/// filled in by the caller, which owns the clock.
pub fn execute(spec: &JobSpec, token: &CancelToken, policy: &BackoffPolicy) -> JobResult {
    let expected = match spec.kind {
        // The bad-verify chaos kind checks against a corrupted checksum, so
        // the spatial run can never verify and the ladder must bottom out.
        JobKind::ChaosBadVerify => checksum_i64(&host_oracle(spec)) ^ 1,
        _ => checksum_i64(&host_oracle(spec)),
    };
    let plan = spec.faults.compile(spec.seed, spec.extent());
    let outcome = run_with_recovery_policy(
        &plan,
        spec.retries,
        policy,
        spec.seed,
        |m, a| attempt(spec, token, m, a),
        |out| checksum_i64(out) == expected,
    );
    match outcome {
        Ok(rec) => JobResult {
            attempts: rec.attempts,
            escalation: u8::from(rec.attempts > 1),
            cost: Some(rec.cost),
            profiled: charge_profiled(spec, rec.cost),
            detour_energy: rec.detour_energy,
            backoff_ms: rec.backoff_ms,
            checksum: Some(checksum_i64(&rec.value)),
            ..JobResult::skeleton(spec, Outcome::Ok)
        },
        Err(ex) if ex.cancelled() => deadline_exceeded(spec, ex),
        Err(ex) => {
            // Host-oracle fallback: the spatial runs failed, but the batch
            // still produces this job's answer — sequentially, with the
            // sunk simulation cost on the books and the outcome marked.
            let oracle = host_oracle(spec);
            JobResult {
                attempts: ex.attempts,
                escalation: 2,
                cost: Some(ex.cost),
                profiled: charge_profiled(spec, ex.cost),
                backoff_ms: ex.backoff_ms,
                checksum: Some(checksum_i64(&oracle)),
                error: Some(format!("degraded to host oracle: {ex}")),
                ..JobResult::skeleton(spec, Outcome::Degraded)
            }
        }
    }
}

/// Charges `cost` under the spec's profile, if one was requested. The
/// charge is a pure function of the deterministic `cost`, so it inherits
/// the report's bit-determinism; a saturated charge (unreachable for the
/// built-in profiles on real counters) yields `None` rather than aborting a
/// job that already produced its answer.
fn charge_profiled(spec: &JobSpec, cost: Cost) -> Option<ProfiledCost> {
    let p = profile_by_name(spec.profile?).expect("spec profiles are validated at parse");
    p.charge(cost).ok()
}

fn deadline_exceeded(spec: &JobSpec, ex: RecoveryExhausted) -> JobResult {
    JobResult {
        attempts: ex.attempts,
        // Cost deliberately withheld: how much traffic a cancelled attempt
        // managed to send depends on when the watchdog fired, and a
        // timing-dependent number has no place in a deterministic report.
        cost: None,
        backoff_ms: ex.backoff_ms,
        error: Some(format!(
            "deadline exceeded after {} ms",
            spec.deadline_ms.map(|d| d.to_string()).unwrap_or_else(|| "?".into())
        )),
        ..JobResult::skeleton(spec, Outcome::DeadlineExceeded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(spec: &JobSpec) -> JobResult {
        execute(spec, &CancelToken::new(), &BackoffPolicy::NONE)
    }

    #[test]
    fn every_clean_kind_verifies_against_its_oracle() {
        for kind in [JobKind::Scan, JobKind::Sort, JobKind::Select, JobKind::TopK, JobKind::Spmv] {
            let mut spec = JobSpec::new(format!("t-{}", kind.label()), kind);
            spec.n = 64;
            spec.k = 5;
            let r = run(&spec);
            assert_eq!(r.outcome, Outcome::Ok, "{kind:?}: {:?}", r.error);
            assert_eq!(r.attempts, 1);
            assert_eq!(r.escalation, 0);
            assert_eq!(r.checksum, Some(checksum_i64(&host_oracle(&spec))), "{kind:?}");
            assert!(r.cost.unwrap().energy > 0);
        }
    }

    #[test]
    fn flaky_faults_recover_with_escalation_one() {
        let mut spec = JobSpec::new("flaky", JobKind::Scan);
        spec.n = 64;
        spec.faults.flaky = 0.02;
        spec.retries = 100;
        let r = run(&spec);
        assert_eq!(r.outcome, Outcome::Ok, "{:?}", r.error);
        assert!(r.attempts > 1, "2% flaky over a 64-scan should corrupt at least once");
        assert_eq!(r.escalation, 1);
        // Determinism of the whole ladder.
        assert_eq!(r, run(&spec));
    }

    #[test]
    fn unrecoverable_faults_degrade_to_the_host_oracle() {
        let mut spec = JobSpec::new("dead", JobKind::Scan);
        spec.n = 64;
        spec.faults.flaky = 1.0;
        spec.retries = 2;
        let r = run(&spec);
        assert_eq!(r.outcome, Outcome::Degraded);
        assert_eq!(r.attempts, 3);
        assert_eq!(r.escalation, 2);
        assert_eq!(r.checksum, Some(checksum_i64(&host_oracle(&spec))), "oracle answer present");
        assert!(r.cost.unwrap().energy > 0, "sunk cost stays on the books");
        assert!(r.error.as_deref().unwrap().contains("degraded"));
    }

    #[test]
    fn bad_verify_chaos_always_degrades() {
        let mut spec = JobSpec::new("bv", JobKind::ChaosBadVerify);
        spec.n = 16;
        spec.retries = 1;
        let r = run(&spec);
        assert_eq!(r.outcome, Outcome::Degraded);
        assert_eq!(r.attempts, 2);
    }

    #[test]
    fn pre_cancelled_job_reports_deadline_exceeded_without_cost() {
        let mut spec = JobSpec::new("spin", JobKind::ChaosSpin);
        spec.deadline_ms = Some(50);
        let token = CancelToken::new();
        token.cancel();
        let r = execute(&spec, &token, &BackoffPolicy::NONE);
        assert_eq!(r.outcome, Outcome::DeadlineExceeded);
        assert_eq!(r.attempts, 1, "cancellation aborts the retry loop");
        assert_eq!(r.cost, None, "timing-dependent cost must not reach the report");
    }

    #[test]
    fn budget_violation_exhausts_into_degraded() {
        let mut spec = JobSpec::new("tight", JobKind::Sort);
        spec.n = 256;
        spec.budget = Some(10);
        spec.retries = 1;
        let r = run(&spec);
        assert_eq!(r.outcome, Outcome::Degraded);
        assert!(r.error.as_deref().unwrap().contains("budget"), "{:?}", r.error);
    }

    #[test]
    fn jobspec_json_round_trip_and_validation() {
        let v = Json::parse(
            r#"{"kind": "select", "n": 100, "k": 7, "seed": 9, "array": "zigzag",
                "faults": {"flaky": 0.5}, "budget": 123, "retries": 2, "deadline_ms": 400}"#,
        )
        .unwrap();
        let spec = JobSpec::from_json(&v, 3).unwrap();
        assert_eq!(spec.id, "job-3");
        assert_eq!(spec.kind, JobKind::Select);
        assert_eq!((spec.n, spec.k, spec.seed), (100, 7, 9));
        assert_eq!(spec.array, ArrayKind::Zigzag);
        assert_eq!(spec.faults.flaky, 0.5);
        assert_eq!(spec.budget, Some(123));
        assert_eq!(spec.deadline_ms, Some(400));

        for (bad, needle) in [
            (r#"{"kind": "warp"}"#, "unknown kind"),
            (r#"{"kind": "select", "n": 4, "k": 9}"#, "out of range"),
            (r#"{"kind": "scan", "faults": {"flaky": 1.5}}"#, "[0, 1]"),
            (r#"{"kind": "scan", "n": -3}"#, "non-negative"),
        ] {
            let err = JobSpec::from_json(&Json::parse(bad).unwrap(), 0).unwrap_err();
            assert!(err.contains(needle), "{bad}: {err}");
        }
    }

    #[test]
    fn dead_row_faults_charge_detour_energy() {
        let mut spec = JobSpec::new("detour", JobKind::Scan);
        spec.n = 256;
        spec.faults.dead_rows = 0.2;
        spec.retries = 4;
        let r = run(&spec);
        assert_eq!(r.outcome, Outcome::Ok, "{:?}", r.error);
        assert!(r.detour_energy > 0, "dead rows must be priced");
    }
}
