//! A minimal, dependency-free JSON reader.
//!
//! The workspace builds hermetically with zero external crates, so the
//! batch runtime carries its own small JSON layer: this module parses
//! jobspec files into a [`Json`] tree (reports are *written* by
//! [`crate::report`], which emits deterministic key-ordered text directly —
//! no tree needed). The parser covers the whole of RFC 8259 JSON except
//! `\u` surrogate pairs outside the BMP, which jobspecs have no use for.
//!
//! Errors carry the byte offset of the offending character so a typo in a
//! hand-written jobspec is a one-line fix, not a guessing game.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; jobspec integers are well within
    /// the 53-bit exact range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps member iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

/// A parse failure at a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser { b: src.as_bytes(), i: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the value is `null` (used for explicit "unset" members).
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError { at: self.i, msg: msg.into() }
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if m.insert(key.clone(), val).is_some() {
                return Err(self.err(format!("duplicate object key {key:?}")));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.i += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                        }
                        c => return Err(self.err(format!("bad escape '\\{}'", c as char))),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences are valid
                    // because the input is a &str).
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0xC0) == 0x80 {
                        self.i += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.b[start..self.i]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err(format!("bad number {text:?}")))
    }
}

/// Escapes `s` for embedding in a JSON string literal (used by the report
/// writer).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_jobspec_shapes() {
        let doc = r#"
        {
          "name": "smoke",
          "config": {"workers": 4, "shed_threshold": null, "best_effort": true},
          "jobs": [
            {"kind": "scan", "n": 4096, "seed": 1},
            {"kind": "chaos-spin", "deadline_ms": 150},
            {"kind": "sort", "faults": {"flaky": 0.5, "dead_frac": 0.1}}
          ]
        }"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("smoke"));
        assert_eq!(v.get("config").and_then(|c| c.get("workers")).and_then(Json::as_u64), Some(4));
        assert!(v.get("config").unwrap().get("shed_threshold").unwrap().is_null());
        let jobs = v.get("jobs").and_then(Json::as_array).unwrap();
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[1].get("deadline_ms").and_then(Json::as_u64), Some(150));
        assert_eq!(
            jobs[2].get("faults").and_then(|f| f.get("flaky")).and_then(Json::as_f64),
            Some(0.5)
        );
    }

    #[test]
    fn parses_scalars_numbers_and_escapes() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse(r#""a\"b\\c\ndA""#).unwrap(), Json::Str("a\"b\\c\ndA".into()));
        assert_eq!(Json::parse(r#""héllo 🌍""#).unwrap(), Json::Str("héllo 🌍".into()));
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(Default::default()));
    }

    #[test]
    fn rejects_malformed_documents_with_positions() {
        for bad in
            ["", "{", "[1,]", "{\"a\" 1}", "tru", "\"unterminated", "1 2", "{\"a\":1,\"a\":2}"]
        {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.at <= bad.len(), "offset {} out of range for {bad:?}", err.at);
        }
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn escape_round_trips_through_the_parser() {
        let nasty = "a\"b\\c\nd\te\rf\u{1}g";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(Json::parse(&doc).unwrap(), Json::Str(nasty.into()));
    }
}
