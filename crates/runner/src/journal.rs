//! Write-ahead journal and atomic snapshot for crash-safe serving.
//!
//! A journal directory holds two files:
//!
//! * **`journal.log`** — an append-only write-ahead log of checksum-framed
//!   text records, one per line:
//!
//!   ```text
//!   w1 <i|o> <seq> <fnv64-hex> <payload>
//!   ```
//!
//!   `i` records carry a consuming input line *before* it is processed; `o`
//!   records carry a canonical output line *before* it is written to the
//!   client. The checksum is FNV-1a-64 over `kind:seq:payload`. Because
//!   every record is appended (and pushed to the OS) before its effect
//!   becomes visible, the journal is always **ahead** of both the daemon's
//!   state and the client's view — a SIGKILL at any instant loses at most
//!   work the journal already knows how to redo, never work it has no
//!   record of.
//!
//! * **`snapshot.json`** — a versioned (`spatial-serve-snapshot/v1`)
//!   point-in-time image of the serve state (tenant ledgers, rolling
//!   aggregates, warm cache in LRU order), written at clean shutdown via
//!   write-to-temp + `rename` so a crash mid-write can never leave a
//!   half-snapshot behind. All `u64` scalars are encoded as decimal
//!   strings and all `f64`s as IEEE-754 bit patterns in hex, because the
//!   in-tree JSON number type is an `f64` (53-bit mantissa).
//!
//! ## Recovery and the consistent-prefix rule
//!
//! [`Journal::open`] replays the log with a strict prefix discipline: the
//! first record that is torn (no trailing newline), corrupt (checksum or
//! framing mismatch), or out of sequence invalidates **itself and
//! everything after it**, and the file is truncated back to the last good
//! byte so subsequent appends extend a clean log. Duplicate `(kind, seq)`
//! records — possible if a crash lands between an append and the state
//! change it covers being re-journaled — keep their first occurrence, so
//! replay is idempotent. Inputs and outputs each form a dense prefix
//! `0..n`, which is exactly the shape the serve loop's in-order emission
//! guarantees.
//!
//! Durability target: **process death** (SIGKILL, panic, OOM-kill). Writes
//! reach the OS page cache synchronously but are not `fsync`ed — the model
//! costs being replayed are pure functions of the input, so re-deriving
//! the tail after a power loss is the host's problem, not a correctness
//! one.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use spatial_core::model::{profile_by_name, Cost};
use workloads::arrays::ArrayKind;

use crate::cache::CacheKey;
use crate::job::{FaultCfg, JobKind, JobResult, Outcome};
use crate::json::{escape, Json};
use crate::tenant::{ExtentCap, RateLimit, TenantConfig, TenantSnapshot};

/// The write-ahead log file name inside a journal directory.
pub const WAL_FILE: &str = "journal.log";
/// The snapshot file name inside a journal directory.
pub const SNAPSHOT_FILE: &str = "snapshot.json";
/// The snapshot schema tag.
pub const SNAPSHOT_SCHEMA: &str = "spatial-serve-snapshot/v1";

/// FNV-1a 64-bit hash — the record checksum.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What a journal record covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// A consuming input line, journaled before it is processed.
    Input,
    /// A canonical output line, journaled before it reaches the client.
    Output,
}

impl RecordKind {
    fn tag(self) -> char {
        match self {
            RecordKind::Input => 'i',
            RecordKind::Output => 'o',
        }
    }
}

fn record_checksum(kind: RecordKind, seq: u64, payload: &str) -> u64 {
    fnv1a64(format!("{}:{seq}:{payload}", kind.tag()).as_bytes())
}

/// Renders one record line (without the trailing newline).
fn record_line(kind: RecordKind, seq: u64, payload: &str) -> String {
    format!("w1 {} {seq} {:016x} {payload}", kind.tag(), record_checksum(kind, seq, payload))
}

/// Parses and checksum-verifies one record line.
fn parse_record(line: &str) -> Option<(RecordKind, u64, &str)> {
    let rest = line.strip_prefix("w1 ")?;
    let (kind, rest) = match rest.as_bytes().first()? {
        b'i' => (RecordKind::Input, rest.get(2..)?),
        b'o' => (RecordKind::Output, rest.get(2..)?),
        _ => return None,
    };
    let (seq, rest) = rest.split_once(' ')?;
    let seq: u64 = seq.parse().ok()?;
    let (crc, payload) = rest.split_once(' ')?;
    let crc = u64::from_str_radix(crc, 16).ok()?;
    if crc != record_checksum(kind, seq, payload) {
        return None;
    }
    Some((kind, seq, payload))
}

/// What [`Journal::open`] reconstructed from a journal directory.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Journaled input lines; index == sequence number (dense prefix).
    pub inputs: Vec<String>,
    /// Journaled output lines; index == sequence number (dense prefix).
    /// `outputs.len()` is the emitted watermark: everything below it was
    /// durably journaled before any client could have seen it.
    pub outputs: Vec<String>,
    /// The last clean-shutdown snapshot, if present and well-formed.
    pub snapshot: Option<Snapshot>,
    /// Bytes discarded from the log tail (torn or corrupt records).
    pub discarded: u64,
}

/// An open write-ahead journal (appender half).
pub struct Journal {
    file: File,
    dir: PathBuf,
}

impl Journal {
    /// Opens (creating if necessary) the journal in `dir`, replaying the
    /// existing log under the consistent-prefix rule and truncating any
    /// bad tail so the returned appender extends a clean log.
    pub fn open(dir: &Path) -> io::Result<(Journal, Recovered)> {
        fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE);
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut rec = Recovered { snapshot: read_snapshot(dir), ..Recovered::default() };
        let mut good_end: u64 = 0;
        let mut pos = 0usize;
        while pos < bytes.len() {
            let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
                break; // torn final record: no newline made it to disk
            };
            let line = &bytes[pos..pos + nl];
            let Some((kind, seq, payload)) = std::str::from_utf8(line).ok().and_then(parse_record)
            else {
                break; // corrupt record: discard it and everything after
            };
            let bucket = match kind {
                RecordKind::Input => &mut rec.inputs,
                RecordKind::Output => &mut rec.outputs,
            };
            if seq == bucket.len() as u64 {
                bucket.push(payload.to_string());
            } else if seq > bucket.len() as u64 {
                break; // sequence gap: the log is no longer a clean prefix
            }
            // seq < len: duplicate record — keep the first occurrence.
            pos += nl + 1;
            good_end = pos as u64;
        }
        rec.discarded = bytes.len() as u64 - good_end;
        if rec.discarded > 0 {
            file.set_len(good_end)?;
        }
        file.seek(SeekFrom::Start(good_end))?;
        Ok((Journal { file, dir: dir.to_path_buf() }, rec))
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one record and pushes it to the OS before returning — after
    /// this call, a SIGKILL cannot lose the record.
    pub fn append(&mut self, kind: RecordKind, seq: u64, payload: &str) -> io::Result<()> {
        let mut line = record_line(kind, seq, payload);
        line.push('\n');
        self.file.write_all(line.as_bytes())
    }

    /// Atomically replaces the snapshot: write to a temp file in the same
    /// directory, then `rename` over the target. A crash mid-write leaves
    /// the previous snapshot (or none) intact, never a torn one.
    pub fn write_snapshot(&self, snap: &Snapshot) -> io::Result<()> {
        let tmp = self.dir.join("snapshot.json.tmp");
        let target = self.dir.join(SNAPSHOT_FILE);
        let mut f = File::create(&tmp)?;
        f.write_all(snap.to_json().as_bytes())?;
        drop(f);
        fs::rename(&tmp, &target)
    }
}

/// Reads and validates the snapshot in `dir`, if any. A missing, torn, or
/// schema-mismatched snapshot yields `None` — recovery then falls back to
/// replaying the full journal, which always works because the log is never
/// truncated past data a snapshot covers.
pub fn read_snapshot(dir: &Path) -> Option<Snapshot> {
    let src = fs::read_to_string(dir.join(SNAPSHOT_FILE)).ok()?;
    Snapshot::parse(&src)
}

/// The rolling aggregates behind the daemon's `stats` verb, in snapshot
/// form (the live struct is private to the serve loop).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AggSnapshot {
    /// Jobs that have passed the emission cursor.
    pub jobs: u64,
    /// Per-outcome counts, in [`Outcome::ALL`] order.
    pub counts: Vec<u64>,
    /// Total attempts across jobs.
    pub attempts: u64,
    /// Total model energy.
    pub energy_total: u64,
    /// Per-job energies (percentile source), emission order.
    pub energies: Vec<u64>,
    /// Per-job wall times (non-canonical percentile source).
    pub walls: Vec<u64>,
    /// Cache hits observed.
    pub cache_hits: u64,
    /// Cache lookups observed.
    pub cache_lookups: u64,
}

/// A point-in-time image of the serve state, written at clean shutdown.
#[derive(Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Consuming input lines reflected in this state.
    pub lines: u64,
    /// Output lines emitted (== `lines` at a quiescent shutdown).
    pub emitted: u64,
    /// Tenant ledgers, first-seen order.
    pub tenants: Vec<TenantSnapshot>,
    /// Rolling stats aggregates.
    pub agg: AggSnapshot,
    /// Warm cache entries, LRU order (least recently used first).
    pub cache: Vec<(CacheKey, JobResult)>,
}

// ---------------------------------------------------------------------
// Snapshot serialization. u64 → decimal string, f64 → IEEE-754 bits in
// hex: the in-tree JSON number is an f64, so large integers and exact
// fault fractions must not pass through it.
// ---------------------------------------------------------------------

fn u(x: u64) -> String {
    format!("\"{x}\"")
}

fn opt_u(x: Option<u64>) -> String {
    x.map_or_else(|| "null".to_string(), u)
}

fn u_list(xs: &[u64]) -> String {
    let items: Vec<String> = xs.iter().map(|&x| u(x)).collect();
    format!("[{}]", items.join(", "))
}

fn f_bits(x: f64) -> String {
    format!("\"{:016x}\"", x.to_bits())
}

fn get_u(v: &Json, key: &str) -> Option<u64> {
    v.get(key)?.as_str()?.parse().ok()
}

fn get_opt_u(v: &Json, key: &str) -> Option<Option<u64>> {
    match v.get(key) {
        None => Some(None),
        Some(j) if j.is_null() => Some(None),
        Some(j) => Some(Some(j.as_str()?.parse().ok()?)),
    }
}

fn get_u_list(v: &Json, key: &str) -> Option<Vec<u64>> {
    v.get(key)?.as_array()?.iter().map(|j| j.as_str()?.parse().ok()).collect()
}

fn get_f_bits(j: &Json) -> Option<f64> {
    Some(f64::from_bits(u64::from_str_radix(j.as_str()?, 16).ok()?))
}

fn faults_json(f: &FaultCfg) -> String {
    format!(
        "{{\"dead_rows\": {}, \"degraded_rows\": {}, \"flaky\": {}}}",
        f_bits(f.dead_rows),
        f_bits(f.degraded_rows),
        f_bits(f.flaky)
    )
}

fn parse_faults(v: &Json) -> Option<FaultCfg> {
    Some(FaultCfg {
        dead_rows: get_f_bits(v.get("dead_rows")?)?,
        degraded_rows: get_f_bits(v.get("degraded_rows")?)?,
        flaky: get_f_bits(v.get("flaky")?)?,
    })
}

fn tenant_json(t: &TenantSnapshot) -> String {
    let rate = t.config.rate.map_or_else(
        || "null".to_string(),
        |r| format!("{{\"burst\": {}, \"window\": {}}}", u(r.burst), u(r.window)),
    );
    let faults = t.config.faults.as_ref().map_or_else(|| "null".to_string(), faults_json);
    let extent = t.config.extent.map_or_else(
        || "null".to_string(),
        |e| format!("{{\"rows\": {}, \"cols\": {}}}", u(e.rows), u(e.cols)),
    );
    format!(
        "{{\"name\": \"{}\", \"budget\": {}, \"rate\": {rate}, \"faults\": {faults}, \
         \"extent\": {extent}, \"predict\": {}, \"charged\": {}, \"completed\": {}, \
         \"admitted\": {}}}",
        escape(&t.name),
        opt_u(t.config.budget),
        t.config.predict,
        u(t.charged),
        u(t.completed),
        u_list(&t.admitted)
    )
}

fn parse_tenant(v: &Json) -> Option<TenantSnapshot> {
    let rate = match v.get("rate") {
        None => None,
        Some(j) if j.is_null() => None,
        Some(j) => Some(RateLimit { burst: get_u(j, "burst")?, window: get_u(j, "window")? }),
    };
    let faults = match v.get("faults") {
        None => None,
        Some(j) if j.is_null() => None,
        Some(j) => Some(parse_faults(j)?),
    };
    let extent = match v.get("extent") {
        None => None,
        Some(j) if j.is_null() => None,
        Some(j) => Some(ExtentCap { rows: get_u(j, "rows")?, cols: get_u(j, "cols")? }),
    };
    Some(TenantSnapshot {
        name: v.get("name")?.as_str()?.to_string(),
        config: TenantConfig {
            budget: get_opt_u(v, "budget")?,
            rate,
            faults,
            extent,
            predict: v.get("predict")?.as_bool()?,
        },
        charged: get_u(v, "charged")?,
        completed: get_u(v, "completed")?,
        admitted: get_u_list(v, "admitted")?,
    })
}

fn cache_entry_json(key: &CacheKey, r: &JobResult) -> String {
    let profile =
        key.profile.map_or_else(|| "null".to_string(), |name| format!("\"{name}\""));
    let key_json = format!(
        "{{\"kind\": \"{}\", \"n\": {}, \"seed\": {}, \"array\": \"{}\", \"k\": {}, \
         \"faults\": [{}, {}, {}], \"budget\": {}, \"retries\": {}, \"profile\": {profile}}}",
        key.kind,
        u(key.n),
        u(key.seed),
        key.array,
        u(key.k),
        u(key.faults[0]),
        u(key.faults[1]),
        u(key.faults[2]),
        opt_u(key.budget),
        u(u64::from(key.retries))
    );
    let cost = r.cost.map_or_else(
        || "null".to_string(),
        |c| {
            format!(
                "{{\"energy\": {}, \"depth\": {}, \"distance\": {}, \"messages\": {}}}",
                u(c.energy),
                u(c.depth),
                u(c.distance),
                u(c.messages)
            )
        },
    );
    let error =
        r.error.as_ref().map_or_else(|| "null".to_string(), |e| format!("\"{}\"", escape(e)));
    format!(
        "{{\"key\": {key_json}, \"result\": {{\"id\": \"{}\", \"kind\": \"{}\", \
         \"outcome\": \"{}\", \"attempts\": {}, \"escalation\": {}, \"cost\": {cost}, \
         \"detour_energy\": {}, \"backoff_ms\": {}, \"checksum\": {}, \"error\": {error}}}}}",
        escape(&r.id),
        r.kind.label(),
        r.outcome.label(),
        u(u64::from(r.attempts)),
        u(u64::from(r.escalation)),
        u(r.detour_energy),
        u(r.backoff_ms),
        opt_u(r.checksum)
    )
}

fn parse_cache_entry(v: &Json) -> Option<(CacheKey, JobResult)> {
    let k = v.get("key")?;
    let faults = k.get("faults")?.as_array()?;
    if faults.len() != 3 {
        return None;
    }
    let fault_bits = |i: usize| faults[i].as_str()?.parse().ok();
    let key = CacheKey {
        kind: JobKind::parse(k.get("kind")?.as_str()?)?.label(),
        n: get_u(k, "n")?,
        seed: get_u(k, "seed")?,
        array: ArrayKind::ALL
            .into_iter()
            .find(|a| Some(a.label()) == k.get("array").and_then(Json::as_str))?
            .label(),
        k: get_u(k, "k")?,
        faults: [fault_bits(0)?, fault_bits(1)?, fault_bits(2)?],
        budget: get_opt_u(k, "budget")?,
        retries: get_u(k, "retries")? as u32,
        // Absent (pre-profile snapshots) and explicit null both mean the
        // model-exact default; unknown names invalidate the entry.
        profile: match k.get("profile") {
            None => None,
            Some(j) if j.is_null() => None,
            Some(j) => Some(profile_by_name(j.as_str()?).ok()?.name()),
        },
    };
    let r = v.get("result")?;
    let cost = match r.get("cost") {
        None => None,
        Some(j) if j.is_null() => None,
        Some(j) => Some(Cost {
            energy: get_u(j, "energy")?,
            depth: get_u(j, "depth")?,
            distance: get_u(j, "distance")?,
            messages: get_u(j, "messages")?,
        }),
    };
    let error = match r.get("error") {
        None => None,
        Some(j) if j.is_null() => None,
        Some(j) => Some(j.as_str()?.to_string()),
    };
    let result = JobResult {
        id: r.get("id")?.as_str()?.to_string(),
        kind: JobKind::parse(r.get("kind")?.as_str()?)?,
        outcome: Outcome::parse(r.get("outcome")?.as_str()?)?,
        attempts: get_u(r, "attempts")? as u32,
        escalation: get_u(r, "escalation")? as u8,
        cost,
        // The profiled block is a pure function of (profile, cost), so it is
        // recomputed rather than persisted — recovered hits stay bit-identical
        // to fresh runs by construction.
        profiled: match (key.profile, cost) {
            (Some(name), Some(c)) => profile_by_name(name).ok()?.charge(c).ok(),
            _ => None,
        },
        detour_energy: get_u(r, "detour_energy")?,
        backoff_ms: get_u(r, "backoff_ms")?,
        checksum: get_opt_u(r, "checksum")?,
        error,
        wall_ms: 0,
    };
    Some((key, result))
}

impl Snapshot {
    /// Serializes to the versioned snapshot document.
    pub fn to_json(&self) -> String {
        let tenants: Vec<String> = self.tenants.iter().map(tenant_json).collect();
        let cache: Vec<String> = self.cache.iter().map(|(k, r)| cache_entry_json(k, r)).collect();
        format!(
            "{{\"schema\": \"{SNAPSHOT_SCHEMA}\", \"lines\": {}, \"emitted\": {}, \
             \"tenants\": [{}], \"agg\": {{\"jobs\": {}, \"counts\": {}, \"attempts\": {}, \
             \"energy_total\": {}, \"energies\": {}, \"walls\": {}, \"cache_hits\": {}, \
             \"cache_lookups\": {}}}, \"cache\": [{}]}}\n",
            u(self.lines),
            u(self.emitted),
            tenants.join(", "),
            u(self.agg.jobs),
            u_list(&self.agg.counts),
            u(self.agg.attempts),
            u(self.agg.energy_total),
            u_list(&self.agg.energies),
            u_list(&self.agg.walls),
            u(self.agg.cache_hits),
            u(self.agg.cache_lookups),
            cache.join(", ")
        )
    }

    /// Parses a snapshot document; `None` on any structural problem
    /// (including a schema tag this version does not speak).
    pub fn parse(src: &str) -> Option<Snapshot> {
        let v = Json::parse(src).ok()?;
        if v.get("schema")?.as_str()? != SNAPSHOT_SCHEMA {
            return None;
        }
        let agg_v = v.get("agg")?;
        let agg = AggSnapshot {
            jobs: get_u(agg_v, "jobs")?,
            counts: get_u_list(agg_v, "counts")?,
            attempts: get_u(agg_v, "attempts")?,
            energy_total: get_u(agg_v, "energy_total")?,
            energies: get_u_list(agg_v, "energies")?,
            walls: get_u_list(agg_v, "walls")?,
            cache_hits: get_u(agg_v, "cache_hits")?,
            cache_lookups: get_u(agg_v, "cache_lookups")?,
        };
        let tenants =
            v.get("tenants")?.as_array()?.iter().map(parse_tenant).collect::<Option<Vec<_>>>()?;
        let cache = v
            .get("cache")?
            .as_array()?
            .iter()
            .map(parse_cache_entry)
            .collect::<Option<Vec<_>>>()?;
        Some(Snapshot {
            lines: get_u(&v, "lines")?,
            emitted: get_u(&v, "emitted")?,
            tenants,
            agg,
            cache,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("spatial-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn append_all(j: &mut Journal, records: &[(RecordKind, u64, &str)]) {
        for &(kind, seq, payload) in records {
            j.append(kind, seq, payload).unwrap();
        }
    }

    #[test]
    fn round_trip_recovers_dense_prefixes() {
        let dir = tmp_dir("rt");
        let (mut j, rec) = Journal::open(&dir).unwrap();
        assert!(rec.inputs.is_empty() && rec.outputs.is_empty() && rec.snapshot.is_none());
        append_all(
            &mut j,
            &[
                (RecordKind::Input, 0, r#"{"kind": "scan"}"#),
                (RecordKind::Output, 0, r#"{"seq": 0}"#),
                (RecordKind::Input, 1, r#"{"kind": "sort"}"#),
            ],
        );
        drop(j);
        let (_, rec) = Journal::open(&dir).unwrap();
        assert_eq!(rec.inputs, vec![r#"{"kind": "scan"}"#, r#"{"kind": "sort"}"#]);
        assert_eq!(rec.outputs, vec![r#"{"seq": 0}"#]);
        assert_eq!(rec.discarded, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_and_truncated() {
        let dir = tmp_dir("torn");
        let (mut j, _) = Journal::open(&dir).unwrap();
        append_all(&mut j, &[(RecordKind::Input, 0, "first"), (RecordKind::Input, 1, "second")]);
        drop(j);
        let path = dir.join(WAL_FILE);
        let clean_len = fs::metadata(&path).unwrap().len();
        // Simulate a crash mid-append: a record prefix with no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"w1 i 2 deadbeef").unwrap();
        drop(f);
        let (mut j, rec) = Journal::open(&dir).unwrap();
        assert_eq!(rec.inputs, vec!["first", "second"], "clean prefix survives");
        assert!(rec.discarded > 0);
        assert_eq!(fs::metadata(&path).unwrap().len(), clean_len, "tail truncated");
        // The journal still appends cleanly after truncation.
        j.append(RecordKind::Input, 2, "third").unwrap();
        drop(j);
        let (_, rec) = Journal::open(&dir).unwrap();
        assert_eq!(rec.inputs, vec!["first", "second", "third"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_byte_mid_record_discards_it_and_everything_after() {
        let dir = tmp_dir("flip");
        let (mut j, _) = Journal::open(&dir).unwrap();
        append_all(
            &mut j,
            &[
                (RecordKind::Input, 0, "alpha"),
                (RecordKind::Input, 1, "bravo"),
                (RecordKind::Input, 2, "charlie"),
            ],
        );
        drop(j);
        let path = dir.join(WAL_FILE);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte inside the middle record.
        let idx = String::from_utf8_lossy(&bytes).find("bravo").unwrap();
        bytes[idx] ^= 0x20;
        fs::write(&path, &bytes).unwrap();
        let (_, rec) = Journal::open(&dir).unwrap();
        assert_eq!(rec.inputs, vec!["alpha"], "corruption invalidates the suffix");
        assert!(rec.discarded > 0);
        // Replay after recovery is idempotent: reopening again finds the
        // already-truncated clean prefix with nothing further to discard.
        let (_, rec) = Journal::open(&dir).unwrap();
        assert_eq!(rec.inputs, vec!["alpha"]);
        assert_eq!(rec.discarded, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_records_replay_idempotently() {
        let dir = tmp_dir("dup");
        let (mut j, _) = Journal::open(&dir).unwrap();
        append_all(
            &mut j,
            &[
                (RecordKind::Input, 0, "original"),
                (RecordKind::Input, 0, "original"),
                (RecordKind::Output, 0, "emitted"),
                (RecordKind::Output, 0, "emitted-again"),
                (RecordKind::Input, 1, "next"),
            ],
        );
        drop(j);
        let (_, rec) = Journal::open(&dir).unwrap();
        assert_eq!(rec.inputs, vec!["original", "next"], "first occurrence wins");
        assert_eq!(rec.outputs, vec!["emitted"], "duplicate output not double-counted");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequence_gap_ends_the_trusted_prefix() {
        let dir = tmp_dir("gap");
        let (mut j, _) = Journal::open(&dir).unwrap();
        append_all(&mut j, &[(RecordKind::Input, 0, "zero"), (RecordKind::Input, 5, "five")]);
        drop(j);
        let (_, rec) = Journal::open(&dir).unwrap();
        assert_eq!(rec.inputs, vec!["zero"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    fn sample_snapshot() -> Snapshot {
        let mut spec = JobSpec::new("cached-job", JobKind::Sort);
        spec.n = 64;
        spec.faults.flaky = 0.25;
        let key = CacheKey::of(&spec, Some(1_000_000));
        let result = JobResult {
            cost: Some(Cost { energy: 123, depth: 4, distance: 56, messages: 7 }),
            checksum: Some(u64::MAX),
            outcome: Outcome::Ok,
            attempts: 1,
            ..JobResult::shed(&spec)
        };
        Snapshot {
            lines: u64::MAX - 1,
            emitted: u64::MAX - 1,
            tenants: vec![TenantSnapshot {
                name: "acme \"quoted\"".into(),
                config: TenantConfig {
                    budget: Some(u64::MAX),
                    rate: Some(RateLimit { burst: 2, window: 10 }),
                    faults: Some(FaultCfg { dead_rows: 0.1, degraded_rows: 0.0, flaky: 0.3 }),
                    extent: Some(ExtentCap { rows: 8, cols: 16 }),
                    predict: true,
                },
                charged: 999,
                completed: 3,
                admitted: vec![7, 9],
            }],
            agg: AggSnapshot {
                jobs: 5,
                counts: vec![3, 1, 0, 0, 1, 0, 0, 0],
                attempts: 6,
                energy_total: 4242,
                energies: vec![100, 2000, 2142],
                walls: vec![1, 2, 3],
                cache_hits: 2,
                cache_lookups: 4,
            },
            cache: vec![(key, JobResult { error: None, ..result })],
        }
    }

    #[test]
    fn snapshot_round_trips_exactly_including_64_bit_extremes() {
        let snap = sample_snapshot();
        let parsed = Snapshot::parse(&snap.to_json()).expect("parses");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn snapshot_write_is_atomic_and_corruption_tolerant() {
        let dir = tmp_dir("snap");
        let (j, _) = Journal::open(&dir).unwrap();
        let snap = sample_snapshot();
        j.write_snapshot(&snap).unwrap();
        assert!(!dir.join("snapshot.json.tmp").exists(), "temp renamed away");
        assert_eq!(read_snapshot(&dir), Some(snap));
        // A torn or garbage snapshot is ignored, not fatal.
        fs::write(dir.join(SNAPSHOT_FILE), "{\"schema\": \"spatial-serve-sn").unwrap();
        assert_eq!(read_snapshot(&dir), None);
        fs::write(dir.join(SNAPSHOT_FILE), "{\"schema\": \"something/v9\"}").unwrap();
        assert_eq!(read_snapshot(&dir), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_framing_rejects_tampering() {
        let good = record_line(RecordKind::Input, 7, "payload with spaces");
        assert_eq!(parse_record(&good), Some((RecordKind::Input, 7, "payload with spaces")));
        let tampered = good.replace("payload", "Payload");
        assert_eq!(parse_record(&tampered), None, "checksum catches payload edits");
        assert_eq!(parse_record("w2 i 0 00 x"), None, "unknown version");
        assert_eq!(parse_record("w1 q 0 00 x"), None, "unknown kind");
        assert_eq!(parse_record("w1 i notanum 00 x"), None);
    }
}
