//! Per-tenant state and deficit-round-robin scheduling for the serve
//! daemon.
//!
//! A long-lived daemon serves many tenants from one worker pool, and three
//! per-tenant mechanisms keep them isolated:
//!
//! * **Admission (rate limiting)** — each tenant may hold at most
//!   [`RateLimit::burst`] admissions within the last [`RateLimit::window`]
//!   submissions of the *global* stream. The decision is a pure function of
//!   the submission sequence — never of queue drain timing — which is what
//!   keeps a served stream's canonical output byte-identical at any worker
//!   count. Rejected jobs become [`crate::job::Outcome::Shed`].
//! * **Budgets** — a tenant's cumulative model energy is charged against an
//!   optional [`TenantConfig::budget`]. Jobs of an exhausted tenant are
//!   rejected with the typed [`crate::job::Outcome::OverBudget`] instead of
//!   panicking or silently running. Because a tenant's jobs execute in
//!   submission order (one in flight at a time), the ledger before job *k*
//!   depends only on jobs *1..k* of that tenant — deterministic at any
//!   worker count.
//! * **Fair scheduling** — free worker slots are handed out by deficit
//!   round robin ([`DrrScheduler::next`]): each tenant's turn earns it
//!   [`DrrScheduler::quantum`] work units of deficit, a job costs its input
//!   size `n` in units, and a job is dispatched only when the deficit
//!   covers it. A tenant spamming huge jobs therefore cannot starve a
//!   tenant of small ones: between two dispatches of a backlogged tenant,
//!   every other tenant receives at most `O(quantum + max_weight)` units
//!   (see the bound pinned by `tests/scheduling.rs`).
//!
//! The scheduler is a plain single-threaded data structure; the serve loop
//! drives it under one mutex. All iteration orders are fixed (tenants live
//! in a `Vec` in first-seen order), so a fixed call sequence produces a
//! fixed dispatch sequence.

use std::collections::VecDeque;

use crate::job::{FaultCfg, JobSpec};

/// Sliding-window admission cap: at most `burst` jobs from one tenant
/// within any `window` consecutive submissions of the global stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RateLimit {
    /// Maximum admitted jobs inside the window (at least 1).
    pub burst: u64,
    /// Window length, in global submission sequence numbers (at least 1).
    pub window: u64,
}

/// A [`spatial_core::model::ModelGuard`]-style *extent* policy: the largest
/// grid a tenant's job may occupy. A job whose input square exceeds either
/// dimension is refused at dispatch with
/// [`crate::job::Outcome::ExtentRefused`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExtentCap {
    /// Maximum grid rows a job's input extent may span.
    pub rows: u64,
    /// Maximum grid columns a job's input extent may span.
    pub cols: u64,
}

impl ExtentCap {
    /// Whether a square input extent of side `side` fits under the cap.
    pub fn admits(&self, side: u64) -> bool {
        side <= self.rows && side <= self.cols
    }
}

/// Declarative per-tenant policy, set by the `tenant` control verb.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TenantConfig {
    /// Cumulative model-energy budget; `None` is unlimited.
    pub budget: Option<u64>,
    /// Admission rate limit; `None` admits everything.
    pub rate: Option<RateLimit>,
    /// Default fault plan applied to this tenant's jobs that don't declare
    /// their own.
    pub faults: Option<FaultCfg>,
    /// Largest grid extent a job may occupy; `None` is unbounded.
    pub extent: Option<ExtentCap>,
    /// Predictive admission: refuse a job before execution when its
    /// closed-form energy floor ([`crate::job::JobSpec::predicted_energy`])
    /// already exceeds the remaining budget. Opt-in — the default keeps the
    /// pre-existing semantics where a job runs under its guard and is
    /// charged what it actually spent.
    pub predict: bool,
}

/// One job submission bound for the scheduler.
#[derive(Clone, Debug, PartialEq)]
pub struct Submission {
    /// Global input-line sequence number (also the output ordering key).
    pub seq: u64,
    /// Owning tenant.
    pub tenant: String,
    /// The job itself.
    pub spec: JobSpec,
}

/// The DRR work units one job costs: its input size (minimum 1), the same
/// size-proportional estimate the paper's closed forms are linear in.
pub fn weight(spec: &JobSpec) -> u64 {
    spec.n.max(1)
}

struct Tenant {
    name: String,
    config: TenantConfig,
    queue: VecDeque<Submission>,
    /// DRR deficit counter, in work units.
    deficit: u64,
    /// Whether a job of this tenant is currently in flight (per-tenant
    /// execution is serial so the budget ledger is well-ordered).
    busy: bool,
    /// Recent admission sequence numbers (rate-limited tenants only).
    admitted: VecDeque<u64>,
    /// Cumulative model energy charged against the budget.
    charged: u64,
    /// Completed job count (ledger telemetry; also the fairness probe).
    completed: u64,
}

/// Why a submission was refused admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Refusal {
    /// The tenant exceeded its sliding-window rate limit.
    RateLimited {
        /// The configured limit, echoed into the error message.
        burst: u64,
        /// The configured window.
        window: u64,
    },
}

/// Deficit-round-robin scheduler over per-tenant FIFO queues.
pub struct DrrScheduler {
    tenants: Vec<Tenant>,
    /// Ring cursor into `tenants` (first-seen order).
    cursor: usize,
    /// Deficit earned per visit, in work units.
    pub quantum: u64,
    pending: usize,
}

impl DrrScheduler {
    /// A scheduler granting `quantum` work units per tenant visit.
    pub fn new(quantum: u64) -> DrrScheduler {
        DrrScheduler { tenants: Vec::new(), cursor: 0, quantum: quantum.max(1), pending: 0 }
    }

    fn slot(&mut self, name: &str) -> usize {
        if let Some(i) = self.tenants.iter().position(|t| t.name == name) {
            return i;
        }
        self.tenants.push(Tenant {
            name: name.to_string(),
            config: TenantConfig::default(),
            queue: VecDeque::new(),
            deficit: 0,
            busy: false,
            admitted: VecDeque::new(),
            charged: 0,
            completed: 0,
        });
        self.tenants.len() - 1
    }

    /// Registers (or re-registers) a tenant's policy. Budgets and rate
    /// limits take effect for subsequent submissions; already-queued jobs
    /// keep their admission.
    pub fn register(&mut self, name: &str, config: TenantConfig) {
        let i = self.slot(name);
        self.tenants[i].config = config;
    }

    /// The tenant's default fault plan, if registered.
    pub fn fault_default(&mut self, name: &str) -> Option<FaultCfg> {
        let i = self.slot(name);
        self.tenants[i].config.faults
    }

    /// Admission decision for a submission at global sequence `seq`: `Ok`
    /// records the admission, `Err` names the refusal. Pure function of the
    /// admission history — timing never enters.
    pub fn admit(&mut self, name: &str, seq: u64) -> Result<(), Refusal> {
        let i = self.slot(name);
        let t = &mut self.tenants[i];
        let Some(rate) = t.config.rate else {
            return Ok(());
        };
        while t.admitted.front().is_some_and(|&s| s + rate.window <= seq) {
            t.admitted.pop_front();
        }
        if t.admitted.len() as u64 >= rate.burst.max(1) {
            return Err(Refusal::RateLimited { burst: rate.burst.max(1), window: rate.window });
        }
        t.admitted.push_back(seq);
        Ok(())
    }

    /// Queues an admitted submission.
    pub fn enqueue(&mut self, sub: Submission) {
        let i = self.slot(&sub.tenant);
        self.tenants[i].queue.push_back(sub);
        self.pending += 1;
    }

    /// Jobs queued and not yet dispatched, across all tenants.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Whether any tenant could dispatch right now (has queued work and no
    /// job in flight).
    pub fn dispatchable(&self) -> bool {
        self.tenants.iter().any(|t| !t.busy && !t.queue.is_empty())
    }

    /// Picks the next job by deficit round robin and marks its tenant busy.
    /// Returns `None` when no tenant is dispatchable (all idle, or every
    /// backlogged tenant already has a job in flight).
    ///
    /// Not an `Iterator`: `None` means "nothing dispatchable *right now*" —
    /// a `complete()` call can make the same scheduler yield again.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Submission> {
        if !self.dispatchable() {
            return None;
        }
        let k = self.tenants.len();
        loop {
            let i = self.cursor;
            self.cursor = (self.cursor + 1) % k;
            let t = &mut self.tenants[i];
            if t.queue.is_empty() {
                // Classic DRR: an idle flow forfeits its accumulated credit.
                t.deficit = 0;
                continue;
            }
            if t.busy {
                continue;
            }
            t.deficit = t.deficit.saturating_add(self.quantum);
            let w = weight(&t.queue.front().expect("non-empty queue").spec);
            if t.deficit >= w {
                t.deficit -= w;
                t.busy = true;
                let sub = t.queue.pop_front().expect("non-empty queue");
                if t.queue.is_empty() {
                    t.deficit = 0;
                }
                self.pending -= 1;
                return Some(sub);
            }
        }
    }

    /// Completes the tenant's in-flight job, charging `energy` against its
    /// budget ledger.
    pub fn complete(&mut self, name: &str, energy: u64) {
        let i = self.slot(name);
        let t = &mut self.tenants[i];
        debug_assert!(t.busy, "complete() without a dispatched job");
        t.busy = false;
        t.charged = t.charged.saturating_add(energy);
        t.completed += 1;
    }

    /// Whether the tenant has consumed its whole budget (unlimited tenants
    /// are never over budget).
    pub fn over_budget(&mut self, name: &str) -> bool {
        let i = self.slot(name);
        let t = &self.tenants[i];
        t.config.budget.is_some_and(|b| t.charged >= b)
    }

    /// Remaining budget (`None` = unlimited).
    pub fn remaining_budget(&mut self, name: &str) -> Option<u64> {
        let i = self.slot(name);
        let t = &self.tenants[i];
        t.config.budget.map(|b| b.saturating_sub(t.charged))
    }

    /// The tenant's configured budget (`None` = unlimited).
    pub fn budget_of(&mut self, name: &str) -> Option<u64> {
        let i = self.slot(name);
        self.tenants[i].config.budget
    }

    /// Cumulative energy charged to the tenant.
    pub fn charged(&mut self, name: &str) -> u64 {
        let i = self.slot(name);
        self.tenants[i].charged
    }

    /// Completed job count per tenant, in first-seen tenant order (the
    /// fairness probe used by the scheduling property tests).
    pub fn completion_counts(&self) -> Vec<(String, u64)> {
        self.tenants.iter().map(|t| (t.name.clone(), t.completed)).collect()
    }

    /// The tenant's extent cap, if registered.
    pub fn extent_cap(&mut self, name: &str) -> Option<ExtentCap> {
        let i = self.slot(name);
        self.tenants[i].config.extent
    }

    /// Whether the tenant opted into predictive admission.
    pub fn predictive(&mut self, name: &str) -> bool {
        let i = self.slot(name);
        self.tenants[i].config.predict
    }

    /// Durable per-tenant state, in first-seen order, for the serve
    /// snapshot. Queue contents and the DRR cursor/deficit are deliberately
    /// excluded: queued-but-undispatched work is re-driven from the journal
    /// on recovery, and the cursor never influences canonical output bytes
    /// (per-tenant execution is serial and emission is seq-ordered).
    pub fn export_tenants(&self) -> Vec<TenantSnapshot> {
        self.tenants
            .iter()
            .map(|t| TenantSnapshot {
                name: t.name.clone(),
                config: t.config,
                charged: t.charged,
                completed: t.completed,
                admitted: t.admitted.iter().copied().collect(),
            })
            .collect()
    }

    /// Rehydrates one tenant from a snapshot (inverse of
    /// [`DrrScheduler::export_tenants`]). Replaces any existing state for
    /// the name.
    pub fn import_tenant(&mut self, snap: TenantSnapshot) {
        let i = self.slot(&snap.name);
        let t = &mut self.tenants[i];
        t.config = snap.config;
        t.charged = snap.charged;
        t.completed = snap.completed;
        t.admitted = snap.admitted.into_iter().collect();
    }
}

/// The durable slice of one tenant's ledger, as written to (and read back
/// from) the serve snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSnapshot {
    /// Tenant name.
    pub name: String,
    /// Registered policy.
    pub config: TenantConfig,
    /// Cumulative energy charged against the budget.
    pub charged: u64,
    /// Completed job count.
    pub completed: u64,
    /// Recent admission sequence numbers (rate-limit window), oldest first.
    pub admitted: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;

    fn sub(tenant: &str, seq: u64, n: u64) -> Submission {
        let mut spec = JobSpec::new(format!("{tenant}-{seq}"), JobKind::Scan);
        spec.n = n;
        Submission { seq, tenant: tenant.into(), spec }
    }

    #[test]
    fn drr_interleaves_backlogged_tenants() {
        let mut s = DrrScheduler::new(64);
        for i in 0..4 {
            s.enqueue(sub("a", i, 64));
            s.enqueue(sub("b", 100 + i, 64));
        }
        let mut order = Vec::new();
        while let Some(job) = s.next() {
            order.push(job.tenant.clone());
            s.complete(&job.tenant, 0);
        }
        assert_eq!(order, ["a", "b", "a", "b", "a", "b", "a", "b"]);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn drr_weights_big_jobs_against_their_tenant() {
        // Tenant `big` queues 4096-unit jobs, `small` queues 64-unit jobs
        // with quantum 64: small must get ~64 dispatches per big one.
        let mut s = DrrScheduler::new(64);
        for i in 0..2 {
            s.enqueue(sub("big", i, 4096));
        }
        for i in 0..200 {
            s.enqueue(sub("small", 10 + i, 64));
        }
        let mut small_before_first_big = 0;
        let mut seen_big = false;
        while let Some(job) = s.next() {
            if job.tenant == "big" {
                seen_big = true;
                break;
            }
            small_before_first_big += 1;
            s.complete(&job.tenant, 0);
        }
        assert!(seen_big, "big tenant must not starve either");
        assert!(
            (60..=70).contains(&small_before_first_big),
            "a 4096-unit job at quantum 64 should cost ~64 turns, got {small_before_first_big}"
        );
    }

    #[test]
    fn busy_tenant_is_skipped_but_not_forgotten() {
        let mut s = DrrScheduler::new(1024);
        s.enqueue(sub("a", 0, 16));
        s.enqueue(sub("a", 1, 16));
        s.enqueue(sub("b", 2, 16));
        let first = s.next().unwrap();
        assert_eq!(first.tenant, "a");
        // `a` has a job in flight: only `b` is dispatchable.
        let second = s.next().unwrap();
        assert_eq!(second.tenant, "b");
        assert!(s.next().is_none(), "both tenants busy");
        s.complete("a", 10);
        let third = s.next().unwrap();
        assert_eq!(third.tenant, "a");
        assert_eq!(s.charged("a"), 10);
    }

    #[test]
    fn rate_limit_is_a_pure_function_of_the_sequence() {
        let mut s = DrrScheduler::new(64);
        s.register(
            "t",
            TenantConfig { rate: Some(RateLimit { burst: 2, window: 10 }), ..Default::default() },
        );
        assert!(s.admit("t", 0).is_ok());
        assert!(s.admit("t", 1).is_ok());
        assert_eq!(s.admit("t", 2), Err(Refusal::RateLimited { burst: 2, window: 10 }));
        // Window slides on global sequence numbers: the window at seq 10 is
        // (0, 10], so the admission at seq 0 has aged out (and 1 has not).
        assert!(s.admit("t", 10).is_ok());
        assert!(s.admit("t", 11).is_ok(), "window (1, 11] holds only seq 10");
        assert!(s.admit("t", 12).is_err(), "seqs 10 and 11 fill the burst");
        // Unregistered tenants are unlimited.
        for seq in 0..100 {
            assert!(s.admit("other", seq).is_ok());
        }
    }

    #[test]
    fn budget_ledger_trips_exactly_at_the_boundary() {
        let mut s = DrrScheduler::new(64);
        s.register("t", TenantConfig { budget: Some(100), ..Default::default() });
        assert!(!s.over_budget("t"));
        assert_eq!(s.remaining_budget("t"), Some(100));
        s.enqueue(sub("t", 0, 16));
        let job = s.next().unwrap();
        s.complete(&job.tenant, 99);
        assert!(!s.over_budget("t"));
        assert_eq!(s.remaining_budget("t"), Some(1));
        s.enqueue(sub("t", 1, 16));
        let job = s.next().unwrap();
        s.complete(&job.tenant, 1);
        assert!(s.over_budget("t"), "charged == budget means exhausted");
        assert_eq!(s.remaining_budget("t"), Some(0));
        assert_eq!(s.remaining_budget("unregistered"), None, "None = unlimited");
    }

    #[test]
    fn extent_cap_admits_by_both_dimensions() {
        let cap = ExtentCap { rows: 16, cols: 8 };
        assert!(cap.admits(8));
        assert!(!cap.admits(9), "cols bind before rows");
        assert!(!cap.admits(32));
        let mut s = DrrScheduler::new(64);
        assert_eq!(s.extent_cap("t"), None, "unregistered tenants are unbounded");
        s.register("t", TenantConfig { extent: Some(cap), ..Default::default() });
        assert_eq!(s.extent_cap("t"), Some(cap));
        assert!(!s.predictive("t"), "predict defaults off");
    }

    #[test]
    fn tenant_snapshot_round_trips_the_ledger() {
        let mut s = DrrScheduler::new(64);
        s.register(
            "t",
            TenantConfig {
                budget: Some(500),
                rate: Some(RateLimit { burst: 2, window: 10 }),
                predict: true,
                ..Default::default()
            },
        );
        assert!(s.admit("t", 3).is_ok());
        assert!(s.admit("t", 5).is_ok());
        s.enqueue(sub("t", 3, 16));
        let job = s.next().unwrap();
        s.complete(&job.tenant, 123);

        let snaps = s.export_tenants();
        let mut fresh = DrrScheduler::new(64);
        for snap in snaps {
            fresh.import_tenant(snap);
        }
        assert_eq!(fresh.charged("t"), 123);
        assert_eq!(fresh.remaining_budget("t"), Some(377));
        assert!(fresh.predictive("t"));
        // The admission window carried over: seqs 3 and 5 still fill the
        // burst at seq 6.
        assert!(fresh.admit("t", 6).is_err());
        assert_eq!(fresh.completion_counts(), vec![("t".to_string(), 1)]);
    }
}
