//! # runner — supervised concurrent batch runtime
//!
//! Simulation campaigns over the Spatial Computer Model (parameter sweeps,
//! fault-injection studies, benchmark tables) run many independent
//! simulations, any of which can panic, run away past a deadline, or be
//! unrecoverable under its injected fault plan. This crate executes such
//! batches across a bounded worker pool with full failure containment:
//!
//! * [`pool`] — worker threads with per-job panic isolation
//!   (`catch_unwind`), watchdog-enforced deadlines via cooperative
//!   [`spatial_core::model::CancelToken`]s, a bounded submission queue with
//!   backpressure, and deterministic load shedding past a saturation
//!   threshold;
//! * [`job`] — job specifications and the degradation ladder: checksum-
//!   verified recovery with exponential backoff and seeded jitter, then a
//!   sequential host-oracle fallback marked `Degraded` so a damaged batch
//!   still yields every answer;
//! * [`report`] — structured JSON batch reports (per-job outcome, attempts,
//!   escalation level, exact cost, detour energy, wall time; aggregate
//!   p50/p99) whose wall-clock-free canonical form is bit-deterministic;
//! * [`batch`] — jobspec parsing and end-to-end orchestration;
//! * [`mod@serve`] — the persistent daemon loop: newline-delimited JSON jobs
//!   in, one ordered result line out per job, with the pool, watchdog,
//!   shedding and degradation machinery alive across submissions;
//! * [`tenant`] — per-tenant budgets, rate-limit admission, `ModelGuard`
//!   extent caps, predictive admission policy, and deficit round-robin
//!   fair scheduling for the daemon;
//! * [`cache`] — the bounded LRU warm result cache whose hits return
//!   bit-identical canonical results to cold runs;
//! * [`journal`] — the checksum-framed write-ahead journal and atomic
//!   snapshot that make the daemon survive SIGKILL at any instant with
//!   exactly-once output;
//! * [`lines`] — the invalid-UTF-8-tolerant line reader shared by the
//!   stdin path, the socket path and the client (one implementation of
//!   the consuming-line rules, used by all three);
//! * [`net`] — the TCP front end: supervised per-connection sessions with
//!   a `hello` handshake binding a resume watermark, `ping`/`pong`
//!   heartbeats with idle timeouts, bounded output queues with slow-client
//!   disconnection, and a drain-aware accept loop;
//! * [`client`] — the resumable reconnecting client: `BackoffPolicy`-driven
//!   retry, resume-from-watermark handshakes, and duplicate/loss detection
//!   so an interrupted session still observes the exact uninterrupted
//!   stream;
//! * [`chaos_net`] — seed-deterministic transport fault injection
//!   ([`chaos_net::ChaosTransport`]): partial writes, torn lines, injected
//!   delays and mid-line disconnects for the chaos matrix;
//! * [`json`] — the in-tree JSON reader backing jobspec files (the build
//!   is hermetic: no serde).
//!
//! The determinism discipline threading through all of it: **wall-clock
//! time never influences a reported model quantity.** Deadlines cancel jobs
//! cooperatively, and a cancelled job's cost is withheld from the report
//! rather than reported at whatever value scheduling noise produced.
//!
//! ## Quick example
//!
//! ```
//! use runner::batch::{run_jobspec, Batch};
//!
//! let report = run_jobspec(
//!     r#"{"name": "demo",
//!         "config": {"workers": 2},
//!         "jobs": [{"kind": "scan", "n": 64, "seed": 7},
//!                  {"kind": "sort", "n": 64, "seed": 8}]}"#,
//! )
//! .unwrap();
//! assert_eq!(report.exit_code(false), 0);
//! assert!(report.to_json(true).contains("\"outcome\": \"ok\""));
//! ```

pub mod batch;
pub mod cache;
pub mod chaos_net;
pub mod client;
pub mod job;
pub mod journal;
pub mod json;
pub mod lines;
pub mod net;
pub mod pool;
pub mod report;
pub mod serve;
pub mod tenant;

pub use batch::{run_batch, run_jobspec, write_report, Batch, BatchConfig};
pub use cache::{CacheKey, ResultCache};
pub use chaos_net::{ChaosTransport, NetChaosPlan};
pub use client::{run_client, ClientConfig, ClientError, ClientSummary, Conn};
pub use job::{JobKind, JobResult, JobSpec, Outcome};
pub use journal::{Journal, Recovered, Snapshot};
pub use net::{
    serve_listener, spawn_listener, NetConfig, NetHandle, NetSummary, SessionEnd,
    EXIT_TRANSPORT_DISCONNECT,
};
pub use pool::{run_supervised, PoolConfig, Task, TaskOutcome};
pub use report::BatchReport;
pub use serve::{drain_requested, request_drain, serve, ServeConfig, ServeSummary};
pub use tenant::{DrrScheduler, ExtentCap, RateLimit, Submission, TenantConfig, TenantSnapshot};

use spatial_core::model::{Cost, Machine};
use spatial_core::report::Sweep;

/// Default worker count for sweeps and batches: the machine's available
/// parallelism, overridable with the `SPATIAL_JOBS` environment variable.
pub fn default_workers() -> usize {
    std::env::var("SPATIAL_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()))
}

/// Parallel drop-in for the bench harness's sequential `sweep`: measures
/// `f(n)` for each size on its own fresh [`Machine`], fanning the sizes out
/// across `workers` supervised threads, and returns the [`Sweep`] with rows
/// in size order.
///
/// Each size runs on an independent machine, so the measured costs are
/// identical to the sequential version — parallelism changes wall time
/// only. A panic inside one measurement is contained by the pool and
/// re-raised here with the offending size named, after the other sizes
/// have finished.
pub fn sweep_supervised(
    name: &str,
    workers: usize,
    sizes: &[u64],
    f: impl Fn(&mut Machine, u64) + Send + Sync,
) -> Sweep {
    let cfg = PoolConfig { workers, ..Default::default() };
    let f = &f;
    let tasks: Vec<Task<'_, Cost>> = sizes
        .iter()
        .map(|&n| Task {
            deadline_ms: None,
            run: Box::new(move |_| {
                let mut m = Machine::new();
                f(&mut m, n);
                m.report()
            }),
        })
        .collect();
    let outcomes = run_supervised(&cfg, tasks);
    let mut sweep = Sweep::new(name);
    for (&n, outcome) in sizes.iter().zip(outcomes) {
        match outcome {
            TaskOutcome::Done(cost) => sweep.push(n, cost),
            TaskOutcome::Panicked(msg) => {
                panic!("sweep {name:?}: measurement at n = {n} panicked: {msg}")
            }
            TaskOutcome::Shed => unreachable!("sweeps never enable shedding"),
        }
    }
    sweep
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_core::collectives::{place_z, scan};

    fn measure_scan(m: &mut Machine, n: u64) {
        let items = place_z(m, 0, (0..n as i64).collect());
        let _ = scan(m, 0, items, &|a, b| a + b);
    }

    #[test]
    fn parallel_sweep_matches_the_sequential_measurement() {
        let sizes = [16u64, 64, 256];
        let par = sweep_supervised("scan", 3, &sizes, measure_scan);
        for (i, &n) in sizes.iter().enumerate() {
            let mut m = Machine::new();
            measure_scan(&mut m, n);
            assert_eq!(par.points[i].cost, m.report(), "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "measurement at n = 64")]
    fn sweep_names_the_size_that_panicked() {
        sweep_supervised("bad", 2, &[16, 64], |_, n| {
            if n == 64 {
                panic!("deliberate");
            }
        });
    }
}
