//! Batch orchestration: jobspec parsing, supervised execution, report
//! output.
//!
//! A **jobspec** is a JSON document describing one batch:
//!
//! ```json
//! {
//!   "name": "smoke",
//!   "config": {
//!     "workers": 4,
//!     "queue_cap": 64,
//!     "shed_threshold": null,
//!     "deadline_ms": 2000,
//!     "best_effort": true,
//!     "backoff": {"base_ms": 5, "factor": 2, "max_ms": 200, "jitter": 0.5}
//!   },
//!   "jobs": [
//!     {"kind": "scan", "n": 1024, "seed": 7},
//!     {"kind": "sort", "n": 256, "faults": {"flaky": 0.3}, "retries": 8},
//!     {"kind": "chaos-spin", "deadline_ms": 150}
//!   ]
//! }
//! ```
//!
//! [`run_batch`] executes the jobs through the supervised pool
//! ([`crate::pool`]) and the degradation ladder ([`crate::job`]), then
//! [`write_report`] lands the JSON report under `target/spatial-bench/`
//! (override with `SPATIAL_BENCH_JSON`).

use std::time::Instant;

use spatial_core::recovery::BackoffPolicy;

use crate::job::{execute, JobResult, JobSpec};
use crate::json::Json;
use crate::pool::{run_supervised, PoolConfig, Task, TaskOutcome};
use crate::report::BatchReport;

/// Batch-wide execution policy (jobspec `config` object, overridable by
/// CLI flags).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchConfig {
    /// Worker threads.
    pub workers: usize,
    /// Submission queue bound.
    pub queue_cap: usize,
    /// Shed fraction of `queue_cap` (see [`PoolConfig::shed_threshold`]).
    pub shed_threshold: Option<f64>,
    /// Default per-job deadline applied to jobs that don't set their own.
    pub default_deadline_ms: Option<u64>,
    /// Backoff between recovery attempts.
    pub backoff: BackoffPolicy,
    /// When set, the batch process exits 0 regardless of job failures (the
    /// report still records every outcome).
    pub best_effort: bool,
    /// Default cost profile applied to jobs that don't set their own
    /// (jobspec `config.profile`, a built-in name validated at parse).
    /// `None` keeps today's raw-counter-only reports byte-identical.
    pub profile: Option<&'static str>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            workers: 4,
            queue_cap: 1024,
            shed_threshold: None,
            default_deadline_ms: None,
            backoff: BackoffPolicy::DEFAULT,
            best_effort: false,
            profile: None,
        }
    }
}

/// A parsed jobspec document.
#[derive(Clone, Debug, PartialEq)]
pub struct Batch {
    /// Batch name (report file stem).
    pub name: String,
    /// Execution policy.
    pub config: BatchConfig,
    /// The jobs, in spec order.
    pub jobs: Vec<JobSpec>,
}

impl Batch {
    /// Parses a jobspec document. Every validation failure names the job
    /// index and field; nothing executes on a malformed spec.
    pub fn parse(doc: &str) -> Result<Batch, String> {
        let v = Json::parse(doc).map_err(|e| e.to_string())?;
        let name = match v.get("name") {
            None => "batch".to_string(),
            Some(j) => j
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| "\"name\" must be a string".to_string())?,
        };
        let mut config = BatchConfig::default();
        if let Some(c) = v.get("config") {
            let u = |field: &str| -> Result<Option<u64>, String> {
                match c.get(field) {
                    None => Ok(None),
                    Some(j) if j.is_null() => Ok(None),
                    Some(j) => j
                        .as_u64()
                        .map(Some)
                        .ok_or_else(|| format!("config.{field} must be an integer or null")),
                }
            };
            if let Some(w) = u("workers")? {
                config.workers = (w as usize).max(1);
            }
            if let Some(q) = u("queue_cap")? {
                config.queue_cap = (q as usize).max(1);
            }
            config.default_deadline_ms = u("deadline_ms")?;
            config.shed_threshold = match c.get("shed_threshold") {
                None => None,
                Some(j) if j.is_null() => None,
                Some(j) => Some(
                    j.as_f64()
                        .filter(|t| (0.0..=1.0).contains(t))
                        .ok_or_else(|| "config.shed_threshold must be in [0, 1]".to_string())?,
                ),
            };
            if let Some(b) = c.get("best_effort") {
                config.best_effort =
                    b.as_bool().ok_or_else(|| "config.best_effort must be a bool".to_string())?;
            }
            config.profile = match c.get("profile") {
                None => None,
                Some(j) if j.is_null() => None,
                Some(j) => {
                    let name = j
                        .as_str()
                        .ok_or_else(|| "config.profile must be a string or null".to_string())?;
                    Some(
                        spatial_core::model::profile_by_name(name)
                            .map_err(|e| format!("config.profile: {e}"))?
                            .name(),
                    )
                }
            };
            if let Some(b) = c.get("backoff") {
                let f = |field: &str, default: f64| -> Result<f64, String> {
                    match b.get(field) {
                        None => Ok(default),
                        Some(j) => j
                            .as_f64()
                            .filter(|x| *x >= 0.0)
                            .ok_or_else(|| format!("config.backoff.{field} must be >= 0")),
                    }
                };
                config.backoff = BackoffPolicy {
                    base_ms: f("base_ms", BackoffPolicy::DEFAULT.base_ms as f64)? as u64,
                    factor: f("factor", f64::from(BackoffPolicy::DEFAULT.factor))? as u32,
                    max_ms: f("max_ms", BackoffPolicy::DEFAULT.max_ms as f64)? as u64,
                    jitter: f("jitter", BackoffPolicy::DEFAULT.jitter)?.clamp(0.0, 1.0),
                };
            }
        }
        let jobs_json = v
            .get("jobs")
            .and_then(Json::as_array)
            .ok_or_else(|| "jobspec must contain a \"jobs\" array".to_string())?;
        if jobs_json.is_empty() {
            return Err("jobspec contains no jobs".to_string());
        }
        let mut jobs = Vec::with_capacity(jobs_json.len());
        for (i, j) in jobs_json.iter().enumerate() {
            jobs.push(JobSpec::from_json(j, i)?);
        }
        // chaos-spin must have *some* deadline; the per-job parser only
        // checks the job's own field, so re-check against the batch default.
        for (i, j) in jobs.iter().enumerate() {
            if j.kind == crate::job::JobKind::ChaosSpin
                && j.deadline_ms.or(config.default_deadline_ms).is_none()
            {
                return Err(format!("job {i} ({}): chaos-spin requires a deadline", j.id));
            }
        }
        Ok(Batch { name, config, jobs })
    }
}

/// Runs a batch under full supervision and returns the report.
///
/// Wall times are measured here (per job and for the whole batch); every
/// other report field is a pure function of `(jobs, config)`.
pub fn run_batch(name: &str, config: &BatchConfig, jobs: &[JobSpec]) -> BatchReport {
    let pool = PoolConfig {
        workers: config.workers,
        queue_cap: config.queue_cap,
        shed_threshold: config.shed_threshold,
        watchdog_tick_ms: 5,
    };
    let backoff = config.backoff;
    let started = Instant::now();
    let tasks: Vec<Task<'static, JobResult>> = jobs
        .iter()
        .map(|spec| {
            let mut spec = spec.clone();
            // The batch default profile is applied at execution time, not
            // at parse time, so CLI overrides of `config.profile` reach the
            // jobs; a job's own profile always wins.
            if spec.profile.is_none() {
                spec.profile = config.profile;
            }
            let deadline = spec.deadline_ms.or(config.default_deadline_ms);
            Task {
                deadline_ms: deadline,
                run: Box::new(move |token| {
                    let t0 = Instant::now();
                    let mut r = execute(&spec, token, &backoff);
                    r.wall_ms = t0.elapsed().as_millis() as u64;
                    r
                }),
            }
        })
        .collect();
    let outcomes = run_supervised(&pool, tasks);
    let results = outcomes
        .into_iter()
        .zip(jobs)
        .map(|(o, spec)| match o {
            TaskOutcome::Done(r) => r,
            TaskOutcome::Panicked(msg) => JobResult::panicked(spec, msg),
            TaskOutcome::Shed => JobResult::shed(spec),
        })
        .collect();
    BatchReport {
        name: name.to_string(),
        workers: config.workers,
        profile: config.profile,
        jobs: results,
        wall_ms: started.elapsed().as_millis() as u64,
    }
}

/// Parses and runs a jobspec document in one call (the CLI entry point).
pub fn run_jobspec(doc: &str) -> Result<BatchReport, String> {
    let batch = Batch::parse(doc)?;
    Ok(run_batch(&batch.name, &batch.config, &batch.jobs))
}

/// Resolves the report output directory: `SPATIAL_BENCH_JSON`, else
/// `$CARGO_TARGET_DIR/spatial-bench`, else the workspace-relative
/// `target/spatial-bench` (same convention as the bench harness).
pub fn report_dir() -> std::path::PathBuf {
    std::env::var("SPATIAL_BENCH_JSON")
        .unwrap_or_else(|_| {
            std::env::var("CARGO_TARGET_DIR").map(|t| format!("{t}/spatial-bench")).unwrap_or_else(
                |_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/spatial-bench").to_string(),
            )
        })
        .into()
}

/// Writes `report` (wall times included) to
/// `<report_dir()>/batch-<name>.json` and returns the path.
pub fn write_report(report: &BatchReport) -> std::io::Result<std::path::PathBuf> {
    let dir = report_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("batch-{}.json", report.name));
    std::fs::write(&path, report.to_json(true))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobKind, Outcome};

    const SMOKE: &str = r#"{
        "name": "unit",
        "config": {"workers": 2, "deadline_ms": 5000, "backoff": {"base_ms": 0}},
        "jobs": [
            {"kind": "scan", "n": 64, "seed": 3},
            {"kind": "sort", "n": 64, "seed": 4, "array": "reversed"},
            {"kind": "chaos-panic"},
            {"kind": "select", "n": 64, "k": 10, "seed": 5}
        ]
    }"#;

    #[test]
    fn parse_reads_config_and_jobs() {
        let b = Batch::parse(SMOKE).unwrap();
        assert_eq!(b.name, "unit");
        assert_eq!(b.config.workers, 2);
        assert_eq!(b.config.default_deadline_ms, Some(5000));
        assert_eq!(b.config.backoff.base_ms, 0);
        assert_eq!(b.jobs.len(), 4);
        assert_eq!(b.jobs[2].kind, JobKind::ChaosPanic);
        assert_eq!(b.jobs[2].id, "job-2");
    }

    #[test]
    fn parse_rejects_bad_documents() {
        for (doc, needle) in [
            ("{", "JSON error"),
            (r#"{"jobs": []}"#, "no jobs"),
            (r#"{"name": 3, "jobs": [{"kind": "scan"}]}"#, "must be a string"),
            (r#"{"config": {"shed_threshold": 2.0}, "jobs": [{"kind": "scan"}]}"#, "[0, 1]"),
            (r#"{"jobs": [{"kind": "chaos-spin"}]}"#, "deadline"),
            (r#"{"config": {"deadline_ms": null}, "jobs": [{"kind": "chaos-spin"}]}"#, "deadline"),
        ] {
            let err = Batch::parse(doc).unwrap_err();
            assert!(err.contains(needle), "{doc}: {err}");
        }
        // A batch-level default deadline legitimizes chaos-spin.
        let ok = r#"{"config": {"deadline_ms": 100}, "jobs": [{"kind": "chaos-spin"}]}"#;
        assert!(Batch::parse(ok).is_ok());
    }

    #[test]
    fn batch_runs_supervised_and_classifies_outcomes() {
        let b = Batch::parse(SMOKE).unwrap();
        let report = run_batch(&b.name, &b.config, &b.jobs);
        assert_eq!(report.jobs.len(), 4);
        assert_eq!(report.jobs[0].outcome, Outcome::Ok);
        assert_eq!(report.jobs[1].outcome, Outcome::Ok);
        assert_eq!(report.jobs[2].outcome, Outcome::Panicked);
        assert!(report.jobs[2].error.as_deref().unwrap().contains("chaos-panic"));
        assert_eq!(report.jobs[3].outcome, Outcome::Ok);
        assert_eq!(report.exit_code(false), 1, "the panic decides the exit code");
        assert_eq!(report.exit_code(true), 0);
    }

    #[test]
    fn canonical_report_is_deterministic_across_runs_and_worker_counts() {
        let b = Batch::parse(SMOKE).unwrap();
        let one = run_batch(&b.name, &b.config, &b.jobs).to_json(false);
        let two = run_batch(&b.name, &b.config, &b.jobs).to_json(false);
        assert_eq!(one, two, "same config must replay bit-for-bit");
        let mut wide = b.config;
        wide.workers = 7;
        let mut report = run_batch(&b.name, &wide, &b.jobs);
        report.workers = b.config.workers;
        assert_eq!(
            one,
            report.to_json(false),
            "worker count must not leak into job results (only into the header)"
        );
    }
}
