//! Structured batch reports.
//!
//! Every batch run emits one JSON document: per-job outcome, attempts,
//! escalation level, exact model cost, detour energy and wall time, plus
//! aggregate counts and nearest-rank p50/p99 percentiles. The writer emits
//! keys in a fixed order and jobs in spec order, so **the report minus its
//! wall-time fields is a pure function of `(jobspec, seed, worker count)`**
//! — that property is what the determinism suite pins down. Pass
//! `include_wall = false` to [`BatchReport::to_json`] to get exactly that
//! timing-free canonical form.
//!
//! Checksums are written as hex strings (`"0x…"`): JSON numbers are
//! doubles, and a 64-bit FNV checksum does not survive a trip through a
//! 53-bit mantissa. Profiled energy/EDP fields are u128 and written as
//! decimal strings for the same reason.
//!
//! The profiled block is strictly **opt-in**: with no profile configured,
//! every emitted byte is identical to the pre-profile writer, which keeps
//! the pinned canonical goldens valid.

use spatial_core::model::{Cost, ProfiledCost};

use crate::job::{JobResult, Outcome};
use crate::json::escape;

/// The complete result of one batch run.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchReport {
    /// Batch name (from the jobspec, default "batch").
    pub name: String,
    /// Worker threads used.
    pub workers: usize,
    /// Batch-default cost profile, when one was configured. Controls the
    /// aggregate profile block; per-job profiled costs follow each job's
    /// own (possibly overridden) spec profile.
    pub profile: Option<&'static str>,
    /// Per-job results, in spec order.
    pub jobs: Vec<JobResult>,
    /// Total wall time of the batch, milliseconds.
    pub wall_ms: u64,
}

impl BatchReport {
    /// Count of jobs with the given outcome.
    pub fn count(&self, o: Outcome) -> usize {
        self.jobs.iter().filter(|j| j.outcome == o).count()
    }

    /// The process exit code this batch maps to: the first non-ok job in
    /// spec order decides (see [`Outcome::exit_code`]: degraded → 8,
    /// panicked → 1, deadline → 9, shed → 10, over-budget → 12); an all-ok
    /// batch — or any batch under `best_effort` — exits 0.
    pub fn exit_code(&self, best_effort: bool) -> i32 {
        if best_effort {
            return 0;
        }
        self.jobs.iter().map(|j| j.outcome.exit_code()).find(|&c| c != 0).unwrap_or(0)
    }

    /// Serializes the report. With `include_wall = false` every
    /// wall-clock-derived field is omitted and the output is
    /// bit-deterministic for a fixed `(jobspec, seed, workers)`.
    pub fn to_json(&self, include_wall: bool) -> String {
        let mut s = String::with_capacity(256 + self.jobs.len() * 256);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"spatial-batch-report/v1\",\n");
        s.push_str(&format!("  \"name\": \"{}\",\n", escape(&self.name)));
        s.push_str(&format!("  \"workers\": {},\n", self.workers));
        if let Some(p) = self.profile {
            s.push_str(&format!("  \"profile\": \"{p}\",\n"));
        }
        if include_wall {
            s.push_str(&format!("  \"wall_ms\": {},\n", self.wall_ms));
        }
        s.push_str("  \"jobs\": [\n");
        for (i, j) in self.jobs.iter().enumerate() {
            s.push_str(&job_json(j, include_wall));
            s.push_str(if i + 1 < self.jobs.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n");
        s.push_str(&self.aggregate_json(include_wall));
        s.push_str("}\n");
        s
    }

    fn aggregate_json(&self, include_wall: bool) -> String {
        let energies: Vec<u64> =
            self.jobs.iter().filter_map(|j| j.cost.map(|c| c.energy)).collect();
        let walls: Vec<u64> = self.jobs.iter().map(|j| j.wall_ms).collect();
        let attempts: u32 = self.jobs.iter().map(|j| j.attempts).sum();
        let energy_total: u64 = energies.iter().sum();
        let detour_total: u64 = self.jobs.iter().map(|j| j.detour_energy).sum();
        let backoff_total: u64 = self.jobs.iter().map(|j| j.backoff_ms).sum();
        let mut s = String::new();
        s.push_str("  \"aggregate\": {\n");
        s.push_str(&format!("    \"total\": {},\n", self.jobs.len()));
        for o in Outcome::ALL {
            s.push_str(&format!("    \"{}\": {},\n", o.label(), self.count(o)));
        }
        s.push_str(&format!("    \"attempts\": {attempts},\n"));
        s.push_str(&format!("    \"energy_total\": {energy_total},\n"));
        s.push_str(&format!("    \"detour_energy_total\": {detour_total},\n"));
        s.push_str(&format!("    \"backoff_ms_total\": {backoff_total},\n"));
        s.push_str(&format!("    \"energy_p50\": {},\n", json_opt(percentile(&energies, 50))));
        if self.profile.is_some() {
            // Energy is additive across jobs (each pJ total is linear in the
            // summed counters); EDP is not, so `edp_total` is the plain sum
            // of per-job EDPs — a workload figure of merit, not a physical
            // quantity of the union run.
            let total_pj: u128 =
                self.jobs.iter().filter_map(|j| j.profiled.as_ref()).fold(0u128, |a, p| {
                    a.saturating_add(p.total_pj)
                });
            let edp_total: u128 = self
                .jobs
                .iter()
                .filter_map(|j| j.profiled.as_ref())
                .fold(0u128, |a, p| a.saturating_add(p.edp));
            s.push_str(&format!("    \"total_pj\": \"{total_pj}\",\n"));
            s.push_str(&format!("    \"edp_total\": \"{edp_total}\",\n"));
        }
        s.push_str(&format!("    \"energy_p99\": {}", json_opt(percentile(&energies, 99))));
        if include_wall {
            s.push_str(&format!(",\n    \"wall_ms_p50\": {}", json_opt(percentile(&walls, 50))));
            s.push_str(&format!(",\n    \"wall_ms_p99\": {}", json_opt(percentile(&walls, 99))));
            let messages: u64 = self.jobs.iter().filter_map(|j| j.cost.map(|c| c.messages)).sum();
            let busy: u64 = self.jobs.iter().filter(|j| j.cost.is_some()).map(|j| j.wall_ms).sum();
            s.push_str(&format!(
                ",\n    \"msgs_per_sec\": {}\n",
                json_opt(msgs_per_sec(messages, busy))
            ));
        } else {
            s.push('\n');
        }
        s.push_str("  }\n");
        s
    }
}

fn job_json(j: &JobResult, include_wall: bool) -> String {
    let mut s = String::new();
    s.push_str("    {\n");
    s.push_str(&format!("      \"id\": \"{}\",\n", escape(&j.id)));
    s.push_str(&format!("      \"kind\": \"{}\",\n", j.kind.label()));
    s.push_str(&format!("      \"outcome\": \"{}\",\n", j.outcome.label()));
    s.push_str(&format!("      \"attempts\": {},\n", j.attempts));
    s.push_str(&format!("      \"escalation\": {},\n", j.escalation));
    match j.cost {
        Some(c) => s.push_str(&format!("      \"cost\": {},\n", cost_json(c))),
        None => s.push_str("      \"cost\": null,\n"),
    }
    if let Some(p) = &j.profiled {
        s.push_str(&format!("      \"profiled\": {},\n", profiled_json(p)));
    }
    s.push_str(&format!("      \"detour_energy\": {},\n", j.detour_energy));
    s.push_str(&format!("      \"backoff_ms\": {},\n", j.backoff_ms));
    match j.checksum {
        Some(c) => s.push_str(&format!("      \"checksum\": \"0x{c:016x}\",\n")),
        None => s.push_str("      \"checksum\": null,\n"),
    }
    match &j.error {
        Some(e) => s.push_str(&format!("      \"error\": \"{}\"", escape(e))),
        None => s.push_str("      \"error\": null"),
    }
    if include_wall {
        s.push_str(&format!(",\n      \"wall_ms\": {},\n", j.wall_ms));
        // Simulator throughput on this job — wall-derived, so it lives
        // outside the canonical (bit-deterministic) form.
        let rate = j.cost.and_then(|c| msgs_per_sec(c.messages, j.wall_ms));
        s.push_str(&format!("      \"msgs_per_sec\": {}\n", json_opt(rate)));
    } else {
        s.push('\n');
    }
    s.push_str("    }");
    s
}

pub(crate) fn cost_json(c: Cost) -> String {
    format!(
        "{{\"energy\": {}, \"depth\": {}, \"distance\": {}, \"messages\": {}}}",
        c.energy, c.depth, c.distance, c.messages
    )
}

/// Serializes a profiled cost. The u128 fields are decimal **strings**:
/// worst-case EDP far exceeds the 53-bit mantissa of a JSON double, and a
/// round-trip through one must not silently change a deterministic value.
pub(crate) fn profiled_json(p: &ProfiledCost) -> String {
    format!(
        "{{\"profile\": \"{}\", \"hop_pj\": \"{}\", \"op_pj\": \"{}\", \
         \"occupancy_pj\": \"{}\", \"total_pj\": \"{}\", \"delay_cycles\": \"{}\", \
         \"edp\": \"{}\"}}",
        p.profile, p.hop_pj, p.op_pj, p.occupancy_pj, p.total_pj, p.delay_cycles, p.edp
    )
}

fn json_opt(v: Option<u64>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "null".into())
}

/// Simulated messages per wall-clock second; `None` when the interval is too
/// short to measure (sub-millisecond jobs round to 0 ms).
fn msgs_per_sec(messages: u64, wall_ms: u64) -> Option<u64> {
    if wall_ms == 0 {
        return None;
    }
    Some(messages.saturating_mul(1000) / wall_ms)
}

/// Nearest-rank percentile (`p` in 0..=100) of `values`; `None` on empty
/// input.
pub fn percentile(values: &[u64], p: u32) -> Option<u64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((u64::from(p) * sorted.len() as u64).div_ceil(100)).max(1) as usize;
    Some(sorted[rank.min(sorted.len()) - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobKind, JobSpec};
    use crate::json::Json;

    fn sample_report() -> BatchReport {
        let spec = JobSpec::new("a", JobKind::Scan);
        let mut ok = JobResult::shed(&spec);
        ok.outcome = Outcome::Ok;
        ok.attempts = 1;
        ok.cost = Some(Cost { energy: 100, depth: 5, distance: 9, messages: 40 });
        ok.checksum = Some(0xDEAD_BEEF);
        ok.error = None;
        ok.wall_ms = 17;
        let shed = JobResult::shed(&JobSpec::new("b", JobKind::Sort));
        BatchReport { name: "t".into(), workers: 2, profile: None, jobs: vec![ok, shed], wall_ms: 99 }
    }

    #[test]
    fn profiled_fields_are_opt_in_and_stringly_precise() {
        use spatial_core::model::{profile_by_name, CostProfile, WseLike};

        let mut r = sample_report();
        // Default report: no profile key anywhere — byte-compatible with the
        // pre-profile writer (the canonical goldens rely on this).
        assert!(!r.to_json(false).contains("profile"));

        let p = profile_by_name("wse-like").unwrap();
        r.profile = Some(p.name());
        r.jobs[0].profiled = Some(p.charge(r.jobs[0].cost.unwrap()).unwrap());
        let doc = Json::parse(&r.to_json(false)).expect("profiled report is valid JSON");
        assert_eq!(doc.get("profile").and_then(Json::as_str), Some("wse-like"));
        let jobs = doc.get("jobs").and_then(Json::as_array).unwrap();
        let pj = jobs[0].get("profiled").unwrap();
        // cost = {energy: 100, depth: 5, distance: 9, messages: 40} under
        // wse-like (1, 2, 1, 1, 1): hop 100, op 80, occupancy 140 → 320 pJ;
        // delay 9 + 5 = 14 cycles; EDP 4480.
        let w = WseLike.weights();
        assert_eq!((w.pj_per_hop, w.pj_per_op, w.pj_per_word_hop), (1, 2, 1));
        assert_eq!(pj.get("total_pj").and_then(Json::as_str), Some("320"));
        assert_eq!(pj.get("delay_cycles").and_then(Json::as_str), Some("14"));
        assert_eq!(pj.get("edp").and_then(Json::as_str), Some("4480"));
        assert!(jobs[1].get("profiled").is_none(), "shed job has no cost to charge");
        let agg = doc.get("aggregate").unwrap();
        assert_eq!(agg.get("total_pj").and_then(Json::as_str), Some("320"));
        assert_eq!(agg.get("edp_total").and_then(Json::as_str), Some("4480"));
    }

    #[test]
    fn report_parses_with_and_without_wall_fields() {
        let r = sample_report();
        for include_wall in [true, false] {
            let doc = Json::parse(&r.to_json(include_wall)).expect("writer emits valid JSON");
            assert_eq!(doc.get("schema").and_then(Json::as_str), Some("spatial-batch-report/v1"));
            let jobs = doc.get("jobs").and_then(Json::as_array).unwrap();
            assert_eq!(jobs.len(), 2);
            assert_eq!(jobs[0].get("outcome").and_then(Json::as_str), Some("ok"));
            assert_eq!(jobs[0].get("checksum").and_then(Json::as_str), Some("0x00000000deadbeef"));
            assert_eq!(jobs[1].get("outcome").and_then(Json::as_str), Some("shed"));
            assert!(jobs[1].get("cost").unwrap().is_null());
            let agg = doc.get("aggregate").unwrap();
            assert_eq!(agg.get("total").and_then(Json::as_u64), Some(2));
            assert_eq!(agg.get("ok").and_then(Json::as_u64), Some(1));
            assert_eq!(agg.get("shed").and_then(Json::as_u64), Some(1));
            assert_eq!(agg.get("energy_p50").and_then(Json::as_u64), Some(100));
            assert_eq!(doc.get("wall_ms").is_some(), include_wall);
            assert_eq!(jobs[0].get("wall_ms").is_some(), include_wall);
            assert_eq!(agg.get("wall_ms_p50").is_some(), include_wall);
            // Throughput is wall-derived and only present alongside wall_ms.
            assert_eq!(jobs[0].get("msgs_per_sec").is_some(), include_wall);
            assert_eq!(agg.get("msgs_per_sec").is_some(), include_wall);
            if include_wall {
                // 40 messages over 17 ms → 2352 msgs/sec (integer floor).
                assert_eq!(jobs[0].get("msgs_per_sec").and_then(Json::as_u64), Some(2352));
                assert!(jobs[1].get("msgs_per_sec").unwrap().is_null(), "shed job has no cost");
                assert_eq!(agg.get("msgs_per_sec").and_then(Json::as_u64), Some(2352));
            }
        }
    }

    #[test]
    fn canonical_form_is_independent_of_wall_times() {
        let mut a = sample_report();
        let mut b = sample_report();
        a.wall_ms = 1;
        b.wall_ms = 100_000;
        a.jobs[0].wall_ms = 3;
        b.jobs[0].wall_ms = 999;
        assert_eq!(a.to_json(false), b.to_json(false));
        assert_ne!(a.to_json(true), b.to_json(true));
    }

    #[test]
    fn exit_code_picks_the_first_failure_in_spec_order() {
        let mut r = sample_report();
        assert_eq!(r.exit_code(false), 10, "job b is shed");
        r.jobs[1].outcome = Outcome::DeadlineExceeded;
        assert_eq!(r.exit_code(false), 9);
        r.jobs[0].outcome = Outcome::Degraded;
        assert_eq!(r.exit_code(false), 8, "earlier job wins");
        r.jobs[0].outcome = Outcome::Panicked;
        assert_eq!(r.exit_code(false), 1);
        assert_eq!(r.exit_code(true), 0, "--best-effort always exits 0");
        r.jobs[0].outcome = Outcome::Ok;
        r.jobs[1].outcome = Outcome::Ok;
        assert_eq!(r.exit_code(false), 0);
    }

    #[test]
    fn nearest_rank_percentiles() {
        assert_eq!(percentile(&[], 50), None);
        assert_eq!(percentile(&[7], 50), Some(7));
        assert_eq!(percentile(&[1, 2, 3, 4], 50), Some(2));
        assert_eq!(percentile(&[1, 2, 3, 4], 99), Some(4));
        assert_eq!(percentile(&[4, 1, 3, 2], 25), Some(1), "unsorted input is sorted first");
        let hundred: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&hundred, 50), Some(50));
        assert_eq!(percentile(&hundred, 99), Some(99));
    }
}
