//! The resumable reconnecting client for the TCP serve daemon: the other
//! half of the exactly-once contract the journal makes.
//!
//! The protocol is deliberately dumb on the wire and careful at the edges.
//! Each connection attempt:
//!
//! 1. sends `{"op": "hello", "resume_from": N}` where `N` is the number of
//!    complete result lines observed so far (the watermark);
//! 2. restreams the **full input** — the daemon dedupes the journaled
//!    prefix, so restreaming is idempotent and the client needs no
//!    bookkeeping about which inputs "went through";
//! 3. half-closes the write side ([`Conn::done_writing`]) so the daemon
//!    sees clean EOF when it has consumed everything;
//! 4. reads result lines, discarding transport noise (heartbeat pings,
//!    the hello ack) and **torn tails** (bytes with no trailing newline —
//!    a cut connection must not count a half line as received).
//!
//! A transport error or short session triggers a reconnect under
//! [`BackoffPolicy`]-scheduled, seed-deterministic delays; the next hello
//! carries the advanced watermark, so the daemon redelivers exactly the
//! journaled lines the client is missing. The concatenation of observed
//! lines across however many sessions it took is therefore byte-identical
//! to one uninterrupted run — and [`run_client`] *checks* that: more lines
//! than the input calls for is duplicate delivery and fails fast rather
//! than corrupting downstream consumers.

use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;

use spatial_core::recovery::BackoffPolicy;

use crate::json::Json;
use crate::lines;

/// A client-side connection: bidirectional I/O plus half-close, so the
/// daemon can tell "input finished" from "client died". Implemented for
/// [`TcpStream`] and for chaos-wrapped streams in tests.
pub trait Conn: Read + Write + Send {
    /// Close the write half; reads stay open for the tail of the results.
    fn done_writing(&mut self) -> io::Result<()>;
}

impl Conn for TcpStream {
    fn done_writing(&mut self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Write)
    }
}

impl<T: Read + Write + Send> Conn for crate::chaos_net::ChaosTransport<T>
where
    T: Conn,
{
    fn done_writing(&mut self) -> io::Result<()> {
        // Half-close is control-plane, not payload: it doesn't count
        // toward the chaos byte budget, but a transport already cut stays
        // cut.
        if self.is_cut() {
            return Err(io::Error::new(io::ErrorKind::ConnectionReset, "chaos: connection cut"));
        }
        self.get_mut().done_writing()
    }
}

/// Reconnection policy.
#[derive(Clone, Debug, PartialEq)]
pub struct ClientConfig {
    /// Delay schedule between reconnect attempts.
    pub backoff: BackoffPolicy,
    /// Seed for the backoff jitter (deterministic per seed).
    pub seed: u64,
    /// Reconnect attempts after the first connection (0 = no retry).
    pub max_reconnects: u32,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig { backoff: BackoffPolicy::DEFAULT, seed: 0, max_reconnects: 8 }
    }
}

/// What a completed client run observed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClientSummary {
    /// Result lines, in order — byte-identical to an uninterrupted run.
    pub observed: Vec<String>,
    /// Reconnections that were needed (0 = first connection sufficed).
    pub reconnects: u32,
    /// Heartbeat pings filtered out of the stream.
    pub pings: u64,
}

/// Why a client run failed. Every variant maps to
/// [`crate::net::EXIT_TRANSPORT_DISCONNECT`] at the CLI.
#[derive(Debug)]
pub enum ClientError {
    /// Retries exhausted without observing the full result stream.
    Exhausted { attempts: u32, observed: usize, expected: usize, last: io::Error },
    /// The daemon rejected the handshake (`"ok": false` ack).
    Rejected(String),
    /// The daemon delivered more result lines than the input calls for —
    /// the exactly-once contract is broken; do not paper over it.
    DuplicateDelivery { observed: usize, expected: usize },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted { attempts, observed, expected, last } => write!(
                f,
                "gave up after {attempts} attempt(s) with {observed}/{expected} \
                 result lines (last error: {last})"
            ),
            ClientError::Rejected(msg) => write!(f, "handshake rejected: {msg}"),
            ClientError::DuplicateDelivery { observed, expected } => write!(
                f,
                "duplicate delivery: observed {observed} result lines for an input \
                 with {expected} consuming lines"
            ),
        }
    }
}

impl std::error::Error for ClientError {}

/// One session's verdict, fed back into the reconnect loop.
enum Session {
    /// All expected lines observed; done.
    Complete,
    /// Clean EOF but lines are still missing (daemon drained mid-stream,
    /// or the connection died quietly); reconnect.
    Short,
    /// Transport error; reconnect.
    Torn(io::Error),
}

/// Streams `input` to a daemon reached through `dial`, reconnecting and
/// resuming until every expected result line has been observed. `dial` is
/// called per attempt (attempt number passed for logging/chaos plans) —
/// tests hand back chaos-wrapped connections, `main` hands back plain
/// `TcpStream`s. Reconnect progress is narrated to `log` (stderr in the
/// CLI), never stdout: stdout is the result stream.
pub fn run_client(
    input: &str,
    mut dial: impl FnMut(u32) -> io::Result<Box<dyn Conn>>,
    cfg: &ClientConfig,
    log: &mut dyn Write,
) -> Result<ClientSummary, ClientError> {
    let expected = lines::count_consuming(input);
    let mut summary = ClientSummary::default();
    let mut attempt: u32 = 0;
    loop {
        if attempt > 0 {
            summary.reconnects = attempt;
            let delay = cfg.backoff.delay_ms(cfg.seed, attempt);
            let _ = writeln!(
                log,
                "client: reconnect attempt {attempt} after {delay} ms \
                 (watermark {}/{expected})",
                summary.observed.len()
            );
            std::thread::sleep(std::time::Duration::from_millis(delay));
        }
        let err = match dial(attempt) {
            Err(e) => e,
            Ok(conn) => match run_session(conn, input, expected, &mut summary)? {
                Session::Complete => return Ok(summary),
                Session::Short => io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!(
                        "session ended with {}/{} result lines",
                        summary.observed.len(),
                        expected
                    ),
                ),
                Session::Torn(e) => e,
            },
        };
        if attempt >= cfg.max_reconnects {
            return Err(ClientError::Exhausted {
                attempts: attempt + 1,
                observed: summary.observed.len(),
                expected,
                last: err,
            });
        }
        attempt += 1;
    }
}

/// Runs one connection: hello, restream, half-close, read. Fatal protocol
/// violations (rejection, duplicates) return `Err` and end the whole run;
/// transport trouble returns `Ok(Torn)` and the caller reconnects.
fn run_session(
    mut conn: Box<dyn Conn>,
    input: &str,
    expected: usize,
    summary: &mut ClientSummary,
) -> Result<Session, ClientError> {
    let watermark = summary.observed.len();
    let hello = format!("{{\"op\": \"hello\", \"resume_from\": {watermark}}}\n");
    if let Err(e) = conn
        .write_all(hello.as_bytes())
        .and_then(|()| conn.write_all(input.as_bytes()))
        .and_then(|()| {
            if input.ends_with('\n') || input.is_empty() {
                Ok(())
            } else {
                conn.write_all(b"\n")
            }
        })
        .and_then(|()| conn.flush())
        .and_then(|()| conn.done_writing())
    {
        // The daemon may still have results for what did arrive; fall
        // through to the read phase only if the failure was past the
        // handshake — simplest correct rule: treat any write failure as a
        // torn session and reconnect (the watermark protects us).
        return Ok(Session::Torn(e));
    }

    let mut reader = BufReader::new(conn);
    let mut buf = Vec::new();
    loop {
        match lines::read_raw_line(&mut reader, &mut buf) {
            Err(e) => return Ok(Session::Torn(e)),
            Ok(0) => {
                return Ok(if summary.observed.len() == expected {
                    Session::Complete
                } else {
                    Session::Short
                });
            }
            Ok(_) => {
                if !lines::is_complete(&buf) {
                    // Torn tail: never count a half line. EOF follows.
                    continue;
                }
                let line = String::from_utf8_lossy(&buf);
                let line = line.trim_end_matches(['\n', '\r']);
                match classify(line) {
                    Observed::Ping => summary.pings += 1,
                    Observed::HelloOk => {}
                    Observed::HelloRejected(msg) => return Err(ClientError::Rejected(msg)),
                    Observed::Result => {
                        if summary.observed.len() >= expected {
                            return Err(ClientError::DuplicateDelivery {
                                observed: summary.observed.len() + 1,
                                expected,
                            });
                        }
                        summary.observed.push(line.to_string());
                    }
                }
            }
        }
    }
}

enum Observed {
    Ping,
    HelloOk,
    HelloRejected(String),
    Result,
}

/// Sorts a received line into transport noise vs. payload. Unparseable
/// lines count as payload: the daemon only emits valid JSON, so whatever
/// arrived is the stream the caller asked to observe.
fn classify(line: &str) -> Observed {
    let Ok(v) = Json::parse(line) else { return Observed::Result };
    match v.get("schema").and_then(Json::as_str) {
        Some("spatial-serve-ping/v1") => Observed::Ping,
        Some("spatial-serve-hello/v1") => {
            if v.get("ok").and_then(Json::as_bool) == Some(true) {
                Observed::HelloOk
            } else {
                let msg = v
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("daemon said no, without a reason")
                    .to_string();
                Observed::HelloRejected(msg)
            }
        }
        _ => Observed::Result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_separates_noise_from_payload() {
        assert!(matches!(
            classify(r#"{"schema": "spatial-serve-ping/v1", "nonce": 3}"#),
            Observed::Ping
        ));
        assert!(matches!(
            classify(r#"{"schema": "spatial-serve-hello/v1", "ok": true, "error": null}"#),
            Observed::HelloOk
        ));
        let rejected =
            classify(r#"{"schema": "spatial-serve-hello/v1", "ok": false, "error": "nope"}"#);
        match rejected {
            Observed::HelloRejected(msg) => assert_eq!(msg, "nope"),
            _ => panic!("rejection not classified"),
        }
        assert!(matches!(
            classify(r#"{"schema": "spatial-batch-report/v1", "seq": 0}"#),
            Observed::Result
        ));
        assert!(matches!(classify("garbage"), Observed::Result));
    }

    #[test]
    fn dial_failures_are_retried_then_reported() {
        let cfg = ClientConfig { backoff: BackoffPolicy::NONE, seed: 1, max_reconnects: 2 };
        let mut calls = 0u32;
        let mut log = Vec::new();
        let err = run_client(
            "{\"kind\": \"scan\", \"n\": 16, \"seed\": 1}\n",
            |_attempt| {
                calls += 1;
                Err(io::Error::new(io::ErrorKind::ConnectionRefused, "nobody home"))
            },
            &cfg,
            &mut log,
        )
        .unwrap_err();
        assert_eq!(calls, 3, "initial attempt + 2 reconnects");
        match err {
            ClientError::Exhausted { attempts, observed, expected, .. } => {
                assert_eq!((attempts, observed, expected), (3, 0, 1));
            }
            other => panic!("wrong error: {other}"),
        }
        let log = String::from_utf8(log).unwrap();
        assert!(log.contains("reconnect attempt 1"), "{log}");
    }
}
