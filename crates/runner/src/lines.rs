//! The invalid-UTF-8-tolerant line reader shared by every transport.
//!
//! The serve protocol is newline-delimited, but its inputs are hostile:
//! clients (and fuzzers) send invalid UTF-8, half-lines, and torn streams.
//! The rules for turning raw bytes into *consuming* protocol lines live
//! here, in exactly one place, so the stdin path ([`crate::serve`]), the
//! socket path ([`crate::net`]), and the reconnecting client
//! ([`crate::client`]) cannot drift apart:
//!
//! * a line is read with `read_until(b'\n')`, never `lines()`, so invalid
//!   UTF-8 is decoded lossily instead of erroring the whole stream;
//! * `ErrorKind::Interrupted` reads are retried transparently;
//! * blank lines and `#` comments are skipped without producing output;
//! * `{"op": "pong"}` heartbeat replies are transport-level noise: they are
//!   answered to nobody and consume no sequence number, so an interactive
//!   session's canonical output stays a pure function of its *consuming*
//!   lines whatever the heartbeat traffic looked like.

use std::io::{self, BufRead};

/// Reads one raw line (including the trailing `\n`, if one was read) into
/// `buf`, retrying interrupted reads. Returns the byte count; 0 is EOF.
/// `buf` is cleared first.
pub fn read_raw_line<R: BufRead>(input: &mut R, buf: &mut Vec<u8>) -> io::Result<usize> {
    buf.clear();
    loop {
        match input.read_until(b'\n', buf) {
            Ok(n) => return Ok(n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// Whether `buf` holds a *complete* line (the trailing newline made it
/// through the transport). A torn tail — bytes with no `\n`, as left by a
/// connection cut mid-line — must be discarded by resumable readers, never
/// acted on.
pub fn is_complete(buf: &[u8]) -> bool {
    buf.last() == Some(&b'\n')
}

/// Decodes one raw line and classifies it: `Some(trimmed)` for a consuming
/// protocol line, `None` for a blank line or `#` comment. Invalid UTF-8 is
/// decoded lossily (the replacement character participates in the line like
/// any other garbage byte and produces a parse-error reply downstream).
pub fn consuming(buf: &[u8]) -> Option<String> {
    let lossy = String::from_utf8_lossy(buf);
    let trimmed = lossy.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        None
    } else {
        Some(trimmed.to_string())
    }
}

/// Whether a consuming line is a `pong` heartbeat reply — transport-level
/// noise that consumes no sequence number. The check is deliberately cheap
/// for the overwhelmingly common case (no `pong` substring at all) and only
/// then parses.
pub fn is_pong(trimmed: &str) -> bool {
    trimmed.contains("pong")
        && crate::json::Json::parse(trimmed)
            .ok()
            .and_then(|v| v.get("op").and_then(|op| op.as_str().map(|s| s == "pong")))
            .unwrap_or(false)
}

/// Counts the consuming lines of `text` — the number of reply lines a
/// client must observe for this input. This is the client-side mirror of
/// the serve reader's accounting, built from the same primitives.
pub fn count_consuming(text: &str) -> usize {
    text.split_inclusive('\n')
        .filter(|l| consuming(l.as_bytes()).is_some_and(|t| !is_pong(&t)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consuming_skips_blanks_comments_and_tolerates_bad_utf8() {
        assert_eq!(consuming(b"\n"), None);
        assert_eq!(consuming(b"   \n"), None);
        assert_eq!(consuming(b"# comment\n"), None);
        assert_eq!(consuming(b"  {\"op\": \"stats\"}  \n"), Some("{\"op\": \"stats\"}".into()));
        let garbled = consuming(b"\xff\xfe junk\n").expect("garbage still consumes");
        assert!(garbled.contains("junk"));
    }

    #[test]
    fn pong_detection_is_exact_not_substring() {
        assert!(is_pong(r#"{"op": "pong"}"#));
        assert!(is_pong(r#"{"op": "pong", "nonce": 3}"#));
        assert!(!is_pong(r#"{"op": "ping-pong-table"}"#));
        assert!(!is_pong(r#"{"id": "pong"}"#));
        assert!(!is_pong("pong"));
    }

    #[test]
    fn count_consuming_matches_the_reader_rules() {
        let text =
            "# header\n\n{\"kind\": \"scan\"}\n{\"op\": \"pong\"}\n  \n{\"op\": \"stats\"}\n";
        assert_eq!(count_consuming(text), 2);
    }

    #[test]
    fn torn_tails_are_flagged_incomplete() {
        assert!(is_complete(b"whole line\n"));
        assert!(!is_complete(b"torn"));
        assert!(!is_complete(b""));
    }
}
