//! Warm result cache for the serve daemon.
//!
//! Model costs are fully deterministic: a job's `Cost` tuple, attempt
//! count, scheduled backoff, and checksum are pure functions of the inputs
//! that reach the simulator. The cache key is exactly that input set —
//! primitive, size, seed, input family, `k`, fault fractions, effective
//! budget, and retry cap — and **not** the job id or deadline: the id is
//! presentation, and deadlines only matter via wall-clock cancellation,
//! which is never cached (see below). Hits therefore return bit-identical
//! canonical results to cold runs, which `tests/determinism.rs` pins.
//!
//! Only [`Outcome::Ok`] and [`Outcome::Degraded`] results are cached: both
//! are deterministic endpoints of the ladder. Panics, deadline
//! cancellations, sheds, and over-budget rejections are either
//! timing-dependent or cheaper to re-derive than to cache.

use std::collections::HashMap;

use crate::job::{JobResult, JobSpec, Outcome};

/// The deterministic identity of a job execution.
///
/// Fields are crate-visible so the journal module can serialize keys into
/// the snapshot and reconstruct them on recovery.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub(crate) kind: &'static str,
    pub(crate) n: u64,
    pub(crate) seed: u64,
    pub(crate) array: &'static str,
    pub(crate) k: u64,
    /// Fault fractions as IEEE-754 bits (f64 is not `Hash`; the bits are).
    pub(crate) faults: [u64; 3],
    /// The budget actually armed on the guard — for tenants this is
    /// `min(job budget, tenant remaining)`, so two submissions of the same
    /// spec under different remaining budgets are distinct executions.
    pub(crate) budget: Option<u64>,
    pub(crate) retries: u32,
    /// Cost profile the result was charged under. Profiles are pure
    /// accounting over identical raw counters, but the cached [`JobResult`]
    /// embeds the profiled block, so results charged under different
    /// profiles are distinct cache entries.
    pub(crate) profile: Option<&'static str>,
}

impl CacheKey {
    /// Key for `spec` as executed with `effective_budget` armed.
    pub fn of(spec: &JobSpec, effective_budget: Option<u64>) -> CacheKey {
        CacheKey {
            kind: spec.kind.label(),
            n: spec.n,
            seed: spec.seed,
            array: spec.array.label(),
            k: spec.k,
            faults: [
                spec.faults.dead_rows.to_bits(),
                spec.faults.degraded_rows.to_bits(),
                spec.faults.flaky.to_bits(),
            ],
            budget: effective_budget,
            retries: spec.retries,
            profile: spec.profile,
        }
    }
}

/// Result cache with hit/miss telemetry and a bounded LRU footprint.
///
/// Entries carry a logical access tick; at capacity, the entry with the
/// smallest tick (least recently used) is evicted. Ticks advance only on
/// cache operations, never on wall clock, so eviction order is a pure
/// function of the operation sequence — a long-lived daemon's cache content
/// is deterministic and snapshot-restorable in LRU order. Eviction can only
/// turn would-be hits into recomputations of bit-identical results, so
/// canonical output bytes are capacity-invariant.
pub struct ResultCache {
    map: HashMap<CacheKey, (JobResult, u64)>,
    /// Maximum entries; 0 disables caching entirely.
    capacity: usize,
    /// Logical clock: bumped by every lookup hit and insert.
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Default for ResultCache {
    fn default() -> ResultCache {
        ResultCache::new()
    }
}

impl ResultCache {
    /// An empty unbounded cache (batch runs: the job list is finite).
    pub fn new() -> ResultCache {
        ResultCache::with_capacity(usize::MAX)
    }

    /// An empty cache holding at most `capacity` entries. Capacity 0
    /// disables caching: every lookup misses and inserts are dropped.
    pub fn with_capacity(capacity: usize) -> ResultCache {
        ResultCache { map: HashMap::new(), capacity, tick: 0, hits: 0, misses: 0 }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`; a hit returns the stored result re-labelled with
    /// `id` (the id is the only presentation field in a [`JobResult`]) and
    /// refreshes the entry's recency.
    pub fn lookup(&mut self, key: &CacheKey, id: &str) -> Option<JobResult> {
        match self.map.get_mut(key) {
            Some((r, tick)) => {
                self.hits += 1;
                self.tick += 1;
                *tick = self.tick;
                Some(JobResult { id: id.to_string(), ..r.clone() })
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores `result` if its outcome is cacheable (Ok or Degraded),
    /// evicting the least recently used entry when at capacity. The wall
    /// time is zeroed: it belongs to the original run, not to hits.
    pub fn insert(&mut self, key: CacheKey, result: &JobResult) {
        if self.capacity == 0 || !matches!(result.outcome, Outcome::Ok | Outcome::Degraded) {
            return;
        }
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, (_, tick))| *tick).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.tick += 1;
        self.map.insert(key, (JobResult { wall_ms: 0, ..result.clone() }, self.tick));
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Cached entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The entries in LRU order (least recently used first) — the snapshot
    /// serialization order, chosen so re-insertion on restore reproduces
    /// the same eviction order.
    pub fn export(&self) -> Vec<(CacheKey, JobResult)> {
        let mut entries: Vec<_> = self.map.iter().collect();
        entries.sort_by_key(|(_, (_, tick))| *tick);
        entries.into_iter().map(|(k, (r, _))| (k.clone(), r.clone())).collect()
    }

    /// Rehydrates entries exported by [`ResultCache::export`], preserving
    /// their relative recency. Entries beyond capacity evict oldest-first,
    /// exactly as live inserts would have.
    pub fn import(&mut self, entries: Vec<(CacheKey, JobResult)>) {
        for (key, result) in entries {
            self.insert(key, &result);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{execute, JobKind};
    use spatial_core::model::CancelToken;
    use spatial_core::recovery::BackoffPolicy;

    fn run(spec: &JobSpec) -> JobResult {
        execute(spec, &CancelToken::new(), &BackoffPolicy::NONE)
    }

    #[test]
    fn hit_returns_bit_identical_result_with_new_id() {
        let mut spec = JobSpec::new("cold", JobKind::Sort);
        spec.n = 64;
        let cold = run(&spec);
        let mut cache = ResultCache::new();
        let key = CacheKey::of(&spec, spec.budget);
        assert!(cache.lookup(&key, "cold").is_none());
        cache.insert(key.clone(), &cold);
        let warm = cache.lookup(&key, "warm").expect("hit");
        assert_eq!(warm.id, "warm");
        assert_eq!(JobResult { id: cold.id.clone(), ..warm }, cold, "only the id may differ");
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn key_ignores_id_and_deadline_but_not_budget() {
        let mut a = JobSpec::new("a", JobKind::Scan);
        a.deadline_ms = Some(100);
        let mut b = JobSpec::new("b", JobKind::Scan);
        b.deadline_ms = Some(9999);
        assert_eq!(CacheKey::of(&a, None), CacheKey::of(&b, None));
        assert_ne!(CacheKey::of(&a, None), CacheKey::of(&a, Some(1_000_000)));
        let mut c = a.clone();
        c.faults.flaky = 0.25;
        assert_ne!(CacheKey::of(&a, None), CacheKey::of(&c, None));
    }

    #[test]
    fn non_deterministic_outcomes_are_never_cached() {
        let spec = JobSpec::new("x", JobKind::Scan);
        let key = CacheKey::of(&spec, None);
        let mut cache = ResultCache::new();
        cache.insert(key.clone(), &JobResult::shed(&spec));
        cache.insert(key.clone(), &JobResult::panicked(&spec, "boom".into()));
        assert!(cache.is_empty());
        let ok = run(&spec);
        cache.insert(key.clone(), &ok);
        assert_eq!(cache.len(), 1);
    }

    fn keyed(n: u64) -> (CacheKey, JobResult) {
        let mut spec = JobSpec::new(format!("n{n}"), JobKind::Scan);
        spec.n = n;
        let mut r = JobResult::shed(&spec);
        r.outcome = Outcome::Ok;
        r.error = None;
        (CacheKey::of(&spec, None), r)
    }

    #[test]
    fn lru_eviction_is_deterministic_and_recency_aware() {
        let mut cache = ResultCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        let (k1, r1) = keyed(16);
        let (k2, r2) = keyed(32);
        let (k3, r3) = keyed(64);
        cache.insert(k1.clone(), &r1);
        cache.insert(k2.clone(), &r2);
        // Touch k1 so k2 becomes the LRU victim.
        assert!(cache.lookup(&k1, "touch").is_some());
        cache.insert(k3.clone(), &r3);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&k2, "gone").is_none(), "LRU entry evicted");
        assert!(cache.lookup(&k1, "kept").is_some());
        assert!(cache.lookup(&k3, "kept").is_some());
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let mut cache = ResultCache::with_capacity(0);
        let (k, r) = keyed(16);
        cache.insert(k.clone(), &r);
        assert!(cache.is_empty());
        assert!(cache.lookup(&k, "x").is_none());
    }

    #[test]
    fn export_import_round_trips_in_lru_order() {
        let mut cache = ResultCache::with_capacity(3);
        let entries: Vec<_> = [16, 32, 64].iter().map(|&n| keyed(n)).collect();
        for (k, r) in &entries {
            cache.insert(k.clone(), r);
        }
        // Touch the oldest so LRU order differs from insert order.
        assert!(cache.lookup(&entries[0].0, "touch").is_some());
        let exported = cache.export();
        assert_eq!(
            exported.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            vec![entries[1].0.clone(), entries[2].0.clone(), entries[0].0.clone()],
            "export is LRU order, least recent first"
        );
        let mut fresh = ResultCache::with_capacity(3);
        fresh.import(exported.clone());
        assert_eq!(fresh.export(), exported, "round trip preserves order");
        // A restore into a smaller cache keeps the most recent entries.
        let mut small = ResultCache::with_capacity(2);
        small.import(exported);
        assert!(small.lookup(&entries[1].0, "x").is_none(), "least recent dropped");
        assert!(small.lookup(&entries[2].0, "x").is_some());
        assert!(small.lookup(&entries[0].0, "x").is_some());
    }
}
