//! Warm result cache for the serve daemon.
//!
//! Model costs are fully deterministic: a job's `Cost` tuple, attempt
//! count, scheduled backoff, and checksum are pure functions of the inputs
//! that reach the simulator. The cache key is exactly that input set —
//! primitive, size, seed, input family, `k`, fault fractions, effective
//! budget, and retry cap — and **not** the job id or deadline: the id is
//! presentation, and deadlines only matter via wall-clock cancellation,
//! which is never cached (see below). Hits therefore return bit-identical
//! canonical results to cold runs, which `tests/determinism.rs` pins.
//!
//! Only [`Outcome::Ok`] and [`Outcome::Degraded`] results are cached: both
//! are deterministic endpoints of the ladder. Panics, deadline
//! cancellations, sheds, and over-budget rejections are either
//! timing-dependent or cheaper to re-derive than to cache.

use std::collections::HashMap;

use crate::job::{JobResult, JobSpec, Outcome};

/// The deterministic identity of a job execution.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    kind: &'static str,
    n: u64,
    seed: u64,
    array: &'static str,
    k: u64,
    /// Fault fractions as IEEE-754 bits (f64 is not `Hash`; the bits are).
    faults: [u64; 3],
    /// The budget actually armed on the guard — for tenants this is
    /// `min(job budget, tenant remaining)`, so two submissions of the same
    /// spec under different remaining budgets are distinct executions.
    budget: Option<u64>,
    retries: u32,
}

impl CacheKey {
    /// Key for `spec` as executed with `effective_budget` armed.
    pub fn of(spec: &JobSpec, effective_budget: Option<u64>) -> CacheKey {
        CacheKey {
            kind: spec.kind.label(),
            n: spec.n,
            seed: spec.seed,
            array: spec.array.label(),
            k: spec.k,
            faults: [
                spec.faults.dead_rows.to_bits(),
                spec.faults.degraded_rows.to_bits(),
                spec.faults.flaky.to_bits(),
            ],
            budget: effective_budget,
            retries: spec.retries,
        }
    }
}

/// Result cache with hit/miss telemetry.
#[derive(Default)]
pub struct ResultCache {
    map: HashMap<CacheKey, JobResult>,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// Looks up `key`; a hit returns the stored result re-labelled with
    /// `id` (the id is the only presentation field in a [`JobResult`]).
    pub fn lookup(&mut self, key: &CacheKey, id: &str) -> Option<JobResult> {
        match self.map.get(key) {
            Some(r) => {
                self.hits += 1;
                Some(JobResult { id: id.to_string(), ..r.clone() })
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores `result` if its outcome is cacheable (Ok or Degraded). The
    /// wall time is zeroed: it belongs to the original run, not to hits.
    pub fn insert(&mut self, key: CacheKey, result: &JobResult) {
        if matches!(result.outcome, Outcome::Ok | Outcome::Degraded) {
            self.map.insert(key, JobResult { wall_ms: 0, ..result.clone() });
        }
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Cached entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{execute, JobKind};
    use spatial_core::model::CancelToken;
    use spatial_core::recovery::BackoffPolicy;

    fn run(spec: &JobSpec) -> JobResult {
        execute(spec, &CancelToken::new(), &BackoffPolicy::NONE)
    }

    #[test]
    fn hit_returns_bit_identical_result_with_new_id() {
        let mut spec = JobSpec::new("cold", JobKind::Sort);
        spec.n = 64;
        let cold = run(&spec);
        let mut cache = ResultCache::new();
        let key = CacheKey::of(&spec, spec.budget);
        assert!(cache.lookup(&key, "cold").is_none());
        cache.insert(key.clone(), &cold);
        let warm = cache.lookup(&key, "warm").expect("hit");
        assert_eq!(warm.id, "warm");
        assert_eq!(JobResult { id: cold.id.clone(), ..warm }, cold, "only the id may differ");
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn key_ignores_id_and_deadline_but_not_budget() {
        let mut a = JobSpec::new("a", JobKind::Scan);
        a.deadline_ms = Some(100);
        let mut b = JobSpec::new("b", JobKind::Scan);
        b.deadline_ms = Some(9999);
        assert_eq!(CacheKey::of(&a, None), CacheKey::of(&b, None));
        assert_ne!(CacheKey::of(&a, None), CacheKey::of(&a, Some(1_000_000)));
        let mut c = a.clone();
        c.faults.flaky = 0.25;
        assert_ne!(CacheKey::of(&a, None), CacheKey::of(&c, None));
    }

    #[test]
    fn non_deterministic_outcomes_are_never_cached() {
        let spec = JobSpec::new("x", JobKind::Scan);
        let key = CacheKey::of(&spec, None);
        let mut cache = ResultCache::new();
        cache.insert(key.clone(), &JobResult::shed(&spec));
        cache.insert(key.clone(), &JobResult::panicked(&spec, "boom".into()));
        assert!(cache.is_empty());
        let ok = run(&spec);
        cache.insert(key.clone(), &ok);
        assert_eq!(cache.len(), 1);
    }
}
