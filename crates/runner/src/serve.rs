//! The persistent serving loop: newline-delimited JSON jobs in, one result
//! line out per job, worker pool and supervision alive across submissions.
//!
//! ## Protocol
//!
//! Each input line is one of:
//!
//! * **A job submission** — a JSON object with the same fields as a batch
//!   jobspec entry (`kind`, `n`, `seed`, `k`, `array`, `faults`, `budget`,
//!   `retries`, `deadline_ms`, `id`) plus an optional `tenant` name
//!   (default `"default"`). Produces exactly one single-line
//!   `spatial-batch-report/v1` result.
//! * **A control verb** — an object with an `"op"` field:
//!   `{"op": "tenant", "tenant": NAME, "budget": N, "rate": {"burst": B,
//!   "window": W}, "faults": {…}, "extent": {"rows": R, "cols": C},
//!   "predict": BOOL}` registers per-tenant policy and is acknowledged
//!   with a `spatial-serve-ctl/v1` line; `{"op": "stats"}` emits a
//!   `spatial-serve-stats/v1` aggregate line; `{"op": "drain"}` is
//!   acknowledged and then gracefully shuts the daemon down (stop
//!   admitting, drain the pool, flush the snapshot, return).
//! * **A comment** (`#` prefix) or blank line — skipped without output.
//!
//! Malformed lines (including invalid UTF-8) produce a
//! `spatial-serve-ctl/v1` error line; the daemon never exits on bad input,
//! a panicking job, or an exhausted tenant. EOF on stdin — or SIGTERM, via
//! [`request_drain`] — drains the queue and shuts down cleanly.
//!
//! Admission is layered, each refusal typed and deterministic: sliding-
//! window rate limits shed at intake ([`Outcome::Shed`]); at dispatch an
//! exhausted budget refuses with [`Outcome::OverBudget`], an oversized
//! input grid with [`Outcome::ExtentRefused`] (the tenant's `extent` cap),
//! and — for tenants that opt in with `predict` — a closed-form energy
//! floor ([`JobSpec::predicted_energy`]) already above the remaining
//! budget refuses with [`Outcome::PredictedOverBudget`] *before* spending
//! any execution on the job.
//!
//! ## Ordering and determinism
//!
//! Output lines are emitted **strictly in input-line order**, whatever
//! order the pool finishes jobs in: every consuming line gets a sequence
//! number, completed results park in a [`BTreeMap`] keyed by it, and a
//! cursor releases them in order. Two consequences:
//!
//! * the `stats` verb has barrier semantics — it aggregates exactly the
//!   jobs submitted before it, because it cannot emit until they have;
//! * with `canonical = true` (every wall-clock-derived field omitted) the
//!   full output stream is a **pure function of the input stream**:
//!   byte-identical across worker counts and across cache-cold/warm runs.
//!
//! The three admission decisions are deterministic by construction: rate
//! limiting is a pure function of global sequence numbers
//! ([`DrrScheduler::admit`]); budget admission is evaluated when a job is
//! dispatched, and a tenant's jobs run one at a time in submission order,
//! so the ledger a job sees depends only on that tenant's stream prefix;
//! and cache hits return bit-identical canonical results to cold runs
//! ([`crate::cache`]). Deficit round robin shares the pool fairly across
//! tenants in between ([`crate::tenant`]).

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use spatial_core::model::CancelToken;
use spatial_core::recovery::BackoffPolicy;

use crate::cache::{CacheKey, ResultCache};
use crate::job::{execute, FaultCfg, JobKind, JobResult, JobSpec, Outcome};
use crate::journal::{Journal, RecordKind, Recovered, Snapshot};
use crate::json::{escape, Json};
use crate::pool::panic_message;
use crate::report::{cost_json, percentile};
use crate::tenant::{DrrScheduler, ExtentCap, RateLimit, Refusal, Submission, TenantConfig};

/// Serving-loop configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Deadline applied to jobs that don't carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Omit every wall-clock-derived field (`wall_ms`, `cached`, cache and
    /// latency stats), making the output a pure function of the input.
    pub canonical: bool,
    /// DRR deficit granted per tenant visit, in work units (= elements).
    pub quantum: u64,
    /// Watchdog polling interval for deadlines, milliseconds.
    pub watchdog_tick_ms: u64,
    /// Backoff between recovery attempts. The default is compressed
    /// (1–8 ms) relative to the batch default: a daemon should not stall
    /// its stream on sleeps, and the *scheduled* delays in `backoff_ms`
    /// stay deterministic either way.
    pub backoff: BackoffPolicy,
    /// Warm-cache entry cap ([`ResultCache::with_capacity`]); 0 disables
    /// caching. Eviction only affects non-canonical `cached` flags, never
    /// canonical bytes.
    pub cache_capacity: usize,
    /// Write-ahead journal directory for crash-safe serving — see
    /// [`crate::journal`]. Requires `canonical`: recovery re-derives
    /// output lines by replay, which only reproduces bytes exactly when
    /// the stream is a pure function of the input.
    pub journal: Option<PathBuf>,
    /// Exactly-once resume point: the number of complete output lines the
    /// client already received. Output for sequence numbers below this is
    /// suppressed on recovery instead of re-delivered.
    pub resume_from: u64,
    /// Discard a final line with no trailing newline instead of consuming
    /// it. Off for stdin (a file's unterminated last line is intentional);
    /// on for socket sessions, where a missing newline means the transport
    /// was cut mid-line and the reconnect will restream the line whole —
    /// consuming the torn half would poison the exactly-once dedupe.
    pub discard_torn_tail: bool,
    /// Default cost profile applied to submissions that don't carry their
    /// own (`--profile` on the CLI, a built-in name validated at parse).
    /// Purely additive accounting: with `None` the output stream is
    /// byte-identical to the pre-profile daemon.
    pub profile: Option<&'static str>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: crate::default_workers(),
            default_deadline_ms: None,
            canonical: false,
            quantum: 1024,
            watchdog_tick_ms: 5,
            backoff: BackoffPolicy { base_ms: 1, factor: 2, max_ms: 8, jitter: 0.5 },
            cache_capacity: 4096,
            journal: None,
            resume_from: 0,
            discard_torn_tail: false,
            profile: None,
        }
    }
}

/// What a serve session processed (the daemon itself exits 0 on clean EOF;
/// per-job failures are reported in-stream, not via the exit code).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Input lines consumed from the live stream this session (excluding
    /// comments, blanks, and lines skipped by resume deduplication).
    pub lines: u64,
    /// Job result lines emitted.
    pub jobs: u64,
    /// Control error lines emitted.
    pub errors: u64,
    /// Journaled input lines re-driven through the pipeline at startup.
    pub replayed: u64,
    /// Whether the session ended by drain (the `{"op": "drain"}` verb or
    /// [`request_drain`]) rather than plain EOF. The TCP supervision layer
    /// uses this to classify how a connection ended.
    pub drained: bool,
}

/// Signals the serving loop to drain: stop admitting input, finish what is
/// queued, flush the snapshot, and return cleanly. Async-signal-safe (one
/// atomic store) — `main` installs it as the SIGTERM handler. The check
/// happens between input lines, so a reader blocked on a quiet stdin
/// drains at the next line (or EOF); the `{"op": "drain"}` verb is the
/// in-band, always-prompt equivalent.
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Whether a process-wide drain has been requested ([`request_drain`],
/// typically from the SIGTERM handler). The TCP accept loop polls this so
/// drain wakes a listener even with zero live connections.
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst)
}

static DRAIN: AtomicBool = AtomicBool::new(false);

/// Locks `m`, recovering the guard from a poisoned lock. A worker that
/// panicked inside the critical section must never take the whole daemon
/// down with it: the panic is already contained and reported elsewhere
/// (per-job `catch_unwind`, thread join), and every structure under these
/// locks is updated in a single assignment or append, so a recovered guard
/// is safe to keep using.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// [`Condvar::wait`] with the same poison recovery as [`lock`].
fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(|e| e.into_inner())
}

/// Rolling aggregates behind the `stats` verb. Updated at *emission* time,
/// so a stats line covers exactly the jobs that precede it in the stream.
#[derive(Default)]
struct Agg {
    jobs: u64,
    counts: [u64; Outcome::ALL.len()],
    attempts: u64,
    energy_total: u64,
    energies: Vec<u64>,
    walls: Vec<u64>,
    cache_hits: u64,
    cache_lookups: u64,
}

impl Agg {
    fn from_snapshot(s: &crate::journal::AggSnapshot) -> Agg {
        let mut counts = [0u64; Outcome::ALL.len()];
        for (dst, src) in counts.iter_mut().zip(&s.counts) {
            *dst = *src;
        }
        Agg {
            jobs: s.jobs,
            counts,
            attempts: s.attempts,
            energy_total: s.energy_total,
            energies: s.energies.clone(),
            walls: s.walls.clone(),
            cache_hits: s.cache_hits,
            cache_lookups: s.cache_lookups,
        }
    }

    fn to_snapshot(&self) -> crate::journal::AggSnapshot {
        crate::journal::AggSnapshot {
            jobs: self.jobs,
            counts: self.counts.to_vec(),
            attempts: self.attempts,
            energy_total: self.energy_total,
            energies: self.energies.clone(),
            walls: self.walls.clone(),
            cache_hits: self.cache_hits,
            cache_lookups: self.cache_lookups,
        }
    }
}

/// A line waiting its turn in the ordered emission buffer.
enum Pending {
    /// Fully formed control line.
    Line(String),
    /// Completed job: the formed line plus the fields the aggregates need.
    Job {
        line: String,
        outcome: Outcome,
        energy: Option<u64>,
        wall_ms: u64,
        cached: bool,
        /// Whether the job consulted the result cache (dispatched jobs do;
        /// rate-shed and over-budget rejections never reach it).
        looked_up: bool,
        attempts: u32,
    },
    /// Stats verb: the line is rendered from [`Agg`] when its turn comes.
    Stats,
}

struct Core<W: Write> {
    out: W,
    sched: DrrScheduler,
    cache: ResultCache,
    ready: BTreeMap<u64, Pending>,
    next_out: u64,
    seq: u64,
    inflight: usize,
    closed: bool,
    canonical: bool,
    agg: Agg,
    io_err: Option<io::Error>,
    summary: ServeSummary,
    /// Open write-ahead journal, if crash safety is on.
    journal: Option<Journal>,
    /// Output records already durable in the journal: sequence numbers
    /// below this are not re-appended on replay.
    journaled_out: u64,
    /// Client resume point: stdout is suppressed below this sequence.
    emit_from: u64,
    /// Set by the `drain` verb; the reader stops admitting afterwards.
    drain: bool,
}

/// Runs the serving loop until EOF (or drain) on `input`, writing one
/// output line per consuming input line to `out` in input order. Returns
/// after the queue has drained and every output line has been written.
///
/// With [`ServeConfig::journal`] set, the loop first **recovers**: the
/// journal directory's snapshot rehydrates tenant ledgers, aggregates and
/// the warm cache; journaled inputs past the snapshot point are re-driven
/// through the normal pipeline (deterministic re-execution regenerates
/// byte-identical output lines); and output below
/// [`ServeConfig::resume_from`] — lines the client confirms it already
/// holds — is suppressed rather than re-delivered. A resuming client
/// re-streams its full input: lines matching the journaled prefix are
/// deduplicated, so the concatenation of the client's pre-crash and
/// post-crash output is exactly the uninterrupted stream.
pub fn serve<R: BufRead, W: Write + Send>(
    mut input: R,
    out: W,
    cfg: &ServeConfig,
) -> io::Result<ServeSummary> {
    let workers = cfg.workers.max(1);
    let (journal, recovered) = match &cfg.journal {
        Some(dir) => {
            if !cfg.canonical {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "journaling requires canonical mode: crash recovery re-derives output \
                     lines by replay, which is exact only for canonical streams",
                ));
            }
            let (j, r) = Journal::open(dir)?;
            (Some(j), r)
        }
        None => (None, Recovered::default()),
    };

    // Rehydrate from the snapshot, if one survived: `base` consuming lines
    // are already reflected in the restored state and skip replay.
    let mut sched = DrrScheduler::new(cfg.quantum);
    let mut cache = ResultCache::with_capacity(cfg.cache_capacity);
    let mut agg = Agg::default();
    let mut base: u64 = 0;
    if let Some(snap) = &recovered.snapshot {
        base = snap.lines;
        for t in snap.tenants.clone() {
            sched.import_tenant(t);
        }
        cache.import(snap.cache.clone());
        agg = Agg::from_snapshot(&snap.agg);
    }
    let journaled_in = recovered.inputs.len() as u64;
    let journaled_out = recovered.outputs.len() as u64;

    // Snapshot-covered outputs the client is missing are re-delivered
    // straight from the journal — their inputs will not be replayed.
    let mut out = out;
    if cfg.resume_from < base.min(journaled_out) {
        for seq in cfg.resume_from..base.min(journaled_out) {
            writeln!(out, "{}", recovered.outputs[seq as usize])?;
        }
        out.flush()?;
    }

    let core = Mutex::new(Core {
        out,
        sched,
        cache,
        ready: BTreeMap::new(),
        next_out: base,
        seq: base,
        inflight: 0,
        closed: false,
        canonical: cfg.canonical,
        agg,
        io_err: None,
        summary: ServeSummary::default(),
        journal,
        journaled_out,
        emit_from: cfg.resume_from,
        drain: false,
    });
    let work = Condvar::new();
    let done = Condvar::new();
    // One watchdog slot per worker: the token and absolute deadline of the
    // job it is currently running, if that job has a deadline.
    let slots: Vec<Mutex<Option<(CancelToken, Instant)>>> =
        (0..workers).map(|_| Mutex::new(None)).collect();
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|scope| -> io::Result<()> {
        scope.spawn(|| {
            let tick = Duration::from_millis(cfg.watchdog_tick_ms.max(1));
            while !shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(tick);
                let now = Instant::now();
                for slot in &slots {
                    if let Some((token, deadline)) = &*lock(slot) {
                        if now >= *deadline {
                            token.cancel();
                        }
                    }
                }
            }
        });
        for wi in 0..workers {
            let (core, work, done, slots) = (&core, &work, &done, &slots);
            scope.spawn(move || worker_loop(wi, core, work, done, slots, cfg));
        }

        // Recovery replay: journaled inputs past the snapshot point go
        // through the normal pipeline. Deterministic re-execution emits
        // exactly the lines the pre-crash process would have (stdout
        // suppressed below `resume_from`, journal appends below the
        // already-durable watermark).
        for payload in recovered.inputs.get(base as usize..).unwrap_or_default() {
            let mut g = lock(&core);
            let seq = g.seq;
            g.seq += 1;
            g.summary.replayed += 1;
            handle_line(&mut g, seq, payload, cfg);
            drop(g);
            work.notify_all();
        }

        // Reader loop. On a read error the daemon still drains what it
        // already admitted before reporting the error. The shared raw-line
        // reader ([`crate::lines`], `read_until`-based, never `lines()`)
        // turns invalid UTF-8 into a per-line ctl error, never a daemon
        // exit — and the DRAIN check runs after *every* raw line, comments
        // included, so a nudge on a quiet stream is enough to drain.
        let read_result: io::Result<()> = (|| {
            let mut dedupe = 0usize;
            let mut buf = Vec::new();
            loop {
                if DRAIN.load(Ordering::SeqCst) {
                    break; // SIGTERM: stop admitting, drain, snapshot
                }
                let n = crate::lines::read_raw_line(&mut input, &mut buf)?;
                if n == 0 {
                    break; // EOF
                }
                if cfg.discard_torn_tail && !crate::lines::is_complete(&buf) {
                    continue; // cut mid-line; the next read is EOF
                }
                let trimmed = match crate::lines::consuming(&buf) {
                    Some(t) => t,
                    None => continue,
                };
                if crate::lines::is_pong(&trimmed) {
                    // Heartbeat reply: transport-level noise, no sequence
                    // number, no output line — canonical purity holds.
                    continue;
                }
                // Exactly-once dedupe: a resuming client re-streams its
                // full input, and lines matching the journaled prefix were
                // already processed (their output either delivered before
                // the crash or re-emitted by recovery). First divergence
                // ends deduplication for good.
                if dedupe < recovered.inputs.len() {
                    if trimmed == recovered.inputs[dedupe] {
                        dedupe += 1;
                        continue;
                    }
                    dedupe = recovered.inputs.len();
                }
                let mut g = lock(&core);
                let seq = g.seq;
                g.seq += 1;
                g.summary.lines += 1;
                if seq >= journaled_in {
                    // Write-ahead: the input is durable before any of its
                    // effects are.
                    if let Some(j) = g.journal.as_mut() {
                        if let Err(e) = j.append(RecordKind::Input, seq, &trimmed) {
                            g.io_err = Some(e);
                        }
                    }
                }
                handle_line(&mut g, seq, &trimmed, cfg);
                let drained = g.drain;
                drop(g);
                work.notify_all();
                if drained {
                    break; // in-band drain verb
                }
            }
            Ok(())
        })();

        let mut g = lock(&core);
        g.closed = true;
        g.summary.drained = g.drain || DRAIN.load(Ordering::SeqCst);
        work.notify_all();
        while g.inflight > 0 || g.sched.pending() > 0 || !g.ready.is_empty() {
            g = wait(&done, g);
        }
        drop(g);
        work.notify_all();
        shutdown.store(true, Ordering::SeqCst);
        read_result
    })?;

    let mut g = core.into_inner().unwrap_or_else(|e| e.into_inner());
    if let Some(e) = g.io_err.take() {
        return Err(e);
    }
    // Quiescent point: everything consumed has been emitted. Flush the
    // snapshot so the next recovery replays nothing that finished here.
    if let Some(j) = g.journal.as_ref() {
        let snap = Snapshot {
            lines: g.seq,
            emitted: g.next_out,
            tenants: g.sched.export_tenants(),
            agg: g.agg.to_snapshot(),
            cache: g.cache.export(),
        };
        j.write_snapshot(&snap)?;
    }
    Ok(g.summary)
}

/// Handles one consuming input line (core lock held by the caller).
fn handle_line<W: Write>(g: &mut Core<W>, seq: u64, line: &str, cfg: &ServeConfig) {
    let v = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return ctl_error(g, seq, &format!("invalid JSON: {e}")),
    };
    if let Some(op) = v.get("op").and_then(Json::as_str) {
        match op {
            "tenant" => match parse_tenant_op(&v) {
                Ok((name, tc)) => {
                    g.sched.register(&name, tc);
                    push_line(g, seq, ctl_line(seq, "tenant", Some(&name), true, None));
                }
                Err(e) => ctl_error(g, seq, &e),
            },
            "stats" => {
                g.ready.insert(seq, Pending::Stats);
                try_emit(g);
            }
            "drain" => {
                // Graceful shutdown from in-band: acknowledge, then the
                // reader stops admitting and the queue drains.
                g.drain = true;
                push_line(g, seq, ctl_line(seq, "drain", None, true, None));
            }
            other => ctl_error(g, seq, &format!("unknown op {other:?}")),
        }
        return;
    }

    let tenant = match v.get("tenant") {
        None => "default".to_string(),
        Some(j) => match j.as_str() {
            Some(s) => s.to_string(),
            None => return ctl_error(g, seq, "field \"tenant\" must be a string"),
        },
    };
    let mut spec = match JobSpec::from_json(&v, seq as usize) {
        Ok(s) => s,
        Err(e) => return ctl_error(g, seq, &e),
    };
    if v.get("faults").is_none() {
        // The tenant's registered fault plan is the default for its jobs.
        if let Some(f) = g.sched.fault_default(&tenant) {
            spec.faults = f;
        }
    }
    if spec.profile.is_none() {
        spec.profile = cfg.profile;
    }
    if spec.kind == JobKind::ChaosSpin && spec.deadline_ms.or(cfg.default_deadline_ms).is_none() {
        return ctl_error(g, seq, &format!("job \"{}\": chaos-spin requires a deadline", spec.id));
    }
    if let Err(Refusal::RateLimited { burst, window }) = g.sched.admit(&tenant, seq) {
        let mut r = JobResult::shed(&spec);
        r.error = Some(format!(
            "shed: tenant \"{tenant}\" rate limit exceeded ({burst} per {window} submissions)"
        ));
        return record_job(g, seq, &tenant, &r, false, false);
    }
    g.sched.enqueue(Submission { seq, tenant, spec });
}

/// One serving worker: pick by DRR, decide budget admission and cache hits
/// under the lock, execute (contained) outside it, complete and emit.
fn worker_loop<W: Write + Send>(
    wi: usize,
    core: &Mutex<Core<W>>,
    work: &Condvar,
    done: &Condvar,
    slots: &[Mutex<Option<(CancelToken, Instant)>>],
    cfg: &ServeConfig,
) {
    loop {
        let (sub, effective, key) = {
            let mut g = lock(core);
            'pick: loop {
                while let Some(sub) = g.sched.next() {
                    if g.sched.over_budget(&sub.tenant) {
                        let charged = g.sched.charged(&sub.tenant);
                        let budget = g.sched.budget_of(&sub.tenant).unwrap_or(charged);
                        let r = JobResult::over_budget(&sub.spec, &sub.tenant, charged, budget);
                        g.sched.complete(&sub.tenant, 0);
                        record_job(&mut g, sub.seq, &sub.tenant, &r, false, false);
                        done.notify_all();
                        continue;
                    }
                    // ModelGuard extent policy: the job's input square must
                    // fit the tenant's registered grid cap.
                    if let Some(cap) = g.sched.extent_cap(&sub.tenant) {
                        let side = sub.spec.extent_side();
                        if !cap.admits(side) {
                            let r = JobResult::extent_refused(
                                &sub.spec,
                                &sub.tenant,
                                side,
                                cap.rows,
                                cap.cols,
                            );
                            g.sched.complete(&sub.tenant, 0);
                            record_job(&mut g, sub.seq, &sub.tenant, &r, false, false);
                            done.notify_all();
                            continue;
                        }
                    }
                    // Predictive admission (opt-in): refuse before
                    // execution when the closed-form energy floor already
                    // exceeds what is left of the budget.
                    if g.sched.predictive(&sub.tenant) {
                        if let Some(remaining) = g.sched.remaining_budget(&sub.tenant) {
                            let predicted = sub.spec.predicted_energy();
                            if predicted > remaining {
                                let r = JobResult::predicted_over_budget(
                                    &sub.spec,
                                    &sub.tenant,
                                    predicted,
                                    remaining,
                                );
                                g.sched.complete(&sub.tenant, 0);
                                record_job(&mut g, sub.seq, &sub.tenant, &r, false, false);
                                done.notify_all();
                                continue;
                            }
                        }
                    }
                    // The guard is armed at whatever is tighter: the job's
                    // own budget or what is left of the tenant's.
                    let effective = match (sub.spec.budget, g.sched.remaining_budget(&sub.tenant)) {
                        (Some(b), Some(r)) => Some(b.min(r)),
                        (Some(b), None) => Some(b),
                        (None, r) => r,
                    };
                    let key = CacheKey::of(&sub.spec, effective);
                    if let Some(hit) = g.cache.lookup(&key, &sub.spec.id) {
                        let energy = hit.cost.map_or(0, |c| c.energy);
                        g.sched.complete(&sub.tenant, energy);
                        record_job(&mut g, sub.seq, &sub.tenant, &hit, true, true);
                        done.notify_all();
                        continue;
                    }
                    g.inflight += 1;
                    if g.sched.dispatchable() {
                        work.notify_all();
                    }
                    break 'pick (sub, effective, key);
                }
                if g.closed && g.inflight == 0 && g.sched.pending() == 0 {
                    return;
                }
                g = wait(work, g);
            }
        };

        let mut spec = sub.spec.clone();
        spec.budget = effective;
        let token = CancelToken::new();
        if let Some(ms) = spec.deadline_ms.or(cfg.default_deadline_ms) {
            *lock(&slots[wi]) = Some((token.clone(), Instant::now() + Duration::from_millis(ms)));
        }
        let started = Instant::now();
        let executed = catch_unwind(AssertUnwindSafe(|| execute(&spec, &token, &cfg.backoff)));
        *lock(&slots[wi]) = None;
        let mut result = match executed {
            Ok(r) => r,
            Err(payload) => JobResult::panicked(&spec, panic_message(payload.as_ref())),
        };
        result.wall_ms = started.elapsed().as_millis() as u64;
        let energy = result.cost.map_or(0, |c| c.energy);

        let mut g = lock(core);
        g.cache.insert(key, &result);
        g.sched.complete(&sub.tenant, energy);
        g.inflight -= 1;
        record_job(&mut g, sub.seq, &sub.tenant, &result, false, true);
        drop(g);
        work.notify_all();
        done.notify_all();
    }
}

/// Parks a completed job in the emission buffer and drains what's ready.
fn record_job<W: Write>(
    g: &mut Core<W>,
    seq: u64,
    tenant: &str,
    r: &JobResult,
    cached: bool,
    looked_up: bool,
) {
    let line = job_line(seq, tenant, r, cached, g.canonical);
    g.ready.insert(
        seq,
        Pending::Job {
            line,
            outcome: r.outcome,
            energy: r.cost.map(|c| c.energy),
            wall_ms: r.wall_ms,
            cached,
            looked_up,
            attempts: r.attempts,
        },
    );
    g.summary.jobs += 1;
    try_emit(g);
}

fn push_line<W: Write>(g: &mut Core<W>, seq: u64, line: String) {
    g.ready.insert(seq, Pending::Line(line));
    try_emit(g);
}

fn ctl_error<W: Write>(g: &mut Core<W>, seq: u64, msg: &str) {
    g.summary.errors += 1;
    push_line(g, seq, ctl_line(seq, "error", None, false, Some(msg)));
}

/// Releases every buffered line whose turn has come, updating aggregates
/// as job lines pass the cursor.
fn try_emit<W: Write>(g: &mut Core<W>) {
    let mut wrote = false;
    while let Some(p) = g.ready.remove(&g.next_out) {
        let line = match p {
            Pending::Line(s) => s,
            Pending::Job { line, outcome, energy, wall_ms, cached, looked_up, attempts } => {
                g.agg.jobs += 1;
                g.agg.counts[outcome.index()] += 1;
                g.agg.attempts += u64::from(attempts);
                if let Some(e) = energy {
                    g.agg.energy_total += e;
                    g.agg.energies.push(e);
                }
                g.agg.walls.push(wall_ms);
                if looked_up {
                    g.agg.cache_lookups += 1;
                    g.agg.cache_hits += u64::from(cached);
                }
                line
            }
            Pending::Stats => {
                let (len, cap) = (g.cache.len(), g.cache.capacity());
                stats_line(g.next_out, &g.agg, g.canonical, len, cap)
            }
        };
        if g.io_err.is_none() {
            // Write-ahead: the line is durable in the journal before the
            // client can see it, so the journal's emitted watermark is
            // always ≥ what any client received.
            if g.next_out >= g.journaled_out {
                if let Some(j) = g.journal.as_mut() {
                    let seq = g.next_out;
                    if let Err(e) = j.append(RecordKind::Output, seq, &line) {
                        g.io_err = Some(e);
                    }
                }
            }
            if g.io_err.is_none() && g.next_out >= g.emit_from {
                if let Err(e) = writeln!(g.out, "{line}") {
                    g.io_err = Some(e);
                }
            }
        }
        g.next_out += 1;
        wrote = true;
    }
    if wrote && g.io_err.is_none() {
        if let Err(e) = g.out.flush() {
            g.io_err = Some(e);
        }
    }
}

fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |x| x.to_string())
}

/// One job result as a single `spatial-batch-report/v1` line (same fields
/// as the batch writer's job object, plus `seq`, `tenant` and `code`).
fn job_line(seq: u64, tenant: &str, j: &JobResult, cached: bool, canonical: bool) -> String {
    let mut s = String::with_capacity(256);
    s.push_str("{\"schema\": \"spatial-batch-report/v1\", ");
    s.push_str(&format!("\"seq\": {seq}, "));
    s.push_str(&format!("\"tenant\": \"{}\", ", escape(tenant)));
    s.push_str(&format!("\"id\": \"{}\", ", escape(&j.id)));
    s.push_str(&format!("\"kind\": \"{}\", ", j.kind.label()));
    s.push_str(&format!("\"outcome\": \"{}\", ", j.outcome.label()));
    s.push_str(&format!("\"code\": {}, ", j.outcome.exit_code()));
    s.push_str(&format!("\"attempts\": {}, ", j.attempts));
    s.push_str(&format!("\"escalation\": {}, ", j.escalation));
    match j.cost {
        Some(c) => s.push_str(&format!("\"cost\": {}, ", cost_json(c))),
        None => s.push_str("\"cost\": null, "),
    }
    if let Some(p) = &j.profiled {
        s.push_str(&format!("\"profiled\": {}, ", crate::report::profiled_json(p)));
    }
    s.push_str(&format!("\"detour_energy\": {}, ", j.detour_energy));
    s.push_str(&format!("\"backoff_ms\": {}, ", j.backoff_ms));
    match j.checksum {
        Some(c) => s.push_str(&format!("\"checksum\": \"0x{c:016x}\", ")),
        None => s.push_str("\"checksum\": null, "),
    }
    match &j.error {
        Some(e) => s.push_str(&format!("\"error\": \"{}\"", escape(e))),
        None => s.push_str("\"error\": null"),
    }
    if !canonical {
        s.push_str(&format!(", \"cached\": {cached}, \"wall_ms\": {}", j.wall_ms));
    }
    s.push('}');
    s
}

/// The `stats` verb's aggregate line. Rates are fixed-point strings so the
/// canonical form never depends on float formatting.
fn stats_line(seq: u64, agg: &Agg, canonical: bool, cache_len: usize, cache_cap: usize) -> String {
    let rate = |count: u64| -> String {
        if agg.jobs == 0 {
            "null".into()
        } else {
            format!("\"{:.3}\"", count as f64 / agg.jobs as f64)
        }
    };
    let mut s = String::with_capacity(256);
    s.push_str("{\"schema\": \"spatial-serve-stats/v1\", ");
    s.push_str(&format!("\"seq\": {seq}, "));
    s.push_str(&format!("\"jobs\": {}, ", agg.jobs));
    for (o, c) in Outcome::ALL.iter().zip(agg.counts) {
        s.push_str(&format!("\"{}\": {c}, ", o.label()));
    }
    s.push_str(&format!("\"attempts\": {}, ", agg.attempts));
    s.push_str(&format!("\"energy_total\": {}, ", agg.energy_total));
    s.push_str(&format!("\"shed_rate\": {}, ", rate(agg.counts[Outcome::Shed.index()])));
    s.push_str(&format!("\"degradation_rate\": {}, ", rate(agg.counts[Outcome::Degraded.index()])));
    s.push_str(&format!("\"energy_p50\": {}, ", opt(percentile(&agg.energies, 50))));
    s.push_str(&format!("\"energy_p99\": {}", opt(percentile(&agg.energies, 99))));
    if !canonical {
        let hit_rate = if agg.cache_lookups == 0 {
            "null".into()
        } else {
            format!("\"{:.3}\"", agg.cache_hits as f64 / agg.cache_lookups as f64)
        };
        s.push_str(&format!(
            ", \"cache_hits\": {}, \"cache_lookups\": {}, \"cache_hit_rate\": {hit_rate}",
            agg.cache_hits, agg.cache_lookups
        ));
        s.push_str(&format!(", \"cache_len\": {cache_len}, \"cache_capacity\": {cache_cap}"));
        s.push_str(&format!(
            ", \"wall_ms_p50\": {}, \"wall_ms_p99\": {}",
            opt(percentile(&agg.walls, 50)),
            opt(percentile(&agg.walls, 99))
        ));
    }
    s.push('}');
    s
}

fn ctl_line(seq: u64, op: &str, tenant: Option<&str>, ok: bool, error: Option<&str>) -> String {
    let mut s = format!("{{\"schema\": \"spatial-serve-ctl/v1\", \"seq\": {seq}, ");
    s.push_str(&format!("\"op\": \"{}\", ", escape(op)));
    if let Some(t) = tenant {
        s.push_str(&format!("\"tenant\": \"{}\", ", escape(t)));
    }
    s.push_str(&format!("\"ok\": {ok}, "));
    match error {
        Some(e) => s.push_str(&format!("\"error\": \"{}\"", escape(e))),
        None => s.push_str("\"error\": null"),
    }
    s.push('}');
    s
}

fn parse_tenant_op(v: &Json) -> Result<(String, TenantConfig), String> {
    let name = v
        .get("tenant")
        .and_then(Json::as_str)
        .ok_or_else(|| "op \"tenant\": missing string field \"tenant\"".to_string())?
        .to_string();
    let budget = match v.get("budget") {
        None => None,
        Some(j) if j.is_null() => None,
        Some(j) => Some(j.as_u64().ok_or_else(|| {
            format!("tenant \"{name}\": field \"budget\" must be an integer or null")
        })?),
    };
    let rate = match v.get("rate") {
        None => None,
        Some(j) if j.is_null() => None,
        Some(j) => {
            let field = |k: &str| -> Result<u64, String> {
                j.get(k).and_then(Json::as_u64).filter(|&x| x >= 1).ok_or_else(|| {
                    format!("tenant \"{name}\": rate.{k} must be a positive integer")
                })
            };
            Some(RateLimit { burst: field("burst")?, window: field("window")? })
        }
    };
    let faults = match v.get("faults") {
        None => None,
        Some(f) => Some(FaultCfg::from_json(f, &format!("tenant \"{name}\""))?),
    };
    let extent = match v.get("extent") {
        None => None,
        Some(j) if j.is_null() => None,
        Some(j) => {
            let field = |k: &str| -> Result<u64, String> {
                j.get(k).and_then(Json::as_u64).filter(|&x| x >= 1).ok_or_else(|| {
                    format!("tenant \"{name}\": extent.{k} must be a positive integer")
                })
            };
            Some(ExtentCap { rows: field("rows")?, cols: field("cols")? })
        }
    };
    let predict = match v.get("predict") {
        None => false,
        Some(j) => j
            .as_bool()
            .ok_or_else(|| format!("tenant \"{name}\": field \"predict\" must be a boolean"))?,
    };
    Ok((name, TenantConfig { budget, rate, faults, extent, predict }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(input: &str, workers: usize, canonical: bool) -> (String, ServeSummary) {
        let cfg = ServeConfig { workers, canonical, ..Default::default() };
        let mut out = Vec::new();
        let summary = serve(io::Cursor::new(input.to_string()), &mut out, &cfg).expect("serve I/O");
        (String::from_utf8(out).expect("utf8 output"), summary)
    }

    fn field<'a>(line: &'a str, key: &str) -> &'a str {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat).unwrap_or_else(|| panic!("no {key:?} in {line}")) + pat.len();
        let rest = &line[start..];
        let end = rest.find(", \"").unwrap_or(rest.len() - 1);
        &rest[..end]
    }

    #[test]
    fn results_stream_in_input_order_with_stats_barrier() {
        let input = r#"
# comment lines and blanks are skipped
{"kind": "sort", "n": 256, "seed": 1, "id": "big"}
{"kind": "scan", "n": 16, "seed": 2, "id": "small"}
{"op": "stats"}
"#;
        let (out, summary) = run(input, 4, true);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "{out}");
        assert_eq!(field(lines[0], "id"), "\"big\"", "input order, not completion order");
        assert_eq!(field(lines[1], "id"), "\"small\"");
        assert!(lines[2].contains("spatial-serve-stats/v1"));
        assert_eq!(field(lines[2], "jobs"), "2", "stats covers exactly the preceding jobs");
        assert_eq!(field(lines[2], "ok"), "2");
        for (i, l) in lines.iter().enumerate() {
            assert_eq!(field(l, "seq"), i.to_string());
            Json::parse(l).expect("every output line is valid JSON");
        }
        assert_eq!(
            summary,
            ServeSummary { lines: 3, jobs: 2, errors: 0, replayed: 0, drained: false }
        );
    }

    #[test]
    fn canonical_output_is_worker_count_invariant() {
        let input = r#"
{"op": "tenant", "tenant": "a", "budget": 1000000}
{"kind": "scan", "n": 64, "seed": 3, "tenant": "a"}
{"kind": "sort", "n": 64, "seed": 4, "tenant": "b"}
{"kind": "scan", "n": 64, "seed": 3, "tenant": "a"}
{"kind": "select", "n": 64, "k": 9, "seed": 5, "tenant": "b"}
{"op": "stats"}
"#;
        let (one, _) = run(input, 1, true);
        let (four, _) = run(input, 4, true);
        assert_eq!(one, four, "canonical stream must not depend on the worker count");
    }

    #[test]
    fn over_budget_tenant_is_rejected_typed_not_killed() {
        let input = r#"
{"op": "tenant", "tenant": "t", "budget": 50}
{"kind": "sort", "n": 256, "seed": 1, "tenant": "t", "id": "spender"}
{"kind": "scan", "n": 16, "seed": 2, "tenant": "t", "id": "refused"}
{"kind": "scan", "n": 16, "seed": 2, "tenant": "other", "id": "bystander"}
"#;
        let (out, _) = run(input, 2, true);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // The spender runs under a guard armed at the remaining 50 units and
        // degrades (sort of 256 needs far more); its sunk cost exhausts the
        // tenant, so the next job is refused with the typed outcome.
        assert_eq!(field(lines[1], "outcome"), "\"degraded\"");
        assert_eq!(field(lines[2], "outcome"), "\"over-budget\"");
        assert_eq!(field(lines[2], "code"), "12");
        assert_eq!(field(lines[2], "cost"), "null", "rejected jobs never execute");
        assert_eq!(field(lines[3], "outcome"), "\"ok\"", "other tenants are unaffected");
    }

    #[test]
    fn rate_limited_jobs_shed_deterministically() {
        let input = r#"
{"op": "tenant", "tenant": "noisy", "rate": {"burst": 2, "window": 100}}
{"kind": "scan", "n": 16, "seed": 1, "tenant": "noisy"}
{"kind": "scan", "n": 16, "seed": 2, "tenant": "noisy"}
{"kind": "scan", "n": 16, "seed": 3, "tenant": "noisy"}
{"kind": "scan", "n": 16, "seed": 4, "tenant": "quiet"}
"#;
        let (out, _) = run(input, 3, true);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(field(lines[1], "outcome"), "\"ok\"");
        assert_eq!(field(lines[2], "outcome"), "\"ok\"");
        assert_eq!(field(lines[3], "outcome"), "\"shed\"");
        assert_eq!(field(lines[3], "code"), "10");
        assert!(lines[3].contains("rate limit"), "{}", lines[3]);
        assert_eq!(field(lines[4], "outcome"), "\"ok\"");
    }

    #[test]
    fn warm_cache_hits_are_flagged_and_bit_identical() {
        let input = r#"
{"kind": "sort", "n": 64, "seed": 9, "id": "cold"}
{"kind": "sort", "n": 64, "seed": 9, "id": "warm"}
"#;
        let (out, _) = run(input, 1, false);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(field(lines[0], "cached"), "false");
        assert_eq!(field(lines[1], "cached"), "true");
        assert_eq!(field(lines[0], "cost"), field(lines[1], "cost"), "hit is bit-identical");
        assert_eq!(field(lines[0], "checksum"), field(lines[1], "checksum"));
        // Canonically (id aside) the two lines differ only in seq/id.
        let (canon, _) = run(input, 1, true);
        let c: Vec<&str> = canon.lines().collect();
        let strip = |s: &str| s.replace("\"seq\": 0", "").replace("\"seq\": 1", "");
        assert_eq!(strip(c[0]).replace("\"cold\"", "X"), strip(c[1]).replace("\"warm\"", "X"),);
    }

    #[test]
    fn daemon_survives_panics_bad_lines_and_unknown_ops() {
        let input = r#"
{"kind": "chaos-panic", "id": "boom"}
this is not json
{"op": "warp"}
{"kind": "scan", "n": 16, "seed": 1, "id": "after"}
"#;
        let (out, summary) = run(input, 2, true);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(field(lines[0], "outcome"), "\"panicked\"");
        assert_eq!(field(lines[0], "code"), "1");
        assert!(lines[1].contains("\"ok\": false") && lines[1].contains("invalid JSON"));
        assert!(lines[2].contains("unknown op"));
        assert_eq!(field(lines[3], "outcome"), "\"ok\"", "daemon kept serving");
        assert_eq!(summary.errors, 2);
    }

    #[test]
    fn spin_without_deadline_is_refused_with_deadline_cancelled() {
        let input = r#"
{"kind": "chaos-spin", "id": "undeadlined"}
{"kind": "chaos-spin", "deadline_ms": 30, "id": "leashed"}
"#;
        let (out, _) = run(input, 1, true);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("requires a deadline"), "{}", lines[0]);
        assert_eq!(field(lines[1], "outcome"), "\"deadline-exceeded\"");
        assert_eq!(field(lines[1], "code"), "9");
        assert_eq!(field(lines[1], "cost"), "null");
    }

    #[test]
    fn predictive_admission_refuses_before_execution() {
        // sort n=4096 has an energy floor of 4096·√4096 = 262144 ≫ 1000,
        // so the predictive tenant refuses it without running; the scan
        // floor (64) fits and runs normally. The non-predictive tenant
        // keeps the old semantics: the sort executes under its guard.
        let input = r#"
{"op": "tenant", "tenant": "fore", "budget": 1000, "predict": true}
{"kind": "sort", "n": 4096, "seed": 1, "tenant": "fore", "id": "refused"}
{"kind": "scan", "n": 64, "seed": 2, "tenant": "fore", "id": "fits"}
{"op": "tenant", "tenant": "legacy", "budget": 1000}
{"kind": "sort", "n": 4096, "seed": 1, "tenant": "legacy", "id": "runs-anyway"}
"#;
        let (out, _) = run(input, 2, true);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(field(lines[1], "outcome"), "\"predicted-over-budget\"");
        assert_eq!(field(lines[1], "code"), "13");
        assert_eq!(field(lines[1], "cost"), "null", "refused jobs never execute");
        assert_eq!(field(lines[1], "attempts"), "0");
        assert!(lines[1].contains("predicted energy 262144"), "{}", lines[1]);
        assert_eq!(field(lines[2], "outcome"), "\"ok\"", "floor under budget runs");
        assert_ne!(field(lines[4], "outcome"), "\"predicted-over-budget\"", "opt-in only");
    }

    #[test]
    fn extent_cap_refuses_oversized_grids() {
        // sort n=256 occupies a 16×16 input square; an 8×8 cap refuses it
        // with the typed outcome while n=64 (8×8) still fits.
        let input = r#"
{"op": "tenant", "tenant": "boxed", "extent": {"rows": 8, "cols": 8}}
{"kind": "sort", "n": 256, "seed": 1, "tenant": "boxed", "id": "too-wide"}
{"kind": "scan", "n": 64, "seed": 2, "tenant": "boxed", "id": "fits"}
"#;
        let (out, _) = run(input, 2, true);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("\"ok\": true"));
        assert_eq!(field(lines[1], "outcome"), "\"extent-refused\"");
        assert_eq!(field(lines[1], "code"), "14");
        assert!(lines[1].contains("needs a 16x16 grid"), "{}", lines[1]);
        assert_eq!(field(lines[2], "outcome"), "\"ok\"");
    }

    #[test]
    fn drain_verb_acks_stops_admitting_and_returns() {
        let input = r#"
{"kind": "scan", "n": 16, "seed": 1, "id": "served"}
{"op": "drain"}
{"kind": "scan", "n": 16, "seed": 2, "id": "never-admitted"}
"#;
        let (out, summary) = run(input, 2, true);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert_eq!(field(lines[0], "outcome"), "\"ok\"");
        assert!(lines[1].contains("\"op\": \"drain\"") && lines[1].contains("\"ok\": true"));
        assert_eq!(summary.lines, 2, "the post-drain line was never consumed");
        assert!(summary.drained, "the summary records the drain");
    }

    #[test]
    fn pong_lines_are_transport_noise_not_consuming() {
        let input = r#"
{"kind": "scan", "n": 16, "seed": 1, "id": "first"}
{"op": "pong"}
{"op": "pong", "nonce": 7}
{"kind": "scan", "n": 16, "seed": 2, "id": "second"}
"#;
        let (out, summary) = run(input, 2, true);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "pongs consume no seq and emit nothing: {out}");
        assert_eq!(field(lines[0], "seq"), "0");
        assert_eq!(field(lines[1], "seq"), "1", "seq numbering skips heartbeat replies");
        assert_eq!(summary.lines, 2);
        assert!(!summary.drained);
    }

    #[test]
    fn outcome_index_matches_all_order() {
        for (i, o) in Outcome::ALL.into_iter().enumerate() {
            assert_eq!(o.index(), i, "{o:?}");
        }
    }

    #[test]
    fn invalid_utf8_input_becomes_a_ctl_error_not_an_exit() {
        let mut input =
            b"{\"kind\": \"scan\", \"n\": 16, \"seed\": 1}\n\xff\xfe garbage\n".to_vec();
        input.extend_from_slice(b"{\"kind\": \"scan\", \"n\": 16, \"seed\": 2}\n");
        let cfg = ServeConfig { workers: 1, canonical: true, ..Default::default() };
        let mut out = Vec::new();
        let summary = serve(io::Cursor::new(input), &mut out, &cfg).expect("serve I/O");
        let text = String::from_utf8(out).expect("output is clean utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[1].contains("invalid JSON"), "{}", lines[1]);
        assert_eq!(summary.errors, 1);
    }

    #[test]
    fn bounded_cache_keeps_canonical_bytes_while_evicting() {
        // Capacity 1 forces eviction between the two distinct sorts, so
        // the repeat of the first is a miss — but canonical bytes must be
        // identical to an unbounded run.
        let input = r#"
{"kind": "sort", "n": 64, "seed": 9, "id": "a"}
{"kind": "sort", "n": 64, "seed": 10, "id": "b"}
{"kind": "sort", "n": 64, "seed": 9, "id": "a-again"}
"#;
        let run_cap = |capacity: usize| {
            let cfg = ServeConfig {
                workers: 1,
                canonical: true,
                cache_capacity: capacity,
                ..Default::default()
            };
            let mut out = Vec::new();
            serve(io::Cursor::new(input.to_string()), &mut out, &cfg).expect("serve I/O");
            String::from_utf8(out).expect("utf8")
        };
        assert_eq!(run_cap(1), run_cap(4096), "eviction never changes canonical output");
        assert_eq!(run_cap(0), run_cap(4096), "disabled cache neither");
    }

    #[test]
    fn journal_requires_canonical_mode() {
        let dir =
            std::env::temp_dir().join(format!("spatial-serve-noncanon-{}", std::process::id()));
        let cfg = ServeConfig {
            workers: 1,
            canonical: false,
            journal: Some(dir.clone()),
            ..Default::default()
        };
        let err = serve(io::Cursor::new(String::new()), Vec::new(), &cfg)
            .expect_err("journal without canonical must be refused");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journaled_session_recovers_and_replays_nothing_already_delivered() {
        let dir =
            std::env::temp_dir().join(format!("spatial-serve-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let input = "{\"op\": \"tenant\", \"tenant\": \"t\", \"budget\": 100000}\n\
                     {\"kind\": \"sort\", \"n\": 64, \"seed\": 1, \"tenant\": \"t\", \"id\": \"one\"}\n\
                     {\"kind\": \"scan\", \"n\": 64, \"seed\": 2, \"tenant\": \"t\", \"id\": \"two\"}\n\
                     {\"op\": \"stats\"}\n";
        let cfg = ServeConfig {
            workers: 2,
            canonical: true,
            journal: Some(dir.clone()),
            ..Default::default()
        };
        let mut first = Vec::new();
        let s1 = serve(io::Cursor::new(input.to_string()), &mut first, &cfg).expect("first run");
        assert_eq!((s1.lines, s1.replayed), (4, 0));
        let first = String::from_utf8(first).unwrap();
        assert_eq!(first.lines().count(), 4);

        // A client that received everything resumes from 4 and re-streams
        // the full input: nothing is re-emitted and nothing re-runs.
        let cfg2 = ServeConfig { resume_from: 4, ..cfg.clone() };
        let mut second = Vec::new();
        let s2 = serve(io::Cursor::new(input.to_string()), &mut second, &cfg2).expect("resume");
        assert_eq!(second, b"", "exactly-once: no duplicate delivery");
        assert_eq!(s2.lines, 0, "all four lines deduplicated");
        assert_eq!(s2.replayed, 0, "snapshot covered everything — no replay");

        // A client that lost everything resumes from 0: the full stream is
        // re-delivered byte-identically (from the journal, not re-executed).
        let mut third = Vec::new();
        let s3 = serve(io::Cursor::new(input.to_string()), &mut third, &cfg).expect("redeliver");
        assert_eq!(String::from_utf8(third).unwrap(), first, "byte-identical re-delivery");
        assert_eq!(s3.lines, 0);

        // Fresh input past the journaled prefix is served normally, with
        // tenant ledgers carried across the restart.
        let extended = format!("{input}{{\"op\": \"stats\"}}\n");
        let mut fourth = Vec::new();
        let cfg4 = ServeConfig { resume_from: 4, ..cfg.clone() };
        let s4 = serve(io::Cursor::new(extended), &mut fourth, &cfg4).expect("extend");
        assert_eq!(s4.lines, 1, "only the new stats line consumed");
        let fourth = String::from_utf8(fourth).unwrap();
        let lines: Vec<&str> = fourth.lines().collect();
        assert_eq!(lines.len(), 1);
        assert_eq!(field(lines[0], "seq"), "4");
        assert_eq!(field(lines[0], "jobs"), "2", "aggregates survived the restart");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tenant_fault_default_applies_to_unfaulted_jobs() {
        let input = r#"
{"op": "tenant", "tenant": "flaky", "faults": {"flaky": 1.0}}
{"kind": "scan", "n": 16, "seed": 1, "retries": 1, "tenant": "flaky", "id": "inherits"}
{"kind": "scan", "n": 16, "seed": 1, "retries": 1, "tenant": "flaky", "id": "opts-out", "faults": {}}
"#;
        let (out, _) = run(input, 1, true);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("\"ok\": true"));
        assert_eq!(field(lines[1], "outcome"), "\"degraded\"", "tenant faults applied");
        assert_eq!(field(lines[2], "outcome"), "\"ok\"", "explicit faults override");
    }
}
