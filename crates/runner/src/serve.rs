//! The persistent serving loop: newline-delimited JSON jobs in, one result
//! line out per job, worker pool and supervision alive across submissions.
//!
//! ## Protocol
//!
//! Each input line is one of:
//!
//! * **A job submission** — a JSON object with the same fields as a batch
//!   jobspec entry (`kind`, `n`, `seed`, `k`, `array`, `faults`, `budget`,
//!   `retries`, `deadline_ms`, `id`) plus an optional `tenant` name
//!   (default `"default"`). Produces exactly one single-line
//!   `spatial-batch-report/v1` result.
//! * **A control verb** — an object with an `"op"` field:
//!   `{"op": "tenant", "tenant": NAME, "budget": N, "rate": {"burst": B,
//!   "window": W}, "faults": {…}}` registers per-tenant policy and is
//!   acknowledged with a `spatial-serve-ctl/v1` line; `{"op": "stats"}`
//!   emits a `spatial-serve-stats/v1` aggregate line.
//! * **A comment** (`#` prefix) or blank line — skipped without output.
//!
//! Malformed lines produce a `spatial-serve-ctl/v1` error line; the daemon
//! never exits on bad input, a panicking job, or an exhausted tenant. EOF
//! on stdin drains the queue and shuts down cleanly.
//!
//! ## Ordering and determinism
//!
//! Output lines are emitted **strictly in input-line order**, whatever
//! order the pool finishes jobs in: every consuming line gets a sequence
//! number, completed results park in a [`BTreeMap`] keyed by it, and a
//! cursor releases them in order. Two consequences:
//!
//! * the `stats` verb has barrier semantics — it aggregates exactly the
//!   jobs submitted before it, because it cannot emit until they have;
//! * with `canonical = true` (every wall-clock-derived field omitted) the
//!   full output stream is a **pure function of the input stream**:
//!   byte-identical across worker counts and across cache-cold/warm runs.
//!
//! The three admission decisions are deterministic by construction: rate
//! limiting is a pure function of global sequence numbers
//! ([`DrrScheduler::admit`]); budget admission is evaluated when a job is
//! dispatched, and a tenant's jobs run one at a time in submission order,
//! so the ledger a job sees depends only on that tenant's stream prefix;
//! and cache hits return bit-identical canonical results to cold runs
//! ([`crate::cache`]). Deficit round robin shares the pool fairly across
//! tenants in between ([`crate::tenant`]).

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use spatial_core::model::CancelToken;
use spatial_core::recovery::BackoffPolicy;

use crate::cache::{CacheKey, ResultCache};
use crate::job::{execute, FaultCfg, JobKind, JobResult, JobSpec, Outcome};
use crate::json::{escape, Json};
use crate::pool::panic_message;
use crate::report::{cost_json, percentile};
use crate::tenant::{DrrScheduler, RateLimit, Refusal, Submission, TenantConfig};

/// Serving-loop configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Deadline applied to jobs that don't carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Omit every wall-clock-derived field (`wall_ms`, `cached`, cache and
    /// latency stats), making the output a pure function of the input.
    pub canonical: bool,
    /// DRR deficit granted per tenant visit, in work units (= elements).
    pub quantum: u64,
    /// Watchdog polling interval for deadlines, milliseconds.
    pub watchdog_tick_ms: u64,
    /// Backoff between recovery attempts. The default is compressed
    /// (1–8 ms) relative to the batch default: a daemon should not stall
    /// its stream on sleeps, and the *scheduled* delays in `backoff_ms`
    /// stay deterministic either way.
    pub backoff: BackoffPolicy,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: crate::default_workers(),
            default_deadline_ms: None,
            canonical: false,
            quantum: 1024,
            watchdog_tick_ms: 5,
            backoff: BackoffPolicy { base_ms: 1, factor: 2, max_ms: 8, jitter: 0.5 },
        }
    }
}

/// What a serve session processed (the daemon itself exits 0 on clean EOF;
/// per-job failures are reported in-stream, not via the exit code).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Input lines consumed (excluding comments and blanks).
    pub lines: u64,
    /// Job result lines emitted.
    pub jobs: u64,
    /// Control error lines emitted.
    pub errors: u64,
}

/// Index of `o` in [`Outcome::ALL`] (stats bucket).
fn idx(o: Outcome) -> usize {
    Outcome::ALL.iter().position(|&x| x == o).expect("outcome in ALL")
}

/// Rolling aggregates behind the `stats` verb. Updated at *emission* time,
/// so a stats line covers exactly the jobs that precede it in the stream.
#[derive(Default)]
struct Agg {
    jobs: u64,
    counts: [u64; Outcome::ALL.len()],
    attempts: u64,
    energy_total: u64,
    energies: Vec<u64>,
    walls: Vec<u64>,
    cache_hits: u64,
    cache_lookups: u64,
}

/// A line waiting its turn in the ordered emission buffer.
enum Pending {
    /// Fully formed control line.
    Line(String),
    /// Completed job: the formed line plus the fields the aggregates need.
    Job {
        line: String,
        outcome: Outcome,
        energy: Option<u64>,
        wall_ms: u64,
        cached: bool,
        /// Whether the job consulted the result cache (dispatched jobs do;
        /// rate-shed and over-budget rejections never reach it).
        looked_up: bool,
        attempts: u32,
    },
    /// Stats verb: the line is rendered from [`Agg`] when its turn comes.
    Stats,
}

struct Core<W: Write> {
    out: W,
    sched: DrrScheduler,
    cache: ResultCache,
    ready: BTreeMap<u64, Pending>,
    next_out: u64,
    seq: u64,
    inflight: usize,
    closed: bool,
    canonical: bool,
    agg: Agg,
    io_err: Option<io::Error>,
    summary: ServeSummary,
}

/// Runs the serving loop until EOF on `input`, writing one output line per
/// consuming input line to `out` in input order. Returns after the queue
/// has drained and every output line has been written.
pub fn serve<R: BufRead, W: Write + Send>(
    input: R,
    out: W,
    cfg: &ServeConfig,
) -> io::Result<ServeSummary> {
    let workers = cfg.workers.max(1);
    let core = Mutex::new(Core {
        out,
        sched: DrrScheduler::new(cfg.quantum),
        cache: ResultCache::new(),
        ready: BTreeMap::new(),
        next_out: 0,
        seq: 0,
        inflight: 0,
        closed: false,
        canonical: cfg.canonical,
        agg: Agg::default(),
        io_err: None,
        summary: ServeSummary::default(),
    });
    let work = Condvar::new();
    let done = Condvar::new();
    // One watchdog slot per worker: the token and absolute deadline of the
    // job it is currently running, if that job has a deadline.
    let slots: Vec<Mutex<Option<(CancelToken, Instant)>>> =
        (0..workers).map(|_| Mutex::new(None)).collect();
    let shutdown = AtomicBool::new(false);

    std::thread::scope(|scope| -> io::Result<()> {
        scope.spawn(|| {
            let tick = Duration::from_millis(cfg.watchdog_tick_ms.max(1));
            while !shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(tick);
                let now = Instant::now();
                for slot in &slots {
                    if let Some((token, deadline)) = &*slot.lock().unwrap() {
                        if now >= *deadline {
                            token.cancel();
                        }
                    }
                }
            }
        });
        for wi in 0..workers {
            let (core, work, done, slots) = (&core, &work, &done, &slots);
            scope.spawn(move || worker_loop(wi, core, work, done, slots, cfg));
        }

        // Reader loop. On a read error the daemon still drains what it
        // already admitted before reporting the error.
        let read_result: io::Result<()> = (|| {
            for line in input.lines() {
                let line = line?;
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    continue;
                }
                let mut g = core.lock().unwrap();
                let seq = g.seq;
                g.seq += 1;
                g.summary.lines += 1;
                handle_line(&mut g, seq, trimmed, cfg);
                drop(g);
                work.notify_all();
            }
            Ok(())
        })();

        let mut g = core.lock().unwrap();
        g.closed = true;
        work.notify_all();
        while g.inflight > 0 || g.sched.pending() > 0 || !g.ready.is_empty() {
            g = done.wait(g).unwrap();
        }
        drop(g);
        work.notify_all();
        shutdown.store(true, Ordering::SeqCst);
        read_result
    })?;

    let mut g = core.into_inner().unwrap();
    if let Some(e) = g.io_err.take() {
        return Err(e);
    }
    Ok(g.summary)
}

/// Handles one consuming input line (core lock held by the caller).
fn handle_line<W: Write>(g: &mut Core<W>, seq: u64, line: &str, cfg: &ServeConfig) {
    let v = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return ctl_error(g, seq, &format!("invalid JSON: {e}")),
    };
    if let Some(op) = v.get("op").and_then(Json::as_str) {
        match op {
            "tenant" => match parse_tenant_op(&v) {
                Ok((name, tc)) => {
                    g.sched.register(&name, tc);
                    push_line(g, seq, ctl_line(seq, "tenant", Some(&name), true, None));
                }
                Err(e) => ctl_error(g, seq, &e),
            },
            "stats" => {
                g.ready.insert(seq, Pending::Stats);
                try_emit(g);
            }
            other => ctl_error(g, seq, &format!("unknown op {other:?}")),
        }
        return;
    }

    let tenant = match v.get("tenant") {
        None => "default".to_string(),
        Some(j) => match j.as_str() {
            Some(s) => s.to_string(),
            None => return ctl_error(g, seq, "field \"tenant\" must be a string"),
        },
    };
    let mut spec = match JobSpec::from_json(&v, seq as usize) {
        Ok(s) => s,
        Err(e) => return ctl_error(g, seq, &e),
    };
    if v.get("faults").is_none() {
        // The tenant's registered fault plan is the default for its jobs.
        if let Some(f) = g.sched.fault_default(&tenant) {
            spec.faults = f;
        }
    }
    if spec.kind == JobKind::ChaosSpin && spec.deadline_ms.or(cfg.default_deadline_ms).is_none() {
        return ctl_error(g, seq, &format!("job \"{}\": chaos-spin requires a deadline", spec.id));
    }
    if let Err(Refusal::RateLimited { burst, window }) = g.sched.admit(&tenant, seq) {
        let mut r = JobResult::shed(&spec);
        r.error = Some(format!(
            "shed: tenant \"{tenant}\" rate limit exceeded ({burst} per {window} submissions)"
        ));
        return record_job(g, seq, &tenant, &r, false, false);
    }
    g.sched.enqueue(Submission { seq, tenant, spec });
}

/// One serving worker: pick by DRR, decide budget admission and cache hits
/// under the lock, execute (contained) outside it, complete and emit.
fn worker_loop<W: Write + Send>(
    wi: usize,
    core: &Mutex<Core<W>>,
    work: &Condvar,
    done: &Condvar,
    slots: &[Mutex<Option<(CancelToken, Instant)>>],
    cfg: &ServeConfig,
) {
    loop {
        let (sub, effective, key) = {
            let mut g = core.lock().unwrap();
            'pick: loop {
                while let Some(sub) = g.sched.next() {
                    if g.sched.over_budget(&sub.tenant) {
                        let charged = g.sched.charged(&sub.tenant);
                        let budget = g.sched.budget_of(&sub.tenant).unwrap_or(charged);
                        let r = JobResult::over_budget(&sub.spec, &sub.tenant, charged, budget);
                        g.sched.complete(&sub.tenant, 0);
                        record_job(&mut g, sub.seq, &sub.tenant, &r, false, false);
                        done.notify_all();
                        continue;
                    }
                    // The guard is armed at whatever is tighter: the job's
                    // own budget or what is left of the tenant's.
                    let effective = match (sub.spec.budget, g.sched.remaining_budget(&sub.tenant)) {
                        (Some(b), Some(r)) => Some(b.min(r)),
                        (Some(b), None) => Some(b),
                        (None, r) => r,
                    };
                    let key = CacheKey::of(&sub.spec, effective);
                    if let Some(hit) = g.cache.lookup(&key, &sub.spec.id) {
                        let energy = hit.cost.map_or(0, |c| c.energy);
                        g.sched.complete(&sub.tenant, energy);
                        record_job(&mut g, sub.seq, &sub.tenant, &hit, true, true);
                        done.notify_all();
                        continue;
                    }
                    g.inflight += 1;
                    if g.sched.dispatchable() {
                        work.notify_all();
                    }
                    break 'pick (sub, effective, key);
                }
                if g.closed && g.inflight == 0 && g.sched.pending() == 0 {
                    return;
                }
                g = work.wait(g).unwrap();
            }
        };

        let mut spec = sub.spec.clone();
        spec.budget = effective;
        let token = CancelToken::new();
        if let Some(ms) = spec.deadline_ms.or(cfg.default_deadline_ms) {
            *slots[wi].lock().unwrap() =
                Some((token.clone(), Instant::now() + Duration::from_millis(ms)));
        }
        let started = Instant::now();
        let executed = catch_unwind(AssertUnwindSafe(|| execute(&spec, &token, &cfg.backoff)));
        *slots[wi].lock().unwrap() = None;
        let mut result = match executed {
            Ok(r) => r,
            Err(payload) => JobResult::panicked(&spec, panic_message(payload.as_ref())),
        };
        result.wall_ms = started.elapsed().as_millis() as u64;
        let energy = result.cost.map_or(0, |c| c.energy);

        let mut g = core.lock().unwrap();
        g.cache.insert(key, &result);
        g.sched.complete(&sub.tenant, energy);
        g.inflight -= 1;
        record_job(&mut g, sub.seq, &sub.tenant, &result, false, true);
        drop(g);
        work.notify_all();
        done.notify_all();
    }
}

/// Parks a completed job in the emission buffer and drains what's ready.
fn record_job<W: Write>(
    g: &mut Core<W>,
    seq: u64,
    tenant: &str,
    r: &JobResult,
    cached: bool,
    looked_up: bool,
) {
    let line = job_line(seq, tenant, r, cached, g.canonical);
    g.ready.insert(
        seq,
        Pending::Job {
            line,
            outcome: r.outcome,
            energy: r.cost.map(|c| c.energy),
            wall_ms: r.wall_ms,
            cached,
            looked_up,
            attempts: r.attempts,
        },
    );
    g.summary.jobs += 1;
    try_emit(g);
}

fn push_line<W: Write>(g: &mut Core<W>, seq: u64, line: String) {
    g.ready.insert(seq, Pending::Line(line));
    try_emit(g);
}

fn ctl_error<W: Write>(g: &mut Core<W>, seq: u64, msg: &str) {
    g.summary.errors += 1;
    push_line(g, seq, ctl_line(seq, "error", None, false, Some(msg)));
}

/// Releases every buffered line whose turn has come, updating aggregates
/// as job lines pass the cursor.
fn try_emit<W: Write>(g: &mut Core<W>) {
    let mut wrote = false;
    while let Some(p) = g.ready.remove(&g.next_out) {
        let line = match p {
            Pending::Line(s) => s,
            Pending::Job { line, outcome, energy, wall_ms, cached, looked_up, attempts } => {
                g.agg.jobs += 1;
                g.agg.counts[idx(outcome)] += 1;
                g.agg.attempts += u64::from(attempts);
                if let Some(e) = energy {
                    g.agg.energy_total += e;
                    g.agg.energies.push(e);
                }
                g.agg.walls.push(wall_ms);
                if looked_up {
                    g.agg.cache_lookups += 1;
                    g.agg.cache_hits += u64::from(cached);
                }
                line
            }
            Pending::Stats => stats_line(g.next_out, &g.agg, g.canonical),
        };
        if g.io_err.is_none() {
            if let Err(e) = writeln!(g.out, "{line}") {
                g.io_err = Some(e);
            }
        }
        g.next_out += 1;
        wrote = true;
    }
    if wrote && g.io_err.is_none() {
        if let Err(e) = g.out.flush() {
            g.io_err = Some(e);
        }
    }
}

fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |x| x.to_string())
}

/// One job result as a single `spatial-batch-report/v1` line (same fields
/// as the batch writer's job object, plus `seq`, `tenant` and `code`).
fn job_line(seq: u64, tenant: &str, j: &JobResult, cached: bool, canonical: bool) -> String {
    let mut s = String::with_capacity(256);
    s.push_str("{\"schema\": \"spatial-batch-report/v1\", ");
    s.push_str(&format!("\"seq\": {seq}, "));
    s.push_str(&format!("\"tenant\": \"{}\", ", escape(tenant)));
    s.push_str(&format!("\"id\": \"{}\", ", escape(&j.id)));
    s.push_str(&format!("\"kind\": \"{}\", ", j.kind.label()));
    s.push_str(&format!("\"outcome\": \"{}\", ", j.outcome.label()));
    s.push_str(&format!("\"code\": {}, ", j.outcome.exit_code()));
    s.push_str(&format!("\"attempts\": {}, ", j.attempts));
    s.push_str(&format!("\"escalation\": {}, ", j.escalation));
    match j.cost {
        Some(c) => s.push_str(&format!("\"cost\": {}, ", cost_json(c))),
        None => s.push_str("\"cost\": null, "),
    }
    s.push_str(&format!("\"detour_energy\": {}, ", j.detour_energy));
    s.push_str(&format!("\"backoff_ms\": {}, ", j.backoff_ms));
    match j.checksum {
        Some(c) => s.push_str(&format!("\"checksum\": \"0x{c:016x}\", ")),
        None => s.push_str("\"checksum\": null, "),
    }
    match &j.error {
        Some(e) => s.push_str(&format!("\"error\": \"{}\"", escape(e))),
        None => s.push_str("\"error\": null"),
    }
    if !canonical {
        s.push_str(&format!(", \"cached\": {cached}, \"wall_ms\": {}", j.wall_ms));
    }
    s.push('}');
    s
}

/// The `stats` verb's aggregate line. Rates are fixed-point strings so the
/// canonical form never depends on float formatting.
fn stats_line(seq: u64, agg: &Agg, canonical: bool) -> String {
    let rate = |count: u64| -> String {
        if agg.jobs == 0 {
            "null".into()
        } else {
            format!("\"{:.3}\"", count as f64 / agg.jobs as f64)
        }
    };
    let mut s = String::with_capacity(256);
    s.push_str("{\"schema\": \"spatial-serve-stats/v1\", ");
    s.push_str(&format!("\"seq\": {seq}, "));
    s.push_str(&format!("\"jobs\": {}, ", agg.jobs));
    for (o, c) in Outcome::ALL.iter().zip(agg.counts) {
        s.push_str(&format!("\"{}\": {c}, ", o.label()));
    }
    s.push_str(&format!("\"attempts\": {}, ", agg.attempts));
    s.push_str(&format!("\"energy_total\": {}, ", agg.energy_total));
    s.push_str(&format!("\"shed_rate\": {}, ", rate(agg.counts[idx(Outcome::Shed)])));
    s.push_str(&format!("\"degradation_rate\": {}, ", rate(agg.counts[idx(Outcome::Degraded)])));
    s.push_str(&format!("\"energy_p50\": {}, ", opt(percentile(&agg.energies, 50))));
    s.push_str(&format!("\"energy_p99\": {}", opt(percentile(&agg.energies, 99))));
    if !canonical {
        let hit_rate = if agg.cache_lookups == 0 {
            "null".into()
        } else {
            format!("\"{:.3}\"", agg.cache_hits as f64 / agg.cache_lookups as f64)
        };
        s.push_str(&format!(
            ", \"cache_hits\": {}, \"cache_lookups\": {}, \"cache_hit_rate\": {hit_rate}",
            agg.cache_hits, agg.cache_lookups
        ));
        s.push_str(&format!(
            ", \"wall_ms_p50\": {}, \"wall_ms_p99\": {}",
            opt(percentile(&agg.walls, 50)),
            opt(percentile(&agg.walls, 99))
        ));
    }
    s.push('}');
    s
}

fn ctl_line(seq: u64, op: &str, tenant: Option<&str>, ok: bool, error: Option<&str>) -> String {
    let mut s = format!("{{\"schema\": \"spatial-serve-ctl/v1\", \"seq\": {seq}, ");
    s.push_str(&format!("\"op\": \"{}\", ", escape(op)));
    if let Some(t) = tenant {
        s.push_str(&format!("\"tenant\": \"{}\", ", escape(t)));
    }
    s.push_str(&format!("\"ok\": {ok}, "));
    match error {
        Some(e) => s.push_str(&format!("\"error\": \"{}\"", escape(e))),
        None => s.push_str("\"error\": null"),
    }
    s.push('}');
    s
}

fn parse_tenant_op(v: &Json) -> Result<(String, TenantConfig), String> {
    let name = v
        .get("tenant")
        .and_then(Json::as_str)
        .ok_or_else(|| "op \"tenant\": missing string field \"tenant\"".to_string())?
        .to_string();
    let budget = match v.get("budget") {
        None => None,
        Some(j) if j.is_null() => None,
        Some(j) => Some(j.as_u64().ok_or_else(|| {
            format!("tenant \"{name}\": field \"budget\" must be an integer or null")
        })?),
    };
    let rate = match v.get("rate") {
        None => None,
        Some(j) if j.is_null() => None,
        Some(j) => {
            let field = |k: &str| -> Result<u64, String> {
                j.get(k).and_then(Json::as_u64).filter(|&x| x >= 1).ok_or_else(|| {
                    format!("tenant \"{name}\": rate.{k} must be a positive integer")
                })
            };
            Some(RateLimit { burst: field("burst")?, window: field("window")? })
        }
    };
    let faults = match v.get("faults") {
        None => None,
        Some(f) => Some(FaultCfg::from_json(f, &format!("tenant \"{name}\""))?),
    };
    Ok((name, TenantConfig { budget, rate, faults }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(input: &str, workers: usize, canonical: bool) -> (String, ServeSummary) {
        let cfg = ServeConfig { workers, canonical, ..Default::default() };
        let mut out = Vec::new();
        let summary = serve(io::Cursor::new(input.to_string()), &mut out, &cfg).expect("serve I/O");
        (String::from_utf8(out).expect("utf8 output"), summary)
    }

    fn field<'a>(line: &'a str, key: &str) -> &'a str {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat).unwrap_or_else(|| panic!("no {key:?} in {line}")) + pat.len();
        let rest = &line[start..];
        let end = rest.find(", \"").unwrap_or(rest.len() - 1);
        &rest[..end]
    }

    #[test]
    fn results_stream_in_input_order_with_stats_barrier() {
        let input = r#"
# comment lines and blanks are skipped
{"kind": "sort", "n": 256, "seed": 1, "id": "big"}
{"kind": "scan", "n": 16, "seed": 2, "id": "small"}
{"op": "stats"}
"#;
        let (out, summary) = run(input, 4, true);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3, "{out}");
        assert_eq!(field(lines[0], "id"), "\"big\"", "input order, not completion order");
        assert_eq!(field(lines[1], "id"), "\"small\"");
        assert!(lines[2].contains("spatial-serve-stats/v1"));
        assert_eq!(field(lines[2], "jobs"), "2", "stats covers exactly the preceding jobs");
        assert_eq!(field(lines[2], "ok"), "2");
        for (i, l) in lines.iter().enumerate() {
            assert_eq!(field(l, "seq"), i.to_string());
            Json::parse(l).expect("every output line is valid JSON");
        }
        assert_eq!(summary, ServeSummary { lines: 3, jobs: 2, errors: 0 });
    }

    #[test]
    fn canonical_output_is_worker_count_invariant() {
        let input = r#"
{"op": "tenant", "tenant": "a", "budget": 1000000}
{"kind": "scan", "n": 64, "seed": 3, "tenant": "a"}
{"kind": "sort", "n": 64, "seed": 4, "tenant": "b"}
{"kind": "scan", "n": 64, "seed": 3, "tenant": "a"}
{"kind": "select", "n": 64, "k": 9, "seed": 5, "tenant": "b"}
{"op": "stats"}
"#;
        let (one, _) = run(input, 1, true);
        let (four, _) = run(input, 4, true);
        assert_eq!(one, four, "canonical stream must not depend on the worker count");
    }

    #[test]
    fn over_budget_tenant_is_rejected_typed_not_killed() {
        let input = r#"
{"op": "tenant", "tenant": "t", "budget": 50}
{"kind": "sort", "n": 256, "seed": 1, "tenant": "t", "id": "spender"}
{"kind": "scan", "n": 16, "seed": 2, "tenant": "t", "id": "refused"}
{"kind": "scan", "n": 16, "seed": 2, "tenant": "other", "id": "bystander"}
"#;
        let (out, _) = run(input, 2, true);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // The spender runs under a guard armed at the remaining 50 units and
        // degrades (sort of 256 needs far more); its sunk cost exhausts the
        // tenant, so the next job is refused with the typed outcome.
        assert_eq!(field(lines[1], "outcome"), "\"degraded\"");
        assert_eq!(field(lines[2], "outcome"), "\"over-budget\"");
        assert_eq!(field(lines[2], "code"), "12");
        assert_eq!(field(lines[2], "cost"), "null", "rejected jobs never execute");
        assert_eq!(field(lines[3], "outcome"), "\"ok\"", "other tenants are unaffected");
    }

    #[test]
    fn rate_limited_jobs_shed_deterministically() {
        let input = r#"
{"op": "tenant", "tenant": "noisy", "rate": {"burst": 2, "window": 100}}
{"kind": "scan", "n": 16, "seed": 1, "tenant": "noisy"}
{"kind": "scan", "n": 16, "seed": 2, "tenant": "noisy"}
{"kind": "scan", "n": 16, "seed": 3, "tenant": "noisy"}
{"kind": "scan", "n": 16, "seed": 4, "tenant": "quiet"}
"#;
        let (out, _) = run(input, 3, true);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(field(lines[1], "outcome"), "\"ok\"");
        assert_eq!(field(lines[2], "outcome"), "\"ok\"");
        assert_eq!(field(lines[3], "outcome"), "\"shed\"");
        assert_eq!(field(lines[3], "code"), "10");
        assert!(lines[3].contains("rate limit"), "{}", lines[3]);
        assert_eq!(field(lines[4], "outcome"), "\"ok\"");
    }

    #[test]
    fn warm_cache_hits_are_flagged_and_bit_identical() {
        let input = r#"
{"kind": "sort", "n": 64, "seed": 9, "id": "cold"}
{"kind": "sort", "n": 64, "seed": 9, "id": "warm"}
"#;
        let (out, _) = run(input, 1, false);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(field(lines[0], "cached"), "false");
        assert_eq!(field(lines[1], "cached"), "true");
        assert_eq!(field(lines[0], "cost"), field(lines[1], "cost"), "hit is bit-identical");
        assert_eq!(field(lines[0], "checksum"), field(lines[1], "checksum"));
        // Canonically (id aside) the two lines differ only in seq/id.
        let (canon, _) = run(input, 1, true);
        let c: Vec<&str> = canon.lines().collect();
        let strip = |s: &str| s.replace("\"seq\": 0", "").replace("\"seq\": 1", "");
        assert_eq!(strip(c[0]).replace("\"cold\"", "X"), strip(c[1]).replace("\"warm\"", "X"),);
    }

    #[test]
    fn daemon_survives_panics_bad_lines_and_unknown_ops() {
        let input = r#"
{"kind": "chaos-panic", "id": "boom"}
this is not json
{"op": "warp"}
{"kind": "scan", "n": 16, "seed": 1, "id": "after"}
"#;
        let (out, summary) = run(input, 2, true);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(field(lines[0], "outcome"), "\"panicked\"");
        assert_eq!(field(lines[0], "code"), "1");
        assert!(lines[1].contains("\"ok\": false") && lines[1].contains("invalid JSON"));
        assert!(lines[2].contains("unknown op"));
        assert_eq!(field(lines[3], "outcome"), "\"ok\"", "daemon kept serving");
        assert_eq!(summary.errors, 2);
    }

    #[test]
    fn spin_without_deadline_is_refused_with_deadline_cancelled() {
        let input = r#"
{"kind": "chaos-spin", "id": "undeadlined"}
{"kind": "chaos-spin", "deadline_ms": 30, "id": "leashed"}
"#;
        let (out, _) = run(input, 1, true);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("requires a deadline"), "{}", lines[0]);
        assert_eq!(field(lines[1], "outcome"), "\"deadline-exceeded\"");
        assert_eq!(field(lines[1], "code"), "9");
        assert_eq!(field(lines[1], "cost"), "null");
    }

    #[test]
    fn tenant_fault_default_applies_to_unfaulted_jobs() {
        let input = r#"
{"op": "tenant", "tenant": "flaky", "faults": {"flaky": 1.0}}
{"kind": "scan", "n": 16, "seed": 1, "retries": 1, "tenant": "flaky", "id": "inherits"}
{"kind": "scan", "n": 16, "seed": 1, "retries": 1, "tenant": "flaky", "id": "opts-out", "faults": {}}
"#;
        let (out, _) = run(input, 1, true);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("\"ok\": true"));
        assert_eq!(field(lines[1], "outcome"), "\"degraded\"", "tenant faults applied");
        assert_eq!(field(lines[2], "outcome"), "\"ok\"", "explicit faults override");
    }
}
