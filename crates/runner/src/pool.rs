//! Bounded worker pool with panic isolation, deadlines, and load shedding.
//!
//! This is the supervision core of the batch runtime. A fixed set of tasks
//! is executed across at most [`PoolConfig::workers`] OS threads, and three
//! failure containment mechanisms wrap every task:
//!
//! * **Panic isolation** — each task runs under
//!   [`std::panic::catch_unwind`]; a panicking task becomes
//!   [`TaskOutcome::Panicked`] with the panic message, and its worker thread
//!   survives to run the next task.
//! * **Deadlines** — every task owns a [`CancelToken`] created before the
//!   pool starts. A watchdog thread polls the running set and trips the
//!   token of any task past its deadline; the simulator checks the token
//!   cooperatively on every `place`/`send`, so a runaway job surfaces
//!   `SpatialError::Cancelled` within one message of the deadline firing.
//!   No wall-clock ever enters the simulator itself — the token is a plain
//!   flag, which is what keeps cancelled runs classifiable without
//!   poisoning cost determinism.
//! * **Load shedding** — admission is bounded by
//!   [`PoolConfig::queue_cap`]. With a [`PoolConfig::shed_threshold`] set,
//!   jobs beyond `ceil(threshold · queue_cap)` are rejected up front as
//!   [`TaskOutcome::Shed`] without executing; workers are gated until
//!   admission completes, so the shed set is a pure function of the task
//!   list and the config — never of thread timing. Without a threshold the
//!   pool runs in streaming mode: submission blocks (backpressure) while
//!   the queue is full and every task eventually runs.
//!
//! Results come back indexed by submission order regardless of which worker
//! finished when, so callers can zip outcomes with their specs.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use spatial_core::model::CancelToken;

/// Pool sizing and admission policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PoolConfig {
    /// Maximum concurrent worker threads (clamped to at least 1).
    pub workers: usize,
    /// Bound on the submission queue (clamped to at least 1).
    pub queue_cap: usize,
    /// Saturation fraction of `queue_cap` past which jobs are shed instead
    /// of queued. `None` disables shedding (backpressure blocks instead).
    pub shed_threshold: Option<f64>,
    /// Watchdog polling interval. Deadlines are enforced with this
    /// granularity; the default (5 ms) is far below any realistic job
    /// deadline.
    pub watchdog_tick_ms: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig { workers: 4, queue_cap: 1024, shed_threshold: None, watchdog_tick_ms: 5 }
    }
}

impl PoolConfig {
    /// Number of tasks admitted before shedding starts, for a submission of
    /// any size. `usize::MAX` when shedding is disabled.
    pub fn admission_limit(&self) -> usize {
        match self.shed_threshold {
            None => usize::MAX,
            Some(t) => {
                let cap = self.queue_cap.max(1) as f64;
                ((t.clamp(0.0, 1.0) * cap).ceil() as usize).min(self.queue_cap.max(1))
            }
        }
    }
}

/// One unit of supervised work. The `'a` lifetime lets task closures
/// borrow from the caller's stack (the pool runs on scoped threads).
pub struct Task<'a, T> {
    /// Wall-clock deadline for this task, if any. Enforced by the watchdog
    /// via the task's [`CancelToken`].
    pub deadline_ms: Option<u64>,
    /// The work. Receives the task's own cancel token so it can wire it
    /// into a [`spatial_core::model::Machine`] (or poll it directly).
    #[allow(clippy::type_complexity)]
    pub run: Box<dyn FnOnce(&CancelToken) -> T + Send + 'a>,
}

/// How a task left the pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TaskOutcome<T> {
    /// The task ran to completion (its own result may still describe a
    /// failure — that classification belongs to the job layer).
    Done(T),
    /// The task panicked; the payload message was captured and the worker
    /// thread survived.
    Panicked(String),
    /// The task was rejected at admission because the pool was saturated.
    /// It never executed.
    Shed,
}

impl<T> TaskOutcome<T> {
    /// The completed value, if this outcome is [`TaskOutcome::Done`].
    pub fn done(self) -> Option<T> {
        match self {
            TaskOutcome::Done(v) => Some(v),
            _ => None,
        }
    }
}

/// Shared submission queue: indices into the task vector plus a closed
/// flag so workers know when to exit.
struct Queue {
    ready: VecDeque<usize>,
    closed: bool,
}

/// Runs `tasks` under supervision and returns one [`TaskOutcome`] per task,
/// in submission order.
///
/// Blocks until every admitted task has finished (or been cancelled and
/// then finished). Panics inside tasks are contained; a panic in the pool
/// machinery itself (a poisoned lock) propagates, as it indicates a bug in
/// the runner, not in a job.
pub fn run_supervised<T: Send>(cfg: &PoolConfig, tasks: Vec<Task<'_, T>>) -> Vec<TaskOutcome<T>> {
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let admit = cfg.admission_limit();

    // Every task gets its token up front so the watchdog can reach it
    // whether or not a worker has picked the task up yet.
    let tokens: Vec<CancelToken> = (0..n).map(|_| CancelToken::new()).collect();
    let slots: Vec<Mutex<Option<Task<T>>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<TaskOutcome<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // Absolute deadline of each *running* task (None = not running or no
    // deadline). The watchdog polls this.
    let running: Vec<Mutex<Option<Instant>>> = (0..n).map(|_| Mutex::new(None)).collect();

    let queue = Mutex::new(Queue { ready: VecDeque::new(), closed: false });
    let not_empty = Condvar::new();
    let not_full = Condvar::new();
    let remaining = AtomicUsize::new(0);

    // Admission. With shedding enabled this happens entirely before any
    // worker starts (the queue lock is held by nobody else yet), so the
    // shed set is count-based and deterministic. In streaming mode the
    // submitter runs concurrently with the workers below and blocks on
    // `not_full` when the queue is at capacity.
    let gated = cfg.shed_threshold.is_some();
    let mut shed = vec![false; n];
    if gated {
        let mut q = queue.lock().unwrap();
        for (i, s) in shed.iter_mut().enumerate() {
            if i < admit {
                q.ready.push_back(i);
                remaining.fetch_add(1, Ordering::SeqCst);
            } else {
                *s = true;
            }
        }
        q.closed = true;
    } else {
        remaining.store(n, Ordering::SeqCst);
    }
    let admitted = if gated { admit.min(n) } else { n };
    let workers = cfg.workers.max(1).min(admitted.max(1));
    let tick = Duration::from_millis(cfg.watchdog_tick_ms.max(1));

    std::thread::scope(|scope| {
        // Watchdog: trip the token of any running task past its deadline.
        // Exits once every admitted task has completed.
        scope.spawn(|| {
            while remaining.load(Ordering::SeqCst) > 0 {
                std::thread::sleep(tick);
                let now = Instant::now();
                for (i, slot) in running.iter().enumerate() {
                    let due = *slot.lock().unwrap();
                    if let Some(deadline) = due {
                        if now >= deadline {
                            tokens[i].cancel();
                        }
                    }
                }
            }
        });

        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = {
                    let mut q = queue.lock().unwrap();
                    loop {
                        if let Some(i) = q.ready.pop_front() {
                            break i;
                        }
                        if q.closed {
                            return;
                        }
                        q = not_empty.wait(q).unwrap();
                    }
                };
                not_full.notify_one();
                let task = slots[idx].lock().unwrap().take().expect("task dispatched twice");
                if let Some(ms) = task.deadline_ms {
                    *running[idx].lock().unwrap() =
                        Some(Instant::now() + Duration::from_millis(ms));
                }
                let token = &tokens[idx];
                let outcome = match catch_unwind(AssertUnwindSafe(|| (task.run)(token))) {
                    Ok(v) => TaskOutcome::Done(v),
                    Err(payload) => TaskOutcome::Panicked(panic_message(payload.as_ref())),
                };
                *running[idx].lock().unwrap() = None;
                *results[idx].lock().unwrap() = Some(outcome);
                remaining.fetch_sub(1, Ordering::SeqCst);
            });
        }

        // Streaming submission with backpressure.
        if !gated {
            for i in 0..n {
                let mut q = queue.lock().unwrap();
                while q.ready.len() >= cfg.queue_cap.max(1) {
                    q = not_full.wait(q).unwrap();
                }
                q.ready.push_back(i);
                drop(q);
                not_empty.notify_one();
            }
            queue.lock().unwrap().closed = true;
        }
        not_empty.notify_all();
    });

    results
        .into_iter()
        .zip(shed)
        .map(|(slot, was_shed)| {
            if was_shed {
                TaskOutcome::Shed
            } else {
                slot.into_inner().unwrap().expect("admitted task finished without a result")
            }
        })
        .collect()
}

/// Best-effort extraction of a human-readable panic message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain(v: u64) -> Task<'static, u64> {
        Task { deadline_ms: None, run: Box::new(move |_| v) }
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let cfg = PoolConfig { workers: 4, ..Default::default() };
        let tasks: Vec<Task<'static, u64>> = (0..32)
            .map(|i| Task {
                deadline_ms: None,
                run: Box::new(move |_| {
                    // Stagger completions so out-of-order finishes are real.
                    std::thread::sleep(Duration::from_millis((32 - i) % 7));
                    i * i
                }),
            })
            .collect();
        let out = run_supervised(&cfg, tasks);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(*o, TaskOutcome::Done((i as u64) * (i as u64)));
        }
    }

    #[test]
    fn panics_are_isolated_and_labelled() {
        let cfg = PoolConfig { workers: 2, ..Default::default() };
        let mut tasks: Vec<Task<'static, u64>> = vec![plain(1)];
        tasks.push(Task { deadline_ms: None, run: Box::new(|_| panic!("boom in job 1")) });
        tasks.push(plain(3));
        let out = run_supervised(&cfg, tasks);
        assert_eq!(out[0], TaskOutcome::Done(1));
        assert_eq!(out[1], TaskOutcome::Panicked("boom in job 1".into()));
        assert_eq!(out[2], TaskOutcome::Done(3), "worker survived the panic");
    }

    #[test]
    fn watchdog_cancels_past_deadline() {
        let cfg = PoolConfig { workers: 1, watchdog_tick_ms: 2, ..Default::default() };
        let spin = Task {
            deadline_ms: Some(30),
            run: Box::new(|token: &CancelToken| {
                let start = Instant::now();
                while !token.is_cancelled() {
                    assert!(start.elapsed() < Duration::from_secs(10), "watchdog never fired");
                    std::hint::spin_loop();
                }
                true
            }),
        };
        let out = run_supervised(&cfg, vec![spin]);
        assert_eq!(out, vec![TaskOutcome::Done(true)]);
    }

    #[test]
    fn gated_mode_sheds_deterministically_past_the_threshold() {
        let cfg =
            PoolConfig { workers: 2, queue_cap: 4, shed_threshold: Some(0.5), watchdog_tick_ms: 5 };
        assert_eq!(cfg.admission_limit(), 2);
        let out = run_supervised(&cfg, (0..5).map(plain).collect());
        assert_eq!(out[0], TaskOutcome::Done(0));
        assert_eq!(out[1], TaskOutcome::Done(1));
        for o in &out[2..] {
            assert_eq!(*o, TaskOutcome::Shed);
        }
    }

    #[test]
    fn streaming_mode_backpressures_instead_of_shedding() {
        let cfg =
            PoolConfig { workers: 2, queue_cap: 1, shed_threshold: None, watchdog_tick_ms: 5 };
        let out = run_supervised(&cfg, (0..16).map(plain).collect());
        assert_eq!(out.len(), 16);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(*o, TaskOutcome::Done(i as u64), "queue_cap 1 must not drop work");
        }
    }

    #[test]
    fn admission_limit_edges() {
        let mut cfg = PoolConfig { queue_cap: 2, shed_threshold: Some(1.0), ..Default::default() };
        assert_eq!(cfg.admission_limit(), 2);
        cfg.shed_threshold = Some(0.0);
        assert_eq!(cfg.admission_limit(), 0, "threshold 0 sheds everything");
        cfg.shed_threshold = None;
        assert_eq!(cfg.admission_limit(), usize::MAX);
    }

    #[test]
    fn empty_task_list_is_a_noop() {
        let out: Vec<TaskOutcome<u64>> = run_supervised(&PoolConfig::default(), Vec::new());
        assert!(out.is_empty());
    }
}
