//! TCP front end for the serve daemon: supervised per-connection sessions
//! over the same newline-JSON line protocol as stdin, `std::net` only.
//!
//! ## Session protocol
//!
//! A connection starts with a **handshake**: the first consuming line must
//! be `{"op": "hello", "resume_from": N, "tenant": NAME}` (`resume_from`
//! and `tenant` optional, defaulting to 0 and none). `resume_from` is the
//! client's watermark — the number of complete result lines it already
//! holds — and maps straight onto [`ServeConfig::resume_from`], so a
//! reconnecting client gets exactly the journaled lines it is missing and
//! nothing twice. The daemon replies with one
//! `{"schema": "spatial-serve-hello/v1", ...}` ack line, then runs the
//! ordinary serving loop ([`crate::serve::serve`]) over the socket. A
//! non-`hello` first line is answered with an `"ok": false` ack and the
//! connection is closed ([`SessionEnd::HandshakeRejected`]); a nonzero
//! watermark without a journal is rejected the same way, because there is
//! nothing to resume from.
//!
//! ## Supervision
//!
//! * **Heartbeats** — the read side carries a timeout of
//!   [`NetConfig::heartbeat_ms`]; each expiry enqueues one out-of-band
//!   `{"schema": "spatial-serve-ping/v1", "nonce": N}` line. A client
//!   reply of `{"op": "pong"}` (consumed as transport noise, no sequence
//!   number) — or any other traffic — resets the miss counter. After
//!   [`NetConfig::max_missed`] consecutive silent intervals the session is
//!   closed as [`SessionEnd::IdleTimeout`].
//! * **Backpressure** — output lines pass through a bounded queue
//!   ([`QueueWriter`], capacity [`NetConfig::send_queue_lines`]) drained
//!   by a dedicated writer thread. A client that stops reading stalls the
//!   queue; once an enqueue has waited [`NetConfig::write_stall_ms`] the
//!   session is cut as [`SessionEnd::SlowClient`] instead of wedging the
//!   daemon. Journaled-before-delivery ordering is preserved: a line the
//!   queue never delivered is re-sent from the journal on reconnect.
//! * **Drain** — the accept loop polls a nonblocking listener every
//!   [`NetConfig::accept_poll_ms`], checking the caller's stop flag and
//!   the process-wide [`crate::serve::drain_requested`] flag between
//!   polls, so SIGTERM wakes a listener with zero live connections (no
//!   blocked `accept()` to race). A live session notices drain at its
//!   next line or heartbeat expiry, finishes what it admitted, snapshots,
//!   and closes as [`SessionEnd::Drained`]. The in-band `{"op": "drain"}`
//!   verb drains the whole daemon, not just its connection.
//!
//! Sessions are accepted **one at a time** (the backlog queues the rest):
//! the write-ahead journal is single-writer, and the exactly-once resume
//! contract is defined over one totally-ordered stream. Concurrency lives
//! inside the session (the worker pool), not across sessions.

use std::collections::VecDeque;
use std::io::{self, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::json::Json;
use crate::lines;
use crate::serve::{drain_requested, serve, ServeConfig, ServeSummary};

/// Process exit code (and per-session label code) for a transport-layer
/// disconnect: slow client, idle timeout, peer error, rejected handshake,
/// or a reconnecting client that exhausted its retries.
pub const EXIT_TRANSPORT_DISCONNECT: i32 = 15;

/// Supervision knobs for the TCP front end.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetConfig {
    /// Read-timeout interval; each expiry sends one heartbeat ping.
    pub heartbeat_ms: u64,
    /// Consecutive silent heartbeat intervals before the session is closed
    /// as idle.
    pub max_missed: u32,
    /// Bounded output queue capacity, in lines.
    pub send_queue_lines: usize,
    /// How long an enqueue may wait on a full queue (and the socket write
    /// timeout) before the client is declared slow and disconnected.
    pub write_stall_ms: u64,
    /// Accept-loop poll interval while the listener is idle.
    pub accept_poll_ms: u64,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            heartbeat_ms: 2000,
            max_missed: 3,
            send_queue_lines: 1024,
            write_stall_ms: 5000,
            accept_poll_ms: 25,
        }
    }
}

/// How a session ended — every way a connection can leave the daemon,
/// typed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionEnd {
    /// Clean EOF from the peer (orderly shutdown of its write half).
    Eof,
    /// Drain: the in-band verb, the caller's stop flag, or SIGTERM.
    Drained,
    /// The peer went silent past the heartbeat allowance.
    IdleTimeout,
    /// The peer stopped reading and the bounded output queue stalled.
    SlowClient,
    /// A transport error (reset, broken pipe) ended the session.
    PeerError,
    /// The first consuming line was not an acceptable `hello`.
    HandshakeRejected,
}

impl SessionEnd {
    /// Every end, in summary-bucket order.
    pub const ALL: [SessionEnd; 6] = [
        SessionEnd::Eof,
        SessionEnd::Drained,
        SessionEnd::IdleTimeout,
        SessionEnd::SlowClient,
        SessionEnd::PeerError,
        SessionEnd::HandshakeRejected,
    ];

    /// Log/report spelling.
    pub fn label(self) -> &'static str {
        match self {
            SessionEnd::Eof => "eof",
            SessionEnd::Drained => "drained",
            SessionEnd::IdleTimeout => "idle-timeout",
            SessionEnd::SlowClient => "slow-client",
            SessionEnd::PeerError => "peer-error",
            SessionEnd::HandshakeRejected => "handshake-rejected",
        }
    }

    /// Index in [`SessionEnd::ALL`] (total match — see
    /// [`crate::job::Outcome::index`] for the idiom).
    pub fn index(self) -> usize {
        match self {
            SessionEnd::Eof => 0,
            SessionEnd::Drained => 1,
            SessionEnd::IdleTimeout => 2,
            SessionEnd::SlowClient => 3,
            SessionEnd::PeerError => 4,
            SessionEnd::HandshakeRejected => 5,
        }
    }

    /// Exit code a single-session process would report: clean ends exit 0,
    /// every transport failure exits [`EXIT_TRANSPORT_DISCONNECT`].
    pub fn exit_code(self) -> i32 {
        match self {
            SessionEnd::Eof | SessionEnd::Drained => 0,
            _ => EXIT_TRANSPORT_DISCONNECT,
        }
    }
}

/// What a listener served before it stopped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetSummary {
    /// Connections accepted.
    pub sessions: u64,
    /// Per-[`SessionEnd`] counts, indexed by [`SessionEnd::index`].
    pub ends: [u64; SessionEnd::ALL.len()],
    /// Consuming lines served across all sessions.
    pub lines: u64,
    /// Job result lines emitted across all sessions.
    pub jobs: u64,
}

impl NetSummary {
    /// Sessions that ended as `end`.
    pub fn count(&self, end: SessionEnd) -> u64 {
        self.ends[end.index()]
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Bounded output queue
// ---------------------------------------------------------------------------

struct QueueState {
    queue: VecDeque<Vec<u8>>,
    /// Configured line cap (the `VecDeque` allocation may exceed it).
    capacity: usize,
    closed: bool,
    /// First delivery error, surfaced to producers on their next enqueue
    /// (`io::Error` is not `Clone`, so kind + message are kept instead).
    err: Option<(io::ErrorKind, String)>,
}

struct QueueShared {
    state: Mutex<QueueState>,
    /// Signals the writer thread: a line arrived or the queue closed.
    ready: Condvar,
    /// Signals producers: the writer freed a slot (or died).
    space: Condvar,
}

impl QueueShared {
    fn surface(g: &QueueState) -> io::Result<()> {
        match &g.err {
            Some((kind, msg)) => Err(io::Error::new(*kind, msg.clone())),
            None => Ok(()),
        }
    }
}

/// The write half handed to the serving loop: buffers until a full line,
/// then enqueues it for the writer thread, blocking up to the stall budget
/// when the queue is full. An exceeded stall budget is the slow-client
/// signal: the enqueue fails with `WouldBlock` and the session ends.
pub struct QueueWriter {
    shared: Arc<QueueShared>,
    partial: Vec<u8>,
    capacity: usize,
    stall: Duration,
}

impl QueueWriter {
    fn enqueue(&self, line: Vec<u8>) -> io::Result<()> {
        let deadline = Instant::now() + self.stall;
        let mut g = lock(&self.shared.state);
        loop {
            QueueShared::surface(&g)?;
            if g.queue.len() < self.capacity {
                g.queue.push_back(line);
                self.shared.ready.notify_all();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    format!(
                        "slow client: send queue full ({} lines) for {} ms",
                        self.capacity,
                        self.stall.as_millis()
                    ),
                ));
            }
            g = self.shared.space.wait_timeout(g, deadline - now).map(|(g, _)| g).unwrap_or_else(
                |e| {
                    let (g, _) = e.into_inner();
                    g
                },
            );
        }
    }
}

impl Write for QueueWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.partial.extend_from_slice(buf);
        while let Some(pos) = self.partial.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.partial.drain(..=pos).collect();
            self.enqueue(line)?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        // Delivery is the writer thread's job; completed lines are already
        // queued and partial lines must wait for their newline.
        Ok(())
    }
}

/// The retained half of a [`QueueWriter`]: out-of-band ping injection plus
/// orderly shutdown of the writer thread.
struct QueueHandle {
    shared: Arc<QueueShared>,
    join: std::thread::JoinHandle<()>,
}

impl QueueHandle {
    /// Enqueues a line without blocking; full queue or dead writer drops it
    /// (a ping the client cannot take is not worth stalling reads for).
    fn try_enqueue(&self, line: Vec<u8>) {
        let mut g = lock(&self.shared.state);
        if g.err.is_none() && g.queue.len() < g.capacity {
            g.queue.push_back(line);
            self.shared.ready.notify_all();
        }
    }

    /// Closes the queue, waits for the writer to drain it, and reports the
    /// first delivery error if there was one.
    fn finish(self) -> io::Result<()> {
        {
            let mut g = lock(&self.shared.state);
            g.closed = true;
            self.shared.ready.notify_all();
        }
        let _ = self.join.join();
        let g = lock(&self.shared.state);
        QueueShared::surface(&g)
    }
}

/// Starts a writer thread draining the queue into `sink`. Generic over the
/// sink so tests can drive the backpressure path without a socket.
fn spawn_queue<W: Write + Send + 'static>(
    sink: W,
    capacity: usize,
    stall: Duration,
) -> (QueueWriter, QueueHandle) {
    let shared = Arc::new(QueueShared {
        state: Mutex::new(QueueState {
            queue: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            closed: false,
            err: None,
        }),
        ready: Condvar::new(),
        space: Condvar::new(),
    });
    let thread_shared = Arc::clone(&shared);
    let mut sink = sink;
    let join = std::thread::spawn(move || loop {
        let line = {
            let mut g = lock(&thread_shared.state);
            loop {
                if let Some(l) = g.queue.pop_front() {
                    thread_shared.space.notify_all();
                    break Some(l);
                }
                if g.closed || g.err.is_some() {
                    break None;
                }
                g = thread_shared.ready.wait(g).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(line) = line else { return };
        if let Err(e) = sink.write_all(&line).and_then(|()| sink.flush()) {
            let mut g = lock(&thread_shared.state);
            g.err = Some((e.kind(), e.to_string()));
            g.queue.clear();
            thread_shared.space.notify_all();
            return;
        }
    });
    (
        QueueWriter {
            shared: Arc::clone(&shared),
            partial: Vec::new(),
            capacity: capacity.max(1),
            stall,
        },
        QueueHandle { shared, join },
    )
}

// ---------------------------------------------------------------------------
// Session read side
// ---------------------------------------------------------------------------

/// The read half of a session: a socket with a read timeout, turned into a
/// plain blocking reader that answers each timeout with a heartbeat ping
/// and converts sustained silence — or a requested drain — into EOF.
struct SessionReader<'a> {
    stream: TcpStream,
    pings: &'a QueueHandle,
    net: &'a NetConfig,
    stop: &'a AtomicBool,
    missed: u32,
    nonce: u64,
    /// Set when EOF was synthesized by the idle cutoff (distinguishes
    /// [`SessionEnd::IdleTimeout`] from a real EOF afterwards).
    idle: Arc<AtomicBool>,
}

impl Read for SessionReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.stop.load(Ordering::SeqCst) || drain_requested() {
                return Ok(0); // drain: synthesize EOF, serve finishes up
            }
            match self.stream.read(buf) {
                Ok(n) => {
                    self.missed = 0;
                    return Ok(n);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    self.missed += 1;
                    if self.missed > self.net.max_missed {
                        self.idle.store(true, Ordering::SeqCst);
                        return Ok(0);
                    }
                    self.nonce += 1;
                    let ping = format!(
                        "{{\"schema\": \"spatial-serve-ping/v1\", \"nonce\": {}}}\n",
                        self.nonce
                    );
                    self.pings.try_enqueue(ping.into_bytes());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Hello {
    resume_from: u64,
    tenant: Option<String>,
}

/// Parses a `hello` line. `Err` is the rejection message for the ack.
fn parse_hello(line: &str, journaled: bool) -> Result<Hello, String> {
    let v = Json::parse(line).map_err(|e| format!("handshake is not valid JSON: {e}"))?;
    match v.get("op").and_then(Json::as_str) {
        Some("hello") => {}
        Some(other) => return Err(format!("expected op \"hello\", got {other:?}")),
        None => return Err("expected a {\"op\": \"hello\"} handshake line".into()),
    }
    let resume_from = match v.get("resume_from") {
        None => 0,
        Some(j) => j
            .as_u64()
            .ok_or_else(|| "field \"resume_from\" must be a non-negative integer".to_string())?,
    };
    if resume_from > 0 && !journaled {
        return Err(format!(
            "resume_from {resume_from} requires a journal: the daemon has no \
             record to redeliver from (start it with --journal)"
        ));
    }
    let tenant = match v.get("tenant") {
        None => None,
        Some(j) => Some(
            j.as_str().ok_or_else(|| "field \"tenant\" must be a string".to_string())?.to_string(),
        ),
    };
    Ok(Hello { resume_from, tenant })
}

fn hello_ack(ok: bool, resume_from: u64, tenant: Option<&str>, error: Option<&str>) -> String {
    let mut s = String::from("{\"schema\": \"spatial-serve-hello/v1\", ");
    s.push_str(&format!("\"ok\": {ok}, \"resume_from\": {resume_from}, "));
    match tenant {
        Some(t) => s.push_str(&format!("\"tenant\": \"{}\", ", crate::json::escape(t))),
        None => s.push_str("\"tenant\": null, "),
    }
    match error {
        Some(e) => s.push_str(&format!("\"error\": \"{}\"", crate::json::escape(e))),
        None => s.push_str("\"error\": null"),
    }
    s.push('}');
    s.push('\n');
    s
}

// ---------------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------------

/// Serves connections from `listener` until `stop` is set or a drain is
/// requested ([`crate::serve::request_drain`] / the in-band verb). Each
/// session runs the full serving loop over its socket; the journal and
/// resume watermarks give reconnecting clients exactly-once delivery
/// across sessions. Per-session failures are classified in the summary,
/// never propagated — only listener-level errors end the loop.
pub fn serve_listener(
    listener: TcpListener,
    cfg: &ServeConfig,
    net: &NetConfig,
    stop: &AtomicBool,
) -> io::Result<NetSummary> {
    listener.set_nonblocking(true)?;
    let poll = Duration::from_millis(net.accept_poll_ms.max(1));
    let mut summary = NetSummary::default();
    loop {
        if stop.load(Ordering::SeqCst) || drain_requested() {
            return Ok(summary);
        }
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(poll);
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        summary.sessions += 1;
        let (end, served) = serve_session(stream, cfg, net, stop);
        summary.ends[end.index()] += 1;
        if let Some(s) = served {
            summary.lines += s.lines;
            summary.jobs += s.jobs;
        }
        if end == SessionEnd::Drained {
            // The in-band drain verb shuts the daemon down, same as on
            // stdin; stop-flag and SIGTERM drains land here too.
            return Ok(summary);
        }
    }
}

/// Runs one connection through handshake + serving loop and classifies how
/// it ended. `None` summary means the serving loop never started (rejected
/// or empty handshake).
fn serve_session(
    stream: TcpStream,
    cfg: &ServeConfig,
    net: &NetConfig,
    stop: &AtomicBool,
) -> (SessionEnd, Option<ServeSummary>) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(Duration::from_millis(net.heartbeat_ms.max(1)))).is_err() {
        return (SessionEnd::PeerError, None);
    }
    let write_half = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return (SessionEnd::PeerError, None),
    };
    let _ = write_half.set_write_timeout(Some(Duration::from_millis(net.write_stall_ms.max(1))));
    let stall = Duration::from_millis(net.write_stall_ms);
    let (writer, handle) = spawn_queue(write_half, net.send_queue_lines, stall);

    let idle = Arc::new(AtomicBool::new(false));
    let reader = SessionReader {
        stream,
        pings: &handle,
        net,
        stop,
        missed: 0,
        nonce: 0,
        idle: Arc::clone(&idle),
    };
    let mut input = BufReader::new(reader);

    // Handshake: scan to the first consuming line (comments, blanks and
    // stray pongs are transport noise even before hello).
    let mut writer = writer;
    let mut buf = Vec::new();
    let first = loop {
        match lines::read_raw_line(&mut input, &mut buf) {
            Ok(0) => {
                let _ = handle.finish();
                let end = if stop.load(Ordering::SeqCst) || drain_requested() {
                    SessionEnd::Drained
                } else if idle.load(Ordering::SeqCst) {
                    SessionEnd::IdleTimeout
                } else {
                    SessionEnd::Eof
                };
                return (end, None);
            }
            Ok(_) => {
                if !lines::is_complete(&buf) {
                    continue; // torn tail: EOF comes on the next read
                }
                match lines::consuming(&buf) {
                    None => continue,
                    Some(t) if lines::is_pong(&t) => continue,
                    Some(t) => break t,
                }
            }
            Err(_) => {
                let _ = handle.finish();
                return (SessionEnd::PeerError, None);
            }
        }
    };
    let hello = match parse_hello(&first, cfg.journal.is_some()) {
        Ok(h) => h,
        Err(msg) => {
            let _ = writer.write_all(hello_ack(false, 0, None, Some(&msg)).as_bytes());
            let _ = handle.finish();
            return (SessionEnd::HandshakeRejected, None);
        }
    };
    let ack = hello_ack(true, hello.resume_from, hello.tenant.as_deref(), None);
    if writer.write_all(ack.as_bytes()).is_err() {
        let _ = handle.finish();
        return (SessionEnd::PeerError, None);
    }

    // The session's serving loop: same core as stdin, with the client's
    // watermark as the resume point and torn tails discarded (a TCP cut
    // mid-line must not consume a half line — the reconnect will restream
    // it whole).
    let session_cfg =
        ServeConfig { resume_from: hello.resume_from, discard_torn_tail: true, ..cfg.clone() };
    let result = serve(&mut input, writer, &session_cfg);
    let queue_err = handle.finish();
    let end = match &result {
        Ok(s) if s.drained || stop.load(Ordering::SeqCst) || drain_requested() => {
            SessionEnd::Drained
        }
        Ok(_) if idle.load(Ordering::SeqCst) => SessionEnd::IdleTimeout,
        Ok(_) => match queue_err {
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => SessionEnd::SlowClient,
            Err(_) => SessionEnd::PeerError,
            Ok(()) => SessionEnd::Eof,
        },
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => SessionEnd::SlowClient,
        Err(_) => SessionEnd::PeerError,
    };
    (end, result.ok())
}

/// A listener running on its own thread — the in-process harness for tests
/// and the building block `main` uses for `serve --listen`.
pub struct NetHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: std::thread::JoinHandle<io::Result<NetSummary>>,
}

impl NetHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests stop and waits for the accept loop to finish.
    pub fn stop(self) -> io::Result<NetSummary> {
        self.stop.store(true, Ordering::SeqCst);
        self.join.join().unwrap_or_else(|_| Err(io::Error::other("listener thread panicked")))
    }

    /// Waits for the accept loop to finish on its own (drain verb or
    /// process-wide drain).
    pub fn join(self) -> io::Result<NetSummary> {
        self.join.join().unwrap_or_else(|_| Err(io::Error::other("listener thread panicked")))
    }
}

/// Binds `addr` and serves it on a background thread. The stop flag is
/// instance-scoped, so parallel in-process listeners (tests) cannot drain
/// each other.
pub fn spawn_listener<A: ToSocketAddrs>(
    addr: A,
    cfg: ServeConfig,
    net: NetConfig,
) -> io::Result<NetHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let join = std::thread::spawn(move || serve_listener(listener, &cfg, &net, &thread_stop));
    Ok(NetHandle { addr, stop, join })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink that accepts one write then blocks until dropped — the
    /// narrowest model of a client that stopped reading.
    struct StuckSink {
        unblock: Arc<AtomicBool>,
    }

    impl Write for StuckSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            while !self.unblock.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn full_queue_times_out_as_slow_client_not_a_hang() {
        let unblock = Arc::new(AtomicBool::new(false));
        let sink = StuckSink { unblock: Arc::clone(&unblock) };
        let (mut w, handle) = spawn_queue(sink, 2, Duration::from_millis(50));
        // The writer thread takes one line off the queue and wedges in the
        // sink; two more fill the queue; the next must time out.
        let start = Instant::now();
        let mut stalled = None;
        for i in 0..8 {
            if let Err(e) = writeln!(w, "line {i}") {
                stalled = Some(e);
                break;
            }
        }
        let e = stalled.expect("a bounded queue against a stuck sink must stall");
        assert_eq!(e.kind(), io::ErrorKind::WouldBlock, "{e}");
        assert!(e.to_string().contains("slow client"), "{e}");
        assert!(start.elapsed() < Duration::from_secs(5), "stall must be bounded");
        unblock.store(true, Ordering::SeqCst);
        handle.finish().expect("queue drains once the sink unblocks");
    }

    #[test]
    fn queue_preserves_line_order_and_finish_drains() {
        let out = Arc::new(Mutex::new(Vec::new()));
        struct Cap(Arc<Mutex<Vec<u8>>>);
        impl Write for Cap {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let (mut w, handle) = spawn_queue(Cap(Arc::clone(&out)), 4, Duration::from_millis(500));
        for i in 0..32 {
            writeln!(w, "{i}").expect("queue accepts under drain");
        }
        handle.finish().expect("clean finish");
        let text = String::from_utf8(out.lock().unwrap().clone()).unwrap();
        let got: Vec<&str> = text.lines().collect();
        let want: Vec<String> = (0..32).map(|i| i.to_string()).collect();
        assert_eq!(got, want, "FIFO order through the bounded queue");
    }

    #[test]
    fn hello_parsing_accepts_and_rejects() {
        assert!(parse_hello(r#"{"op": "hello"}"#, false).is_ok());
        let h = parse_hello(r#"{"op": "hello", "resume_from": 7, "tenant": "t"}"#, true).unwrap();
        assert_eq!((h.resume_from, h.tenant.as_deref()), (7, Some("t")));
        let e = parse_hello(r#"{"op": "hello", "resume_from": 7}"#, false).unwrap_err();
        assert!(e.contains("requires a journal"), "{e}");
        assert!(parse_hello(r#"{"kind": "scan", "n": 16}"#, true).is_err());
        assert!(parse_hello("not json", true).is_err());
    }

    #[test]
    fn session_end_metadata_is_total() {
        for (i, end) in SessionEnd::ALL.into_iter().enumerate() {
            assert_eq!(end.index(), i);
            assert!(!end.label().is_empty());
        }
        assert_eq!(SessionEnd::Eof.exit_code(), 0);
        assert_eq!(SessionEnd::Drained.exit_code(), 0);
        assert_eq!(SessionEnd::SlowClient.exit_code(), EXIT_TRANSPORT_DISCONNECT);
    }
}
