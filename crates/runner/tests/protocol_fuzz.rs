//! Seeded protocol fuzzing for the serve loop: the parser must never
//! panic, and the one-output-line-per-consuming-input-line invariant must
//! hold for *arbitrary* bytes, not just well-formed submissions.
//!
//! Three generators stress different failure surfaces: raw byte soup
//! (UTF-8 validity, lossy decoding), JSON token salads (parser state
//! machine, half-open structures, wrong value types), and single-byte
//! mutations of a valid submission (near-miss field names, corrupted
//! numbers). A parser panic fails the test by propagating out of
//! `serve`'s thread scope; a swallowed or duplicated reply fails the
//! line-count accounting.
//!
//! The same soup is also fired over a real loopback socket: the TCP front
//! end shares the serve loop, but adds a handshake, heartbeat timers, and
//! a bounded output queue between the bytes and the parser — none of which
//! may change the answer-every-consuming-line invariant.

use std::io::{Read, Write};

use runner::{serve, spawn_listener, NetConfig, ServeConfig};
use spatial_rng::Rng;

/// Replicates the serve reader's consuming-line test: lossy-decode, trim,
/// skip blanks and `#` comments. Anything else must produce exactly one
/// output line.
fn consumes(line: &[u8]) -> bool {
    let lossy = String::from_utf8_lossy(line);
    let trimmed = lossy.trim();
    !trimmed.is_empty() && !trimmed.starts_with('#')
}

/// One fuzzed line, newline-free. Two tokens are excluded from every
/// generator: `drain` (a fuzzed drain verb would legitimately end the
/// session early) and `pong` (heartbeat replies are transport noise and
/// consume no sequence number) — either would invalidate the line-count
/// invariant this test pins without indicating a bug.
fn gen_line(rng: &mut Rng) -> Vec<u8> {
    const TOKENS: &[&str] = &[
        "{",
        "}",
        "[",
        "]",
        ":",
        ",",
        "\"",
        "\"kind\"",
        "\"scan\"",
        "\"sort\"",
        "\"n\"",
        "7",
        "-3",
        "1e9",
        "0.5",
        "\"op\"",
        "\"stats\"",
        "\"tenant\"",
        "\"budget\"",
        "\"extent\"",
        "\"rows\"",
        "\"cols\"",
        "\"predict\"",
        "true",
        "false",
        "null",
        "\"id\"",
        "\"x\"",
        "\"seed\"",
        "\"faults\"",
        "\"rate\"",
        "nonsense",
        "\u{fffd}",
        "\\u0041",
        "\\",
    ];
    let line: Vec<u8> = match rng.gen_range(0..3u32) {
        // Raw byte soup: every value but the line separator.
        0 => (0..rng.gen_range(0..40usize))
            .map(|_| loop {
                let b = (rng.next_u64() & 0xff) as u8;
                if b != b'\n' {
                    break b;
                }
            })
            .collect(),
        // JSON token salad.
        1 => {
            let mut s = String::new();
            for _ in 0..rng.gen_range(1..8usize) {
                s.push_str(TOKENS[rng.gen_range(0..TOKENS.len())]);
                if rng.gen_bool(0.3) {
                    s.push(' ');
                }
            }
            s.into_bytes()
        }
        // A valid submission with one byte flipped. Sizes stay tiny, so
        // even a mutation that still parses runs in microseconds.
        _ => {
            let mut bytes = br#"{"kind": "scan", "n": 16, "seed": 3, "id": "f"}"#.to_vec();
            let i = rng.gen_range(0..bytes.len());
            loop {
                let b = (rng.next_u64() & 0xff) as u8;
                if b != b'\n' && b != bytes[i] {
                    bytes[i] = b;
                    break;
                }
            }
            bytes
        }
    };
    if line.windows(5).any(|w| w == b"drain") {
        return b"# drained".to_vec();
    }
    if line.windows(4).any(|w| w == b"pong") {
        return b"# ponged".to_vec();
    }
    line
}

#[test]
fn fuzzed_streams_never_panic_and_answer_every_consuming_line() {
    for seed in 0..4u64 {
        let mut rng = Rng::seed_from_u64(0xF022 + seed);
        let mut input = Vec::new();
        let mut expected = 0usize;
        for _ in 0..300 {
            let line = gen_line(&mut rng);
            if consumes(&line) {
                expected += 1;
            }
            input.extend_from_slice(&line);
            input.push(b'\n');
        }
        let cfg = ServeConfig { workers: 2, canonical: true, ..Default::default() };
        let mut out = Vec::new();
        let summary = serve(std::io::Cursor::new(input), &mut out, &cfg).expect("fuzzed serve I/O");
        let got = out.iter().filter(|&&b| b == b'\n').count();
        assert_eq!(got, expected, "seed {seed}: one output line per consuming input line");
        assert_eq!(summary.lines, expected as u64, "seed {seed}");
    }
}

/// The same byte soup through a real `TcpStream`: hello handshake, then
/// fuzz, then a clean half-close. The daemon must classify the session as
/// ordinary EOF (answered, not killed) and every consuming line must get
/// its reply — with the hello ack and any heartbeat pings filtered out as
/// transport noise, exactly as a real client would.
#[test]
fn fuzzed_streams_over_a_loopback_socket_answer_every_consuming_line() {
    let cfg = ServeConfig { workers: 2, canonical: true, ..Default::default() };
    // Generous heartbeat: this test pins parsing, not timer behaviour.
    let net = NetConfig { heartbeat_ms: 10_000, ..Default::default() };
    let handle = spawn_listener("127.0.0.1:0", cfg, net).expect("bind loopback");
    let addr = handle.addr();
    for seed in 0..2u64 {
        let mut rng = Rng::seed_from_u64(0x50CC + seed);
        let mut input = Vec::new();
        let mut expected = 0usize;
        for _ in 0..200 {
            let line = gen_line(&mut rng);
            if consumes(&line) {
                expected += 1;
            }
            input.extend_from_slice(&line);
            input.push(b'\n');
        }
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream.write_all(b"{\"op\": \"hello\", \"resume_from\": 0}\n").expect("hello");
        stream.write_all(&input).expect("fuzz payload");
        stream.shutdown(std::net::Shutdown::Write).expect("half-close");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("daemon must answer byte soup, not die");
        // Only the handshake ack and heartbeat pings are transport noise;
        // ctl/stats replies are the answers this invariant counts.
        let noise = ["\"spatial-serve-ping/v1\"", "\"spatial-serve-hello/v1\""];
        let got = out.lines().filter(|l| !noise.iter().any(|n| l.contains(n))).count();
        assert_eq!(got, expected, "seed {seed}: loopback answers every consuming line");
    }
    handle.stop().expect("listener stops cleanly after soup");
}
