//! Property tests for the deficit-round-robin scheduler behind `serve`.
//!
//! Three guarantees are pinned over randomized tenant populations and job
//! mixes:
//!
//! 1. **Starvation bound** — between two consecutive dispatches of a
//!    backlogged tenant, the other `K-1` tenants dispatch at most
//!    `(K-1) * ceil(Wmax / quantum)` jobs: a tenant needs at most
//!    `ceil(w / quantum)` ring visits to cover its front job, and every
//!    other tenant is visited (and dispatches at most once) exactly once
//!    between two of its visits.
//! 2. **FIFO per tenant, exactly once** — a full drain dispatches every
//!    submission exactly once, and each tenant's jobs leave in submission
//!    order (the invariant the budget ledger's determinism rests on).
//! 3. **Determinism** — the dispatch order and per-tenant completion
//!    counts are a pure function of the submission sequence; replaying the
//!    same generated workload yields identical `completion_counts()`.

use runner::{DrrScheduler, Submission};
use spatial_core::check::{check, Gen};

fn workload(g: &mut Gen) -> (u64, Vec<Submission>) {
    let tenants = g.int(2..=6usize);
    let quantum = g.int(16..=256u64);
    let wmax = g.int(quantum..=4 * quantum);
    let jobs_per_tenant = g.int(8..=24usize);
    let mut subs = Vec::new();
    let mut seq = 0u64;
    for j in 0..jobs_per_tenant {
        for t in 0..tenants {
            let mut spec = runner::JobSpec::new(format!("t{t}-j{j}"), runner::JobKind::Scan);
            spec.n = g.int(1..=wmax);
            subs.push(Submission { seq, tenant: format!("t{t}"), spec });
            seq += 1;
        }
    }
    (quantum, subs)
}

fn tenant_count(subs: &[Submission]) -> usize {
    let mut names: Vec<&str> = subs.iter().map(|s| s.tenant.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    names.len()
}

fn max_weight(subs: &[Submission]) -> u64 {
    subs.iter().map(|s| runner::tenant::weight(&s.spec)).max().unwrap_or(1)
}

/// Dispatch-complete loop that records the tenant order; stops as soon as
/// any tenant's queue drains so every measurement happens while all
/// tenants are backlogged.
fn drain_while_all_backlogged(
    sched: &mut DrrScheduler,
    per_tenant: usize,
    tenants: usize,
) -> Vec<(String, u64)> {
    let mut dispatched: Vec<(String, u64)> = Vec::new();
    let mut counts = vec![0usize; tenants];
    while let Some(sub) = sched.next() {
        let w = runner::tenant::weight(&sub.spec);
        sched.complete(&sub.tenant, 0);
        let idx: usize = sub.tenant[1..].parse().expect("tenant name tN");
        dispatched.push((sub.tenant, w));
        counts[idx] += 1;
        if counts[idx] == per_tenant {
            break; // this tenant's queue is empty now — stop measuring
        }
    }
    dispatched
}

#[test]
fn no_tenant_starves_beyond_the_quantum_bound() {
    check("no_tenant_starves_beyond_the_quantum_bound", |g| {
        let (quantum, subs) = workload(g);
        let k = tenant_count(&subs);
        let wmax = max_weight(&subs);
        let per_tenant = subs.len() / k;
        let mut sched = DrrScheduler::new(quantum);
        for sub in subs.clone() {
            sched.enqueue(sub);
        }
        let dispatched = drain_while_all_backlogged(&mut sched, per_tenant, k);
        // A front job of weight w needs at most ceil(w / quantum) visits;
        // each other tenant dispatches at most one job per intervening
        // visit. The +1 covers the partial ring pass around each endpoint.
        let bound = (k as u64 - 1) * (wmax.div_ceil(quantum) + 1);
        let mut last_seen = vec![None::<usize>; k];
        for (pos, (tenant, _)) in dispatched.iter().enumerate() {
            let idx: usize = tenant[1..].parse().unwrap();
            if let Some(prev) = last_seen[idx] {
                let gap = (pos - prev - 1) as u64;
                if gap > bound {
                    return Err(format!(
                        "tenant {tenant} waited {gap} foreign dispatches between \
                         its own (bound {bound}, k={k}, quantum={quantum}, wmax={wmax})"
                    ));
                }
            }
            last_seen[idx] = Some(pos);
        }
        Ok(())
    });
}

#[test]
fn full_drain_is_exactly_once_and_fifo_per_tenant() {
    check("full_drain_is_exactly_once_and_fifo_per_tenant", |g| {
        let (quantum, subs) = workload(g);
        let mut sched = DrrScheduler::new(quantum);
        for sub in subs.clone() {
            sched.enqueue(sub);
        }
        let mut seen = Vec::new();
        let mut last_seq: std::collections::HashMap<String, u64> = Default::default();
        while let Some(sub) = sched.next() {
            sched.complete(&sub.tenant, 0);
            if let Some(&prev) = last_seq.get(&sub.tenant) {
                if sub.seq <= prev {
                    return Err(format!(
                        "tenant {} dispatched seq {} after seq {prev} — \
                         per-tenant FIFO broken (the budget ledger relies on it)",
                        sub.tenant, sub.seq
                    ));
                }
            }
            last_seq.insert(sub.tenant.clone(), sub.seq);
            seen.push(sub.seq);
        }
        if sched.pending() != 0 {
            return Err(format!("{} jobs stranded after drain", sched.pending()));
        }
        seen.sort_unstable();
        let want: Vec<u64> = subs.iter().map(|s| s.seq).collect();
        if seen != want {
            return Err("drain did not dispatch every submission exactly once".into());
        }
        Ok(())
    });
}

#[test]
fn completion_counts_are_deterministic_for_a_fixed_seed() {
    check("completion_counts_are_deterministic_for_a_fixed_seed", |g| {
        let (quantum, subs) = workload(g);
        let run = || {
            let mut sched = DrrScheduler::new(quantum);
            for sub in subs.clone() {
                sched.enqueue(sub);
            }
            let mut order = Vec::new();
            while let Some(sub) = sched.next() {
                order.push(sub.spec.id.clone());
                sched.complete(&sub.tenant, sub.spec.n.max(1));
            }
            (order, sched.completion_counts())
        };
        let (order_a, counts_a) = run();
        let (order_b, counts_b) = run();
        if order_a != order_b {
            return Err("same submissions produced different dispatch orders".into());
        }
        if counts_a != counts_b {
            return Err(format!("completion counts diverged: {counts_a:?} vs {counts_b:?}"));
        }
        // Everything queued was eventually dispatched exactly once.
        let total: u64 = counts_a.iter().map(|(_, c)| c).sum();
        if total != subs.len() as u64 {
            return Err(format!("{total} completions for {} submissions", subs.len()));
        }
        Ok(())
    });
}

#[test]
fn admission_is_a_pure_function_of_the_sequence_stream() {
    use runner::{RateLimit, TenantConfig};
    check("admission_is_a_pure_function_of_the_sequence_stream", |g| {
        let burst = g.int(1..=4u64);
        let window = g.int(1..=16u64);
        let seqs: Vec<u64> = {
            let len = g.int(10..=50usize);
            let mut s = 0u64;
            g.vec(len, |g| {
                s += g.int(1..=3u64);
                s
            })
        };
        let decide = || {
            let mut sched = DrrScheduler::new(64);
            sched.register(
                "t",
                TenantConfig { rate: Some(RateLimit { burst, window }), ..Default::default() },
            );
            seqs.iter().map(|&s| sched.admit("t", s).is_ok()).collect::<Vec<_>>()
        };
        if decide() != decide() {
            return Err("same seq stream produced different admissions".into());
        }
        // The burst cap is actually enforced: inside any window at most
        // `burst` admissions.
        let admits = decide();
        for (i, &s) in seqs.iter().enumerate() {
            let in_window = seqs
                .iter()
                .zip(&admits)
                .take(i + 1)
                .filter(|&(&q, &a)| a && q + window > s)
                .count() as u64;
            if in_window > burst {
                return Err(format!(
                    "{in_window} admissions inside window ending at seq {s} \
                     (burst {burst}, window {window})"
                ));
            }
        }
        Ok(())
    });
}
