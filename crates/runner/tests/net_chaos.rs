//! Seeded network-chaos matrix for the TCP front end.
//!
//! Every scenario runs a real loopback listener ([`runner::net`]) against
//! the reconnecting client ([`runner::client`]), with the client's
//! transport wrapped in a seed-deterministic [`ChaosTransport`]. The
//! acceptance bar is the same byte-exactness the SIGKILL harness enforces:
//! whatever the chaos plan does — torn lines, partial writes, injected
//! delays, mid-line disconnects — the client's concatenated observed
//! stream must equal one uninterrupted in-process run, with no duplicate
//! and no lost result lines (the client itself fails on a duplicate, so a
//! passing run *is* the exactly-once proof).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use runner::chaos_net::{ChaosTransport, NetChaosPlan};
use runner::client::{run_client, ClientConfig, Conn};
use runner::net::{spawn_listener, NetConfig, SessionEnd};
use runner::{serve, ServeConfig};
use spatial_core::recovery::BackoffPolicy;

/// Same shape as the SIGKILL harness stream: every admission layer, a
/// contained panic, and the stats barrier, so resume is tested against
/// state it actually has to rebuild.
const STREAM: &str = r#"{"op": "tenant", "tenant": "meter", "budget": 700, "predict": true}
{"op": "tenant", "tenant": "boxed", "extent": {"rows": 8, "cols": 8}}
{"kind": "scan", "n": 64, "seed": 1, "id": "j0"}
{"kind": "sort", "n": 256, "seed": 2, "id": "j1"}
{"kind": "scan", "n": 64, "seed": 4, "tenant": "meter", "id": "m0"}
{"kind": "scan", "n": 64, "seed": 5, "tenant": "meter", "id": "m1"}
{"kind": "sort", "n": 4096, "seed": 6, "tenant": "meter", "id": "m-predicted"}
{"kind": "scan", "n": 64, "seed": 7, "tenant": "meter", "id": "m-burn"}
{"kind": "scan", "n": 16, "seed": 8, "tenant": "meter", "id": "m-refused"}
{"kind": "sort", "n": 256, "seed": 9, "tenant": "boxed", "id": "b-wide"}
{"kind": "scan", "n": 64, "seed": 10, "tenant": "boxed", "id": "b-fits"}
{"kind": "select", "n": 128, "k": 32, "seed": 11, "id": "j3"}
{"kind": "chaos-panic", "id": "j6"}
{"kind": "scan", "n": 64, "seed": 14, "id": "j7"}
{"op": "stats"}
"#;

fn serve_cfg() -> ServeConfig {
    ServeConfig { workers: 2, canonical: true, ..Default::default() }
}

/// The uninterrupted transcript: one in-process, journal-free run.
fn golden() -> Vec<String> {
    let mut out = Vec::new();
    serve(io::Cursor::new(STREAM.to_string()), &mut out, &serve_cfg()).expect("golden serve");
    let text = String::from_utf8(out).expect("utf8 golden");
    for code in ["\"code\": 12", "\"code\": 13", "\"code\": 14"] {
        assert!(text.contains(code), "golden lost its {code} line:\n{text}");
    }
    text.lines().map(str::to_string).collect()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spatial-netchaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fast_client() -> ClientConfig {
    ClientConfig {
        backoff: BackoffPolicy { base_ms: 1, factor: 2, max_ms: 4, jitter: 0.0 },
        seed: 7,
        max_reconnects: 6,
    }
}

#[test]
fn clean_loopback_session_matches_the_inprocess_golden() {
    let golden = golden();
    let handle =
        spawn_listener("127.0.0.1:0", serve_cfg(), NetConfig::default()).expect("bind loopback");
    let addr = handle.addr();
    let mut log = Vec::new();
    let summary = run_client(
        STREAM,
        |_| Ok(Box::new(TcpStream::connect(addr)?) as Box<dyn Conn>),
        &fast_client(),
        &mut log,
    )
    .expect("clean session completes");
    assert_eq!(summary.reconnects, 0, "{}", String::from_utf8_lossy(&log));
    assert_eq!(summary.observed, golden, "TCP transcript == stdin transcript, byte for byte");
    let net = handle.stop().expect("listener stops");
    assert_eq!(net.sessions, 1);
    assert_eq!(net.count(SessionEnd::Eof), 1);
}

/// The chaos matrix: ≥3 disconnect points × torn-line/partial-write/delay
/// variants. Each cell gets a fresh journal; the first connection runs
/// under the plan and tears, the reconnect resumes from the watermark.
#[test]
fn chaos_matrix_every_plan_resumes_byte_identical() {
    let golden = golden();
    // Cut points land in the hello/input write phase (200), at the end of
    // the input stream (700), and mid-read of the results (1800) — the
    // three qualitatively different places a connection can die.
    type Shaper = fn(NetChaosPlan) -> NetChaosPlan;
    let cuts: [u64; 3] = [200, 700, 1800];
    let variants: [(&str, Shaper); 3] = [
        ("cut", |p| p),
        ("cut+partial", |p| p.partial_writes(5)),
        ("cut+delay", |p| p.delay_every(9, 2)),
    ];
    for (ci, &cut) in cuts.iter().enumerate() {
        for (vi, (name, shape)) in variants.iter().enumerate() {
            let seed = 0xBEEF + (ci * 3 + vi) as u64;
            let plan = shape(NetChaosPlan::new(seed).cut_after(cut));
            let dir = fresh_dir(&format!("matrix-{ci}-{vi}"));
            let cfg = ServeConfig { journal: Some(dir.clone()), ..serve_cfg() };
            let handle =
                spawn_listener("127.0.0.1:0", cfg, NetConfig::default()).expect("bind loopback");
            let addr = handle.addr();
            let mut log = Vec::new();
            let summary = run_client(
                STREAM,
                |attempt| {
                    let stream = TcpStream::connect(addr)?;
                    Ok(if attempt == 0 {
                        Box::new(ChaosTransport::new(stream, plan)) as Box<dyn Conn>
                    } else {
                        Box::new(stream)
                    })
                },
                &fast_client(),
                &mut log,
            )
            .unwrap_or_else(|e| {
                panic!("plan {name}@{cut} failed: {e}\nlog: {}", String::from_utf8_lossy(&log))
            });
            assert!(
                summary.reconnects >= 1,
                "plan {name}@{cut} never tore the connection — the cell proves nothing"
            );
            assert_eq!(
                summary.observed, golden,
                "plan {name}@{cut}: observed stream diverged from the golden"
            );
            handle.stop().expect("listener stops");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Two consecutive torn connections (each cutting deeper than the last)
/// before a clean one: the watermark must advance monotonically across
/// multiple failures, not just one.
#[test]
fn double_cut_still_resumes_exactly_once() {
    let golden = golden();
    let dir = fresh_dir("double");
    let cfg = ServeConfig { journal: Some(dir.clone()), ..serve_cfg() };
    let handle = spawn_listener("127.0.0.1:0", cfg, NetConfig::default()).expect("bind loopback");
    let addr = handle.addr();
    let mut log = Vec::new();
    let summary = run_client(
        STREAM,
        |attempt| {
            let stream = TcpStream::connect(addr)?;
            Ok(match attempt {
                0 => Box::new(ChaosTransport::new(stream, NetChaosPlan::new(1).cut_after(400)))
                    as Box<dyn Conn>,
                1 => Box::new(ChaosTransport::new(stream, NetChaosPlan::new(2).cut_after(2500))),
                _ => Box::new(stream),
            })
        },
        &fast_client(),
        &mut log,
    )
    .expect("third connection completes the stream");
    assert!(summary.reconnects >= 2, "both cuts must fire");
    assert_eq!(summary.observed, golden);
    handle.stop().expect("listener stops");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn non_hello_first_line_is_rejected_and_daemon_keeps_serving() {
    let golden = golden();
    let handle =
        spawn_listener("127.0.0.1:0", serve_cfg(), NetConfig::default()).expect("bind loopback");
    let addr = handle.addr();

    // A peer that skips the handshake gets a typed rejection, not service.
    let mut rude = TcpStream::connect(addr).expect("connect");
    rude.write_all(b"{\"kind\": \"scan\", \"n\": 16, \"seed\": 1}\n").expect("write");
    rude.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut reply = String::new();
    BufReader::new(&rude).read_to_string(&mut reply).expect("read rejection");
    assert!(reply.contains("spatial-serve-hello/v1"), "{reply}");
    assert!(reply.contains("\"ok\": false"), "{reply}");
    assert!(reply.contains("hello"), "{reply}");
    drop(rude);

    // The daemon is unharmed: the next, well-behaved client gets served.
    let mut log = Vec::new();
    let summary = run_client(
        STREAM,
        |_| Ok(Box::new(TcpStream::connect(addr)?) as Box<dyn Conn>),
        &fast_client(),
        &mut log,
    )
    .expect("session after rejection");
    assert_eq!(summary.observed, golden);
    let net = handle.stop().expect("listener stops");
    assert_eq!(net.sessions, 2);
    assert_eq!(net.count(SessionEnd::HandshakeRejected), 1);
    assert_eq!(net.count(SessionEnd::Eof), 1);
}

#[test]
fn resume_without_a_journal_is_rejected_in_the_handshake() {
    let handle =
        spawn_listener("127.0.0.1:0", serve_cfg(), NetConfig::default()).expect("bind loopback");
    let addr = handle.addr();
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(b"{\"op\": \"hello\", \"resume_from\": 3}\n").expect("write hello");
    conn.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut reply = String::new();
    BufReader::new(&conn).read_to_string(&mut reply).expect("read rejection");
    assert!(reply.contains("\"ok\": false") && reply.contains("journal"), "{reply}");
    let net = handle.stop().expect("listener stops");
    assert_eq!(net.count(SessionEnd::HandshakeRejected), 1);
}

#[test]
fn silent_client_is_pinged_then_idle_disconnected() {
    let net_cfg = NetConfig { heartbeat_ms: 30, max_missed: 2, ..NetConfig::default() };
    let handle = spawn_listener("127.0.0.1:0", serve_cfg(), net_cfg).expect("bind loopback");
    let conn = TcpStream::connect(handle.addr()).expect("connect");
    let mut writer = conn.try_clone().expect("clone");
    writer.write_all(b"{\"op\": \"hello\"}\n").expect("write hello");
    // Say nothing more; the daemon must ping, give up, and close.
    let mut reader = BufReader::new(&conn);
    let mut pings = 0;
    let start = Instant::now();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read");
        if n == 0 {
            break; // daemon hung up
        }
        if line.contains("spatial-serve-ping/v1") {
            pings += 1;
        }
        assert!(start.elapsed() < Duration::from_secs(10), "idle cutoff never fired");
    }
    assert!(pings >= 1, "the daemon must ping before giving up");
    let net = handle.stop().expect("listener stops");
    assert_eq!(net.count(SessionEnd::IdleTimeout), 1);
}

#[test]
fn pong_replies_keep_an_idle_session_alive() {
    let net_cfg = NetConfig { heartbeat_ms: 30, max_missed: 2, ..NetConfig::default() };
    let handle = spawn_listener("127.0.0.1:0", serve_cfg(), net_cfg).expect("bind loopback");
    let conn = TcpStream::connect(handle.addr()).expect("connect");
    let mut writer = conn.try_clone().expect("clone");
    writer.write_all(b"{\"op\": \"hello\"}\n").expect("write hello");
    let mut reader = BufReader::new(&conn);
    // Answer enough pings to outlive several ping windows (2 misses at
    // 30 ms would have cut an unresponsive peer well before round 5).
    let mut rounds = 0;
    while rounds < 5 {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read");
        assert_ne!(n, 0, "daemon dropped a responsive session after {rounds} pongs");
        if line.contains("spatial-serve-ping/v1") {
            writer.write_all(b"{\"op\": \"pong\"}\n").expect("write pong");
            rounds += 1;
        }
    }
    // Still alive: submit a job and get its result.
    writer
        .write_all(b"{\"kind\": \"scan\", \"n\": 16, \"seed\": 1, \"id\": \"late\"}\n")
        .expect("job");
    writer.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut result = None;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read");
        if n == 0 {
            break;
        }
        if line.contains("spatial-batch-report/v1") {
            result = Some(line);
        }
    }
    let result = result.expect("the post-pong job was served");
    assert!(result.contains("\"id\": \"late\"") && result.contains("\"outcome\": \"ok\""));
    let net = handle.stop().expect("listener stops");
    assert_eq!(net.count(SessionEnd::Eof), 1, "pongs kept it out of idle-timeout");
}

/// Satellite: the drain flag must wake a listener that is sitting in
/// accept with zero clients — a drain must never hang on an idle daemon.
#[test]
fn stop_wakes_an_idle_accept_loop_promptly() {
    let handle =
        spawn_listener("127.0.0.1:0", serve_cfg(), NetConfig::default()).expect("bind loopback");
    std::thread::sleep(Duration::from_millis(60)); // let it reach accept
    let start = Instant::now();
    let net = handle.stop().expect("listener stops");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "stop must interrupt the accept wait, not hang"
    );
    assert_eq!(net.sessions, 0);
}

#[test]
fn inband_drain_verb_shuts_the_whole_listener_down() {
    let handle =
        spawn_listener("127.0.0.1:0", serve_cfg(), NetConfig::default()).expect("bind loopback");
    let mut conn = TcpStream::connect(handle.addr()).expect("connect");
    conn.write_all(b"{\"op\": \"hello\"}\n{\"op\": \"drain\"}\n").expect("write");
    let mut reply = String::new();
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    reader.read_to_string(&mut reply).expect("drain ack then EOF");
    assert!(reply.contains("\"op\": \"drain\"") && reply.contains("\"ok\": true"), "{reply}");
    // No stop() call: the verb alone must end the accept loop.
    let net = handle.join().expect("listener drained itself");
    assert_eq!(net.count(SessionEnd::Drained), 1);
}
