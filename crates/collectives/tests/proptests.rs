//! Property-based tests for the collectives, on the in-tree harness
//! (`spatial_core::check`).

use spatial_core::check::{check, Gen};
use spatial_core::{prop_assert, prop_assert_eq};

use collectives::zarray::{place_row_major, place_z, read_values};
use collectives::zseg::{broadcast_z, reduce_z};
use collectives::{broadcast, reduce, scan, scan_exclusive, segmented_scan, SegItem};
use spatial_model::{Coord, Machine, SubGrid};

#[test]
fn scan_equals_sequential_prefix() {
    check("scan_equals_sequential_prefix", |g: &mut Gen| {
        let len = g.pow4_len(1..=4);
        let seed = g.int(0i64..1000);
        let vals: Vec<i64> = (0..len as i64).map(|i| (i * 31 + seed) % 97 - 48).collect();
        let mut expect = vals.clone();
        for i in 1..len {
            expect[i] += expect[i - 1];
        }
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vals);
        let got = read_values(scan(&mut m, 0, items, &|a, b| a + b));
        prop_assert_eq!(got, expect);
        Ok(())
    });
}

#[test]
fn scan_with_max_operator() {
    check("scan_with_max_operator", |g: &mut Gen| {
        let len = g.pow4_len(1..=4);
        let vals_seed = g.int(0i64..1000);
        let vals: Vec<i64> = (0..len as i64).map(|i| ((i * 67 + vals_seed) % 1009) - 500).collect();
        let mut expect = vals.clone();
        for i in 1..len {
            expect[i] = expect[i].max(expect[i - 1]);
        }
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vals);
        let got = read_values(scan(&mut m, 0, items, &|a, b| *a.max(b)));
        prop_assert_eq!(got, expect);
        Ok(())
    });
}

#[test]
fn exclusive_scan_is_shifted_inclusive() {
    check("exclusive_scan_is_shifted_inclusive", |g: &mut Gen| {
        let len = g.pow4_len(1..=4);
        let seed = g.int(0i64..100);
        let vals: Vec<i64> = (0..len as i64).map(|i| (i * 13 + seed) % 23).collect();
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vals.clone());
        let exc = read_values(scan_exclusive(&mut m, 0, items, 0, &|a, b| a + b));
        let mut expect = vec![0i64];
        for i in 0..len - 1 {
            expect.push(expect[i] + vals[i]);
        }
        prop_assert_eq!(exc, expect);
        Ok(())
    });
}

#[test]
fn segmented_scan_matches_per_segment_reference() {
    check("segmented_scan_matches_per_segment_reference", |g: &mut Gen| {
        let len = g.pow4_len(1..=4);
        let head_mask = g.rng().next_u64();
        let seed = g.int(0i64..100);
        let vals: Vec<i64> = (0..len as i64).map(|i| (i * 7 + seed) % 11 - 5).collect();
        let heads: Vec<bool> =
            (0..len).map(|i| i == 0 || (head_mask >> (i % 64)) & 1 == 1).collect();
        let mut expect = Vec::with_capacity(len);
        let mut acc = 0;
        for i in 0..len {
            acc = if heads[i] { vals[i] } else { acc + vals[i] };
            expect.push(acc);
        }
        let mut m = Machine::new();
        let items = place_z(
            &mut m,
            0,
            vals.iter().zip(&heads).map(|(&v, &h)| SegItem::new(h, v)).collect(),
        );
        let got = read_values(segmented_scan(&mut m, 0, items, &|a, b| a + b));
        prop_assert_eq!(got, expect);
        Ok(())
    });
}

#[test]
fn broadcast_reaches_every_pe_any_rectangle() {
    check("broadcast_reaches_every_pe_any_rectangle", |g: &mut Gen| {
        let h = g.int(1u64..24);
        let w = g.int(1u64..24);
        let grid = SubGrid::new(Coord::ORIGIN, h, w);
        let mut m = Machine::new();
        let root = m.place(grid.origin, 77i64);
        let out = broadcast(&mut m, root, grid);
        prop_assert_eq!(out.len() as u64, h * w);
        for (i, v) in out.iter().enumerate() {
            prop_assert_eq!(*v.value(), 77);
            prop_assert_eq!(v.loc(), grid.rm_coord(i as u64));
        }
        Ok(())
    });
}

#[test]
fn reduce_equals_fold_any_rectangle() {
    check("reduce_equals_fold_any_rectangle", |g: &mut Gen| {
        let h = g.int(1u64..24);
        let w = g.int(1u64..24);
        let seed = g.int(0i64..100);
        let grid = SubGrid::new(Coord::ORIGIN, h, w);
        let n = (h * w) as i64;
        let vals: Vec<i64> = (0..n).map(|i| (i * 17 + seed) % 101 - 50).collect();
        let expect: i64 = vals.iter().sum();
        let mut m = Machine::new();
        let items = place_row_major(&mut m, grid, vals);
        let got = reduce(&mut m, items, grid, &|a, b| a + b);
        prop_assert_eq!(got.into_value(), expect);
        Ok(())
    });
}

#[test]
fn zseg_broadcast_and_reduce_roundtrip() {
    check("zseg_broadcast_and_reduce_roundtrip", |g: &mut Gen| {
        let lo = g.int(0u64..512);
        let len = g.int(1u64..512);
        let mut m = Machine::new();
        let root = m.place(spatial_model::zorder::coord_of(lo), 5i64);
        let copies = broadcast_z(&mut m, root, lo, lo + len);
        prop_assert_eq!(copies.len() as u64, len);
        let total = reduce_z(&mut m, copies, lo, &|a, b| a + b);
        prop_assert_eq!(total.into_value(), 5 * len as i64);
        Ok(())
    });
}

#[test]
fn scan_any_matches_prefix_for_arbitrary_lengths() {
    check("scan_any_matches_prefix_for_arbitrary_lengths", |g: &mut Gen| {
        let len = g.size(1..600);
        let lo = g.int(0u64..4) * 4; // any multiple of the smallest alignment
        let seed = g.int(0i64..100);
        let vals: Vec<i64> = (0..len as i64).map(|i| (i * 37 + seed) % 19 - 9).collect();
        let mut expect = vals.clone();
        for i in 1..len {
            expect[i] += expect[i - 1];
        }
        let mut m = Machine::new();
        let items = place_z(&mut m, lo, vals);
        let got = read_values(collectives::scan::scan_any(&mut m, lo, items, &|a, b| a + b));
        prop_assert_eq!(got, expect);
        Ok(())
    });
}

#[test]
fn scan_energy_linear_for_all_power_of_four() {
    check("scan_energy_linear_for_all_power_of_four", |g: &mut Gen| {
        let len = g.pow4_len(1..=4);
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vec![1i64; len]);
        let _ = scan(&mut m, 0, items, &|a, b| a + b);
        prop_assert!(m.energy() <= 12 * len as u64, "energy {} for n={}", m.energy(), len);
        Ok(())
    });
}
