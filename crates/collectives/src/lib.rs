//! # Spatial communication collectives (paper §IV)
//!
//! Energy-optimal, low-depth collectives for the Spatial Computer Model:
//!
//! * [`broadcast()`] / [`reduce()`] / [`all_reduce`] — the multicast-free
//!   `O(hw + h log h)`-energy, `O(log n)`-depth collectives of Lemma IV.1 and
//!   Corollary IV.2;
//! * [`scan()`] — the energy-optimal parallel scan of Lemma IV.3:
//!   `O(n)` energy, `O(log n)` depth, `O(√n)` distance via a 4-ary summation
//!   tree in Z-order (up-sweep + down-sweep, Fig. 1);
//! * [`segmented`] — segmented scans via the segmented-operator construction;
//! * [`naive`] — the `Θ(n log n)`-energy row-major binary-tree baselines the
//!   paper improves on (used by the ablation benchmarks);
//! * [`route`] — direct data-movement helpers (gather/scatter/permute) shared
//!   by the sorting and selection crates.
//!
//! Inputs and outputs are vectors of [`spatial_model::Tracked`] values whose
//! locations encode the layout (row-major on a [`SubGrid`], or positions on
//! the global Z-order curve).

pub mod broadcast;
pub mod naive;
pub mod reduce;
pub mod route;
pub mod scan;
pub mod segmented;
pub mod zarray;
pub mod zseg;

pub use broadcast::{broadcast, broadcast_1d, broadcast_2d, try_broadcast};
pub use reduce::{all_reduce, reduce, reduce_2d};
pub use scan::{scan, scan_any, scan_exclusive, try_scan, try_scan_any};
pub use segmented::{segmented_scan, SegItem};
pub use zarray::{place_row_major, place_z, read_values};
pub use zseg::{broadcast_z, reduce_z};

use spatial_model::SubGrid;

/// Panics unless `items.len()` matches the subgrid size.
pub(crate) fn check_grid_len<T>(items: &[T], grid: &SubGrid) {
    assert_eq!(
        items.len() as u64,
        grid.len(),
        "expected one item per PE of the {}x{} subgrid",
        grid.h,
        grid.w
    );
}
