//! Broadcast without multicasting (paper §IV.A, Lemma IV.1).
//!
//! The general `h × w` broadcast first runs a binary-tree 1D broadcast down
//! the first column, then a recursive quadrant (2D) broadcast inside each
//! `w × w` block, achieving `O(hw + h log h)` energy, `O(log n)` depth and
//! `O(w + h)` distance — a `Θ(log n)` energy improvement over binary-tree
//! broadcasts in the logarithmic-depth regime.

use spatial_model::{Coord, Machine, SpatialError, SubGrid, Tracked};

use crate::check_grid_len;

/// Fallible [`broadcast`]: runs under the machine's active guard/fault layer
/// and surfaces any violation as a typed [`SpatialError`].
pub fn try_broadcast<T: Clone>(
    machine: &mut Machine,
    root: Tracked<T>,
    grid: SubGrid,
) -> Result<Vec<Tracked<T>>, SpatialError> {
    machine.guarded(|m| broadcast(m, root, grid))
}

/// Broadcasts `root` (resident at `grid.origin`) to every PE of `grid`.
///
/// Returns one value per PE in row-major order.
///
/// ```
/// use spatial_model::{Coord, Machine, SubGrid};
/// use collectives::broadcast;
///
/// let mut m = Machine::new();
/// let grid = SubGrid::square(Coord::ORIGIN, 4);
/// let root = m.place(grid.origin, 7i64);
/// let copies = broadcast(&mut m, root, grid);
/// assert_eq!(copies.len(), 16);
/// assert!(copies.iter().all(|c| *c.value() == 7));
/// ```
///
/// # Panics
/// Panics if `root` is not located at the grid origin.
pub fn broadcast<T: Clone>(
    machine: &mut Machine,
    root: Tracked<T>,
    grid: SubGrid,
) -> Vec<Tracked<T>> {
    assert_eq!(root.loc(), grid.origin, "broadcast root must sit at the subgrid origin");
    let mut out: Vec<Option<Tracked<T>>> = (0..grid.len()).map(|_| None).collect();
    bcast_general(machine, root, grid, grid, &mut out);
    let res: Vec<Tracked<T>> = out.into_iter().map(|o| o.expect("broadcast missed a PE")).collect();
    check_grid_len(&res, &grid);
    res
}

/// 1D broadcast along a column or row of `len` PEs starting at the root.
///
/// The paper's binary offset tree: the root has one child directly next to it
/// and one child at offset `⌈len/2⌉`; both children recursively cover their
/// halves. Energy `O(len log len)`, depth `O(log len)`, distance `O(len)`.
pub fn broadcast_1d<T: Clone>(
    machine: &mut Machine,
    root: Tracked<T>,
    len: u64,
    vertical: bool,
) -> Vec<Tracked<T>> {
    let origin = root.loc();
    let mut out: Vec<Option<Tracked<T>>> = (0..len).map(|_| None).collect();
    let place = |i: u64| -> Coord {
        if vertical {
            origin.offset(i as i64, 0)
        } else {
            origin.offset(0, i as i64)
        }
    };
    bcast_1d_rec(machine, root, 0, len, &place, &mut out);
    out.into_iter().map(|o| o.expect("1D broadcast missed a PE")).collect()
}

fn bcast_1d_rec<T: Clone>(
    machine: &mut Machine,
    root: Tracked<T>,
    lo: u64,
    len: u64,
    place: &impl Fn(u64) -> Coord,
    out: &mut [Option<Tracked<T>>],
) {
    debug_assert_eq!(root.loc(), place(lo));
    if len == 1 {
        out[lo as usize] = Some(root);
        return;
    }
    // Children cover [lo+1, lo+1+a) and [lo+1+a, lo+len); a = ⌈(len-1)/2⌉.
    let a = (len - 1).div_ceil(2);
    let b = len - 1 - a;
    let near = machine.send(&root, place(lo + 1));
    let far = (b > 0).then(|| machine.send(&root, place(lo + 1 + a)));
    out[lo as usize] = Some(root);
    bcast_1d_rec(machine, near, lo + 1, a, place, out);
    if let Some(far) = far {
        bcast_1d_rec(machine, far, lo + 1 + a, b, place, out);
    }
}

/// 2D broadcast on a (near-)square subgrid by quadrant recursion: the root
/// sends the value to the top-left corners of the other three quadrants, then
/// all four quadrants recurse. Energy `O(w²)`, depth `O(log w)`, distance `O(w)`.
pub fn broadcast_2d<T: Clone>(
    machine: &mut Machine,
    root: Tracked<T>,
    grid: SubGrid,
) -> Vec<Tracked<T>> {
    assert_eq!(root.loc(), grid.origin);
    let mut out: Vec<Option<Tracked<T>>> = (0..grid.len()).map(|_| None).collect();
    bcast_2d_rec(machine, root, grid, grid, &mut out);
    out.into_iter().map(|o| o.expect("2D broadcast missed a PE")).collect()
}

/// Quadrant recursion over an arbitrary rectangle (handles odd and
/// non-power-of-two sides by splitting at `⌈h/2⌉ × ⌈w/2⌉`).
fn bcast_2d_rec<T: Clone>(
    machine: &mut Machine,
    root: Tracked<T>,
    grid: SubGrid,
    full: SubGrid,
    out: &mut [Option<Tracked<T>>],
) {
    debug_assert_eq!(root.loc(), grid.origin);
    if grid.len() == 1 {
        out[full.rm_index(grid.origin) as usize] = Some(root);
        return;
    }
    let rh = grid.h.div_ceil(2);
    let rw = grid.w.div_ceil(2);
    let mut parts = Vec::with_capacity(4);
    parts.push(SubGrid::new(grid.origin, rh, rw));
    if grid.w > rw {
        parts.push(SubGrid::new(grid.origin.offset(0, rw as i64), rh, grid.w - rw));
    }
    if grid.h > rh {
        parts.push(SubGrid::new(grid.origin.offset(rh as i64, 0), grid.h - rh, rw));
        if grid.w > rw {
            parts.push(SubGrid::new(
                grid.origin.offset(rh as i64, rw as i64),
                grid.h - rh,
                grid.w - rw,
            ));
        }
    }
    let copies: Vec<Tracked<T>> =
        parts[1..].iter().map(|p| machine.send(&root, p.origin)).collect();
    bcast_2d_rec(machine, root, parts[0], full, out);
    for (p, c) in parts[1..].iter().zip(copies) {
        bcast_2d_rec(machine, c, *p, full, out);
    }
}

fn bcast_general<T: Clone>(
    machine: &mut Machine,
    root: Tracked<T>,
    grid: SubGrid,
    full: SubGrid,
    out: &mut [Option<Tracked<T>>],
) {
    if grid.len() == 1 {
        out[full.rm_index(grid.origin) as usize] = Some(root);
        return;
    }
    if grid.h >= grid.w {
        if grid.w == 1 {
            let col = broadcast_1d(machine, root, grid.h, true);
            for v in col {
                let idx = full.rm_index(v.loc()) as usize;
                out[idx] = Some(v);
            }
            return;
        }
        // 1D broadcast down the first column, then a square block per stripe.
        let col = broadcast_1d(machine, root, grid.h, true);
        let mut col: Vec<Option<Tracked<T>>> = col.into_iter().map(Some).collect();
        let mut r = 0;
        while r < grid.h {
            let bh = grid.w.min(grid.h - r);
            let corner = col[r as usize].take().expect("column value consumed twice");
            let block = SubGrid::new(grid.origin.offset(r as i64, 0), bh, grid.w);
            // The corner PE now holds two copies (column + block); hand the
            // column copy to the block recursion and keep the other cells'
            // column values as the final values for column cells... but the
            // block recursion re-delivers to them, so discard extras below.
            if bh == grid.w {
                bcast_2d_rec(machine, corner, block, full, out);
            } else {
                bcast_general(machine, corner, block, full, out);
            }
            r += bh;
        }
        // Column PEs received a value from both the 1D phase and the block
        // phase; keep the block-phase value (already written) and release the
        // remaining column copies.
        for c in col.into_iter().flatten() {
            machine.discard(c);
        }
    } else {
        // Wide grid: mirror the construction along the first row.
        let row = broadcast_1d(machine, root, grid.w, false);
        let mut row: Vec<Option<Tracked<T>>> = row.into_iter().map(Some).collect();
        let mut c = 0;
        while c < grid.w {
            let bw = grid.h.min(grid.w - c);
            let corner = row[c as usize].take().expect("row value consumed twice");
            let block = SubGrid::new(grid.origin.offset(0, c as i64), grid.h, bw);
            if bw == grid.h {
                bcast_2d_rec(machine, corner, block, full, out);
            } else {
                bcast_general(machine, corner, block, full, out);
            }
            c += bw;
        }
        for v in row.into_iter().flatten() {
            machine.discard(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_broadcast(h: u64, w: u64) -> (Machine, Vec<Tracked<i64>>) {
        let mut m = Machine::new();
        let g = SubGrid::new(Coord::ORIGIN, h, w);
        let root = m.place(g.origin, 42i64);
        let vals = broadcast(&mut m, root, g);
        (m, vals)
    }

    #[test]
    fn every_pe_receives_the_value() {
        for &(h, w) in &[
            (1, 1),
            (4, 4),
            (8, 8),
            (16, 4),
            (4, 16),
            (7, 3),
            (3, 7),
            (9, 9),
            (32, 1),
            (1, 32),
            (12, 5),
        ] {
            let (_, vals) = run_broadcast(h, w);
            assert_eq!(vals.len() as u64, h * w);
            let g = SubGrid::new(Coord::ORIGIN, h, w);
            for (i, v) in vals.iter().enumerate() {
                assert_eq!(*v.value(), 42, "({h},{w}) idx {i}");
                assert_eq!(v.loc(), g.rm_coord(i as u64), "value must land on its PE");
            }
        }
    }

    #[test]
    fn square_broadcast_energy_is_linear() {
        // Lemma IV.1 with h = w: energy O(w²) = O(n).
        for side in [4u64, 8, 16, 32, 64] {
            let (m, _) = run_broadcast(side, side);
            let n = side * side;
            assert!(
                m.energy() <= 4 * n,
                "side {side}: energy {} exceeds 4n = {}",
                m.energy(),
                4 * n
            );
        }
    }

    #[test]
    fn broadcast_depth_is_logarithmic() {
        for side in [4u64, 16, 64] {
            let (m, _) = run_broadcast(side, side);
            let n = (side * side) as f64;
            let bound = (4.0 * n.log2().ceil()) as u64 + 4;
            assert!(m.report().depth <= bound, "side {side}: depth {} > {bound}", m.report().depth);
        }
    }

    #[test]
    fn broadcast_distance_is_linear_in_side() {
        for side in [8u64, 32] {
            let (m, _) = run_broadcast(side, side);
            assert!(m.report().distance <= 6 * side, "distance {}", m.report().distance);
        }
    }

    #[test]
    fn tall_grid_energy_matches_lemma() {
        // h×w with h >> w: energy O(hw + h log h).
        let (m, _) = run_broadcast(256, 4);
        let (h, w) = (256f64, 4f64);
        let bound = (4.0 * (h * w + h * h.log2())) as u64;
        assert!(m.energy() <= bound, "energy {} > {bound}", m.energy());
    }

    #[test]
    fn broadcast_1d_energy_is_h_log_h() {
        let mut m = Machine::new();
        let root = m.place(Coord::ORIGIN, 1u8);
        let out = broadcast_1d(&mut m, root, 128, true);
        assert_eq!(out.len(), 128);
        let bound = (2.0 * 128.0 * 128f64.log2()) as u64;
        assert!(m.energy() <= bound, "energy {} > {bound}", m.energy());
        // Depth should be around log2(128) = 7 (each level sends 2 messages).
        assert!(m.report().depth <= 16, "depth {}", m.report().depth);
    }

    #[test]
    fn memory_stays_constant_per_pe() {
        let mut m = Machine::new();
        m.enable_memory_meter();
        let g = SubGrid::square(Coord::ORIGIN, 16);
        let root = m.place(g.origin, 7i64);
        let vals = broadcast(&mut m, root, g);
        assert!(m.memory().unwrap().peak() <= 3, "peak residency {}", m.memory().unwrap().peak());
        for v in vals {
            m.discard(v);
        }
    }
}
