//! Low-depth reduce (paper §IV.B, Corollary IV.2) and all-reduce.
//!
//! The reduce uses the exact reverse communication pattern of the broadcast:
//! each block reduces onto its top-left corner through the quadrant tree, and
//! the corners combine up the first column through the binary offset tree.
//! Costs match Lemma IV.1: `O(hw + h log h)` energy, `O(log n)` depth,
//! `O(w + h)` distance. On a square subgrid this is a `Θ(log n)`-factor
//! energy improvement over previous `O(log n)`-depth reduces.

use spatial_model::{Machine, SubGrid, Tracked};

use crate::broadcast::broadcast;
use crate::check_grid_len;

/// Reduces one value per PE (row-major order on `grid`) with the associative,
/// commutative operator `op`, leaving the result at the origin PE.
///
/// ```
/// use spatial_model::{Coord, Machine, SubGrid};
/// use collectives::{place_row_major, reduce};
///
/// let mut m = Machine::new();
/// let grid = SubGrid::square(Coord::ORIGIN, 4);
/// let items = place_row_major(&mut m, grid, (1..=16i64).collect());
/// let total = reduce(&mut m, items, grid, &|a, b| a + b);
/// assert_eq!(total.into_value(), 136);
/// ```
pub fn reduce<T: Clone>(
    machine: &mut Machine,
    items: Vec<Tracked<T>>,
    grid: SubGrid,
    op: &impl Fn(&T, &T) -> T,
) -> Tracked<T> {
    check_grid_len(&items, &grid);
    let mut slots: Vec<Option<Tracked<T>>> = items.into_iter().map(Some).collect();
    reduce_general(machine, grid, grid, &mut slots, op)
        .expect("non-empty grid always yields a result")
}

/// Quadrant-tree reduce on a (near-)square subgrid.
pub fn reduce_2d<T: Clone>(
    machine: &mut Machine,
    items: Vec<Tracked<T>>,
    grid: SubGrid,
    op: &impl Fn(&T, &T) -> T,
) -> Tracked<T> {
    check_grid_len(&items, &grid);
    let mut slots: Vec<Option<Tracked<T>>> = items.into_iter().map(Some).collect();
    reduce_2d_rec(machine, grid, grid, &mut slots, op)
        .expect("non-empty grid always yields a result")
}

/// Reduce followed by broadcast: every PE ends up with the total.
pub fn all_reduce<T: Clone>(
    machine: &mut Machine,
    items: Vec<Tracked<T>>,
    grid: SubGrid,
    op: &impl Fn(&T, &T) -> T,
) -> Vec<Tracked<T>> {
    let total = reduce(machine, items, grid, op);
    broadcast(machine, total, grid)
}

fn take_at<T>(
    slots: &mut [Option<Tracked<T>>],
    full: &SubGrid,
    loc: spatial_model::Coord,
) -> Option<Tracked<T>> {
    slots[full.rm_index(loc) as usize].take()
}

fn combine_opt<T: Clone>(
    acc: Option<Tracked<T>>,
    incoming: Tracked<T>,
    op: &impl Fn(&T, &T) -> T,
) -> Tracked<T> {
    match acc {
        None => incoming,
        Some(a) => a.zip_with(&incoming, |x, y| op(x, y)),
    }
}

fn reduce_2d_rec<T: Clone>(
    machine: &mut Machine,
    grid: SubGrid,
    full: SubGrid,
    slots: &mut [Option<Tracked<T>>],
    op: &impl Fn(&T, &T) -> T,
) -> Option<Tracked<T>> {
    if grid.len() == 1 {
        return take_at(slots, &full, grid.origin);
    }
    let rh = grid.h.div_ceil(2);
    let rw = grid.w.div_ceil(2);
    let mut parts = vec![SubGrid::new(grid.origin, rh, rw)];
    if grid.w > rw {
        parts.push(SubGrid::new(grid.origin.offset(0, rw as i64), rh, grid.w - rw));
    }
    if grid.h > rh {
        parts.push(SubGrid::new(grid.origin.offset(rh as i64, 0), grid.h - rh, rw));
        if grid.w > rw {
            parts.push(SubGrid::new(
                grid.origin.offset(rh as i64, rw as i64),
                grid.h - rh,
                grid.w - rw,
            ));
        }
    }
    let mut acc: Option<Tracked<T>> = None;
    for (i, p) in parts.iter().enumerate() {
        if let Some(partial) = reduce_2d_rec(machine, *p, full, slots, op) {
            let arrived = if i == 0 { partial } else { machine.send_owned(partial, grid.origin) };
            acc = Some(combine_opt(acc, arrived, op));
        }
    }
    acc
}

/// Reverse binary offset tree along one column/row: combines the `Some`
/// entries of `line[lo..lo+len]` onto position `lo`.
fn reduce_1d_rec<T: Clone>(
    machine: &mut Machine,
    lo: u64,
    len: u64,
    place: &impl Fn(u64) -> spatial_model::Coord,
    line: &mut [Option<Tracked<T>>],
    op: &impl Fn(&T, &T) -> T,
) -> Option<Tracked<T>> {
    if len == 1 {
        return line[lo as usize].take();
    }
    let a = (len - 1).div_ceil(2);
    let b = len - 1 - a;
    let near = reduce_1d_rec(machine, lo + 1, a, place, line, op);
    let far = if b > 0 { reduce_1d_rec(machine, lo + 1 + a, b, place, line, op) } else { None };
    let mut acc = line[lo as usize].take();
    for part in [near, far].into_iter().flatten() {
        let arrived = machine.send_owned(part, place(lo));
        acc = Some(combine_opt(acc, arrived, op));
    }
    acc
}

fn reduce_general<T: Clone>(
    machine: &mut Machine,
    grid: SubGrid,
    full: SubGrid,
    slots: &mut [Option<Tracked<T>>],
    op: &impl Fn(&T, &T) -> T,
) -> Option<Tracked<T>> {
    if grid.len() == 1 {
        return take_at(slots, &full, grid.origin);
    }
    if grid.h >= grid.w {
        if grid.w == 1 {
            let mut line: Vec<Option<Tracked<T>>> = (0..grid.h)
                .map(|i| take_at(slots, &full, grid.origin.offset(i as i64, 0)))
                .collect();
            return reduce_1d_rec(
                machine,
                0,
                grid.h,
                &|i| grid.origin.offset(i as i64, 0),
                &mut line,
                op,
            );
        }
        // Reduce each w-stripe block onto its corner, then combine the
        // corners up the first column with the reverse offset tree.
        let mut line: Vec<Option<Tracked<T>>> = (0..grid.h).map(|_| None).collect();
        let mut r = 0;
        while r < grid.h {
            let bh = grid.w.min(grid.h - r);
            let block = SubGrid::new(grid.origin.offset(r as i64, 0), bh, grid.w);
            let partial = if bh == grid.w {
                reduce_2d_rec(machine, block, full, slots, op)
            } else {
                reduce_general(machine, block, full, slots, op)
            };
            line[r as usize] = partial;
            r += bh;
        }
        reduce_1d_rec(machine, 0, grid.h, &|i| grid.origin.offset(i as i64, 0), &mut line, op)
    } else {
        let mut line: Vec<Option<Tracked<T>>> = (0..grid.w).map(|_| None).collect();
        let mut c = 0;
        while c < grid.w {
            let bw = grid.h.min(grid.w - c);
            let block = SubGrid::new(grid.origin.offset(0, c as i64), grid.h, bw);
            let partial = if bw == grid.h {
                reduce_2d_rec(machine, block, full, slots, op)
            } else {
                reduce_general(machine, block, full, slots, op)
            };
            line[c as usize] = partial;
            c += bw;
        }
        reduce_1d_rec(machine, 0, grid.w, &|i| grid.origin.offset(0, i as i64), &mut line, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zarray::place_row_major;
    use spatial_model::Coord;

    fn run_reduce(h: u64, w: u64) -> (Machine, i64) {
        let mut m = Machine::new();
        let g = SubGrid::new(Coord::ORIGIN, h, w);
        let vals: Vec<i64> = (0..(h * w) as i64).collect();
        let items = place_row_major(&mut m, g, vals);
        let total = reduce(&mut m, items, g, &|a, b| a + b);
        assert_eq!(total.loc(), g.origin, "result must land at the origin PE");
        (m, total.into_value())
    }

    #[test]
    fn reduce_computes_the_sum_on_many_shapes() {
        for &(h, w) in
            &[(1, 1), (2, 2), (4, 4), (8, 8), (16, 4), (4, 16), (7, 3), (5, 11), (32, 1), (1, 32)]
        {
            let n = (h * w) as i64;
            let (_, sum) = run_reduce(h, w);
            assert_eq!(sum, n * (n - 1) / 2, "({h},{w})");
        }
    }

    #[test]
    fn square_reduce_energy_is_linear() {
        for side in [8u64, 16, 32, 64] {
            let (m, _) = run_reduce(side, side);
            let n = side * side;
            assert!(m.energy() <= 4 * n, "side {side}: energy {} > {}", m.energy(), 4 * n);
        }
    }

    #[test]
    fn reduce_depth_is_logarithmic() {
        for side in [8u64, 32] {
            let (m, _) = run_reduce(side, side);
            let n = (side * side) as f64;
            let bound = (4.0 * n.log2()) as u64 + 4;
            assert!(m.report().depth <= bound, "depth {} > {bound}", m.report().depth);
        }
    }

    #[test]
    fn all_reduce_delivers_total_everywhere() {
        let mut m = Machine::new();
        let g = SubGrid::square(Coord::ORIGIN, 8);
        let items = place_row_major(&mut m, g, (1..=64i64).collect());
        let out = all_reduce(&mut m, items, g, &|a, b| a + b);
        assert_eq!(out.len(), 64);
        for v in &out {
            assert_eq!(*v.value(), 65 * 32);
        }
    }

    #[test]
    fn reduce_with_min_operator() {
        let mut m = Machine::new();
        let g = SubGrid::new(Coord::ORIGIN, 4, 8);
        let vals: Vec<i64> = (0..32).map(|i| ((i * 29) % 31) - 7).collect();
        let expect = *vals.iter().min().unwrap();
        let items = place_row_major(&mut m, g, vals);
        let got = reduce(&mut m, items, g, &|a, b| *a.min(b));
        assert_eq!(got.into_value(), expect);
    }
}
