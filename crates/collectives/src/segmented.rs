//! Segmented scans (paper §IV.C, "Segmented Scan").
//!
//! For any associative operator one can define a *segmented* operator that
//! carries segment-start flags and resets the accumulation at each segment
//! boundary; running the ordinary energy-optimal [`scan`] under the
//! segmented operator yields a per-segment scan at identical cost.

use spatial_model::{Machine, Tracked};

use crate::scan::scan;

/// One element of a segmented array: `head` marks the first element of a
/// segment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SegItem<T> {
    /// Whether this element starts a new segment.
    pub head: bool,
    /// The payload.
    pub value: T,
}

impl<T> SegItem<T> {
    /// Convenience constructor.
    pub fn new(head: bool, value: T) -> Self {
        SegItem { head, value }
    }
}

/// The segmented-operator construction: associative whenever `op` is.
pub fn segmented_op<T: Clone>(
    op: &impl Fn(&T, &T) -> T,
) -> impl Fn(&SegItem<T>, &SegItem<T>) -> SegItem<T> + '_ {
    move |a, b| {
        if b.head {
            b.clone()
        } else {
            SegItem { head: a.head, value: op(&a.value, &b.value) }
        }
    }
}

/// Segmented inclusive scan: equivalent to running [`scan`] independently on
/// every maximal run delimited by `head` flags. Element 0 is treated as a
/// segment head regardless of its flag.
pub fn segmented_scan<T: Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<SegItem<T>>>,
    op: &impl Fn(&T, &T) -> T,
) -> Vec<Tracked<T>> {
    let seg = segmented_op(op);
    let out = scan(machine, lo, items, &seg);
    out.into_iter().map(|t| t.map(|s| s.value)).collect()
}

/// A "copy-first" segmented broadcast: every element of a segment receives
/// the segment head's value. Implemented as a segmented scan under the
/// left-projection operator (associative).
pub fn segmented_broadcast<T: Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<SegItem<T>>>,
) -> Vec<Tracked<T>> {
    segmented_scan(machine, lo, items, &|a: &T, _b: &T| a.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zarray::{place_z, read_values};

    fn seg_input(vals: &[i64], heads: &[usize]) -> Vec<SegItem<i64>> {
        vals.iter().enumerate().map(|(i, &v)| SegItem::new(heads.contains(&i), v)).collect()
    }

    fn reference_segmented_sum(vals: &[i64], heads: &[usize]) -> Vec<i64> {
        let mut out = Vec::with_capacity(vals.len());
        let mut acc = 0;
        for (i, &v) in vals.iter().enumerate() {
            if i == 0 || heads.contains(&i) {
                acc = v;
            } else {
                acc += v;
            }
            out.push(acc);
        }
        out
    }

    #[test]
    fn segmented_scan_resets_at_heads() {
        let vals: Vec<i64> = (1..=16).collect();
        let heads = vec![0, 3, 4, 9, 15];
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, seg_input(&vals, &heads));
        let got = read_values(segmented_scan(&mut m, 0, items, &|a, b| a + b));
        assert_eq!(got, reference_segmented_sum(&vals, &heads));
    }

    #[test]
    fn single_segment_equals_plain_scan() {
        let vals: Vec<i64> = (0..64).map(|i| (i * 31) % 17 - 8).collect();
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, seg_input(&vals, &[0]));
        let got = read_values(segmented_scan(&mut m, 0, items, &|a, b| a + b));
        let mut expect = vals.clone();
        for i in 1..64 {
            expect[i] += expect[i - 1];
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn all_heads_is_identity() {
        let vals: Vec<i64> = (0..16).collect();
        let heads: Vec<usize> = (0..16).collect();
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, seg_input(&vals, &heads));
        let got = read_values(segmented_scan(&mut m, 0, items, &|a, b| a + b));
        assert_eq!(got, vals);
    }

    #[test]
    fn segmented_broadcast_copies_head_value() {
        let vals = vec![7i64, 0, 0, 0, 9, 0, 0, 0, 2, 0, 0, 0, 5, 0, 0, 0];
        let heads = vec![0, 4, 8, 12];
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, seg_input(&vals, &heads));
        let got = read_values(segmented_broadcast(&mut m, 0, items));
        assert_eq!(got, vec![7, 7, 7, 7, 9, 9, 9, 9, 2, 2, 2, 2, 5, 5, 5, 5]);
    }

    #[test]
    fn segmented_op_is_associative_on_samples() {
        let op = |a: &i64, b: &i64| a + b;
        let sop = segmented_op(&op);
        let samples = [
            SegItem::new(false, 3i64),
            SegItem::new(true, 5),
            SegItem::new(false, -2),
            SegItem::new(true, 11),
        ];
        for a in samples {
            for b in samples {
                for c in samples {
                    assert_eq!(sop(&sop(&a, &b), &c), sop(&a, &sop(&b, &c)));
                }
            }
        }
    }
}
