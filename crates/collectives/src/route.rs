//! Direct data-movement helpers: permutation routing, gather, scatter.
//!
//! These are the "one message per element" movements used inside the sorting
//! and selection algorithms: each element is sent straight to its destination
//! PE, so the energy is the sum of Manhattan displacements and the depth is 1
//! per element chain.

use spatial_model::{zorder, Coord, Machine, SubGrid, Tracked};

/// Routes each element directly to the coordinate chosen by `dest`.
pub fn route<T>(
    machine: &mut Machine,
    items: Vec<Tracked<T>>,
    dest: impl Fn(usize, &Tracked<T>) -> Coord,
) -> Vec<Tracked<T>> {
    items
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            let d = dest(i, &t);
            machine.move_to(t, d)
        })
        .collect()
}

/// Moves element `i` to global Z-index `lo + i`.
pub fn route_to_z<T>(machine: &mut Machine, items: Vec<Tracked<T>>, lo: u64) -> Vec<Tracked<T>> {
    route(machine, items, |i, _| zorder::coord_of(lo + i as u64))
}

/// Moves element `i` to row-major position `i` of `grid`.
pub fn route_to_row_major<T>(
    machine: &mut Machine,
    items: Vec<Tracked<T>>,
    grid: SubGrid,
) -> Vec<Tracked<T>> {
    assert!(items.len() as u64 <= grid.len(), "grid too small for the array");
    route(machine, items, |i, _| grid.rm_coord(i as u64))
}

/// Applies a permutation: element `i` moves to the Z-position `lo + perm[i]`.
///
/// Used for the Lemma V.1 permutation lower-bound experiments and the final
/// Z-order → row-major rearrangement of the 2D mergesort.
pub fn permute_z<T>(
    machine: &mut Machine,
    items: Vec<Tracked<T>>,
    lo: u64,
    perm: &[u64],
) -> Vec<Tracked<T>> {
    assert_eq!(items.len(), perm.len());
    route(machine, items, |i, _| zorder::coord_of(lo + perm[i]))
}

/// Converts an array laid out on the Z-curve range `[lo, lo+n)` into
/// row-major order on the same square subgrid (`n` a power of four, `lo`
/// aligned). Element `i` of the logical array keeps its logical index; only
/// its physical cell changes.
pub fn z_to_row_major<T>(
    machine: &mut Machine,
    items: Vec<Tracked<T>>,
    lo: u64,
) -> Vec<Tracked<T>> {
    let n = items.len() as u64;
    assert!(zorder::is_power_of_four(n), "layout conversion needs a full square");
    assert_eq!(lo % n, 0, "segment must be square-aligned");
    let side = 1u64 << (n.trailing_zeros() / 2);
    let origin = zorder::coord_of(lo);
    let grid = SubGrid::square(origin, side);
    route(machine, items, |i, _| grid.rm_coord(i as u64))
}

/// Inverse of [`z_to_row_major`].
pub fn row_major_to_z<T>(
    machine: &mut Machine,
    items: Vec<Tracked<T>>,
    lo: u64,
) -> Vec<Tracked<T>> {
    let n = items.len() as u64;
    assert!(zorder::is_power_of_four(n));
    assert_eq!(lo % n, 0);
    route(machine, items, |i, _| zorder::coord_of(lo + i as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zarray::{place_z, read_values};

    #[test]
    fn route_to_z_places_on_curve() {
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vec![1, 2, 3, 4]);
        let moved = route_to_z(&mut m, items, 16);
        for (i, t) in moved.iter().enumerate() {
            assert_eq!(t.loc(), zorder::coord_of(16 + i as u64));
        }
        assert_eq!(read_values(moved), vec![1, 2, 3, 4]);
    }

    #[test]
    fn z_to_row_major_roundtrip() {
        let mut m = Machine::new();
        let vals: Vec<i64> = (0..16).collect();
        let items = place_z(&mut m, 0, vals.clone());
        let rm = z_to_row_major(&mut m, items, 0);
        let g = SubGrid::square(Coord::ORIGIN, 4);
        for (i, t) in rm.iter().enumerate() {
            assert_eq!(t.loc(), g.rm_coord(i as u64));
        }
        let back = row_major_to_z(&mut m, rm, 0);
        for (i, t) in back.iter().enumerate() {
            assert_eq!(t.loc(), zorder::coord_of(i as u64));
        }
        assert_eq!(read_values(back), vals);
    }

    #[test]
    fn permute_moves_values() {
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vec![10, 20, 30, 40]);
        let perm = [3u64, 2, 1, 0];
        let out = permute_z(&mut m, items, 0, &perm);
        // out[i] holds the original value i at position perm[i].
        for (i, t) in out.iter().enumerate() {
            assert_eq!(t.loc(), zorder::coord_of(perm[i]));
        }
    }

    #[test]
    fn reversal_permutation_energy_is_superlinear() {
        // Lemma V.1: reversing a row-major layout on a √n×√n grid costs
        // Ω(n^{3/2}) energy.
        let energy = |side: u64| {
            let n = side * side;
            let mut m = Machine::new();
            let g = SubGrid::square(Coord::ORIGIN, side);
            let items: Vec<_> = (0..n).map(|i| m.place(g.rm_coord(i), i)).collect();
            let _ = route(&mut m, items, |i, _| g.rm_coord(n - 1 - i as u64));
            m.energy() as f64
        };
        let e8 = energy(8);
        let e32 = energy(32);
        // n grows 16×, n^{3/2} grows 64×.
        let growth = e32 / e8;
        assert!(growth > 40.0, "expected ~64x growth, got {growth:.1}x");
    }
}
