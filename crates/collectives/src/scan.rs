//! The energy-optimal parallel scan (paper §IV.C, Lemma IV.3).
//!
//! Input: an array of `n` elements (n a power of four) stored along the
//! Z-order curve of a `√n × √n` subgrid. The scan runs an **up-sweep**
//! (computing quadrant partial sums along a 4-ary summation tree whose height-
//! `i` subtree root sits at the `i`-th Z-order position of its subgrid) and a
//! **down-sweep** (passing exclusive prefixes down to the quadrants), exactly
//! as in Fig. 1. Costs: `O(n)` energy, `O(log n)` depth, `O(√n)` distance.
//!
//! The operator only needs to be associative; the inclusive scan never
//! requires an identity element (the carried prefix is `Option`al).

use spatial_model::{zorder, Machine, SpatialError, Tracked};

/// A node of the 4-ary summation tree built by the up-sweep.
struct SumNode<T> {
    /// Partial sum of this subtree, resident at Z-position `lo + height`.
    sum: Tracked<T>,
    /// Children in Z-order (leaves have none).
    children: Option<Box<[SumNode<T>; 4]>>,
}

/// Inclusive scan of `items` (element `i` at global Z-index `lo + i`) under
/// the associative operator `op`. Result `i` — `A_0 ∘ … ∘ A_i` — is returned
/// at the same Z-position as input `i`.
///
/// ```
/// use spatial_model::Machine;
/// use collectives::{place_z, read_values, scan};
///
/// let mut m = Machine::new();
/// let items = place_z(&mut m, 0, vec![1i64, 2, 3, 4]);
/// let sums = read_values(scan(&mut m, 0, items, &|a, b| a + b));
/// assert_eq!(sums, vec![1, 3, 6, 10]);
/// assert!(m.energy() > 0); // the up/down sweeps sent real messages
/// ```
///
/// # Panics
/// Panics if `items.len()` is not a power of four, if `lo` is not aligned to
/// the array length, or if items are not resident at their Z-positions.
pub fn scan<T: Clone>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<T>>,
    op: &impl Fn(&T, &T) -> T,
) -> Vec<Tracked<T>> {
    let n = items.len() as u64;
    assert!(zorder::is_power_of_four(n), "scan input must be a power of 4 (pad if needed)");
    assert_eq!(lo % n, 0, "scan segment must be aligned so quadrants are square subgrids");
    for (i, it) in items.iter().enumerate() {
        assert_eq!(it.loc(), zorder::coord_of(lo + i as u64), "item {i} off its Z-position");
    }
    let mut leaves: Vec<Option<Tracked<T>>> = items.into_iter().map(Some).collect();
    let tree = up_sweep(machine, lo, n, &mut leaves, lo, op);
    let mut out: Vec<Option<Tracked<T>>> = (0..n).map(|_| None).collect();
    let mut leaves: Vec<Option<Tracked<T>>> = leaves;
    down_sweep(machine, lo, n, tree, None, &mut leaves, &mut out, lo, op);
    out.into_iter().map(|o| o.expect("down-sweep missed a leaf")).collect()
}

/// Exclusive scan: result `i` is `identity ∘ A_0 ∘ … ∘ A_{i-1}`; result `0`
/// is `identity`.
pub fn scan_exclusive<T: Clone>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<T>>,
    identity: T,
    op: &impl Fn(&T, &T) -> T,
) -> Vec<Tracked<T>> {
    // Shift trick: run the inclusive machinery but emit the carried prefix
    // (or identity) at each leaf instead of combining with the leaf value.
    let n = items.len() as u64;
    assert!(zorder::is_power_of_four(n));
    assert_eq!(lo % n, 0);
    let mut leaves: Vec<Option<Tracked<T>>> = items.into_iter().map(Some).collect();
    let tree = up_sweep(machine, lo, n, &mut leaves, lo, op);
    let mut out: Vec<Option<Tracked<T>>> = (0..n).map(|_| None).collect();
    down_sweep_exclusive(machine, lo, n, tree, None, &identity, &mut leaves, &mut out, lo, op);
    out.into_iter().map(|o| o.expect("down-sweep missed a leaf")).collect()
}

/// Inclusive scan over a Z-segment of **arbitrary** length (extension
/// beyond the paper's power-of-four assumption, documented in DESIGN.md).
///
/// The segment `[lo, lo+n)` decomposes into `O(log n)` aligned power-of-four
/// blocks; each block runs the energy-optimal [`scan`], the block totals are
/// gathered at the first cell where the carries are formed locally, and each
/// carry is broadcast over its block and folded in. Costs: `O(n)` energy,
/// `O(log n)` depth, `O(√n)` distance — the Lemma IV.3 bounds without the
/// padding.
pub fn scan_any<T: Clone>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<T>>,
    op: &impl Fn(&T, &T) -> T,
) -> Vec<Tracked<T>> {
    let n = items.len() as u64;
    if n == 0 {
        return items;
    }
    if zorder::is_power_of_four(n) && lo.is_multiple_of(n) {
        return scan(machine, lo, items, op);
    }
    let blocks = zorder::aligned_blocks(lo, lo + n);
    // Per-block scans.
    let mut scanned: Vec<Vec<Tracked<T>>> = Vec::with_capacity(blocks.len());
    let mut iter = items.into_iter();
    for &(start, len) in &blocks {
        let chunk: Vec<Tracked<T>> = iter.by_ref().take(len as usize).collect();
        scanned.push(scan(machine, start, chunk, op));
    }
    // Gather the block totals at the segment's first cell and form the
    // exclusive block carries locally.
    let hub = zorder::coord_of(lo);
    let totals: Vec<Tracked<T>> = scanned
        .iter()
        .map(|blk| {
            let last = blk.last().expect("non-empty block");
            machine.send(last, hub)
        })
        .collect();
    let mut carries: Vec<Option<Tracked<T>>> = vec![None];
    let mut running: Option<Tracked<T>> = None;
    for t in &totals[..totals.len() - 1] {
        running = Some(match running.take() {
            None => t.duplicate(),
            Some(r) => {
                let nr = r.zip_with(t, |x, y| op(x, y));
                machine.discard(r);
                nr
            }
        });
        carries.push(Some(running.as_ref().expect("just set").duplicate()));
    }
    if let Some(r) = running {
        machine.discard(r);
    }
    for t in totals {
        machine.discard(t);
    }
    // Broadcast each carry over its block and fold it in.
    let mut out = Vec::with_capacity(n as usize);
    for ((&(start, len), blk), carry) in blocks.iter().zip(scanned).zip(carries) {
        match carry {
            None => out.extend(blk),
            Some(c) => {
                let c = machine.move_to(c, zorder::coord_of(start));
                let copies = crate::zseg::broadcast_z(machine, c, start, start + len);
                for (v, cp) in blk.into_iter().zip(copies) {
                    let folded = cp.zip_with(&v, |p, x| op(p, x));
                    machine.discard(cp);
                    machine.discard(v);
                    out.push(folded);
                }
            }
        }
    }
    out
}

/// Fallible [`scan`]: runs under the machine's active guard/fault layer and
/// surfaces any violation (dead PE, memory cap, budget, bounds) as a typed
/// [`SpatialError`] instead of relying on the machine's latched state.
pub fn try_scan<T: Clone>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<T>>,
    op: &impl Fn(&T, &T) -> T,
) -> Result<Vec<Tracked<T>>, SpatialError> {
    machine.guarded(|m| scan(m, lo, items, op))
}

/// Fallible [`scan_any`] (see [`try_scan`]).
pub fn try_scan_any<T: Clone>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<T>>,
    op: &impl Fn(&T, &T) -> T,
) -> Result<Vec<Tracked<T>>, SpatialError> {
    machine.guarded(|m| scan_any(m, lo, items, op))
}

/// Height of the subtree covering `len` leaves (`len = 4^h`).
fn height(len: u64) -> u64 {
    (len.trailing_zeros() / 2) as u64
}

fn up_sweep<T: Clone>(
    machine: &mut Machine,
    lo: u64,
    len: u64,
    leaves: &mut [Option<Tracked<T>>],
    base: u64,
    op: &impl Fn(&T, &T) -> T,
) -> SumNode<T> {
    if len == 1 {
        // Height 0: the element itself is the subtree sum (duplicated
        // locally, which is free — the leaf keeps its copy for the
        // down-sweep).
        let leaf = leaves[(lo - base) as usize].as_ref().expect("leaf present");
        return SumNode { sum: leaf.duplicate(), children: None };
    }
    let q = len / 4;
    let children: [SumNode<T>; 4] = [
        up_sweep(machine, lo, q, leaves, base, op),
        up_sweep(machine, lo + q, q, leaves, base, op),
        up_sweep(machine, lo + 2 * q, q, leaves, base, op),
        up_sweep(machine, lo + 3 * q, q, leaves, base, op),
    ];
    // Gather the four child sums at this node's storage cell: Z-position
    // `lo + height` of the current subgrid.
    let h = height(len);
    let cell = zorder::coord_of(lo + h);
    let mut acc: Option<Tracked<T>> = None;
    for c in &children {
        let arrived = machine.send(&c.sum, cell);
        acc = Some(match acc {
            None => arrived,
            Some(a) => {
                let next = a.zip_with(&arrived, |x, y| op(x, y));
                machine.discard(a);
                machine.discard(arrived);
                next
            }
        });
    }
    SumNode { sum: acc.expect("four children"), children: Some(Box::new(children)) }
}

/// Passes the exclusive prefix `carry` down the tree; each leaf stores
/// `carry ∘ A` (inclusive scan).
#[allow(clippy::too_many_arguments)]
fn down_sweep<T: Clone>(
    machine: &mut Machine,
    lo: u64,
    len: u64,
    node: SumNode<T>,
    carry: Option<Tracked<T>>,
    leaves: &mut [Option<Tracked<T>>],
    out: &mut [Option<Tracked<T>>],
    base: u64,
    op: &impl Fn(&T, &T) -> T,
) {
    if len == 1 {
        let a = leaves[(lo - base) as usize].take().expect("leaf present");
        machine.discard(node.sum);
        let res = match carry {
            None => a,
            Some(x) => {
                // The carry was sent to this subgrid's only processor.
                debug_assert_eq!(x.loc(), a.loc());
                let r = x.zip_with(&a, |p, v| op(p, v));
                machine.discard(x);
                machine.discard(a);
                r
            }
        };
        out[(lo - base) as usize] = Some(res);
        return;
    }
    let q = len / 4;
    let top_left = zorder::coord_of(lo);
    // Bring the incoming carry to the subgrid's top-left processor, gather
    // the three needed child sums there, and form the running prefixes.
    let carry = carry.map(|x| machine.move_to(x, top_left));
    let children = *node.children.expect("internal node");
    machine.discard(node.sum);
    let mut prefixes: Vec<Option<Tracked<T>>> = Vec::with_capacity(4);
    let mut running: Option<Tracked<T>> = carry.inspect(|c| {
        prefixes.push(Some(c.duplicate()));
    });
    if running.is_none() {
        prefixes.push(None);
    }
    let mut child_nodes = Vec::with_capacity(4);
    for (i, c) in children.into_iter().enumerate() {
        if i < 3 {
            let s = machine.send(&c.sum, top_left);
            running = Some(match running.take() {
                None => s,
                Some(r) => {
                    let nr = r.zip_with(&s, |x, y| op(x, y));
                    machine.discard(r);
                    machine.discard(s);
                    nr
                }
            });
            prefixes.push(Some(running.as_ref().expect("just set").duplicate()));
        }
        child_nodes.push(c);
    }
    if let Some(r) = running {
        machine.discard(r);
    }
    // Send prefix i to quadrant i's top-left processor and recurse.
    for (i, (c, p)) in child_nodes.into_iter().zip(prefixes).enumerate() {
        let qlo = lo + i as u64 * q;
        let carried = p.map(|p| machine.move_to(p, zorder::coord_of(qlo)));
        down_sweep(machine, qlo, q, c, carried, leaves, out, base, op);
    }
}

/// Exclusive-scan down-sweep: leaves emit the carry (or identity) itself.
#[allow(clippy::too_many_arguments)]
fn down_sweep_exclusive<T: Clone>(
    machine: &mut Machine,
    lo: u64,
    len: u64,
    node: SumNode<T>,
    carry: Option<Tracked<T>>,
    identity: &T,
    leaves: &mut [Option<Tracked<T>>],
    out: &mut [Option<Tracked<T>>],
    base: u64,
    op: &impl Fn(&T, &T) -> T,
) {
    if len == 1 {
        let a = leaves[(lo - base) as usize].take().expect("leaf present");
        machine.discard(node.sum);
        let res = match carry {
            None => a.with_value(identity.clone()),
            Some(x) => {
                debug_assert_eq!(x.loc(), a.loc());
                x
            }
        };
        machine.discard(a);
        out[(lo - base) as usize] = Some(res);
        return;
    }
    let q = len / 4;
    let top_left = zorder::coord_of(lo);
    let carry = carry.map(|x| machine.move_to(x, top_left));
    let children = *node.children.expect("internal node");
    machine.discard(node.sum);
    let mut prefixes: Vec<Option<Tracked<T>>> = Vec::with_capacity(4);
    let mut running: Option<Tracked<T>> = carry.inspect(|c| {
        prefixes.push(Some(c.duplicate()));
    });
    if running.is_none() {
        prefixes.push(None);
    }
    let mut child_nodes = Vec::with_capacity(4);
    for (i, c) in children.into_iter().enumerate() {
        if i < 3 {
            let s = machine.send(&c.sum, top_left);
            running = Some(match running.take() {
                None => s,
                Some(r) => {
                    let nr = r.zip_with(&s, |x, y| op(x, y));
                    machine.discard(r);
                    machine.discard(s);
                    nr
                }
            });
            prefixes.push(Some(running.as_ref().expect("just set").duplicate()));
        }
        child_nodes.push(c);
    }
    if let Some(r) = running {
        machine.discard(r);
    }
    for (i, (c, p)) in child_nodes.into_iter().zip(prefixes).enumerate() {
        let qlo = lo + i as u64 * q;
        let carried = p.map(|p| machine.move_to(p, zorder::coord_of(qlo)));
        down_sweep_exclusive(machine, qlo, q, c, carried, identity, leaves, out, base, op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zarray::{place_z, read_values};

    fn run_scan(vals: Vec<i64>) -> (Machine, Vec<i64>) {
        let mut m = Machine::new();
        let n = vals.len();
        let items = place_z(&mut m, 0, vals);
        let out = scan(&mut m, 0, items, &|a, b| a + b);
        assert_eq!(out.len(), n);
        (m, read_values(out))
    }

    #[test]
    fn scan_matches_sequential_prefix_sum() {
        for &n in &[1usize, 4, 16, 64, 256, 1024] {
            let vals: Vec<i64> = (0..n as i64).map(|i| (i * 7919) % 101 - 50).collect();
            let mut expect = vals.clone();
            for i in 1..n {
                expect[i] += expect[i - 1];
            }
            let (_, got) = run_scan(vals);
            assert_eq!(got, expect, "n = {n}");
        }
    }

    #[test]
    fn scan_results_stay_on_their_pe() {
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, (0..16i64).collect());
        let locs: Vec<_> = items.iter().map(|t| t.loc()).collect();
        let out = scan(&mut m, 0, items, &|a, b| a + b);
        for (o, l) in out.iter().zip(locs) {
            assert_eq!(o.loc(), l, "result must overwrite the input position");
        }
    }

    #[test]
    fn scan_energy_is_linear() {
        // Lemma IV.3: O(n) energy.
        for &n in &[64usize, 256, 1024, 4096] {
            let (m, _) = run_scan((0..n as i64).collect());
            assert!(m.energy() <= 12 * n as u64, "n = {n}: energy {} > {}", m.energy(), 12 * n);
        }
    }

    #[test]
    fn scan_depth_is_logarithmic() {
        for &n in &[64usize, 1024, 4096] {
            let (m, _) = run_scan((0..n as i64).collect());
            let bound = 8 * (n as f64).log2() as u64 + 8;
            assert!(m.report().depth <= bound, "n = {n}: depth {} > {bound}", m.report().depth);
        }
    }

    #[test]
    fn scan_distance_is_order_sqrt_n() {
        for &n in &[256usize, 4096] {
            let (m, _) = run_scan((0..n as i64).collect());
            let bound = 16 * (n as f64).sqrt() as u64;
            assert!(
                m.report().distance <= bound,
                "n = {n}: distance {} > {bound}",
                m.report().distance
            );
        }
    }

    #[test]
    fn scan_on_offset_aligned_segment() {
        let mut m = Machine::new();
        let items = place_z(&mut m, 64, (1..=16i64).collect());
        let out = scan(&mut m, 64, items, &|a, b| a + b);
        let got = read_values(out);
        let expect: Vec<i64> = (1..=16i64)
            .scan(0, |s, x| {
                *s += x;
                Some(*s)
            })
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn scan_with_non_commutative_operator() {
        // String concatenation is associative but not commutative: the scan
        // must preserve Z-curve order.
        let mut m = Machine::new();
        let letters: Vec<String> = "abcdefghijklmnop".chars().map(|c| c.to_string()).collect();
        let items = place_z(&mut m, 0, letters);
        let out = scan(&mut m, 0, items, &|a: &String, b: &String| format!("{a}{b}"));
        let got = read_values(out);
        assert_eq!(got[0], "a");
        assert_eq!(got[3], "abcd");
        assert_eq!(got[15], "abcdefghijklmnop");
    }

    #[test]
    fn exclusive_scan_shifts_by_one() {
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vec![3i64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3]);
        let out = scan_exclusive(&mut m, 0, items, 0, &|a, b| a + b);
        let got = read_values(out);
        let vals = [3i64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
        let mut expect = vec![0i64];
        for i in 0..15 {
            expect.push(expect[i] + vals[i]);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn scan_memory_stays_constant_per_pe() {
        // Paper: "each processor stores at most 2 values of the summation
        // tree" — plus one carry in flight. Must not grow with n.
        let mut m = Machine::new();
        m.enable_memory_meter();
        let items = place_z(&mut m, 0, (0..256i64).collect());
        let out = scan(&mut m, 0, items, &|a, b| a + b);
        assert!(m.memory().unwrap().peak() <= 3, "peak {}", m.memory().unwrap().peak());
        for o in out {
            m.discard(o);
        }
    }

    #[test]
    #[should_panic(expected = "power of 4")]
    fn scan_rejects_non_power_of_four() {
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vec![1i64, 2, 3, 4, 5, 6, 7, 8]);
        let _ = scan(&mut m, 0, items, &|a, b| a + b);
    }

    #[test]
    fn scan_any_handles_arbitrary_lengths() {
        for n in [1usize, 2, 3, 7, 8, 13, 100, 257, 1000] {
            let vals: Vec<i64> = (0..n as i64).map(|i| (i * 7) % 13 - 6).collect();
            let mut expect = vals.clone();
            for i in 1..n {
                expect[i] += expect[i - 1];
            }
            let mut m = Machine::new();
            let items = place_z(&mut m, 0, vals);
            let got = read_values(scan_any(&mut m, 0, items, &|a, b| a + b));
            assert_eq!(got, expect, "n = {n}");
        }
    }

    #[test]
    fn scan_any_on_unaligned_start() {
        // lo = 4 with len = 24: blocks (4,4), (8,8), (16,12→(16,4)+(20,4)+(24,4))…
        let n = 24usize;
        let vals: Vec<i64> = (1..=n as i64).collect();
        let mut expect = vals.clone();
        for i in 1..n {
            expect[i] += expect[i - 1];
        }
        let mut m = Machine::new();
        let items = place_z(&mut m, 4, vals);
        let got = read_values(scan_any(&mut m, 4, items, &|a, b| a + b));
        assert_eq!(got, expect);
    }

    #[test]
    fn scan_any_energy_stays_linear() {
        let n = 3000usize;
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vec![1i64; n]);
        let _ = scan_any(&mut m, 0, items, &|a, b| a + b);
        assert!(m.energy() <= 24 * n as u64, "energy {}", m.energy());
    }

    #[test]
    fn scan_any_with_non_commutative_operator() {
        let n = 21usize;
        let letters: Vec<String> =
            (0..n).map(|i| ((b'a' + (i % 26) as u8) as char).to_string()).collect();
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, letters.clone());
        let got =
            read_values(scan_any(&mut m, 0, items, &|a: &String, b: &String| format!("{a}{b}")));
        assert_eq!(got[n - 1], letters.concat());
        assert_eq!(got[2], letters[..3].concat());
    }
}
