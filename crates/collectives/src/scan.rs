//! The energy-optimal parallel scan (paper §IV.C, Lemma IV.3).
//!
//! Input: an array of `n` elements (n a power of four) stored along the
//! Z-order curve of a `√n × √n` subgrid. The scan runs an **up-sweep**
//! (computing quadrant partial sums along a 4-ary summation tree whose height-
//! `i` subtree root sits at the `i`-th Z-order position of its subgrid) and a
//! **down-sweep** (passing exclusive prefixes down to the quadrants), exactly
//! as in Fig. 1. Costs: `O(n)` energy, `O(log n)` depth, `O(√n)` distance.
//!
//! The operator only needs to be associative; the inclusive scan never
//! requires an identity element (the carried prefix is `Option`al).

use spatial_model::{zorder, Machine, SpatialError, Tracked};

/// The 4-ary summation tree in arena form: `levels[l]` holds the subtree
/// sums of every block of `4^l` leaves, in block order (`levels[h]` is the
/// root sum; `levels[0]` stays empty — the one-element subtree sums *are*
/// the leaves, which both sweeps read in place). The slots are `Option` so
/// the down-sweep can consume each sum exactly once.
///
/// Compared to a boxed node-per-subtree tree this allocates one `Vec` per
/// *level* instead of a `Box` plus scratch `Vec`s per *node* (~`n/3` heap
/// allocations saved), which is what makes the sweep allocation-free on its
/// hot path. The message DAG is unchanged — same sends, same dependencies —
/// so every reported cost is bit-identical to the recursive form.
struct SumLevels<T> {
    levels: Vec<Vec<Option<Tracked<T>>>>,
}

/// Inclusive scan of `items` (element `i` at global Z-index `lo + i`) under
/// the associative operator `op`. Result `i` — `A_0 ∘ … ∘ A_i` — is returned
/// at the same Z-position as input `i`.
///
/// ```
/// use spatial_model::Machine;
/// use collectives::{place_z, read_values, scan};
///
/// let mut m = Machine::new();
/// let items = place_z(&mut m, 0, vec![1i64, 2, 3, 4]);
/// let sums = read_values(scan(&mut m, 0, items, &|a, b| a + b));
/// assert_eq!(sums, vec![1, 3, 6, 10]);
/// assert!(m.energy() > 0); // the up/down sweeps sent real messages
/// ```
///
/// # Panics
/// Panics if `items.len()` is not a power of four, if `lo` is not aligned to
/// the array length, or if items are not resident at their Z-positions.
pub fn scan<T: Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<T>>,
    op: &impl Fn(&T, &T) -> T,
) -> Vec<Tracked<T>> {
    let n = items.len() as u64;
    assert!(zorder::is_power_of_four(n), "scan input must be a power of 4 (pad if needed)");
    assert_eq!(lo % n, 0, "scan segment must be aligned so quadrants are square subgrids");
    // Per-item placement validation is a debug assertion: it is O(n) pure
    // overhead on the hot path, and the test profile keeps debug assertions
    // on, so misplaced inputs still fail loudly everywhere it matters.
    if cfg!(debug_assertions) {
        for (i, it) in items.iter().enumerate() {
            debug_assert_eq!(
                it.loc(),
                zorder::coord_of(lo + i as u64),
                "item {i} off its Z-position"
            );
        }
    }
    let sums = up_sweep(machine, lo, n, &items, op);
    down_sweep(machine, lo, n, sums, None, items, op)
}

/// Exclusive scan: result `i` is `identity ∘ A_0 ∘ … ∘ A_{i-1}`; result `0`
/// is `identity`.
pub fn scan_exclusive<T: Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<T>>,
    identity: T,
    op: &impl Fn(&T, &T) -> T,
) -> Vec<Tracked<T>> {
    // Shift trick: run the inclusive machinery but emit the carried prefix
    // (or identity) at each leaf instead of combining with the leaf value.
    let n = items.len() as u64;
    assert!(zorder::is_power_of_four(n));
    assert_eq!(lo % n, 0);
    let sums = up_sweep(machine, lo, n, &items, op);
    down_sweep(machine, lo, n, sums, Some(&identity), items, op)
}

/// Inclusive scan over a Z-segment of **arbitrary** length (extension
/// beyond the paper's power-of-four assumption, documented in DESIGN.md).
///
/// The segment `[lo, lo+n)` decomposes into `O(log n)` aligned power-of-four
/// blocks; each block runs the energy-optimal [`scan`], the block totals are
/// gathered at the first cell where the carries are formed locally, and each
/// carry is broadcast over its block and folded in. Costs: `O(n)` energy,
/// `O(log n)` depth, `O(√n)` distance — the Lemma IV.3 bounds without the
/// padding.
pub fn scan_any<T: Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<T>>,
    op: &impl Fn(&T, &T) -> T,
) -> Vec<Tracked<T>> {
    let n = items.len() as u64;
    if n == 0 {
        return items;
    }
    if zorder::is_power_of_four(n) && lo.is_multiple_of(n) {
        return scan(machine, lo, items, op);
    }
    let blocks = zorder::aligned_blocks(lo, lo + n);
    // Per-block scans.
    let mut scanned: Vec<Vec<Tracked<T>>> = Vec::with_capacity(blocks.len());
    let mut iter = items.into_iter();
    for &(start, len) in &blocks {
        let chunk: Vec<Tracked<T>> = iter.by_ref().take(len as usize).collect();
        scanned.push(scan(machine, start, chunk, op));
    }
    // Gather the block totals at the segment's first cell and form the
    // exclusive block carries locally.
    let hub = zorder::coord_of(lo);
    let gathers: Vec<(&Tracked<T>, spatial_model::Coord)> =
        scanned.iter().map(|blk| (blk.last().expect("non-empty block"), hub)).collect();
    let totals: Vec<Tracked<T>> = machine.send_batch_copy(&gathers);
    drop(gathers);
    let mut carries: Vec<Option<Tracked<T>>> = vec![None];
    let mut running: Option<Tracked<T>> = None;
    for t in &totals[..totals.len() - 1] {
        running = Some(match running.take() {
            None => t.duplicate(),
            Some(r) => {
                let nr = r.zip_with(t, |x, y| op(x, y));
                machine.discard(r);
                nr
            }
        });
        carries.push(Some(running.as_ref().expect("just set").duplicate()));
    }
    if let Some(r) = running {
        machine.discard(r);
    }
    for t in totals {
        machine.discard(t);
    }
    // Broadcast each carry over its block and fold it in.
    let mut out = Vec::with_capacity(n as usize);
    for ((&(start, len), blk), carry) in blocks.iter().zip(scanned).zip(carries) {
        match carry {
            None => out.extend(blk),
            Some(c) => {
                let c = machine.move_to(c, zorder::coord_of(start));
                let copies = crate::zseg::broadcast_z(machine, c, start, start + len);
                for (v, cp) in blk.into_iter().zip(copies) {
                    let folded = cp.zip_with(&v, |p, x| op(p, x));
                    machine.discard(cp);
                    machine.discard(v);
                    out.push(folded);
                }
            }
        }
    }
    out
}

/// Fallible [`scan`]: runs under the machine's active guard/fault layer and
/// surfaces any violation (dead PE, memory cap, budget, bounds) as a typed
/// [`SpatialError`] instead of relying on the machine's latched state.
pub fn try_scan<T: Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<T>>,
    op: &impl Fn(&T, &T) -> T,
) -> Result<Vec<Tracked<T>>, SpatialError> {
    machine.guarded(|m| scan(m, lo, items, op))
}

/// Fallible [`scan_any`] (see [`try_scan`]).
pub fn try_scan_any<T: Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<T>>,
    op: &impl Fn(&T, &T) -> T,
) -> Result<Vec<Tracked<T>>, SpatialError> {
    machine.guarded(|m| scan_any(m, lo, items, op))
}

/// Height of the subtree covering `len` leaves (`len = 4^h`).
fn height(len: u64) -> u64 {
    (len.trailing_zeros() / 2) as u64
}

/// Builds the summation tree level by level (bottom-up). Each internal node
/// gathers its four child sums at its storage cell — Z-position
/// `block_lo + level` of its block — folding as they arrive so at most two
/// tree words are ever resident at the cell, exactly as in the recursive
/// formulation.
fn up_sweep<T: Clone>(
    machine: &mut Machine,
    lo: u64,
    n: u64,
    leaves: &[Tracked<T>],
    op: &impl Fn(&T, &T) -> T,
) -> SumLevels<T> {
    let h = height(n);
    let mut levels: Vec<Vec<Option<Tracked<T>>>> = Vec::with_capacity(h as usize + 1);
    // Level 0 is the leaves themselves (the subtree sum of one element is
    // the element); both sweeps read them in place, so the level stays
    // empty rather than holding n redundant duplicates.
    levels.push(Vec::new());
    for l in 1..=h {
        let blk = 1u64 << (2 * l); // 4^l leaves per block at this level
        let groups = (n / blk) as usize;
        let mut cur: Vec<Option<Tracked<T>>> = Vec::with_capacity(groups);
        let prev = &levels[(l - 1) as usize];
        for g in 0..groups {
            let cell = zorder::coord_of(lo + g as u64 * blk + l);
            let child = |i: usize| -> &Tracked<T> {
                if l == 1 {
                    &leaves[4 * g + i]
                } else {
                    prev[4 * g + i].as_ref().expect("child sum")
                }
            };
            let srcs = [child(0), child(1), child(2), child(3)];
            cur.push(Some(machine.gather_copy(&srcs, cell, |x, y| op(x, y))));
        }
        levels.push(cur);
    }
    SumLevels { levels }
}

/// Passes exclusive prefixes down the tree, level by level (top-down).
///
/// For each node: the incoming carry was already delivered to the block's
/// top-left processor by the parent's prefix distribution; one
/// [`Machine::fold_scatter`] gathers the first three child sums there, forms
/// the running prefixes, and ships prefix `i` to child block `i`'s top-left
/// processor (prefix 0 stays put — a self-move is free, as in the recursive
/// formulation's `move_to`).
///
/// With `exclusive: None` each leaf stores `carry ∘ A` (inclusive scan);
/// with `Some(identity)` the leaf emits the carry (or identity) itself.
/// Consumes the leaves and returns the scan results in leaf order.
fn down_sweep<T: Clone>(
    machine: &mut Machine,
    lo: u64,
    n: u64,
    mut sums: SumLevels<T>,
    exclusive: Option<&T>,
    leaves: Vec<Tracked<T>>,
    op: &impl Fn(&T, &T) -> T,
) -> Vec<Tracked<T>> {
    let h = height(n);
    // carries[g]: the exclusive prefix of the g-th block of the current
    // level, resident at that block's top-left processor.
    let mut carries: Vec<Option<Tracked<T>>> = vec![None];
    for l in (1..=h).rev() {
        let blk = 1u64 << (2 * l);
        let q = blk / 4;
        let groups = (n / blk) as usize;
        debug_assert_eq!(carries.len(), groups);
        let mut next: Vec<Option<Tracked<T>>> = (0..groups * 4).map(|_| None).collect();
        for (g, carry) in carries.drain(..).enumerate() {
            let block_lo = lo + g as u64 * blk;
            let node_sum = sums.levels[l as usize][g].take().expect("node sum");
            machine.discard(node_sum);
            let top_left = zorder::coord_of(block_lo);
            // Level-1 nodes read their children (the leaves) in place.
            let child = |i: usize| -> &Tracked<T> {
                if l == 1 {
                    &leaves[4 * g + i]
                } else {
                    sums.levels[(l - 1) as usize][4 * g + i].as_ref().expect("child sum")
                }
            };
            let children = [child(0), child(1), child(2)];
            let dsts = [
                zorder::coord_of(block_lo),
                zorder::coord_of(block_lo + q),
                zorder::coord_of(block_lo + 2 * q),
                zorder::coord_of(block_lo + 3 * q),
            ];
            let prefixes = machine.fold_scatter(carry, &children, top_left, &dsts, |x, y| op(x, y));
            for (i, p) in prefixes.into_iter().enumerate() {
                next[4 * g + i] = p;
            }
        }
        carries = next;
    }
    // Level 0: combine each leaf with its carry, emitting results in leaf
    // order (level-1 prefixes were scattered in leaf order, so `carries[j]`
    // is leaf `j`'s exclusive prefix).
    debug_assert_eq!(carries.len(), leaves.len());
    leaves
        .into_iter()
        .zip(carries)
        .map(|(a, carry)| match exclusive {
            None => match carry {
                None => a,
                Some(x) => {
                    // The carry was sent to this leaf's own processor.
                    debug_assert_eq!(x.loc(), a.loc());
                    let r = x.zip_with(&a, |p, v| op(p, v));
                    machine.discard(x);
                    machine.discard(a);
                    r
                }
            },
            Some(identity) => {
                let res = match carry {
                    None => a.with_value(identity.clone()),
                    Some(x) => {
                        debug_assert_eq!(x.loc(), a.loc());
                        x
                    }
                };
                machine.discard(a);
                res
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zarray::{place_z, read_values};

    fn run_scan(vals: Vec<i64>) -> (Machine, Vec<i64>) {
        let mut m = Machine::new();
        let n = vals.len();
        let items = place_z(&mut m, 0, vals);
        let out = scan(&mut m, 0, items, &|a, b| a + b);
        assert_eq!(out.len(), n);
        (m, read_values(out))
    }

    #[test]
    fn scan_matches_sequential_prefix_sum() {
        for &n in &[1usize, 4, 16, 64, 256, 1024] {
            let vals: Vec<i64> = (0..n as i64).map(|i| (i * 7919) % 101 - 50).collect();
            let mut expect = vals.clone();
            for i in 1..n {
                expect[i] += expect[i - 1];
            }
            let (_, got) = run_scan(vals);
            assert_eq!(got, expect, "n = {n}");
        }
    }

    #[test]
    fn scan_results_stay_on_their_pe() {
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, (0..16i64).collect());
        let locs: Vec<_> = items.iter().map(|t| t.loc()).collect();
        let out = scan(&mut m, 0, items, &|a, b| a + b);
        for (o, l) in out.iter().zip(locs) {
            assert_eq!(o.loc(), l, "result must overwrite the input position");
        }
    }

    #[test]
    fn scan_energy_is_linear() {
        // Lemma IV.3: O(n) energy.
        for &n in &[64usize, 256, 1024, 4096] {
            let (m, _) = run_scan((0..n as i64).collect());
            assert!(m.energy() <= 12 * n as u64, "n = {n}: energy {} > {}", m.energy(), 12 * n);
        }
    }

    #[test]
    fn scan_depth_is_logarithmic() {
        for &n in &[64usize, 1024, 4096] {
            let (m, _) = run_scan((0..n as i64).collect());
            let bound = 8 * (n as f64).log2() as u64 + 8;
            assert!(m.report().depth <= bound, "n = {n}: depth {} > {bound}", m.report().depth);
        }
    }

    #[test]
    fn scan_distance_is_order_sqrt_n() {
        for &n in &[256usize, 4096] {
            let (m, _) = run_scan((0..n as i64).collect());
            let bound = 16 * (n as f64).sqrt() as u64;
            assert!(
                m.report().distance <= bound,
                "n = {n}: distance {} > {bound}",
                m.report().distance
            );
        }
    }

    #[test]
    fn scan_on_offset_aligned_segment() {
        let mut m = Machine::new();
        let items = place_z(&mut m, 64, (1..=16i64).collect());
        let out = scan(&mut m, 64, items, &|a, b| a + b);
        let got = read_values(out);
        let expect: Vec<i64> = (1..=16i64)
            .scan(0, |s, x| {
                *s += x;
                Some(*s)
            })
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn scan_with_non_commutative_operator() {
        // String concatenation is associative but not commutative: the scan
        // must preserve Z-curve order.
        let mut m = Machine::new();
        let letters: Vec<String> = "abcdefghijklmnop".chars().map(|c| c.to_string()).collect();
        let items = place_z(&mut m, 0, letters);
        let out = scan(&mut m, 0, items, &|a: &String, b: &String| format!("{a}{b}"));
        let got = read_values(out);
        assert_eq!(got[0], "a");
        assert_eq!(got[3], "abcd");
        assert_eq!(got[15], "abcdefghijklmnop");
    }

    #[test]
    fn exclusive_scan_shifts_by_one() {
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vec![3i64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3]);
        let out = scan_exclusive(&mut m, 0, items, 0, &|a, b| a + b);
        let got = read_values(out);
        let vals = [3i64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3];
        let mut expect = vec![0i64];
        for i in 0..15 {
            expect.push(expect[i] + vals[i]);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn scan_memory_stays_constant_per_pe() {
        // Paper: "each processor stores at most 2 values of the summation
        // tree" — plus one carry in flight. Must not grow with n.
        let mut m = Machine::new();
        m.enable_memory_meter();
        let items = place_z(&mut m, 0, (0..256i64).collect());
        let out = scan(&mut m, 0, items, &|a, b| a + b);
        assert!(m.memory().unwrap().peak() <= 3, "peak {}", m.memory().unwrap().peak());
        for o in out {
            m.discard(o);
        }
    }

    #[test]
    #[should_panic(expected = "power of 4")]
    fn scan_rejects_non_power_of_four() {
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vec![1i64, 2, 3, 4, 5, 6, 7, 8]);
        let _ = scan(&mut m, 0, items, &|a, b| a + b);
    }

    #[test]
    fn scan_any_handles_arbitrary_lengths() {
        for n in [1usize, 2, 3, 7, 8, 13, 100, 257, 1000] {
            let vals: Vec<i64> = (0..n as i64).map(|i| (i * 7) % 13 - 6).collect();
            let mut expect = vals.clone();
            for i in 1..n {
                expect[i] += expect[i - 1];
            }
            let mut m = Machine::new();
            let items = place_z(&mut m, 0, vals);
            let got = read_values(scan_any(&mut m, 0, items, &|a, b| a + b));
            assert_eq!(got, expect, "n = {n}");
        }
    }

    #[test]
    fn scan_any_on_unaligned_start() {
        // lo = 4 with len = 24: blocks (4,4), (8,8), (16,12→(16,4)+(20,4)+(24,4))…
        let n = 24usize;
        let vals: Vec<i64> = (1..=n as i64).collect();
        let mut expect = vals.clone();
        for i in 1..n {
            expect[i] += expect[i - 1];
        }
        let mut m = Machine::new();
        let items = place_z(&mut m, 4, vals);
        let got = read_values(scan_any(&mut m, 4, items, &|a, b| a + b));
        assert_eq!(got, expect);
    }

    #[test]
    fn scan_any_energy_stays_linear() {
        let n = 3000usize;
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vec![1i64; n]);
        let _ = scan_any(&mut m, 0, items, &|a, b| a + b);
        assert!(m.energy() <= 24 * n as u64, "energy {}", m.energy());
    }

    #[test]
    fn scan_any_with_non_commutative_operator() {
        let n = 21usize;
        let letters: Vec<String> =
            (0..n).map(|i| ((b'a' + (i % 26) as u8) as char).to_string()).collect();
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, letters.clone());
        let got =
            read_values(scan_any(&mut m, 0, items, &|a: &String, b: &String| format!("{a}{b}")));
        assert_eq!(got[n - 1], letters.concat());
        assert_eq!(got[2], letters[..3].concat());
    }
}
