//! Placement helpers: arrays on the Z-order curve or row-major on a subgrid.

use spatial_model::{zorder, Machine, SubGrid, Tracked};

/// Places `values[i]` at global Z-order index `lo + i`.
///
/// This is the canonical array layout of the paper (§III): an array occupies
/// a contiguous segment of the grid-wide Z-order curve, so any aligned
/// power-of-four sub-segment is a square subgrid.
pub fn place_z<T: Send>(machine: &mut Machine, lo: u64, values: Vec<T>) -> Vec<Tracked<T>> {
    machine.place_batch(values, |i| zorder::coord_of(lo + i as u64))
}

/// Places `values[i]` at row-major index `i` of `grid`.
pub fn place_row_major<T: Send>(
    machine: &mut Machine,
    grid: SubGrid,
    values: Vec<T>,
) -> Vec<Tracked<T>> {
    assert_eq!(values.len() as u64, grid.len());
    machine.place_batch(values, |i| grid.rm_coord(i as u64))
}

/// Extracts the plain values (consuming the tracked wrappers).
pub fn read_values<T>(items: Vec<Tracked<T>>) -> Vec<T> {
    items.into_iter().map(Tracked::into_value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_model::Coord;

    #[test]
    fn place_z_puts_items_on_curve() {
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vec![10, 20, 30, 40, 50]);
        assert_eq!(items[0].loc(), Coord::new(0, 0));
        assert_eq!(items[1].loc(), Coord::new(0, 1));
        assert_eq!(items[2].loc(), Coord::new(1, 0));
        assert_eq!(items[3].loc(), Coord::new(1, 1));
        assert_eq!(items[4].loc(), Coord::new(0, 2));
        assert_eq!(m.energy(), 0, "placement is free");
    }

    #[test]
    fn place_row_major_matches_grid_indexing() {
        let mut m = Machine::new();
        let g = SubGrid::new(Coord::new(5, 5), 2, 3);
        let items = place_row_major(&mut m, g, vec![0, 1, 2, 3, 4, 5]);
        for (i, it) in items.iter().enumerate() {
            assert_eq!(it.loc(), g.rm_coord(i as u64));
        }
        assert_eq!(read_values(items), vec![0, 1, 2, 3, 4, 5]);
    }
}
