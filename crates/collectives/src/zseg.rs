//! Collectives over arbitrary Z-curve segments.
//!
//! Arrays in this codebase live on contiguous ranges `[lo, hi)` of the global
//! Z-order curve (see DESIGN.md). Such a range decomposes into `O(log L)`
//! aligned power-of-four blocks, each an axis-aligned square; the block sides
//! first grow then shrink, so chaining block corners costs `O(√L)` distance
//! and the per-block quadrant trees give `O(L)` total energy at `O(log L)`
//! depth — the same bounds as the square-subgrid collectives.

use spatial_model::{zorder, Coord, Machine, Tracked};

/// Broadcasts `root` to every cell of the Z-range `[lo, hi)`.
///
/// Returns one value per cell, indexed by Z-offset (`out[i]` lives at
/// Z-index `lo + i`). The root may start anywhere; it is first moved to
/// `coord_of(lo)`.
pub fn broadcast_z<T: Clone + Send + Sync>(
    machine: &mut Machine,
    root: Tracked<T>,
    lo: u64,
    hi: u64,
) -> Vec<Tracked<T>> {
    assert!(lo < hi, "empty Z range");
    let mut out: Vec<Option<Tracked<T>>> = (0..(hi - lo)).map(|_| None).collect();
    let mut carrier = machine.move_to(root, zorder::coord_of(lo));
    let blocks = zorder::aligned_blocks(lo, hi);
    for (bi, &(start, len)) in blocks.iter().enumerate() {
        let here = machine.move_to(carrier, zorder::coord_of(start));
        // Hand the value to the next block corner before filling this block,
        // so the inter-block chain is only O(#blocks) messages long.
        carrier = if bi + 1 < blocks.len() {
            machine.send(&here, zorder::coord_of(blocks[bi + 1].0))
        } else {
            here.duplicate()
        };
        bcast_block(machine, here, start, len, lo, &mut out);
    }
    machine.discard(carrier);
    out.into_iter().map(|o| o.expect("broadcast_z missed a cell")).collect()
}

/// Quadrant broadcast within one aligned block, level by level. At each
/// level the filled corners (offsets `k·span`) each copy to their three
/// sibling corners `k·span + i·q`; because the block is aligned, the
/// displacement is `decode(i·q)` for every `k`, so each `(level, i)` is one
/// [`spatial_model::BatchPattern::Uniform`] batch. Charges exactly what the
/// depth-first recursion charges.
fn bcast_block<T: Clone + Send + Sync>(
    machine: &mut Machine,
    root: Tracked<T>,
    start: u64,
    len: u64,
    base: u64,
    out: &mut [Option<Tracked<T>>],
) {
    debug_assert_eq!(root.loc(), zorder::coord_of(start));
    out[(start - base) as usize] = Some(root);
    let mut filled: Vec<u64> = vec![0];
    let mut span = len;
    while span > 1 {
        let q = span / 4;
        for i in 1..4 {
            let sends: Vec<(&Tracked<T>, Coord)> = filled
                .iter()
                .map(|&off| {
                    let src = out[(start - base + off) as usize].as_ref().expect("filled corner");
                    (src, zorder::coord_of(start + off + i * q))
                })
                .collect();
            let arrived = machine.send_batch_copy(&sends);
            drop(sends);
            for (&off, got) in filled.iter().zip(arrived) {
                out[(start - base + off + i * q) as usize] = Some(got);
            }
        }
        let mut next = Vec::with_capacity(filled.len() * 4);
        for i in 0..4 {
            next.extend(filled.iter().map(|&off| off + i * q));
        }
        next.sort_unstable();
        filled = next;
        span = q;
    }
}

/// Reduces one value per cell of the Z-range `[lo, hi)` (indexed by
/// Z-offset) onto the range's first cell.
pub fn reduce_z<T: Clone + Send + Sync>(
    machine: &mut Machine,
    items: Vec<Tracked<T>>,
    lo: u64,
    op: &impl Fn(&T, &T) -> T,
) -> Tracked<T> {
    let hi = lo + items.len() as u64;
    assert!(lo < hi, "empty Z range");
    for (i, it) in items.iter().enumerate() {
        debug_assert_eq!(it.loc(), zorder::coord_of(lo + i as u64), "item {i} off its Z-cell");
    }
    let mut slots: Vec<Option<Tracked<T>>> = items.into_iter().map(Some).collect();
    // Reduce each aligned block onto its corner, then chain the corners
    // back-to-front so the result lands on the first cell.
    let blocks = zorder::aligned_blocks(lo, hi);
    let mut acc: Option<Tracked<T>> = None;
    for &(start, len) in blocks.iter().rev() {
        let partial = reduce_block(machine, start, len, lo, &mut slots, op);
        acc = Some(match acc {
            None => partial,
            Some(a) => {
                let arrived = machine.send_owned(a, zorder::coord_of(start));
                let combined = partial.zip_with(&arrived, |x, y| op(x, y));
                machine.discard(partial);
                machine.discard(arrived);
                combined
            }
        });
        if start != lo {
            // keep the accumulator at the current block corner; the next
            // (earlier) block will pull it over.
        }
    }
    let res = acc.expect("non-empty range");
    machine.move_to(res, zorder::coord_of(lo))
}

/// Quadrant sum-reduce within one aligned block, bottom-up level by level.
/// Each level's group of four partials folds onto the group corner; the
/// three travelling siblings share displacement `−decode(i·stride)` across
/// every group, so each `(level, i)` is one uniform batch. Siblings fold in
/// ascending quadrant order, exactly as the depth-first recursion does.
fn reduce_block<T: Clone + Send + Sync>(
    machine: &mut Machine,
    start: u64,
    len: u64,
    base: u64,
    slots: &mut [Option<Tracked<T>>],
    op: &impl Fn(&T, &T) -> T,
) -> Tracked<T> {
    let mut vals: Vec<Tracked<T>> = (0..len)
        .map(|off| slots[(start - base + off) as usize].take().expect("cell populated"))
        .collect();
    let mut stride = 1u64;
    while vals.len() > 1 {
        let groups = vals.len() / 4;
        let mut keep: Vec<Tracked<T>> = Vec::with_capacity(groups);
        let mut sib_sends: [Vec<(Tracked<T>, Coord)>; 3] =
            std::array::from_fn(|_| Vec::with_capacity(groups));
        let mut it = vals.into_iter();
        for g in 0..groups {
            let corner = zorder::coord_of(start + 4 * g as u64 * stride);
            keep.push(it.next().expect("corner partial"));
            for s in &mut sib_sends {
                s.push((it.next().expect("sibling partial"), corner));
            }
        }
        let mut arrived: Vec<std::vec::IntoIter<Tracked<T>>> =
            sib_sends.into_iter().map(|s| machine.send_batch(s).into_iter()).collect();
        let mut next = Vec::with_capacity(groups);
        for mut acc in keep {
            for a in &mut arrived {
                let arr = a.next().expect("one arrival per group");
                let combined = acc.zip_with(&arr, |x, y| op(x, y));
                machine.discard(arr);
                machine.discard(std::mem::replace(&mut acc, combined));
            }
            next.push(acc);
        }
        vals = next;
        stride *= 4;
    }
    vals.pop().expect("non-empty block")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zarray::place_z;

    #[test]
    fn broadcast_z_reaches_every_cell_of_unaligned_ranges() {
        for &(lo, hi) in &[(0u64, 16u64), (3, 29), (17, 18), (5, 133), (64, 64 + 48)] {
            let mut m = Machine::new();
            let root = m.place(zorder::coord_of(lo), 7i64);
            let out = broadcast_z(&mut m, root, lo, hi);
            assert_eq!(out.len() as u64, hi - lo);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v.value(), 7);
                assert_eq!(v.loc(), zorder::coord_of(lo + i as u64));
            }
        }
    }

    #[test]
    fn broadcast_z_energy_is_linear() {
        for &len in &[64u64, 256, 1024, 4096] {
            let mut m = Machine::new();
            let root = m.place(zorder::coord_of(0), 1u8);
            let _ = broadcast_z(&mut m, root, 0, len);
            assert!(m.energy() <= 6 * len, "len {len}: energy {}", m.energy());
        }
    }

    #[test]
    fn reduce_z_sums_unaligned_ranges() {
        for &(lo, len) in &[(0u64, 16u64), (3, 29), (17, 1), (5, 133), (21, 100)] {
            let mut m = Machine::new();
            let vals: Vec<i64> = (0..len as i64).collect();
            let items = place_z(&mut m, lo, vals);
            let total = reduce_z(&mut m, items, lo, &|a, b| a + b);
            assert_eq!(total.loc(), zorder::coord_of(lo));
            assert_eq!(
                total.into_value(),
                (len as i64) * (len as i64 - 1) / 2,
                "lo={lo} len={len}"
            );
        }
    }

    #[test]
    fn reduce_z_depth_is_logarithmic_for_aligned_ranges() {
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vec![1i64; 1024]);
        let _ = reduce_z(&mut m, items, 0, &|a, b| a + b);
        assert!(m.report().depth <= 40, "depth {}", m.report().depth);
    }

    #[test]
    fn broadcast_then_reduce_roundtrip() {
        let mut m = Machine::new();
        let root = m.place(zorder::coord_of(11), 3i64);
        let out = broadcast_z(&mut m, root, 11, 91);
        let total = reduce_z(&mut m, out, 11, &|a, b| a + b);
        assert_eq!(total.into_value(), 3 * 80);
    }
}
