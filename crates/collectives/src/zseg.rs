//! Collectives over arbitrary Z-curve segments.
//!
//! Arrays in this codebase live on contiguous ranges `[lo, hi)` of the global
//! Z-order curve (see DESIGN.md). Such a range decomposes into `O(log L)`
//! aligned power-of-four blocks, each an axis-aligned square; the block sides
//! first grow then shrink, so chaining block corners costs `O(√L)` distance
//! and the per-block quadrant trees give `O(L)` total energy at `O(log L)`
//! depth — the same bounds as the square-subgrid collectives.

use spatial_model::{zorder, Machine, Tracked};

/// Broadcasts `root` to every cell of the Z-range `[lo, hi)`.
///
/// Returns one value per cell, indexed by Z-offset (`out[i]` lives at
/// Z-index `lo + i`). The root may start anywhere; it is first moved to
/// `coord_of(lo)`.
pub fn broadcast_z<T: Clone>(
    machine: &mut Machine,
    root: Tracked<T>,
    lo: u64,
    hi: u64,
) -> Vec<Tracked<T>> {
    assert!(lo < hi, "empty Z range");
    let mut out: Vec<Option<Tracked<T>>> = (0..(hi - lo)).map(|_| None).collect();
    let mut carrier = machine.move_to(root, zorder::coord_of(lo));
    let blocks = zorder::aligned_blocks(lo, hi);
    for (bi, &(start, len)) in blocks.iter().enumerate() {
        let here = machine.move_to(carrier, zorder::coord_of(start));
        // Hand the value to the next block corner before filling this block,
        // so the inter-block chain is only O(#blocks) messages long.
        carrier = if bi + 1 < blocks.len() {
            machine.send(&here, zorder::coord_of(blocks[bi + 1].0))
        } else {
            here.duplicate()
        };
        bcast_block(machine, here, start, len, lo, &mut out);
    }
    machine.discard(carrier);
    out.into_iter().map(|o| o.expect("broadcast_z missed a cell")).collect()
}

fn bcast_block<T: Clone>(
    machine: &mut Machine,
    root: Tracked<T>,
    start: u64,
    len: u64,
    base: u64,
    out: &mut [Option<Tracked<T>>],
) {
    debug_assert_eq!(root.loc(), zorder::coord_of(start));
    if len == 1 {
        out[(start - base) as usize] = Some(root);
        return;
    }
    let q = len / 4;
    let copies: Vec<Tracked<T>> =
        (1..4).map(|i| machine.send(&root, zorder::coord_of(start + i * q))).collect();
    bcast_block(machine, root, start, q, base, out);
    for (i, c) in copies.into_iter().enumerate() {
        bcast_block(machine, c, start + (i as u64 + 1) * q, q, base, out);
    }
}

/// Reduces one value per cell of the Z-range `[lo, hi)` (indexed by
/// Z-offset) onto the range's first cell.
pub fn reduce_z<T: Clone>(
    machine: &mut Machine,
    items: Vec<Tracked<T>>,
    lo: u64,
    op: &impl Fn(&T, &T) -> T,
) -> Tracked<T> {
    let hi = lo + items.len() as u64;
    assert!(lo < hi, "empty Z range");
    for (i, it) in items.iter().enumerate() {
        debug_assert_eq!(it.loc(), zorder::coord_of(lo + i as u64), "item {i} off its Z-cell");
    }
    let mut slots: Vec<Option<Tracked<T>>> = items.into_iter().map(Some).collect();
    // Reduce each aligned block onto its corner, then chain the corners
    // back-to-front so the result lands on the first cell.
    let blocks = zorder::aligned_blocks(lo, hi);
    let mut acc: Option<Tracked<T>> = None;
    for &(start, len) in blocks.iter().rev() {
        let partial = reduce_block(machine, start, len, lo, &mut slots, op);
        acc = Some(match acc {
            None => partial,
            Some(a) => {
                let arrived = machine.send_owned(a, zorder::coord_of(start));
                let combined = partial.zip_with(&arrived, |x, y| op(x, y));
                machine.discard(partial);
                machine.discard(arrived);
                combined
            }
        });
        if start != lo {
            // keep the accumulator at the current block corner; the next
            // (earlier) block will pull it over.
        }
    }
    let res = acc.expect("non-empty range");
    machine.move_to(res, zorder::coord_of(lo))
}

fn reduce_block<T: Clone>(
    machine: &mut Machine,
    start: u64,
    len: u64,
    base: u64,
    slots: &mut [Option<Tracked<T>>],
    op: &impl Fn(&T, &T) -> T,
) -> Tracked<T> {
    if len == 1 {
        return slots[(start - base) as usize].take().expect("cell populated");
    }
    let q = len / 4;
    let mut acc = reduce_block(machine, start, q, base, slots, op);
    for i in 1..4 {
        let partial = reduce_block(machine, start + i * q, q, base, slots, op);
        let arrived = machine.send_owned(partial, zorder::coord_of(start));
        let combined = acc.zip_with(&arrived, |x, y| op(x, y));
        machine.discard(arrived);
        machine.discard(std::mem::replace(&mut acc, combined));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zarray::place_z;

    #[test]
    fn broadcast_z_reaches_every_cell_of_unaligned_ranges() {
        for &(lo, hi) in &[(0u64, 16u64), (3, 29), (17, 18), (5, 133), (64, 64 + 48)] {
            let mut m = Machine::new();
            let root = m.place(zorder::coord_of(lo), 7i64);
            let out = broadcast_z(&mut m, root, lo, hi);
            assert_eq!(out.len() as u64, hi - lo);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v.value(), 7);
                assert_eq!(v.loc(), zorder::coord_of(lo + i as u64));
            }
        }
    }

    #[test]
    fn broadcast_z_energy_is_linear() {
        for &len in &[64u64, 256, 1024, 4096] {
            let mut m = Machine::new();
            let root = m.place(zorder::coord_of(0), 1u8);
            let _ = broadcast_z(&mut m, root, 0, len);
            assert!(m.energy() <= 6 * len, "len {len}: energy {}", m.energy());
        }
    }

    #[test]
    fn reduce_z_sums_unaligned_ranges() {
        for &(lo, len) in &[(0u64, 16u64), (3, 29), (17, 1), (5, 133), (21, 100)] {
            let mut m = Machine::new();
            let vals: Vec<i64> = (0..len as i64).collect();
            let items = place_z(&mut m, lo, vals);
            let total = reduce_z(&mut m, items, lo, &|a, b| a + b);
            assert_eq!(total.loc(), zorder::coord_of(lo));
            assert_eq!(
                total.into_value(),
                (len as i64) * (len as i64 - 1) / 2,
                "lo={lo} len={len}"
            );
        }
    }

    #[test]
    fn reduce_z_depth_is_logarithmic_for_aligned_ranges() {
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vec![1i64; 1024]);
        let _ = reduce_z(&mut m, items, 0, &|a, b| a + b);
        assert!(m.report().depth <= 40, "depth {}", m.report().depth);
    }

    #[test]
    fn broadcast_then_reduce_roundtrip() {
        let mut m = Machine::new();
        let root = m.place(zorder::coord_of(11), 3i64);
        let out = broadcast_z(&mut m, root, 11, 91);
        let total = reduce_z(&mut m, out, 11, &|a, b| a + b);
        assert_eq!(total.into_value(), 3 * 80);
    }
}
