//! Naive row-major binary-tree baselines with `Θ(n log n)` energy.
//!
//! These are the constructions the paper improves on: a binary tree built
//! over the array in row-major order (offset-doubling dissemination) costs
//! `Θ(n log n)` energy at logarithmic depth, because the low tree levels pay
//! unit-distance hops for `n/2` edges, the middle levels pay full-row hops —
//! `Θ(n)` energy per level for `Θ(log n)` levels (§IV.C, and \[11\] for the
//! matching broadcast/reduce lower bounds in the log-depth regime).
//!
//! The benchmark harness compares these against the energy-optimal
//! collectives to reproduce the claimed `Θ(log n)` separation.

use spatial_model::{Machine, SubGrid, Tracked};

use crate::check_grid_len;

/// Binary-tree broadcast over the row-major order: at stride `s = n/2, n/4,
/// …, 1`, every informed index `i ≡ 0 (mod 2s)` informs `i + s`. Level
/// `s` sends `n/2s` messages of row-major offset `s`, which on the grid
/// costs `Θ(min(s, √n)·n/s)` — `Θ(n)` per level for the `log √n` in-row
/// levels — giving `Θ(n log n)` energy at `O(log n)` depth. This is the
/// baseline the paper's §IV improves by a `Θ(log n)` factor.
pub fn naive_broadcast<T: Clone>(
    machine: &mut Machine,
    root: Tracked<T>,
    grid: SubGrid,
) -> Vec<Tracked<T>> {
    assert_eq!(root.loc(), grid.origin);
    let n = grid.len();
    assert!(n.is_power_of_two(), "naive broadcast requires a power-of-two grid");
    let mut slots: Vec<Option<Tracked<T>>> = (0..n).map(|_| None).collect();
    slots[0] = Some(root);
    let mut s = n / 2;
    while s >= 1 {
        let mut i = 0;
        while i + s < n {
            let src = slots[i as usize].as_ref().expect("tree parent holds the value");
            let v = machine.send(src, grid.rm_coord(i + s));
            slots[(i + s) as usize] = Some(v);
            i += 2 * s;
        }
        s /= 2;
    }
    slots.into_iter().map(|o| o.expect("tree covered all PEs")).collect()
}

/// Binary-tree reduce over the row-major order (the reverse of
/// [`naive_broadcast`]). Energy `Θ(n log n)`, depth `O(log n)`.
pub fn naive_reduce<T: Clone>(
    machine: &mut Machine,
    items: Vec<Tracked<T>>,
    grid: SubGrid,
    op: &impl Fn(&T, &T) -> T,
) -> Tracked<T> {
    check_grid_len(&items, &grid);
    let mut slots: Vec<Option<Tracked<T>>> = items.into_iter().map(Some).collect();
    let n = grid.len();
    assert!(n.is_power_of_two(), "naive reduce requires a power-of-two grid");
    let mut stride = 1u64;
    while stride < n {
        let mut i = 0;
        while i + stride < n {
            let hi = slots[(i + stride) as usize].take().expect("slot populated");
            let arrived = machine.send_owned(hi, grid.rm_coord(i));
            let lo = slots[i as usize].take().expect("slot populated");
            let combined = lo.zip_with(&arrived, |a, b| op(a, b));
            machine.discard(lo);
            machine.discard(arrived);
            slots[i as usize] = Some(combined);
            i += 2 * stride;
        }
        stride *= 2;
    }
    slots[0].take().expect("root holds the total")
}

/// Blelloch-style up/down-sweep scan over the **row-major** binary tree.
/// Correct, logarithmic depth, but `Θ(n log n)` energy — the baseline the
/// Z-order scan of Lemma IV.3 beats by a `Θ(log n)` factor.
pub fn naive_scan<T: Clone>(
    machine: &mut Machine,
    items: Vec<Tracked<T>>,
    grid: SubGrid,
    op: &impl Fn(&T, &T) -> T,
) -> Vec<Tracked<T>> {
    check_grid_len(&items, &grid);
    let n = grid.len();
    assert!(n.is_power_of_two(), "naive scan requires a power-of-two length");
    // Classic Blelloch layout over the row-major linear order: subtree sums
    // are stored at the right end of their range.
    let leaves: Vec<Tracked<T>> = items.iter().map(|t| t.duplicate()).collect();
    let mut partial: Vec<Tracked<T>> = items.into_iter().collect();
    // Up-sweep: partial[i+2s-1] <- partial[i+s-1] ∘ partial[i+2s-1].
    let mut s = 1u64;
    while s < n {
        let mut i = 0;
        while i + 2 * s <= n {
            let l = (i + s - 1) as usize;
            let r = (i + 2 * s - 1) as usize;
            let arrived = machine.send(&partial[l], grid.rm_coord(r as u64));
            let combined = arrived.zip_with(&partial[r], |a, b| op(a, b));
            machine.discard(arrived);
            machine.discard(std::mem::replace(&mut partial[r], combined));
            i += 2 * s;
        }
        s *= 2;
    }
    // Down-sweep: the carry at a node is the sum of everything left of its
    // range (`None` = empty prefix); it ends up at each leaf's position.
    let mut carry: Vec<Option<Option<Tracked<T>>>> = (0..n).map(|_| None).collect();
    carry[(n - 1) as usize] = Some(None);
    let mut s = n / 2;
    while s >= 1 {
        let mut i = 0;
        while i + 2 * s <= n {
            let l = (i + s - 1) as usize;
            let r = (i + 2 * s - 1) as usize;
            let c = carry[r].take().expect("parent carry set");
            // Left child inherits the parent's carry (moved to its cell);
            // right child's carry is parent ∘ left-subtree-sum.
            let left_carry = c.as_ref().map(|cv| machine.send(cv, grid.rm_coord(l as u64)));
            let left_sum = machine.send(&partial[l], grid.rm_coord(r as u64));
            let right_carry = match c {
                None => left_sum,
                Some(cv) => {
                    let combined = cv.zip_with(&left_sum, |a, b| op(a, b));
                    machine.discard(cv);
                    machine.discard(left_sum);
                    combined
                }
            };
            carry[l] = Some(left_carry);
            carry[r] = Some(Some(right_carry));
            i += 2 * s;
        }
        s /= 2;
    }
    // Inclusive result at each leaf: carry ∘ leaf.
    let mut out = Vec::with_capacity(n as usize);
    for (leaf, c) in leaves.into_iter().zip(carry) {
        let res = match c.expect("every leaf received a carry") {
            None => leaf,
            Some(p) => {
                let r = p.zip_with(&leaf, |a, b| op(a, b));
                machine.discard(p);
                machine.discard(leaf);
                r
            }
        };
        out.push(res);
    }
    for p in partial {
        machine.discard(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zarray::{place_row_major, read_values};
    use spatial_model::Coord;

    #[test]
    fn naive_broadcast_reaches_everyone() {
        let mut m = Machine::new();
        let g = SubGrid::square(Coord::ORIGIN, 8);
        let root = m.place(g.origin, 5i64);
        let out = naive_broadcast(&mut m, root, g);
        assert!(out.iter().all(|v| *v.value() == 5));
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn naive_reduce_computes_sum() {
        let mut m = Machine::new();
        let g = SubGrid::square(Coord::ORIGIN, 8);
        let items = place_row_major(&mut m, g, (0..64i64).collect());
        let got = naive_reduce(&mut m, items, g, &|a, b| a + b);
        assert_eq!(got.into_value(), 63 * 64 / 2);
    }

    #[test]
    fn naive_scan_matches_prefix_sums() {
        for side in [2u64, 4, 8, 16] {
            let n = side * side;
            let mut m = Machine::new();
            let g = SubGrid::square(Coord::ORIGIN, side);
            let vals: Vec<i64> = (0..n as i64).map(|i| (i % 5) - 2).collect();
            let mut expect = vals.clone();
            for i in 1..n as usize {
                expect[i] += expect[i - 1];
            }
            let items = place_row_major(&mut m, g, vals);
            let got = read_values(naive_scan(&mut m, items, g, &|a, b| a + b));
            assert_eq!(got, expect, "side {side}");
        }
    }

    #[test]
    fn naive_broadcast_uses_superlinear_energy() {
        // The point of the baseline: energy grows like n log n, so the
        // per-element energy must grow with n (unlike the optimal broadcast).
        let per_elem = |side: u64| {
            let mut m = Machine::new();
            let g = SubGrid::square(Coord::ORIGIN, side);
            let root = m.place(g.origin, 0u8);
            let _ = naive_broadcast(&mut m, root, g);
            m.energy() as f64 / (side * side) as f64
        };
        let small = per_elem(8);
        let large = per_elem(64);
        assert!(
            large > small * 1.5,
            "expected superlinear growth: {small:.2} -> {large:.2} energy/element"
        );
    }
}
