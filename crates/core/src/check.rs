//! # check — an in-tree property-testing harness
//!
//! A minimal, dependency-free replacement for the slice of `proptest` this
//! workspace used: seeded random case generation, a configurable case count,
//! reproducible failure reporting, and greedy input shrinking for `Vec`
//! properties.
//!
//! ## Running and reproducing
//!
//! Each property runs `SPATIAL_CHECK_CASES` cases (default
//! [`DEFAULT_CASES`]) from the run seed `SPATIAL_CHECK_SEED` (default
//! [`DEFAULT_SEED`]). Case `i` draws from an independent RNG stream, and
//! case 0 uses the run seed *directly*, so any failing case is replayable in
//! isolation from the two numbers the failure message prints:
//!
//! ```text
//! SPATIAL_CHECK_SEED=<case seed> SPATIAL_CHECK_CASES=1 cargo test <test name>
//! ```
//!
//! ## Writing properties
//!
//! ```
//! use spatial_core::check::{check, Gen};
//! use spatial_core::{prop_assert, prop_assert_eq};
//!
//! check("addition_commutes", |g: &mut Gen| {
//!     let (a, b) = (g.int(-100i64..=100), g.int(-100i64..=100));
//!     prop_assert_eq!(a + b, b + a);
//!     Ok(())
//! });
//! ```
//!
//! [`check_vec`] adds shrinking: when a `Vec` case fails, progressively
//! smaller sub-vectors are retried and the smallest still-failing input is
//! reported alongside the seed.

use spatial_rng::{Rng, SampleRange, SplitMix64};

/// Default number of cases per property (override with `SPATIAL_CHECK_CASES`).
pub const DEFAULT_CASES: u32 = 64;

/// Default run seed (override with `SPATIAL_CHECK_SEED`).
pub const DEFAULT_SEED: u64 = 0x5EED_CAFE_F00D_0001;

/// Harness configuration, normally read from the environment.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Run seed; case `i` derives its own seed from it (case 0 uses it as-is).
    pub seed: u64,
}

impl Config {
    /// Reads `SPATIAL_CHECK_CASES` / `SPATIAL_CHECK_SEED`, falling back to
    /// the defaults. Invalid values are a test-setup bug, so they panic.
    pub fn from_env() -> Self {
        let parse = |var: &str, default: u64| -> u64 {
            match std::env::var(var) {
                Ok(v) => v
                    .parse()
                    .unwrap_or_else(|_| panic!("{var} must be an unsigned integer, got {v:?}")),
                Err(_) => default,
            }
        };
        Config {
            cases: parse("SPATIAL_CHECK_CASES", u64::from(DEFAULT_CASES)) as u32,
            seed: parse("SPATIAL_CHECK_SEED", DEFAULT_SEED),
        }
    }

    /// The environment config with the case count scaled by `num / den` —
    /// for expensive properties that want fewer cases while still honouring
    /// the user's override proportionally.
    pub fn scaled(num: u32, den: u32) -> Self {
        let base = Config::from_env();
        Config { cases: (base.cases * num / den).max(1), seed: base.seed }
    }

    /// The seed for case `i`. Case 0 is the run seed itself so a reported
    /// seed replays directly with `SPATIAL_CHECK_CASES=1`.
    fn case_seed(&self, i: u32) -> u64 {
        if i == 0 {
            self.seed
        } else {
            // Avalanche the pair (seed, i) so neighbouring run seeds do not
            // share case streams.
            let mut sm = SplitMix64::new(self.seed ^ (u64::from(i)).rotate_left(32));
            sm.next_u64()
        }
    }
}

/// Per-case random input source handed to properties.
pub struct Gen {
    rng: Rng,
    case_seed: u64,
}

impl Gen {
    fn new(case_seed: u64) -> Self {
        Gen { rng: Rng::seed_from_u64(case_seed), case_seed }
    }

    /// The seed that reproduces this exact case.
    pub fn case_seed(&self) -> u64 {
        self.case_seed
    }

    /// Direct access to the underlying RNG.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// A uniform integer from a range (half-open or inclusive).
    pub fn int<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.rng.gen_range(range)
    }

    /// A uniform size — same as [`Gen::int`], named for readability at
    /// call-sites that pick lengths.
    pub fn size<R: SampleRange<usize>>(&mut self, range: R) -> usize {
        self.rng.gen_range(range)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        self.rng.gen_f64()
    }

    /// A Bernoulli draw.
    pub fn bool_p(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// A vector of `len` elements produced by `f`.
    pub fn vec<T>(&mut self, len: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        (0..len).map(|_| f(self)).collect()
    }

    /// A vector with a random length in `len` and uniform `i64` values in
    /// `vals` — the dominant input shape across this workspace's tests.
    pub fn vec_i64(
        &mut self,
        len: std::ops::Range<usize>,
        vals: std::ops::RangeInclusive<i64>,
    ) -> Vec<i64> {
        let n = self.size(len);
        self.vec(n, |g| g.int(vals.clone()))
    }

    /// A power-of-four length `4^k` with `k` uniform in `ks` — Z-order
    /// segments are padded to powers of four, so many properties sweep these.
    pub fn pow4_len(&mut self, ks: std::ops::RangeInclusive<u32>) -> usize {
        4usize.pow(self.int(ks))
    }
}

/// Runs `prop` on [`Config::from_env`] cases; panics with a reproducible
/// seed on the first failure.
///
/// `name` should match the enclosing `#[test]` function so the printed
/// reproduction command filters to it.
pub fn check<F>(name: &str, prop: F)
where
    F: Fn(&mut Gen) -> Result<(), String>,
{
    check_cfg(&Config::from_env(), name, prop)
}

/// [`check`] with an explicit configuration.
pub fn check_cfg<F>(cfg: &Config, name: &str, prop: F)
where
    F: Fn(&mut Gen) -> Result<(), String>,
{
    for i in 0..cfg.cases {
        let seed = cfg.case_seed(i);
        let mut g = Gen::new(seed);
        if let Err(msg) = prop(&mut g) {
            panic!("{}", failure_report(name, i, cfg.cases, seed, &msg, None));
        }
    }
}

/// Property checking with shrinking for `Vec` inputs.
///
/// `gen_input` draws a random vector, `prop` judges it. On failure the
/// harness greedily deletes chunks (halves, quarters, …, single elements)
/// while the property keeps failing, then reports the minimal vector found
/// together with the case seed.
pub fn check_vec<T, G, F>(name: &str, gen_input: G, prop: F)
where
    T: Clone + std::fmt::Debug,
    G: Fn(&mut Gen) -> Vec<T>,
    F: Fn(&[T]) -> Result<(), String>,
{
    let cfg = Config::from_env();
    for i in 0..cfg.cases {
        let seed = cfg.case_seed(i);
        let mut g = Gen::new(seed);
        let input = gen_input(&mut g);
        if let Err(msg) = prop(&input) {
            let (min_input, min_msg) = shrink_vec(input, msg, &prop);
            let shrunk = format!("shrunken input ({} elements): {:?}", min_input.len(), min_input);
            panic!("{}", failure_report(name, i, cfg.cases, seed, &min_msg, Some(&shrunk)));
        }
    }
}

/// Greedy deletion shrinking: repeatedly drop the largest chunk whose
/// removal keeps the property failing, down to single elements.
fn shrink_vec<T: Clone, F>(mut input: Vec<T>, mut msg: String, prop: &F) -> (Vec<T>, String)
where
    F: Fn(&[T]) -> Result<(), String>,
{
    let mut chunk = (input.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < input.len() {
            let end = (start + chunk).min(input.len());
            let mut candidate = Vec::with_capacity(input.len() - (end - start));
            candidate.extend_from_slice(&input[..start]);
            candidate.extend_from_slice(&input[end..]);
            if candidate.is_empty() {
                break; // deleting everything proves nothing; keep ≥ 1 element
            }
            match prop(&candidate) {
                Err(m) => {
                    input = candidate;
                    msg = m;
                    progressed = true;
                    // Retry the same offset: the next chunk slid into place.
                }
                Ok(()) => start = end,
            }
        }
        if chunk == 1 && !progressed {
            return (input, msg);
        }
        if !progressed {
            chunk = (chunk / 2).max(1);
        }
    }
}

fn failure_report(
    name: &str,
    case: u32,
    cases: u32,
    seed: u64,
    msg: &str,
    shrunk: Option<&str>,
) -> String {
    let mut out = format!(
        "property '{name}' failed on case {}/{cases} (case seed {seed}):\n  {msg}\n",
        case + 1
    );
    if let Some(s) = shrunk {
        out.push_str(&format!("  {s}\n"));
    }
    out.push_str(&format!(
        "  reproduce with: SPATIAL_CHECK_SEED={seed} SPATIAL_CHECK_CASES=1 cargo test {name}"
    ));
    out
}

/// Returns `Err` from a property when a condition fails (the harness's
/// analogue of `assert!`). Use inside closures passed to [`check`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!("{} ({}:{})", format!($($fmt)+), file!(), line!()));
        }
    };
}

/// Returns `Err` from a property when two values differ (the harness's
/// analogue of `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{} != {}\n  left:  {:?}\n  right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{}: {} != {}\n  left:  {:?}\n  right: {:?} ({}:{})",
                format!($($fmt)+),
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let cfg = Config { cases: 10, seed: 1 };
        let ran = std::cell::Cell::new(0u32);
        check_cfg(&cfg, "always_ok", |g| {
            let _ = g.int(0i64..100);
            ran.set(ran.get() + 1);
            Ok(())
        });
        assert_eq!(ran.get(), 10);
    }

    #[test]
    fn case_zero_uses_run_seed_directly() {
        let cfg = Config { cases: 1, seed: 777 };
        check_cfg(&cfg, "seed_passthrough", |g| {
            prop_assert_eq!(g.case_seed(), 777u64);
            Ok(())
        });
    }

    #[test]
    fn failure_reports_seed_and_repro_command() {
        let res = std::panic::catch_unwind(|| {
            check_cfg(&Config { cases: 5, seed: 42 }, "doomed", |_| Err("boom".into()))
        });
        let msg = *res.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("doomed"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
        assert!(msg.contains("SPATIAL_CHECK_SEED=42"), "{msg}");
        assert!(msg.contains("SPATIAL_CHECK_CASES=1"), "{msg}");
    }

    #[test]
    fn deterministic_across_runs() {
        let draw = |seed| {
            let mut g = Gen::new(seed);
            (g.int(0u64..1000), g.vec_i64(1..50, -9..=9))
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    fn shrinking_finds_a_minimal_counterexample() {
        // Property: "contains no element ≥ 50". Minimal failing input is a
        // single offending element.
        let fails = |v: &[i64]| -> Result<(), String> {
            if v.iter().any(|&x| x >= 50) {
                Err("found large element".into())
            } else {
                Ok(())
            }
        };
        let input: Vec<i64> = (0..100).collect();
        let (min, _) = shrink_vec(input, "seed msg".into(), &fails);
        assert_eq!(min.len(), 1, "shrinker should isolate one element, got {min:?}");
        assert!(min[0] >= 50);
    }

    #[test]
    fn shrinking_preserves_failure() {
        // Property failing only for vectors with ≥ 3 even elements: the
        // shrunken result must still have exactly 3.
        let fails = |v: &[i64]| -> Result<(), String> {
            if v.iter().filter(|&&x| x % 2 == 0).count() >= 3 {
                Err("three evens".into())
            } else {
                Ok(())
            }
        };
        let input: Vec<i64> = (0..40).collect();
        let (min, _) = shrink_vec(input, String::new(), &fails);
        assert_eq!(min.iter().filter(|&&x| x % 2 == 0).count(), 3);
        assert_eq!(min.len(), 3, "odd elements should all be deleted: {min:?}");
    }

    #[test]
    fn check_vec_panics_with_shrunken_input() {
        let res = std::panic::catch_unwind(|| {
            check_vec(
                "vec_doomed",
                |g| g.vec_i64(1..100, 0..=1000),
                |v| {
                    if v.iter().any(|&x| x > 2) {
                        Err("big".into())
                    } else {
                        Ok(())
                    }
                },
            )
        });
        let msg = *res.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("shrunken input (1 elements)"), "{msg}");
    }

    #[test]
    fn scaled_config_never_hits_zero_cases() {
        let cfg = Config::scaled(1, 1_000_000);
        assert!(cfg.cases >= 1);
    }
}
