//! # spatial-core — energy-optimal spatial dataflow primitives
//!
//! The umbrella crate for this reproduction of *Energy-Optimal and Low-Depth
//! Algorithmic Primitives for Spatial Dataflow Architectures* (Gianinazzi et
//! al., IPDPS 2025). It re-exports the full toolchain and adds the
//! paper-facing analysis utilities:
//!
//! * [`model`] — the Spatial Computer Model simulator (grid, Z-order curve,
//!   exact energy/depth/distance accounting);
//! * [`collectives`] — broadcast, reduce, all-reduce, energy-optimal scan,
//!   segmented scan (§IV);
//! * [`sortnet`] — bitonic networks and their grid execution (§V-B);
//! * [`sorting`] — all-pairs sort, two-array rank selection, 2D mergesort,
//!   permutation routing (§V);
//! * [`selection`] — randomized linear-energy rank selection (§VI);
//! * [`pram`] — EREW/CRCW PRAM simulation (§VII);
//! * [`spmv`] — sparse matrix–vector multiplication (§VIII);
//! * [`theory`] — closed-form predictors for every bound in Table I and the
//!   section lemmas;
//! * [`check`] — the in-tree property-testing harness (seeded cases,
//!   reproducible failures, `Vec` shrinking) every crate's tests run on;
//! * [`recovery`] — checksum-verified re-execution under injected hardware
//!   faults (see [`model::FaultPlan`] and [`model::ModelGuard`]);
//! * [`fit`] — log-log regression for empirical exponent estimation;
//! * [`report`] — the paper-vs-measured tables printed by the benchmark
//!   harness.
//!
//! ## Quickstart
//!
//! ```
//! use spatial_core::model::Machine;
//! use spatial_core::collectives::{place_z, read_values, scan};
//!
//! let mut machine = Machine::new();
//! let items = place_z(&mut machine, 0, (1..=16i64).collect());
//! let sums = scan(&mut machine, 0, items, &|a, b| a + b);
//! assert_eq!(read_values(sums).last(), Some(&136));
//! // Exact model costs of the scan:
//! let cost = machine.report();
//! assert!(cost.energy <= 12 * 16); // Θ(n) energy (Lemma IV.3)
//! ```

pub use collectives;
pub use pram;
pub use selection;
pub use sorting;
pub use sortnet;
pub use spatial_model as model;
pub use spmv;

pub mod check;
pub mod fit;
pub mod groupby;
pub mod recovery;
pub mod report;
pub mod theory;
pub mod topk;

pub use spatial_rng as rng;
