//! Paper-vs-measured reporting used by the benchmark harness.
//!
//! A [`Sweep`] collects `(n, Cost)` measurements for one algorithm; its
//! report fits each metric's scaling exponent ([`crate::fit`]) and prints a
//! row against the paper's claimed [`crate::theory::Shape`]s — the format
//! EXPERIMENTS.md records.

use spatial_model::Cost;

use crate::fit::{fit_power, polylog_ratios, PowerFit};
use crate::theory::{Metric, Shape};

/// One measured point of a parameter sweep.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// Input size.
    pub n: u64,
    /// Exact model cost at that size.
    pub cost: Cost,
}

/// A named series of measurements over growing `n`.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// Algorithm / experiment name.
    pub name: String,
    /// Measurements in increasing `n`.
    pub points: Vec<Point>,
}

impl Sweep {
    /// Creates an empty sweep.
    pub fn new(name: impl Into<String>) -> Self {
        Sweep { name: name.into(), points: Vec::new() }
    }

    /// Records one measurement.
    pub fn push(&mut self, n: u64, cost: Cost) {
        self.points.push(Point { n, cost });
    }

    fn series(&self, metric: Metric) -> (Vec<f64>, Vec<f64>) {
        let xs = self.points.iter().map(|p| p.n as f64).collect();
        let ys = self
            .points
            .iter()
            .map(|p| {
                (match metric {
                    Metric::Energy => p.cost.energy,
                    Metric::Depth => p.cost.depth,
                    Metric::Distance => p.cost.distance,
                }) as f64
            })
            .collect();
        (xs, ys)
    }

    /// Fits the scaling exponent of one metric over the sweep.
    pub fn fit(&self, metric: Metric) -> PowerFit {
        let (xs, ys) = self.series(metric);
        fit_power(&xs, &ys)
    }

    /// `metric / log^k(n)` ratios (for polylog claims).
    pub fn log_ratios(&self, metric: Metric, k: u32) -> Vec<f64> {
        let (xs, ys) = self.series(metric);
        polylog_ratios(&xs, &ys, k)
    }

    /// Fit over the larger-n half of the sweep (dodges small-n constants).
    pub fn tail_fit(&self, metric: Metric) -> PowerFit {
        let half = self.points.len() / 2;
        let tail = Sweep {
            name: self.name.clone(),
            points: self.points[half.saturating_sub(1)..].to_vec(),
        };
        tail.fit(metric)
    }

    /// Verdict against a claimed upper-bound shape.
    ///
    /// The paper's bounds are upper bounds (`Θ` rows additionally match a
    /// lower bound): measurements may undershoot but must not outgrow the
    /// claim. Polynomial claims compare the tail-fitted exponent; polylog
    /// claims require `metric / log^k n` to stay bounded.
    pub fn conforms(&self, metric: Metric, claim: Shape, tol: f64) -> bool {
        if claim.exponent > 0.0 {
            self.tail_fit(metric).exponent <= claim.exponent + tol + claim.log_power as f64 * 0.15
        } else {
            let ratios = self.log_ratios(metric, claim.log_power);
            crate::fit::ratios_bounded(&ratios[ratios.len() / 2..], 1.35)
        }
    }

    /// Whether the measurement also *matches* the claim (the `Θ`-tightness
    /// check): fitted exponent within `tol` of the claimed one.
    pub fn tight(&self, metric: Metric, claim: Shape, tol: f64) -> bool {
        claim.exponent > 0.0
            && (self.tail_fit(metric).exponent - claim.exponent).abs()
                <= tol + claim.log_power as f64 * 0.15
    }

    /// One formatted report line per metric, e.g. for table printing.
    pub fn report_lines(&self, claims: [(Metric, Shape); 3]) -> Vec<String> {
        claims
            .into_iter()
            .map(|(metric, claim)| {
                let verdict = if !self.conforms(metric, claim, 0.15) {
                    "EXCEEDS BOUND"
                } else if claim.exponent > 0.0 && self.tight(metric, claim, 0.15) {
                    "OK, TIGHT"
                } else if claim.exponent > 0.0 {
                    "OK (below bound at these n)"
                } else {
                    "OK"
                };
                if claim.exponent > 0.0 {
                    let fit = self.fit(metric);
                    let tail = self.tail_fit(metric);
                    format!(
                        "{:<24} {:<9} paper={:<12} fitted n^{:.2} (tail n^{:.2}, r²={:.3})  [{}]",
                        self.name,
                        metric_name(metric),
                        claim.label(),
                        fit.exponent,
                        tail.exponent,
                        fit.r2,
                        verdict
                    )
                } else {
                    let ratios = self.log_ratios(metric, claim.log_power);
                    format!(
                        "{:<24} {:<9} paper={:<12} ratio/log^{}: {:.2} -> {:.2}  [{}]",
                        self.name,
                        metric_name(metric),
                        claim.label(),
                        claim.log_power,
                        ratios.first().copied().unwrap_or(f64::NAN),
                        ratios.last().copied().unwrap_or(f64::NAN),
                        verdict
                    )
                }
            })
            .collect()
    }

    /// Raw measurement rows (`n energy depth distance messages`).
    pub fn raw_rows(&self) -> Vec<String> {
        self.points
            .iter()
            .map(|p| {
                format!(
                    "  n={:<9} energy={:<13} depth={:<6} distance={:<8} messages={}",
                    p.n, p.cost.energy, p.cost.depth, p.cost.distance, p.cost.messages
                )
            })
            .collect()
    }
}

fn metric_name(m: Metric) -> &'static str {
    match m {
        Metric::Energy => "energy",
        Metric::Depth => "depth",
        Metric::Distance => "distance",
    }
}

/// Prints a titled section to stdout (benchmark binaries' house style).
pub fn print_section(title: &str) {
    println!();
    println!("== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory::shape;

    fn synthetic_sweep(f: impl Fn(u64) -> u64) -> Sweep {
        let mut s = Sweep::new("synthetic");
        for k in 3..10 {
            let n = 1u64 << (2 * k);
            s.push(
                n,
                Cost {
                    energy: f(n),
                    depth: (n as f64).log2() as u64,
                    distance: (n as f64).sqrt() as u64,
                    messages: n,
                },
            );
        }
        s
    }

    #[test]
    fn linear_energy_conforms_to_linear_claim() {
        let s = synthetic_sweep(|n| 7 * n);
        assert!(s.conforms(Metric::Energy, shape(1.0, 0), 0.05));
        assert!(s.tight(Metric::Energy, shape(1.0, 0), 0.05));
        // A linear measurement sits *below* an n^1.5 upper bound: it
        // conforms but is not tight.
        assert!(s.conforms(Metric::Energy, shape(1.5, 0), 0.05));
        assert!(!s.tight(Metric::Energy, shape(1.5, 0), 0.05));
    }

    #[test]
    fn three_halves_energy_detected() {
        let s = synthetic_sweep(|n| ((n as f64).powf(1.5) * 2.0) as u64);
        assert!(s.conforms(Metric::Energy, shape(1.5, 0), 0.05));
        assert!(!s.conforms(Metric::Energy, shape(1.0, 0), 0.05));
    }

    #[test]
    fn log_depth_conforms_to_polylog_claim() {
        let s = synthetic_sweep(|n| n);
        assert!(s.conforms(Metric::Depth, shape(0.0, 1), 0.05));
    }

    #[test]
    fn report_lines_render() {
        let s = synthetic_sweep(|n| n);
        let lines = s.report_lines([
            (Metric::Energy, shape(1.0, 0)),
            (Metric::Depth, shape(0.0, 1)),
            (Metric::Distance, shape(0.5, 0)),
        ]);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("OK"), "{}", lines[0]);
        assert!(lines[1].contains("ratio"), "{}", lines[1]);
    }
}
