//! Top-k extraction: the sort-pooling primitive as a library operation.
//!
//! The paper's introduction motivates the primitives with GNN sort-pooling
//! layers \[16\]: keep the `k` largest-scoring elements, in sorted order.
//! Composing the paper's algorithms gives an `O(n + k^{3/2})`-energy,
//! poly-log-depth implementation — polynomially cheaper than the
//! `Θ(n^{3/2})` sort-everything approach whenever `k ≪ n`:
//!
//! 1. randomized rank selection (§VI) finds the k-th largest element —
//!    `O(n)` energy;
//! 2. a broadcast + exclusive scan compacts the `k` survivors onto a small
//!    segment — `O(n)` energy;
//! 3. a 2D mergesort over just those `k` orders them — `O(k^{3/2})` energy.

use spatial_model::{zorder, Machine, Tracked};

use collectives::scan::scan_exclusive;
use collectives::zseg::broadcast_z;
use selection::select_rank;
use sorting::allpairs::scratch_for;
use sorting::keyed::Keyed;
use sorting::mergesort::sort_z;

/// Returns the `k` largest elements of `items` (resident on the Z-segment
/// `[lo, lo+n)`, `lo` aligned to the padded length), sorted ascending and
/// placed on a compact aligned segment near the data.
///
/// Ties are broken by position (later elements win), so exactly `k`
/// elements are returned even with duplicate keys. `seed` drives the
/// randomized selection; the run is deterministic given the seed.
///
/// ```
/// use spatial_model::Machine;
/// use collectives::place_z;
/// use spatial_core::topk::top_k;
///
/// let mut m = Machine::new();
/// let items = place_z(&mut m, 0, (0i64..1000).collect());
/// let top: Vec<i64> = top_k(&mut m, 0, items, 3, 7).into_iter().map(|t| t.into_value()).collect();
/// assert_eq!(top, vec![997, 998, 999]);
/// ```
pub fn top_k<T: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<T>>,
    k: u64,
    seed: u64,
) -> Vec<Tracked<T>> {
    let n = items.len() as u64;
    assert!(k >= 1 && k <= n, "k = {k} out of range 1..={n}");
    let padded = zorder::next_power_of_four(n);
    assert_eq!(lo % padded, 0, "segment must be aligned to its padded length");

    // Work over (key, uid) so every element is distinct.
    let keyed: Vec<Tracked<Keyed<T>>> = items
        .into_iter()
        .enumerate()
        .map(|(i, t)| t.map(|key| Keyed::new(key, i as u64)))
        .collect();

    // 1) The k-th largest = rank n-k+1 smallest. Selection consumes copies.
    let dup: Vec<Tracked<Keyed<T>>> = keyed.iter().map(|t| t.duplicate()).collect();
    let (threshold, _stats) = select_rank(machine, lo, dup, n - k + 1, seed);

    // 2) Broadcast the threshold; mark survivors; compact with a scan.
    let thr_copies = broadcast_z(machine, threshold, lo, lo + padded);
    let mut survivor = vec![false; padded as usize];
    let mut indicator: Vec<Tracked<u64>> = Vec::with_capacity(padded as usize);
    for (i, c) in thr_copies.iter().enumerate() {
        let is_in = if i < n as usize {
            let f = keyed[i].zip_with(c, |e, t| e >= t);
            let b = *f.value();
            machine.discard(f);
            b
        } else {
            false
        };
        survivor[i] = is_in;
        indicator.push(c.with_value(u64::from(is_in)));
    }
    for c in thr_copies {
        machine.discard(c);
    }
    let idx = scan_exclusive(machine, lo, indicator, 0, &|a, b| a + b);

    // 3) Route survivors to a compact aligned segment and sort them.
    let out_lo = scratch_for(lo, zorder::next_power_of_four(k));
    let mut selected: Vec<Tracked<Keyed<T>>> = Vec::with_capacity(k as usize);
    for (i, (t, ix)) in keyed.into_iter().zip(idx).enumerate() {
        if survivor[i] {
            let slot = *ix.value();
            selected.push(machine.move_to(t, zorder::coord_of(out_lo + slot)));
        } else {
            machine.discard(t);
        }
        machine.discard(ix);
    }
    debug_assert_eq!(selected.len() as u64, k, "threshold must admit exactly k elements");
    let sorted = sort_z(machine, out_lo, selected);
    sorted.into_iter().map(|t| t.map(|kd| kd.key)).collect()
}

/// Returns the `k` smallest elements, sorted ascending (mirror of
/// [`top_k`] via reversed ordering).
pub fn bottom_k<T: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<T>>,
    k: u64,
    seed: u64,
) -> Vec<Tracked<T>> {
    // Wrap keys in a reversing adapter, take the top-k, then unwrap and
    // reverse the (ascending-in-reversed-order) output.
    #[derive(Clone, PartialEq, Eq)]
    struct Rev<T>(T);
    impl<T: Ord> Ord for Rev<T> {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            o.0.cmp(&self.0)
        }
    }
    impl<T: Ord> PartialOrd for Rev<T> {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    let wrapped: Vec<Tracked<Rev<T>>> = items.into_iter().map(|t| t.map(Rev)).collect();
    let mut out: Vec<Tracked<T>> =
        top_k(machine, lo, wrapped, k, seed).into_iter().map(|t| t.map(|r| r.0)).collect();
    out.reverse();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use collectives::zarray::place_z;

    fn pseudo(n: usize, seed: i64) -> Vec<i64> {
        (0..n).map(|i| ((i as i64 * 2654435761 + seed) % 10007) - 5000).collect()
    }

    fn run_top_k(vals: Vec<i64>, k: u64, seed: u64) -> (Machine, Vec<i64>) {
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vals);
        let out = top_k(&mut m, 0, items, k, seed);
        let got = out.into_iter().map(|t| t.into_value()).collect();
        (m, got)
    }

    #[test]
    fn returns_k_largest_sorted() {
        for &(n, k) in &[(64usize, 8u64), (100, 1), (256, 256), (1000, 37)] {
            let vals = pseudo(n, 3);
            let mut expect = vals.clone();
            expect.sort_unstable();
            let expect: Vec<i64> = expect[n - k as usize..].to_vec();
            let (_, got) = run_top_k(vals, k, 7);
            assert_eq!(got, expect, "n={n} k={k}");
        }
    }

    #[test]
    fn handles_duplicates_exactly_k() {
        let vals = vec![5i64; 100];
        let (_, got) = run_top_k(vals, 10, 1);
        assert_eq!(got, vec![5i64; 10]);
    }

    #[test]
    fn bottom_k_mirrors_top_k() {
        let vals = pseudo(200, 9);
        let mut expect = vals.clone();
        expect.sort_unstable();
        let expect: Vec<i64> = expect[..25].to_vec();
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vals);
        let out = bottom_k(&mut m, 0, items, 25, 3);
        let got: Vec<i64> = out.into_iter().map(|t| t.into_value()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn cheaper_than_sorting_for_small_k() {
        let n = 4096usize;
        let vals = pseudo(n, 5);
        let (m_topk, _) = run_top_k(vals.clone(), 32, 11);
        let mut m_sort = Machine::new();
        let items = place_z(&mut m_sort, 0, vals);
        let _ = sort_z(&mut m_sort, 0, items);
        assert!(
            m_topk.energy() * 5 < m_sort.energy(),
            "top-k {} vs sort {}",
            m_topk.energy(),
            m_sort.energy()
        );
    }

    #[test]
    fn output_lands_on_a_compact_segment() {
        let (_, _) = {
            let mut m = Machine::new();
            let items = place_z(&mut m, 0, pseudo(256, 2));
            let out = top_k(&mut m, 0, items, 16, 5);
            for (i, t) in out.iter().enumerate() {
                assert_eq!(t.loc(), zorder::coord_of(i as u64), "compact placement");
            }
            (m, out)
        };
    }
}
