//! Checksum-verified re-execution under hardware faults.
//!
//! [`run_with_recovery`] is the harness that makes the fault-injection layer
//! ([`spatial_model::FaultPlan`]) usable end to end: it executes an
//! algorithm on a fault-enabled [`Machine`], detects a failed or corrupted
//! run, and deterministically re-executes with a salted attempt seed up to a
//! retry cap — accumulating cost across attempts so fault tolerance is
//! *priced*, not assumed free.
//!
//! An attempt counts as failed when any of:
//!
//! * the run returned a typed [`SpatialError`] (e.g. a `try_` entry point
//!   hit a dead PE or tripped a guard);
//! * the machine latched a violation the infallible API absorbed;
//! * the machine recorded fault hits ([`Machine::fault_hits`]) — the
//!   simulator cannot flip bits inside arbitrary payloads, so a transient
//!   message corruption is surfaced as a hit and treated exactly like an
//!   end-to-end checksum mismatch on real hardware;
//! * the caller's `verify` closure (the end-to-end checksum) rejected the
//!   output.
//!
//! Retries run the *same* permanent defect pattern (re-executing does not
//! repair the wafer) with the transient-corruption stream re-salted by the
//! attempt index ([`FaultPlan::for_attempt`]), so the whole harness is a
//! pure function of `(plan seed, retry cap, input)` — bit-deterministic,
//! like everything else in the simulator.
//!
//! ## Cost accounting across attempts
//!
//! Energy and message counts add up over attempts (every re-execution sends
//! real traffic). Depth and distance also *add* rather than max: a retry
//! can only start after the previous attempt's checksum failed, so attempts
//! compose sequentially along the critical path.

use spatial_model::{Cost, FaultPlan, Machine, SpatialError};

/// A successful [`run_with_recovery`] outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Recovered<T> {
    /// The verified output of the final (successful) attempt.
    pub value: T,
    /// Number of attempts executed (1 = no retry was needed).
    pub attempts: u32,
    /// Total cost across all attempts (see the module docs for the
    /// accumulation rules).
    pub cost: Cost,
    /// Per-attempt cost snapshots, in execution order.
    pub attempt_costs: Vec<Cost>,
    /// Fault-tolerance energy overhead of the final attempt: extra distance
    /// charged for dead-row detours and degraded links.
    pub detour_energy: u64,
}

/// All attempts failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryExhausted {
    /// Number of attempts executed (retry cap + 1).
    pub attempts: u32,
    /// Total cost sunk across the failed attempts.
    pub cost: Cost,
    /// The typed error of the last attempt, if it failed with one (`None`
    /// when the last attempt merely failed its checksum).
    pub last_error: Option<SpatialError>,
}

impl std::fmt::Display for RecoveryExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "recovery exhausted after {} attempts", self.attempts)?;
        match &self.last_error {
            Some(e) => write!(f, " (last error: {e})"),
            None => write!(f, " (last attempt failed its end-to-end checksum)"),
        }
    }
}

impl std::error::Error for RecoveryExhausted {}

/// Process exit code for an exhausted recovery (the per-violation codes
/// 4–7 belong to [`SpatialError::exit_code`]).
pub const EXIT_RECOVERY_EXHAUSTED: i32 = 8;

/// Runs `run` on a fresh fault-enabled [`Machine`] until an attempt passes
/// the end-to-end `verify` checksum, retrying with salted attempt seeds up
/// to `retry_cap` extra times (so at most `retry_cap + 1` attempts).
///
/// `run` receives the machine (faults already enabled; enable a guard
/// inside if wanted) and the attempt index, which randomized algorithms
/// should fold into their seed so a retry explores a different execution.
///
/// ```
/// use spatial_core::model::{Coord, FaultPlan, Machine};
/// use spatial_core::recovery::run_with_recovery;
///
/// let plan = FaultPlan::builder(7).dead_row(1).flaky(0.2).build();
/// let out = run_with_recovery(&plan, 16, |m, _attempt| {
///     let a = m.try_place(Coord::new(0, 0), 21i64)?;
///     let b = m.try_send(&a, Coord::new(3, 0))?;
///     Ok(*b.value() * 2)
/// }, |v| *v == 42)
/// .expect("recoverable");
/// assert_eq!(out.value, 42);
/// assert!(out.attempts >= 1);
/// ```
pub fn run_with_recovery<T>(
    plan: &FaultPlan,
    retry_cap: u32,
    mut run: impl FnMut(&mut Machine, u32) -> Result<T, SpatialError>,
    mut verify: impl FnMut(&T) -> bool,
) -> Result<Recovered<T>, RecoveryExhausted> {
    let mut total = Cost::default();
    let mut attempt_costs = Vec::new();
    let mut last_error = None;
    for attempt in 0..=retry_cap {
        let mut machine = Machine::new();
        machine.enable_faults(plan.for_attempt(attempt));
        let result = run(&mut machine, attempt);
        let cost = machine.report();
        attempt_costs.push(cost);
        total = accumulate(total, cost);
        let clean = machine.fault_hits() == 0 && machine.violation().is_none();
        match result {
            Ok(value) if clean && verify(&value) => {
                return Ok(Recovered {
                    value,
                    attempts: attempt + 1,
                    cost: total,
                    attempt_costs,
                    detour_energy: machine.detour_energy(),
                });
            }
            Ok(_) => {
                last_error = machine.take_violation();
            }
            Err(e) => {
                last_error = Some(e);
            }
        }
    }
    Err(RecoveryExhausted { attempts: retry_cap + 1, cost: total, last_error })
}

/// Sequential composition of attempt costs (see the module docs).
fn accumulate(total: Cost, attempt: Cost) -> Cost {
    Cost {
        energy: total.energy.saturating_add(attempt.energy),
        depth: total.depth.saturating_add(attempt.depth),
        distance: total.distance.saturating_add(attempt.distance),
        messages: total.messages.saturating_add(attempt.messages),
    }
}

/// FNV-1a checksum of a `u64` stream — the reference end-to-end checksum
/// for recovery verification (cheap, deterministic, order-sensitive).
pub fn checksum(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// [`checksum`] over a slice of `i64` values (the common output shape).
pub fn checksum_i64(values: &[i64]) -> u64 {
    checksum(values.iter().map(|&v| v as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_model::{Coord, ModelGuard};

    fn ping_pong(m: &mut Machine, hops: i64) -> Result<i64, SpatialError> {
        let mut v = m.try_place(Coord::ORIGIN, 1i64)?;
        for i in 1..=hops {
            v = m.try_send_owned(v, Coord::new(i % 4, (i + 1) % 4))?;
        }
        Ok(*v.value())
    }

    #[test]
    fn clean_plan_succeeds_first_try() {
        let plan = FaultPlan::builder(1).build();
        let out = run_with_recovery(&plan, 3, |m, _| ping_pong(m, 10), |&v| v == 1).unwrap();
        assert_eq!(out.attempts, 1);
        assert_eq!(out.detour_energy, 0);
        assert_eq!(out.attempt_costs.len(), 1);
        assert_eq!(out.cost, out.attempt_costs[0]);
    }

    #[test]
    fn flaky_plan_retries_and_recovers_deterministically() {
        // 30% per-message corruption over 10 messages: a clean attempt has
        // probability ~0.03, so retries are essentially guaranteed.
        let plan = FaultPlan::builder(5).flaky(0.3).build();
        let go = || run_with_recovery(&plan, 200, |m, _| ping_pong(m, 10), |&v| v == 1);
        let a = go().expect("should recover within 200 retries");
        let b = go().expect("deterministic");
        assert!(a.attempts > 1, "expected at least one retry, got {}", a.attempts);
        assert_eq!(a, b, "recovery is bit-deterministic per seed");
        assert_eq!(a.attempt_costs.len() as u32, a.attempts);
        let energy_sum: u64 = a.attempt_costs.iter().map(|c| c.energy).sum();
        assert_eq!(a.cost.energy, energy_sum, "retry cost is accumulated, not hidden");
    }

    #[test]
    fn exhaustion_reports_sunk_cost() {
        let plan = FaultPlan::builder(2).flaky(1.0).build();
        let err = run_with_recovery(&plan, 4, |m, _| ping_pong(m, 3), |&v| v == 1).unwrap_err();
        assert_eq!(err.attempts, 5);
        assert!(err.cost.messages >= 5 * 3);
        assert!(err.last_error.is_none(), "checksum failure, not a typed error");
    }

    #[test]
    fn typed_errors_propagate_as_last_error() {
        let plan = FaultPlan::builder(3).dead_pe(Coord::new(1, 2)).build();
        let err = run_with_recovery(
            &plan,
            2,
            |m, _| {
                let v = m.try_place(Coord::ORIGIN, 1i64)?;
                m.try_send(&v, Coord::new(1, 2)).map(|t| *t.value())
            },
            |_| true,
        )
        .unwrap_err();
        assert!(matches!(err.last_error, Some(SpatialError::DeadPe { .. })));
    }

    #[test]
    fn guard_violations_inside_run_fail_the_attempt() {
        let plan = FaultPlan::builder(4).build();
        let err = run_with_recovery(
            &plan,
            1,
            |m, _| {
                m.enable_guard(ModelGuard::new().max_energy(2));
                ping_pong(m, 10)
            },
            |_| true,
        )
        .unwrap_err();
        assert!(matches!(err.last_error, Some(SpatialError::BudgetExceeded { .. })));
    }

    #[test]
    fn checksum_is_order_sensitive_and_stable() {
        assert_eq!(checksum_i64(&[1, 2, 3]), checksum_i64(&[1, 2, 3]));
        assert_ne!(checksum_i64(&[1, 2, 3]), checksum_i64(&[3, 2, 1]));
        assert_ne!(checksum_i64(&[]), checksum_i64(&[0]));
    }
}
