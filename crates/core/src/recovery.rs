//! Checksum-verified re-execution under hardware faults.
//!
//! [`run_with_recovery`] is the harness that makes the fault-injection layer
//! ([`spatial_model::FaultPlan`]) usable end to end: it executes an
//! algorithm on a fault-enabled [`Machine`], detects a failed or corrupted
//! run, and deterministically re-executes with a salted attempt seed up to a
//! retry cap — accumulating cost across attempts so fault tolerance is
//! *priced*, not assumed free.
//!
//! An attempt counts as failed when any of:
//!
//! * the run returned a typed [`SpatialError`] (e.g. a `try_` entry point
//!   hit a dead PE or tripped a guard);
//! * the machine latched a violation the infallible API absorbed;
//! * the machine recorded fault hits ([`Machine::fault_hits`]) — the
//!   simulator cannot flip bits inside arbitrary payloads, so a transient
//!   message corruption is surfaced as a hit and treated exactly like an
//!   end-to-end checksum mismatch on real hardware;
//! * the caller's `verify` closure (the end-to-end checksum) rejected the
//!   output.
//!
//! Retries run the *same* permanent defect pattern (re-executing does not
//! repair the wafer) with the transient-corruption stream re-salted by the
//! attempt index ([`FaultPlan::for_attempt`]), so the whole harness is a
//! pure function of `(plan seed, retry cap, input)` — bit-deterministic,
//! like everything else in the simulator.
//!
//! ## Cost accounting across attempts
//!
//! Energy and message counts add up over attempts (every re-execution sends
//! real traffic). Depth and distance also *add* rather than max: a retry
//! can only start after the previous attempt's checksum failed, so attempts
//! compose sequentially along the critical path.

use spatial_model::{Cost, FaultPlan, Machine, SpatialError};
use spatial_rng::Rng;

/// A successful [`run_with_recovery`] outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Recovered<T> {
    /// The verified output of the final (successful) attempt.
    pub value: T,
    /// Number of attempts executed (1 = no retry was needed).
    pub attempts: u32,
    /// Total cost across all attempts (see the module docs for the
    /// accumulation rules).
    pub cost: Cost,
    /// Per-attempt cost snapshots, in execution order.
    pub attempt_costs: Vec<Cost>,
    /// Fault-tolerance energy overhead of the final attempt: extra distance
    /// charged for dead-row detours and degraded links.
    pub detour_energy: u64,
    /// Total milliseconds of backoff delay scheduled between attempts
    /// (deterministically computed from the [`BackoffPolicy`]; 0 without
    /// one).
    pub backoff_ms: u64,
}

/// All attempts failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryExhausted {
    /// Number of attempts executed (retry cap + 1, or fewer when the run
    /// was cancelled — cancellation aborts the retry loop immediately).
    pub attempts: u32,
    /// Total cost sunk across the failed attempts.
    pub cost: Cost,
    /// The typed error of the last attempt, if it failed with one (`None`
    /// when the last attempt merely failed its checksum).
    pub last_error: Option<SpatialError>,
    /// Total milliseconds of backoff delay scheduled between attempts.
    pub backoff_ms: u64,
}

impl RecoveryExhausted {
    /// Whether the retry loop stopped because the run's cancel token was
    /// tripped (deadline exceeded) rather than because retries ran out.
    pub fn cancelled(&self) -> bool {
        matches!(self.last_error, Some(SpatialError::Cancelled))
    }
}

impl std::fmt::Display for RecoveryExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "recovery exhausted after {} attempts", self.attempts)?;
        match &self.last_error {
            Some(e) => write!(f, " (last error: {e})"),
            None => write!(f, " (last attempt failed its end-to-end checksum)"),
        }
    }
}

impl std::error::Error for RecoveryExhausted {}

/// Process exit code for an exhausted recovery (the per-violation codes
/// 4–7 and the cancellation code 9 belong to [`SpatialError::exit_code`];
/// 10 is the batch runner's load-shed code).
pub const EXIT_RECOVERY_EXHAUSTED: i32 = 8;

/// Exponential backoff with seeded jitter, applied between recovery
/// attempts.
///
/// The delay before retry `attempt` (1-based; attempt 0 is the initial
/// execution and never waits) is
/// `min(base_ms · factor^(attempt-1), max_ms)`, scaled by a jitter factor
/// drawn uniformly from `[1 - jitter, 1 + jitter]`. The jitter draw comes
/// from [`spatial_rng`] seeded by `(backoff seed, attempt)`, so the
/// *scheduled* delays — reported in [`Recovered::backoff_ms`] — are a pure
/// function of the seed and bit-reproducible, even though the wall-clock
/// sleep they drive is not. Jitter de-synchronizes retry storms when many
/// jobs hit the same transient fault burst at once.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in milliseconds (0 disables waiting).
    pub base_ms: u64,
    /// Multiplier applied per further retry.
    pub factor: u32,
    /// Upper bound on a single delay, in milliseconds.
    pub max_ms: u64,
    /// Jitter half-width as a fraction of the delay, in `[0, 1]`.
    pub jitter: f64,
}

impl BackoffPolicy {
    /// No waiting between attempts (the [`run_with_recovery`] behaviour).
    pub const NONE: BackoffPolicy = BackoffPolicy { base_ms: 0, factor: 2, max_ms: 0, jitter: 0.0 };

    /// A production-shaped default: 5 ms doubling to a 200 ms cap, ±50%
    /// jitter.
    pub const DEFAULT: BackoffPolicy =
        BackoffPolicy { base_ms: 5, factor: 2, max_ms: 200, jitter: 0.5 };

    /// The deterministic scheduled delay before `attempt` (1-based), in
    /// milliseconds.
    pub fn delay_ms(&self, seed: u64, attempt: u32) -> u64 {
        if self.base_ms == 0 || attempt == 0 {
            return 0;
        }
        let mut delay = self.base_ms;
        for _ in 1..attempt {
            delay = delay.saturating_mul(u64::from(self.factor.max(1)));
            if delay >= self.max_ms {
                break;
            }
        }
        delay = delay.min(self.max_ms.max(self.base_ms));
        if self.jitter > 0.0 {
            // One uniform draw per (seed, attempt): fixed-point arithmetic
            // on a plain product keeps this reproducible across platforms.
            let u = Rng::stream(seed ^ 0xBAC0_FF5E, u64::from(attempt)).gen_f64();
            let scale = 1.0 - self.jitter.clamp(0.0, 1.0) * (1.0 - 2.0 * u);
            delay = ((delay as f64) * scale).round() as u64;
        }
        delay
    }
}

/// Runs `run` on a fresh fault-enabled [`Machine`] until an attempt passes
/// the end-to-end `verify` checksum, retrying with salted attempt seeds up
/// to `retry_cap` extra times (so at most `retry_cap + 1` attempts).
///
/// `run` receives the machine (faults already enabled; enable a guard
/// inside if wanted) and the attempt index, which randomized algorithms
/// should fold into their seed so a retry explores a different execution.
///
/// ```
/// use spatial_core::model::{Coord, FaultPlan, Machine};
/// use spatial_core::recovery::run_with_recovery;
///
/// let plan = FaultPlan::builder(7).dead_row(1).flaky(0.2).build();
/// let out = run_with_recovery(&plan, 16, |m, _attempt| {
///     let a = m.try_place(Coord::new(0, 0), 21i64)?;
///     let b = m.try_send(&a, Coord::new(3, 0))?;
///     Ok(*b.value() * 2)
/// }, |v| *v == 42)
/// .expect("recoverable");
/// assert_eq!(out.value, 42);
/// assert!(out.attempts >= 1);
/// ```
pub fn run_with_recovery<T>(
    plan: &FaultPlan,
    retry_cap: u32,
    run: impl FnMut(&mut Machine, u32) -> Result<T, SpatialError>,
    verify: impl FnMut(&T) -> bool,
) -> Result<Recovered<T>, RecoveryExhausted> {
    run_with_recovery_policy(plan, retry_cap, &BackoffPolicy::NONE, 0, run, verify)
}

/// [`run_with_recovery`] with exponential backoff between attempts.
///
/// `backoff_seed` seeds the jitter draws (see [`BackoffPolicy`]); the total
/// *scheduled* delay is reported in `backoff_ms` of either result, so the
/// supervision layer can price waiting as well as re-execution. The thread
/// actually sleeps the scheduled delay before each retry.
///
/// One condition aborts the retry loop early rather than burning the
/// remaining budget: an attempt failing with [`SpatialError::Cancelled`].
/// The run's deadline is gone, so further attempts cannot help. Every other
/// failure is worth re-salting and retrying, because the
/// transient-corruption stream differs per attempt.
pub fn run_with_recovery_policy<T>(
    plan: &FaultPlan,
    retry_cap: u32,
    policy: &BackoffPolicy,
    backoff_seed: u64,
    mut run: impl FnMut(&mut Machine, u32) -> Result<T, SpatialError>,
    mut verify: impl FnMut(&T) -> bool,
) -> Result<Recovered<T>, RecoveryExhausted> {
    let mut total = Cost::default();
    let mut attempt_costs = Vec::new();
    let mut last_error = None;
    let mut backoff_ms = 0u64;
    for attempt in 0..=retry_cap {
        let delay = policy.delay_ms(backoff_seed, attempt);
        if delay > 0 {
            backoff_ms += delay;
            std::thread::sleep(std::time::Duration::from_millis(delay));
        }
        let mut machine = Machine::new();
        machine.enable_faults(plan.for_attempt(attempt));
        let result = run(&mut machine, attempt);
        let cost = machine.report();
        attempt_costs.push(cost);
        total = accumulate(total, cost);
        let clean = machine.fault_hits() == 0 && machine.violation().is_none();
        match result {
            Ok(value) if clean && verify(&value) => {
                return Ok(Recovered {
                    value,
                    attempts: attempt + 1,
                    cost: total,
                    attempt_costs,
                    detour_energy: machine.detour_energy(),
                    backoff_ms,
                });
            }
            Ok(_) => {
                last_error = machine.take_violation();
            }
            Err(e) => {
                last_error = Some(e);
            }
        }
        if matches!(last_error, Some(SpatialError::Cancelled)) {
            return Err(RecoveryExhausted {
                attempts: attempt + 1,
                cost: total,
                last_error,
                backoff_ms,
            });
        }
    }
    Err(RecoveryExhausted { attempts: retry_cap + 1, cost: total, last_error, backoff_ms })
}

/// Sequential composition of attempt costs (see the module docs).
fn accumulate(total: Cost, attempt: Cost) -> Cost {
    Cost {
        energy: total.energy.saturating_add(attempt.energy),
        depth: total.depth.saturating_add(attempt.depth),
        distance: total.distance.saturating_add(attempt.distance),
        messages: total.messages.saturating_add(attempt.messages),
    }
}

/// FNV-1a checksum of a `u64` stream — the reference end-to-end checksum
/// for recovery verification (cheap, deterministic, order-sensitive).
pub fn checksum(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// [`checksum`] over a slice of `i64` values (the common output shape).
pub fn checksum_i64(values: &[i64]) -> u64 {
    checksum(values.iter().map(|&v| v as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_model::{Coord, ModelGuard};

    fn ping_pong(m: &mut Machine, hops: i64) -> Result<i64, SpatialError> {
        let mut v = m.try_place(Coord::ORIGIN, 1i64)?;
        for i in 1..=hops {
            v = m.try_send_owned(v, Coord::new(i % 4, (i + 1) % 4))?;
        }
        Ok(*v.value())
    }

    #[test]
    fn clean_plan_succeeds_first_try() {
        let plan = FaultPlan::builder(1).build();
        let out = run_with_recovery(&plan, 3, |m, _| ping_pong(m, 10), |&v| v == 1).unwrap();
        assert_eq!(out.attempts, 1);
        assert_eq!(out.detour_energy, 0);
        assert_eq!(out.attempt_costs.len(), 1);
        assert_eq!(out.cost, out.attempt_costs[0]);
    }

    #[test]
    fn flaky_plan_retries_and_recovers_deterministically() {
        // 30% per-message corruption over 10 messages: a clean attempt has
        // probability ~0.03, so retries are essentially guaranteed.
        let plan = FaultPlan::builder(5).flaky(0.3).build();
        let go = || run_with_recovery(&plan, 200, |m, _| ping_pong(m, 10), |&v| v == 1);
        let a = go().expect("should recover within 200 retries");
        let b = go().expect("deterministic");
        assert!(a.attempts > 1, "expected at least one retry, got {}", a.attempts);
        assert_eq!(a, b, "recovery is bit-deterministic per seed");
        assert_eq!(a.attempt_costs.len() as u32, a.attempts);
        let energy_sum: u64 = a.attempt_costs.iter().map(|c| c.energy).sum();
        assert_eq!(a.cost.energy, energy_sum, "retry cost is accumulated, not hidden");
    }

    #[test]
    fn exhaustion_reports_sunk_cost() {
        let plan = FaultPlan::builder(2).flaky(1.0).build();
        let err = run_with_recovery(&plan, 4, |m, _| ping_pong(m, 3), |&v| v == 1).unwrap_err();
        assert_eq!(err.attempts, 5);
        assert!(err.cost.messages >= 5 * 3);
        assert!(err.last_error.is_none(), "checksum failure, not a typed error");
    }

    #[test]
    fn typed_errors_propagate_as_last_error() {
        let plan = FaultPlan::builder(3).dead_pe(Coord::new(1, 2)).build();
        let err = run_with_recovery(
            &plan,
            2,
            |m, _| {
                let v = m.try_place(Coord::ORIGIN, 1i64)?;
                m.try_send(&v, Coord::new(1, 2)).map(|t| *t.value())
            },
            |_| true,
        )
        .unwrap_err();
        assert!(matches!(err.last_error, Some(SpatialError::DeadPe { .. })));
    }

    #[test]
    fn guard_violations_inside_run_fail_the_attempt() {
        let plan = FaultPlan::builder(4).build();
        let err = run_with_recovery(
            &plan,
            1,
            |m, _| {
                m.enable_guard(ModelGuard::new().max_energy(2));
                ping_pong(m, 10)
            },
            |_| true,
        )
        .unwrap_err();
        assert!(matches!(err.last_error, Some(SpatialError::BudgetExceeded { .. })));
    }

    #[test]
    fn backoff_delays_are_deterministic_bounded_and_jittered() {
        let p = BackoffPolicy { base_ms: 10, factor: 2, max_ms: 100, jitter: 0.5 };
        assert_eq!(p.delay_ms(7, 0), 0, "the initial attempt never waits");
        for attempt in 1..12 {
            let d = p.delay_ms(7, attempt);
            assert_eq!(d, p.delay_ms(7, attempt), "delay must be a pure function of the seed");
            // Exponential core 10·2^(a-1) capped at 100, jitter within ±50%.
            let core = (10u64 << (attempt - 1).min(20)).min(100);
            assert!(d >= core / 2 && d <= core + core / 2, "attempt {attempt}: {d} vs {core}");
        }
        // Different seeds explore different jitter.
        let spread: std::collections::HashSet<u64> = (0..32).map(|s| p.delay_ms(s, 3)).collect();
        assert!(spread.len() > 8, "jitter should spread delays, got {spread:?}");
        assert_eq!(BackoffPolicy::NONE.delay_ms(1, 5), 0);
    }

    #[test]
    fn policy_recovery_reports_scheduled_backoff() {
        let plan = FaultPlan::builder(5).flaky(0.3).build();
        let policy = BackoffPolicy { base_ms: 1, factor: 2, max_ms: 4, jitter: 0.0 };
        let go = || {
            run_with_recovery_policy(&plan, 200, &policy, 77, |m, _| ping_pong(m, 10), |&v| v == 1)
        };
        let a = go().expect("recoverable");
        let b = go().expect("deterministic");
        assert_eq!(a, b, "backoff accounting must replay bit-for-bit");
        assert!(a.attempts > 1);
        let expect: u64 = (1..a.attempts).map(|i| policy.delay_ms(77, i)).sum();
        assert_eq!(a.backoff_ms, expect, "scheduled delay sums over retries");
    }

    #[test]
    fn cancellation_aborts_the_retry_loop() {
        use spatial_model::CancelToken;
        let plan = FaultPlan::builder(2).flaky(1.0).build();
        let token = CancelToken::new();
        token.cancel();
        let err = run_with_recovery(
            &plan,
            50,
            |m, _| {
                m.set_cancel_token(token.clone());
                ping_pong(m, 3)
            },
            |&v| v == 1,
        )
        .unwrap_err();
        assert_eq!(err.attempts, 1, "no point retrying past a dead deadline");
        assert!(err.cancelled());
    }

    #[test]
    fn checksum_is_order_sensitive_and_stable() {
        assert_eq!(checksum_i64(&[1, 2, 3]), checksum_i64(&[1, 2, 3]));
        assert_ne!(checksum_i64(&[1, 2, 3]), checksum_i64(&[3, 2, 1]));
        assert_ne!(checksum_i64(&[]), checksum_i64(&[0]));
    }
}
