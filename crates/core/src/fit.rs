//! Log-log regression: empirical exponent estimation.
//!
//! The experiment harness validates polynomial bounds (`Θ(n)`, `Θ(n^{3/2})`,
//! `Θ(√n)`) by fitting `log₂ y = e·log₂ n + c` over an `n`-sweep and
//! comparing the fitted exponent `e` with the paper's; polylogarithmic
//! bounds are validated by checking that `y / log^k n` stays bounded.

/// Result of a least-squares fit in log-log space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerFit {
    /// Fitted exponent (slope in log-log space).
    pub exponent: f64,
    /// Fitted constant factor (`2^intercept`).
    pub constant: f64,
    /// Coefficient of determination of the log-log fit.
    pub r2: f64,
}

/// Fits `y ≈ constant · x^exponent` by least squares on `(log₂ x, log₂ y)`.
///
/// # Panics
/// Panics with fewer than two points or non-positive coordinates.
pub fn fit_power(xs: &[f64], ys: &[f64]) -> PowerFit {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points to fit");
    let pts: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| {
            assert!(x > 0.0 && y > 0.0, "log-log fit needs positive data (x={x}, y={y})");
            (x.log2(), y.log2())
        })
        .collect();
    let n = pts.len() as f64;
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = pts.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    let sxy: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let syy: f64 = pts.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
    assert!(sxx > 0.0, "x values must not all coincide");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    PowerFit { exponent: slope, constant: intercept.exp2(), r2 }
}

/// The ratios `y / log₂(x)^k` — bounded iff `y ∈ O(log^k x)`.
pub fn polylog_ratios(xs: &[f64], ys: &[f64], k: u32) -> Vec<f64> {
    xs.iter().zip(ys).map(|(&x, &y)| y / x.log2().powi(k as i32)).collect()
}

/// Whether the tail of a ratio sequence is non-increasing up to `slack`
/// (e.g. `1.10` allows 10% wobble) — the boundedness check for polylog
/// claims.
pub fn ratios_bounded(ratios: &[f64], slack: f64) -> bool {
    ratios.windows(2).all(|w| w[1] <= w[0] * slack)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law_recovers_exponent() {
        let xs: Vec<f64> = (4..12).map(|k| (1u64 << k) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(1.5)).collect();
        let fit = fit_power(&xs, &ys);
        assert!((fit.exponent - 1.5).abs() < 1e-9, "{fit:?}");
        assert!((fit.constant - 3.0).abs() < 1e-6, "{fit:?}");
        assert!(fit.r2 > 0.999999);
    }

    #[test]
    fn noisy_power_law_is_close() {
        let xs: Vec<f64> = (4..14).map(|k| (1u64 << k) as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| x.powf(1.0) * if i % 2 == 0 { 1.1 } else { 0.9 })
            .collect();
        let fit = fit_power(&xs, &ys);
        assert!((fit.exponent - 1.0).abs() < 0.05, "{fit:?}");
    }

    #[test]
    fn polylog_ratio_of_log_squared_is_flat() {
        let xs: Vec<f64> = (4..14).map(|k| (1u64 << k) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 * x.log2() * x.log2()).collect();
        let r = polylog_ratios(&xs, &ys, 2);
        assert!(ratios_bounded(&r, 1.001), "{r:?}");
        // But claiming only log^1 must fail (ratios grow).
        let r1 = polylog_ratios(&xs, &ys, 1);
        assert!(!ratios_bounded(&r1, 1.05), "{r1:?}");
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn rejects_single_point() {
        let _ = fit_power(&[4.0], &[1.0]);
    }
}
