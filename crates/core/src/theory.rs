//! Closed-form predictors for the paper's bounds (Table I and the lemmas).
//!
//! Each predictor states the *shape* the paper proves; the experiment
//! harness fits measured data against these shapes. Polynomial exponents are
//! the theorems' exact values; constant factors are free (the model hides
//! them) and estimated by the fit.

/// The cost metric a bound speaks about.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Metric {
    /// Total message-distance (network load).
    Energy,
    /// Longest chain of dependent messages.
    Depth,
    /// Largest total distance along a chain.
    Distance,
}

/// An asymptotic shape `n^exponent · log₂(n)^log_power`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Shape {
    /// Polynomial exponent of `n`.
    pub exponent: f64,
    /// Power of `log₂ n`.
    pub log_power: u32,
}

impl Shape {
    /// Evaluates the shape (constant factor 1) at `n`.
    pub fn eval(&self, n: f64) -> f64 {
        n.powf(self.exponent) * n.log2().max(1.0).powi(self.log_power as i32)
    }

    /// Integer evaluation of the shape at `n` with constant factor 1,
    /// exact for the paper's half-integer exponents (0, ½, 1, 1½, 2, 2½)
    /// and bit-identical on every platform — no `powf`, no libm.
    ///
    /// This is the closed-form *floor* predictive admission uses: the Θ
    /// bounds of Table I with unit constants systematically under-estimate
    /// measured energy (the model's constants are ≥ 1), so a job refused
    /// because even this floor exceeds a budget could never have fit.
    /// Saturates instead of overflowing; non-half-integer exponents fall
    /// back to a floored float evaluation.
    pub fn eval_u64(&self, n: u64) -> u64 {
        let n = n.max(1);
        let half_steps = (self.exponent * 2.0).round();
        let poly = if (self.exponent * 2.0 - half_steps).abs() < 1e-9 && half_steps >= 0.0 {
            let half_steps = half_steps as u32;
            let mut v: u64 = 1;
            for _ in 0..half_steps / 2 {
                v = v.saturating_mul(n);
            }
            if half_steps % 2 == 1 {
                v = v.saturating_mul(isqrt(n));
            }
            v
        } else {
            let f = (n as f64).powf(self.exponent);
            if f >= u64::MAX as f64 {
                u64::MAX
            } else {
                f as u64
            }
        };
        let log = if n < 2 { 1 } else { u64::from(n.ilog2()) };
        let mut v = poly;
        for _ in 0..self.log_power {
            v = v.saturating_mul(log);
        }
        v
    }

    /// Human-readable form, e.g. `n^1.5·log³n`.
    #[allow(clippy::redundant_guards)] // float literal patterns are not allowed
    pub fn label(&self) -> String {
        let poly = match self.exponent {
            e if e == 0.0 => String::new(),
            e if e == 0.5 => "√n".to_string(),
            e if e == 1.0 => "n".to_string(),
            e if e == 1.5 => "n^1.5".to_string(),
            e => format!("n^{e}"),
        };
        let log = match self.log_power {
            0 => String::new(),
            1 => "log n".to_string(),
            k => format!("log^{k} n"),
        };
        match (poly.is_empty(), log.is_empty()) {
            (false, false) => format!("{poly}·{log}"),
            (false, true) => poly,
            (true, false) => log,
            (true, true) => "1".to_string(),
        }
    }
}

/// Shorthand constructor.
pub const fn shape(exponent: f64, log_power: u32) -> Shape {
    Shape { exponent, log_power }
}

/// Integer square root: the largest `r` with `r·r ≤ n`. Deterministic on
/// every platform (pure integer Newton iteration, no floating point).
pub fn isqrt(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    // Newton's method from an over-estimate; converges in ≤ 6 steps at u64.
    let mut x = 1u64 << (n.ilog2() / 2 + 1);
    loop {
        let y = (x + n / x) / 2;
        if y >= x {
            return x;
        }
        x = y;
    }
}

/// Table I, row *Parallel Scan*: `Θ(n)` energy, `O(log n)` depth, `Θ(√n)`
/// distance (Lemma IV.3).
pub fn scan_bound(metric: Metric) -> Shape {
    match metric {
        Metric::Energy => shape(1.0, 0),
        Metric::Depth => shape(0.0, 1),
        Metric::Distance => shape(0.5, 0),
    }
}

/// Table I, row *Sorting*: `Θ(n^{3/2})` energy, `O(log³ n)` depth, `Θ(√n)`
/// distance (Theorem V.8).
pub fn sorting_bound(metric: Metric) -> Shape {
    match metric {
        Metric::Energy => shape(1.5, 0),
        Metric::Depth => shape(0.0, 3),
        Metric::Distance => shape(0.5, 0),
    }
}

/// Table I, row *Rank Selection*: `Θ(n)` energy, `O(log² n)` depth, `Θ(√n)`
/// distance, w.h.p. (Theorem VI.3).
pub fn selection_bound(metric: Metric) -> Shape {
    match metric {
        Metric::Energy => shape(1.0, 0),
        Metric::Depth => shape(0.0, 2),
        Metric::Distance => shape(0.5, 0),
    }
}

/// Table I, row *SpMV*: `Θ(m^{3/2})` energy, `O(log³ n)` depth, `Θ(√m)`
/// distance (Theorem VIII.2).
pub fn spmv_bound(metric: Metric) -> Shape {
    match metric {
        Metric::Energy => shape(1.5, 0),
        Metric::Depth => shape(0.0, 3),
        Metric::Distance => shape(0.5, 0),
    }
}

/// Lemma V.4: Bitonic Sort on a square grid — `Θ(n^{3/2} log n)` energy,
/// `Θ(log² n)` depth, `Θ(√n log n)` distance.
pub fn bitonic_sort_bound(metric: Metric) -> Shape {
    match metric {
        Metric::Energy => shape(1.5, 1),
        Metric::Depth => shape(0.0, 2),
        Metric::Distance => shape(0.5, 1),
    }
}

/// Lemma V.5: All-Pairs Sort — `O(n^{5/2})` energy, `O(log n)` depth,
/// `O(n)` distance.
pub fn allpairs_bound(metric: Metric) -> Shape {
    match metric {
        Metric::Energy => shape(2.5, 0),
        Metric::Depth => shape(0.0, 1),
        Metric::Distance => shape(1.0, 0),
    }
}

/// Lemma V.6: rank selection in two sorted arrays — `O(n^{5/4})` energy.
pub fn rank2_bound(metric: Metric) -> Shape {
    match metric {
        Metric::Energy => shape(1.25, 0),
        Metric::Depth => shape(0.0, 1),
        Metric::Distance => shape(0.5, 0),
    }
}

/// Lemma V.7: 2D merge — `O(n^{3/2})` energy, `O(log² n)` depth.
pub fn merge_bound(metric: Metric) -> Shape {
    match metric {
        Metric::Energy => shape(1.5, 0),
        Metric::Depth => shape(0.0, 2),
        Metric::Distance => shape(0.5, 0),
    }
}

/// Lemma IV.1 / Corollary IV.2 on a square subgrid: `O(n)` energy,
/// `O(log n)` depth, `O(√n)` distance.
pub fn collective_bound(metric: Metric) -> Shape {
    scan_bound(metric)
}

/// The naive row-major binary-tree collectives: `Θ(n log n)` energy.
pub fn naive_collective_bound(metric: Metric) -> Shape {
    match metric {
        Metric::Energy => shape(1.0, 1),
        Metric::Depth => shape(0.0, 1),
        Metric::Distance => shape(0.5, 1),
    }
}

/// Lemma V.1 permutation lower bound on an `h × w` grid.
pub fn permutation_lower_bound(h: u64, w: u64) -> u64 {
    let (mx, mn) = (h.max(w), h.min(w));
    mx * mx * mn / 9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_render() {
        assert_eq!(sorting_bound(Metric::Energy).label(), "n^1.5");
        assert_eq!(sorting_bound(Metric::Depth).label(), "log^3 n");
        assert_eq!(scan_bound(Metric::Distance).label(), "√n");
        assert_eq!(bitonic_sort_bound(Metric::Energy).label(), "n^1.5·log n");
        assert_eq!(shape(0.0, 0).label(), "1");
    }

    #[test]
    fn eval_matches_formula() {
        let s = shape(1.5, 1);
        let n = 1024.0f64;
        assert!((s.eval(n) - n.powf(1.5) * 10.0).abs() < 1e-6);
    }

    #[test]
    fn sorting_beats_bitonic_asymptotically() {
        // The Θ(log n) separation the paper proves (§V discussion).
        let n = 1u64 << 20;
        let merge = sorting_bound(Metric::Energy).eval(n as f64);
        let bitonic = bitonic_sort_bound(Metric::Energy).eval(n as f64);
        assert!(bitonic / merge > 10.0);
    }

    #[test]
    fn selection_beats_sorting_polynomially() {
        let n = 1u64 << 20;
        let sel = selection_bound(Metric::Energy).eval(n as f64);
        let sort = sorting_bound(Metric::Energy).eval(n as f64);
        assert!(sort / sel > 500.0);
    }

    #[test]
    fn isqrt_is_exact_at_boundaries() {
        for n in [0u64, 1, 2, 3, 4, 8, 9, 15, 16, 17, 255, 256, 65535, 65536] {
            let r = isqrt(n);
            assert!(r * r <= n, "isqrt({n}) = {r} overshoots");
            assert!((r + 1) * (r + 1) > n, "isqrt({n}) = {r} undershoots");
        }
        assert_eq!(isqrt(u64::MAX), (1u64 << 32) - 1);
    }

    #[test]
    fn eval_u64_matches_the_float_shape_on_half_integers() {
        for n in [1u64, 4, 16, 64, 256, 4096, 65536] {
            assert_eq!(scan_bound(Metric::Energy).eval_u64(n), n, "scan is Θ(n)");
            assert_eq!(
                sorting_bound(Metric::Energy).eval_u64(n),
                n * isqrt(n),
                "sorting is Θ(n^1.5)"
            );
            let depth = sorting_bound(Metric::Depth).eval_u64(n);
            let log = if n < 2 { 1 } else { u64::from(n.ilog2()) };
            assert_eq!(depth, log * log * log, "depth is log³n");
        }
        // Saturates instead of overflowing.
        assert_eq!(allpairs_bound(Metric::Energy).eval_u64(u64::MAX), u64::MAX);
    }

    #[test]
    fn eval_u64_floors_the_float_eval() {
        // The integer form never exceeds the float shape it mirrors, so a
        // refusal justified by eval_u64 is justified by the Θ bound too.
        for n in [2u64, 3, 5, 100, 1000, 12345] {
            for b in [scan_bound, sorting_bound, selection_bound, spmv_bound] {
                let f = b(Metric::Energy).eval(n as f64);
                let i = b(Metric::Energy).eval_u64(n);
                assert!(i as f64 <= f + 1e-6, "n = {n}: {i} > {f}");
            }
        }
    }

    #[test]
    fn permutation_bound_is_square_symmetric() {
        assert_eq!(permutation_lower_bound(8, 4), permutation_lower_bound(4, 8));
        assert!(permutation_lower_bound(64, 64) > permutation_lower_bound(32, 32));
    }
}
