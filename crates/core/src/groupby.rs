//! Group-by aggregation: the sort + leader + segmented-scan idiom as a
//! reusable primitive.
//!
//! The low-depth SpMV (§VIII) is built from exactly this pattern (group the
//! COO triples by column, then by row); factoring it out gives a general
//! `Θ(n^{3/2})`-energy, polylog-depth group-by-and-aggregate for any keyed
//! data — the "irregular data structure" workloads (graphs, sparse tensors)
//! the paper's introduction targets.

use spatial_model::{zorder, Machine, Tracked};

use collectives::segmented::{segmented_scan, SegItem};
use sorting::keyed::Keyed;
use sorting::mergesort::sort_z;

/// One aggregated group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Group<K, A> {
    /// The group key.
    pub key: K,
    /// The aggregate of all values with this key.
    pub aggregate: A,
    /// Number of members.
    pub count: u64,
}

/// Groups `(key, value)` pairs by key and combines each group's values with
/// the associative operator `op`.
///
/// Input: pair `i` resident at Z-index `lo + i` (`lo` aligned to the padded
/// length). Pipeline: 2D-mergesort by key → neighbour-message leader
/// election → segmented scan (the §VIII steps 1–2 and 5–7 generalized).
/// Output groups are returned in ascending key order, each resident at its
/// group's last element's PE. Costs: `O(n^{3/2})` energy, `O(log³ n)` depth,
/// `O(√n)` distance — sort-dominated, like SpMV.
pub fn group_by<K, V, A>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<(K, V)>>,
    init: impl Fn(&V) -> A,
    op: impl Fn(&A, &A) -> A,
) -> Vec<Group<K, A>>
where
    K: Ord + Clone + Send + Sync,
    V: Clone + Send + Sync,
    A: Clone + Send + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let n_pad = zorder::next_power_of_four(n as u64);
    assert_eq!(lo % n_pad, 0, "segment must be aligned to its padded length");

    // Sort by (key, position): Keyed makes elements distinct. The value
    // rides along as payload.
    #[derive(Clone)]
    struct Pair<K, V> {
        key: Keyed<K>,
        value: V,
    }
    impl<K: Ord, V> PartialEq for Pair<K, V> {
        fn eq(&self, o: &Self) -> bool {
            self.key == o.key
        }
    }
    impl<K: Ord, V> Eq for Pair<K, V> {}
    impl<K: Ord, V> Ord for Pair<K, V> {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            self.key.cmp(&o.key)
        }
    }
    impl<K: Ord, V> PartialOrd for Pair<K, V> {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }

    let pairs: Vec<Tracked<Pair<K, V>>> = items
        .into_iter()
        .enumerate()
        .map(|(i, t)| t.map(|(k, v)| Pair { key: Keyed::new(k, i as u64), value: v }))
        .collect();
    let sorted = sort_z(machine, lo, pairs);

    // Leader election: first element of each equal-key run.
    let mut leaders = vec![false; n];
    for i in 0..n {
        if i == 0 {
            leaders[0] = true;
            continue;
        }
        let prev = machine.send(&sorted[i - 1], sorted[i].loc());
        let flag = sorted[i].zip_with(&prev, |a, b| a.key.key != b.key.key);
        leaders[i] = *flag.value();
        machine.discard(prev);
        machine.discard(flag);
    }

    // Segmented aggregate + count in one scan (padding cells are isolated
    // heads carrying `None`, so no identity element is needed).
    type AggItem<A> = SegItem<Option<(A, u64)>>;
    let mut seg: Vec<Tracked<AggItem<A>>> = sorted
        .iter()
        .enumerate()
        .map(|(i, t)| t.with_value(SegItem::new(leaders[i], Some((init(&t.value().value), 1u64)))))
        .collect();
    for i in n as u64..n_pad {
        seg.push(machine.place(zorder::coord_of(lo + i), SegItem::new(true, None)));
    }
    // Scan over Option<(A, u64)> so the padding has an identity-free slot.
    let scanned = segmented_scan(
        machine,
        lo,
        seg,
        &|x: &Option<(A, u64)>, y: &Option<(A, u64)>| match (x, y) {
            (Some((ax, cx)), Some((ay, cy))) => Some((op(ax, ay), cx + cy)),
            (Some(v), None) | (None, Some(v)) => Some(v.clone()),
            (None, None) => None,
        },
    );

    // The last element of each run holds the group result.
    let mut out = Vec::new();
    for i in 0..n {
        let is_last = i + 1 == n || leaders[i + 1];
        if is_last {
            let group = sorted[i].zip_with(&scanned[i], |p, agg| {
                let (aggregate, count) = agg.clone().expect("non-empty group");
                Group { key: p.key.key.clone(), aggregate, count }
            });
            out.push(group.into_value());
        }
    }
    for t in sorted {
        machine.discard(t);
    }
    for t in scanned {
        machine.discard(t);
    }
    out
}

/// Counts occurrences of each key (a group-by with a counting aggregate).
pub fn group_counts<K: Ord + Clone + Send + Sync>(
    machine: &mut Machine,
    lo: u64,
    items: Vec<Tracked<K>>,
) -> Vec<(K, u64)> {
    let pairs: Vec<Tracked<(K, ())>> = items.into_iter().map(|t| t.map(|k| (k, ()))).collect();
    group_by(machine, lo, pairs, |_| (), |_, _| ()).into_iter().map(|g| (g.key, g.count)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use collectives::zarray::place_z;

    #[test]
    fn groups_and_sums() {
        let mut m = Machine::new();
        let data: Vec<(u32, i64)> = vec![(2, 10), (1, 1), (2, 20), (3, 7), (1, 2), (2, 30)];
        let items = place_z(&mut m, 0, data);
        let groups = group_by(&mut m, 0, items, |v| *v, |a, b| a + b);
        let simple: Vec<(u32, i64, u64)> =
            groups.into_iter().map(|g| (g.key, g.aggregate, g.count)).collect();
        assert_eq!(simple, vec![(1, 3, 2), (2, 60, 3), (3, 7, 1)]);
    }

    #[test]
    fn group_counts_match_reference() {
        let mut m = Machine::new();
        let keys: Vec<u8> = (0..100).map(|i| (i * 7 % 5) as u8).collect();
        let mut expect = std::collections::BTreeMap::new();
        for &k in &keys {
            *expect.entry(k).or_insert(0u64) += 1;
        }
        let items = place_z(&mut m, 0, keys);
        let got = group_counts(&mut m, 0, items);
        assert_eq!(got, expect.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn single_group_and_singletons() {
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vec![(1u8, 1i64); 16]);
        let g = group_by(&mut m, 0, items, |v| *v, |a, b| a + b);
        assert_eq!(g.len(), 1);
        assert_eq!((g[0].aggregate, g[0].count), (16, 16));

        let mut m = Machine::new();
        let items = place_z(&mut m, 0, (0u8..16).map(|k| (k, 1i64)).collect());
        let g = group_by(&mut m, 0, items, |v| *v, |a, b| a + b);
        assert_eq!(g.len(), 16);
        assert!(g.iter().all(|g| g.count == 1));
    }

    #[test]
    fn max_aggregate() {
        let mut m = Machine::new();
        let data: Vec<(u8, i64)> = vec![(0, 3), (1, 9), (0, 7), (1, 2), (0, 5)];
        let items = place_z(&mut m, 0, data);
        let g = group_by(&mut m, 0, items, |v| *v, |a, b| *a.max(b));
        assert_eq!(g[0].aggregate, 7);
        assert_eq!(g[1].aggregate, 9);
    }
}
