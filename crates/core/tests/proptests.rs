//! Property-based tests for the composed primitives in `spatial-core`
//! (top-k, group-by), on the crate's own `check` harness.

use spatial_core::check::{check, Gen};
use spatial_core::groupby::{group_by, group_counts};
use spatial_core::topk::{bottom_k, top_k};
use spatial_core::{prop_assert, prop_assert_eq};

use collectives::zarray::place_z;
use spatial_model::Machine;

#[test]
fn top_k_equals_sorted_tail() {
    check("top_k_equals_sorted_tail", |g: &mut Gen| {
        let vals = g.vec_i64(1..150, -500..=500);
        let n = vals.len() as u64;
        let k = g.int(1u64..=n);
        let seed = g.int(0u64..100);
        let mut expect = vals.clone();
        expect.sort_unstable();
        let expect: Vec<i64> = expect.split_off((n - k) as usize);
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vals);
        let got: Vec<i64> =
            top_k(&mut m, 0, items, k, seed).into_iter().map(|t| t.into_value()).collect();
        prop_assert_eq!(got, expect);
        Ok(())
    });
}

#[test]
fn bottom_k_equals_sorted_head() {
    check("bottom_k_equals_sorted_head", |g: &mut Gen| {
        let vals = g.vec_i64(1..150, -500..=500);
        let n = vals.len() as u64;
        let k = g.int(1u64..=n);
        let seed = g.int(0u64..100);
        let mut expect = vals.clone();
        expect.sort_unstable();
        expect.truncate(k as usize);
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, vals);
        let got: Vec<i64> =
            bottom_k(&mut m, 0, items, k, seed).into_iter().map(|t| t.into_value()).collect();
        prop_assert_eq!(got, expect);
        Ok(())
    });
}

#[test]
fn group_by_matches_host_grouping() {
    check("group_by_matches_host_grouping", |g: &mut Gen| {
        let n = g.size(1..100);
        let pairs: Vec<(u32, i64)> = g.vec(n, |g| (g.int(0u32..8), g.int(-100i64..=100)));
        let mut expect: std::collections::BTreeMap<u32, (i64, u64)> = Default::default();
        for &(k, v) in &pairs {
            let e = expect.entry(k).or_insert((0, 0));
            e.0 += v;
            e.1 += 1;
        }
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, pairs);
        let groups = group_by(&mut m, 0, items, |v| *v, |a, b| a + b);
        let got: Vec<(u32, (i64, u64))> =
            groups.into_iter().map(|gr| (gr.key, (gr.aggregate, gr.count))).collect();
        prop_assert_eq!(got, expect.into_iter().collect::<Vec<_>>());
        Ok(())
    });
}

#[test]
fn group_counts_sum_to_n() {
    check("group_counts_sum_to_n", |g: &mut Gen| {
        let keys = g.vec_i64(1..120, 0..=5);
        let n = keys.len() as u64;
        let mut m = Machine::new();
        let items = place_z(&mut m, 0, keys);
        let counts = group_counts(&mut m, 0, items);
        prop_assert_eq!(counts.iter().map(|&(_, c)| c).sum::<u64>(), n);
        prop_assert!(counts.windows(2).all(|w| w[0].0 < w[1].0), "keys ascend");
        Ok(())
    });
}
