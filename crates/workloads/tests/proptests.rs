//! Property-based tests for the workload generators, on the in-tree
//! harness (`spatial_core::check`). The generators feed every benchmark and
//! differential test, so their invariants (permutation validity, stochastic
//! columns, banded structure, seed determinism) are load-bearing.

use spatial_core::check::{check, Gen};
use spatial_core::{prop_assert, prop_assert_eq};

use workloads::{arrays, graphs, matrices};

#[test]
fn random_permutation_is_a_permutation() {
    check("random_permutation_is_a_permutation", |g: &mut Gen| {
        let n = g.size(1..500);
        let seed = g.case_seed();
        let perm = arrays::random_permutation(n, seed);
        let mut seen = vec![false; n];
        for &p in &perm {
            prop_assert!((p as usize) < n && !seen[p as usize], "duplicate or range {p}");
            seen[p as usize] = true;
        }
        prop_assert_eq!(perm.len(), n);
        Ok(())
    });
}

#[test]
fn array_generators_are_seed_deterministic() {
    check("array_generators_are_seed_deterministic", |g: &mut Gen| {
        let n = g.size(1..200);
        let seed = g.case_seed();
        prop_assert_eq!(arrays::uniform(n, seed), arrays::uniform(n, seed));
        prop_assert_eq!(arrays::duplicate_heavy(n, seed), arrays::duplicate_heavy(n, seed));
        prop_assert_eq!(arrays::random_permutation(n, seed), arrays::random_permutation(n, seed));
        // And a different seed actually changes the stream (n big enough
        // that a collision over the value range is vanishingly unlikely).
        if n >= 32 {
            prop_assert!(arrays::uniform(n, seed) != arrays::uniform(n, seed ^ 1));
        }
        Ok(())
    });
}

#[test]
fn duplicate_heavy_draws_from_small_alphabet() {
    check("duplicate_heavy_draws_from_small_alphabet", |g: &mut Gen| {
        let vals = arrays::duplicate_heavy(g.size(1..300), g.case_seed());
        prop_assert!(vals.iter().all(|&v| (0..4).contains(&v)));
        Ok(())
    });
}

#[test]
fn powerlaw_transition_is_column_stochastic() {
    check("powerlaw_transition_is_column_stochastic", |g: &mut Gen| {
        let n = g.size(2..80);
        let e = g.size(1..6);
        let t = graphs::powerlaw_graph(n, e, g.case_seed());
        prop_assert_eq!((t.n_rows, t.n_cols), (n, n));
        let mut col_sums = vec![0.0f64; n];
        for &(r, c, v) in &t.entries {
            prop_assert!((r as usize) < n && (c as usize) < n && v > 0.0);
            col_sums[c as usize] += v;
        }
        for (c, s) in col_sums.iter().enumerate() {
            prop_assert!((s - 1.0).abs() < 1e-9, "column {c} sums to {s}");
        }
        Ok(())
    });
}

#[test]
fn banded_matrix_stays_in_band() {
    check("banded_matrix_stays_in_band", |g: &mut Gen| {
        let n = g.size(1..80);
        let hb = g.size(0..8);
        let a = matrices::banded(n, hb, g.case_seed());
        for &(r, c, _) in &a.entries {
            let (r, c) = (r as i64, c as i64);
            prop_assert!((r - c).unsigned_abs() as usize <= hb, "({r},{c}) outside band {hb}");
        }
        // Every in-band position present exactly once.
        let expect: usize = (0..n).map(|r| (r + hb).min(n - 1) - r.saturating_sub(hb) + 1).sum();
        prop_assert_eq!(a.nnz(), expect);
        Ok(())
    });
}

#[test]
fn permutation_matrix_times_x_permutes_x() {
    check("permutation_matrix_times_x_permutes_x", |g: &mut Gen| {
        let n = g.size(1..100);
        let seed = g.case_seed();
        let a = matrices::permutation_matrix(n, seed);
        prop_assert_eq!(a.nnz(), n);
        let x: Vec<i64> = (0..n as i64).map(|i| 1000 + i).collect();
        let y = a.multiply_dense(&x);
        let mut sorted = y.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, x, "output must be a permutation of x");
        Ok(())
    });
}

#[test]
fn rmat_respects_scale_and_edge_budget() {
    check("rmat_respects_scale_and_edge_budget", |g: &mut Gen| {
        let scale = g.int(2u32..6);
        let n = 1usize << scale;
        let edges = g.size(1..n * n / 2);
        let a = graphs::rmat(scale, edges, g.case_seed());
        prop_assert_eq!((a.n_rows, a.n_cols), (n, n));
        prop_assert!(a.nnz() <= edges, "{} > {edges}", a.nnz());
        // Deduplicated: entries are a set.
        let mut coords: Vec<(u32, u32)> = a.entries.iter().map(|&(r, c, _)| (r, c)).collect();
        coords.sort_unstable();
        coords.dedup();
        prop_assert_eq!(coords.len(), a.nnz());
        Ok(())
    });
}
