//! Sparse-matrix workloads for the SpMV experiments.

use spatial_rng::Rng;

use spmv::{Coo, Scalar};

/// The 5-point Laplacian stencil on a `side × side` grid — the canonical
//  scientific-computing SpMV (Poisson problems, Jacobi/CG solvers).
pub fn poisson_2d(side: usize) -> Coo<f64> {
    let n = side * side;
    let idx = |r: usize, c: usize| (r * side + c) as u32;
    let mut entries = Vec::with_capacity(5 * n);
    for r in 0..side {
        for c in 0..side {
            entries.push((idx(r, c), idx(r, c), 4.0));
            if r > 0 {
                entries.push((idx(r, c), idx(r - 1, c), -1.0));
            }
            if r + 1 < side {
                entries.push((idx(r, c), idx(r + 1, c), -1.0));
            }
            if c > 0 {
                entries.push((idx(r, c), idx(r, c - 1), -1.0));
            }
            if c + 1 < side {
                entries.push((idx(r, c), idx(r, c + 1), -1.0));
            }
        }
    }
    Coo::new(n, n, entries)
}

/// A banded matrix with the given half-bandwidth (tridiagonal = 1).
pub fn banded(n: usize, half_bandwidth: usize, seed: u64) -> Coo<i64> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut entries = Vec::new();
    for r in 0..n {
        let lo = r.saturating_sub(half_bandwidth);
        let hi = (r + half_bandwidth).min(n - 1);
        for c in lo..=hi {
            entries.push((r as u32, c as u32, rng.gen_range(-5i64..=5)));
        }
    }
    Coo::new(n, n, entries)
}

/// Uniformly random sparsity: `nnz_per_row` entries per row at uniform
/// column positions.
pub fn random_uniform(n: usize, nnz_per_row: usize, seed: u64) -> Coo<i64> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut entries = Vec::with_capacity(n * nnz_per_row);
    for r in 0..n {
        for _ in 0..nnz_per_row {
            entries.push((r as u32, rng.gen_range(0usize..n) as u32, rng.gen_range(-9i64..=9)));
        }
    }
    Coo::new(n, n, entries)
}

/// Power-law (Zipf-ish) row lengths: a few hub rows with many entries, a
/// long tail of short rows — the irregular access pattern of graph /
/// GNN adjacency matrices the paper's introduction motivates.
pub fn zipf_rows(n: usize, avg_nnz_per_row: usize, seed: u64) -> Coo<i64> {
    let mut rng = Rng::seed_from_u64(seed);
    let total = n * avg_nnz_per_row;
    // Row r gets weight ∝ 1/(r+1); normalize to `total` entries.
    let harmonic: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
    let mut entries = Vec::with_capacity(total + n);
    for r in 0..n {
        let want = ((total as f64) / ((r + 1) as f64 * harmonic)).round().max(1.0) as usize;
        let want = want.min(n);
        for _ in 0..want {
            entries.push((r as u32, rng.gen_range(0usize..n) as u32, rng.gen_range(1i64..=9)));
        }
    }
    Coo::new(n, n, entries)
}

/// The identity matrix.
pub fn identity<V: Scalar + From<i8>>(n: usize) -> Coo<V> {
    Coo::new(n, n, (0..n).map(|i| (i as u32, i as u32, V::from(1))).collect())
}

/// A random permutation matrix — the Lemma VIII.1 lower-bound workload.
pub fn permutation_matrix(n: usize, seed: u64) -> Coo<i64> {
    let perm = crate::arrays::random_permutation(n, seed);
    Coo::permutation(&perm.iter().map(|&p| p as usize).collect::<Vec<_>>())
}

/// The reversal permutation matrix (the paper's explicit hard instance).
pub fn reversal_matrix(n: usize) -> Coo<i64> {
    Coo::permutation(&(0..n).rev().collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_has_five_point_structure() {
        let a = poisson_2d(4);
        assert_eq!(a.n_rows, 16);
        // Interior point: 5 entries; corner: 3.
        let row5: Vec<_> = a.entries.iter().filter(|e| e.0 == 5).collect();
        assert_eq!(row5.len(), 5);
        let row0: Vec<_> = a.entries.iter().filter(|e| e.0 == 0).collect();
        assert_eq!(row0.len(), 3);
        // Row sums of the interior are 0 (Laplacian).
        let sum5: f64 = row5.iter().map(|e| e.2).sum();
        assert_eq!(sum5, 0.0);
    }

    #[test]
    fn banded_is_banded() {
        let a = banded(10, 2, 1);
        for &(r, c, _) in &a.entries {
            assert!((r as i64 - c as i64).abs() <= 2);
        }
    }

    #[test]
    fn zipf_rows_are_skewed() {
        let a = zipf_rows(64, 8, 3);
        let count = |r: u32| a.entries.iter().filter(|e| e.0 == r).count();
        assert!(
            count(0) > 4 * count(63).max(1),
            "hub row should dominate: {} vs {}",
            count(0),
            count(63)
        );
    }

    #[test]
    fn identity_preserves_x() {
        let a: Coo<i64> = identity(8);
        let x: Vec<i64> = (0..8).collect();
        assert_eq!(a.multiply_dense(&x), x);
    }

    #[test]
    fn permutation_matrix_has_one_entry_per_row_and_col() {
        let a = permutation_matrix(32, 7);
        assert_eq!(a.nnz(), 32);
        let mut rows = [0; 32];
        let mut cols = [0; 32];
        for &(r, c, v) in &a.entries {
            rows[r as usize] += 1;
            cols[c as usize] += 1;
            assert_eq!(v, 1);
        }
        assert!(rows.iter().all(|&x| x == 1) && cols.iter().all(|&x| x == 1));
    }

    #[test]
    fn reversal_matrix_reverses() {
        let a = reversal_matrix(4);
        assert_eq!(a.multiply_dense(&[1, 2, 3, 4]), vec![4, 3, 2, 1]);
    }
}
