//! Array workloads for the scan / sort / selection experiments.

use spatial_rng::Rng;

/// The array families used across the benchmarks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArrayKind {
    /// Independent uniform values.
    Uniform,
    /// Already sorted ascending.
    Sorted,
    /// Sorted descending (the reversal permutation's best friend).
    Reversed,
    /// Very few distinct values (stresses tie handling).
    DuplicateHeavy,
    /// Alternating high/low (stresses merges).
    Zigzag,
}

impl ArrayKind {
    /// Every kind, for sweeps.
    pub const ALL: [ArrayKind; 5] = [
        ArrayKind::Uniform,
        ArrayKind::Sorted,
        ArrayKind::Reversed,
        ArrayKind::DuplicateHeavy,
        ArrayKind::Zigzag,
    ];

    /// Generates `n` values of this kind.
    pub fn generate(self, n: usize, seed: u64) -> Vec<i64> {
        match self {
            ArrayKind::Uniform => uniform(n, seed),
            ArrayKind::Sorted => sorted(n),
            ArrayKind::Reversed => reversed(n),
            ArrayKind::DuplicateHeavy => duplicate_heavy(n, seed),
            ArrayKind::Zigzag => zigzag(n),
        }
    }

    /// A short label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            ArrayKind::Uniform => "uniform",
            ArrayKind::Sorted => "sorted",
            ArrayKind::Reversed => "reversed",
            ArrayKind::DuplicateHeavy => "dup-heavy",
            ArrayKind::Zigzag => "zigzag",
        }
    }
}

/// `n` independent uniform values in `[-10⁹, 10⁹]`.
pub fn uniform(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1_000_000_000i64..=1_000_000_000)).collect()
}

/// `0, 1, …, n-1`.
pub fn sorted(n: usize) -> Vec<i64> {
    (0..n as i64).collect()
}

/// `n-1, …, 1, 0`.
pub fn reversed(n: usize) -> Vec<i64> {
    (0..n as i64).rev().collect()
}

/// Uniform over just 4 distinct values.
pub fn duplicate_heavy(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0i64..4)).collect()
}

/// `0, n-1, 1, n-2, …` — adjacent extremes.
pub fn zigzag(n: usize) -> Vec<i64> {
    (0..n as i64).map(|i| if i % 2 == 0 { i / 2 } else { n as i64 - 1 - i / 2 }).collect()
}

/// A uniformly random permutation of `0..n`.
pub fn random_permutation(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut perm: Vec<u64> = (0..n as u64).collect();
    rng.shuffle(&mut perm);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_requested_length() {
        for kind in ArrayKind::ALL {
            assert_eq!(kind.generate(100, 1).len(), 100, "{kind:?}");
        }
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        assert_eq!(uniform(50, 7), uniform(50, 7));
        assert_ne!(uniform(50, 7), uniform(50, 8));
    }

    #[test]
    fn duplicate_heavy_has_few_distinct() {
        let v = duplicate_heavy(1000, 3);
        let distinct: std::collections::HashSet<_> = v.iter().collect();
        assert!(distinct.len() <= 4);
    }

    #[test]
    fn zigzag_alternates_extremes() {
        assert_eq!(zigzag(6), vec![0, 5, 1, 4, 2, 3]);
    }

    #[test]
    fn random_permutation_is_a_permutation() {
        let p = random_permutation(200, 5);
        let mut q = p.clone();
        q.sort_unstable();
        assert_eq!(q, (0..200).collect::<Vec<u64>>());
    }
}
