//! # Workload generators
//!
//! Seeded, reproducible inputs for every experiment in EXPERIMENTS.md:
//! arrays with controlled order statistics, adversarial permutations, and
//! sparse matrices spanning the application domains the paper motivates
//! (scientific stencils, banded systems, power-law graphs for GNN-style
//! workloads, permutation matrices for the lower-bound experiments).

pub mod arrays;
pub mod graphs;
pub mod matrices;

/// The in-tree deterministic PRNG every generator draws from
/// (SplitMix64-seeded xoshiro256++; re-exported so downstream code has a
/// single import point for seeded randomness).
pub use spatial_rng as rng;
pub use spatial_rng::Rng;

pub use arrays::{duplicate_heavy, reversed, sorted, uniform, zigzag, ArrayKind};
pub use graphs::{pagerank_reference, powerlaw_graph, rmat};
pub use matrices::{banded, identity, permutation_matrix, poisson_2d, random_uniform, zipf_rows};
