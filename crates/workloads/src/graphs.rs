//! Graph workloads: power-law graphs and a PageRank reference.
//!
//! The paper motivates the primitives with graph algorithms and GNNs; these
//! generators provide the adjacency structures the `pagerank` example and
//! the SpMV benchmarks run on.

use spatial_rng::Rng;

use spmv::Coo;

/// A directed power-law graph as a column-stochastic transition matrix
/// (entry `(dst, src, 1/outdeg(src))`), built with a preferential-attachment
/// style process: node `v` links to `edges_per_node` earlier nodes, biased
/// towards low ids (hubs).
pub fn powerlaw_graph(n: usize, edges_per_node: usize, seed: u64) -> Coo<f64> {
    assert!(n >= 2);
    let mut rng = Rng::seed_from_u64(seed);
    let mut adj: Vec<(u32, u32)> = Vec::new(); // (src, dst)
    for v in 1..n {
        let mut chosen = std::collections::BTreeSet::new();
        for _ in 0..edges_per_node.min(v) {
            // Quadratic bias towards small ids approximates a power law.
            let r: f64 = rng.gen_f64();
            let target = ((r * r) * v as f64) as usize;
            chosen.insert(target.min(v - 1) as u32);
        }
        for t in chosen {
            adj.push((v as u32, t));
        }
    }
    // Dangling nodes (no out-edges) link to node 0 so columns stay stochastic.
    let mut outdeg = vec![0u32; n];
    for &(s, _) in &adj {
        outdeg[s as usize] += 1;
    }
    #[allow(clippy::needless_range_loop)]
    for v in 0..n {
        if outdeg[v] == 0 {
            adj.push((v as u32, 0));
            outdeg[v] = 1;
        }
    }
    let entries = adj.into_iter().map(|(s, d)| (d, s, 1.0 / outdeg[s as usize] as f64)).collect();
    Coo::new(n, n, entries)
}

/// An R-MAT graph (Chakrabarti et al.) as an adjacency matrix with unit
/// weights: each edge recursively descends into one of the four adjacency
/// quadrants with probabilities `(a, b, c, d)`. The classic skewed setting
/// `(0.57, 0.19, 0.19, 0.05)` produces the power-law degree distributions
/// of web/social graphs — the "irregular access patterns" the paper's GNN
/// motivation highlights.
pub fn rmat(scale: u32, edges: usize, seed: u64) -> Coo<i64> {
    let n = 1usize << scale;
    let (a, b, c) = (0.57, 0.19, 0.19);
    let mut rng = Rng::seed_from_u64(seed);
    let mut set = std::collections::BTreeSet::new();
    let mut attempts = 0;
    while set.len() < edges && attempts < edges * 20 {
        attempts += 1;
        let (mut r, mut cc) = (0usize, 0usize);
        for level in (0..scale).rev() {
            let x: f64 = rng.gen_f64();
            let (dr, dc) = if x < a {
                (0, 0)
            } else if x < a + b {
                (0, 1)
            } else if x < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            r |= dr << level;
            cc |= dc << level;
        }
        set.insert((r as u32, cc as u32));
    }
    Coo::new(n, n, set.into_iter().map(|(r, c)| (r, c, 1i64)).collect())
}

/// Host-side PageRank power iteration — the oracle for the spatial example.
pub fn pagerank_reference(transition: &Coo<f64>, damping: f64, iters: usize) -> Vec<f64> {
    let n = transition.n_rows;
    let mut rank = vec![1.0 / n as f64; n];
    for _ in 0..iters {
        let spread = transition.multiply_dense(&rank);
        for (r, s) in rank.iter_mut().zip(spread) {
            *r = (1.0 - damping) / n as f64 + damping * s;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_matrix_columns_are_stochastic() {
        let g = powerlaw_graph(50, 3, 1);
        let mut col_sums = vec![0.0f64; 50];
        for &(_, c, v) in &g.entries {
            col_sums[c as usize] += v;
        }
        for (c, s) in col_sums.iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-9, "column {c} sums to {s}");
        }
    }

    #[test]
    fn pagerank_sums_to_one() {
        let g = powerlaw_graph(64, 3, 2);
        let pr = pagerank_reference(&g, 0.85, 30);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
        // Hubs (low ids) should accumulate more rank than the tail.
        assert!(pr[0] > pr[63]);
    }

    #[test]
    fn rmat_is_skewed_and_deterministic() {
        let g = rmat(8, 1000, 7);
        assert_eq!(g.n_rows, 256);
        assert!(g.nnz() > 500, "should generate most requested edges");
        assert_eq!(g.entries, rmat(8, 1000, 7).entries);
        // Skew: the busiest row should hold many more edges than the median row.
        let mut deg = vec![0usize; 256];
        for &(r, _, _) in &g.entries {
            deg[r as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let mut sorted = deg.clone();
        sorted.sort_unstable();
        let med = sorted[128];
        assert!(max >= 4 * med.max(1), "max {max} vs median {med}");
    }

    #[test]
    fn graph_is_deterministic_per_seed() {
        let a = powerlaw_graph(30, 2, 9);
        let b = powerlaw_graph(30, 2, 9);
        assert_eq!(a.entries, b.entries);
    }
}
