//! Property-based tests for the simulator substrate.

use proptest::prelude::*;

use spatial_model::{zorder, Coord, Machine, Path};

proptest! {
    #[test]
    fn zorder_encode_decode_roundtrip(r in 0u64..(1 << 24), c in 0u64..(1 << 24)) {
        let z = zorder::encode(r, c);
        prop_assert_eq!(zorder::decode(z), (r, c));
    }

    #[test]
    fn zorder_decode_encode_roundtrip(z in 0u64..(1 << 48)) {
        let (r, c) = zorder::decode(z);
        prop_assert_eq!(zorder::encode(r, c), z);
    }

    #[test]
    fn zorder_preserves_quadrant_order(a in 0u64..(1 << 20), b in 0u64..(1 << 20)) {
        // If a < b as Z-indices, a's coordinate is visited earlier on the
        // curve — and both live inside the smallest aligned square that
        // contains them both.
        prop_assume!(a < b);
        let square = zorder::next_power_of_four(b + 1);
        let (ra, ca) = zorder::decode(a);
        let (rb, cb) = zorder::decode(b);
        let side = (square as f64).sqrt() as u64;
        prop_assert!(ra < side && ca < side && rb < side && cb < side);
    }

    #[test]
    fn aligned_blocks_partition_any_range(lo in 0u64..5000, len in 1u64..5000) {
        let hi = lo + len;
        let blocks = zorder::aligned_blocks(lo, hi);
        let mut cur = lo;
        for (s, l) in blocks {
            prop_assert_eq!(s, cur);
            prop_assert!(zorder::is_power_of_four(l));
            prop_assert_eq!(s % l, 0);
            cur += l;
        }
        prop_assert_eq!(cur, hi);
    }

    #[test]
    fn aligned_range_diameter_is_sqrt_len(block in 0u64..100, len in 1u64..10_000) {
        // The O(√L) diameter holds for ranges contained in an aligned
        // square of comparable size — which is how every algorithm in this
        // workspace uses Z-segments. (A range crossing a high quadrant
        // boundary, e.g. the curve midpoint, can span the whole grid.)
        let p = zorder::next_power_of_four(len);
        let lo = block * p;
        let side = zorder::range_diameter_side(lo, lo + len);
        let bound = 2 * ((p as f64).sqrt() as u64);
        prop_assert!(side <= bound, "side {} > bound {}", side, bound);
    }

    #[test]
    fn manhattan_triangle_inequality(
        a in (-1000i64..1000, -1000i64..1000),
        b in (-1000i64..1000, -1000i64..1000),
        c in (-1000i64..1000, -1000i64..1000),
    ) {
        let (a, b, c) = (Coord::new(a.0, a.1), Coord::new(b.0, b.1), Coord::new(c.0, c.1));
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
    }

    #[test]
    fn path_join_is_lattice_like(
        d1 in 0u64..1000, x1 in 0u64..1000,
        d2 in 0u64..1000, x2 in 0u64..1000,
        d3 in 0u64..1000, x3 in 0u64..1000,
    ) {
        let (a, b, c) = (
            Path { depth: d1, distance: x1 },
            Path { depth: d2, distance: x2 },
            Path { depth: d3, distance: x3 },
        );
        prop_assert_eq!(a.join(b), b.join(a));
        prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
        prop_assert_eq!(a.join(a), a);
        prop_assert_eq!(a.join(Path::ZERO), a);
    }

    #[test]
    fn send_chain_accounting_is_exact(hops in prop::collection::vec((-50i64..50, -50i64..50), 1..20)) {
        // A single chain of sends: energy = distance = sum of hop lengths,
        // depth = number of hops.
        let mut m = Machine::new();
        let mut cur = m.place(Coord::ORIGIN, 0u8);
        let mut expect = 0u64;
        for (dr, dc) in &hops {
            let dst = cur.loc().offset(*dr, *dc);
            expect += cur.loc().manhattan(dst);
            cur = m.send_owned(cur, dst);
        }
        let rep = m.report();
        prop_assert_eq!(rep.energy, expect);
        prop_assert_eq!(rep.distance, expect);
        prop_assert_eq!(rep.depth, hops.len() as u64);
        prop_assert_eq!(cur.path().distance, expect);
    }

    #[test]
    fn parallel_sends_do_not_inflate_depth(fan in 1usize..50) {
        // A 1-to-many fan from independent placements has depth exactly 1.
        let mut m = Machine::new();
        for i in 0..fan {
            let v = m.place(Coord::new(i as i64 * 3, 0), i);
            let _ = m.send(&v, Coord::new(i as i64 * 3, 7));
        }
        prop_assert_eq!(m.report().depth, 1);
        prop_assert_eq!(m.report().distance, 7);
        prop_assert_eq!(m.report().energy, 7 * fan as u64);
    }
}
