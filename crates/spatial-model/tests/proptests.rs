//! Property-based tests for the simulator substrate, on the in-tree
//! harness (`spatial_core::check`).

use spatial_core::check::{check, Gen};
use spatial_core::{prop_assert, prop_assert_eq};

use spatial_model::{zorder, Coord, Cost, Machine, Path};

#[test]
fn zorder_encode_decode_roundtrip() {
    check("zorder_encode_decode_roundtrip", |g: &mut Gen| {
        let r = g.int(0u64..(1 << 24));
        let c = g.int(0u64..(1 << 24));
        let z = zorder::encode(r, c);
        prop_assert_eq!(zorder::decode(z), (r, c));
        Ok(())
    });
}

#[test]
fn zorder_decode_encode_roundtrip() {
    check("zorder_decode_encode_roundtrip", |g: &mut Gen| {
        let z = g.int(0u64..(1 << 48));
        let (r, c) = zorder::decode(z);
        prop_assert_eq!(zorder::encode(r, c), z);
        Ok(())
    });
}

#[test]
fn zorder_preserves_quadrant_order() {
    check("zorder_preserves_quadrant_order", |g: &mut Gen| {
        // If a < b as Z-indices, both coordinates live inside the smallest
        // aligned square that contains them both.
        let a = g.int(0u64..(1 << 20) - 1);
        let b = g.int(a + 1..(1 << 20));
        let square = zorder::next_power_of_four(b + 1);
        let (ra, ca) = zorder::decode(a);
        let (rb, cb) = zorder::decode(b);
        let side = (square as f64).sqrt() as u64;
        prop_assert!(ra < side && ca < side && rb < side && cb < side);
        Ok(())
    });
}

#[test]
fn aligned_blocks_partition_any_range() {
    check("aligned_blocks_partition_any_range", |g: &mut Gen| {
        let lo = g.int(0u64..5000);
        let len = g.int(1u64..5000);
        let hi = lo + len;
        let blocks = zorder::aligned_blocks(lo, hi);
        let mut cur = lo;
        for (s, l) in blocks {
            prop_assert_eq!(s, cur);
            prop_assert!(zorder::is_power_of_four(l));
            prop_assert_eq!(s % l, 0);
            cur += l;
        }
        prop_assert_eq!(cur, hi);
        Ok(())
    });
}

#[test]
fn aligned_range_diameter_is_sqrt_len() {
    check("aligned_range_diameter_is_sqrt_len", |g: &mut Gen| {
        // The O(√L) diameter holds for ranges contained in an aligned
        // square of comparable size — which is how every algorithm in this
        // workspace uses Z-segments. (A range crossing a high quadrant
        // boundary, e.g. the curve midpoint, can span the whole grid.)
        let block = g.int(0u64..100);
        let len = g.int(1u64..10_000);
        let p = zorder::next_power_of_four(len);
        let lo = block * p;
        let side = zorder::range_diameter_side(lo, lo + len);
        let bound = 2 * ((p as f64).sqrt() as u64);
        prop_assert!(side <= bound, "side {} > bound {}", side, bound);
        Ok(())
    });
}

// Past `proptest` regression (shrunk to `lo = 29183, len = 3586`), kept as a
// pinned case now that the random harness draws different inputs.
#[test]
fn aligned_range_diameter_regression_29183() {
    let (lo, len) = (29183u64, 3586u64);
    let p = zorder::next_power_of_four(len);
    let lo = (lo / p) * p; // align as the property does via block * p
    let side = zorder::range_diameter_side(lo, lo + len);
    assert!(side <= 2 * ((p as f64).sqrt() as u64));
}

#[test]
fn manhattan_triangle_inequality() {
    check("manhattan_triangle_inequality", |g: &mut Gen| {
        let pt = |g: &mut Gen| Coord::new(g.int(-1000i64..1000), g.int(-1000i64..1000));
        let (a, b, c) = (pt(g), pt(g), pt(g));
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
        Ok(())
    });
}

#[test]
fn path_join_is_lattice_like() {
    check("path_join_is_lattice_like", |g: &mut Gen| {
        let path = |g: &mut Gen| Path { depth: g.int(0u64..1000), distance: g.int(0u64..1000) };
        let (a, b, c) = (path(g), path(g), path(g));
        prop_assert_eq!(a.join(b), b.join(a));
        prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
        prop_assert_eq!(a.join(a), a);
        prop_assert_eq!(a.join(Path::ZERO), a);
        Ok(())
    });
}

#[test]
fn send_chain_accounting_is_exact() {
    check("send_chain_accounting_is_exact", |g: &mut Gen| {
        // A single chain of sends: energy = distance = sum of hop lengths,
        // depth = number of hops.
        let n_hops = g.size(1..20);
        let hops: Vec<(i64, i64)> = g.vec(n_hops, |g| (g.int(-50i64..50), g.int(-50i64..50)));
        let mut m = Machine::new();
        let mut cur = m.place(Coord::ORIGIN, 0u8);
        let mut expect = 0u64;
        for (dr, dc) in &hops {
            let dst = cur.loc().offset(*dr, *dc);
            expect += cur.loc().manhattan(dst);
            cur = m.send_owned(cur, dst);
        }
        let rep = m.report();
        prop_assert_eq!(rep.energy, expect);
        prop_assert_eq!(rep.distance, expect);
        prop_assert_eq!(rep.depth, hops.len() as u64);
        prop_assert_eq!(cur.path().distance, expect);
        Ok(())
    });
}

#[test]
fn path_recurrence_matches_shadow_dag() {
    check("path_recurrence_matches_shadow_dag", |g: &mut Gen| {
        // Random message DAG: each step either sends a random live value to
        // a random cell or zips two live values at a common cell. A shadow
        // interpreter maintains every value's expected Path by the model
        // recurrence (send: join-free `step`; zip: elementwise-max `join`);
        // the machine must agree value-by-value, and its depth/distance
        // watermarks must equal the max over everything ever produced.
        let steps = g.size(5..40);
        let mut m = Machine::new();
        let cell = |g: &mut Gen| Coord::new(g.int(-40i64..40), g.int(-40i64..40));
        let mut live: Vec<(spatial_model::Tracked<u8>, Path)> = (0..4)
            .map(|i| {
                let c = cell(g);
                (m.place(c, i), Path::ZERO)
            })
            .collect();
        let mut water = Path::ZERO;
        for _ in 0..steps {
            if g.int(0u32..3) == 0 && live.len() >= 2 {
                // Local zip: bring b to a's cell first (a send, also shadowed).
                let bi = g.size(1..live.len());
                let (b, pb) = live.remove(bi);
                let (a, pa) = &live[0];
                let hop = b.loc().manhattan(a.loc());
                let b = m.send_owned(b, a.loc());
                let pb = pb.step(hop);
                water = water.join(pb);
                let z = a.zip_with(&b, |x, y| x.wrapping_add(*y));
                let pz = pa.join(pb);
                prop_assert_eq!(z.path(), pz);
                m.discard(b);
                live.push((z, pz));
            } else {
                let i = g.size(0..live.len());
                let (v, p) = live.remove(i);
                let dst = cell(g);
                let hop = v.loc().manhattan(dst);
                let v = m.send_owned(v, dst);
                let p = p.step(hop);
                water = water.join(p);
                prop_assert_eq!(v.path(), p);
                live.push((v, p));
            }
        }
        let rep = m.report();
        prop_assert_eq!(rep.depth, water.depth);
        prop_assert_eq!(rep.distance, water.distance);
        Ok(())
    });
}

#[test]
fn costs_are_translation_invariant() {
    check("costs_are_translation_invariant", |g: &mut Gen| {
        // The model has no distinguished origin: replaying the same message
        // pattern shifted by an arbitrary grid offset reports the identical
        // Cost. (Manhattan distance depends only on coordinate differences.)
        let n_msgs = g.size(1..30);
        let script: Vec<(i64, i64, i64, i64)> = g.vec(n_msgs, |g| {
            (g.int(-100i64..100), g.int(-100i64..100), g.int(-100i64..100), g.int(-100i64..100))
        });
        let run = |offset: Coord| {
            let mut m = Machine::new();
            let mut prev: Option<spatial_model::Tracked<u8>> = None;
            for &(r, c, dr, dc) in &script {
                let src = Coord::new(r + offset.row, c + offset.col);
                let v = match prev.take() {
                    // Alternate fresh placements with chained sends so both
                    // watermarks and sums are exercised.
                    None => m.place(src, 0u8),
                    Some(p) => m.send_owned(p, src),
                };
                prev = Some(m.send_owned(v, src.offset(dr, dc)));
            }
            m.report()
        };
        let base = run(Coord::ORIGIN);
        let shifted = run(Coord::new(g.int(-10_000i64..10_000), g.int(-10_000i64..10_000)));
        prop_assert_eq!(base, shifted);
        Ok(())
    });
}

#[test]
fn cost_delta_round_trips_against_counters() {
    check("cost_delta_round_trips_against_counters", |g: &mut Gen| {
        // delta subtracts the monotone counters exactly (adding the earlier
        // snapshot back restores them) and keeps the later watermarks.
        let snap = |g: &mut Gen| {
            let energy = g.int(0u64..1 << 40);
            let messages = g.int(0u64..1 << 30);
            Cost { energy, depth: g.int(0u64..1 << 20), distance: g.int(0u64..=energy), messages }
        };
        let early = snap(g);
        let later = Cost {
            energy: early.energy + g.int(0u64..1 << 40),
            depth: early.depth + g.int(0u64..1 << 20),
            distance: early.distance + g.int(0u64..1 << 20),
            messages: early.messages + g.int(0u64..1 << 30),
        };
        let d = later.delta(early);
        prop_assert_eq!(d, later - early, "operator form agrees");
        prop_assert_eq!(d.energy + early.energy, later.energy);
        prop_assert_eq!(d.messages + early.messages, later.messages);
        prop_assert_eq!(d.depth, later.depth);
        prop_assert_eq!(d.distance, later.distance);
        prop_assert_eq!(later.delta(later).energy, 0);
        prop_assert_eq!(later.delta(later).messages, 0);
        Ok(())
    });
}

#[test]
fn parallel_sends_do_not_inflate_depth() {
    check("parallel_sends_do_not_inflate_depth", |g: &mut Gen| {
        // A 1-to-many fan from independent placements has depth exactly 1.
        let fan = g.size(1..50);
        let mut m = Machine::new();
        for i in 0..fan {
            let v = m.place(Coord::new(i as i64 * 3, 0), i);
            let _ = m.send(&v, Coord::new(i as i64 * 3, 7));
        }
        prop_assert_eq!(m.report().depth, 1);
        prop_assert_eq!(m.report().distance, 7);
        prop_assert_eq!(m.report().energy, 7 * fan as u64);
        Ok(())
    });
}

#[test]
fn uniform_batches_charge_like_the_per_item_loop() {
    // The closed-form Uniform kernel must be indistinguishable, cost-wise,
    // from moving every item one at a time (`move_to` skips self-sends,
    // exactly as the batch API does).
    check("uniform_batches_charge_like_the_per_item_loop", |g: &mut Gen| {
        let n = g.size(1..200usize);
        let drow = g.int(-40i64..=40);
        let dcol = g.int(-40i64..=40);
        let srcs: Vec<Coord> =
            (0..n).map(|_| Coord::new(g.int(-2000i64..2000), g.int(-2000i64..2000))).collect();
        let mut batched = Machine::new();
        let items: Vec<_> = srcs.iter().enumerate().map(|(i, &c)| batched.place(c, i)).collect();
        let sends: Vec<_> = items
            .into_iter()
            .zip(&srcs)
            .map(|(t, &c)| (t, Coord::new(c.row + drow, c.col + dcol)))
            .collect();
        let _ = batched.send_batch(sends);

        let mut looped = Machine::new();
        for (i, &c) in srcs.iter().enumerate() {
            let t = looped.place(c, i);
            let _ = looped.move_to(t, Coord::new(c.row + drow, c.col + dcol));
        }
        prop_assert_eq!(batched.report(), looped.report());
        Ok(())
    });
}

#[test]
fn affine_batches_charge_like_the_per_item_loop() {
    // Same equivalence for strided displacements (and, via the copy API,
    // for the charge-everything `send` semantics).
    check("affine_batches_charge_like_the_per_item_loop", |g: &mut Gen| {
        let n = g.size(1..150usize);
        let (drow, dcol) = (g.int(-30i64..=30), g.int(-30i64..=30));
        let (srow, scol) = (g.int(-5i64..=5), g.int(-5i64..=5));
        let srcs: Vec<Coord> =
            (0..n).map(|_| Coord::new(g.int(-2000i64..2000), g.int(-2000i64..2000))).collect();
        let dst = |i: usize, c: Coord| {
            Coord::new(c.row + drow + i as i64 * srow, c.col + dcol + i as i64 * scol)
        };
        let mut batched = Machine::new();
        let items: Vec<_> = srcs.iter().enumerate().map(|(i, &c)| batched.place(c, i)).collect();
        let sends: Vec<_> =
            items.iter().enumerate().zip(&srcs).map(|((i, t), &c)| (t, dst(i, c))).collect();
        let _ = batched.send_batch_copy(&sends);
        drop(sends);
        let moved: Vec<_> =
            items.into_iter().enumerate().zip(&srcs).map(|((i, t), &c)| (t, dst(i, c))).collect();
        let _ = batched.send_batch(moved);

        let mut looped = Machine::new();
        for (i, &c) in srcs.iter().enumerate() {
            let t = looped.place(c, i);
            let copy = looped.send(&t, dst(i, c));
            looped.discard(copy);
            let _ = looped.move_to(t, dst(i, c));
        }
        prop_assert_eq!(batched.report(), looped.report());
        Ok(())
    });
}
