//! Property-based tests for the simulator substrate, on the in-tree
//! harness (`spatial_core::check`).

use spatial_core::check::{check, Gen};
use spatial_core::{prop_assert, prop_assert_eq};

use spatial_model::{zorder, Coord, Machine, Path};

#[test]
fn zorder_encode_decode_roundtrip() {
    check("zorder_encode_decode_roundtrip", |g: &mut Gen| {
        let r = g.int(0u64..(1 << 24));
        let c = g.int(0u64..(1 << 24));
        let z = zorder::encode(r, c);
        prop_assert_eq!(zorder::decode(z), (r, c));
        Ok(())
    });
}

#[test]
fn zorder_decode_encode_roundtrip() {
    check("zorder_decode_encode_roundtrip", |g: &mut Gen| {
        let z = g.int(0u64..(1 << 48));
        let (r, c) = zorder::decode(z);
        prop_assert_eq!(zorder::encode(r, c), z);
        Ok(())
    });
}

#[test]
fn zorder_preserves_quadrant_order() {
    check("zorder_preserves_quadrant_order", |g: &mut Gen| {
        // If a < b as Z-indices, both coordinates live inside the smallest
        // aligned square that contains them both.
        let a = g.int(0u64..(1 << 20) - 1);
        let b = g.int(a + 1..(1 << 20));
        let square = zorder::next_power_of_four(b + 1);
        let (ra, ca) = zorder::decode(a);
        let (rb, cb) = zorder::decode(b);
        let side = (square as f64).sqrt() as u64;
        prop_assert!(ra < side && ca < side && rb < side && cb < side);
        Ok(())
    });
}

#[test]
fn aligned_blocks_partition_any_range() {
    check("aligned_blocks_partition_any_range", |g: &mut Gen| {
        let lo = g.int(0u64..5000);
        let len = g.int(1u64..5000);
        let hi = lo + len;
        let blocks = zorder::aligned_blocks(lo, hi);
        let mut cur = lo;
        for (s, l) in blocks {
            prop_assert_eq!(s, cur);
            prop_assert!(zorder::is_power_of_four(l));
            prop_assert_eq!(s % l, 0);
            cur += l;
        }
        prop_assert_eq!(cur, hi);
        Ok(())
    });
}

#[test]
fn aligned_range_diameter_is_sqrt_len() {
    check("aligned_range_diameter_is_sqrt_len", |g: &mut Gen| {
        // The O(√L) diameter holds for ranges contained in an aligned
        // square of comparable size — which is how every algorithm in this
        // workspace uses Z-segments. (A range crossing a high quadrant
        // boundary, e.g. the curve midpoint, can span the whole grid.)
        let block = g.int(0u64..100);
        let len = g.int(1u64..10_000);
        let p = zorder::next_power_of_four(len);
        let lo = block * p;
        let side = zorder::range_diameter_side(lo, lo + len);
        let bound = 2 * ((p as f64).sqrt() as u64);
        prop_assert!(side <= bound, "side {} > bound {}", side, bound);
        Ok(())
    });
}

// Past `proptest` regression (shrunk to `lo = 29183, len = 3586`), kept as a
// pinned case now that the random harness draws different inputs.
#[test]
fn aligned_range_diameter_regression_29183() {
    let (lo, len) = (29183u64, 3586u64);
    let p = zorder::next_power_of_four(len);
    let lo = (lo / p) * p; // align as the property does via block * p
    let side = zorder::range_diameter_side(lo, lo + len);
    assert!(side <= 2 * ((p as f64).sqrt() as u64));
}

#[test]
fn manhattan_triangle_inequality() {
    check("manhattan_triangle_inequality", |g: &mut Gen| {
        let pt = |g: &mut Gen| Coord::new(g.int(-1000i64..1000), g.int(-1000i64..1000));
        let (a, b, c) = (pt(g), pt(g), pt(g));
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
        Ok(())
    });
}

#[test]
fn path_join_is_lattice_like() {
    check("path_join_is_lattice_like", |g: &mut Gen| {
        let path = |g: &mut Gen| Path { depth: g.int(0u64..1000), distance: g.int(0u64..1000) };
        let (a, b, c) = (path(g), path(g), path(g));
        prop_assert_eq!(a.join(b), b.join(a));
        prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
        prop_assert_eq!(a.join(a), a);
        prop_assert_eq!(a.join(Path::ZERO), a);
        Ok(())
    });
}

#[test]
fn send_chain_accounting_is_exact() {
    check("send_chain_accounting_is_exact", |g: &mut Gen| {
        // A single chain of sends: energy = distance = sum of hop lengths,
        // depth = number of hops.
        let n_hops = g.size(1..20);
        let hops: Vec<(i64, i64)> = g.vec(n_hops, |g| (g.int(-50i64..50), g.int(-50i64..50)));
        let mut m = Machine::new();
        let mut cur = m.place(Coord::ORIGIN, 0u8);
        let mut expect = 0u64;
        for (dr, dc) in &hops {
            let dst = cur.loc().offset(*dr, *dc);
            expect += cur.loc().manhattan(dst);
            cur = m.send_owned(cur, dst);
        }
        let rep = m.report();
        prop_assert_eq!(rep.energy, expect);
        prop_assert_eq!(rep.distance, expect);
        prop_assert_eq!(rep.depth, hops.len() as u64);
        prop_assert_eq!(cur.path().distance, expect);
        Ok(())
    });
}

#[test]
fn parallel_sends_do_not_inflate_depth() {
    check("parallel_sends_do_not_inflate_depth", |g: &mut Gen| {
        // A 1-to-many fan from independent placements has depth exactly 1.
        let fan = g.size(1..50);
        let mut m = Machine::new();
        for i in 0..fan {
            let v = m.place(Coord::new(i as i64 * 3, 0), i);
            let _ = m.send(&v, Coord::new(i as i64 * 3, 7));
        }
        prop_assert_eq!(m.report().depth, 1);
        prop_assert_eq!(m.report().distance, 7);
        prop_assert_eq!(m.report().energy, 7 * fan as u64);
        Ok(())
    });
}
