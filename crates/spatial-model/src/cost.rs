//! Cost snapshots and deltas.

use std::fmt;
use std::ops::Sub;

/// A snapshot of the machine's accumulated model costs.
///
/// `depth` and `distance` are global watermarks — the critical path over all
/// messages sent so far — so a `Cost` taken at the end of an algorithm is the
/// exact cost triple the paper's bounds speak about.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Cost {
    /// Total distance travelled by all messages.
    pub energy: u64,
    /// Longest chain of dependent messages.
    pub depth: u64,
    /// Largest total distance along any dependency chain.
    pub distance: u64,
    /// Number of messages sent.
    pub messages: u64,
}

impl Cost {
    /// Difference of two snapshots (energy and messages subtract; the
    /// critical-path watermarks keep the later value, which upper-bounds the
    /// cost of the enclosed phase).
    pub fn delta(self, earlier: Cost) -> Cost {
        Cost {
            energy: self.energy - earlier.energy,
            depth: self.depth,
            distance: self.distance,
            messages: self.messages - earlier.messages,
        }
    }
}

impl Sub for Cost {
    type Output = Cost;
    fn sub(self, earlier: Cost) -> Cost {
        self.delta(earlier)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "energy={} depth={} distance={} messages={}",
            self.energy, self.depth, self.distance, self.messages
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_counters() {
        let a = Cost { energy: 10, depth: 2, distance: 7, messages: 3 };
        let b = Cost { energy: 25, depth: 5, distance: 9, messages: 8 };
        let d = b - a;
        assert_eq!(d.energy, 15);
        assert_eq!(d.messages, 5);
        assert_eq!(d.depth, 5);
        assert_eq!(d.distance, 9);
    }
}
