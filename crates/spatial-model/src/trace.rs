//! Optional message tracing for visualisation and white-box tests.

use crate::coord::Coord;

/// One recorded message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MsgRecord {
    /// Sender PE.
    pub src: Coord,
    /// Receiver PE.
    pub dst: Coord,
    /// Manhattan length of the hop.
    pub len: u64,
}

/// A capped in-order record of messages.
///
/// Tracing is opt-in (see [`crate::Machine::enable_trace`]); the cap guards
/// against unbounded memory growth when a trace is accidentally left on.
#[derive(Debug)]
pub struct Trace {
    records: Vec<MsgRecord>,
    cap: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace that stores at most `cap` records.
    pub fn with_cap(cap: usize) -> Self {
        Trace { records: Vec::new(), cap, dropped: 0 }
    }

    pub(crate) fn record(&mut self, src: Coord, dst: Coord, len: u64) {
        if self.records.len() < self.cap {
            self.records.push(MsgRecord { src, dst, len });
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded messages, in send order.
    pub fn records(&self) -> &[MsgRecord] {
        &self.records
    }

    /// Number of messages that did not fit under the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_caps_records() {
        let mut t = Trace::with_cap(2);
        t.record(Coord::new(0, 0), Coord::new(0, 1), 1);
        t.record(Coord::new(0, 1), Coord::new(1, 1), 1);
        t.record(Coord::new(1, 1), Coord::new(2, 1), 1);
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 1);
    }
}
