//! Batch-pattern classification and deterministic sharded execution for the
//! bare (uninstrumented) fast path of the machine's batch APIs.
//!
//! The bulk of the messages in a large run come from *regular* batches:
//! whole Z-blocks exchanging values at one common displacement (block
//! replication, in-block broadcast levels, quarter shifts) or at an affinely
//! strided one. For those, the aggregate energy is an arithmetic series and
//! the message count is exact arithmetic — no per-item Manhattan distance or
//! saturating add is needed. [`classify`] recognizes the two closed-form
//! shapes; anything else is [`BatchPattern::Irregular`] and pays the ordinary
//! per-item loop.
//!
//! The remaining per-item work (constructing each delivered value and
//! extending its [`Path`]) is embarrassingly parallel, so `shard_map`
//! partitions it into contiguous chunks across `std::thread::scope` workers.
//! Each worker accumulates into a private `ShardAcc`; the partials are
//! merged **in fixed shard order** (lowest item index first). Every merged
//! quantity is either an exact sum (`messages`), a saturating sum of
//! non-negative terms (`energy` — see below), or a max (`depth`,
//! `distance`), all of which are independent of the partition, so the
//! reported [`crate::Cost`] is bit-identical at any thread count.
//!
//! *Saturation note.* A serial left fold of `saturating_add` over
//! non-negative terms equals `min(true_sum, u64::MAX)`: partial sums are
//! monotone, so the fold clamps exactly when the true sum exceeds `u64::MAX`
//! and is exact otherwise. Per-shard partials merged with `saturating_add`
//! compute the same function, as do the `u128` closed forms — so all three
//! evaluation orders agree bit-for-bit even at the saturation boundary.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::coord::Coord;
use crate::path::Path;

/// The displacement structure of a batch of point-to-point messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BatchPattern {
    /// No items.
    Empty,
    /// Every message has the same `(drow, dcol)` displacement — e.g. a whole
    /// aligned Z-block shifting to a sibling block. Translation invariance
    /// of the Manhattan metric makes every per-message cost identical, so
    /// the batch is charged in O(1): `energy = count · (|drow| + |dcol|)`.
    Uniform {
        /// Common row displacement (`dst.row - src.row`).
        drow: i64,
        /// Common column displacement.
        dcol: i64,
    },
    /// Message `i` has displacement `(drow + i·srow, dcol + i·scol)` with
    /// `(srow, scol) ≠ (0, 0)` — e.g. a strided compaction. The energy sum
    /// is an arithmetic series split at the (at most one) sign change per
    /// axis, still O(1).
    Affine {
        /// Row displacement of item 0.
        drow: i64,
        /// Column displacement of item 0.
        dcol: i64,
        /// Per-item row stride.
        srow: i64,
        /// Per-item column stride.
        scol: i64,
    },
    /// Anything else: charged by the ordinary per-item loop (sharded when
    /// large).
    Irregular,
}

/// Classifies a batch of `(src, dst)` pairs in one pass of comparisons.
pub fn classify(mut pairs: impl Iterator<Item = (Coord, Coord)>) -> BatchPattern {
    let Some((s0, d0)) = pairs.next() else {
        return BatchPattern::Empty;
    };
    let base = (d0.row - s0.row, d0.col - s0.col);
    let Some((s1, d1)) = pairs.next() else {
        return BatchPattern::Uniform { drow: base.0, dcol: base.1 };
    };
    let second = (d1.row - s1.row, d1.col - s1.col);
    let stride = (second.0 - base.0, second.1 - base.1);
    let mut expect = second;
    for (s, d) in pairs {
        expect = (expect.0 + stride.0, expect.1 + stride.1);
        if (d.row - s.row, d.col - s.col) != expect {
            return BatchPattern::Irregular;
        }
    }
    if stride == (0, 0) {
        BatchPattern::Uniform { drow: base.0, dcol: base.1 }
    } else {
        BatchPattern::Affine { drow: base.0, dcol: base.1, srow: stride.0, scol: stride.1 }
    }
}

/// `Σ_{i=0}^{n-1} |a + i·s|`, exactly, as the arithmetic series split at the
/// single sign change of the monotone sequence. `u128` so no intermediate
/// overflows for any realistic grid.
pub(crate) fn sum_abs_affine(a: i64, s: i64, n: u64) -> u128 {
    if n == 0 {
        return 0;
    }
    if s == 0 {
        return u128::from(n) * u128::from(a.unsigned_abs());
    }
    let (a, s, n) = (i128::from(a), i128::from(s), i128::from(n));
    // Σ_{i=lo}^{hi} (a + i·s); `2a + (lo+hi)s` is even times cnt, but avoid
    // the parity question by summing 2× and halving once.
    let series = |lo: i128, hi: i128| -> i128 {
        let cnt = hi - lo + 1;
        cnt * (2 * a + (lo + hi) * s) / 2
    };
    // Number of leading indices on the negative side of the monotone ramp.
    let neg = if s > 0 {
        // a + i·s < 0  ⇔  i < ⌈-a / s⌉
        if a >= 0 {
            0
        } else {
            ((-a) + s - 1).div_euclid(s).clamp(0, n)
        }
    } else {
        // decreasing: a + i·s < 0  ⇔  i > a / (-s); count the tail.
        if a < 0 {
            n
        } else {
            (n - 1 - (a.div_euclid(-s)).min(n - 1)).clamp(0, n)
        }
    };
    let mut total: i128 = 0;
    if s > 0 {
        if neg > 0 {
            total -= series(0, neg - 1);
        }
        if neg < n {
            total += series(neg, n - 1);
        }
    } else {
        let pos = n - neg;
        if pos > 0 {
            total += series(0, pos - 1);
        }
        if neg > 0 {
            total -= series(pos, n - 1);
        }
    }
    debug_assert!(total >= 0);
    total as u128
}

/// How many indices `i ∈ [0, n)` of an affine batch have zero displacement
/// (`drow + i·srow == 0` and `dcol + i·scol == 0`). At most one unless the
/// pattern degenerates to uniform-zero (which [`classify`] reports as
/// `Uniform`), so this is O(1).
pub(crate) fn affine_zero_count(drow: i64, dcol: i64, srow: i64, scol: i64, n: u64) -> u64 {
    // Solutions of one axis equation `d + i·s == 0` over i ∈ [0, n).
    let axis = |d: i64, s: i64| -> AxisZeros {
        if s == 0 {
            if d == 0 {
                AxisZeros::All
            } else {
                AxisZeros::None
            }
        } else if d % s == 0 {
            let i = -(d / s);
            if i >= 0 && (i as u64) < n {
                AxisZeros::One(i as u64)
            } else {
                AxisZeros::None
            }
        } else {
            AxisZeros::None
        }
    };
    match (axis(drow, srow), axis(dcol, scol)) {
        (AxisZeros::None, _) | (_, AxisZeros::None) => 0,
        (AxisZeros::One(i), AxisZeros::One(j)) => u64::from(i == j),
        (AxisZeros::One(_), AxisZeros::All) | (AxisZeros::All, AxisZeros::One(_)) => 1,
        // Both axes identically zero would be `Uniform { 0, 0 }`, never an
        // `Affine` classification; unreachable but harmless.
        (AxisZeros::All, AxisZeros::All) => n,
    }
}

enum AxisZeros {
    None,
    One(u64),
    All,
}

/// Override slot for [`sim_threads`]; `0` means "no override, use the
/// environment". Programmatic so a single test process can exercise several
/// thread counts (the env var is read once and cached).
static THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

static THREADS_ENV: OnceLock<usize> = OnceLock::new();

/// Worker count used by the sharded bare-path batch kernels.
///
/// Resolution order: [`set_sim_threads`] override, then the
/// `SPATIAL_SIM_THREADS` environment variable (read once per process), then
/// `std::thread::available_parallelism()`. `1` forces the serial path.
/// Any value yields bit-identical costs; this knob trades wall clock only.
pub fn sim_threads() -> usize {
    match THREADS_OVERRIDE.load(Ordering::Relaxed) {
        0 => *THREADS_ENV.get_or_init(|| {
            std::env::var("SPATIAL_SIM_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n: &usize| n >= 1)
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        }),
        n => n,
    }
}

/// Sets the worker count programmatically, overriding the environment
/// (`0` clears the override). Takes effect on the next batch call.
pub fn set_sim_threads(n: usize) {
    THREADS_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Below this many items a batch is processed serially. Scoped-thread
/// spawns cost tens of microseconds and the merge adds a pass over the
/// partials; batches under ~10^5 items cannot amortize that. The threshold
/// is deliberately high: a 2^16-item bitonic stage loses ~20% end to end
/// when sharded (see the `scaling` section of `BENCH_simcore.json`), so
/// only the 2^17+ batches of the largest sweeps engage the shard engine.
const MIN_PARALLEL_ITEMS: usize = 1 << 17;
/// Minimum items per shard; fewer workers are used for mid-sized batches,
/// keeping each shard's working set large enough to amortize its spawn.
const MIN_CHUNK: usize = 1 << 15;

/// Private per-shard cost accumulator. `energy` and `messages` start at zero
/// and are *partials* to be merged into the machine's counters; `depth` and
/// `distance` are running maxima.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ShardAcc {
    pub energy: u64,
    pub messages: u64,
    pub depth: u64,
    pub distance: u64,
}

impl ShardAcc {
    /// Records a delivered value's path against the watermark maxima.
    #[inline]
    pub fn observe(&mut self, p: Path) {
        self.depth = self.depth.max(p.depth);
        self.distance = self.distance.max(p.distance);
    }

    /// Charges one message of length `d`.
    #[inline]
    pub fn charge(&mut self, d: u64) {
        self.energy = self.energy.saturating_add(d);
        self.messages += 1;
    }

    /// Folds another shard's partial in (fixed caller-driven order).
    fn merge(&mut self, o: &ShardAcc) {
        self.energy = self.energy.saturating_add(o.energy);
        self.messages += o.messages;
        self.depth = self.depth.max(o.depth);
        self.distance = self.distance.max(o.distance);
    }
}

/// How many shards a batch of `n` items runs on under the current thread
/// setting.
fn shards_for(n: usize) -> usize {
    if n < MIN_PARALLEL_ITEMS {
        return 1;
    }
    sim_threads().clamp(1, n.div_ceil(MIN_CHUNK))
}

/// Maps `f` over owned items, sharded across scoped workers when the batch
/// is large enough. `f` receives each item's global index. Outputs are
/// concatenated and shard partials merged in ascending item order, so the
/// result is identical to the serial fold for any thread count.
pub(crate) fn shard_map<I, O>(
    items: Vec<I>,
    f: impl Fn(I, usize, &mut ShardAcc) -> O + Sync,
) -> (Vec<O>, ShardAcc)
where
    I: Send,
    O: Send,
{
    let n = items.len();
    let shards = shards_for(n);
    if shards <= 1 {
        let mut acc = ShardAcc::default();
        let out = items.into_iter().enumerate().map(|(i, it)| f(it, i, &mut acc)).collect();
        return (out, acc);
    }
    let chunk = n.div_ceil(shards);
    // Carve the vector into contiguous chunks back to front (one memcpy of
    // each tail), so workers own their items without any unsafe slicing.
    let mut chunks: Vec<(usize, Vec<I>)> = Vec::with_capacity(shards);
    let mut rest = items;
    for s in (1..shards).rev() {
        let at = (s * chunk).min(rest.len());
        chunks.push((at, rest.split_off(at)));
    }
    chunks.push((0, rest));
    chunks.reverse();
    let f = &f;
    let results: Vec<(Vec<O>, ShardAcc)> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(base, c)| {
                scope.spawn(move || {
                    let mut acc = ShardAcc::default();
                    let out: Vec<O> = c
                        .into_iter()
                        .enumerate()
                        .map(|(i, it)| f(it, base + i, &mut acc))
                        .collect();
                    (out, acc)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("batch shard worker panicked")).collect()
    });
    merge_shards(n, results)
}

/// Borrowed-item variant of [`shard_map`]: shards a slice by subslices (no
/// item copying), same deterministic merge.
pub(crate) fn shard_map_ref<I, O>(
    items: &[I],
    f: impl Fn(&I, usize, &mut ShardAcc) -> O + Sync,
) -> (Vec<O>, ShardAcc)
where
    I: Sync,
    O: Send,
{
    let n = items.len();
    let shards = shards_for(n);
    if shards <= 1 {
        let mut acc = ShardAcc::default();
        let out = items.iter().enumerate().map(|(i, it)| f(it, i, &mut acc)).collect();
        return (out, acc);
    }
    let chunk = n.div_ceil(shards);
    let f = &f;
    let results: Vec<(Vec<O>, ShardAcc)> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(s, c)| {
                let base = s * chunk;
                scope.spawn(move || {
                    let mut acc = ShardAcc::default();
                    let out: Vec<O> =
                        c.iter().enumerate().map(|(i, it)| f(it, base + i, &mut acc)).collect();
                    (out, acc)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("batch shard worker panicked")).collect()
    });
    merge_shards(n, results)
}

/// Concatenates shard outputs and merges shard partials, lowest item index
/// first — the single place that fixes the deterministic reduction order.
fn merge_shards<O>(n: usize, results: Vec<(Vec<O>, ShardAcc)>) -> (Vec<O>, ShardAcc) {
    let mut out = Vec::with_capacity(n);
    let mut acc = ShardAcc::default();
    for (o, a) in results {
        out.extend(o);
        acc.merge(&a);
    }
    (out, acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(disp: &[(i64, i64)]) -> Vec<(Coord, Coord)> {
        disp.iter()
            .enumerate()
            .map(|(i, &(dr, dc))| {
                let s = Coord::new(i as i64, 2 * i as i64);
                (s, Coord::new(s.row + dr, s.col + dc))
            })
            .collect()
    }

    #[test]
    fn classify_recognizes_each_shape() {
        assert_eq!(classify(pairs(&[]).into_iter()), BatchPattern::Empty);
        assert_eq!(
            classify(pairs(&[(3, -1)]).into_iter()),
            BatchPattern::Uniform { drow: 3, dcol: -1 }
        );
        assert_eq!(
            classify(pairs(&[(3, -1), (3, -1), (3, -1)]).into_iter()),
            BatchPattern::Uniform { drow: 3, dcol: -1 }
        );
        assert_eq!(
            classify(pairs(&[(1, 0), (3, -2), (5, -4)]).into_iter()),
            BatchPattern::Affine { drow: 1, dcol: 0, srow: 2, scol: -2 }
        );
        assert_eq!(classify(pairs(&[(1, 0), (3, 0), (4, 0)]).into_iter()), BatchPattern::Irregular);
    }

    #[test]
    fn sum_abs_affine_matches_naive() {
        for &(a, s) in &[(0i64, 0i64), (5, 0), (-5, 0), (-7, 2), (7, -2), (3, 3), (-3, -3), (1, -1)]
        {
            for n in 0u64..20 {
                let naive: u128 =
                    (0..n).map(|i| u128::from((a + i as i64 * s).unsigned_abs())).sum();
                assert_eq!(sum_abs_affine(a, s, n), naive, "a={a} s={s} n={n}");
            }
        }
    }

    #[test]
    fn affine_zero_count_matches_naive() {
        for &(dr, dc, sr, sc) in
            &[(0i64, 0i64, 1i64, 0i64), (-4, -6, 2, 3), (-4, -6, 2, 2), (-4, 0, 2, 0), (1, 1, 2, 2)]
        {
            for n in 0u64..8 {
                let naive = (0..n)
                    .filter(|&i| dr + i as i64 * sr == 0 && dc + i as i64 * sc == 0)
                    .count() as u64;
                assert_eq!(affine_zero_count(dr, dc, sr, sc, n), naive, "{dr},{dc},{sr},{sc},{n}");
            }
        }
    }

    #[test]
    fn shard_map_is_partition_independent() {
        // Large enough to shard; compare against the serial fold.
        let items: Vec<u64> = (0..(MIN_PARALLEL_ITEMS as u64 * 2 + 17)).collect();
        let f = |it: u64, i: usize, acc: &mut ShardAcc| {
            acc.charge(it % 13);
            acc.observe(Path { depth: it % 7, distance: it % 29 });
            it + i as u64
        };
        let mut serial_acc = ShardAcc::default();
        let serial: Vec<u64> =
            items.iter().enumerate().map(|(i, &it)| f(it, i, &mut serial_acc)).collect();
        for threads in [1usize, 2, 3, 8] {
            set_sim_threads(threads);
            let (out, acc) = shard_map(items.clone(), f);
            assert_eq!(out, serial, "threads={threads}");
            assert_eq!(acc.energy, serial_acc.energy);
            assert_eq!(acc.messages, serial_acc.messages);
            assert_eq!(acc.depth, serial_acc.depth);
            assert_eq!(acc.distance, serial_acc.distance);
            let (out_ref, acc_ref) = shard_map_ref(&items, |&it, i, a| f(it, i, a));
            assert_eq!(out_ref, serial);
            assert_eq!(acc_ref.messages, serial_acc.messages);
        }
        set_sim_threads(0);
    }

    #[test]
    fn profiled_totals_agree_across_bare_sharded_and_instrumented_paths() {
        // The profile is charged from the final counters, and the raw
        // counters are bit-identical across the bare closed-form path, the
        // shard engine at any thread count, and the instrumented per-item
        // replay — so every profiled total must agree too. This pins that
        // chain end to end on the machine's batch APIs.
        use crate::machine::Machine;
        use crate::profile::{builtin_profiles, ProfiledCost};

        let n = MIN_PARALLEL_ITEMS + 1031; // past the shard engage threshold
        let run = |m: &mut Machine| {
            let items =
                m.place_batch((0..n as u64).collect(), |i| Coord::new(i as i64 % 509, 0));
            // Uniform phase: O(1) closed form on the bare path.
            let moved = m.send_batch(
                items
                    .into_iter()
                    .map(|t| {
                        let dst = Coord::new(t.loc().row + 1, t.loc().col + 2);
                        (t, dst)
                    })
                    .collect(),
            );
            // Irregular phase: per-item charging, sharded when large.
            let _ = m.send_batch(
                moved
                    .into_iter()
                    .enumerate()
                    .map(|(i, t)| (t, Coord::new((i % 37) as i64, (i % 11) as i64)))
                    .collect::<Vec<_>>(),
            );
        };
        for profile in builtin_profiles() {
            let mut reference: Option<ProfiledCost> = None;
            for threads in [1usize, 2, 7] {
                set_sim_threads(threads);
                let mut m = Machine::with_profile(*profile);
                assert!(m.is_bare(), "a profile is accounting, not an instrument");
                run(&mut m);
                let p = m.profiled_report().expect("built-ins cannot saturate here");
                let r = *reference.get_or_insert(p);
                assert_eq!(r, p, "profile {} at threads={threads}", profile.name());
            }
            set_sim_threads(0);
            // Instrumented replay: the trace forces the materializing
            // per-item path; counters — hence profiled totals — must match.
            let mut m = Machine::with_profile(*profile);
            m.enable_trace(4);
            assert!(!m.is_bare());
            run(&mut m);
            assert_eq!(
                m.profiled_report().unwrap(),
                reference.unwrap(),
                "instrumented replay under {}",
                profile.name()
            );
        }
    }

    #[test]
    fn u128_intermediates_charge_a_two_to_twenty_message_run_exactly() {
        // A closed-form 2^20-message run under weights big enough that every
        // pJ component overflows u64: the u128 intermediates must carry the
        // exact products (no clamp, no wrap, no error for representable
        // results).
        use crate::machine::Machine;
        use crate::profile::{CostProfile, ProfileWeights};

        #[derive(Debug)]
        struct HugeWeights;
        impl CostProfile for HugeWeights {
            fn name(&self) -> &'static str {
                "huge-weights"
            }
            fn weights(&self) -> ProfileWeights {
                ProfileWeights {
                    pj_per_hop: 1 << 60,
                    pj_per_op: 1 << 60,
                    pj_per_word_hop: 1 << 60,
                    cycles_per_hop: 1 << 20,
                    cycles_per_op: 1 << 20,
                }
            }
        }
        static HUGE: HugeWeights = HugeWeights;

        let n = 1u64 << 20;
        let mut m = Machine::with_profile(&HUGE);
        let items = m.place_batch((0..n).collect(), |i| Coord::new(i as i64, 0));
        let _ = m.send_batch(
            items
                .into_iter()
                .map(|t| {
                    let dst = Coord::new(t.loc().row + 3, t.loc().col + 4);
                    (t, dst)
                })
                .collect(),
        );
        let c = m.report();
        assert_eq!(c.messages, n, "one message per item");
        assert_eq!(c.energy, 7 * n, "uniform displacement of 7 hops");
        let p = m.profiled_report().expect("representable in u128");
        let w = 1u128 << 60;
        assert_eq!(p.hop_pj, w * u128::from(c.energy));
        assert_eq!(p.op_pj, w * u128::from(c.messages));
        assert_eq!(p.occupancy_pj, w * (u128::from(c.energy) + u128::from(c.messages)));
        assert!(p.total_pj > u128::from(u64::MAX), "the point of the u128 intermediates");
        assert_eq!(p.delay_cycles, (u128::from(c.distance) + u128::from(c.depth)) << 20);
        assert_eq!(p.edp, p.total_pj * p.delay_cycles);
    }

    #[test]
    fn saturating_energy_merge_matches_serial_clamp() {
        // Shard partials that individually and jointly saturate must merge
        // to exactly what the serial monotone fold produces: u64::MAX.
        let mut a = ShardAcc { energy: u64::MAX - 10, ..Default::default() };
        let b = ShardAcc { energy: 100, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.energy, u64::MAX);
    }
}
