//! Model-conformance guards: grid extent, per-PE memory cap, cost budgets.
//!
//! The Spatial Computer Model makes promises the bare simulator never
//! enforced: algorithms operate on a declared subgrid (plus scratch), each PE
//! holds `O(1)` words, and a primitive's cost is supposed to stay within its
//! analyzed bound. A [`ModelGuard`] turns each promise into a checked
//! invariant: activate one with [`crate::Machine::enable_guard`] and every
//! placement/send is validated, with violations surfacing as typed
//! [`crate::SpatialError`] values (immediately from the `try_*` methods,
//! latched on the machine for the infallible ones).

use crate::cost::Cost;
use crate::error::{BudgetMetric, SpatialError};
use crate::grid::SubGrid;

/// A set of opt-in conformance checks for a [`crate::Machine`].
///
/// All checks default to off; enable the ones the run should enforce:
///
/// ```
/// use spatial_model::{Coord, Machine, ModelGuard, SubGrid};
///
/// let guard = ModelGuard::new()
///     .extent(SubGrid::square(Coord::ORIGIN, 8))
///     .mem_cap(4)
///     .max_energy(1_000);
/// let mut m = Machine::new();
/// m.enable_guard(guard);
/// let v = m.try_place(Coord::new(0, 0), 1i64).unwrap();
/// assert!(m.try_send(&v, Coord::new(100, 0)).is_err()); // outside the extent
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModelGuard {
    pub(crate) extent: Option<SubGrid>,
    pub(crate) mem_cap: Option<u32>,
    pub(crate) max_energy: Option<u64>,
    pub(crate) max_depth: Option<u64>,
    pub(crate) max_distance: Option<u64>,
    pub(crate) max_messages: Option<u64>,
}

impl ModelGuard {
    /// A guard with every check disabled.
    pub fn new() -> Self {
        ModelGuard::default()
    }

    /// Restricts all placements and message targets to `extent` (logical
    /// coordinates). Violations: [`SpatialError::OutOfBounds`].
    pub fn extent(mut self, extent: SubGrid) -> Self {
        self.extent = Some(extent);
        self
    }

    /// Hard per-PE resident-word cap enforcing the model's `O(1)`-memory
    /// promise. Enabling this auto-enables the memory meter. Violations:
    /// [`SpatialError::MemoryExceeded`].
    pub fn mem_cap(mut self, cap: u32) -> Self {
        self.mem_cap = Some(cap);
        self
    }

    /// Energy budget. Violations: [`SpatialError::BudgetExceeded`].
    pub fn max_energy(mut self, budget: u64) -> Self {
        self.max_energy = Some(budget);
        self
    }

    /// Depth budget. Violations: [`SpatialError::BudgetExceeded`].
    pub fn max_depth(mut self, budget: u64) -> Self {
        self.max_depth = Some(budget);
        self
    }

    /// Distance budget. Violations: [`SpatialError::BudgetExceeded`].
    pub fn max_distance(mut self, budget: u64) -> Self {
        self.max_distance = Some(budget);
        self
    }

    /// Message-count budget. Violations: [`SpatialError::BudgetExceeded`].
    pub fn max_messages(mut self, budget: u64) -> Self {
        self.max_messages = Some(budget);
        self
    }

    /// The first cost budget `cost` exceeds, if any.
    pub(crate) fn budget_violation(&self, cost: Cost) -> Option<SpatialError> {
        let checks = [
            (self.max_energy, cost.energy, BudgetMetric::Energy),
            (self.max_depth, cost.depth, BudgetMetric::Depth),
            (self.max_distance, cost.distance, BudgetMetric::Distance),
            (self.max_messages, cost.messages, BudgetMetric::Messages),
        ];
        for (budget, used, metric) in checks {
            if let Some(budget) = budget {
                if used > budget {
                    return Some(SpatialError::BudgetExceeded { metric, used, budget });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_violation_reports_the_first_overflow() {
        let g = ModelGuard::new().max_energy(100).max_messages(10);
        assert_eq!(
            g.budget_violation(Cost { energy: 100, depth: 5, distance: 50, messages: 10 }),
            None
        );
        let e = g.budget_violation(Cost { energy: 101, depth: 5, distance: 50, messages: 11 });
        assert_eq!(
            e,
            Some(SpatialError::BudgetExceeded {
                metric: BudgetMetric::Energy,
                used: 101,
                budget: 100
            })
        );
    }

    #[test]
    fn unset_budgets_never_fire() {
        let g = ModelGuard::new();
        assert_eq!(
            g.budget_violation(Cost {
                energy: u64::MAX,
                depth: u64::MAX,
                distance: u64::MAX,
                messages: u64::MAX
            }),
            None
        );
    }
}
