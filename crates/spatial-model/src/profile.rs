//! Pluggable cost profiles: joules, cycles and EDP on top of the exact
//! model counters.
//!
//! The paper's cost triple (energy = Manhattan hops, depth, distance) is one
//! instantiation of the spatial-computer accounting model. Real accelerator
//! evaluations weight *per-hop* transport, *per-PE native ops* and
//! *per-word-resident occupancy* with hardware constants (picojoules per
//! native op) and rank designs by **energy-delay product**. A
//! [`CostProfile`] maps the machine's exact counters onto such a hardware
//! costing; the machine itself keeps metering raw hops.
//!
//! Two invariants make profiles safe to thread everywhere:
//!
//! 1. **Profiles are pure accounting.** A [`ProfiledCost`] is computed from
//!    the final [`Cost`] snapshot by [`CostProfile::charge`]; the profile is
//!    *not* an instrument, does not affect [`crate::Machine::is_bare`], and
//!    therefore leaves the closed-form batch kernels and the shard engine's
//!    fixed-order merge untouched. The hot path never sees a weight.
//! 2. **Energy components are linear in the summed counters.** The pJ
//!    components are integer-weighted sums of `energy` and `messages`, so
//!    closed-form charging of a batch equals the sum of per-item charges,
//!    and the bare, instrumented and sharded execution paths — which already
//!    agree on the raw counters bit-for-bit — agree on every profiled total
//!    automatically. (The *delay* side is built from the `depth`/`distance`
//!    watermarks, which are maxima, not sums.)
//!
//! All weight arithmetic runs in `u128` intermediates; any product or sum
//! that would not fit is reported as a typed
//! [`ProfileError::Saturated`] instead of wrapping or silently clamping.
//!
//! ## The built-in profiles
//!
//! | name            | pJ/hop | pJ/op | pJ/word-hop | cycles/hop | cycles/op |
//! |-----------------|-------:|------:|------------:|-----------:|----------:|
//! | `model-exact`   |      1 |     0 |           0 |          1 |         0 |
//! | `wse-like`      |      1 |     2 |           1 |          1 |         1 |
//! | `systolic-like` |      2 |     1 |           3 |          1 |         1 |
//! | `simt-like`     |      6 |     4 |           2 |          2 |         1 |
//!
//! [`ModelExact`] reproduces the paper's metrics exactly: total pJ equals
//! the raw `energy` (hops) and delay equals the raw `distance` (critical-path
//! wire latency) — and every [`ProfiledCost`] carries the raw [`Cost`]
//! verbatim, so nothing is lost by charging through a profile. The three
//! hardware-style profiles are stylized integer constants in the spirit of
//! published pJ/op tables: a wafer-scale fabric with cheap on-wafer hops, a
//! systolic array with cheap MACs but expensive word residency, and a
//! SIMT machine paying a memory-hierarchy premium on every hop.

use std::fmt;

use crate::cost::Cost;

/// Integer weights mapping the exact counters onto a hardware costing.
///
/// Energy side (picojoules): `pj_per_hop` multiplies the raw `energy`
/// counter (total Manhattan hops), `pj_per_op` multiplies `messages` (each
/// message is one native PE op: a send plus the local fold it feeds), and
/// `pj_per_word_hop` multiplies `energy + messages` — the number of
/// word-steps a datum is resident somewhere (its source PE for the
/// injection step, then one link buffer per hop).
///
/// Delay side (cycles): `cycles_per_hop` multiplies the `distance`
/// watermark (critical-path wire length) and `cycles_per_op` multiplies the
/// `depth` watermark (longest dependent-message chain).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfileWeights {
    /// Picojoules per Manhattan hop (weights raw `energy`).
    pub pj_per_hop: u64,
    /// Picojoules per native PE op (weights raw `messages`).
    pub pj_per_op: u64,
    /// Picojoules per word-resident step (weights `energy + messages`).
    pub pj_per_word_hop: u64,
    /// Cycles per critical-path hop (weights raw `distance`).
    pub cycles_per_hop: u64,
    /// Cycles per critical-path dependent op (weights raw `depth`).
    pub cycles_per_op: u64,
}

/// A [`Cost`] charged through a [`CostProfile`]: the pJ decomposition, the
/// cycle delay, their energy-delay product, and the untouched raw counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfiledCost {
    /// Name of the profile that produced this charge.
    pub profile: &'static str,
    /// The exact model counters the charge was derived from, verbatim.
    pub raw: Cost,
    /// Transport energy: `pj_per_hop × energy` (pJ).
    pub hop_pj: u128,
    /// Compute energy: `pj_per_op × messages` (pJ).
    pub op_pj: u128,
    /// Occupancy energy: `pj_per_word_hop × (energy + messages)` (pJ).
    pub occupancy_pj: u128,
    /// Total energy: sum of the three components (pJ).
    pub total_pj: u128,
    /// Critical-path delay: `cycles_per_hop × distance + cycles_per_op ×
    /// depth` (cycles).
    pub delay_cycles: u128,
    /// Energy-delay product: `total_pj × delay_cycles`.
    pub edp: u128,
}

impl fmt::Display for ProfiledCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "profile={} total_pj={} (hop={} op={} occupancy={}) delay_cycles={} edp={}",
            self.profile,
            self.total_pj,
            self.hop_pj,
            self.op_pj,
            self.occupancy_pj,
            self.delay_cycles,
            self.edp
        )
    }
}

/// Typed failures of the profile layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProfileError {
    /// A profile name did not match any built-in (CLI `--profile`, jobspec
    /// `"profile"` field). A usage error: exit code 2.
    Unknown {
        /// The name that failed to resolve.
        name: String,
    },
    /// A weighted product or sum exceeded `u128`. Only reachable with
    /// adversarial weights (the built-in constants cannot saturate on
    /// counters a real run can produce); surfaced as a typed error rather
    /// than a wrap or a silent clamp. Exit code 7 (the accounting-overflow
    /// class, alongside budget breaches).
    Saturated {
        /// The profile whose arithmetic overflowed.
        profile: &'static str,
        /// Which component overflowed (`"total_pj"`, `"delay_cycles"`, …).
        component: &'static str,
    },
}

impl ProfileError {
    /// CLI exit code for this error: unknown name → 2 (usage, shared with
    /// the other argument errors), saturated arithmetic → 7 (the
    /// accounting-overflow class of `BudgetExceeded`).
    pub fn exit_code(&self) -> i32 {
        match self {
            ProfileError::Unknown { .. } => 2,
            ProfileError::Saturated { .. } => 7,
        }
    }
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Unknown { name } => {
                let known: Vec<&str> = builtin_profiles().iter().map(|p| p.name()).collect();
                write!(f, "unknown profile {name:?} (known: {})", known.join(", "))
            }
            ProfileError::Saturated { profile, component } => write!(
                f,
                "profile arithmetic saturated: {profile}.{component} exceeds u128 \
                 (weights too extreme for this run's counters)"
            ),
        }
    }
}

impl std::error::Error for ProfileError {}

/// A costing of the exact model counters.
///
/// `Sync + Debug` because the handle is shared by reference across the
/// supervised runner's worker threads (a [`crate::Machine`] must stay
/// `Send`). Implementors normally only provide [`name`](CostProfile::name)
/// and [`weights`](CostProfile::weights); the default
/// [`charge`](CostProfile::charge) applies the weights in `u128` with typed
/// saturation.
pub trait CostProfile: Sync + fmt::Debug {
    /// Stable profile name (`--profile <name>`, report `"profile"` field).
    fn name(&self) -> &'static str;

    /// The integer weights of this profile.
    fn weights(&self) -> ProfileWeights;

    /// Charges a raw [`Cost`] under this profile.
    fn charge(&self, cost: Cost) -> Result<ProfiledCost, ProfileError> {
        charge_with(self.name(), self.weights(), cost)
    }
}

fn charge_with(
    name: &'static str,
    w: ProfileWeights,
    cost: Cost,
) -> Result<ProfiledCost, ProfileError> {
    let sat = |component| ProfileError::Saturated { profile: name, component };
    // Single u64 × u64 products always fit in u128; the word-hop basis is a
    // u65 sum, so that product (and everything after it) is checked.
    let hop_pj = u128::from(w.pj_per_hop) * u128::from(cost.energy);
    let op_pj = u128::from(w.pj_per_op) * u128::from(cost.messages);
    let word_hops = u128::from(cost.energy) + u128::from(cost.messages);
    let occupancy_pj =
        u128::from(w.pj_per_word_hop).checked_mul(word_hops).ok_or_else(|| sat("occupancy_pj"))?;
    let total_pj = hop_pj
        .checked_add(op_pj)
        .and_then(|s| s.checked_add(occupancy_pj))
        .ok_or_else(|| sat("total_pj"))?;
    let delay_cycles = (u128::from(w.cycles_per_hop) * u128::from(cost.distance))
        .checked_add(u128::from(w.cycles_per_op) * u128::from(cost.depth))
        .ok_or_else(|| sat("delay_cycles"))?;
    let edp = total_pj.checked_mul(delay_cycles).ok_or_else(|| sat("edp"))?;
    Ok(ProfiledCost {
        profile: name,
        raw: cost,
        hop_pj,
        op_pj,
        occupancy_pj,
        total_pj,
        delay_cycles,
        edp,
    })
}

/// The paper's exact metrics as a (trivial) profile: total pJ is the raw
/// `energy` (hops) and delay is the raw `distance` (critical-path wire
/// latency), so charging through `ModelExact` reproduces today's numbers
/// bit-for-bit — and `raw` carries the whole tuple regardless.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModelExact;

impl CostProfile for ModelExact {
    fn name(&self) -> &'static str {
        "model-exact"
    }
    fn weights(&self) -> ProfileWeights {
        ProfileWeights {
            pj_per_hop: 1,
            pj_per_op: 0,
            pj_per_word_hop: 0,
            cycles_per_hop: 1,
            cycles_per_op: 0,
        }
    }
}

/// A wafer-scale-engine-style fabric: on-wafer hops are cheap and uniform,
/// PE ops cost a couple of pJ, and word residency is billed at hop parity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WseLike;

impl CostProfile for WseLike {
    fn name(&self) -> &'static str {
        "wse-like"
    }
    fn weights(&self) -> ProfileWeights {
        ProfileWeights {
            pj_per_hop: 1,
            pj_per_op: 2,
            pj_per_word_hop: 1,
            cycles_per_hop: 1,
            cycles_per_op: 1,
        }
    }
}

/// A systolic-array-style machine: neighbor links and MACs are cheap, but
/// keeping a word resident (the register/FIFO fabric) dominates the bill.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SystolicLike;

impl CostProfile for SystolicLike {
    fn name(&self) -> &'static str {
        "systolic-like"
    }
    fn weights(&self) -> ProfileWeights {
        ProfileWeights {
            pj_per_hop: 2,
            pj_per_op: 1,
            pj_per_word_hop: 3,
            cycles_per_hop: 1,
            cycles_per_op: 1,
        }
    }
}

/// A SIMT-style machine: every hop pays a memory-hierarchy premium (and two
/// cycles of latency), ops are moderately expensive, residency is cheap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimtLike;

impl CostProfile for SimtLike {
    fn name(&self) -> &'static str {
        "simt-like"
    }
    fn weights(&self) -> ProfileWeights {
        ProfileWeights {
            pj_per_hop: 6,
            pj_per_op: 4,
            pj_per_word_hop: 2,
            cycles_per_hop: 2,
            cycles_per_op: 1,
        }
    }
}

/// Every built-in profile, in registry order (`model-exact` first — the
/// default).
pub fn builtin_profiles() -> &'static [&'static dyn CostProfile] {
    &[&ModelExact, &WseLike, &SystolicLike, &SimtLike]
}

/// Resolves a built-in profile by its stable name.
///
/// The error is the typed usage error the CLI and jobspec parsers surface
/// verbatim (exit code 2): it lists the known names.
pub fn profile_by_name(name: &str) -> Result<&'static dyn CostProfile, ProfileError> {
    builtin_profiles()
        .iter()
        .copied()
        .find(|p| p.name() == name)
        .ok_or_else(|| ProfileError::Unknown { name: name.to_string() })
}

/// The machine's profile slot: a `Default`-able, `Debug`-gable handle around
/// the trait object so [`crate::Machine`] keeps its derives.
#[derive(Clone, Copy)]
pub struct ProfileHandle(pub &'static dyn CostProfile);

impl Default for ProfileHandle {
    fn default() -> Self {
        ProfileHandle(&ModelExact)
    }
}

impl fmt::Debug for ProfileHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProfileHandle({})", self.0.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic counter fuzzer (the crate deliberately has no
    /// dependencies, so no shared property harness here): splitmix64.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn random_cost(state: &mut u64, cap: u64) -> Cost {
        Cost {
            energy: mix(state) % cap,
            depth: mix(state) % cap,
            distance: mix(state) % cap,
            messages: mix(state) % cap,
        }
    }

    #[test]
    fn model_exact_round_trips_the_raw_cost_bit_identically() {
        let mut state = 1u64;
        for _ in 0..200 {
            let c = random_cost(&mut state, u64::MAX);
            let p = ModelExact.charge(c).expect("unit weights cannot saturate");
            assert_eq!(p.raw, c, "raw tuple survives verbatim");
            assert_eq!(p.total_pj, u128::from(c.energy), "total pJ is the hop count");
            assert_eq!(p.delay_cycles, u128::from(c.distance), "delay is the distance watermark");
            assert_eq!(p.edp, u128::from(c.energy) * u128::from(c.distance));
            assert_eq!(p.op_pj, 0);
            assert_eq!(p.occupancy_pj, 0);
        }
    }

    #[test]
    fn energy_components_are_linear_in_the_summed_counters() {
        // Charging a batch equals summing per-item charges, for every
        // built-in profile: the pJ components are linear in `energy` and
        // `messages`. (Depth/distance are watermarks — maxima — so the
        // delay side is deliberately excluded from this law.)
        let mut state = 7u64;
        for profile in builtin_profiles() {
            for _ in 0..100 {
                let a = random_cost(&mut state, 1 << 40);
                let b = random_cost(&mut state, 1 << 40);
                let sum = Cost {
                    energy: a.energy + b.energy,
                    messages: a.messages + b.messages,
                    depth: a.depth.max(b.depth),
                    distance: a.distance.max(b.distance),
                };
                let (pa, pb, ps) = (
                    profile.charge(a).unwrap(),
                    profile.charge(b).unwrap(),
                    profile.charge(sum).unwrap(),
                );
                assert_eq!(ps.hop_pj, pa.hop_pj + pb.hop_pj, "{}", profile.name());
                assert_eq!(ps.op_pj, pa.op_pj + pb.op_pj, "{}", profile.name());
                assert_eq!(
                    ps.occupancy_pj,
                    pa.occupancy_pj + pb.occupancy_pj,
                    "{}",
                    profile.name()
                );
                assert_eq!(ps.total_pj, pa.total_pj + pb.total_pj, "{}", profile.name());
            }
        }
    }

    #[test]
    fn builtin_weights_cannot_saturate_on_any_u64_counters() {
        // The built-in constants are ≤ 6; even all-u64::MAX counters stay
        // far inside u128 on the pJ and cycle sides. (EDP *can* exceed u128
        // for adversarial counters near 2^64 — that is the documented
        // saturation case, typed below — but no real run gets within 2^40
        // of it.)
        let c = Cost {
            energy: u64::MAX >> 20,
            depth: u64::MAX >> 20,
            distance: u64::MAX >> 20,
            messages: u64::MAX >> 20,
        };
        for p in builtin_profiles() {
            p.charge(c).expect("built-ins must charge any realistic run");
        }
    }

    /// An adversarial profile for the saturation tests.
    #[derive(Debug)]
    struct Extreme(ProfileWeights);
    impl CostProfile for Extreme {
        fn name(&self) -> &'static str {
            "extreme"
        }
        fn weights(&self) -> ProfileWeights {
            self.0
        }
    }

    #[test]
    fn saturation_is_a_typed_error_not_a_wrap() {
        let full = Cost {
            energy: u64::MAX,
            depth: u64::MAX,
            distance: u64::MAX,
            messages: u64::MAX,
        };
        // occupancy: weight × (energy + messages) > u128::MAX.
        let e = Extreme(ProfileWeights {
            pj_per_hop: 0,
            pj_per_op: 0,
            pj_per_word_hop: u64::MAX,
            cycles_per_hop: 0,
            cycles_per_op: 0,
        });
        let err = e.charge(full).unwrap_err();
        assert_eq!(err, ProfileError::Saturated { profile: "extreme", component: "occupancy_pj" });
        assert_eq!(err.exit_code(), 7);
        assert!(format!("{err}").contains("saturated"));

        // total: three near-max components cannot fit in one u128.
        let e = Extreme(ProfileWeights {
            pj_per_hop: u64::MAX,
            pj_per_op: u64::MAX,
            pj_per_word_hop: 0,
            cycles_per_hop: 0,
            cycles_per_op: 0,
        });
        assert_eq!(
            e.charge(full).unwrap_err(),
            ProfileError::Saturated { profile: "extreme", component: "total_pj" }
        );

        // delay: two near-max cycle products overflow their sum.
        let e = Extreme(ProfileWeights {
            pj_per_hop: 0,
            pj_per_op: 0,
            pj_per_word_hop: 0,
            cycles_per_hop: u64::MAX,
            cycles_per_op: u64::MAX,
        });
        assert_eq!(
            e.charge(full).unwrap_err(),
            ProfileError::Saturated { profile: "extreme", component: "delay_cycles" }
        );

        // EDP: both sides representable, their product not.
        let e = Extreme(ProfileWeights {
            pj_per_hop: u64::MAX,
            pj_per_op: 0,
            pj_per_word_hop: 0,
            cycles_per_hop: u64::MAX,
            cycles_per_op: 0,
        });
        assert_eq!(
            e.charge(full).unwrap_err(),
            ProfileError::Saturated { profile: "extreme", component: "edp" }
        );
    }

    #[test]
    fn registry_resolves_every_builtin_and_rejects_strangers() {
        for p in builtin_profiles() {
            let found = profile_by_name(p.name()).expect("registered");
            assert_eq!(found.name(), p.name());
            assert_eq!(found.weights(), p.weights());
        }
        let err = profile_by_name("joules-per-furlong").unwrap_err();
        assert_eq!(err.exit_code(), 2, "unknown profile is a usage error");
        let msg = format!("{err}");
        assert!(msg.contains("joules-per-furlong"), "{msg}");
        assert!(msg.contains("model-exact") && msg.contains("simt-like"), "{msg}");
    }
}
