//! Optional per-PE resident-word metering.
//!
//! The Spatial Computer Model gives every PE only `O(1)` memory. The meter
//! lets tests verify that an algorithm's peak residency per PE stays bounded
//! by a small constant on concrete instances. It is opt-in because the
//! bookkeeping costs a counter update per delivery, which the uninstrumented
//! fast path avoids entirely.
//!
//! Two storage strategies back the counters:
//!
//! * **flat** — when the run's grid extent is known up front (a
//!   [`crate::ModelGuard`] with an extent, or
//!   [`MemMeter::with_extent`] directly), counts live in a dense `Vec`
//!   indexed by row-major position, so `store`/`free` are an index and an
//!   add — no hashing on the hot path;
//! * **hashed** — without an extent the meter falls back to a
//!   `HashMap<Coord, u32>` over touched PEs, and a flat meter spills any
//!   traffic *outside* its extent into the same map, so metering never
//!   loses counts even for out-of-bounds deliveries (which the guard layer
//!   reports separately).

use std::collections::HashMap;

use crate::coord::Coord;
use crate::grid::SubGrid;

/// Flat meters refuse extents larger than this many PEs (256 MiB of `u32`
/// counters) and fall back to the hash map instead.
const FLAT_CAP: u64 = 1 << 26;

/// Tracks how many tracked words are resident at each touched PE.
#[derive(Debug, Default)]
pub struct MemMeter {
    /// Dense counters over `extent`, when bounded.
    flat: Option<FlatCounts>,
    /// Counters for PEs outside the flat extent (all PEs when unbounded).
    current: HashMap<Coord, u32>,
    peak: u32,
    peak_loc: Option<Coord>,
}

#[derive(Debug)]
struct FlatCounts {
    extent: SubGrid,
    counts: Vec<u32>,
}

impl MemMeter {
    /// Creates an empty, unbounded (hash-backed) meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a meter with dense counters over `extent` (hash fallback for
    /// any traffic outside it). Counts and peaks are identical to the
    /// unbounded meter's; only the bookkeeping cost differs.
    pub fn with_extent(extent: SubGrid) -> Self {
        if extent.len() > FLAT_CAP {
            return Self::new();
        }
        MemMeter {
            flat: Some(FlatCounts { extent, counts: vec![0; extent.len() as usize] }),
            ..Self::default()
        }
    }

    /// The extent backing the dense counters, if bounded.
    pub fn extent(&self) -> Option<SubGrid> {
        self.flat.as_ref().map(|f| f.extent)
    }

    /// Registers a word becoming resident at `loc`.
    pub fn store(&mut self, loc: Coord) {
        let e = match &mut self.flat {
            Some(f) if f.extent.contains(loc) => &mut f.counts[f.extent.rm_index(loc) as usize],
            _ => self.current.entry(loc).or_insert(0),
        };
        *e += 1;
        if *e > self.peak {
            self.peak = *e;
            self.peak_loc = Some(loc);
        }
    }

    /// Registers a word leaving `loc` (moved or discarded). Saturates at
    /// zero: local combinators (`map`, `zip_with`, `duplicate`) are free in
    /// the model and not machine-visible, so the meter counts *deliveries
    /// minus releases*. This is always an upper bound on true residency,
    /// which is what the O(1)-memory assertions need.
    pub fn free(&mut self, loc: Coord) {
        match &mut self.flat {
            Some(f) if f.extent.contains(loc) => {
                let e = &mut f.counts[f.extent.rm_index(loc) as usize];
                *e = e.saturating_sub(1);
            }
            _ => {
                if let Some(e) = self.current.get_mut(&loc) {
                    *e = e.saturating_sub(1);
                }
            }
        }
    }

    /// Highest simultaneous residency observed at any single PE.
    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// PE at which the peak occurred, if any word was ever stored.
    pub fn peak_loc(&self) -> Option<Coord> {
        self.peak_loc
    }

    /// Current residency at `loc`.
    pub fn resident(&self, loc: Coord) -> u32 {
        match &self.flat {
            Some(f) if f.extent.contains(loc) => f.counts[f.extent.rm_index(loc) as usize],
            _ => self.current.get(&loc).copied().unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = MemMeter::new();
        let p = Coord::new(1, 2);
        m.store(p);
        m.store(p);
        m.free(p);
        m.store(Coord::ORIGIN);
        assert_eq!(m.peak(), 2);
        assert_eq!(m.peak_loc(), Some(p));
        assert_eq!(m.resident(p), 1);
        assert_eq!(m.resident(Coord::ORIGIN), 1);
    }

    #[test]
    fn freeing_unstored_word_saturates() {
        let mut m = MemMeter::new();
        m.free(Coord::ORIGIN);
        assert_eq!(m.resident(Coord::ORIGIN), 0);
        m.store(Coord::ORIGIN);
        m.free(Coord::ORIGIN);
        m.free(Coord::ORIGIN);
        assert_eq!(m.resident(Coord::ORIGIN), 0);
        assert_eq!(m.peak(), 1);
    }

    #[test]
    fn flat_meter_agrees_with_hashed_meter() {
        // Drive both backends through the same event stream, including
        // traffic outside the flat extent, and demand identical observations.
        let extent = SubGrid::new(Coord::new(-2, -2), 8, 8);
        let mut flat = MemMeter::with_extent(extent);
        let mut hashed = MemMeter::new();
        assert_eq!(flat.extent(), Some(extent));
        let events: Vec<(i64, i64, bool)> =
            (0..200).map(|i: i64| ((i * 7) % 11 - 3, (i * 13) % 9 - 3, i % 3 != 0)).collect();
        for &(r, c, is_store) in &events {
            let loc = Coord::new(r, c);
            if is_store {
                flat.store(loc);
                hashed.store(loc);
            } else {
                flat.free(loc);
                hashed.free(loc);
            }
            assert_eq!(flat.resident(loc), hashed.resident(loc));
        }
        assert_eq!(flat.peak(), hashed.peak());
        assert_eq!(flat.peak_loc(), hashed.peak_loc());
        for &(r, c, _) in &events {
            assert_eq!(flat.resident(Coord::new(r, c)), hashed.resident(Coord::new(r, c)));
        }
    }

    #[test]
    fn oversized_extent_falls_back_to_hashing() {
        let huge = SubGrid::new(Coord::ORIGIN, 1 << 14, 1 << 14);
        let m = MemMeter::with_extent(huge);
        assert_eq!(m.extent(), None, "a {FLAT_CAP}+-PE extent must not allocate densely");
    }
}
