//! Optional per-PE resident-word metering.
//!
//! The Spatial Computer Model gives every PE only `O(1)` memory. The meter
//! lets tests verify that an algorithm's peak residency per PE stays bounded
//! by a small constant on concrete instances. It is opt-in because the
//! bookkeeping uses a hash map over touched PEs, which would dominate the
//! simulator's runtime at large scales.

use std::collections::HashMap;

use crate::coord::Coord;

/// Tracks how many tracked words are resident at each touched PE.
#[derive(Debug, Default)]
pub struct MemMeter {
    current: HashMap<Coord, u32>,
    peak: u32,
    peak_loc: Option<Coord>,
}

impl MemMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a word becoming resident at `loc`.
    pub fn store(&mut self, loc: Coord) {
        let e = self.current.entry(loc).or_insert(0);
        *e += 1;
        if *e > self.peak {
            self.peak = *e;
            self.peak_loc = Some(loc);
        }
    }

    /// Registers a word leaving `loc` (moved or discarded). Saturates at
    /// zero: local combinators (`map`, `zip_with`, `duplicate`) are free in
    /// the model and not machine-visible, so the meter counts *deliveries
    /// minus releases*. This is always an upper bound on true residency,
    /// which is what the O(1)-memory assertions need.
    pub fn free(&mut self, loc: Coord) {
        if let Some(e) = self.current.get_mut(&loc) {
            *e = e.saturating_sub(1);
        }
    }

    /// Highest simultaneous residency observed at any single PE.
    pub fn peak(&self) -> u32 {
        self.peak
    }

    /// PE at which the peak occurred, if any word was ever stored.
    pub fn peak_loc(&self) -> Option<Coord> {
        self.peak_loc
    }

    /// Current residency at `loc`.
    pub fn resident(&self, loc: Coord) -> u32 {
        self.current.get(&loc).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m = MemMeter::new();
        let p = Coord::new(1, 2);
        m.store(p);
        m.store(p);
        m.free(p);
        m.store(Coord::ORIGIN);
        assert_eq!(m.peak(), 2);
        assert_eq!(m.peak_loc(), Some(p));
        assert_eq!(m.resident(p), 1);
        assert_eq!(m.resident(Coord::ORIGIN), 1);
    }

    #[test]
    fn freeing_unstored_word_saturates() {
        let mut m = MemMeter::new();
        m.free(Coord::ORIGIN);
        assert_eq!(m.resident(Coord::ORIGIN), 0);
        m.store(Coord::ORIGIN);
        m.free(Coord::ORIGIN);
        m.free(Coord::ORIGIN);
        assert_eq!(m.resident(Coord::ORIGIN), 0);
        assert_eq!(m.peak(), 1);
    }
}
