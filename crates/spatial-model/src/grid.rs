//! Rectangular processor subgrids.

use crate::coord::Coord;
use crate::zorder;

/// An `h × w` rectangle of PEs anchored at `origin` (its top-left corner).
///
/// Subgrids are the unit of recursion for the paper's algorithms: broadcasts
/// recurse over quadrants, sorting recurses over Z-order quarters, and the
/// PRAM simulation places processors and memory on adjacent subgrids.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct SubGrid {
    /// Top-left corner.
    pub origin: Coord,
    /// Number of rows.
    pub h: u64,
    /// Number of columns.
    pub w: u64,
}

impl SubGrid {
    /// Creates an `h × w` subgrid anchored at `origin`.
    pub fn new(origin: Coord, h: u64, w: u64) -> Self {
        assert!(h > 0 && w > 0, "subgrid must be non-empty");
        SubGrid { origin, h, w }
    }

    /// A square `side × side` subgrid anchored at `origin`.
    pub fn square(origin: Coord, side: u64) -> Self {
        SubGrid::new(origin, side, side)
    }

    /// The square subgrid holding `n` cells in Z-order at the origin, i.e.
    /// the canonical input layout (`n` must be a power of four).
    pub fn input_square(n: u64) -> Self {
        assert!(zorder::is_power_of_four(n), "input size must be a power of 4 (paper §III)");
        let side = 1u64 << (n.trailing_zeros() / 2);
        SubGrid::square(Coord::ORIGIN, side)
    }

    /// Total number of PEs.
    #[inline]
    pub fn len(&self) -> u64 {
        self.h * self.w
    }

    /// Whether the subgrid holds zero PEs (never true by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the subgrid is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.h == self.w
    }

    /// The coordinate at local position `(i, j)`.
    #[inline]
    pub fn at(&self, i: u64, j: u64) -> Coord {
        debug_assert!(i < self.h && j < self.w, "({i},{j}) outside {self:?}");
        self.origin.offset(i as i64, j as i64)
    }

    /// The coordinate of local row-major index `idx`.
    #[inline]
    pub fn rm_coord(&self, idx: u64) -> Coord {
        debug_assert!(idx < self.len());
        self.at(idx / self.w, idx % self.w)
    }

    /// The local row-major index of `c` (must be contained).
    #[inline]
    pub fn rm_index(&self, c: Coord) -> u64 {
        debug_assert!(self.contains(c));
        (c.row - self.origin.row) as u64 * self.w + (c.col - self.origin.col) as u64
    }

    /// The coordinate of local Z-order index `idx` (square, power-of-two side).
    #[inline]
    pub fn z_coord(&self, idx: u64) -> Coord {
        debug_assert!(self.is_square() && self.w.is_power_of_two());
        debug_assert!(idx < self.len());
        let (r, c) = zorder::decode(idx);
        self.at(r, c)
    }

    /// The local Z-order index of `c` (square, power-of-two side).
    #[inline]
    pub fn z_index(&self, c: Coord) -> u64 {
        debug_assert!(self.is_square() && self.w.is_power_of_two());
        debug_assert!(self.contains(c));
        zorder::encode((c.row - self.origin.row) as u64, (c.col - self.origin.col) as u64)
    }

    /// Whether `c` lies inside the subgrid.
    #[inline]
    pub fn contains(&self, c: Coord) -> bool {
        c.row >= self.origin.row
            && c.col >= self.origin.col
            && c.row < self.origin.row + self.h as i64
            && c.col < self.origin.col + self.w as i64
    }

    /// The four quadrants in Z-order (top-left, top-right, bottom-left,
    /// bottom-right). Requires even `h` and `w`.
    pub fn quadrants(&self) -> [SubGrid; 4] {
        assert!(
            self.h.is_multiple_of(2) && self.w.is_multiple_of(2),
            "quadrants need even dimensions"
        );
        let (hh, hw) = (self.h / 2, self.w / 2);
        [
            SubGrid::new(self.origin, hh, hw),
            SubGrid::new(self.origin.offset(0, hw as i64), hh, hw),
            SubGrid::new(self.origin.offset(hh as i64, 0), hh, hw),
            SubGrid::new(self.origin.offset(hh as i64, hw as i64), hh, hw),
        ]
    }

    /// Manhattan diameter of the subgrid (corner to opposite corner).
    #[inline]
    pub fn diameter(&self) -> u64 {
        (self.h - 1) + (self.w - 1)
    }

    /// Iterates all coordinates in row-major order.
    pub fn iter_rm(&self) -> impl Iterator<Item = Coord> + '_ {
        (0..self.len()).map(move |i| self.rm_coord(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_roundtrip() {
        let g = SubGrid::new(Coord::new(2, 3), 4, 5);
        for idx in 0..g.len() {
            let c = g.rm_coord(idx);
            assert!(g.contains(c));
            assert_eq!(g.rm_index(c), idx);
        }
    }

    #[test]
    fn z_order_roundtrip_on_square() {
        let g = SubGrid::square(Coord::new(-8, 16), 8);
        for idx in 0..g.len() {
            let c = g.z_coord(idx);
            assert!(g.contains(c));
            assert_eq!(g.z_index(c), idx);
        }
    }

    #[test]
    fn quadrants_partition_the_grid() {
        let g = SubGrid::square(Coord::new(0, 0), 4);
        let qs = g.quadrants();
        let mut seen = std::collections::HashSet::new();
        for q in &qs {
            assert_eq!(q.len(), 4);
            for c in q.iter_rm() {
                assert!(g.contains(c));
                assert!(seen.insert(c), "quadrants must not overlap");
            }
        }
        assert_eq!(seen.len() as u64, g.len());
    }

    #[test]
    fn quadrant_order_is_z_order() {
        let g = SubGrid::square(Coord::ORIGIN, 4);
        let qs = g.quadrants();
        assert_eq!(qs[0].origin, Coord::new(0, 0));
        assert_eq!(qs[1].origin, Coord::new(0, 2));
        assert_eq!(qs[2].origin, Coord::new(2, 0));
        assert_eq!(qs[3].origin, Coord::new(2, 2));
    }

    #[test]
    fn input_square_has_sqrt_n_side() {
        let g = SubGrid::input_square(64);
        assert_eq!(g.h, 8);
        assert_eq!(g.w, 8);
        assert_eq!(g.origin, Coord::ORIGIN);
    }

    #[test]
    #[should_panic(expected = "power of 4")]
    fn input_square_rejects_non_power_of_four() {
        let _ = SubGrid::input_square(8);
    }

    #[test]
    fn diameter_of_rectangle() {
        assert_eq!(SubGrid::new(Coord::ORIGIN, 3, 5).diameter(), 6);
        assert_eq!(SubGrid::square(Coord::ORIGIN, 1).diameter(), 0);
    }
}
