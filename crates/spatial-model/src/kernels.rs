//! Closed-form cost kernels for the regular collective DAGs of the §V
//! primitives.
//!
//! The All-Pairs Sort (paper §V-C(a)) explodes `m` elements onto an
//! `bm × bm` scratch square and runs three perfectly regular quadtree
//! collectives over it: replicate the staged array into every hosting block,
//! broadcast each block's corner element over its block, and sum-reduce the
//! comparison indicators back onto the corners. Every message in those three
//! phases crosses a displacement determined solely by a base-4 digit of its
//! block index or cell offset — never by the data — so the aggregate energy,
//! the message count, and every output's critical [`Path`] satisfy closed
//! forms over digit decompositions. [`Machine::allpairs_square_finish`]
//! charges exactly what the open-coded level-order phases in
//! `sorting::allpairs` charge, in `O(bm·log bm)` work instead of `O(m·bm)`
//! materialized deliveries.
//!
//! Why the closed forms are exact (and not just asymptotic):
//!
//! * **Energy / messages.** Aligned Z-blocks keep corresponding cells at one
//!   common displacement per quadtree edge (`decode` is additive across
//!   disjoint bit ranges), so each phase is a sequence of uniform batches.
//!   Their true sums are charged through the same saturating accumulator the
//!   batch API uses; saturating addition of non-negative terms is
//!   grouping-independent (see the saturation note in [`crate::batch`]), so
//!   the final counter is bit-identical to the per-item loop's.
//! * **Paths.** `Path::step` adds constants and `Path::join` is an
//!   element-wise max, so the fold over the reduce tree equals a per-leaf
//!   maximum of `leaf path + route constants`, which separates into terms
//!   depending only on the staged paths, the corner paths, and digit
//!   statistics of the block index.
//! * **Watermarks.** Every intermediate delivery's path is component-wise
//!   dominated by its block's final reduced path, so max-merging only the
//!   final paths leaves the machine's depth/distance watermarks identical.

use crate::batch::ShardAcc;
use crate::machine::Machine;
use crate::path::Path;
use crate::value::Tracked;
use crate::zorder;

/// Manhattan distance from the origin to `decode(z)`.
#[inline]
fn dist1(z: u64) -> u64 {
    let (r, c) = zorder::decode(z);
    r + c
}

/// Digit statistics of a Z offset: `nz` = number of nonzero base-4 digits
/// (messages on the quadtree route from 0 to `o`), `route` = total Manhattan
/// distance of that route, `edge` = distance of the final edge (the least
/// significant nonzero digit), 0 for `o == 0`.
#[inline]
fn digit_stats(o: u64) -> (u64, u64, u64) {
    let mut nz = 0u64;
    let mut route = 0u64;
    let mut x = o;
    let mut pos = 0u32;
    while x > 0 {
        let d = x & 3;
        if d != 0 {
            nz += 1;
            route += dist1(d << pos);
        }
        x >>= 2;
        pos += 2;
    }
    let edge = if o == 0 {
        0
    } else {
        let tz = o.trailing_zeros() & !1;
        dist1(o & (3 << tz))
    };
    (nz, route, edge)
}

impl Machine {
    /// Charges the replicate + broadcast + compare + reduce phases of an
    /// All-Pairs rank on a bare machine in closed form and builds the ranked
    /// outputs, bit-identically to the open-coded level-order phases.
    ///
    /// `staged[j]` is the path of array element `j` staged at cell
    /// `scratch_lo + j`; `corners[i]` is element `i`'s copy at the corner of
    /// block `i` (cell `scratch_lo + i·bm`); `ranks[i]` is element `i`'s rank
    /// under the total order, computed locally by the caller (the DAG's cost
    /// is data-independent, so the simulator may resolve comparisons host-
    /// side). Returns `(element, rank)` at each corner with the exact
    /// critical path the materialized simulation produces.
    ///
    /// # Panics
    /// Panics if the machine is instrumented (callers must use the
    /// materializing path so instruments observe the per-item event stream),
    /// or on inconsistent lengths / `bm` not a power of four / `m < 2`.
    pub fn allpairs_square_finish<T: Clone>(
        &mut self,
        staged: &[Path],
        corners: Vec<Tracked<T>>,
        ranks: &[u64],
        scratch_lo: u64,
        bm: u64,
    ) -> Vec<Tracked<(T, u64)>> {
        assert!(self.is_bare(), "closed-form kernels require an uninstrumented machine");
        let m = staged.len() as u64;
        assert!(m >= 2, "closed-form all-pairs needs at least two elements");
        assert!(corners.len() as u64 == m && ranks.len() as u64 == m, "inconsistent lengths");
        let lvls = (bm.trailing_zeros() as u64) / 2; // bm = 4^lvls
        assert!(bm >= 4 && bm == 1 << (2 * lvls), "bm must be a power of four >= 4");
        assert!(m <= bm, "more elements than blocks");
        let scale = 1u64 << lvls; // decode(x·bm) = decode(x)·2^lvls per axis

        // One pass over the offsets accumulates every digit statistic the
        // three phases need.
        let mut sum_edge_in: u128 = 0; // Σ_{o=1}^{bm-1} edge(o)   (broadcast = reduce)
        let mut sum_edge_blk: u128 = 0; // Σ_{b=1}^{m-1} edge(b)    (replication, unscaled)
        let mut max_route = 0u64; // max_o route(o)
        let mut mp_depth = 0u64; // max_{o<m} staged[o].depth + nz(o)
        let mut mp_dist = 0u64; // max_{o<m} staged[o].distance + route(o)
        let mut blk: Vec<(u64, u64)> = Vec::with_capacity(m as usize); // (nz, route) per block
        for o in 0..bm {
            let (nz, route, edge) = digit_stats(o);
            if o > 0 {
                sum_edge_in += u128::from(edge);
            }
            max_route = max_route.max(route);
            if o < m {
                let p = staged[o as usize];
                mp_depth = mp_depth.max(p.depth + nz);
                mp_dist = mp_dist.max(p.distance + route);
                if o > 0 {
                    sum_edge_blk += u128::from(edge);
                }
                blk.push((nz, route));
            }
        }

        // Phase A (replicate into blocks): every block b ≥ 1 receives the
        // m-element array copy over its single incoming tree edge.
        self.add_energy_total(u128::from(m) * sum_edge_blk * u128::from(scale));
        self.add_messages(m * (m - 1));
        // Phase B (per-block broadcast): each of the m blocks floods bm cells.
        self.add_energy_total(u128::from(m) * sum_edge_in);
        self.add_messages(m * (bm - 1));
        // Compare phase: local, free.
        // Phase D (per-block reduce): the mirror tree of phase B.
        self.add_energy_total(u128::from(m) * sum_edge_in);
        self.add_messages(m * (bm - 1));

        // Final reduced path at each corner, exact per the separation
        // argument in the module docs; watermark = max over those paths.
        let mut acc = ShardAcc::default();
        let out: Vec<Tracked<(T, u64)>> = corners
            .into_iter()
            .zip(ranks)
            .enumerate()
            .map(|(i, (corner, &rank))| {
                let (nz_i, route_i) = blk[i];
                let c = corner.path();
                let r = Path {
                    depth: (nz_i + mp_depth).max(c.depth + 2 * lvls),
                    distance: (route_i * scale + mp_dist).max(c.distance + 2 * max_route),
                };
                acc.observe(r);
                let (value, loc, _) = corner.into_parts();
                debug_assert_eq!(loc, zorder::coord_of(scratch_lo + i as u64 * bm));
                Tracked::raw((value, rank), loc, c.join(r))
            })
            .collect();
        self.absorb_watermarks(acc);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_stats_match_naive_routes() {
        for o in 0u64..256 {
            let mut nz = 0;
            let mut route = 0;
            let mut last_edge = 0;
            for pos in 0..4 {
                let d = (o >> (2 * pos)) & 3;
                if d != 0 {
                    nz += 1;
                    let e = dist1(d << (2 * pos));
                    route += e;
                    if last_edge == 0 {
                        last_edge = e; // least significant nonzero digit
                    }
                }
            }
            assert_eq!(digit_stats(o), (nz, route, last_edge), "o = {o}");
        }
    }

    #[test]
    fn closed_form_kernel_charges_identically_through_every_profile() {
        // `allpairs_square_finish` requires a *bare* machine — and a profile
        // is not an instrument, so a profiled machine still takes the
        // closed-form path and its profiled report equals charging the raw
        // closed-form counters directly.
        use crate::profile::builtin_profiles;

        let kernel_run = |m: &mut Machine| {
            let staged = vec![Path::ZERO; 4];
            let corners: Vec<Tracked<u64>> = (0..4u64)
                .map(|i| Tracked::raw(i, zorder::coord_of(i * 4), Path::ZERO))
                .collect();
            let out = m.allpairs_square_finish(&staged, corners, &[0, 1, 2, 3], 0, 4);
            assert_eq!(out.len(), 4);
        };
        let mut bare = Machine::new();
        kernel_run(&mut bare);
        let raw = bare.report();
        assert!(raw.messages > 0, "the kernel charges real traffic");
        for profile in builtin_profiles() {
            let mut m = Machine::with_profile(*profile);
            assert!(m.is_bare(), "profiled machines must keep the kernel path");
            kernel_run(&mut m);
            assert_eq!(m.report(), raw, "raw counters are profile-independent");
            assert_eq!(
                m.profiled_report().unwrap(),
                profile.charge(raw).unwrap(),
                "kernel charge equals charging the raw counters under {}",
                profile.name()
            );
        }
    }

    #[test]
    fn scale_law_matches_decode() {
        // decode(x · 4^L) = decode(x) · 2^L, the identity the block-level
        // distances rely on.
        for x in 1u64..64 {
            for l in 0..5u64 {
                let (r, c) = zorder::decode(x);
                let (rs, cs) = zorder::decode(x << (2 * l));
                assert_eq!((rs, cs), (r << l, c << l), "x={x} l={l}");
            }
        }
    }
}
