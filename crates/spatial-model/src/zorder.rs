//! The Z-order (Morton) space-filling curve.
//!
//! The paper stores arrays along the Z-order traversal of the grid: visit the
//! four quadrants in order, top two quadrants first (left to right), then the
//! bottom two (left to right), recursing inside each quadrant. That order
//! corresponds to interleaving the bits of the row index (more significant)
//! and column index (less significant).
//!
//! A key locality property used throughout (Observation 1): sending a message
//! along each edge of the Z-order curve of a `√n × √n` subgrid takes `O(n)`
//! energy, and a contiguous curve range of length `L` fits in a bounding box
//! of side `O(√L)`.

use crate::coord::Coord;

/// Spreads the low 32 bits of `x` so bit `k` moves to bit `2k`.
#[inline]
fn spread(x: u64) -> u64 {
    let mut x = x & 0xFFFF_FFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`spread`]: collects bits at even positions back together.
#[inline]
fn compact(x: u64) -> u64 {
    let mut x = x & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x
}

/// Z-order index of the cell `(row, col)` (both must be non-negative and fit
/// in 32 bits). Row bits are placed at the more significant interleave
/// positions so that the top quadrants precede the bottom quadrants.
///
/// ```
/// use spatial_model::zorder::{decode, encode};
/// assert_eq!(encode(0, 0), 0);
/// assert_eq!(encode(0, 1), 1);
/// assert_eq!(encode(1, 0), 2); // top quadrants first, then bottom
/// assert_eq!(decode(encode(123, 456)), (123, 456));
/// ```
#[inline]
pub fn encode(row: u64, col: u64) -> u64 {
    debug_assert!(row < (1 << 32) && col < (1 << 32));
    (spread(row) << 1) | spread(col)
}

/// Inverse of [`encode`].
#[inline]
pub fn decode(z: u64) -> (u64, u64) {
    (compact(z >> 1), compact(z))
}

/// The grid coordinate of global Z-order index `z` (relative to the origin).
#[inline]
pub fn coord_of(z: u64) -> Coord {
    let (r, c) = decode(z);
    Coord::new(r as i64, c as i64)
}

/// The global Z-order index of a coordinate in the non-negative quadrant.
#[inline]
pub fn index_of(c: Coord) -> u64 {
    debug_assert!(c.row >= 0 && c.col >= 0, "Z-order indices cover the non-negative quadrant");
    encode(c.row as u64, c.col as u64)
}

/// Bounding box `(min_row, min_col, max_row, max_col)` of the Z-curve range
/// `[lo, hi)`. Panics if the range is empty.
pub fn bounding_box(lo: u64, hi: u64) -> (u64, u64, u64, u64) {
    assert!(lo < hi, "empty Z range");
    let mut bb = (u64::MAX, u64::MAX, 0u64, 0u64);
    // Decompose the range into maximal aligned squares; the corners of each
    // aligned square are cheap to compute from its first index.
    for (start, len) in aligned_blocks(lo, hi) {
        let (r0, c0) = decode(start);
        let side = (len as f64).sqrt() as u64;
        debug_assert_eq!(side * side, len);
        bb.0 = bb.0.min(r0);
        bb.1 = bb.1.min(c0);
        bb.2 = bb.2.max(r0 + side - 1);
        bb.3 = bb.3.max(c0 + side - 1);
    }
    bb
}

/// Side length of the smallest square covering the bounding box of `[lo, hi)`.
pub fn range_diameter_side(lo: u64, hi: u64) -> u64 {
    let (r0, c0, r1, c1) = bounding_box(lo, hi);
    (r1 - r0 + 1).max(c1 - c0 + 1)
}

/// Decomposes `[lo, hi)` into maximal 4-power aligned blocks
/// `(start, len)` with `len` a power of four and `start % len == 0`.
///
/// Any Z-range of length `L` decomposes into `O(log L)` such blocks, each of
/// which is an axis-aligned square on the grid — the structural fact behind
/// the `O(√L)` diameter of Z-segments.
pub fn aligned_blocks(lo: u64, hi: u64) -> Vec<(u64, u64)> {
    let mut blocks = Vec::new();
    let mut cur = lo;
    while cur < hi {
        // Largest power-of-4 block aligned at `cur` and fitting in the range.
        let align = if cur == 0 { u64::MAX } else { 1u64 << cur.trailing_zeros() };
        let mut len = 1u64;
        while len * 4 <= align.min(hi - cur) && cur.is_multiple_of(len * 4) && cur + len * 4 <= hi {
            len *= 4;
        }
        // Round down to a power of four (alignment may give a power of two).
        while !is_power_of_four(len) {
            len /= 2;
        }
        blocks.push((cur, len));
        cur += len;
    }
    blocks
}

/// Whether `x` is a power of four.
#[inline]
pub fn is_power_of_four(x: u64) -> bool {
    x.is_power_of_two() && x.trailing_zeros().is_multiple_of(2)
}

/// Rounds `n` up to the next power of four (`next_power_of_four(0) == 1`).
#[inline]
pub fn next_power_of_four(n: u64) -> u64 {
    let mut p = 1u64;
    while p < n {
        p *= 4;
    }
    p
}

/// The coordinates of the Z-curve range `[lo, hi)` in curve order.
pub fn coords(lo: u64, hi: u64) -> impl Iterator<Item = Coord> {
    (lo..hi).map(coord_of)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sixteen_indices_follow_paper_order() {
        // On a 4×4 grid, the paper's Z-order visits the top-left 2×2 quadrant
        // first (itself in Z-order), then top-right, bottom-left, bottom-right.
        let expect = [
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1), // top-left quadrant
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3), // top-right quadrant
            (2, 0),
            (2, 1),
            (3, 0),
            (3, 1), // bottom-left quadrant
            (2, 2),
            (2, 3),
            (3, 2),
            (3, 3), // bottom-right quadrant
        ];
        for (z, &(r, c)) in expect.iter().enumerate() {
            assert_eq!(decode(z as u64), (r, c), "z = {z}");
            assert_eq!(encode(r, c), z as u64);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for z in 0..4096u64 {
            let (r, c) = decode(z);
            assert_eq!(encode(r, c), z);
        }
        for &(r, c) in &[(0u64, 0u64), (123, 456), (1 << 20, 1 << 19), ((1 << 32) - 1, 17)] {
            assert_eq!(decode(encode(r, c)), (r, c));
        }
    }

    #[test]
    fn consecutive_z_indices_are_close_on_average() {
        // Observation 1: walking the whole curve of an n-cell square costs O(n).
        let n = 4096u64; // 64×64
        let total: u64 = (1..n).map(|z| coord_of(z - 1).manhattan(coord_of(z))).sum();
        assert!(total < 4 * n, "curve walk energy {total} should be O(n)");
    }

    #[test]
    fn aligned_blocks_cover_range_exactly() {
        for &(lo, hi) in &[(0u64, 16u64), (3, 97), (5, 6), (0, 1), (21, 85), (64, 80)] {
            let blocks = aligned_blocks(lo, hi);
            let mut cur = lo;
            for (s, l) in &blocks {
                assert_eq!(*s, cur);
                assert!(is_power_of_four(*l), "len {l} must be a power of 4");
                assert_eq!(s % l, 0, "block must be aligned");
                cur += l;
            }
            assert_eq!(cur, hi);
        }
    }

    #[test]
    fn range_diameter_is_order_sqrt_len() {
        // A Z-range of length L fits in a box of side O(√L).
        for &(lo, len) in &[(0u64, 256u64), (37, 200), (100, 1000), (1000, 24)] {
            let side = range_diameter_side(lo, lo + len);
            let bound = 4 * ((len as f64).sqrt().ceil() as u64 + 1);
            assert!(side <= bound, "side {side} exceeds O(√{len}) bound {bound}");
        }
    }

    #[test]
    fn power_of_four_helpers() {
        assert!(is_power_of_four(1));
        assert!(is_power_of_four(4));
        assert!(is_power_of_four(64));
        assert!(!is_power_of_four(2));
        assert!(!is_power_of_four(8));
        assert!(!is_power_of_four(0));
        assert_eq!(next_power_of_four(0), 1);
        assert_eq!(next_power_of_four(1), 1);
        assert_eq!(next_power_of_four(5), 16);
        assert_eq!(next_power_of_four(64), 64);
    }

    #[test]
    fn bounding_box_of_full_square() {
        assert_eq!(bounding_box(0, 64), (0, 0, 7, 7));
        assert_eq!(bounding_box(0, 4), (0, 0, 1, 1));
    }
}
