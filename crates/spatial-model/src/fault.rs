//! Seed-deterministic hardware fault injection.
//!
//! The cost bounds of the paper assume an idealized grid of always-working
//! PEs, but the hardware the model abstracts (wafer-scale engines, per "The
//! spatial computer", Gianinazzi et al.) ships with yield defects: dead PEs
//! and spare rows that traffic must route around. A [`FaultPlan`] describes
//! one such defect pattern, reproducibly derived from a `u64` seed:
//!
//! * **dead rows** — whole grid rows fused out (the Cerebras-style failure
//!   unit). The plan's [`FaultPlan::physical`] remap detours *around* them:
//!   logical row `r` maps to the `r`-th live physical row, so algorithms keep
//!   working unchanged while the extra Manhattan distance of every detoured
//!   message is charged to energy/distance (the fault-tolerance overhead is
//!   measured, not hidden — see [`crate::Machine::detour_energy`]);
//! * **dead PEs** — individual hard-dead elements that row redundancy does
//!   *not* cover. Addressing one is a [`crate::SpatialError::DeadPe`];
//! * **degraded rows** — live rows with slow links: every message whose
//!   bounding row interval touches a degraded row is charged one extra unit
//!   of distance per degraded row touched;
//! * **flaky messages** — transient (soft) faults: each message is corrupted
//!   independently with probability `flaky`, deterministically per
//!   `(seed, attempt)`. The simulator cannot flip bits inside arbitrary
//!   payload types, so a corruption is recorded as a *fault hit*
//!   ([`crate::Machine::fault_hits`]) — the recovery harness treats any hit
//!   as an end-to-end checksum failure and re-executes with the next attempt
//!   salt ([`FaultPlan::for_attempt`]), which re-rolls the per-message
//!   corruption stream while keeping the permanent defect pattern fixed.

use std::collections::BTreeSet;

use spatial_rng::Rng;

use crate::coord::Coord;
use crate::grid::SubGrid;

/// Stream salts so the independent random draws of one seed never collide.
const SALT_DEAD_ROWS: u64 = 0xDEAD_0001;
const SALT_DEAD_PES: u64 = 0xDEAD_0002;
const SALT_DEGRADED: u64 = 0xDEAD_0003;
const SALT_MESSAGES: u64 = 0xDEAD_0004;

/// A deterministic hardware-defect pattern (see the module docs).
///
/// Build one with [`FaultPlan::builder`]; activate it with
/// [`crate::Machine::enable_faults`]. All random draws are functions of the
/// builder seed alone, so two plans built with the same seed and the same
/// builder calls are identical, and fault runs are bit-reproducible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    attempt: u32,
    /// Sorted physical rows that are fused out entirely.
    dead_rows: Vec<i64>,
    /// Individual hard-dead physical PEs (not covered by row redundancy).
    dead_pes: BTreeSet<Coord>,
    /// Sorted physical rows with degraded (slow) links.
    degraded_rows: Vec<i64>,
    /// Per-message transient corruption probability, in `[0, 1]`.
    flaky_millis: u32,
}

impl FaultPlan {
    /// Starts building a plan whose random draws derive from `seed`.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            seed,
            dead_rows: BTreeSet::new(),
            dead_pes: BTreeSet::new(),
            degraded_rows: BTreeSet::new(),
            flaky_millis: 0,
        }
    }

    /// The seed the plan's random draws derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The retry-attempt salt (0 for a freshly built plan).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The same permanent defect pattern with the transient-fault stream
    /// re-salted for retry `attempt`. Dead rows, dead PEs and degraded rows
    /// are unchanged — re-executing does not repair the wafer — but the
    /// per-message corruption draws differ, deterministically per
    /// `(seed, attempt)`.
    pub fn for_attempt(&self, attempt: u32) -> FaultPlan {
        FaultPlan { attempt, ..self.clone() }
    }

    /// The sorted list of fused-out physical rows.
    pub fn dead_rows(&self) -> &[i64] {
        &self.dead_rows
    }

    /// The individual hard-dead physical PEs.
    pub fn dead_pes(&self) -> impl Iterator<Item = Coord> + '_ {
        self.dead_pes.iter().copied()
    }

    /// The sorted list of degraded (slow-link) physical rows.
    pub fn degraded_rows(&self) -> &[i64] {
        &self.degraded_rows
    }

    /// The per-message transient corruption probability.
    pub fn flaky(&self) -> f64 {
        f64::from(self.flaky_millis) / 1000.0
    }

    /// Maps a logical coordinate to its physical PE, detouring around dead
    /// rows: logical row `r` lands on the `r`-th live physical row (rows at
    /// or beyond each dead row shift one further out, in both directions
    /// from row 0). Columns are unaffected — the redundancy unit is a whole
    /// row, as on wafer-scale hardware. The map is injective and
    /// order-preserving, and physical distances are never shorter than
    /// logical ones, so the detour overhead is non-negative.
    pub fn physical(&self, c: Coord) -> Coord {
        let mut r = c.row;
        if r >= 0 {
            for &d in self.dead_rows.iter().filter(|&&d| d >= 0) {
                if d <= r {
                    r += 1;
                }
            }
        } else {
            for &d in self.dead_rows.iter().rev().filter(|&&d| d < 0) {
                if d >= r {
                    r -= 1;
                }
            }
        }
        Coord::new(r, c.col)
    }

    /// Whether physical coordinate `c` is dead (fused-out row or individual
    /// dead PE). Coordinates produced by [`FaultPlan::physical`] never land
    /// on a dead *row*, but can land on an individual dead PE.
    pub fn is_dead_physical(&self, c: Coord) -> bool {
        self.dead_rows.binary_search(&c.row).is_ok() || self.dead_pes.contains(&c)
    }

    /// Extra distance charged to a message between physical PEs `a` and `b`
    /// for degraded links: one unit per degraded row inside the message's
    /// row interval. Zero for self-messages.
    pub fn degraded_penalty(&self, a: Coord, b: Coord) -> u64 {
        if a == b || self.degraded_rows.is_empty() {
            return 0;
        }
        let (lo, hi) = (a.row.min(b.row), a.row.max(b.row));
        let from = self.degraded_rows.partition_point(|&r| r < lo);
        let to = self.degraded_rows.partition_point(|&r| r <= hi);
        (to - from) as u64
    }

    /// The deterministic per-message corruption stream for this
    /// `(seed, attempt)` pair.
    pub(crate) fn message_rng(&self) -> Rng {
        Rng::stream(self.seed ^ (u64::from(self.attempt) << 32), SALT_MESSAGES)
    }

    /// Whether the plan injects transient (per-message) faults at all.
    pub(crate) fn has_transient_faults(&self) -> bool {
        self.flaky_millis > 0
    }

    /// Whether the plan has individual hard-dead PEs (the only way a
    /// remapped physical coordinate can be dead — [`FaultPlan::physical`]
    /// never lands on a dead *row*).
    pub(crate) fn has_dead_pes(&self) -> bool {
        !self.dead_pes.is_empty()
    }

    /// Whether the individual physical PE `c` is hard-dead.
    pub(crate) fn dead_pe_at(&self, c: Coord) -> bool {
        self.dead_pes.contains(&c)
    }

    /// Precomputes the dead-row remap as a flat lookup (see [`RowRemap`]).
    /// Returns `None` when the dead rows span too wide a window to tabulate,
    /// in which case callers fall back to [`FaultPlan::physical`].
    pub(crate) fn row_remap(&self) -> Option<RowRemap> {
        RowRemap::build(self)
    }
}

/// Flat-table form of the dead-row remap of [`FaultPlan::physical`].
///
/// Outside the window spanned by the dead rows the remap is a constant
/// shift (all dead rows on that side have been skipped), so only the rows
/// inside the window need a table entry. `row()` is then a bounds check and
/// an index — the per-message cost of fault-aware routing drops from
/// `O(dead rows)` to `O(1)`.
#[derive(Debug)]
pub(crate) struct RowRemap {
    /// Physical rows for logical rows `0, 1, …, pos.len()-1`.
    pos: Vec<i64>,
    /// Physical rows for logical rows `-1, -2, …, -neg.len()`.
    neg: Vec<i64>,
    /// Shift applied to logical rows at or beyond `pos.len()`.
    pos_shift: i64,
    /// Shift applied to logical rows below `-neg.len()`.
    neg_shift: i64,
}

/// Refuse to tabulate remaps spanning more rows than this (a plan with dead
/// rows billions apart would allocate absurdly; such plans keep the exact
/// per-call computation instead).
const REMAP_CAP: i64 = 1 << 22;

impl RowRemap {
    fn build(plan: &FaultPlan) -> Option<RowRemap> {
        let pos_dead = plan.dead_rows.iter().filter(|&&d| d >= 0).count() as i64;
        let neg_dead = plan.dead_rows.len() as i64 - pos_dead;
        // Window: up to the outermost dead row on each side; beyond it the
        // shift is the full dead-row count of that side.
        let pos_hi = plan.dead_rows.last().copied().filter(|&d| d >= 0).map_or(0, |d| d + 1);
        let neg_lo = plan.dead_rows.first().copied().filter(|&d| d < 0).unwrap_or(0);
        if pos_hi > REMAP_CAP || -neg_lo > REMAP_CAP {
            return None;
        }
        let pos = (0..pos_hi).map(|r| plan.physical(Coord::new(r, 0)).row).collect();
        let neg = (1..=-neg_lo).map(|i| plan.physical(Coord::new(-i, 0)).row).collect();
        Some(RowRemap { pos, neg, pos_shift: pos_dead, neg_shift: neg_dead })
    }

    /// The physical row for logical row `r` (equals
    /// [`FaultPlan::physical`]`.row`).
    #[inline]
    pub(crate) fn row(&self, r: i64) -> i64 {
        if r >= 0 {
            match self.pos.get(r as usize) {
                Some(&p) => p,
                None => r + self.pos_shift,
            }
        } else {
            match self.neg.get((-1 - r) as usize) {
                Some(&p) => p,
                None => r - self.neg_shift,
            }
        }
    }

    /// The physical PE for logical coordinate `c`.
    #[inline]
    pub(crate) fn physical(&self, c: Coord) -> Coord {
        Coord::new(self.row(c.row), c.col)
    }
}

/// Builder for [`FaultPlan`] (see [`FaultPlan::builder`]).
#[derive(Clone, Debug)]
pub struct FaultPlanBuilder {
    seed: u64,
    dead_rows: BTreeSet<i64>,
    dead_pes: BTreeSet<Coord>,
    degraded_rows: BTreeSet<i64>,
    flaky_millis: u32,
}

impl FaultPlanBuilder {
    /// Marks physical row `r` as fused out.
    pub fn dead_row(mut self, r: i64) -> Self {
        self.dead_rows.insert(r);
        self
    }

    /// Marks an individual physical PE as hard-dead (not covered by the
    /// spare-row remap; traffic addressing it is a
    /// [`crate::SpatialError::DeadPe`]).
    pub fn dead_pe(mut self, c: Coord) -> Self {
        self.dead_pes.insert(c);
        self
    }

    /// Marks physical row `r` as degraded (slow links).
    pub fn degraded_row(mut self, r: i64) -> Self {
        self.degraded_rows.insert(r);
        self
    }

    /// Fuses out a seed-deterministic `fraction` of the rows of `extent`
    /// (at least one row when `fraction > 0`, never all of them).
    pub fn random_dead_rows(mut self, extent: SubGrid, fraction: f64) -> Self {
        for r in random_rows(self.seed, SALT_DEAD_ROWS, extent, fraction) {
            self.dead_rows.insert(r);
        }
        self
    }

    /// Degrades a seed-deterministic `fraction` of the rows of `extent`.
    pub fn random_degraded_rows(mut self, extent: SubGrid, fraction: f64) -> Self {
        for r in random_rows(self.seed, SALT_DEGRADED, extent, fraction) {
            self.degraded_rows.insert(r);
        }
        self
    }

    /// Marks a seed-deterministic `fraction` of the PEs of `extent` as
    /// individually hard-dead.
    pub fn random_dead_pes(mut self, extent: SubGrid, fraction: f64) -> Self {
        let n = extent.len();
        let k = ((n as f64 * fraction.clamp(0.0, 1.0)).round() as u64).min(n) as usize;
        let mut rng = Rng::stream(self.seed, SALT_DEAD_PES);
        for idx in rng.sample_indices(n as usize, k) {
            self.dead_pes.insert(extent.rm_coord(idx as u64));
        }
        self
    }

    /// Sets the per-message transient corruption probability (clamped to
    /// `[0, 1]`, quantized to 1/1000ths so plans stay `Eq`/hashable).
    pub fn flaky(mut self, p: f64) -> Self {
        self.flaky_millis = (p.clamp(0.0, 1.0) * 1000.0).round() as u32;
        self
    }

    /// Finalizes the plan.
    pub fn build(self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            attempt: 0,
            dead_rows: self.dead_rows.into_iter().collect(),
            dead_pes: self.dead_pes,
            degraded_rows: self.degraded_rows.into_iter().collect(),
            flaky_millis: self.flaky_millis,
        }
    }
}

/// Picks a deterministic `fraction` of the rows of `extent` (at least one for
/// any positive fraction, and never the full extent so a remap target always
/// exists inside a one-row margin).
fn random_rows(seed: u64, salt: u64, extent: SubGrid, fraction: f64) -> Vec<i64> {
    let rows = extent.h;
    if rows == 0 || fraction <= 0.0 {
        return Vec::new();
    }
    let k = ((rows as f64 * fraction.clamp(0.0, 1.0)).round() as u64).clamp(1, (rows - 1).max(1));
    let mut rng = Rng::stream(seed, salt);
    rng.sample_indices(rows as usize, k as usize)
        .into_iter()
        .map(|i| extent.origin.row + i as i64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_remap_skips_dead_rows_and_preserves_order() {
        let plan = FaultPlan::builder(0).dead_row(1).dead_row(3).build();
        // Logical rows 0,1,2,3 → physical 0,2,4,5 (rows 1 and 3 skipped).
        assert_eq!(plan.physical(Coord::new(0, 7)), Coord::new(0, 7));
        assert_eq!(plan.physical(Coord::new(1, 7)), Coord::new(2, 7));
        assert_eq!(plan.physical(Coord::new(2, 7)), Coord::new(4, 7));
        assert_eq!(plan.physical(Coord::new(3, 7)), Coord::new(5, 7));
        for r in 0..32 {
            assert!(!plan.is_dead_physical(plan.physical(Coord::new(r, 0))));
        }
    }

    #[test]
    fn physical_remap_handles_negative_rows() {
        let plan = FaultPlan::builder(0).dead_row(-2).dead_row(1).build();
        assert_eq!(plan.physical(Coord::new(-1, 0)), Coord::new(-1, 0));
        assert_eq!(plan.physical(Coord::new(-2, 0)), Coord::new(-3, 0));
        assert_eq!(plan.physical(Coord::new(-3, 0)), Coord::new(-4, 0));
        assert_eq!(plan.physical(Coord::new(1, 0)), Coord::new(2, 0));
    }

    #[test]
    fn physical_remap_is_injective_and_non_contracting() {
        let plan = FaultPlan::builder(9).dead_row(0).dead_row(2).dead_row(5).dead_row(-1).build();
        let mut seen = std::collections::HashSet::new();
        for r in -8..8 {
            for c in 0..4 {
                let p = plan.physical(Coord::new(r, c));
                assert!(seen.insert(p), "{p} hit twice");
            }
        }
        // Physical distance never undercuts logical distance.
        for a in -4..4 {
            for b in -4..4 {
                let (la, lb) = (Coord::new(a, 0), Coord::new(b, 3));
                assert!(plan.physical(la).manhattan(plan.physical(lb)) >= la.manhattan(lb));
            }
        }
    }

    #[test]
    fn degraded_penalty_counts_rows_in_the_interval() {
        let plan = FaultPlan::builder(0).degraded_row(2).degraded_row(5).build();
        let p = |a: (i64, i64), b: (i64, i64)| {
            plan.degraded_penalty(Coord::new(a.0, a.1), Coord::new(b.0, b.1))
        };
        assert_eq!(p((0, 0), (1, 3)), 0);
        assert_eq!(p((0, 0), (3, 0)), 1);
        assert_eq!(p((0, 0), (7, 0)), 2);
        assert_eq!(p((2, 0), (2, 5)), 1, "horizontal hop along a degraded row");
        assert_eq!(p((2, 0), (2, 0)), 0, "self-message is free");
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let extent = SubGrid::square(Coord::ORIGIN, 16);
        let mk = |seed| {
            FaultPlan::builder(seed)
                .random_dead_rows(extent, 0.2)
                .random_dead_pes(extent, 0.05)
                .random_degraded_rows(extent, 0.1)
                .flaky(0.01)
                .build()
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
        assert!(!mk(7).dead_rows().is_empty());
        assert!((mk(7).dead_rows().len() as u64) < extent.h);
    }

    #[test]
    fn row_remap_table_matches_exact_computation() {
        let plans = [
            FaultPlan::builder(0).build(),
            FaultPlan::builder(0).dead_row(0).build(),
            FaultPlan::builder(0).dead_row(1).dead_row(3).build(),
            FaultPlan::builder(0).dead_row(-2).dead_row(1).build(),
            FaultPlan::builder(0).dead_row(-5).dead_row(-1).dead_row(0).dead_row(7).build(),
        ];
        for plan in &plans {
            let remap = plan.row_remap().expect("small plans tabulate");
            for r in -64..64 {
                for c in [-3, 0, 17] {
                    let l = Coord::new(r, c);
                    assert_eq!(remap.physical(l), plan.physical(l), "{plan:?} at {l}");
                }
            }
        }
        // A pathologically wide plan refuses to tabulate.
        let wide = FaultPlan::builder(0).dead_row(1 << 40).build();
        assert!(wide.row_remap().is_none());
    }

    #[test]
    fn for_attempt_keeps_structure_but_resalts_messages() {
        let plan = FaultPlan::builder(3).dead_row(1).flaky(0.5).build();
        let retry = plan.for_attempt(1);
        assert_eq!(plan.dead_rows(), retry.dead_rows());
        let draws = |p: &FaultPlan| {
            let mut rng = p.message_rng();
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_ne!(draws(&plan), draws(&retry));
        assert_eq!(draws(&plan), draws(&plan.for_attempt(0)));
    }
}
