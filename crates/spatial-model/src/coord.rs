//! Grid coordinates and the Manhattan metric.

use std::fmt;

/// A processing-element coordinate on the unbounded 2D grid.
///
/// The grid is conceptually infinite in all four directions; coordinates are
/// signed so that scratch regions can be allocated anywhere relative to the
/// input subgrid (the model of the paper places the input on a subgrid of an
/// unbounded processor field).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// Row index (`i` in the paper's `p_{i,j}` notation).
    pub row: i64,
    /// Column index (`j` in the paper's `p_{i,j}` notation).
    pub col: i64,
}

impl Coord {
    /// The origin `p_{0,0}`.
    pub const ORIGIN: Coord = Coord { row: 0, col: 0 };

    /// Creates a coordinate from a row and column index.
    #[inline]
    pub const fn new(row: i64, col: i64) -> Self {
        Coord { row, col }
    }

    /// Manhattan distance `|x - i| + |y - j|` — the cost of one message
    /// between the two PEs.
    #[inline]
    pub fn manhattan(self, other: Coord) -> u64 {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }

    /// Component-wise translation.
    #[inline]
    pub const fn offset(self, drow: i64, dcol: i64) -> Coord {
        Coord::new(self.row + drow, self.col + dcol)
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

impl From<(i64, i64)> for Coord {
    fn from((row, col): (i64, i64)) -> Self {
        Coord::new(row, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_is_symmetric_and_zero_on_self() {
        let a = Coord::new(3, -4);
        let b = Coord::new(-1, 7);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(b), 4 + 11);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let pts = [Coord::new(0, 0), Coord::new(5, 5), Coord::new(-3, 2), Coord::new(100, -7)];
        for &a in &pts {
            for &b in &pts {
                for &c in &pts {
                    assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
                }
            }
        }
    }

    #[test]
    fn offset_translates() {
        assert_eq!(Coord::ORIGIN.offset(2, -3), Coord::new(2, -3));
    }
}
