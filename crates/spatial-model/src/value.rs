//! Values pinned to processing elements.

use crate::coord::Coord;
use crate::path::Path;

/// A value resident at one PE, carrying its critical [`Path`].
///
/// `Tracked` values can only be created by [`crate::Machine::place`] (inputs)
/// or by machine sends; *local* computation (combining values at the same PE)
/// is free in the model and therefore available directly on `Tracked` via
/// [`Tracked::map`], [`Tracked::zip_with`] and [`Tracked::combine`]. All
/// combining operations assert co-location, so the type system plus runtime
/// checks prevent "teleporting" data without paying message costs.
#[derive(Clone, Debug)]
pub struct Tracked<T> {
    value: T,
    loc: Coord,
    path: Path,
}

impl<T> Tracked<T> {
    /// Internal constructor; the machine is the only public entry point.
    pub(crate) fn raw(value: T, loc: Coord, path: Path) -> Self {
        Tracked { value, loc, path }
    }

    /// The wrapped value.
    #[inline]
    pub fn value(&self) -> &T {
        &self.value
    }

    /// Consumes the wrapper, returning the value (leaves the model).
    #[inline]
    pub fn into_value(self) -> T {
        self.value
    }

    /// Decomposes into `(value, loc, path)` for the machine's send path.
    #[inline]
    pub(crate) fn into_parts(self) -> (T, Coord, Path) {
        (self.value, self.loc, self.path)
    }

    /// The PE the value resides at.
    #[inline]
    pub fn loc(&self) -> Coord {
        self.loc
    }

    /// The value's critical path in the message DAG.
    #[inline]
    pub fn path(&self) -> Path {
        self.path
    }

    /// Local computation on one value (free in the model).
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Tracked<U> {
        Tracked::raw(f(self.value), self.loc, self.path)
    }

    /// Local computation combining two co-located values.
    ///
    /// # Panics
    /// Panics if the operands reside at different PEs — cross-PE data flow
    /// must go through [`crate::Machine::send`].
    pub fn zip_with<U: Clone, R>(
        &self,
        other: &Tracked<U>,
        f: impl FnOnce(&T, &U) -> R,
    ) -> Tracked<R> {
        assert_eq!(
            self.loc, other.loc,
            "local compute requires co-located operands ({} vs {})",
            self.loc, other.loc
        );
        Tracked::raw(f(&self.value, &other.value), self.loc, self.path.join(other.path))
    }

    /// Local computation folding many co-located values.
    ///
    /// Guarded runs should prefer [`crate::Machine::combine`] /
    /// [`crate::Machine::try_combine`], which surface a non-co-located
    /// operand as a typed [`crate::SpatialError::NotCoLocated`] instead of
    /// panicking.
    ///
    /// # Panics
    /// Panics if the operands are not all at the same PE or `items` is empty.
    pub fn combine<R>(items: &[Tracked<T>], f: impl FnOnce(&[&T]) -> R) -> Tracked<R> {
        assert!(!items.is_empty(), "combine requires at least one operand");
        let loc = items[0].loc;
        let mut path = Path::ZERO;
        for it in items {
            assert_eq!(it.loc, loc, "local compute requires co-located operands");
            path = path.join(it.path);
        }
        let refs: Vec<&T> = items.iter().map(|t| &t.value).collect();
        Tracked::raw(f(&refs), loc, path)
    }

    /// Replaces the value while keeping location and path (local rewrite).
    pub fn with_value<U>(&self, value: U) -> Tracked<U> {
        Tracked::raw(value, self.loc, self.path)
    }
}

impl<T: Clone> Tracked<T> {
    /// Local duplication at the same PE (free: no message is sent).
    pub fn duplicate(&self) -> Tracked<T> {
        Tracked::raw(self.value.clone(), self.loc, self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    #[test]
    fn map_preserves_loc_and_path() {
        let mut m = Machine::new();
        let a = m.place(Coord::new(1, 1), 10i64);
        let b = m.send_owned(a, Coord::new(1, 3)); // path = (1, 2)
        let c = b.map(|x| x * 2);
        assert_eq!(*c.value(), 20);
        assert_eq!(c.loc(), Coord::new(1, 3));
        assert_eq!(c.path(), Path { depth: 1, distance: 2 });
    }

    #[test]
    fn zip_with_joins_paths() {
        let mut m = Machine::new();
        let a = m.place(Coord::ORIGIN, 1i64);
        let b = m.place(Coord::new(0, 5), 2i64);
        let b2 = m.send_owned(b, Coord::ORIGIN);
        let s = a.zip_with(&b2, |x, y| x + y);
        assert_eq!(*s.value(), 3);
        assert_eq!(s.path(), Path { depth: 1, distance: 5 });
    }

    #[test]
    #[should_panic(expected = "co-located")]
    fn zip_with_rejects_remote_operands() {
        let mut m = Machine::new();
        let a = m.place(Coord::ORIGIN, 1i64);
        let b = m.place(Coord::new(0, 5), 2i64);
        let _ = a.zip_with(&b, |x, y| x + y);
    }

    #[test]
    fn combine_folds_many() {
        let mut m = Machine::new();
        let vals: Vec<_> = (0..4).map(|i| m.place(Coord::ORIGIN, i as i64)).collect();
        let sum = Tracked::combine(&vals, |xs| xs.iter().map(|x| **x).sum::<i64>());
        assert_eq!(*sum.value(), 6);
    }
}
