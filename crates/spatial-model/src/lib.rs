//! # Spatial Computer Model simulator
//!
//! This crate implements the machine abstraction used throughout the paper
//! *Energy-Optimal and Low-Depth Algorithmic Primitives for Spatial Dataflow
//! Architectures* (Gianinazzi et al., IPDPS 2025): an unbounded number of
//! processing elements (PEs) with constant-sized memory arranged on a
//! Cartesian 2D grid. Sending a message from PE `(i, j)` to PE `(x, y)` has
//! distance `|x - i| + |y - j|` (Manhattan metric). Three cost metrics are
//! tracked **exactly** while algorithms execute on real data:
//!
//! * **energy** — the sum of the distances of all messages sent (total
//!   network load);
//! * **depth** — the longest chain of dependent messages (a measure of
//!   parallelism);
//! * **distance** — the largest total distance along any chain of dependent
//!   messages (wire latency of the critical path).
//!
//! Because each metric obeys a simple DAG recurrence
//! (`depth(v) = 1 + max(depth(deps))`,
//! `distance(v) = len(edge) + max(distance(deps))`), every value carries its
//! own critical [`Path`] and the machine keeps a global watermark, so the
//! reported numbers are the exact model costs of the executed message DAG,
//! not estimates.
//!
//! ## Quick example
//!
//! ```
//! use spatial_model::{Machine, Coord};
//!
//! let mut m = Machine::new();
//! let a = m.place(Coord::new(0, 0), 5i64);
//! let b = m.place(Coord::new(3, 4), 7i64);
//! // Move `b` next to `a` (one message of distance 3 + 4 = 7)…
//! let b_moved = m.send_owned(b, Coord::new(0, 0));
//! // …and combine the two locally (local compute is free in the model).
//! let sum = a.zip_with(&b_moved, |x, y| x + y);
//! assert_eq!(*sum.value(), 12);
//! assert_eq!(m.report().energy, 7);
//! assert_eq!(m.report().depth, 1);
//! assert_eq!(sum.path().distance, 7);
//! ```

pub mod batch;
pub mod cancel;
pub mod coord;
pub mod cost;
pub mod error;
pub mod fault;
pub mod grid;
pub mod guard;
pub mod kernels;
pub mod machine;
pub mod memory;
pub mod path;
pub mod profile;
pub mod svg;
pub mod trace;
pub mod value;
pub mod zorder;

pub use batch::{set_sim_threads, sim_threads, BatchPattern};
pub use cancel::CancelToken;
pub use coord::Coord;
pub use cost::Cost;
pub use error::{BudgetMetric, SpatialError};
pub use fault::{FaultPlan, FaultPlanBuilder};
pub use grid::SubGrid;
pub use guard::ModelGuard;
pub use machine::Machine;
pub use memory::MemMeter;
pub use path::Path;
pub use profile::{
    builtin_profiles, profile_by_name, CostProfile, ModelExact, ProfileError, ProfileWeights,
    ProfiledCost, SimtLike, SystolicLike, WseLike,
};
pub use trace::{MsgRecord, Trace};
pub use value::Tracked;

/// Compile-time thread-safety audit.
///
/// The supervised batch runner moves whole simulations across worker
/// threads: a [`Machine`] (with its fault state, guard, meters and trace)
/// is constructed on one thread, driven there, and its results shipped
/// back. These assertions make that soundness a property checked by the
/// compiler on every build — adding a non-`Send` field (an `Rc`, a raw
/// pointer, a thread-local handle) to any of these types fails compilation
/// here, not at 2 a.m. in a runner deadlock.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<Machine>();
    assert_send::<Cost>();
    // The profile handle is a `&'static dyn CostProfile` (the trait requires
    // `Sync`), so a profiled machine still crosses worker threads freely.
    assert_send::<ProfiledCost>();
    assert_send_sync::<profile::ProfileHandle>();
    assert_send::<FaultPlan>();
    assert_send::<SpatialError>();
    assert_send::<ModelGuard>();
    assert_send::<MemMeter>();
    assert_send::<Trace>();
    assert_send::<Tracked<i64>>();
    // The token crosses threads by design (watchdog on one side, machine on
    // the other), so it must be fully shareable.
    assert_send_sync::<CancelToken>();
};
