//! Typed model-conformance and fault errors.
//!
//! Before this layer existed the simulator accepted any misuse silently: a
//! send outside the declared grid, a PE hoarding an unbounded number of
//! words, or an algorithm blowing past its energy budget all "succeeded"
//! with nonsense costs. Every such violation now surfaces as a
//! [`SpatialError`] — either returned from the fallible `try_*` machine
//! methods, or latched on the [`crate::Machine`] (see
//! [`crate::Machine::violation`]) when the infallible methods are used.

use std::fmt;

use crate::coord::Coord;
use crate::grid::SubGrid;

/// Which guarded cost counter a [`SpatialError::BudgetExceeded`] refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BudgetMetric {
    /// Total message distance.
    Energy,
    /// Longest chain of dependent messages.
    Depth,
    /// Largest total distance along any dependency chain.
    Distance,
    /// Message count.
    Messages,
}

impl fmt::Display for BudgetMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BudgetMetric::Energy => "energy",
            BudgetMetric::Depth => "depth",
            BudgetMetric::Distance => "distance",
            BudgetMetric::Messages => "messages",
        };
        f.write_str(s)
    }
}

/// A model-conformance violation or hardware-fault contact.
///
/// The error taxonomy of the fault/guard layer (see DESIGN.md, "Fault model
/// and conformance guards"):
///
/// * [`DeadPe`](SpatialError::DeadPe) — traffic addressed to a processing
///   element the active [`crate::FaultPlan`] marks dead (and that row
///   redundancy could not remap around);
/// * [`OutOfBounds`](SpatialError::OutOfBounds) — traffic addressed outside
///   the [`crate::ModelGuard`]'s declared grid extent;
/// * [`MemoryExceeded`](SpatialError::MemoryExceeded) — a delivery that would
///   push a PE's resident-word count above the guard's hard cap (the model
///   promises `O(1)` words per PE);
/// * [`BudgetExceeded`](SpatialError::BudgetExceeded) — a cost counter
///   crossed the guard's budget for that metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpatialError {
    /// A message or placement targeted a dead processing element.
    DeadPe {
        /// The logical coordinate the algorithm addressed.
        logical: Coord,
        /// The physical coordinate after fault remapping.
        physical: Coord,
    },
    /// A message or placement targeted a PE outside the guarded extent.
    OutOfBounds {
        /// The offending logical coordinate.
        loc: Coord,
        /// The guard's declared grid extent.
        extent: SubGrid,
    },
    /// A delivery would exceed the hard per-PE resident-word cap.
    MemoryExceeded {
        /// The PE whose residency would overflow.
        loc: Coord,
        /// Words resident before the delivery.
        resident: u32,
        /// The guard's hard cap.
        cap: u32,
    },
    /// An accumulated cost counter crossed its guarded budget.
    BudgetExceeded {
        /// The metric that overflowed.
        metric: BudgetMetric,
        /// The counter value after the offending message.
        used: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The run's [`crate::CancelToken`] was tripped (deadline watchdog,
    /// batch shutdown, user interrupt) and the simulation observed it at its
    /// next placement or send.
    Cancelled,
    /// A local fold ([`crate::Machine::combine`]) was given operands
    /// residing at different PEs — cross-PE data flow must pay for messages
    /// via [`crate::Machine::send`]. Surfaced as a typed error (latched by
    /// the lax path, returned by `try_combine`) instead of panicking inside
    /// guarded runs.
    NotCoLocated {
        /// The PE of the first operand (where the fold runs).
        expected: Coord,
        /// The first operand found elsewhere.
        found: Coord,
    },
    /// An instrumentation accessor was used on a machine that never enabled
    /// that instrument (e.g. reading the trace without
    /// [`crate::Machine::enable_trace`]) — a usage error, reported instead
    /// of panicking.
    InstrumentationDisabled {
        /// Which instrument is missing and how to enable it.
        what: &'static str,
    },
}

impl SpatialError {
    /// A distinct process exit code per error variant, used by the CLI so
    /// fault regressions are distinguishable in scripts and CI:
    /// dead PE → 4, out of bounds → 5, memory cap → 6, budget → 7,
    /// cancelled/deadline → 9, non-co-located fold → 11 (8 is the
    /// recovery-exhausted code of `spatial_core::recovery`, 10 is the batch
    /// runner's shed code).
    /// A disabled instrument is a usage error and shares the usage code 2.
    pub fn exit_code(&self) -> i32 {
        match self {
            SpatialError::InstrumentationDisabled { .. } => 2,
            SpatialError::DeadPe { .. } => 4,
            SpatialError::OutOfBounds { .. } => 5,
            SpatialError::MemoryExceeded { .. } => 6,
            SpatialError::BudgetExceeded { .. } => 7,
            SpatialError::Cancelled => 9,
            SpatialError::NotCoLocated { .. } => 11,
        }
    }
}

impl fmt::Display for SpatialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpatialError::DeadPe { logical, physical } if logical == physical => {
                write!(f, "dead PE: {logical} is marked dead by the active fault plan")
            }
            SpatialError::DeadPe { logical, physical } => {
                write!(f, "dead PE: logical {logical} remaps to dead physical PE {physical}")
            }
            SpatialError::OutOfBounds { loc, extent } => write!(
                f,
                "out of bounds: {loc} is outside the guarded {}x{} extent at {}",
                extent.h, extent.w, extent.origin
            ),
            SpatialError::MemoryExceeded { loc, resident, cap } => write!(
                f,
                "memory exceeded: delivery to {loc} would make {} words resident (cap {cap})",
                resident + 1
            ),
            SpatialError::BudgetExceeded { metric, used, budget } => {
                write!(f, "budget exceeded: {metric} reached {used} (budget {budget})")
            }
            SpatialError::Cancelled => {
                write!(f, "cancelled: the run's cancel token was tripped (deadline exceeded)")
            }
            SpatialError::NotCoLocated { expected, found } => write!(
                f,
                "not co-located: local fold at {expected} was given an operand at {found} \
                 (cross-PE data flow must go through Machine::send)"
            ),
            SpatialError::InstrumentationDisabled { what } => {
                write!(f, "instrumentation disabled: {what}")
            }
        }
    }
}

impl std::error::Error for SpatialError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let errs = [
            SpatialError::DeadPe { logical: Coord::ORIGIN, physical: Coord::ORIGIN },
            SpatialError::OutOfBounds {
                loc: Coord::ORIGIN,
                extent: SubGrid::square(Coord::ORIGIN, 4),
            },
            SpatialError::MemoryExceeded { loc: Coord::ORIGIN, resident: 3, cap: 3 },
            SpatialError::BudgetExceeded { metric: BudgetMetric::Energy, used: 10, budget: 9 },
            SpatialError::Cancelled,
            SpatialError::NotCoLocated { expected: Coord::ORIGIN, found: Coord::new(1, 0) },
        ];
        let codes: std::collections::HashSet<i32> = errs.iter().map(|e| e.exit_code()).collect();
        assert_eq!(codes.len(), errs.len());
        assert!(codes.iter().all(|&c| c > 2), "0-2 are reserved for ok/usage");
        assert!(!codes.contains(&8), "8 belongs to recovery exhaustion");
        assert!(!codes.contains(&10), "10 belongs to batch load shedding");
        // A disabled instrument is a plain usage error, not a run failure.
        let usage = SpatialError::InstrumentationDisabled { what: "trace" };
        assert_eq!(usage.exit_code(), 2);
    }

    #[test]
    fn display_names_the_offender() {
        let e = SpatialError::DeadPe { logical: Coord::new(1, 2), physical: Coord::new(3, 2) };
        assert!(format!("{e}").contains("(3,2)"));
        let e = SpatialError::BudgetExceeded { metric: BudgetMetric::Depth, used: 7, budget: 6 };
        assert!(format!("{e}").contains("depth"));
    }
}
