//! Critical-path bookkeeping for the depth and distance metrics.

/// The critical path of a value in the message DAG.
///
/// * `depth` — number of messages on the longest dependency chain leading to
///   this value;
/// * `distance` — total Manhattan distance along the longest-distance chain.
///
/// Both metrics satisfy the standard DAG recurrences, so tracking them per
/// value (taking element-wise maxima when values are combined) yields the
/// exact per-metric critical path.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct Path {
    /// Longest chain of dependent messages (count).
    pub depth: u64,
    /// Largest total distance of any chain of dependent messages.
    pub distance: u64,
}

impl Path {
    /// The path of a freshly placed input (no messages yet).
    pub const ZERO: Path = Path { depth: 0, distance: 0 };

    /// Element-wise maximum: the critical path of a local computation that
    /// depends on both operands.
    #[inline]
    pub fn join(self, other: Path) -> Path {
        Path { depth: self.depth.max(other.depth), distance: self.distance.max(other.distance) }
    }

    /// Extends the path by one message of length `d`.
    #[inline]
    pub fn step(self, d: u64) -> Path {
        Path { depth: self.depth + 1, distance: self.distance + d }
    }

    /// Joins an iterator of paths (identity: [`Path::ZERO`]).
    pub fn join_all<I: IntoIterator<Item = Path>>(paths: I) -> Path {
        paths.into_iter().fold(Path::ZERO, Path::join)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_takes_elementwise_max() {
        let a = Path { depth: 3, distance: 10 };
        let b = Path { depth: 5, distance: 2 };
        assert_eq!(a.join(b), Path { depth: 5, distance: 10 });
    }

    #[test]
    fn step_extends_both_metrics() {
        let p = Path { depth: 1, distance: 4 }.step(7);
        assert_eq!(p, Path { depth: 2, distance: 11 });
    }

    #[test]
    fn join_all_of_empty_is_zero() {
        assert_eq!(Path::join_all(std::iter::empty()), Path::ZERO);
    }

    #[test]
    fn join_is_associative_and_commutative() {
        let a = Path { depth: 1, distance: 9 };
        let b = Path { depth: 7, distance: 2 };
        let c = Path { depth: 4, distance: 4 };
        assert_eq!(a.join(b).join(c), a.join(b.join(c)));
        assert_eq!(a.join(b), b.join(a));
    }
}
