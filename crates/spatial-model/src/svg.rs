//! SVG rendering of message traces — publication-style figure artifacts.
//!
//! Renders a recorded [`crate::Trace`] as grid cells plus one line per
//! message, optionally phase-colored. Used by the figure binaries to emit
//! the Fig. 1 (scan sweeps) and Fig. 2 (bitonic layout) panels as vector
//! graphics under `experiments/`.

use std::fmt::Write as _;

use crate::trace::MsgRecord;

/// Style for one group of messages.
#[derive(Clone, Debug)]
pub struct Layer<'a> {
    /// The messages in this layer.
    pub records: &'a [MsgRecord],
    /// Stroke color (any SVG color string).
    pub color: &'a str,
    /// Human label for the legend.
    pub label: &'a str,
}

/// Renders message layers over an `h × w` grid anchored at the origin.
///
/// Cells are drawn as a light lattice; each message becomes an arrowless
/// line from source to destination with slight transparency so overlapping
/// traffic accumulates visually (hot links appear darker).
pub fn render(h: u64, w: u64, layers: &[Layer<'_>]) -> String {
    const CELL: f64 = 28.0;
    const PAD: f64 = 24.0;
    let width = PAD * 2.0 + w as f64 * CELL;
    let height = PAD * 2.0 + h as f64 * CELL + 22.0 * layers.len() as f64;
    let cx = |col: i64| PAD + (col as f64 + 0.5) * CELL;
    let cy = |row: i64| PAD + (row as f64 + 0.5) * CELL;

    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
    );
    let _ = writeln!(s, r#"<rect width="100%" height="100%" fill="white"/>"#);
    // Grid lattice.
    for r in 0..h {
        for c in 0..w {
            let _ = writeln!(
                s,
                r##"<rect x="{:.1}" y="{:.1}" width="{CELL}" height="{CELL}" fill="none" stroke="#ddd"/>"##,
                PAD + c as f64 * CELL,
                PAD + r as f64 * CELL
            );
        }
    }
    // Messages.
    for layer in layers {
        for rec in layer.records {
            let _ = writeln!(
                s,
                r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{}" stroke-width="1.6" stroke-opacity="0.45"/>"#,
                cx(rec.src.col),
                cy(rec.src.row),
                cx(rec.dst.col),
                cy(rec.dst.row),
                layer.color
            );
        }
    }
    // Legend.
    for (i, layer) in layers.iter().enumerate() {
        let y = PAD + h as f64 * CELL + 16.0 + 22.0 * i as f64;
        let _ = writeln!(
            s,
            r#"<line x1="{PAD}" y1="{y}" x2="{}" y2="{y}" stroke="{}" stroke-width="3"/>"#,
            PAD + 28.0,
            layer.color
        );
        let _ = writeln!(
            s,
            r#"<text x="{}" y="{:.1}" font-family="sans-serif" font-size="13">{} ({} messages)</text>"#,
            PAD + 36.0,
            y + 4.5,
            layer.label,
            layer.records.len()
        );
    }
    s.push_str("</svg>\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Coord, Machine};

    #[test]
    fn renders_well_formed_svg() {
        let mut m = Machine::new();
        m.enable_trace(64);
        let a = m.place(Coord::ORIGIN, 1u8);
        let b = m.send(&a, Coord::new(2, 3));
        let _ = m.send(&b, Coord::new(0, 3));
        let recs = m.trace().unwrap().records();
        let svg = render(4, 4, &[Layer { records: recs, color: "#1f77b4", label: "test" }]);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<line").count(), 2 + 1, "2 messages + 1 legend line");
        assert_eq!(svg.matches("<rect").count(), 16 + 1, "16 cells + background");
        assert!(svg.contains("test (2 messages)"));
    }

    #[test]
    fn layers_render_in_order_with_own_colors() {
        let mut m = Machine::new();
        m.enable_trace(8);
        let a = m.place(Coord::ORIGIN, 1u8);
        let _ = m.send(&a, Coord::new(1, 1));
        let recs = m.trace().unwrap().records();
        let svg = render(
            2,
            2,
            &[
                Layer { records: recs, color: "red", label: "up" },
                Layer { records: recs, color: "blue", label: "down" },
            ],
        );
        let red = svg.find("stroke=\"red\"").unwrap();
        let blue = svg.find("stroke=\"blue\"").unwrap();
        assert!(red < blue, "layers draw in declaration order");
    }
}
