//! Cooperative cancellation of in-flight simulations.
//!
//! A [`CancelToken`] is a cheap, clonable flag shared between a simulation
//! and its supervisor (a deadline watchdog, a batch runner shutting down, an
//! interactive user). The [`crate::Machine`] checks the token on every
//! placement and send — the points where a spatial algorithm necessarily
//! returns to the simulator — so a runaway or over-deadline run surfaces as
//! a typed [`crate::SpatialError::Cancelled`] at its next message instead of
//! holding its worker thread hostage.
//!
//! Cancellation is *cooperative*: pure host-side compute between machine
//! calls cannot be interrupted (Rust has no safe thread kill), so
//! long-running host loops should poll [`CancelToken::is_cancelled`]
//! themselves. Every algorithm in this workspace goes through the machine
//! frequently enough that the cooperative check bounds the overshoot to a
//! single local step.
//!
//! The token carries no deadline of its own — *when* to cancel is the
//! supervisor's policy (see the `runner` crate's watchdog). This keeps the
//! simulator free of wall-clock reads, which is what makes fault runs and
//! batch reports bit-reproducible.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag (see the module docs).
///
/// Clones observe the same flag. The flag is one-way: once cancelled, a
/// token never becomes live again — re-running requires a fresh token.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, live token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trips the flag. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether the flag has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn cancellation_crosses_threads() {
        let token = CancelToken::new();
        let remote = token.clone();
        std::thread::spawn(move || remote.cancel()).join().unwrap();
        assert!(token.is_cancelled());
    }
}
