//! The machine: message accounting, placement, and instrumentation.

use crate::coord::Coord;
use crate::cost::Cost;
use crate::memory::MemMeter;
use crate::path::Path;
use crate::trace::Trace;
use crate::value::Tracked;

/// The Spatial Computer Model machine.
///
/// A `Machine` owns the global cost accumulators. Algorithms thread a
/// `&mut Machine` through their recursion; all cross-PE data movement goes
/// through [`Machine::send`] / [`Machine::send_owned`], which charge the
/// Manhattan distance to the energy counter, extend the value's critical
/// [`Path`], and update the global depth/distance watermarks.
///
/// The machine is deterministic and single-threaded: every cost reported is
/// exactly reproducible.
#[derive(Debug, Default)]
pub struct Machine {
    energy: u64,
    messages: u64,
    depth_watermark: u64,
    distance_watermark: u64,
    mem: Option<MemMeter>,
    trace: Option<Trace>,
}

impl Machine {
    /// A fresh machine with all counters at zero and instrumentation off.
    pub fn new() -> Self {
        Machine::default()
    }

    /// Enables per-PE memory metering (see [`MemMeter`]). Only values placed
    /// or moved after this call are metered, so enable it before placing the
    /// input.
    pub fn enable_memory_meter(&mut self) {
        self.mem = Some(MemMeter::new());
    }

    /// Enables message tracing with the given record cap.
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = Some(Trace::with_cap(cap));
    }

    /// The active memory meter, if enabled.
    pub fn memory(&self) -> Option<&MemMeter> {
        self.mem.as_ref()
    }

    /// The active trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Places an input value at a PE (free: input placement is part of the
    /// problem statement, not of the algorithm's cost).
    pub fn place<T>(&mut self, loc: Coord, value: T) -> Tracked<T> {
        if let Some(mem) = &mut self.mem {
            mem.store(loc);
        }
        Tracked::raw(value, loc, Path::ZERO)
    }

    /// Sends a *copy* of `t` to `dst`, charging one message. The source copy
    /// stays resident.
    pub fn send<T: Clone>(&mut self, t: &Tracked<T>, dst: Coord) -> Tracked<T> {
        let d = self.charge(t.loc(), dst, t.path());
        if let Some(mem) = &mut self.mem {
            mem.store(dst);
        }
        Tracked::raw(t.value().clone(), dst, t.path().step(d))
    }

    /// Moves `t` to `dst`, charging one message. The source PE frees the slot.
    pub fn send_owned<T>(&mut self, t: Tracked<T>, dst: Coord) -> Tracked<T> {
        let d = self.charge(t.loc(), dst, t.path());
        if let Some(mem) = &mut self.mem {
            mem.free(t.loc());
            mem.store(dst);
        }
        let path = t.path().step(d);
        let loc = t.loc();
        let _ = loc;
        let value = t.into_value();
        Tracked::raw(value, dst, path)
    }

    /// Discards a value, releasing its memory slot (free in the model).
    pub fn discard<T>(&mut self, t: Tracked<T>) {
        if let Some(mem) = &mut self.mem {
            mem.free(t.loc());
        }
    }

    /// Sends a value only if it is not already at `dst` (avoids charging
    /// zero-length self-messages; the model's messages always travel wires).
    pub fn move_to<T>(&mut self, t: Tracked<T>, dst: Coord) -> Tracked<T> {
        if t.loc() == dst {
            t
        } else {
            self.send_owned(t, dst)
        }
    }

    fn charge(&mut self, src: Coord, dst: Coord, path: Path) -> u64 {
        let d = src.manhattan(dst);
        self.energy += d;
        self.messages += 1;
        let p = path.step(d);
        self.depth_watermark = self.depth_watermark.max(p.depth);
        self.distance_watermark = self.distance_watermark.max(p.distance);
        if let Some(tr) = &mut self.trace {
            tr.record(src, dst, d);
        }
        d
    }

    /// Snapshot of the accumulated costs.
    pub fn report(&self) -> Cost {
        Cost {
            energy: self.energy,
            depth: self.depth_watermark,
            distance: self.distance_watermark,
            messages: self.messages,
        }
    }

    /// Total energy so far.
    pub fn energy(&self) -> u64 {
        self.energy
    }

    /// Number of messages so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_charges_manhattan_distance() {
        let mut m = Machine::new();
        let a = m.place(Coord::new(0, 0), 1u32);
        let b = m.send(&a, Coord::new(2, 3));
        assert_eq!(m.energy(), 5);
        assert_eq!(m.messages(), 1);
        assert_eq!(b.loc(), Coord::new(2, 3));
        assert_eq!(b.path(), Path { depth: 1, distance: 5 });
    }

    #[test]
    fn chains_accumulate_depth_and_distance() {
        let mut m = Machine::new();
        let a = m.place(Coord::ORIGIN, 0u8);
        let b = m.send_owned(a, Coord::new(0, 4));
        let c = m.send_owned(b, Coord::new(4, 4));
        assert_eq!(c.path(), Path { depth: 2, distance: 8 });
        assert_eq!(m.report().depth, 2);
        assert_eq!(m.report().distance, 8);
        assert_eq!(m.report().energy, 8);
    }

    #[test]
    fn independent_sends_do_not_chain() {
        let mut m = Machine::new();
        let a = m.place(Coord::ORIGIN, 0u8);
        let b = m.place(Coord::new(10, 0), 0u8);
        let _a2 = m.send(&a, Coord::new(0, 1));
        let _b2 = m.send(&b, Coord::new(10, 1));
        // Two parallel messages: energy 2, but depth stays 1.
        assert_eq!(m.report().energy, 2);
        assert_eq!(m.report().depth, 1);
        assert_eq!(m.report().distance, 1);
    }

    #[test]
    fn watermark_covers_dropped_values() {
        let mut m = Machine::new();
        let a = m.place(Coord::ORIGIN, 0u8);
        let far = m.send(&a, Coord::new(100, 0));
        let _ = far; // result discarded, but the chain still happened
        assert_eq!(m.report().distance, 100);
        assert_eq!(m.report().depth, 1);
    }

    #[test]
    fn move_to_skips_self_messages() {
        let mut m = Machine::new();
        let a = m.place(Coord::ORIGIN, 3i64);
        let a = m.move_to(a, Coord::ORIGIN);
        assert_eq!(m.messages(), 0);
        let a = m.move_to(a, Coord::new(1, 0));
        assert_eq!(m.messages(), 1);
        assert_eq!(a.loc(), Coord::new(1, 0));
    }

    #[test]
    fn memory_meter_follows_moves() {
        let mut m = Machine::new();
        m.enable_memory_meter();
        let a = m.place(Coord::ORIGIN, 1u8);
        let b = m.send(&a, Coord::new(0, 1)); // copy: both resident
        assert_eq!(m.memory().unwrap().resident(Coord::ORIGIN), 1);
        assert_eq!(m.memory().unwrap().resident(Coord::new(0, 1)), 1);
        let c = m.send_owned(b, Coord::new(0, 2)); // move
        assert_eq!(m.memory().unwrap().resident(Coord::new(0, 1)), 0);
        m.discard(a);
        m.discard(c);
        assert_eq!(m.memory().unwrap().resident(Coord::ORIGIN), 0);
        assert_eq!(m.memory().unwrap().peak(), 1);
    }

    #[test]
    fn trace_records_messages() {
        let mut m = Machine::new();
        m.enable_trace(16);
        let a = m.place(Coord::ORIGIN, 1u8);
        let _ = m.send(&a, Coord::new(1, 1));
        let tr = m.trace().unwrap();
        assert_eq!(tr.records().len(), 1);
        assert_eq!(tr.records()[0].len, 2);
    }
}
