//! The machine: message accounting, placement, instrumentation, and the
//! fault/conformance layer.

use spatial_rng::Rng;

use crate::batch::{self, BatchPattern};
use crate::cancel::CancelToken;
use crate::coord::Coord;
use crate::cost::Cost;
use crate::error::SpatialError;
use crate::fault::{FaultPlan, RowRemap};
use crate::guard::ModelGuard;
use crate::memory::MemMeter;
use crate::path::Path;
use crate::trace::Trace;
use crate::value::Tracked;

/// Live state of an active [`FaultPlan`].
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    /// Flat dead-row remap table, precomputed at [`Machine::enable_faults`]
    /// so per-message routing is O(1) instead of O(dead rows). `None` when
    /// the plan's dead rows span too wide a window to tabulate.
    remap: Option<RowRemap>,
    /// Whether the plan has individual hard-dead PEs — when it does not, the
    /// dead-target check is skipped entirely (remapped coordinates never
    /// land on a dead row).
    has_dead_pes: bool,
    /// Deterministic per-message transient-corruption stream.
    rng: Rng,
    /// Fault contacts: transiently corrupted messages plus (in the
    /// infallible API) deliveries to dead PEs. Any non-zero count means the
    /// run's output cannot be trusted end to end.
    hits: u64,
    /// Extra energy relative to the same run on a fault-free grid (dead-row
    /// detours plus degraded-link penalties).
    detour_energy: u64,
}

impl FaultState {
    /// The physical PE for logical `c`, via the flat table when available.
    #[inline]
    fn physical(&self, c: Coord) -> Coord {
        match &self.remap {
            Some(r) => r.physical(c),
            None => self.plan.physical(c),
        }
    }
}

/// The Spatial Computer Model machine.
///
/// A `Machine` owns the global cost accumulators. Algorithms thread a
/// `&mut Machine` through their recursion; all cross-PE data movement goes
/// through [`Machine::send`] / [`Machine::send_owned`], which charge the
/// Manhattan distance to the energy counter, extend the value's critical
/// [`Path`], and update the global depth/distance watermarks.
///
/// The machine is deterministic and single-threaded: every cost reported is
/// exactly reproducible — including under an active [`FaultPlan`], whose
/// random draws are pure functions of its seed.
///
/// ## Faults and guards
///
/// [`Machine::enable_faults`] activates a hardware-defect pattern: dead rows
/// are detoured around (logical coordinates are preserved; the longer
/// physical routes are charged to energy/distance), dead PEs and transient
/// message corruption are recorded. [`Machine::enable_guard`] activates
/// conformance checks (grid extent, per-PE memory cap, cost budgets).
///
/// Violations surface in one of two ways:
///
/// * the fallible methods ([`Machine::try_place`], [`Machine::try_send`],
///   [`Machine::try_send_owned`]) return `Err(`[`SpatialError`]`)`
///   immediately and leave the simulation state untouched where possible;
/// * the infallible methods keep their signatures, absorb the violation into
///   the run (the delivery still happens so the simulation can continue) and
///   **latch** the first error, retrievable via [`Machine::violation`] —
///   they never panic on guard/fault violations.
#[derive(Debug, Default)]
pub struct Machine {
    energy: u64,
    messages: u64,
    depth_watermark: u64,
    distance_watermark: u64,
    mem: Option<MemMeter>,
    trace: Option<Trace>,
    faults: Option<FaultState>,
    guard: Option<ModelGuard>,
    violation: Option<SpatialError>,
    cancel: Option<CancelToken>,
    /// The cost profile reports are charged under. **Not an instrument**:
    /// profiles are pure accounting applied to the final counters by
    /// [`Machine::profiled_report`], so setting one keeps
    /// [`Machine::is_bare`] true and the closed-form batch kernels engaged.
    profile: crate::profile::ProfileHandle,
}

impl Machine {
    /// A fresh machine with all counters at zero and instrumentation off.
    pub fn new() -> Self {
        Machine::default()
    }

    /// A fresh machine whose reports are charged under `profile` (see
    /// [`crate::profile`]). The profile is carried through the whole run —
    /// including the bare batch fast path, the closed-form kernels and the
    /// shard engine, none of which it perturbs — and applied to the exact
    /// counters at [`Machine::profiled_report`] time.
    pub fn with_profile(profile: &'static dyn crate::profile::CostProfile) -> Self {
        let mut m = Machine::default();
        m.profile = crate::profile::ProfileHandle(profile);
        m
    }

    /// Replaces the active cost profile (accounting only; never affects
    /// execution, costs already accumulated, or [`Machine::is_bare`]).
    pub fn set_profile(&mut self, profile: &'static dyn crate::profile::CostProfile) {
        self.profile = crate::profile::ProfileHandle(profile);
    }

    /// The active cost profile ([`crate::profile::ModelExact`] by default).
    pub fn profile(&self) -> &'static dyn crate::profile::CostProfile {
        self.profile.0
    }

    /// Enables per-PE memory metering (see [`MemMeter`]). Only values placed
    /// or moved after this call are metered, so enable it before placing the
    /// input. When a guard with a declared extent is already active, the
    /// meter uses flat (dense) counters over that extent instead of a hash
    /// map — same observations, cheaper per-message bookkeeping.
    pub fn enable_memory_meter(&mut self) {
        self.mem = Some(match self.guard.as_ref().and_then(|g| g.extent) {
            Some(extent) => MemMeter::with_extent(extent),
            None => MemMeter::new(),
        });
    }

    /// Enables per-PE memory metering with dense counters over `extent`
    /// (see [`MemMeter::with_extent`]) without requiring a guard.
    pub fn enable_memory_meter_bounded(&mut self, extent: crate::grid::SubGrid) {
        self.mem = Some(MemMeter::with_extent(extent));
    }

    /// Enables message tracing with the given record cap.
    pub fn enable_trace(&mut self, cap: usize) {
        self.trace = Some(Trace::with_cap(cap));
    }

    /// Activates a fault plan. Logical coordinates (what algorithms and
    /// [`Tracked::loc`] see) are unchanged; message costs are computed
    /// between the remapped *physical* PEs, so dead-row detours and
    /// degraded links show up in energy/distance. Enable before placing the
    /// input so placements are fault-checked too.
    pub fn enable_faults(&mut self, plan: FaultPlan) {
        let rng = plan.message_rng();
        let remap = plan.row_remap();
        let has_dead_pes = plan.has_dead_pes();
        self.faults =
            Some(FaultState { plan, remap, has_dead_pes, rng, hits: 0, detour_energy: 0 });
    }

    /// Activates conformance checks. A guard with a
    /// [`ModelGuard::mem_cap`] auto-enables the memory meter (like
    /// [`Machine::enable_memory_meter`], enable before placing the input);
    /// when the guard also declares an extent the auto-enabled meter uses
    /// flat counters over it.
    pub fn enable_guard(&mut self, guard: ModelGuard) {
        if guard.mem_cap.is_some() && self.mem.is_none() {
            self.mem = Some(match guard.extent {
                Some(extent) => MemMeter::with_extent(extent),
                None => MemMeter::new(),
            });
        }
        self.guard = Some(guard);
    }

    /// Attaches a cooperative cancellation token (see [`CancelToken`]).
    /// Once the token is tripped, every subsequent placement or send
    /// surfaces [`SpatialError::Cancelled`] — returned by the fallible
    /// `try_*` methods, latched by the infallible ones — so a supervisor's
    /// deadline watchdog can stop a runaway simulation at its next message.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// The active memory meter, if enabled.
    pub fn memory(&self) -> Option<&MemMeter> {
        self.mem.as_ref()
    }

    /// The active memory meter, or a typed
    /// [`SpatialError::InstrumentationDisabled`] usage error when
    /// [`Machine::enable_memory_meter`] was never called — for drivers that
    /// must report a misconfiguration instead of panicking on `unwrap`.
    pub fn require_memory(&self) -> Result<&MemMeter, SpatialError> {
        self.mem.as_ref().ok_or(SpatialError::InstrumentationDisabled {
            what: "memory meter (call Machine::enable_memory_meter before placing the input)",
        })
    }

    /// The active trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// The active trace, or a typed
    /// [`SpatialError::InstrumentationDisabled`] usage error when
    /// [`Machine::enable_trace`] was never called — for drivers that must
    /// report a misconfiguration instead of panicking on `unwrap`.
    pub fn require_trace(&self) -> Result<&Trace, SpatialError> {
        self.trace.as_ref().ok_or(SpatialError::InstrumentationDisabled {
            what: "message trace (call Machine::enable_trace before running the algorithm)",
        })
    }

    /// The active fault plan, if enabled.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| &f.plan)
    }

    /// The active guard, if enabled.
    pub fn guard(&self) -> Option<&ModelGuard> {
        self.guard.as_ref()
    }

    /// Number of fault contacts so far: transiently corrupted messages plus
    /// infallible deliveries to dead PEs. A recovery harness treats any
    /// non-zero count as an end-to-end checksum failure.
    pub fn fault_hits(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.hits)
    }

    /// Extra energy charged relative to the same run on a fault-free grid
    /// (dead-row detours plus degraded-link penalties) — the measured
    /// fault-tolerance overhead.
    pub fn detour_energy(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.detour_energy)
    }

    /// The first guard/fault violation absorbed by the infallible API, if
    /// any. `None` means the run so far is model-conformant.
    pub fn violation(&self) -> Option<&SpatialError> {
        self.violation.as_ref()
    }

    /// Takes (and clears) the latched violation.
    pub fn take_violation(&mut self) -> Option<SpatialError> {
        self.violation.take()
    }

    /// Runs `f` and converts any violation it latches into a typed error:
    /// `Err` if a violation was already latched before the call or if `f`
    /// latches one, `Ok(f(self))` otherwise. This is the building block for
    /// the `try_` entry points of the algorithm crates.
    pub fn guarded<R>(&mut self, f: impl FnOnce(&mut Machine) -> R) -> Result<R, SpatialError> {
        if let Some(e) = &self.violation {
            return Err(e.clone());
        }
        let out = f(self);
        match &self.violation {
            Some(e) => Err(e.clone()),
            None => Ok(out),
        }
    }

    /// Places an input value at a PE (free: input placement is part of the
    /// problem statement, not of the algorithm's cost). Guard/fault
    /// violations are latched (see [`Machine::violation`]).
    pub fn place<T>(&mut self, loc: Coord, value: T) -> Tracked<T> {
        match self.place_impl(loc, value, false) {
            Ok(t) => t,
            Err(_) => unreachable!("lax placement never fails"),
        }
    }

    /// Fallible [`Machine::place`]: returns the violation instead of
    /// latching it, and performs no placement on error.
    pub fn try_place<T>(&mut self, loc: Coord, value: T) -> Result<Tracked<T>, SpatialError> {
        self.place_impl(loc, value, true)
    }

    /// Places `values[i]` at `loc_of(i)` — [`Machine::place`] over a whole
    /// input array. Placement is free either way; on an uninstrumented
    /// machine this skips the per-item guard/fault/meter checks entirely
    /// (sharding the construction across workers for large inputs — see
    /// [`crate::sim_threads`]), while any active instrumentation sees the
    /// identical per-item placement stream.
    pub fn place_batch<T: Send>(
        &mut self,
        values: Vec<T>,
        loc_of: impl Fn(usize) -> Coord + Sync,
    ) -> Vec<Tracked<T>> {
        if !self.is_bare() {
            return values.into_iter().enumerate().map(|(i, v)| self.place(loc_of(i), v)).collect();
        }
        let (out, _) = batch::shard_map(values, |v, i, _| Tracked::raw(v, loc_of(i), Path::ZERO));
        out
    }

    /// Sends a *copy* of `t` to `dst`, charging one message. The source copy
    /// stays resident. Guard/fault violations are latched (see
    /// [`Machine::violation`]).
    pub fn send<T: Clone>(&mut self, t: &Tracked<T>, dst: Coord) -> Tracked<T> {
        match self.send_impl(t.value().clone(), t.loc(), t.path(), dst, false, false) {
            Ok(t) => t,
            Err(_) => unreachable!("lax send never fails"),
        }
    }

    /// Fallible [`Machine::send`]: returns the violation instead of latching
    /// it. On `Err` for a dead/out-of-bounds target nothing is charged; on a
    /// budget error the message *was* charged (it is the send that crossed
    /// the budget) but nothing is delivered.
    pub fn try_send<T: Clone>(
        &mut self,
        t: &Tracked<T>,
        dst: Coord,
    ) -> Result<Tracked<T>, SpatialError> {
        self.send_impl(t.value().clone(), t.loc(), t.path(), dst, false, true)
    }

    /// Moves `t` to `dst`, charging one message. The source PE frees the
    /// slot. Guard/fault violations are latched (see [`Machine::violation`]).
    pub fn send_owned<T>(&mut self, t: Tracked<T>, dst: Coord) -> Tracked<T> {
        let (value, loc, path) = t.into_parts();
        match self.send_impl(value, loc, path, dst, true, false) {
            Ok(t) => t,
            Err(_) => unreachable!("lax send never fails"),
        }
    }

    /// Fallible [`Machine::send_owned`]: returns the violation instead of
    /// latching it. On `Err` the moved value is lost (the model has no
    /// return channel for a failed delivery); use [`Machine::try_send`] and
    /// an explicit [`Machine::discard`] to keep the source copy on failure.
    pub fn try_send_owned<T>(
        &mut self,
        t: Tracked<T>,
        dst: Coord,
    ) -> Result<Tracked<T>, SpatialError> {
        let (value, loc, path) = t.into_parts();
        self.send_impl(value, loc, path, dst, true, true)
    }

    /// Discards a value, releasing its memory slot (free in the model).
    pub fn discard<T>(&mut self, t: Tracked<T>) {
        if let Some(mem) = &mut self.mem {
            mem.free(t.loc());
        }
    }

    /// Sends a value only if it is not already at `dst` (avoids charging
    /// zero-length self-messages; the model's messages always travel wires).
    pub fn move_to<T>(&mut self, t: Tracked<T>, dst: Coord) -> Tracked<T> {
        if t.loc() == dst {
            t
        } else {
            self.send_owned(t, dst)
        }
    }

    /// True when no instrumentation can observe or veto a send — every
    /// message reduces to pure counter arithmetic, and the batch APIs may
    /// hoist all per-message checks out of their inner loops. Closed-form
    /// cost kernels (see [`crate::kernels`]) are only valid on a bare
    /// machine; with any instrument armed, algorithms must run the
    /// materializing per-item path so the instrument observes the exact
    /// open-coded event stream.
    #[inline]
    pub fn is_bare(&self) -> bool {
        self.mem.is_none()
            && self.trace.is_none()
            && self.faults.is_none()
            && self.guard.is_none()
            && self.cancel.is_none()
    }

    /// Adds a closed-form energy total, clamping exactly where the serial
    /// per-item saturating fold would (see the saturation note in
    /// [`crate::batch`]).
    #[inline]
    pub(crate) fn add_energy_total(&mut self, total: u128) {
        self.energy = (u128::from(self.energy) + total).min(u128::from(u64::MAX)) as u64;
    }

    /// Adds closed-form-counted messages (for cost kernels charging whole
    /// phases at once).
    #[inline]
    pub(crate) fn add_messages(&mut self, n: u64) {
        self.messages += n;
    }

    /// Merges a shard partial's watermarks only (energy/messages were
    /// charged in closed form).
    #[inline]
    pub(crate) fn absorb_watermarks(&mut self, acc: crate::batch::ShardAcc) {
        self.depth_watermark = self.depth_watermark.max(acc.depth);
        self.distance_watermark = self.distance_watermark.max(acc.distance);
    }

    /// Merges a full shard partial into the machine's counters.
    #[inline]
    fn absorb_shard(&mut self, acc: crate::batch::ShardAcc) {
        self.energy = self.energy.saturating_add(acc.energy);
        self.messages += acc.messages;
        self.absorb_watermarks(acc);
    }

    /// Moves a batch of values, each to its own destination, charging the
    /// same costs as [`Machine::move_to`] on every pair (self-messages are
    /// skipped, all others charge one message).
    ///
    /// On an uninstrumented machine the batch is first classified (see
    /// [`BatchPattern`]): uniform and affine-strided displacement batches
    /// charge energy and message count with O(1) closed-form arithmetic,
    /// irregular ones with the ordinary per-item loop; either way the
    /// per-item delivery construction is sharded across workers for large
    /// batches ([`crate::sim_threads`]), with shard partials merged in fixed
    /// order so costs are bit-identical at any thread count. With any
    /// instrumentation active (meter, trace, faults, guard, cancellation)
    /// each pair goes through the ordinary `move_to` path, so batching
    /// never changes what instruments observe.
    pub fn send_batch<T: Send>(&mut self, items: Vec<(Tracked<T>, Coord)>) -> Vec<Tracked<T>> {
        if !self.is_bare() {
            return items.into_iter().map(|(t, dst)| self.move_to(t, dst)).collect();
        }
        let n = items.len() as u64;
        match batch::classify(items.iter().map(|(t, dst)| (t.loc(), *dst))) {
            // All self-moves: free, nothing charged, nothing moved.
            BatchPattern::Uniform { drow: 0, dcol: 0 } => {
                items.into_iter().map(|(t, _)| t).collect()
            }
            // One common displacement and it is non-zero, so no pair is a
            // self-move: energy is count × length in one multiplication.
            BatchPattern::Uniform { drow, dcol } => {
                let d = drow.unsigned_abs() + dcol.unsigned_abs();
                self.add_energy_total(u128::from(n) * u128::from(d));
                self.messages += n;
                let (out, acc) = batch::shard_map(items, |(t, dst), _, acc| {
                    let (value, _, path) = t.into_parts();
                    let p = path.step(d);
                    acc.observe(p);
                    Tracked::raw(value, dst, p)
                });
                self.absorb_watermarks(acc);
                out
            }
            // Affinely strided displacements: the energy sum is an
            // arithmetic series and the (at most one) zero-displacement
            // index is solvable in O(1), so counters never touch the loop.
            BatchPattern::Affine { drow, dcol, srow, scol } => {
                self.add_energy_total(
                    batch::sum_abs_affine(drow, srow, n) + batch::sum_abs_affine(dcol, scol, n),
                );
                self.messages += n - batch::affine_zero_count(drow, dcol, srow, scol, n);
                let (out, acc) = batch::shard_map(items, |(t, dst), _, acc| {
                    let (value, src, path) = t.into_parts();
                    if src == dst {
                        return Tracked::raw(value, src, path);
                    }
                    let p = path.step(src.manhattan(dst));
                    acc.observe(p);
                    Tracked::raw(value, dst, p)
                });
                self.absorb_watermarks(acc);
                out
            }
            BatchPattern::Empty | BatchPattern::Irregular => {
                let (out, acc) = batch::shard_map(items, |(t, dst), _, acc| {
                    let (value, src, path) = t.into_parts();
                    if src == dst {
                        return Tracked::raw(value, src, path);
                    }
                    let d = src.manhattan(dst);
                    acc.charge(d);
                    let p = path.step(d);
                    acc.observe(p);
                    Tracked::raw(value, dst, p)
                });
                self.absorb_shard(acc);
                out
            }
        }
    }

    /// Sends a *copy* of each value to its destination, charging the same
    /// costs as [`Machine::send`] on every pair (unlike [`Machine::send_batch`]
    /// nothing is skipped: a copy to the source's own PE still charges one
    /// zero-length message, exactly as `send` does).
    ///
    /// Fast path and instrumentation behavior as in [`Machine::send_batch`]:
    /// classified closed-form charging for uniform/affine batches, sharded
    /// per-item construction for large ones. Since nothing is skipped here,
    /// the message count is always exactly `items.len()`.
    pub fn send_batch_copy<T: Clone + Send + Sync>(
        &mut self,
        items: &[(&Tracked<T>, Coord)],
    ) -> Vec<Tracked<T>> {
        if !self.is_bare() {
            return items.iter().map(|&(t, dst)| self.send(t, dst)).collect();
        }
        let n = items.len() as u64;
        match batch::classify(items.iter().map(|&(t, dst)| (t.loc(), dst))) {
            BatchPattern::Uniform { drow, dcol } => {
                let d = drow.unsigned_abs() + dcol.unsigned_abs();
                self.add_energy_total(u128::from(n) * u128::from(d));
                self.messages += n;
                let (out, acc) = batch::shard_map_ref(items, |&(t, dst), _, acc| {
                    let p = t.path().step(d);
                    acc.observe(p);
                    Tracked::raw(t.value().clone(), dst, p)
                });
                self.absorb_watermarks(acc);
                out
            }
            BatchPattern::Affine { drow, dcol, srow, scol } => {
                self.add_energy_total(
                    batch::sum_abs_affine(drow, srow, n) + batch::sum_abs_affine(dcol, scol, n),
                );
                self.messages += n;
                let (out, acc) = batch::shard_map_ref(items, |&(t, dst), _, acc| {
                    let p = t.path().step(t.loc().manhattan(dst));
                    acc.observe(p);
                    Tracked::raw(t.value().clone(), dst, p)
                });
                self.absorb_watermarks(acc);
                out
            }
            BatchPattern::Empty | BatchPattern::Irregular => {
                let (out, acc) = batch::shard_map_ref(items, |&(t, dst), _, acc| {
                    let d = t.loc().manhattan(dst);
                    acc.charge(d);
                    let p = t.path().step(d);
                    acc.observe(p);
                    Tracked::raw(t.value().clone(), dst, p)
                });
                self.absorb_shard(acc);
                out
            }
        }
    }

    /// Gathers copies of `srcs` at `dst` and folds them pairwise in arrival
    /// order: the first arrival seeds the accumulator, every later arrival
    /// is combined via `op` and both operands are discarded. Exactly
    /// equivalent — in charged costs, in the result's critical path, and in
    /// the per-PE event stream instruments observe — to the open-coded
    ///
    /// ```text
    /// acc = send(srcs[0], dst);
    /// for s in &srcs[1..] {
    ///     arrived = send(s, dst);
    ///     next = acc.zip_with(&arrived, op); discard(acc); discard(arrived);
    ///     acc = next;
    /// }
    /// ```
    ///
    /// On an uninstrumented machine the whole gather runs as one pass of
    /// counter arithmetic folding plain `&T` values — no intermediate
    /// `Tracked` is built or torn down per arrival.
    ///
    /// # Panics
    /// Panics if `srcs` is empty (a usage bug, not a model violation).
    pub fn gather_copy<T: Clone>(
        &mut self,
        srcs: &[&Tracked<T>],
        dst: Coord,
        op: impl Fn(&T, &T) -> T,
    ) -> Tracked<T> {
        assert!(!srcs.is_empty(), "gather_copy requires at least one source");
        if !self.is_bare() {
            let mut acc = self.send(srcs[0], dst);
            for s in &srcs[1..] {
                let arrived = self.send(s, dst);
                let next = acc.zip_with(&arrived, &op);
                self.discard(acc);
                self.discard(arrived);
                acc = next;
            }
            return acc;
        }
        // Equidistant sources (e.g. a whole block's corners gathering at a
        // level hub) charge their energy in one multiplication; the value
        // fold itself is inherently sequential in arrival order either way.
        let closed_form = match batch::classify(srcs.iter().map(|s| (s.loc(), dst))) {
            BatchPattern::Uniform { drow, dcol } => {
                let d = drow.unsigned_abs() + dcol.unsigned_abs();
                self.add_energy_total(u128::from(srcs.len() as u64) * u128::from(d));
                true
            }
            _ => false,
        };
        let mut energy = self.energy;
        let mut depth = self.depth_watermark;
        let mut distance = self.distance_watermark;
        let first = srcs[0];
        let d = first.loc().manhattan(dst);
        if !closed_form {
            energy = energy.saturating_add(d);
        }
        let mut path = first.path().step(d);
        depth = depth.max(path.depth);
        distance = distance.max(path.distance);
        let mut value = first.value().clone();
        for s in &srcs[1..] {
            let d = s.loc().manhattan(dst);
            if !closed_form {
                energy = energy.saturating_add(d);
            }
            let p = s.path().step(d);
            depth = depth.max(p.depth);
            distance = distance.max(p.distance);
            value = op(&value, s.value());
            path = path.join(p);
        }
        self.energy = energy;
        self.messages += srcs.len() as u64;
        self.depth_watermark = depth;
        self.distance_watermark = distance;
        Tracked::raw(value, dst, path)
    }

    /// The fold-and-scatter step of a multi-ary down-sweep in one call:
    /// starting from an optional exclusive prefix `carry` (resident at
    /// `hub`), gathers a copy of each of the `N-1` `children` at `hub`,
    /// forms the running prefixes `carry, carry∘c₀, carry∘c₀∘c₁, …`, and
    /// delivers prefix `i` to `dsts[i]` with move semantics (a delivery to
    /// the PE it is already on is free, as in [`Machine::move_to`]).
    /// Returns the delivered prefixes; slot 0 is `None` when `carry` was.
    ///
    /// Charges exactly what the open-coded gather/duplicate/`move_to` loop
    /// charges. On an uninstrumented machine the whole step is one pass of
    /// counter arithmetic with one value clone per emitted prefix; with any
    /// instrumentation active it replays the open-coded sequence so
    /// instruments observe the identical per-PE event stream.
    pub fn fold_scatter<T: Clone, const N: usize>(
        &mut self,
        carry: Option<Tracked<T>>,
        children: &[&Tracked<T>],
        hub: Coord,
        dsts: &[Coord; N],
        op: impl Fn(&T, &T) -> T,
    ) -> [Option<Tracked<T>>; N] {
        assert_eq!(children.len() + 1, N, "one destination per running prefix");
        debug_assert!(carry.as_ref().is_none_or(|c| c.loc() == hub), "carry must reside at hub");
        if !self.is_bare() {
            let mut prefixes: [Option<Tracked<T>>; N] = std::array::from_fn(|_| None);
            let mut running: Option<Tracked<T>> = carry;
            if let Some(c) = &running {
                prefixes[0] = Some(c.duplicate());
            }
            for (i, child) in children.iter().enumerate() {
                let s = self.send(child, hub);
                running = Some(match running.take() {
                    None => s,
                    Some(r) => {
                        let nr = r.zip_with(&s, &op);
                        self.discard(r);
                        self.discard(s);
                        nr
                    }
                });
                prefixes[i + 1] = Some(running.as_ref().expect("just set").duplicate());
            }
            if let Some(r) = running {
                self.discard(r);
            }
            let mut out: [Option<Tracked<T>>; N] = std::array::from_fn(|_| None);
            for (i, p) in prefixes.into_iter().enumerate() {
                out[i] = p.map(|p| self.move_to(p, dsts[i]));
            }
            return out;
        }
        // Classified gather leg: equidistant children charge their total in
        // one multiplication, as in [`Machine::gather_copy`].
        let gather_closed_form = match batch::classify(children.iter().map(|c| (c.loc(), hub))) {
            BatchPattern::Uniform { drow, dcol } => {
                let d = drow.unsigned_abs() + dcol.unsigned_abs();
                self.add_energy_total(u128::from(children.len() as u64) * u128::from(d));
                true
            }
            _ => false,
        };
        let mut out: [Option<Tracked<T>>; N] = std::array::from_fn(|_| None);
        let mut running: Option<(T, Path)> = carry.map(|c| {
            let (v, _, p) = c.into_parts();
            (v, p)
        });
        if let Some((v, p)) = &running {
            out[0] = Some(self.deliver_bare(v.clone(), *p, hub, dsts[0]));
        }
        for (i, child) in children.iter().enumerate() {
            let d = child.loc().manhattan(hub);
            if !gather_closed_form {
                self.energy = self.energy.saturating_add(d);
            }
            self.messages += 1;
            let p = child.path().step(d);
            self.depth_watermark = self.depth_watermark.max(p.depth);
            self.distance_watermark = self.distance_watermark.max(p.distance);
            running = Some(match running.take() {
                None => (child.value().clone(), p),
                Some((rv, rp)) => (op(&rv, child.value()), rp.join(p)),
            });
            let (rv, rp) = running.as_ref().expect("just set");
            out[i + 1] = Some(self.deliver_bare(rv.clone(), *rp, hub, dsts[i + 1]));
        }
        out
    }

    /// Move-semantics delivery on the bare fast path: charges one message
    /// unless `src == dst` (free, like [`Machine::move_to`]).
    #[inline]
    fn deliver_bare<T>(&mut self, value: T, path: Path, src: Coord, dst: Coord) -> Tracked<T> {
        if src == dst {
            return Tracked::raw(value, src, path);
        }
        let d = src.manhattan(dst);
        self.energy = self.energy.saturating_add(d);
        self.messages += 1;
        let p = path.step(d);
        self.depth_watermark = self.depth_watermark.max(p.depth);
        self.distance_watermark = self.distance_watermark.max(p.distance);
        Tracked::raw(value, dst, p)
    }

    /// Local fold of co-located values (the machine-aware form of
    /// [`Tracked::combine`]): non-co-located operands latch a typed
    /// [`SpatialError::NotCoLocated`] instead of panicking, and the fold
    /// continues at the first operand's PE so guarded runs can surface the
    /// violation through [`Machine::guarded`] / [`Machine::violation`].
    ///
    /// # Panics
    /// Panics if `items` is empty (a usage bug, not a model violation).
    pub fn combine<T, R>(
        &mut self,
        items: &[Tracked<T>],
        f: impl FnOnce(&[&T]) -> R,
    ) -> Tracked<R> {
        match self.combine_impl(items, f, false) {
            Ok(t) => t,
            Err(_) => unreachable!("lax combine never fails"),
        }
    }

    /// Fallible [`Machine::combine`]: returns [`SpatialError::NotCoLocated`]
    /// on the first operand residing at a different PE than the first,
    /// without latching and without running `f`.
    pub fn try_combine<T, R>(
        &mut self,
        items: &[Tracked<T>],
        f: impl FnOnce(&[&T]) -> R,
    ) -> Result<Tracked<R>, SpatialError> {
        self.combine_impl(items, f, true)
    }

    fn combine_impl<T, R>(
        &mut self,
        items: &[Tracked<T>],
        f: impl FnOnce(&[&T]) -> R,
        strict: bool,
    ) -> Result<Tracked<R>, SpatialError> {
        assert!(!items.is_empty(), "combine requires at least one operand");
        let loc = items[0].loc();
        let mut path = Path::ZERO;
        for it in items {
            if it.loc() != loc {
                let e = SpatialError::NotCoLocated { expected: loc, found: it.loc() };
                if strict {
                    return Err(e);
                }
                self.latch(e);
            }
            path = path.join(it.path());
        }
        let refs: Vec<&T> = items.iter().map(|t| t.value()).collect();
        Ok(Tracked::raw(f(&refs), loc, path))
    }

    /// Latches the first absorbed violation.
    #[inline]
    fn latch(&mut self, e: SpatialError) {
        if self.violation.is_none() {
            self.violation = Some(e);
        }
    }

    /// The cancellation violation, if the attached token has been tripped.
    #[inline]
    fn cancel_violation(&self) -> Option<SpatialError> {
        match &self.cancel {
            Some(token) if token.is_cancelled() => Some(SpatialError::Cancelled),
            _ => None,
        }
    }

    /// The dead-PE / out-of-bounds violation for targeting `dst`, if any.
    #[inline]
    fn target_violation(&self, dst: Coord) -> Option<SpatialError> {
        if let Some(extent) = self.guard.as_ref().and_then(|g| g.extent) {
            if !extent.contains(dst) {
                return Some(SpatialError::OutOfBounds { loc: dst, extent });
            }
        }
        if let Some(f) = &self.faults {
            // A remapped coordinate never lands on a dead *row*, so the only
            // possible dead target is an individual hard-dead PE — skip the
            // remap entirely when the plan has none.
            if f.has_dead_pes {
                let physical = f.physical(dst);
                if f.plan.dead_pe_at(physical) {
                    return Some(SpatialError::DeadPe { logical: dst, physical });
                }
            }
        }
        None
    }

    /// The memory-cap violation a delivery to `dst` would cause, if any.
    #[inline]
    fn mem_violation(&self, dst: Coord) -> Option<SpatialError> {
        let cap = self.guard.as_ref()?.mem_cap?;
        let resident = self.mem.as_ref().map_or(0, |m| m.resident(dst));
        if resident >= cap {
            Some(SpatialError::MemoryExceeded { loc: dst, resident, cap })
        } else {
            None
        }
    }

    fn place_impl<T>(
        &mut self,
        loc: Coord,
        value: T,
        strict: bool,
    ) -> Result<Tracked<T>, SpatialError> {
        if let Some(e) = self.cancel_violation() {
            if strict {
                return Err(e);
            }
            self.latch(e);
        }
        if let Some(e) = self.target_violation(loc) {
            if strict {
                return Err(e);
            }
            if matches!(e, SpatialError::DeadPe { .. }) {
                if let Some(f) = &mut self.faults {
                    f.hits += 1;
                }
            }
            self.latch(e);
        }
        if let Some(e) = self.mem_violation(loc) {
            if strict {
                return Err(e);
            }
            self.latch(e);
        }
        if let Some(mem) = &mut self.mem {
            mem.store(loc);
        }
        Ok(Tracked::raw(value, loc, Path::ZERO))
    }

    fn send_impl<T>(
        &mut self,
        value: T,
        src: Coord,
        path: Path,
        dst: Coord,
        owned: bool,
        strict: bool,
    ) -> Result<Tracked<T>, SpatialError> {
        // The cancellation check comes first: a cancelled run should stop at
        // its next message without charging further traffic.
        if let Some(e) = self.cancel_violation() {
            if strict {
                return Err(e);
            }
            self.latch(e);
        }
        if let Some(e) = self.target_violation(dst) {
            if strict {
                return Err(e);
            }
            if matches!(e, SpatialError::DeadPe { .. }) {
                if let Some(f) = &mut self.faults {
                    f.hits += 1;
                }
            }
            self.latch(e);
        }
        // The memory cap is checked before the wire charge so a strict
        // failure leaves the counters untouched. A move to the source's own
        // PE frees the slot before re-storing, so it can never overflow.
        let mem_err = if owned && src == dst { None } else { self.mem_violation(dst) };
        if let Some(e) = mem_err {
            if strict {
                return Err(e);
            }
            self.latch(e);
        }
        let d = self.charge(src, dst, path);
        if let Some(mem) = &mut self.mem {
            if owned {
                mem.free(src);
            }
            mem.store(dst);
        }
        if let Some(e) = self.guard.as_ref().and_then(|g| g.budget_violation(self.report())) {
            if strict {
                return Err(e);
            }
            self.latch(e);
        }
        Ok(Tracked::raw(value, dst, path.step(d)))
    }

    /// Charges one message from `src` to `dst`. Under an active fault plan
    /// the charged distance is the *physical* route (dead-row detours plus
    /// degraded-link penalties); the trace keeps logical endpoints so traces
    /// of faulty and fault-free runs stay comparable.
    #[inline]
    fn charge(&mut self, src: Coord, dst: Coord, path: Path) -> u64 {
        let logical = src.manhattan(dst);
        let d = match &mut self.faults {
            None => logical,
            Some(f) => {
                let (ps, pd) = (f.physical(src), f.physical(dst));
                let physical = ps.manhattan(pd) + f.plan.degraded_penalty(ps, pd);
                f.detour_energy = f.detour_energy.saturating_add(physical.saturating_sub(logical));
                if f.plan.has_transient_faults() && f.rng.gen_bool(f.plan.flaky()) {
                    f.hits += 1;
                }
                physical
            }
        };
        self.energy = self.energy.saturating_add(d);
        self.messages += 1;
        let p = path.step(d);
        self.depth_watermark = self.depth_watermark.max(p.depth);
        self.distance_watermark = self.distance_watermark.max(p.distance);
        if let Some(tr) = &mut self.trace {
            tr.record(src, dst, d);
        }
        d
    }

    /// Snapshot of the accumulated costs.
    #[inline]
    pub fn report(&self) -> Cost {
        Cost {
            energy: self.energy,
            depth: self.depth_watermark,
            distance: self.distance_watermark,
            messages: self.messages,
        }
    }

    /// The accumulated costs charged under the active profile: the pJ
    /// decomposition, cycle delay and EDP of [`Machine::report`] (which is
    /// carried verbatim in [`crate::ProfiledCost::raw`]). Errs only if the
    /// profile's weight arithmetic saturates `u128` — impossible for the
    /// built-in profiles on counters a real run can produce.
    pub fn profiled_report(
        &self,
    ) -> Result<crate::profile::ProfiledCost, crate::profile::ProfileError> {
        self.profile.0.charge(self.report())
    }

    /// Total energy so far.
    #[inline]
    pub fn energy(&self) -> u64 {
        self.energy
    }

    /// Number of messages so far.
    #[inline]
    pub fn messages(&self) -> u64 {
        self.messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::SubGrid;

    #[test]
    fn send_charges_manhattan_distance() {
        let mut m = Machine::new();
        let a = m.place(Coord::new(0, 0), 1u32);
        let b = m.send(&a, Coord::new(2, 3));
        assert_eq!(m.energy(), 5);
        assert_eq!(m.messages(), 1);
        assert_eq!(b.loc(), Coord::new(2, 3));
        assert_eq!(b.path(), Path { depth: 1, distance: 5 });
    }

    #[test]
    fn chains_accumulate_depth_and_distance() {
        let mut m = Machine::new();
        let a = m.place(Coord::ORIGIN, 0u8);
        let b = m.send_owned(a, Coord::new(0, 4));
        let c = m.send_owned(b, Coord::new(4, 4));
        assert_eq!(c.path(), Path { depth: 2, distance: 8 });
        assert_eq!(m.report().depth, 2);
        assert_eq!(m.report().distance, 8);
        assert_eq!(m.report().energy, 8);
    }

    #[test]
    fn independent_sends_do_not_chain() {
        let mut m = Machine::new();
        let a = m.place(Coord::ORIGIN, 0u8);
        let b = m.place(Coord::new(10, 0), 0u8);
        let _a2 = m.send(&a, Coord::new(0, 1));
        let _b2 = m.send(&b, Coord::new(10, 1));
        // Two parallel messages: energy 2, but depth stays 1.
        assert_eq!(m.report().energy, 2);
        assert_eq!(m.report().depth, 1);
        assert_eq!(m.report().distance, 1);
    }

    #[test]
    fn watermark_covers_dropped_values() {
        let mut m = Machine::new();
        let a = m.place(Coord::ORIGIN, 0u8);
        let far = m.send(&a, Coord::new(100, 0));
        let _ = far; // result discarded, but the chain still happened
        assert_eq!(m.report().distance, 100);
        assert_eq!(m.report().depth, 1);
    }

    #[test]
    fn move_to_skips_self_messages() {
        let mut m = Machine::new();
        let a = m.place(Coord::ORIGIN, 3i64);
        let a = m.move_to(a, Coord::ORIGIN);
        assert_eq!(m.messages(), 0);
        let a = m.move_to(a, Coord::new(1, 0));
        assert_eq!(m.messages(), 1);
        assert_eq!(a.loc(), Coord::new(1, 0));
    }

    #[test]
    fn memory_meter_follows_moves() {
        let mut m = Machine::new();
        m.enable_memory_meter();
        let a = m.place(Coord::ORIGIN, 1u8);
        let b = m.send(&a, Coord::new(0, 1)); // copy: both resident
        assert_eq!(m.memory().unwrap().resident(Coord::ORIGIN), 1);
        assert_eq!(m.memory().unwrap().resident(Coord::new(0, 1)), 1);
        let c = m.send_owned(b, Coord::new(0, 2)); // move
        assert_eq!(m.memory().unwrap().resident(Coord::new(0, 1)), 0);
        m.discard(a);
        m.discard(c);
        assert_eq!(m.memory().unwrap().resident(Coord::ORIGIN), 0);
        assert_eq!(m.memory().unwrap().peak(), 1);
    }

    #[test]
    fn trace_records_messages() {
        let mut m = Machine::new();
        m.enable_trace(16);
        let a = m.place(Coord::ORIGIN, 1u8);
        let _ = m.send(&a, Coord::new(1, 1));
        let tr = m.trace().unwrap();
        assert_eq!(tr.records().len(), 1);
        assert_eq!(tr.records()[0].len, 2);
    }

    #[test]
    fn dead_row_detours_are_charged_not_hidden() {
        let mut m = Machine::new();
        m.enable_faults(FaultPlan::builder(0).dead_row(1).build());
        let a = m.place(Coord::new(0, 0), 1u8);
        // Logical (0,0)→(2,0) is distance 2; the detour around dead row 1
        // stretches it to physical (0,0)→(3,0) = 3.
        let b = m.send(&a, Coord::new(2, 0));
        assert_eq!(b.loc(), Coord::new(2, 0), "logical coordinates are preserved");
        assert_eq!(m.energy(), 3);
        assert_eq!(m.detour_energy(), 1);
        assert_eq!(m.fault_hits(), 0);
        assert!(m.violation().is_none());
    }

    #[test]
    fn degraded_rows_add_link_penalties() {
        let mut m = Machine::new();
        m.enable_faults(FaultPlan::builder(0).degraded_row(1).build());
        let a = m.place(Coord::new(0, 0), 1u8);
        let b = m.send(&a, Coord::new(2, 0)); // crosses degraded row 1
        assert_eq!(m.energy(), 3);
        assert_eq!(m.detour_energy(), 1);
        let _ = m.send(&b, Coord::new(2, 2)); // untouched rows: no penalty
        assert_eq!(m.energy(), 5);
    }

    #[test]
    fn try_send_to_dead_pe_fails_without_charging() {
        let mut m = Machine::new();
        m.enable_faults(FaultPlan::builder(0).dead_pe(Coord::new(0, 3)).build());
        let a = m.place(Coord::ORIGIN, 1u8);
        let err = m.try_send(&a, Coord::new(0, 3)).unwrap_err();
        assert!(matches!(err, SpatialError::DeadPe { .. }));
        assert_eq!(m.energy(), 0, "failed strict send charges nothing");
        assert!(m.violation().is_none(), "strict errors are returned, not latched");
    }

    #[test]
    fn infallible_send_to_dead_pe_latches_and_counts_a_hit() {
        let mut m = Machine::new();
        m.enable_faults(FaultPlan::builder(0).dead_pe(Coord::new(0, 3)).build());
        let a = m.place(Coord::ORIGIN, 1u8);
        let b = m.send(&a, Coord::new(0, 3)); // absorbed: simulation continues
        assert_eq!(b.loc(), Coord::new(0, 3));
        assert_eq!(m.fault_hits(), 1);
        assert!(matches!(m.violation(), Some(SpatialError::DeadPe { .. })));
    }

    #[test]
    fn guard_extent_rejects_out_of_bounds_traffic() {
        let mut m = Machine::new();
        m.enable_guard(ModelGuard::new().extent(SubGrid::square(Coord::ORIGIN, 4)));
        assert!(m.try_place(Coord::new(4, 0), 1u8).is_err());
        let a = m.try_place(Coord::new(3, 3), 1u8).unwrap();
        let err = m.try_send(&a, Coord::new(0, 4)).unwrap_err();
        assert!(matches!(err, SpatialError::OutOfBounds { .. }));
        assert_eq!(m.energy(), 0);
    }

    #[test]
    fn guard_mem_cap_is_a_hard_cap() {
        let mut m = Machine::new();
        m.enable_guard(ModelGuard::new().mem_cap(2));
        let _a = m.try_place(Coord::ORIGIN, 1u8).unwrap();
        let _b = m.try_place(Coord::ORIGIN, 2u8).unwrap();
        let err = m.try_place(Coord::ORIGIN, 3u8).unwrap_err();
        assert_eq!(err, SpatialError::MemoryExceeded { loc: Coord::ORIGIN, resident: 2, cap: 2 });
        // The lax API absorbs and latches instead.
        let _c = m.place(Coord::ORIGIN, 3u8);
        assert!(matches!(m.violation(), Some(SpatialError::MemoryExceeded { .. })));
    }

    #[test]
    fn guard_energy_budget_trips_on_the_crossing_send() {
        let mut m = Machine::new();
        m.enable_guard(ModelGuard::new().max_energy(5));
        let a = m.place(Coord::ORIGIN, 1u8);
        let b = m.try_send(&a, Coord::new(0, 4)).expect("within budget");
        let err = m.try_send(&b, Coord::new(0, 8)).unwrap_err();
        assert_eq!(
            err,
            SpatialError::BudgetExceeded {
                metric: crate::BudgetMetric::Energy,
                used: 8,
                budget: 5
            }
        );
    }

    #[test]
    fn guarded_converts_latched_violations_into_errors() {
        let mut m = Machine::new();
        m.enable_guard(ModelGuard::new().max_messages(1));
        let res: Result<(), SpatialError> = m.guarded(|m| {
            let a = m.place(Coord::ORIGIN, 1u8);
            let b = m.send(&a, Coord::new(0, 1));
            let _ = m.send(&b, Coord::new(0, 2)); // second message: over budget
        });
        assert!(matches!(res, Err(SpatialError::BudgetExceeded { .. })));
        // A pre-latched violation short-circuits subsequent guarded calls.
        assert!(m.guarded(|_| ()).is_err());
        m.take_violation();
        assert!(m.guarded(|_| ()).is_ok());
    }

    #[test]
    fn fault_costs_are_bit_deterministic_per_seed() {
        let run = |attempt: u32| {
            let mut m = Machine::new();
            let plan = FaultPlan::builder(42).dead_row(2).degraded_row(5).flaky(0.3).build();
            m.enable_faults(plan.for_attempt(attempt));
            let mut v = m.place(Coord::ORIGIN, 0i64);
            for i in 1..32 {
                v = m.send_owned(v, Coord::new(i % 7, i % 5));
            }
            (m.report(), m.fault_hits(), m.detour_energy())
        };
        assert_eq!(run(0), run(0));
        assert_eq!(run(3), run(3));
        let ((c0, h0, _), (c1, h1, _)) = (run(0), run(1));
        assert_eq!(c0, c1, "attempt salt only re-rolls corruption, not routes");
        assert_ne!(h0, h1, "expected different corruption draws across attempts");
    }

    #[test]
    fn tripped_token_fails_strict_sends_and_latches_lax_ones() {
        let mut m = Machine::new();
        let token = CancelToken::new();
        m.set_cancel_token(token.clone());
        let a = m.try_place(Coord::ORIGIN, 1u8).expect("live token: placement succeeds");
        let b = m.try_send(&a, Coord::new(0, 1)).expect("live token: send succeeds");
        token.cancel();
        // Strict paths return the typed error without charging the wire.
        let energy_before = m.energy();
        assert_eq!(m.try_send(&b, Coord::new(0, 2)).unwrap_err(), SpatialError::Cancelled);
        assert_eq!(m.try_place(Coord::new(5, 5), 2u8).unwrap_err(), SpatialError::Cancelled);
        assert_eq!(m.energy(), energy_before, "cancelled strict send charges nothing");
        // Lax paths latch and continue, so guarded() converts at the end.
        let res = m.guarded(|m| {
            let c = m.place(Coord::new(1, 1), 3u8);
            let _ = m.send(&c, Coord::new(1, 2));
        });
        assert!(matches!(res, Err(SpatialError::Cancelled)));
    }

    #[test]
    fn require_trace_and_memory_report_instead_of_panicking() {
        let m = Machine::new();
        assert!(matches!(m.require_trace(), Err(SpatialError::InstrumentationDisabled { .. })));
        assert!(matches!(m.require_memory(), Err(SpatialError::InstrumentationDisabled { .. })));
        let mut m = Machine::new();
        m.enable_trace(4);
        m.enable_memory_meter();
        assert!(m.require_trace().is_ok());
        assert!(m.require_memory().is_ok());
    }

    #[test]
    fn send_batch_matches_per_message_costs_and_skips_self_messages() {
        // The batched fast path must charge exactly what a move_to loop
        // charges, including the self-message skip.
        let pairs = |m: &mut Machine| {
            (0..32)
                .map(|i| {
                    let t = m.place(Coord::new(i % 5, i % 7), i);
                    (t, Coord::new(i % 7, i % 5)) // some pairs are self-moves
                })
                .collect::<Vec<_>>()
        };
        let mut a = Machine::new();
        let pa = pairs(&mut a);
        let batched = a.send_batch(pa);
        let mut b = Machine::new();
        let pb = pairs(&mut b);
        let looped: Vec<_> = pb.into_iter().map(|(t, dst)| b.move_to(t, dst)).collect();
        assert_eq!(a.report(), b.report());
        for (x, y) in batched.iter().zip(&looped) {
            assert_eq!((x.value(), x.loc(), x.path()), (y.value(), y.loc(), y.path()));
        }
        assert!(a.messages() > 0 && a.messages() < 32, "some self-moves must be skipped");
    }

    #[test]
    fn send_batch_under_instrumentation_matches_move_to() {
        // With a meter + trace active the batch must delegate so instruments
        // observe the identical event stream.
        let run = |batch: bool| {
            let mut m = Machine::new();
            m.enable_memory_meter();
            m.enable_trace(64);
            let items: Vec<_> =
                (0..8).map(|i| (m.place(Coord::new(0, i), i), Coord::new(1, i))).collect();
            let out = if batch {
                m.send_batch(items)
            } else {
                items.into_iter().map(|(t, dst)| m.move_to(t, dst)).collect()
            };
            let records = m.trace().unwrap().records().to_vec();
            let resident: Vec<u32> =
                (0..8).map(|i| m.memory().unwrap().resident(Coord::new(1, i))).collect();
            (m.report(), records, resident, out.len())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn send_batch_copy_matches_send_including_zero_length_messages() {
        let mut a = Machine::new();
        let t0 = a.place(Coord::ORIGIN, 1u8);
        let t1 = a.place(Coord::new(2, 2), 2u8);
        let batched = a.send_batch_copy(&[
            (&t0, Coord::new(0, 3)),
            (&t1, Coord::new(2, 2)), // copy-to-self still charges a message
        ]);
        let mut b = Machine::new();
        let s0 = b.place(Coord::ORIGIN, 1u8);
        let s1 = b.place(Coord::new(2, 2), 2u8);
        let l0 = b.send(&s0, Coord::new(0, 3));
        let l1 = b.send(&s1, Coord::new(2, 2));
        assert_eq!(a.report(), b.report());
        assert_eq!(a.messages(), 2);
        assert_eq!(batched[0].path(), l0.path());
        assert_eq!(batched[1].path(), l1.path());
    }

    #[test]
    fn combine_latches_not_co_located_instead_of_panicking() {
        let mut m = Machine::new();
        let a = m.place(Coord::ORIGIN, 1i64);
        let b = m.place(Coord::new(0, 5), 2i64);
        let folded = m.combine(&[a, b], |xs| xs.iter().map(|x| **x).sum::<i64>());
        assert_eq!(*folded.value(), 3, "the lax fold still runs");
        assert_eq!(folded.loc(), Coord::ORIGIN);
        assert!(matches!(m.violation(), Some(SpatialError::NotCoLocated { .. })));
        // guarded() surfaces it as a typed error downstream.
        assert!(matches!(m.guarded(|_| ()), Err(SpatialError::NotCoLocated { .. })));
    }

    #[test]
    fn try_combine_is_strict_and_co_located_combine_is_clean() {
        let mut m = Machine::new();
        let a = m.place(Coord::ORIGIN, 1i64);
        let b = m.place(Coord::new(0, 5), 2i64);
        let err = m.try_combine(&[a, b], |_| 0).unwrap_err();
        assert_eq!(
            err,
            SpatialError::NotCoLocated { expected: Coord::ORIGIN, found: Coord::new(0, 5) }
        );
        assert!(m.violation().is_none(), "strict errors are returned, not latched");
        let c = m.place(Coord::new(3, 3), 10i64);
        let d = m.send(&c, Coord::new(3, 3));
        let sum = m.try_combine(&[c, d], |xs| xs.iter().map(|x| **x).sum::<i64>()).unwrap();
        assert_eq!(*sum.value(), 20);
        assert_eq!(sum.path().depth, 1, "combine joins operand paths");
    }

    #[test]
    fn move_within_cap_at_same_pe_is_not_a_violation() {
        let mut m = Machine::new();
        m.enable_guard(ModelGuard::new().mem_cap(1));
        let a = m.try_place(Coord::ORIGIN, 1u8).unwrap();
        // A move frees the source before storing at the destination, so a
        // full PE can still forward its word.
        let b = m.try_send_owned(a, Coord::new(0, 1)).unwrap();
        assert_eq!(m.memory().unwrap().resident(Coord::ORIGIN), 0);
        let _ = b;
    }
}
