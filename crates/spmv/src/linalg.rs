//! Spatial vector operations for iterative solvers.
//!
//! The paper motivates SpMV with scientific workloads (conjugate gradients
//! \[14\] is the canonical one). Krylov solvers need, besides `A·x`, only
//! element-wise vector updates (free: the operands are co-located) and dot
//! products (a multiply + [`collectives::reduce_z`]: `O(n)` energy,
//! `O(log n)` depth). These helpers operate on vectors laid out on aligned
//! Z-segments, one element per PE.

use spatial_model::{zorder, Machine, Tracked};

use collectives::zseg::{broadcast_z, reduce_z};

/// A dense vector resident on the Z-segment `[lo, lo + len)`.
pub struct SpatialVector {
    lo: u64,
    items: Vec<Tracked<f64>>,
}

impl SpatialVector {
    /// Places `values[i]` at Z-index `lo + i` (input placement, free).
    pub fn place(machine: &mut Machine, lo: u64, values: &[f64]) -> Self {
        let items = values
            .iter()
            .enumerate()
            .map(|(i, &v)| machine.place(zorder::coord_of(lo + i as u64), v))
            .collect();
        SpatialVector { lo, items }
    }

    /// The segment offset.
    pub fn lo(&self) -> u64 {
        self.lo
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Reads the values out of the machine (host view).
    pub fn values(&self) -> Vec<f64> {
        self.items.iter().map(|t| *t.value()).collect()
    }

    /// Element-wise `self ← self + alpha · other` (axpy). Both vectors must
    /// share the segment (co-located elements ⇒ the update is free except
    /// for the broadcast of `alpha`, which the caller usually owns — here
    /// `alpha` is a host scalar representing a value already known at every
    /// PE from a previous all-reduce).
    pub fn axpy(&mut self, other: &SpatialVector, alpha: f64) {
        assert_eq!(self.lo, other.lo, "axpy needs co-located vectors");
        assert_eq!(self.len(), other.len());
        for (a, b) in self.items.iter_mut().zip(&other.items) {
            let updated = a.zip_with(b, |x, y| x + alpha * y);
            *a = updated;
        }
    }

    /// Element-wise `self ← other + beta · self` (used for CG's direction
    /// update).
    pub fn xpby(&mut self, other: &SpatialVector, beta: f64) {
        assert_eq!(self.lo, other.lo, "xpby needs co-located vectors");
        assert_eq!(self.len(), other.len());
        for (a, b) in self.items.iter_mut().zip(&other.items) {
            let updated = a.zip_with(b, |x, y| y + beta * x);
            *a = updated;
        }
    }

    /// Dot product `⟨self, other⟩`: local multiplies + a Z-segment reduce.
    /// The scalar result is then re-broadcast so every PE knows it (as a
    /// solver's subsequent local updates require), keeping the whole
    /// operation `O(n)` energy and `O(log n)` depth.
    pub fn dot(&self, other: &SpatialVector, machine: &mut Machine) -> f64 {
        assert_eq!(self.lo, other.lo, "dot needs co-located vectors");
        assert_eq!(self.len(), other.len());
        let prods: Vec<Tracked<f64>> =
            self.items.iter().zip(&other.items).map(|(a, b)| a.zip_with(b, |x, y| x * y)).collect();
        let total = reduce_z(machine, prods, self.lo, &|x, y| x + y);
        let v = *total.value();
        let copies = broadcast_z(machine, total, self.lo, self.lo + self.len() as u64);
        for c in copies {
            machine.discard(c);
        }
        v
    }

    /// Squared Euclidean norm.
    pub fn norm2(&self, machine: &mut Machine) -> f64 {
        self.dot(self, machine)
    }

    /// Overwrites the contents with `values` delivered from the result
    /// segment of an SpMV (host glue for solver loops; charges nothing —
    /// used when the producing primitive already routed the data here).
    pub fn set_values(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.len());
        for (item, &v) in self.items.iter_mut().zip(values) {
            let updated = item.with_value(v);
            *item = updated;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_host() {
        let mut m = Machine::new();
        let x = SpatialVector::place(&mut m, 0, &[1.0, 2.0, 3.0, 4.0]);
        let y = SpatialVector::place(&mut m, 0, &[2.0, -1.0, 0.5, 1.0]);
        assert_eq!(x.dot(&y, &mut m), 2.0 - 2.0 + 1.5 + 4.0);
        assert!(m.energy() > 0, "dot must communicate");
    }

    #[test]
    fn dot_costs_linear_energy_log_depth() {
        let n = 4096usize;
        let vals: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let mut m = Machine::new();
        let x = SpatialVector::place(&mut m, 0, &vals);
        let _ = x.norm2(&mut m);
        assert!(m.energy() <= 14 * n as u64, "energy {}", m.energy());
        assert!(m.report().depth <= 6 * (n as f64).log2() as u64, "depth {}", m.report().depth);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut m = Machine::new();
        let mut x = SpatialVector::place(&mut m, 0, &[1.0, 1.0, 1.0, 1.0]);
        let y = SpatialVector::place(&mut m, 0, &[1.0, 2.0, 3.0, 4.0]);
        x.axpy(&y, 0.5);
        assert_eq!(x.values(), vec![1.5, 2.0, 2.5, 3.0]);
    }

    #[test]
    fn xpby_computes_direction_update() {
        let mut m = Machine::new();
        let mut p = SpatialVector::place(&mut m, 0, &[2.0, 4.0]);
        let r = SpatialVector::place(&mut m, 0, &[1.0, 1.0]);
        p.xpby(&r, 0.25); // p = r + 0.25 p
        assert_eq!(p.values(), vec![1.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "co-located")]
    fn dot_rejects_disjoint_segments() {
        let mut m = Machine::new();
        let x = SpatialVector::place(&mut m, 0, &[1.0]);
        let y = SpatialVector::place(&mut m, 16, &[1.0]);
        let _ = x.dot(&y, &mut m);
    }
}
