//! SpMV via CRCW PRAM simulation (paper §VIII, "PRAM Simulation Upper Bound").
//!
//! The PRAM algorithm computes all products `A_{ij}·x_j` in parallel (the
//! `x_j` fetch is a *concurrent* read when a column has several entries) and
//! then tree-sums the products of each row. It runs in `O(log n)` PRAM steps
//! with one processor per non-zero; pushing it through the CRCW simulator
//! (Lemma VII.2) yields `O(m^{3/2})` energy but `O(log⁴ n)` depth and
//! `O(√m·log n)` distance — the extra `log n` factor that the direct
//! algorithm of Theorem VIII.2 removes. The benchmark `fig_spmv` measures
//! exactly this gap.
//!
//! Values are integer words (the PRAM memory is word-oriented); the cost
//! structure is identical for any scalar type.

use pram::{simulate_crcw, PramLayout, PramProgram, Word};
use spatial_model::{Cost, Machine};

use crate::matrix::{Coo, Csr};

/// SpMV as a PRAM program over a row-grouped (CSR) matrix.
///
/// Memory layout: `[0, m)` product cells, `[m, m+n_cols)` the vector `x`,
/// `[m+n_cols, m+n_cols+n_rows)` the result `y`. Entry values and the
/// summation schedule live in the program structure (PRAM registers).
pub struct SpmvProgram {
    csr: Csr<Word>,
    /// Segment start of each entry's row (by entry index).
    seg_start: Vec<usize>,
    /// Segment end of each entry's row.
    seg_end: Vec<usize>,
    /// Number of tree-sum levels = ⌈log₂ max row length⌉.
    levels: usize,
}

/// Per-processor state: the entry's running subtree sum.
#[derive(Clone, Default)]
pub struct SpmvState {
    sum: Word,
}

impl SpmvProgram {
    /// Builds the program from a COO matrix (rows are grouped internally).
    pub fn new(a: &Coo<Word>) -> Self {
        let csr = a.to_csr();
        let m = csr.nnz();
        let mut seg_start = vec![0; m];
        let mut seg_end = vec![0; m];
        let mut max_len = 1usize;
        for r in 0..csr.n_rows {
            let (s, e) = (csr.row_ptr[r], csr.row_ptr[r + 1]);
            for i in s..e {
                seg_start[i] = s;
                seg_end[i] = e;
            }
            max_len = max_len.max(e - s);
        }
        let levels = usize::BITS as usize - (max_len.max(1) - 1).leading_zeros() as usize;
        SpmvProgram { csr, seg_start, seg_end, levels }
    }

    fn m(&self) -> usize {
        self.csr.nnz()
    }

    /// Cell index of `x[j]`.
    fn x_cell(&self, j: usize) -> usize {
        self.m() + j
    }

    /// Cell index of `y[r]`.
    pub fn y_cell(&self, r: usize) -> usize {
        self.m() + self.csr.n_cols + r
    }

    /// Extracts `y` from the final simulated memory.
    pub fn result(&self, memory: &[Word]) -> Vec<Word> {
        (0..self.csr.n_rows).map(|r| memory[self.y_cell(r)]).collect()
    }

    /// Whether entry `pid` is the tree-sum parent at `level` (and its
    /// partner index, if within the row segment).
    fn partner(&self, pid: usize, level: usize) -> Option<usize> {
        let (s, e) = (self.seg_start[pid], self.seg_end[pid]);
        let off = pid - s;
        if !off.is_multiple_of(1 << (level + 1)) {
            return None;
        }
        let partner = pid + (1 << level);
        (partner < e).then_some(partner)
    }
}

impl PramProgram for SpmvProgram {
    type State = SpmvState;

    fn processors(&self) -> usize {
        self.m().max(1)
    }
    fn memory_cells(&self) -> usize {
        self.m() + self.csr.n_cols + self.csr.n_rows
    }
    fn steps(&self) -> usize {
        // 1 step to fetch x (concurrent reads) + write the product, `levels`
        // tree-sum steps, 1 step to publish the row result.
        2 + self.levels
    }
    fn initial_memory(&self) -> Vec<Word> {
        // x is loaded into its cells by the driver (`WithX`); the bare
        // program multiplies by whatever is resident (zeros).
        vec![0; self.memory_cells()]
    }
    fn init_state(&self, _pid: usize) -> SpmvState {
        SpmvState::default()
    }
    fn read_addr(&self, t: usize, pid: usize, _state: &SpmvState) -> Option<usize> {
        if pid >= self.m() {
            return None;
        }
        if t == 0 {
            // Concurrent read of x[col] (many entries can share a column).
            return Some(self.x_cell(self.csr.cols[pid] as usize));
        }
        if t >= 1 && t <= self.levels {
            // Tree sum: the parent reads its partner's product cell.
            return self.partner(pid, t - 1);
        }
        None
    }
    fn execute(
        &self,
        t: usize,
        pid: usize,
        state: &mut SpmvState,
        read: Option<Word>,
    ) -> Option<(usize, Word)> {
        if pid >= self.m() {
            return None;
        }
        if t == 0 {
            let xj = read.expect("x value");
            state.sum = self.csr.vals[pid] * xj;
            return Some((pid, state.sum));
        }
        if t >= 1 && t <= self.levels {
            if self.partner(pid, t - 1).is_some() {
                state.sum += read.expect("partner product");
                return Some((pid, state.sum));
            }
            return None;
        }
        // Final step: each row's first entry publishes the row total.
        if pid == self.seg_start[pid] {
            let r = self.csr.row_ptr.partition_point(|&p| p <= pid).saturating_sub(1);
            return Some((self.y_cell(r), state.sum));
        }
        None
    }
}

/// A program wrapper that pre-loads `x` into the simulated memory.
struct WithX<'a> {
    inner: &'a SpmvProgram,
    x: &'a [Word],
}

impl PramProgram for WithX<'_> {
    type State = SpmvState;

    fn processors(&self) -> usize {
        self.inner.processors()
    }
    fn memory_cells(&self) -> usize {
        self.inner.memory_cells()
    }
    fn steps(&self) -> usize {
        self.inner.steps()
    }
    fn initial_memory(&self) -> Vec<Word> {
        let mut mem = self.inner.initial_memory();
        for (j, &v) in self.x.iter().enumerate() {
            mem[self.inner.x_cell(j)] = v;
        }
        mem
    }
    fn init_state(&self, pid: usize) -> SpmvState {
        self.inner.init_state(pid)
    }
    fn read_addr(&self, t: usize, pid: usize, s: &SpmvState) -> Option<usize> {
        self.inner.read_addr(t, pid, s)
    }
    fn execute(
        &self,
        t: usize,
        pid: usize,
        s: &mut SpmvState,
        read: Option<Word>,
    ) -> Option<(usize, Word)> {
        self.inner.execute(t, pid, s, read)
    }
}

/// Runs the PRAM-simulated SpMV baseline; returns `(y, cost)`.
pub fn spmv_pram_baseline(machine: &mut Machine, a: &Coo<Word>, x: &[Word]) -> (Vec<Word>, Cost) {
    assert_eq!(x.len(), a.n_cols);
    let prog = SpmvProgram::new(a);
    let with_x = WithX { inner: &prog, x };
    let layout = PramLayout::adjacent(with_x.processors(), with_x.memory_cells());
    let before = machine.report();
    let memory = simulate_crcw(machine, &with_x, layout);
    let cost = machine.report() - before;
    (prog.result(&memory), cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_matrix(n: usize, nnz_per_row: usize, seed: u64) -> Coo<Word> {
        let mut entries = Vec::new();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for r in 0..n as u32 {
            for _ in 0..nnz_per_row {
                let c = (next() % n as u64) as u32;
                let v = (next() % 9) as Word - 4;
                entries.push((r, c, v));
            }
        }
        Coo::new(n, n, entries)
    }

    #[test]
    fn pram_spmv_matches_dense_reference() {
        for n in [4usize, 16, 32] {
            let a = pseudo_matrix(n, 3, n as u64 + 1);
            let x: Vec<Word> = (0..n as Word).map(|i| (i % 5) - 2).collect();
            let mut m = Machine::new();
            let (y, _) = spmv_pram_baseline(&mut m, &a, &x);
            assert_eq!(y, a.multiply_dense(&x), "n = {n}");
        }
    }

    #[test]
    fn handles_irregular_row_lengths() {
        let a = Coo::new(
            4,
            4,
            vec![
                (0, 0, 1),
                (0, 1, 1),
                (0, 2, 1),
                (0, 3, 1), // full row
                (2, 1, 5), // singleton row; rows 1 and 3 empty
            ],
        );
        let x = vec![1, 2, 3, 4];
        let mut m = Machine::new();
        let (y, _) = spmv_pram_baseline(&mut m, &a, &x);
        assert_eq!(y, vec![10, 0, 10, 0]);
    }

    #[test]
    fn direct_spmv_beats_pram_baseline_in_depth() {
        // The §VIII claim: the direct algorithm improves depth (and
        // distance) by a log factor over the PRAM simulation.
        let n = 64usize;
        let a = pseudo_matrix(n, 4, 9);
        let x: Vec<Word> = vec![1; n];

        let mut m1 = Machine::new();
        let out = crate::lowdepth::spmv(&mut m1, &a, &x);
        let mut m2 = Machine::new();
        let (y2, cost2) = spmv_pram_baseline(&mut m2, &a, &x);

        assert_eq!(out.y, y2);
        assert!(
            out.cost.depth < cost2.depth,
            "direct depth {} should beat PRAM depth {}",
            out.cost.depth,
            cost2.depth
        );
        assert!(
            out.cost.distance < cost2.distance,
            "direct distance {} should beat PRAM distance {}",
            out.cost.distance,
            cost2.distance
        );
    }
}
