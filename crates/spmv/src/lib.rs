//! # Sparse matrix–vector multiplication (paper §VIII)
//!
//! SpMV on the Spatial Computer Model, built from the sorting and scanning
//! primitives:
//!
//! * [`matrix`] — COO/CSR sparse matrices and a dense reference multiply;
//! * [`lowdepth`] — the paper's direct algorithm (Theorem VIII.2): sort by
//!   column, elect column leaders, fetch and segment-broadcast the `x`
//!   entries, multiply, sort by row, segment-sum, gather. Costs
//!   `O(m^{3/2})` energy, `O(log³ n)` depth, `O(√m)` distance — energy
//!   optimal for `m = O(n)` by the permutation bound (Lemma VIII.1);
//! * [`pram_baseline`] — the §VIII upper-bound algorithm run through the
//!   CRCW PRAM simulator (Lemma VII.2): same energy order, but a `log n`
//!   factor worse in depth and distance, which the direct algorithm removes.

pub mod linalg;
pub mod lowdepth;
pub mod matrix;
pub mod pram_baseline;

pub use linalg::SpatialVector;
pub use lowdepth::{spmv, spmv_multi, try_spmv, SpmvOutput};
pub use matrix::{Coo, Csr};

/// Scalar values a matrix can carry: enough arithmetic for `A·x` plus the
/// bits the simulator needs to move values around.
pub trait Scalar:
    Copy
    + Default
    + PartialEq
    + std::fmt::Debug
    + Send
    + Sync
    + std::ops::Add<Output = Self>
    + std::ops::Mul<Output = Self>
{
}

impl Scalar for f64 {}
impl Scalar for i64 {}
impl Scalar for i32 {}
