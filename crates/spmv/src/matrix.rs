//! Sparse matrix types: COO (the paper's input format) and CSR.

use crate::Scalar;

/// A sparse matrix in coordinate format: each non-zero is a triple
/// `(row, col, value)`, in arbitrary order (paper §VIII: "each processor
/// holding a single arbitrary of those triples").
#[derive(Clone, Debug, PartialEq)]
pub struct Coo<V> {
    /// Number of rows.
    pub n_rows: usize,
    /// Number of columns.
    pub n_cols: usize,
    /// The non-zero triples.
    pub entries: Vec<(u32, u32, V)>,
}

impl<V: Scalar> Coo<V> {
    /// Builds a COO matrix, validating the coordinates.
    pub fn new(n_rows: usize, n_cols: usize, entries: Vec<(u32, u32, V)>) -> Self {
        for &(r, c, _) in &entries {
            assert!(
                (r as usize) < n_rows && (c as usize) < n_cols,
                "entry ({r},{c}) out of bounds"
            );
        }
        Coo { n_rows, n_cols, entries }
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Dense reference multiply — the correctness oracle for the spatial
    /// algorithms.
    pub fn multiply_dense(&self, x: &[V]) -> Vec<V> {
        assert_eq!(x.len(), self.n_cols);
        let mut y = vec![V::default(); self.n_rows];
        for &(r, c, v) in &self.entries {
            y[r as usize] = y[r as usize] + v * x[c as usize];
        }
        y
    }

    /// Converts to CSR (sorts entries by row, then column, combining
    /// nothing — duplicates are kept, as SpMV sums them anyway).
    pub fn to_csr(&self) -> Csr<V> {
        let mut entries = self.entries.clone();
        entries.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = Vec::with_capacity(self.n_rows + 1);
        row_ptr.push(0);
        let mut idx = 0;
        for r in 0..self.n_rows as u32 {
            while idx < entries.len() && entries[idx].0 == r {
                idx += 1;
            }
            row_ptr.push(idx);
        }
        Csr {
            n_rows: self.n_rows,
            n_cols: self.n_cols,
            row_ptr,
            cols: entries.iter().map(|&(_, c, _)| c).collect(),
            vals: entries.iter().map(|&(_, _, v)| v).collect(),
        }
    }

    /// The permutation matrix `P` with `P·x = x[perm]` (used by the
    /// Lemma VIII.1 lower-bound experiment). `perm[i]` is the source index
    /// of output `i`.
    pub fn permutation(perm: &[usize]) -> Coo<V>
    where
        V: From<i8>,
    {
        let n = perm.len();
        let entries = perm
            .iter()
            .enumerate()
            .map(|(i, &j)| {
                assert!(j < n, "permutation index out of range");
                (i as u32, j as u32, V::from(1))
            })
            .collect();
        Coo::new(n, n, entries)
    }
}

/// Compressed sparse row format.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr<V> {
    /// Number of rows.
    pub n_rows: usize,
    /// Number of columns.
    pub n_cols: usize,
    /// `row_ptr[r]..row_ptr[r+1]` indexes row `r`'s entries.
    pub row_ptr: Vec<usize>,
    /// Column index per entry.
    pub cols: Vec<u32>,
    /// Value per entry.
    pub vals: Vec<V>,
}

impl<V: Scalar> Csr<V> {
    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Dense reference multiply.
    #[allow(clippy::needless_range_loop)]
    pub fn multiply_dense(&self, x: &[V]) -> Vec<V> {
        assert_eq!(x.len(), self.n_cols);
        let mut y = vec![V::default(); self.n_rows];
        for r in 0..self.n_rows {
            let mut acc = V::default();
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc = acc + self.vals[i] * x[self.cols[i] as usize];
            }
            y[r] = acc;
        }
        y
    }

    /// Back to COO (row-sorted order).
    pub fn to_coo(&self) -> Coo<V> {
        let mut entries = Vec::with_capacity(self.nnz());
        for r in 0..self.n_rows {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                entries.push((r as u32, self.cols[i], self.vals[i]));
            }
        }
        Coo::new(self.n_rows, self.n_cols, entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Coo<i64> {
        Coo::new(3, 4, vec![(0, 0, 2), (0, 3, 1), (1, 1, -1), (2, 0, 5), (2, 2, 3), (2, 3, 4)])
    }

    #[test]
    fn dense_multiply_reference() {
        let a = example();
        let x = vec![1i64, 2, 3, 4];
        assert_eq!(a.multiply_dense(&x), vec![2 + 4, -2, 5 + 9 + 16]);
    }

    #[test]
    fn csr_roundtrip_preserves_product() {
        let a = example();
        let x = vec![7i64, -2, 0, 1];
        let csr = a.to_csr();
        assert_eq!(csr.multiply_dense(&x), a.multiply_dense(&x));
        assert_eq!(csr.to_coo().multiply_dense(&x), a.multiply_dense(&x));
        assert_eq!(csr.nnz(), a.nnz());
    }

    #[test]
    fn csr_row_ptr_is_monotone_and_complete() {
        let csr = example().to_csr();
        assert_eq!(csr.row_ptr.len(), 4);
        assert_eq!(*csr.row_ptr.last().unwrap(), 6);
        assert!(csr.row_ptr.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn permutation_matrix_permutes() {
        let p: Coo<i64> = Coo::permutation(&[2, 0, 1]);
        let x = vec![10i64, 20, 30];
        assert_eq!(p.multiply_dense(&x), vec![30, 10, 20]);
    }

    #[test]
    fn empty_rows_give_zero() {
        let a: Coo<i64> = Coo::new(3, 3, vec![(1, 1, 9)]);
        assert_eq!(a.multiply_dense(&[1, 1, 1]), vec![0, 9, 0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_bad_coordinates() {
        let _ = Coo::new(2, 2, vec![(2, 0, 1i64)]);
    }

    #[test]
    fn duplicate_entries_accumulate() {
        let a = Coo::new(1, 1, vec![(0, 0, 3i64), (0, 0, 4)]);
        assert_eq!(a.multiply_dense(&[2]), vec![14]);
    }
}
