//! The low-depth SpMV algorithm (paper §VIII, Theorem VIII.2).
//!
//! 1. sort the COO triples by column index (2D Mergesort);
//! 2. elect *column leaders* by comparing with the previous processor;
//! 3. each leader fetches its `x_j` from the vector subgrid and a segmented
//!    broadcast copies it across the column group;
//! 4. every processor multiplies `A_{ij}·x_j` locally;
//! 5. sort the partial products by row index;
//! 6. elect *row leaders* and sum each row group with a segmented scan;
//! 7. gather the row results into the output vector subgrid.
//!
//! Total: `O(m^{3/2})` energy, `O(log³ n)` depth, `O(√m)` distance —
//! dominated by the two sorts (Theorem V.8) and the scans (Lemma IV.3).

use spatial_model::{zorder, Coord, Cost, Machine, SpatialError, Tracked};

use collectives::segmented::{segmented_scan, SegItem};
use sorting::mergesort::sort_z;

use crate::matrix::Coo;
use crate::Scalar;

/// One COO triple during the spatial computation; ordered by `(key, uid)`
/// where `key` is set to the column (phase 1) or row (phase 5) index.
#[derive(Clone, Debug)]
struct Entry<V> {
    key: u32,
    row: u32,
    col: u32,
    val: V,
    uid: u64,
}

impl<V> PartialEq for Entry<V> {
    fn eq(&self, o: &Self) -> bool {
        (self.key, self.uid) == (o.key, o.uid)
    }
}
impl<V> Eq for Entry<V> {}
impl<V> PartialOrd for Entry<V> {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}
impl<V> Ord for Entry<V> {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        (self.key, self.uid).cmp(&(o.key, o.uid))
    }
}

/// Result of a spatial SpMV run.
#[derive(Clone, Debug)]
pub struct SpmvOutput<V> {
    /// The product `A·x`.
    pub y: Vec<V>,
    /// Exact model cost of the multiplication (input placement excluded).
    pub cost: Cost,
}

/// Fallible [`spmv`]: runs under the machine's active guard/fault layer
/// and surfaces any violation as a typed [`SpatialError`].
pub fn try_spmv<V: Scalar>(
    machine: &mut Machine,
    a: &Coo<V>,
    x: &[V],
) -> Result<SpmvOutput<V>, SpatialError> {
    machine.guarded(|m| spmv(m, a, x))
}

/// Computes `y = A·x` on the Spatial Computer Model.
///
/// The `m` triples are placed on the Z-segment `[0, m̃)` (padded size) in
/// their given arbitrary order, the vector on the adjacent aligned segment,
/// exactly as §VIII prescribes. Returns the product and the cost.
///
/// ```
/// use spatial_model::Machine;
/// use spmv::{spmv, Coo};
///
/// let a = Coo::new(2, 2, vec![(0, 0, 2i64), (1, 0, -1), (1, 1, 3)]);
/// let mut m = Machine::new();
/// let out = spmv(&mut m, &a, &[10, 100]);
/// assert_eq!(out.y, vec![20, 290]);
/// assert!(out.cost.energy > 0);
/// ```
pub fn spmv<V: Scalar>(machine: &mut Machine, a: &Coo<V>, x: &[V]) -> SpmvOutput<V> {
    assert_eq!(x.len(), a.n_cols, "dimension mismatch");
    let m = a.nnz() as u64;
    let n = a.n_cols as u64;
    if m == 0 {
        return SpmvOutput { y: vec![V::default(); a.n_rows], cost: Cost::default() };
    }
    let m_pad = zorder::next_power_of_four(m);
    let n_pad = zorder::next_power_of_four(n.max(1));
    // Vector subgrid: first aligned n_pad-square after the matrix subgrid.
    let x_lo = m_pad.div_ceil(n_pad) * n_pad;
    // Output subgrid: next aligned n_pad-square after the vector.
    let y_lo = x_lo + n_pad;

    let before = machine.report();

    // Input placement (free): triples on the matrix subgrid, x on its own.
    let entries: Vec<Tracked<Entry<V>>> = machine.place_batch(
        a.entries
            .iter()
            .enumerate()
            .map(|(i, &(row, col, val))| Entry { key: col, row, col, val, uid: i as u64 })
            .collect(),
        |i| zorder::coord_of(i as u64),
    );
    let xs: Vec<Tracked<V>> =
        machine.place_batch(x.to_vec(), |j| zorder::coord_of(x_lo + j as u64));

    // Step 1: sort by column.
    let sorted = sort_z(machine, 0, entries);

    // Step 2: column leaders (first processor of each column group).
    let leaders = elect_leaders(machine, &sorted, |e| e.key);

    // Step 3: leaders fetch x_j; segmented broadcast over the groups. The
    // fetch runs in two batched waves — all requests to the vector subgrid,
    // then all responses back — with the local zip at the cells in between.
    // The vector subgrid is disjoint from the matrix subgrid, so no request
    // is a self-send and the batch charges exactly the per-leader loop.
    let requests: Vec<(Tracked<usize>, Coord)> = sorted
        .iter()
        .enumerate()
        .filter(|&(i, _)| leaders[i])
        .map(|(_, e)| {
            let col = e.value().col as usize;
            (e.with_value(col), xs[col].loc())
        })
        .collect();
    let arrived = machine.send_batch(requests);
    let responses: Vec<(Tracked<V>, Coord)> = sorted
        .iter()
        .enumerate()
        .filter(|&(i, _)| leaders[i])
        .zip(arrived)
        .map(|((_, e), request)| {
            let col = e.value().col as usize;
            let response = xs[col].zip_with(&request, |v, _| *v);
            machine.discard(request);
            (response, e.loc())
        })
        .collect();
    let mut fetched = machine.send_batch(responses).into_iter();
    let mut seg: Vec<Tracked<SegItem<V>>> = Vec::with_capacity(m_pad as usize);
    for (i, e) in sorted.iter().enumerate() {
        if leaders[i] {
            let response = fetched.next().expect("one response per leader");
            seg.push(response.map(|v| SegItem::new(true, v)));
        } else {
            seg.push(e.with_value(SegItem::new(false, V::default())));
        }
    }
    seg.extend(
        machine.place_batch(vec![SegItem::new(true, V::default()); (m_pad - m) as usize], |i| {
            zorder::coord_of(m + i as u64)
        }),
    );
    let xvals = segmented_scan(machine, 0, seg, &|a: &V, _| *a);
    for x in xs {
        machine.discard(x);
    }

    // Step 4: local partial products; re-key by row for the second sort.
    let mut products: Vec<Tracked<Entry<V>>> = Vec::with_capacity(m as usize);
    for (i, e) in sorted.into_iter().enumerate() {
        if (i as u64) < m {
            let p = e.zip_with(&xvals[i], |en, xv| Entry {
                key: en.row,
                row: en.row,
                col: en.col,
                val: en.val * *xv,
                uid: en.uid,
            });
            machine.discard(e);
            products.push(p);
        } else {
            machine.discard(e);
        }
    }
    for v in xvals {
        machine.discard(v);
    }

    // Step 5: sort the products by row.
    let by_row = sort_z(machine, 0, products);

    // Step 6: row leaders + segmented sum; the *last* element of each group
    // holds the row total after the inclusive scan.
    let leaders = elect_leaders(machine, &by_row, |e| e.key);
    let mut seg: Vec<Tracked<SegItem<V>>> = by_row
        .iter()
        .enumerate()
        .map(|(i, e)| e.with_value(SegItem::new(leaders[i], e.value().val)))
        .collect();
    seg.extend(
        machine.place_batch(vec![SegItem::new(true, V::default()); (m_pad - m) as usize], |i| {
            zorder::coord_of(m + i as u64)
        }),
    );
    let sums = segmented_scan(machine, 0, seg, &|a: &V, b: &V| *a + *b);

    // Step 7: the final element of each row group routes the result to the
    // output vector subgrid — one batch (the output subgrid is disjoint from
    // the matrix subgrid, so no route is a self-send).
    let last_rows: Vec<usize> = by_row
        .iter()
        .enumerate()
        .filter(|&(i, _)| i + 1 == m as usize || leaders[i + 1])
        .map(|(_, e)| e.value().row as usize)
        .collect();
    let row_sends: Vec<(Tracked<V>, Coord)> = by_row
        .iter()
        .enumerate()
        .filter(|&(i, _)| i + 1 == m as usize || leaders[i + 1])
        .map(|(i, e)| (sums[i].duplicate(), zorder::coord_of(y_lo + e.value().row as u64)))
        .collect();
    let routed_rows = machine.send_batch(row_sends);
    let mut y_cells: Vec<Option<Tracked<V>>> = (0..a.n_rows).map(|_| None).collect();
    for (row, routed) in last_rows.into_iter().zip(routed_rows) {
        y_cells[row] = Some(routed);
    }
    for s in sums {
        machine.discard(s);
    }
    for e in by_row {
        machine.discard(e);
    }

    let y: Vec<V> =
        y_cells.into_iter().map(|c| c.map_or(V::default(), |t| t.into_value())).collect();
    let cost = machine.report() - before;
    SpmvOutput { y, cost }
}

/// An entry plus its per-channel products; ordered by the entry (distinct
/// via uid), so the row sort works on any scalar payload.
#[derive(Clone, Debug)]
struct MultiEntry<V> {
    entry: Entry<V>,
    prods: Vec<V>,
}
impl<V> PartialEq for MultiEntry<V> {
    fn eq(&self, o: &Self) -> bool {
        self.entry == o.entry
    }
}
impl<V> Eq for MultiEntry<V> {}
impl<V> Ord for MultiEntry<V> {
    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
        self.entry.cmp(&o.entry)
    }
}
impl<V> PartialOrd for MultiEntry<V> {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(o))
    }
}

/// Sparse matrix × multiple vectors (SpM-multi-V, the paper's citation
/// \[13\]): computes `y_c = A·x_c` for all `d` channels in **one** pass.
///
/// The sorts, leader elections and scans — the `Θ(m^{3/2})` terms — are
/// shared across channels; only the fetched payloads grow to `d` words per
/// message (still O(1) for a constant channel count, e.g. GNN feature
/// widths). Compared with `d` independent [`spmv`] calls this removes
/// `d − 1` sorts; the `fig_spmm` benchmark quantifies the saving.
pub fn spmv_multi<V: Scalar>(
    machine: &mut Machine,
    a: &Coo<V>,
    xs: &[Vec<V>],
) -> (Vec<Vec<V>>, Cost) {
    let d = xs.len();
    assert!(d >= 1, "at least one channel");
    for x in xs {
        assert_eq!(x.len(), a.n_cols, "dimension mismatch");
    }
    let m = a.nnz() as u64;
    let n = a.n_cols as u64;
    if m == 0 {
        return (vec![vec![V::default(); a.n_rows]; d], Cost::default());
    }
    let m_pad = zorder::next_power_of_four(m);
    let n_pad = zorder::next_power_of_four(n.max(1));
    let x_lo = m_pad.div_ceil(n_pad) * n_pad;
    let y_lo = x_lo + n_pad;

    let before = machine.report();

    // Entries carry their value; the vector cells hold all d channel values.
    let entries: Vec<Tracked<Entry<V>>> = machine.place_batch(
        a.entries
            .iter()
            .enumerate()
            .map(|(i, &(row, col, val))| Entry { key: col, row, col, val, uid: i as u64 })
            .collect(),
        |i| zorder::coord_of(i as u64),
    );
    let xcells: Vec<Tracked<Vec<V>>> = machine.place_batch(
        (0..a.n_cols).map(|j| xs.iter().map(|x| x[j]).collect::<Vec<V>>()).collect(),
        |j| zorder::coord_of(x_lo + j as u64),
    );

    // Shared: sort by column, elect leaders, fetch + segment-broadcast the
    // d-word x payloads (two batched waves, as in [`spmv`]).
    let sorted = sort_z(machine, 0, entries);
    let leaders = elect_leaders(machine, &sorted, |e| e.key);
    let requests: Vec<(Tracked<usize>, Coord)> = sorted
        .iter()
        .enumerate()
        .filter(|&(i, _)| leaders[i])
        .map(|(_, e)| {
            let col = e.value().col as usize;
            (e.with_value(col), xcells[col].loc())
        })
        .collect();
    let arrived = machine.send_batch(requests);
    let responses: Vec<(Tracked<Vec<V>>, Coord)> = sorted
        .iter()
        .enumerate()
        .filter(|&(i, _)| leaders[i])
        .zip(arrived)
        .map(|((_, e), request)| {
            let col = e.value().col as usize;
            let response = xcells[col].zip_with(&request, |v, _| v.clone());
            machine.discard(request);
            (response, e.loc())
        })
        .collect();
    let mut fetched = machine.send_batch(responses).into_iter();
    let mut seg: Vec<Tracked<SegItem<Vec<V>>>> = Vec::with_capacity(m_pad as usize);
    for (i, e) in sorted.iter().enumerate() {
        if leaders[i] {
            let response = fetched.next().expect("one response per leader");
            seg.push(response.map(|v| SegItem::new(true, v)));
        } else {
            seg.push(e.with_value(SegItem::new(false, vec![V::default(); d])));
        }
    }
    seg.extend(
        machine.place_batch(
            vec![SegItem::new(true, vec![V::default(); d]); (m_pad - m) as usize],
            |i| zorder::coord_of(m + i as u64),
        ),
    );
    let xvals = segmented_scan(machine, 0, seg, &|a: &Vec<V>, _| a.clone());
    for x in xcells {
        machine.discard(x);
    }

    // Local products (a d-vector per entry), re-keyed by row.
    let mut products: Vec<Tracked<MultiEntry<V>>> = Vec::with_capacity(m as usize);
    for (i, e) in sorted.into_iter().enumerate() {
        if (i as u64) < m {
            let p = e.zip_with(&xvals[i], |en, xv| MultiEntry {
                entry: Entry { key: en.row, row: en.row, col: en.col, val: en.val, uid: en.uid },
                prods: xv.iter().map(|&x| en.val * x).collect(),
            });
            machine.discard(e);
            products.push(p);
        } else {
            machine.discard(e);
        }
    }
    for v in xvals {
        machine.discard(v);
    }

    // Shared row sort + segmented vector-sum.
    let by_row = sort_z(machine, 0, products);
    let leaders = elect_leaders_by(machine, &by_row, |me: &MultiEntry<V>| me.entry.key);
    let mut seg: Vec<Tracked<SegItem<Vec<V>>>> = by_row
        .iter()
        .enumerate()
        .map(|(i, e)| e.with_value(SegItem::new(leaders[i], e.value().prods.clone())))
        .collect();
    seg.extend(
        machine.place_batch(
            vec![SegItem::new(true, vec![V::default(); d]); (m_pad - m) as usize],
            |i| zorder::coord_of(m + i as u64),
        ),
    );
    let sums = segmented_scan(machine, 0, seg, &|a: &Vec<V>, b: &Vec<V>| {
        a.iter().zip(b).map(|(&x, &y)| x + y).collect()
    });

    let last_rows: Vec<usize> = by_row
        .iter()
        .enumerate()
        .filter(|&(i, _)| i + 1 == m as usize || leaders[i + 1])
        .map(|(_, e)| e.value().entry.row as usize)
        .collect();
    let row_sends: Vec<(Tracked<Vec<V>>, Coord)> = by_row
        .iter()
        .enumerate()
        .filter(|&(i, _)| i + 1 == m as usize || leaders[i + 1])
        .map(|(i, e)| (sums[i].duplicate(), zorder::coord_of(y_lo + e.value().entry.row as u64)))
        .collect();
    let routed_rows = machine.send_batch(row_sends);
    let mut ys = vec![vec![V::default(); a.n_rows]; d];
    for (row, routed) in last_rows.into_iter().zip(routed_rows) {
        for (c, y) in ys.iter_mut().enumerate() {
            y[row] = routed.value()[c];
        }
        machine.discard(routed);
    }
    for s in sums {
        machine.discard(s);
    }
    for e in by_row {
        machine.discard(e);
    }

    (ys, machine.report() - before)
}

/// Leader election for arbitrary payloads (shared by [`spmv_multi`]): every
/// processor `i > 0` receives a copy of its predecessor's value in one
/// batch, then compares locally.
fn elect_leaders_by<T: Clone + Send + Sync>(
    machine: &mut Machine,
    sorted: &[Tracked<T>],
    key: impl Fn(&T) -> u32,
) -> Vec<bool> {
    let mut leaders = vec![false; sorted.len()];
    if sorted.is_empty() {
        return leaders;
    }
    leaders[0] = true;
    let sends: Vec<(&Tracked<T>, Coord)> = sorted.windows(2).map(|w| (&w[0], w[1].loc())).collect();
    let prevs = machine.send_batch_copy(&sends);
    drop(sends);
    for (i, prev) in prevs.into_iter().enumerate() {
        let flag = sorted[i + 1].zip_with(&prev, |e, p| key(e) != key(p));
        leaders[i + 1] = *flag.value();
        machine.discard(prev);
        machine.discard(flag);
    }
    leaders
}

/// Leader election by neighbour comparison (paper step 2): processor `i`
/// receives the key of processor `i-1`; it leads iff the keys differ (or
/// `i = 0`).
fn elect_leaders<V: Scalar>(
    machine: &mut Machine,
    sorted: &[Tracked<Entry<V>>],
    key: impl Fn(&Entry<V>) -> u32,
) -> Vec<bool> {
    elect_leaders_by(machine, sorted, key)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_matrix(n: usize, nnz_per_row: usize, seed: u64) -> Coo<i64> {
        let mut entries = Vec::new();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for r in 0..n as u32 {
            for _ in 0..nnz_per_row {
                let c = (next() % n as u64) as u32;
                let v = (next() % 19) as i64 - 9;
                entries.push((r, c, v));
            }
        }
        Coo::new(n, n, entries)
    }

    #[test]
    fn matches_dense_reference_small() {
        let a = Coo::new(3, 3, vec![(0, 0, 1i64), (1, 2, 5), (2, 1, -2), (2, 2, 7)]);
        let x = vec![3i64, 4, 5];
        let mut m = Machine::new();
        let out = spmv(&mut m, &a, &x);
        assert_eq!(out.y, a.multiply_dense(&x));
    }

    #[test]
    fn matches_dense_reference_random() {
        for n in [8usize, 32, 64] {
            let a = pseudo_matrix(n, 5, n as u64);
            let x: Vec<i64> = (0..n as i64).map(|i| (i % 7) - 3).collect();
            let mut m = Machine::new();
            let out = spmv(&mut m, &a, &x);
            assert_eq!(out.y, a.multiply_dense(&x), "n = {n}");
        }
    }

    #[test]
    fn handles_empty_rows_and_duplicate_coordinates() {
        let a = Coo::new(4, 4, vec![(1, 1, 2i64), (1, 1, 3), (3, 0, 1)]);
        let x = vec![10i64, 1, 0, 0];
        let mut m = Machine::new();
        let out = spmv(&mut m, &a, &x);
        assert_eq!(out.y, vec![0, 5, 0, 10]);
    }

    #[test]
    fn works_with_floats() {
        let a = Coo::new(2, 2, vec![(0, 0, 0.5f64), (0, 1, 0.25), (1, 0, -1.5)]);
        let x = vec![4.0f64, 8.0];
        let mut m = Machine::new();
        let out = spmv(&mut m, &a, &x);
        assert_eq!(out.y, vec![4.0, -6.0]);
    }

    #[test]
    fn empty_matrix_costs_nothing() {
        let a: Coo<i64> = Coo::new(5, 5, vec![]);
        let mut m = Machine::new();
        let out = spmv(&mut m, &a, &[1, 2, 3, 4, 5]);
        assert_eq!(out.y, vec![0; 5]);
        assert_eq!(out.cost.energy, 0);
    }

    #[test]
    fn identity_matrix_is_a_copy() {
        let n = 16usize;
        let a: Coo<i64> = Coo::permutation(&(0..n).collect::<Vec<_>>());
        let x: Vec<i64> = (0..n as i64).map(|i| i * i).collect();
        let mut m = Machine::new();
        let out = spmv(&mut m, &a, &x);
        assert_eq!(out.y, x);
    }

    #[test]
    fn rectangular_matrices_work() {
        // Tall (more rows than columns) and wide shapes.
        let tall = Coo::new(8, 3, vec![(0, 0, 1i64), (5, 2, 4), (7, 1, -2), (3, 0, 9)]);
        let x = vec![2i64, 3, 5];
        let mut m = Machine::new();
        let out = spmv(&mut m, &tall, &x);
        assert_eq!(out.y, tall.multiply_dense(&x));

        let wide = Coo::new(2, 9, vec![(0, 8, 3i64), (1, 0, 2), (1, 7, 1)]);
        let x: Vec<i64> = (1..=9).collect();
        let mut m = Machine::new();
        let out = spmv(&mut m, &wide, &x);
        assert_eq!(out.y, wide.multiply_dense(&x));
    }

    #[test]
    fn single_entry_matrix() {
        let a = Coo::new(1, 1, vec![(0, 0, 7i64)]);
        let mut m = Machine::new();
        let out = spmv(&mut m, &a, &[6]);
        assert_eq!(out.y, vec![42]);
    }

    #[test]
    fn multi_channel_matches_per_channel() {
        let n = 64usize;
        let a = pseudo_matrix(n, 4, 5);
        let xs: Vec<Vec<i64>> =
            (0..3).map(|c| (0..n as i64).map(|i| (i * (c + 2)) % 11 - 5).collect()).collect();
        let mut m = Machine::new();
        let (ys, _) = spmv_multi(&mut m, &a, &xs);
        for (c, x) in xs.iter().enumerate() {
            assert_eq!(ys[c], a.multiply_dense(x), "channel {c}");
        }
    }

    #[test]
    fn multi_channel_shares_the_sorts() {
        let n = 256usize;
        let d = 4usize;
        let a = pseudo_matrix(n, 4, 9);
        let xs: Vec<Vec<i64>> = (0..d).map(|c| vec![c as i64 + 1; n]).collect();

        let mut mm = Machine::new();
        let (ys, multi_cost) = spmv_multi(&mut mm, &a, &xs);

        let mut ms = Machine::new();
        let mut singles = Vec::new();
        for x in &xs {
            singles.push(spmv(&mut ms, &a, x).y);
        }
        assert_eq!(ys, singles);
        assert!(
            (multi_cost.energy as f64) < 0.6 * ms.energy() as f64,
            "shared sorts must save: {} vs {}",
            multi_cost.energy,
            ms.energy()
        );
    }

    #[test]
    fn multi_channel_with_floats() {
        let a = Coo::new(2, 2, vec![(0, 0, 0.5f64), (1, 1, 2.0)]);
        let xs = vec![vec![4.0, 3.0], vec![-2.0, 1.0]];
        let mut m = Machine::new();
        let (ys, _) = spmv_multi(&mut m, &a, &xs);
        assert_eq!(ys, vec![vec![2.0, 6.0], vec![-1.0, 2.0]]);
    }

    #[test]
    fn energy_scales_as_m_to_three_halves() {
        // Theorem VIII.2: O(m^{3/2}). 4x m → ≈8x energy.
        let energy = |n: usize| {
            let a = pseudo_matrix(n, 4, 3);
            let x: Vec<i64> = vec![1; n];
            let mut m = Machine::new();
            let out = spmv(&mut m, &a, &x);
            assert_eq!(out.y, a.multiply_dense(&x));
            out.cost.energy as f64
        };
        let growth = energy(1024) / energy(256);
        assert!(growth > 5.0 && growth < 13.0, "expected ≈8x for 4x m, got {growth:.1}x");
    }

    #[test]
    fn depth_is_polylog() {
        let n = 256usize;
        let a = pseudo_matrix(n, 4, 7);
        let x: Vec<i64> = vec![1; n];
        let mut m = Machine::new();
        let out = spmv(&mut m, &a, &x);
        let log = (a.nnz() as f64).log2();
        let bound = (12.0 * log * log * log) as u64;
        assert!(out.cost.depth <= bound, "depth {} > {bound}", out.cost.depth);
    }

    #[test]
    fn distance_is_order_sqrt_m() {
        let n = 256usize;
        let a = pseudo_matrix(n, 4, 11);
        let x: Vec<i64> = vec![1; n];
        let mut m = Machine::new();
        let out = spmv(&mut m, &a, &x);
        let bound = 120 * (a.nnz() as f64).sqrt() as u64;
        assert!(out.cost.distance <= bound, "distance {} > {bound}", out.cost.distance);
    }
}
