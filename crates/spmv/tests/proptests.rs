//! Property-based tests for sparse matrix–vector multiplication, on the
//! in-tree harness (`spatial_core::check`).

use spatial_core::check::{check, Gen};
use spatial_core::prop_assert_eq;

use spatial_model::Machine;
use spmv::pram_baseline::spmv_pram_baseline;
use spmv::{spmv, Coo};

/// A random small COO matrix plus a matching vector.
fn coo_and_x(g: &mut Gen) -> (Coo<i64>, Vec<i64>) {
    let n = g.size(2..24);
    let nnz = g.size(0..4 * n);
    let entries: Vec<(u32, u32, i64)> =
        g.vec(nnz, |g| (g.int(0u32..n as u32), g.int(0u32..n as u32), g.int(-9i64..9)));
    let x = g.vec_i64(n..n + 1, -9..=8);
    (Coo::new(n, n, entries), x)
}

#[test]
fn spmv_matches_dense_reference() {
    check("spmv_matches_dense_reference", |g: &mut Gen| {
        let (a, x) = coo_and_x(g);
        let mut m = Machine::new();
        let out = spmv(&mut m, &a, &x);
        prop_assert_eq!(out.y, a.multiply_dense(&x));
        Ok(())
    });
}

#[test]
fn pram_baseline_matches_dense_reference() {
    check("pram_baseline_matches_dense_reference", |g: &mut Gen| {
        let (a, x) = coo_and_x(g);
        let mut m = Machine::new();
        let (y, _) = spmv_pram_baseline(&mut m, &a, &x);
        prop_assert_eq!(y, a.multiply_dense(&x));
        Ok(())
    });
}

#[test]
fn csr_roundtrip_preserves_semantics() {
    check("csr_roundtrip_preserves_semantics", |g: &mut Gen| {
        let (a, x) = coo_and_x(g);
        let csr = a.to_csr();
        prop_assert_eq!(csr.multiply_dense(&x), a.multiply_dense(&x));
        prop_assert_eq!(csr.to_coo().multiply_dense(&x), a.multiply_dense(&x));
        prop_assert_eq!(csr.nnz(), a.nnz());
        Ok(())
    });
}

#[test]
fn spmv_is_linear_in_x() {
    check("spmv_is_linear_in_x", |g: &mut Gen| {
        // A(c·x) = c·(A·x) — catches summation/segmentation bugs.
        let (a, x) = coo_and_x(g);
        let c = g.int(-5i64..5);
        let mut m = Machine::new();
        let ax = spmv(&mut m, &a, &x).y;
        let cx: Vec<i64> = x.iter().map(|v| c * v).collect();
        let acx = spmv(&mut m, &a, &cx).y;
        let scaled: Vec<i64> = ax.iter().map(|v| c * v).collect();
        prop_assert_eq!(acx, scaled);
        Ok(())
    });
}

#[test]
fn permutation_matrices_permute() {
    check("permutation_matrices_permute", |g: &mut Gen| {
        // Make a random permutation by the sorting-position trick.
        let perm: Vec<usize> = g.vec(16, |g| g.size(0..16));
        let mut idx: Vec<usize> = (0..16).collect();
        idx.sort_by_key(|&i| (perm[i], i));
        let a: Coo<i64> = Coo::permutation(&idx);
        let x: Vec<i64> = (0..16).map(|i| 100 + i as i64).collect();
        let mut m = Machine::new();
        let out = spmv(&mut m, &a, &x);
        let expect: Vec<i64> = idx.iter().map(|&j| x[j]).collect();
        prop_assert_eq!(out.y, expect);
        Ok(())
    });
}
