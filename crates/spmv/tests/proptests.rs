//! Property-based tests for sparse matrix–vector multiplication.

use proptest::prelude::*;

use spatial_model::Machine;
use spmv::pram_baseline::spmv_pram_baseline;
use spmv::{spmv, Coo};

/// Strategy: a random small COO matrix plus a matching vector.
fn coo_and_x() -> impl Strategy<Value = (Coo<i64>, Vec<i64>)> {
    (2usize..24).prop_flat_map(|n| {
        let entries = prop::collection::vec(
            (0..n as u32, 0..n as u32, -9i64..9),
            0..(4 * n),
        );
        let x = prop::collection::vec(-9i64..9, n);
        (entries, x).prop_map(move |(e, x)| (Coo::new(n, n, e), x))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spmv_matches_dense_reference((a, x) in coo_and_x()) {
        let mut m = Machine::new();
        let out = spmv(&mut m, &a, &x);
        prop_assert_eq!(out.y, a.multiply_dense(&x));
    }

    #[test]
    fn pram_baseline_matches_dense_reference((a, x) in coo_and_x()) {
        let mut m = Machine::new();
        let (y, _) = spmv_pram_baseline(&mut m, &a, &x);
        prop_assert_eq!(y, a.multiply_dense(&x));
    }

    #[test]
    fn csr_roundtrip_preserves_semantics((a, x) in coo_and_x()) {
        let csr = a.to_csr();
        prop_assert_eq!(csr.multiply_dense(&x), a.multiply_dense(&x));
        prop_assert_eq!(csr.to_coo().multiply_dense(&x), a.multiply_dense(&x));
        prop_assert_eq!(csr.nnz(), a.nnz());
    }

    #[test]
    fn spmv_is_linear_in_x((a, x) in coo_and_x(), c in -5i64..5) {
        // A(c·x) = c·(A·x) — catches summation/segmentation bugs.
        let mut m = Machine::new();
        let ax = spmv(&mut m, &a, &x).y;
        let cx: Vec<i64> = x.iter().map(|v| c * v).collect();
        let acx = spmv(&mut m, &a, &cx).y;
        let scaled: Vec<i64> = ax.iter().map(|v| c * v).collect();
        prop_assert_eq!(acx, scaled);
    }

    #[test]
    fn permutation_matrices_permute(perm in prop::collection::vec(0usize..16, 16)) {
        // Make `perm` a permutation by sorting-position trick.
        let mut idx: Vec<usize> = (0..16).collect();
        idx.sort_by_key(|&i| (perm[i], i));
        let a: Coo<i64> = Coo::permutation(&idx);
        let x: Vec<i64> = (0..16).map(|i| 100 + i as i64).collect();
        let mut m = Machine::new();
        let out = spmv(&mut m, &a, &x);
        let expect: Vec<i64> = idx.iter().map(|&j| x[j]).collect();
        prop_assert_eq!(out.y, expect);
    }
}
