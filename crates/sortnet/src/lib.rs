//! # Sorting networks on the spatial grid (paper §V-B)
//!
//! Data-oblivious comparator networks and their execution on the Spatial
//! Computer Model. The paper maps each wire of a network to a PE in
//! row-major order and shows (Lemma V.3/V.4) that Bitonic Sort then costs
//! `Θ(n^{3/2} log n)` energy — a logarithmic factor above the optimal 2D
//! mergesort — because the recursion eventually degenerates into a 1D
//! algorithm within single rows (Fig. 2).
//!
//! Provided here:
//!
//! * [`Network`] — stages of disjoint comparators, host evaluation, 0-1
//!   principle checking;
//! * [`bitonic_sort`] / [`bitonic_merge`] — Batcher's bitonic networks;
//! * [`odd_even_transposition`] — the classic `n`-stage mesh baseline;
//! * [`exec::run_on_coords`] — spatial execution with exact cost accounting.

pub mod bitonic;
pub mod exec;
pub mod network;
pub mod oddeven;
pub mod oemergesort;

pub use bitonic::{bitonic_merge, bitonic_sort};
pub use exec::{run_on_coords, run_row_major};
pub use network::{Comparator, Network};
pub use oddeven::odd_even_transposition;
pub use oemergesort::odd_even_mergesort;
