//! Comparator-network representation.

/// One compare-exchange: after the comparator fires, the minimum of the two
/// wire values sits on `low` and the maximum on `high`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Comparator {
    /// Wire receiving the smaller value.
    pub low: usize,
    /// Wire receiving the larger value.
    pub high: usize,
}

impl Comparator {
    /// Creates a comparator; `low` and `high` must be distinct wires.
    pub fn new(low: usize, high: usize) -> Self {
        assert_ne!(low, high, "comparator needs two distinct wires");
        Comparator { low, high }
    }
}

/// A comparator network: a sequence of stages, each a set of comparators
/// touching disjoint wires (so a stage fires in one parallel step).
#[derive(Clone, Debug, Default)]
pub struct Network {
    width: usize,
    stages: Vec<Vec<Comparator>>,
}

impl Network {
    /// An empty network over `width` wires.
    pub fn new(width: usize) -> Self {
        Network { width, stages: Vec::new() }
    }

    /// Number of wires.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of parallel stages (the network's depth).
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Total number of comparators.
    pub fn size(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    /// The stages in firing order.
    pub fn stages(&self) -> &[Vec<Comparator>] {
        &self.stages
    }

    /// Appends one parallel stage.
    ///
    /// # Panics
    /// Panics if a wire is out of range or used twice within the stage.
    pub fn push_stage(&mut self, stage: Vec<Comparator>) {
        let mut used = vec![false; self.width];
        for c in &stage {
            assert!(c.low < self.width && c.high < self.width, "wire out of range");
            for w in [c.low, c.high] {
                assert!(!used[w], "wire {w} used twice in one stage");
                used[w] = true;
            }
        }
        self.stages.push(stage);
    }

    /// Appends all stages of `other` (same width) after this network.
    pub fn concat(&mut self, other: &Network) {
        assert_eq!(self.width, other.width, "concatenating networks of different widths");
        self.stages.extend(other.stages.iter().cloned());
    }

    /// Greedily fuses consecutive stages that touch disjoint wires into one
    /// parallel stage (earliest-fit list scheduling).
    ///
    /// Recursively-generated networks (e.g. [`crate::odd_even_mergesort`])
    /// emit one stage per comparator group even when groups from sibling
    /// sub-problems could fire simultaneously; fusing recovers the true
    /// parallel depth without changing the comparator sequence semantics
    /// (a comparator never moves past another one sharing a wire, so the
    /// network computes the same function).
    pub fn fused(&self) -> Network {
        let mut stages: Vec<Vec<Comparator>> = Vec::new();
        // For each wire, the index of the last stage that used it.
        let mut last_use: Vec<Option<usize>> = vec![None; self.width];
        for stage in &self.stages {
            for &c in stage {
                // Earliest stage after both operands' last uses.
                let earliest =
                    [c.low, c.high].iter().filter_map(|&w| last_use[w]).max().map_or(0, |s| s + 1);
                if earliest == stages.len() {
                    stages.push(Vec::new());
                }
                stages[earliest].push(c);
                last_use[c.low] = Some(earliest);
                last_use[c.high] = Some(earliest);
            }
        }
        let mut net = Network::new(self.width);
        for stage in stages {
            net.push_stage(stage);
        }
        net
    }

    /// Host-side evaluation (no spatial costs) — the functional semantics.
    pub fn apply<T: Clone + Ord>(&self, input: &[T]) -> Vec<T> {
        assert_eq!(input.len(), self.width);
        let mut v = input.to_vec();
        for stage in &self.stages {
            for c in stage {
                if v[c.low] > v[c.high] {
                    v.swap(c.low, c.high);
                }
            }
        }
        v
    }

    /// Exhaustive 0-1 principle check: the network sorts every input iff it
    /// sorts every 0/1 input. Only feasible for small widths (`2^width`
    /// evaluations).
    pub fn sorts_all_01(&self) -> bool {
        assert!(
            self.width <= 20,
            "0-1 check is exponential; use `sorts_random_01` beyond width 20"
        );
        for mask in 0u64..(1 << self.width) {
            let input: Vec<u8> = (0..self.width).map(|i| ((mask >> i) & 1) as u8).collect();
            let out = self.apply(&input);
            if out.windows(2).any(|w| w[0] > w[1]) {
                return false;
            }
        }
        true
    }

    /// Randomized 0-1 principle check for widths where [`Self::sorts_all_01`]
    /// is infeasible: evaluates the network on `trials` seeded random 0/1
    /// vectors plus the structured patterns most likely to expose a broken
    /// comparator (every step function `0^i 1^{w-i}` and its reversal, a
    /// single 1 / single 0 at each position).
    ///
    /// Probabilistic, not a proof — each random trial catches an unsorted
    /// witness independently — but the deterministic step/impulse family
    /// alone already kills most structural bugs (a missing comparator leaves
    /// some reversed step pair unsorted). Deterministic given `seed`.
    pub fn sorts_random_01(&self, trials: usize, seed: u64) -> bool {
        let w = self.width;
        let sorted_after = |input: &[u8]| -> bool {
            let out = self.apply(input);
            out.windows(2).all(|p| p[0] <= p[1])
        };
        // Structured family: steps, reversed steps, impulses.
        for i in 0..=w {
            let step: Vec<u8> = (0..w).map(|j| u8::from(j >= i)).collect();
            let rev: Vec<u8> = step.iter().rev().copied().collect();
            if !sorted_after(&step) || !sorted_after(&rev) {
                return false;
            }
        }
        for i in 0..w {
            let mut one = vec![0u8; w];
            one[i] = 1;
            let mut zero = vec![1u8; w];
            zero[i] = 0;
            if !sorted_after(&one) || !sorted_after(&zero) {
                return false;
            }
        }
        // Random trials at mixed densities.
        let mut rng = spatial_rng::Rng::seed_from_u64(seed);
        for t in 0..trials {
            let p = match t % 3 {
                0 => 0.5,
                1 => 0.1,
                _ => 0.9,
            };
            let input: Vec<u8> = (0..w).map(|_| u8::from(rng.gen_bool(p))).collect();
            if !sorted_after(&input) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_wire_sorter() -> Network {
        let mut n = Network::new(2);
        n.push_stage(vec![Comparator::new(0, 1)]);
        n
    }

    #[test]
    fn comparator_orders_pairs() {
        let n = two_wire_sorter();
        assert_eq!(n.apply(&[5, 3]), vec![3, 5]);
        assert_eq!(n.apply(&[3, 5]), vec![3, 5]);
        assert!(n.sorts_all_01());
    }

    #[test]
    fn depth_and_size_count_correctly() {
        let mut n = Network::new(4);
        n.push_stage(vec![Comparator::new(0, 1), Comparator::new(2, 3)]);
        n.push_stage(vec![Comparator::new(1, 2)]);
        assert_eq!(n.depth(), 2);
        assert_eq!(n.size(), 3);
        assert_eq!(n.width(), 4);
    }

    #[test]
    #[should_panic(expected = "used twice")]
    fn stage_rejects_wire_collisions() {
        let mut n = Network::new(3);
        n.push_stage(vec![Comparator::new(0, 1), Comparator::new(1, 2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stage_rejects_out_of_range_wire() {
        let mut n = Network::new(2);
        n.push_stage(vec![Comparator::new(0, 2)]);
    }

    #[test]
    fn incomplete_network_fails_01_check() {
        let mut n = Network::new(3);
        n.push_stage(vec![Comparator::new(0, 1)]);
        assert!(!n.sorts_all_01());
    }

    #[test]
    fn concat_appends_stages() {
        let mut a = two_wire_sorter();
        let b = two_wire_sorter();
        a.concat(&b);
        assert_eq!(a.depth(), 2);
    }

    #[test]
    fn fused_network_preserves_semantics_and_reduces_depth() {
        let net = crate::oemergesort::odd_even_mergesort(16);
        let fused = net.fused();
        assert_eq!(fused.size(), net.size(), "fusion never drops comparators");
        assert!(fused.depth() < net.depth(), "{} vs {}", fused.depth(), net.depth());
        assert!(fused.sorts_all_01(), "fused network must still sort");
        // Batcher's depth for n = 2^p is p(p+1)/2 = 10 at p = 4.
        assert_eq!(fused.depth(), 10);
    }

    #[test]
    fn fusing_an_already_parallel_network_is_identity_depth() {
        let net = crate::bitonic::bitonic_sort(16);
        let fused = net.fused();
        assert_eq!(fused.depth(), net.depth(), "bitonic stages are already maximal");
        assert!(fused.sorts_all_01());
    }

    #[test]
    fn fused_respects_wire_order() {
        // Two comparators sharing wire 1 must not swap order.
        let mut net = Network::new(3);
        net.push_stage(vec![Comparator::new(0, 1)]);
        net.push_stage(vec![Comparator::new(1, 2)]);
        let fused = net.fused();
        assert_eq!(fused.depth(), 2, "shared wire forbids fusion");
        assert_eq!(fused.apply(&[3, 2, 1]), net.apply(&[3, 2, 1]));
    }

    #[test]
    fn reversed_comparator_places_max_low() {
        // A "descending" comparator is expressed by swapping low/high.
        let mut n = Network::new(2);
        n.push_stage(vec![Comparator::new(1, 0)]);
        assert_eq!(n.apply(&[3, 5]), vec![5, 3]);
    }
}
